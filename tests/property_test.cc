// Property-based tests: seeded random sweeps over expressions, templates,
// assignments and views, checking the paper's theorems as executable
// invariants (TEST_P over seeds).
#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/expand.h"
#include "algebra/printer.h"
#include "relation/generator.h"
#include "tableau/build.h"
#include "tableau/canonical.h"
#include "tableau/counterexample.h"
#include "tableau/evaluate.h"
#include "tableau/homomorphism.h"
#include "tableau/recognize.h"
#include "tableau/reduce.h"
#include "tableau/substitution.h"
#include "tests/test_util.h"
#include "views/capacity.h"
#include "views/equivalence.h"
#include "views/redundancy.h"
#include "views/simplify.h"

namespace viewcap {
namespace {

using testing::Unwrap;

// Generates random PJ expressions over a set of relation names.
class ExprGenerator {
 public:
  ExprGenerator(const Catalog* catalog, std::vector<RelId> names)
      : catalog_(catalog), names_(std::move(names)) {}

  ExprPtr Generate(Random& rng, std::size_t max_leaves) const {
    if (max_leaves <= 1 || rng.Chance(0.35)) {
      return MaybeProject(Expr::Rel(*catalog_, names_[rng.Index(names_.size())]),
                          rng);
    }
    std::size_t left = 1 + rng.Index(max_leaves - 1);
    ExprPtr lhs = Generate(rng, left);
    ExprPtr rhs = Generate(rng, max_leaves - left);
    return MaybeProject(Expr::MustJoin2(std::move(lhs), std::move(rhs)), rng);
  }

 private:
  ExprPtr MaybeProject(ExprPtr e, Random& rng) const {
    if (!rng.Chance(0.45) || e->trs().size() <= 1) return e;
    std::vector<AttrSet> subsets = e->trs().NonemptyProperSubsets();
    return Expr::MustProject(subsets[rng.Index(subsets.size())],
                             std::move(e));
  }

  const Catalog* catalog_;
  std::vector<RelId> names_;
};

// Shared environment: schema {r(A,B), s(B,C), u(A,C)} — enough structure
// for joins, hidden variables and triangles.
class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
    t_ = Unwrap(catalog_.AddRelation("u", catalog_.MakeScheme({"A", "C"})));
    base_ = DbSchema(catalog_, {r_, s_, t_});
    generator_ = std::make_unique<ExprGenerator>(
        &catalog_, std::vector<RelId>{r_, s_, t_});
    InstanceOptions options;
    options.tuples_per_relation = 5;
    options.domain_size = 3;
    instances_ = std::make_unique<InstanceGenerator>(&catalog_, options);
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel, t_ = kInvalidRel;
  DbSchema base_;
  std::unique_ptr<ExprGenerator> generator_;
  std::unique_ptr<InstanceGenerator> instances_;
};

// Proposition 2.1.2: Algorithm 2.1.1 preserves the mapping.
TEST_P(PropertyTest, TemplateRealizesExpressionMapping) {
  Random rng(GetParam());
  for (int i = 0; i < 6; ++i) {
    ExprPtr e = generator_->Generate(rng, 4);
    Tableau t = MustBuildTableau(catalog_, u_, *e);
    EXPECT_EQ(t.size(), e->LeafCount());
    for (int trial = 0; trial < 4; ++trial) {
      Instantiation alpha = instances_->Generate(base_, rng);
      EXPECT_EQ(EvaluateTableau(t, alpha), Evaluate(*e, alpha))
          << ToString(*e, catalog_);
    }
  }
}

// Proposition 2.4.4: reduction keeps the mapping and is idempotent.
TEST_P(PropertyTest, ReductionSoundAndIdempotent) {
  Random rng(GetParam());
  for (int i = 0; i < 6; ++i) {
    ExprPtr e = generator_->Generate(rng, 5);
    Tableau t = MustBuildTableau(catalog_, u_, *e);
    Tableau reduced = Reduce(catalog_, t);
    EXPECT_TRUE(EquivalentTableaux(catalog_, t, reduced));
    EXPECT_EQ(Reduce(catalog_, reduced), reduced);
    VIEWCAP_EXPECT_OK(reduced.Validate(catalog_));
    for (int trial = 0; trial < 3; ++trial) {
      Instantiation alpha = instances_->Generate(base_, rng);
      EXPECT_EQ(EvaluateTableau(t, alpha), EvaluateTableau(reduced, alpha));
    }
  }
}

// Proposition 2.4.1 / Corollary 2.4.2: homomorphic equivalence agrees with
// semantic equality (frozen instances + random instances).
TEST_P(PropertyTest, HomomorphicEquivalenceMatchesSemantics) {
  Random rng(GetParam());
  for (int i = 0; i < 5; ++i) {
    Tableau a = MustBuildTableau(catalog_, u_, *generator_->Generate(rng, 4));
    Tableau b = MustBuildTableau(catalog_, u_, *generator_->Generate(rng, 4));
    bool equivalent = EquivalentTableaux(catalog_, a, b);
    std::optional<Instantiation> witness = FindDistinguishingInstance(
        catalog_, a, b, InstanceOptions{}, /*random_trials=*/5, rng);
    EXPECT_EQ(!witness.has_value(), equivalent);
    if (equivalent) {
      for (int trial = 0; trial < 3; ++trial) {
        Instantiation alpha = instances_->Generate(base_, rng);
        EXPECT_EQ(EvaluateTableau(a, alpha), EvaluateTableau(b, alpha));
      }
    }
  }
}

// Canonical keys are invariant under symbol renaming; reduced equivalent
// templates share keys (unique core up to isomorphism).
TEST_P(PropertyTest, CanonicalKeysRespectIsomorphism) {
  Random rng(GetParam());
  for (int i = 0; i < 6; ++i) {
    Tableau t = Reduce(
        catalog_, MustBuildTableau(catalog_, u_, *generator_->Generate(rng, 4)));
    SymbolMap rename;
    for (const Symbol& sym : t.Symbols()) {
      if (!sym.IsDistinguished()) {
        rename[sym] = Symbol::Nondistinguished(
            sym.attr, sym.ordinal + 50 + static_cast<std::uint32_t>(i));
      }
    }
    EXPECT_EQ(CanonicalKey(t), CanonicalKey(t.Apply(rename)));
  }
}

// Theorem 2.2.3: [T -> beta](alpha) = T(beta -> alpha).
TEST_P(PropertyTest, SubstitutionTheorem) {
  Random rng(GetParam());
  // Random "view": one defining query per base relation type.
  SymbolPool pool;
  RelId n_ab = catalog_.MintRelation("pv_ab", catalog_.MakeScheme({"A", "B"}));
  RelId n_bc = catalog_.MintRelation("pv_bc", catalog_.MakeScheme({"B", "C"}));
  TemplateAssignment beta;
  // Defining queries with matching TRS.
  for (auto [handle, trs_names] :
       {std::pair{n_ab, std::pair{"A", "B"}}, {n_bc, {"B", "C"}}}) {
    AttrSet target = catalog_.MakeScheme({trs_names.first, trs_names.second});
    // Rejection-sample an expression with the right TRS, falling back to a
    // projection wrapper.
    ExprPtr e;
    for (int attempt = 0; attempt < 20; ++attempt) {
      ExprPtr candidate = generator_->Generate(rng, 3);
      if (candidate->trs() == target) {
        e = candidate;
        break;
      }
      if (target.SubsetOf(candidate->trs())) {
        e = Expr::MustProject(target, candidate);
        break;
      }
    }
    if (e == nullptr) {
      e = Expr::MustProject(
          target, Expr::MustJoin2(Expr::Rel(catalog_, r_),
                                  Expr::Rel(catalog_, s_)));
    }
    beta.emplace(handle, Unwrap(BuildTableau(catalog_, u_, *e, pool)));
  }
  // Random construction-level template over the two handles.
  ExprGenerator level_gen(&catalog_, {n_ab, n_bc});
  for (int i = 0; i < 4; ++i) {
    ExprPtr level_expr = level_gen.Generate(rng, 3);
    Tableau level = Unwrap(BuildTableau(catalog_, u_, *level_expr, pool));
    Tableau substituted =
        Unwrap(SubstituteTableau(catalog_, level, beta, pool));
    VIEWCAP_EXPECT_OK(substituted.Validate(catalog_));
    for (int trial = 0; trial < 4; ++trial) {
      Instantiation alpha = instances_->Generate(base_, rng);
      Instantiation effect = ApplyAssignment(beta, alpha);
      EXPECT_EQ(EvaluateTableau(substituted, alpha),
                EvaluateTableau(level, effect));
    }
  }
}

// Closure round-trip (Theorems 1.5.2 / 2.3.2 and the Lemma 2.4.8 bound):
// the expansion of ANY view-schema expression lies in Cap(V), and the
// oracle finds it.
TEST_P(PropertyTest, CapacityContainsAllViewQuerySurrogates) {
  Random rng(GetParam());
  RelId v1 = catalog_.MintRelation("cv1_", catalog_.MakeScheme({"A", "B"}));
  RelId v2 = catalog_.MintRelation("cv2_", catalog_.MakeScheme({"B", "C"}));
  View view = Unwrap(View::Create(
      &catalog_, base_,
      {{v1, Expr::MustProject(catalog_.MakeScheme({"A", "B"}),
                              Expr::MustJoin2(Expr::Rel(catalog_, r_),
                                              Expr::Rel(catalog_, s_)))},
       {v2, Expr::Rel(catalog_, s_)}},
      "PV"));
  CapacityOracle oracle(view);
  ExprGenerator view_gen(&catalog_, {v1, v2});
  for (int i = 0; i < 5; ++i) {
    ExprPtr view_query = view_gen.Generate(rng, 3);
    ExprPtr surrogate = Unwrap(view.Surrogate(view_query));
    MembershipResult m = Unwrap(oracle.Contains(surrogate));
    EXPECT_TRUE(m.member) << ToString(*view_query, catalog_) << " / "
                          << ToString(*surrogate, catalog_);
    // The witness expands back to the same mapping.
    if (m.member) {
      ExprPtr expanded =
          Unwrap(Expand(catalog_, m.witness, view.AsDefinitions()));
      EXPECT_TRUE(EquivalentTableaux(
          catalog_, MustBuildTableau(catalog_, u_, *expanded),
          MustBuildTableau(catalog_, u_, *surrogate)));
    }
  }
}

// Theorem 3.1.4 + Theorem 4.1.3 pipeline on random views: the nonredundant
// and simplified forms stay equivalent to the original; simplified output
// passes IsSimplifiedView; uniqueness holds across the two pipelines.
TEST_P(PropertyTest, NormalizationPipelinePreservesCapacity) {
  Random rng(GetParam());
  std::vector<std::pair<RelId, ExprPtr>> defs;
  const int num_defs = 2 + static_cast<int>(rng.Next(2));
  for (int i = 0; i < num_defs; ++i) {
    ExprPtr e = generator_->Generate(rng, 3);
    RelId handle = catalog_.MintRelation("nv_", e->trs());
    defs.push_back({handle, e});
  }
  View view = Unwrap(View::Create(&catalog_, base_, defs, "NV"));
  NonredundantViewResult nr = Unwrap(MakeNonredundant(view));
  EXPECT_TRUE(Unwrap(AreEquivalent(view, nr.view)).equivalent);

  SimplifyOutcome simplified = Unwrap(Simplify(&catalog_, view));
  EXPECT_TRUE(Unwrap(AreEquivalent(view, simplified.view)).equivalent);
  EXPECT_TRUE(Unwrap(IsSimplifiedView(&catalog_, simplified.view)));

  // Theorem 4.2.2: simplifying the nonredundant form gives the same normal
  // form up to renaming.
  SimplifyOutcome simplified2 = Unwrap(Simplify(&catalog_, nr.view));
  EXPECT_TRUE(
      Unwrap(SameQueriesUpToRenaming(simplified.view, simplified2.view)));
  // Theorem 4.2.3: the simplified view is at least as large as any
  // nonredundant equivalent we hold.
  EXPECT_GE(simplified.view.size(), nr.view.size());
}

// Export -> Load round trip on random views: the reloaded view is
// equivalent to the original (in a fresh catalog, so equivalence is
// checked by re-deriving both sides' templates there).
TEST_P(PropertyTest, ExportLoadRoundTrip) {
  Random rng(GetParam());
  std::vector<std::pair<RelId, ExprPtr>> defs;
  for (int i = 0; i < 2; ++i) {
    ExprPtr e = generator_->Generate(rng, 3);
    defs.push_back({catalog_.MintRelation("xv_", e->trs()), e});
  }
  View view =
      Unwrap(View::Create(&catalog_, base_, defs, "RoundTrip"));
  std::string program = ExportProgram(view);

  Analyzer fresh;
  VIEWCAP_ASSERT_OK(fresh.Load(program));
  const View* reloaded = Unwrap(fresh.GetView("RoundTrip"));
  ASSERT_EQ(reloaded->size(), view.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_TRUE(Expr::StructurallyEqual(*reloaded->definitions()[i].query,
                                        *view.definitions()[i].query));
  }
}

// Minimization invariants on random expressions: equivalent output, never
// more leaves, idempotent, and leaf count matching the core when minimal.
TEST_P(PropertyTest, MinimizationInvariants) {
  Random rng(GetParam());
  for (int i = 0; i < 5; ++i) {
    ExprPtr e = generator_->Generate(rng, 4);
    MinimizeResult result =
        Unwrap(MinimizeExpression(catalog_, u_, e));
    EXPECT_LE(result.leaves_after, result.leaves_before);
    Tableau original = MustBuildTableau(catalog_, u_, *e);
    Tableau minimized =
        MustBuildTableau(catalog_, u_, *result.expression);
    EXPECT_TRUE(EquivalentTableaux(catalog_, original, minimized));
    if (result.minimal) {
      EXPECT_EQ(result.leaves_after,
                Reduce(catalog_, original).size());
      // Idempotence: minimizing the minimum changes nothing.
      MinimizeResult again =
          Unwrap(MinimizeExpression(catalog_, u_, result.expression));
      EXPECT_EQ(again.leaves_after, result.leaves_after);
    }
    // Semantic agreement on random instances.
    for (int trial = 0; trial < 3; ++trial) {
      Instantiation alpha = instances_->Generate(base_, rng);
      EXPECT_EQ(Evaluate(*result.expression, alpha), Evaluate(*e, alpha));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace viewcap
