// Persistent capacity index: build/query round trips, bit-identity with
// the live engine, and corruption rejection (every failure a structured
// Status, never UB — the whole file runs under the asan/ubsan presets).
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/viewcap.h"
#include "index/format.h"
#include "index/index_reader.h"
#include "index/index_writer.h"
#include "test_util.h"

namespace viewcap {
namespace testing {
namespace {

constexpr char kProgram[] = R"(
schema {
  emp(Name, Dept, Salary);
  dept(Dept, Location);
}
view Public {
  emp_pub  := pi{Name, Dept}(emp);
  dept_pub := dept;
}
view Banded {
  emp_pub2  := pi{Name, Dept}(emp);
  salaries  := pi{Dept, Salary}(emp);
  dept_pub2 := dept;
}
)";

constexpr char kTinyProgram[] = R"(
schema { r(A, B); }
view V { v1 := pi{A}(r); }
)";

constexpr char kOtherProgram[] = R"(
schema { s(X, Y); }
view U { u1 := pi{X}(s); }
)";

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string BuildOver(const char* program, const std::string& path,
                      IndexBuildStats* stats = nullptr) {
  Analyzer analyzer;
  VIEWCAP_EXPECT_OK(analyzer.Load(program));
  IndexBuildStats local;
  Result<IndexBuildStats> built =
      BuildIndexFile(analyzer, path, IndexBuildOptions{});
  local = Unwrap(std::move(built));
  if (stats != nullptr) *stats = local;
  return path;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

TEST(IndexBuildTest, BuildWritesInspectableFile) {
  const std::string path = TempPath("build_inspect.vcidx");
  IndexBuildStats stats;
  BuildOver(kProgram, path, &stats);
  EXPECT_GT(stats.classes, 0u);
  EXPECT_EQ(stats.sets, 2u);
  EXPECT_GT(stats.verdicts, 0u);
  EXPECT_EQ(stats.dominance_entries, 2u);

  IndexInfo info = Unwrap(IndexReader::Inspect(path));
  EXPECT_EQ(info.format_version, kIndexFormatVersion);
  EXPECT_EQ(info.fingerprint_scheme_version, kFingerprintSchemeVersion);
  EXPECT_EQ(info.classes, stats.classes);
  EXPECT_EQ(info.sets, stats.sets);
  EXPECT_EQ(info.verdicts, stats.verdicts);
  EXPECT_EQ(info.dominance_entries, stats.dominance_entries);
  EXPECT_EQ(info.file_size, stats.bytes);
}

TEST(IndexBuildTest, BuildIsByteDeterministic) {
  // Two builds in two fresh processes-worth of state must produce the
  // same bytes — the index is a pure function of the program.
  std::string first, second;
  {
    Analyzer analyzer;
    VIEWCAP_EXPECT_OK(analyzer.Load(kProgram));
    first = Unwrap(BuildIndexBytes(analyzer, IndexBuildOptions{}));
  }
  {
    Analyzer analyzer;
    VIEWCAP_EXPECT_OK(analyzer.Load(kProgram));
    second = Unwrap(BuildIndexBytes(analyzer, IndexBuildOptions{}));
  }
  EXPECT_EQ(first, second);
}

TEST(IndexBuildTest, BuildIsByteDeterministicAcrossThreadCounts) {
  // The per-view saturation and cross-view sweeps run in parallel over
  // views when the serving limits allow; the output bytes must not
  // depend on the thread count (ordinals, dedup, and exemplar
  // serialization happen in a serial phase — see BuildIndexBytes).
  std::string serial;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    Analyzer analyzer;
    VIEWCAP_EXPECT_OK(analyzer.Load(kProgram));
    IndexBuildOptions options;
    options.limits.threads = threads;
    const std::string bytes = Unwrap(BuildIndexBytes(analyzer, options));
    if (threads == 1u) {
      serial = bytes;
      EXPECT_FALSE(serial.empty());
    } else {
      EXPECT_EQ(bytes, serial) << "threads=" << threads;
    }
  }
}

TEST(IndexRoundTripTest, MembershipBitIdenticalToLiveEngine) {
  const std::string path = TempPath("roundtrip_membership.vcidx");
  BuildOver(kProgram, path);

  const std::vector<std::pair<std::string, std::string>> cases = {
      {"Public", "pi{Name}(emp)"},
      {"Public", "emp"},
      {"Public", "pi{Salary}(emp)"},
      {"Public", "pi{Name, Dept}(emp) * dept"},
      {"Banded", "pi{Salary}(emp)"},
      {"Banded", "pi{Name}(emp) * pi{Dept, Salary}(emp)"},
  };

  // Fresh live-only analyzer.
  Analyzer live;
  VIEWCAP_EXPECT_OK(live.Load(kProgram));
  // Fresh analyzer serving from the index (simulates a new process).
  Analyzer indexed;
  VIEWCAP_EXPECT_OK(indexed.Load(kProgram));
  std::unique_ptr<IndexReader> reader =
      Unwrap(IndexReader::Open(path, &indexed.catalog()));
  indexed.engine().AttachIndex(reader.get());

  for (const auto& [view, query] : cases) {
    std::string live_report, indexed_report;
    MembershipResult a =
        Unwrap(live.CheckAnswerable(view, query, &live_report));
    MembershipResult b =
        Unwrap(indexed.CheckAnswerable(view, query, &indexed_report));
    EXPECT_EQ(a.member, b.member) << view << " / " << query;
    EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << query;
    EXPECT_EQ(a.candidates_tried, b.candidates_tried) << query;
    EXPECT_EQ(a.leaf_budget, b.leaf_budget) << query;
    EXPECT_EQ(live_report, indexed_report) << view << " / " << query;
  }
  // The probes above must actually have been served from the file, not
  // from a silent live fallback.
  EXPECT_GT(reader->StatsSnapshot().membership_hits, 0u);
  EXPECT_EQ(reader->StatsSnapshot().limit_mismatches, 0u);
}

TEST(IndexRoundTripTest, EquivalenceBitIdenticalToLiveEngine) {
  const std::string path = TempPath("roundtrip_equiv.vcidx");
  BuildOver(kProgram, path);

  Analyzer live;
  VIEWCAP_EXPECT_OK(live.Load(kProgram));
  Analyzer indexed;
  VIEWCAP_EXPECT_OK(indexed.Load(kProgram));
  std::unique_ptr<IndexReader> reader =
      Unwrap(IndexReader::Open(path, &indexed.catalog()));
  indexed.engine().AttachIndex(reader.get());

  std::string live_report, indexed_report;
  EquivalenceResult a =
      Unwrap(live.CheckEquivalence("Public", "Banded", &live_report));
  EquivalenceResult b =
      Unwrap(indexed.CheckEquivalence("Public", "Banded", &indexed_report));
  EXPECT_EQ(a.equivalent, b.equivalent);
  EXPECT_EQ(a.inconclusive, b.inconclusive);
  EXPECT_EQ(live_report, indexed_report);
  EXPECT_GT(reader->StatsSnapshot().dominance_hits, 0u);
}

TEST(IndexRoundTripTest, LimitMismatchFallsBackToLiveSearch) {
  const std::string path = TempPath("limit_mismatch.vcidx");
  BuildOver(kProgram, path);

  Analyzer indexed;
  VIEWCAP_EXPECT_OK(indexed.Load(kProgram));
  std::unique_ptr<IndexReader> reader =
      Unwrap(IndexReader::Open(path, &indexed.catalog()));
  indexed.engine().AttachIndex(reader.get());

  // Probe under limits other than the ones the index was built for: the
  // verdict must still be correct (live fallback), and the reader must
  // record the mismatch rather than serve a wrong entry.
  SearchLimits other;
  other.max_candidates = 12345;
  MembershipResult r =
      Unwrap(indexed.CheckAnswerable("Public", "pi{Name}(emp)", other));
  EXPECT_TRUE(r.member);
  IndexStats stats = reader->StatsSnapshot();
  EXPECT_GT(stats.limit_mismatches, 0u);
  EXPECT_EQ(stats.membership_hits, 0u);
}

TEST(IndexInvalidationTest, CatalogFingerprintMismatchRejected) {
  const std::string path = TempPath("stale.vcidx");
  BuildOver(kTinyProgram, path);

  Analyzer other;
  VIEWCAP_EXPECT_OK(other.Load(kOtherProgram));
  Result<std::unique_ptr<IndexReader>> opened =
      IndexReader::Open(path, &other.catalog());
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("fingerprint mismatch"),
            std::string::npos)
      << opened.status().ToString();
}

TEST(IndexInvalidationTest, WrongFormatVersionRejected) {
  const std::string path = TempPath("wrong_version.vcidx");
  BuildOver(kTinyProgram, path);
  std::string bytes = ReadAll(path);
  ASSERT_GE(bytes.size(), 16u);
  bytes[12] = static_cast<char>(kIndexFormatVersion + 1);  // LE low byte.
  WriteAll(path, bytes);

  Analyzer analyzer;
  VIEWCAP_EXPECT_OK(analyzer.Load(kTinyProgram));
  Result<std::unique_ptr<IndexReader>> opened =
      IndexReader::Open(path, &analyzer.catalog());
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("format version"),
            std::string::npos)
      << opened.status().ToString();
}

TEST(IndexInvalidationTest, WrongEndiannessRejected) {
  const std::string path = TempPath("wrong_endian.vcidx");
  BuildOver(kTinyProgram, path);
  std::string bytes = ReadAll(path);
  ASSERT_GE(bytes.size(), 12u);
  // The endian word as a big-endian writer would have laid it out.
  bytes[8] = static_cast<char>(0x01);
  bytes[9] = static_cast<char>(0x02);
  bytes[10] = static_cast<char>(0x03);
  bytes[11] = static_cast<char>(0x04);
  WriteAll(path, bytes);

  Analyzer analyzer;
  VIEWCAP_EXPECT_OK(analyzer.Load(kTinyProgram));
  Result<std::unique_ptr<IndexReader>> opened =
      IndexReader::Open(path, &analyzer.catalog());
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("endian"), std::string::npos)
      << opened.status().ToString();
}

TEST(IndexInvalidationTest, TruncationsRejected) {
  const std::string path = TempPath("truncated.vcidx");
  BuildOver(kTinyProgram, path);
  const std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 64u);

  Analyzer analyzer;
  VIEWCAP_EXPECT_OK(analyzer.Load(kTinyProgram));
  const std::string cut = TempPath("truncated_cut.vcidx");
  const std::size_t lengths[] = {0,  4,  12, 31, 47, bytes.size() / 4,
                                 bytes.size() / 2, bytes.size() - 1};
  for (std::size_t len : lengths) {
    WriteAll(cut, bytes.substr(0, len));
    Result<std::unique_ptr<IndexReader>> opened =
        IndexReader::Open(cut, &analyzer.catalog());
    EXPECT_FALSE(opened.ok()) << "truncation to " << len << " accepted";
  }
}

TEST(IndexInvalidationTest, EveryByteFlipRejected) {
  // Single-byte corruption anywhere in the file must be caught: the
  // header is checksummed and every section carries its own FNV checksum
  // (a one-byte change always perturbs FNV-1a).
  const std::string path = TempPath("flip.vcidx");
  BuildOver(kTinyProgram, path);
  const std::string bytes = ReadAll(path);

  Analyzer analyzer;
  VIEWCAP_EXPECT_OK(analyzer.Load(kTinyProgram));
  const std::string flipped = TempPath("flip_mut.vcidx");
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    WriteAll(flipped, mutated);
    Result<std::unique_ptr<IndexReader>> opened =
        IndexReader::Open(flipped, &analyzer.catalog());
    EXPECT_FALSE(opened.ok()) << "flip at byte " << i << " accepted";
  }
}

TEST(IndexInvalidationTest, GarbageAndEmptyFilesRejected) {
  Analyzer analyzer;
  VIEWCAP_EXPECT_OK(analyzer.Load(kTinyProgram));

  const std::string empty = TempPath("empty.vcidx");
  WriteAll(empty, "");
  EXPECT_FALSE(IndexReader::Open(empty, &analyzer.catalog()).ok());

  const std::string garbage = TempPath("garbage.vcidx");
  std::string junk(4096, '\0');
  for (std::size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<char>((i * 131 + 17) & 0xff);
  }
  WriteAll(garbage, junk);
  EXPECT_FALSE(IndexReader::Open(garbage, &analyzer.catalog()).ok());

  EXPECT_FALSE(
      IndexReader::Open(TempPath("does_not_exist.vcidx"), &analyzer.catalog())
          .ok());
}

TEST(IndexFormatTest, CursorReportsTruncationNotUB) {
  Cursor cursor(std::string_view("\x01\x02", 2), "test blob");
  Result<std::uint32_t> word = cursor.ReadU32();
  ASSERT_FALSE(word.ok());
  EXPECT_NE(word.status().message().find("truncated"), std::string::npos);
}

}  // namespace
}  // namespace testing
}  // namespace viewcap
