// Tests for engine/engine.h: interning, memo caches, stats counters and
// the cross-layer reuse guarantees the views layer is built on.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "algebra/parser.h"
#include "algebra/printer.h"
#include "base/thread_pool.h"
#include "engine/engine.h"
#include "tableau/build.h"
#include "tableau/homomorphism.h"
#include "tests/test_util.h"
#include "views/capacity.h"
#include "views/equivalence.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", u_));
    base_ = DbSchema(catalog_, {r_});
  }

  Tableau T(const std::string& text) {
    return MustBuildTableau(catalog_, u_, *MustParse(catalog_, text));
  }

  View MakeProjectionsView(const std::string& name, const std::string& h1,
                           const std::string& h2) {
    RelId a = Unwrap(
        catalog_.AddRelation(h1, catalog_.MakeScheme({"A", "B"})));
    RelId b = Unwrap(
        catalog_.AddRelation(h2, catalog_.MakeScheme({"B", "C"})));
    return Unwrap(View::Create(&catalog_, base_,
                               {{a, MustParse(catalog_, "pi{A,B}(r)")},
                                {b, MustParse(catalog_, "pi{B,C}(r)")}},
                               name));
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel;
  DbSchema base_;
};

TEST_F(EngineTest, InterningIdentifiesEquivalentTemplates) {
  Engine engine(&catalog_);
  // Equivalent realizations land in one class...
  TableauId a = engine.Intern(T("pi{A,B}(r)"));
  TableauId b = engine.Intern(T("pi{A,B}(r * r)"));
  TableauId c = engine.Intern(T("pi{A,B}(r) * pi{A,B}(r)"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  // ...and inequivalent ones do not.
  TableauId d = engine.Intern(T("pi{B,C}(r)"));
  EXPECT_NE(a, d);
  // The id comparison agrees with the exact two-way homomorphism test.
  EXPECT_TRUE(engine.Equivalent(T("pi{A}(r)"), T("pi{A}(pi{A,B}(r))")));
  EXPECT_FALSE(engine.Equivalent(T("pi{A}(r)"), T("pi{A,B}(r)")));
  // Representatives are reduced members of their class.
  EXPECT_TRUE(EquivalentTableaux(catalog_, engine.Representative(a),
                                 T("pi{A,B}(r)")));
}

TEST_F(EngineTest, StatsCountersGoldenForTinyWorkload) {
  Engine engine(&catalog_);
  Tableau t = T("pi{A}(r)");  // Single row: already reduced.
  TableauId first = engine.Intern(t);
  TableauId second = engine.Intern(t);
  EXPECT_EQ(first, second);
  EngineStats s = engine.Stats();
  EXPECT_EQ(s.intern_requests, 2u);
  EXPECT_EQ(s.intern_hits, 1u);
  EXPECT_EQ(s.interned_classes, 1u);
  // The repeat is answered by the fingerprint -> id fast path before the
  // bucket scan, so no confirm runs; the skipped reduce / canonical-key
  // calls still count as (hit) requests for counter parity with the
  // slow path.
  EXPECT_EQ(s.equivalence_confirms, 0u);
  EXPECT_EQ(s.reduce.requests, 2u);
  EXPECT_EQ(s.reduce.runs, 1u);
  EXPECT_EQ(s.reduce.hits(), 1u);
  EXPECT_EQ(s.canonical_key.requests, 2u);
  EXPECT_EQ(s.canonical_key.runs, 1u);
  EXPECT_EQ(s.reduce.entries, 1u);
  EXPECT_EQ(s.reduce.evictions, 0u);
}

TEST_F(EngineTest, MemoCachesEvictUnderBoundedCapacity) {
  EngineOptions options;
  options.max_memo_entries = 2;
  Engine engine(&catalog_, options);
  // Four distinct single-row templates: each Reduced is a miss and a Put,
  // so the 2-entry LRU must evict the two oldest.
  engine.Reduced(T("pi{A}(r)"));
  engine.Reduced(T("pi{B}(r)"));
  engine.Reduced(T("pi{C}(r)"));
  engine.Reduced(T("r"));
  EngineStats s = engine.Stats();
  EXPECT_EQ(s.reduce.runs, 4u);
  EXPECT_EQ(s.reduce.entries, 2u);
  EXPECT_EQ(s.reduce.evictions, 2u);
  // The first template was evicted, so asking again re-runs the kernel.
  engine.Reduced(T("pi{A}(r)"));
  EXPECT_EQ(engine.Stats().reduce.runs, 5u);
}

TEST_F(EngineTest, ZeroCapacityDisablesMemoCaches) {
  EngineOptions options;
  options.max_memo_entries = 0;
  Engine engine(&catalog_, options);
  engine.Reduced(T("pi{A}(r)"));
  engine.Reduced(T("pi{A}(r)"));
  EngineStats s = engine.Stats();
  // Capacity 0 means no caching, not unbounded: every request is a miss
  // and nothing is ever stored or evicted.
  EXPECT_EQ(s.reduce.requests, 2u);
  EXPECT_EQ(s.reduce.runs, 2u);
  EXPECT_EQ(s.reduce.entries, 0u);
  EXPECT_EQ(s.reduce.evictions, 0u);
  // The interning store is exempt from the bound and keeps working.
  EXPECT_EQ(engine.Intern(T("pi{B}(r)")), engine.Intern(T("pi{B}(r)")));
}

TEST_F(EngineTest, ExpansionClassSurvivesInterningFreshAssignments) {
  Engine engine(&catalog_);
  RelId h = Unwrap(catalog_.AddRelation("h", catalog_.MakeScheme({"A", "B"})));
  Tableau level = MustBuildTableau(catalog_, u_, *MustParse(catalog_, "h"));
  TableauId level_id = engine.Intern(level);
  const Tableau& rep = engine.Representative(level_id);
  // beta's assignment has never been interned: ExpansionClass interns it
  // while holding the level's representative, growing the class store
  // mid-call. The store is a deque precisely so that growth cannot move
  // `rep` out from under the substitution (historically a use-after-free
  // when the store was a vector).
  TemplateAssignment beta;
  beta.emplace(h, T("pi{A,B}(r)"));
  TableauId expansion = Unwrap(engine.ExpansionClass(level_id, beta));
  EXPECT_EQ(expansion, engine.Intern(T("pi{A,B}(r)")));
  // The representative reference taken before the growth is still the
  // stored class member (the documented lifetime-stability contract).
  EXPECT_EQ(&rep, &engine.Representative(level_id));
}

TEST_F(EngineTest, RepeatedMembershipHitsTheVerdictCache) {
  Engine engine(&catalog_);
  View view = MakeProjectionsView("W", "w1", "w2");
  CapacityOracle oracle(&engine, view);
  MembershipResult first = Unwrap(oracle.Contains(T("pi{A}(r)")));
  EXPECT_TRUE(first.member);
  EngineStats after_first = engine.Stats();
  EXPECT_EQ(after_first.verdict.runs, 1u);
  MembershipResult second = Unwrap(oracle.Contains(T("pi{A}(r)")));
  EngineStats after_second = engine.Stats();
  // The repeat was answered from the verdict cache: no new run.
  EXPECT_EQ(after_second.verdict.runs, 1u);
  EXPECT_EQ(after_second.verdict.requests, after_first.verdict.requests + 1);
  // And the cached verdict is indistinguishable from the original.
  EXPECT_EQ(first.member, second.member);
  EXPECT_EQ(first.candidates_tried, second.candidates_tried);
  EXPECT_EQ(first.leaf_budget, second.leaf_budget);
  ASSERT_NE(second.witness, nullptr);
  EXPECT_EQ(ToString(*first.witness, catalog_),
            ToString(*second.witness, catalog_));
}

TEST_F(EngineTest, VerdictsAreIsolatedAcrossQuerySetsWithDifferentHandles) {
  Engine engine(&catalog_);
  // Two query sets with identical queries but different handle relations:
  // the shared engine must not leak one set's witnesses to the other,
  // because witnesses are expressions over the set's own handles.
  View v = MakeProjectionsView("V", "h1", "h2");
  View w = MakeProjectionsView("W", "k1", "k2");
  CapacityOracle ov(&engine, v);
  CapacityOracle ow(&engine, w);
  MembershipResult mv = Unwrap(ov.Contains(T("pi{A,B}(r)")));
  MembershipResult mw = Unwrap(ow.Contains(T("pi{A,B}(r)")));
  ASSERT_TRUE(mv.member);
  ASSERT_TRUE(mw.member);
  std::string wv = ToString(*mv.witness, catalog_);
  std::string ww = ToString(*mw.witness, catalog_);
  EXPECT_NE(wv.find("h1"), std::string::npos) << wv;
  EXPECT_EQ(wv.find("k1"), std::string::npos) << wv;
  EXPECT_NE(ww.find("k1"), std::string::npos) << ww;
  EXPECT_EQ(ww.find("h1"), std::string::npos) << ww;
  // Distinct set fingerprints mean distinct verdict entries, not a hit.
  EXPECT_EQ(engine.Stats().verdict.runs, 2u);
}

TEST_F(EngineTest, RepeatedWorkloadSavesAtLeastAThirdOfKernelRuns) {
  Engine engine(&catalog_);
  View v = MakeProjectionsView("V", "v1", "v2");
  View w = MakeProjectionsView("W", "u1", "u2");
  // Same equivalence question twice. The second pass uses a candidate cap
  // that differs only cosmetically (never binding here), so its verdict
  // keys miss and the full closure search re-runs — against warm reduce,
  // canonical-key, pair-predicate and expansion caches.
  SearchLimits first_limits;
  EquivalenceResult first = Unwrap(AreEquivalent(engine, v, w, first_limits));
  SearchLimits second_limits;
  second_limits.max_candidates = first_limits.max_candidates - 1;
  EquivalenceResult second =
      Unwrap(AreEquivalent(engine, v, w, second_limits));
  EXPECT_TRUE(first.equivalent);
  EXPECT_EQ(first.equivalent, second.equivalent);
  EXPECT_EQ(first.inconclusive, second.inconclusive);
  // A third pass repeating the first limits exactly is answered from the
  // dominance cache alone: both directions hit, so neither a membership
  // verdict lookup nor a search runs.
  const EngineStats before_third = engine.Stats();
  EquivalenceResult third = Unwrap(AreEquivalent(engine, v, w, first_limits));
  EXPECT_EQ(first.equivalent, third.equivalent);
  EngineStats s = engine.Stats();
  EXPECT_EQ(s.verdict.runs, before_third.verdict.runs);
  EXPECT_EQ(s.verdict.requests, before_third.verdict.requests);
  // Four dominance misses across the first two passes (two directions
  // each, the second pass under different limits), two hits on the third.
  EXPECT_EQ(s.dominance.requests, 6u);
  EXPECT_EQ(s.dominance.runs, 4u);
  // The acceptance bar: at least 1.5x fewer Reduce and CanonicalKey kernel
  // executions than a cache-less engine would have performed.
  EXPECT_GE(static_cast<double>(s.reduce.requests),
            1.5 * static_cast<double>(s.reduce.runs))
      << s.reduce.requests << " requests vs " << s.reduce.runs << " runs";
  EXPECT_GE(static_cast<double>(s.canonical_key.requests),
            1.5 * static_cast<double>(s.canonical_key.runs))
      << s.canonical_key.requests << " requests vs "
      << s.canonical_key.runs << " runs";
  // Every membership verdict request above was a genuine miss: the
  // repeat passes were absorbed one level up (dominance hits asserted
  // above) before reaching the membership cache.
  EXPECT_GE(s.verdict.requests, s.verdict.runs);
}

TEST_F(EngineTest, OracleMemoizesRepeatedExpressionQueries) {
  Engine engine(&catalog_);
  View v = MakeProjectionsView("V", "v1", "v2");
  CapacityOracle oracle(&engine, v);
  const ExprPtr query = MustParse(catalog_, "pi{A,B}(r) * pi{B,C}(r)");
  MembershipResult first = Unwrap(oracle.Contains(query));
  const EngineStats after_first = engine.Stats();
  // The repeat is answered from the oracle's expression memo: identical
  // result, and the engine is not consulted at all (no verdict lookup, no
  // intern, no tableau build behind them).
  MembershipResult second = Unwrap(oracle.Contains(query));
  const EngineStats after_second = engine.Stats();
  EXPECT_EQ(first.member, second.member);
  EXPECT_EQ(first.candidates_tried, second.candidates_tried);
  ASSERT_NE(second.witness, nullptr);
  EXPECT_EQ(ToString(first.witness, catalog_),
            ToString(second.witness, catalog_));
  EXPECT_EQ(after_second.verdict.requests, after_first.verdict.requests);
  EXPECT_EQ(after_second.intern_requests, after_first.intern_requests);
  // A semantically equal but textually different rendering misses the
  // memo and goes to the engine, which answers it from the verdict cache
  // (same interned query class, so the verdict key matches).
  MembershipResult third = Unwrap(
      oracle.Contains(MustParse(catalog_, "pi{A,B}(r * r) * pi{B,C}(r)")));
  const EngineStats after_third = engine.Stats();
  EXPECT_EQ(first.member, third.member);
  EXPECT_EQ(after_third.verdict.requests, after_first.verdict.requests + 1);
  EXPECT_EQ(after_third.verdict.runs, after_first.verdict.runs);
}

TEST_F(EngineTest, PairPredicatesAreMemoizedPerClassPair) {
  Engine engine(&catalog_);
  TableauId small = engine.Intern(T("pi{A}(r)"));
  TableauId big = engine.Intern(T("pi{A,B}(r)"));
  EXPECT_TRUE(engine.HomomorphismExists(small, big));
  EXPECT_TRUE(engine.HomomorphismExists(small, big));
  EXPECT_FALSE(engine.HomomorphismExists(big, small));
  EngineStats s = engine.Stats();
  EXPECT_EQ(s.homomorphism.requests, 3u);
  EXPECT_EQ(s.homomorphism.runs, 2u);
  EXPECT_TRUE(engine.RowEmbeds(small, big));
  EXPECT_TRUE(engine.RowEmbeds(small, big));
  s = engine.Stats();
  EXPECT_EQ(s.row_embedding.requests, 2u);
  EXPECT_EQ(s.row_embedding.runs, 1u);
}

TEST_F(EngineTest, ConcurrentInterningAgreesOnOneClass) {
  // N threads interning the same template (and its equivalent forms) must
  // all get a single class id, and the id must resolve to a stable
  // representative. This is the contract the parallel membership search
  // relies on (workers intern levels and expansions concurrently).
  Engine engine(&catalog_);
  const Tableau forms[] = {T("pi{A,B}(r)"), T("pi{A,B}(r * r)"),
                           T("pi{A,B}(r) * pi{A,B}(r)")};
  constexpr std::size_t kIterations = 24;
  std::vector<TableauId> ids(kIterations);
  ParallelFor(engine.SharedPool(8), 8, kIterations, [&](std::size_t i) {
    ids[i] = engine.Intern(forms[i % 3]);
  });
  for (std::size_t i = 1; i < kIterations; ++i) EXPECT_EQ(ids[i], ids[0]);
  // Distinct classes still separate under concurrency.
  const Tableau distinct[] = {T("pi{B,C}(r)"), T("pi{A}(r)")};
  std::vector<TableauId> other(kIterations);
  ParallelFor(engine.SharedPool(8), 8, kIterations, [&](std::size_t i) {
    other[i] = engine.Intern(distinct[i % 2]);
  });
  EXPECT_NE(other[0], ids[0]);
  EXPECT_NE(other[1], other[0]);
  EXPECT_EQ(engine.Stats().interned_classes, 3u);
}

TEST_F(EngineTest, SharedPoolGrowsAndIsReused) {
  Engine engine(&catalog_);
  ThreadPool* pool = engine.SharedPool(2);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->workers(), 1u);  // Caller counts as one thread.
  // Same pool, grown, on a larger request; never shrinks.
  EXPECT_EQ(engine.SharedPool(4), pool);
  EXPECT_EQ(pool->workers(), 3u);
  EXPECT_EQ(engine.SharedPool(2), pool);
  EXPECT_EQ(pool->workers(), 3u);
}

}  // namespace
}  // namespace viewcap
