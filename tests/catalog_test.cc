// Unit tests for relation/catalog.h: interning, typing, DbSchema.
#include "relation/catalog.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::Unwrap;

TEST(CatalogTest, InternsAttributesIdempotently) {
  Catalog catalog;
  AttrId a1 = catalog.AddAttribute("A");
  AttrId a2 = catalog.AddAttribute("A");
  AttrId b = catalog.AddAttribute("B");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(catalog.AttributeName(a1), "A");
  EXPECT_EQ(catalog.num_attributes(), 2u);
}

TEST(CatalogTest, AddRelationValidates) {
  Catalog catalog;
  AttrSet ab = catalog.MakeScheme({"A", "B"});
  RelId r = Unwrap(catalog.AddRelation("r", ab));
  EXPECT_EQ(catalog.RelationName(r), "r");
  EXPECT_EQ(catalog.RelationScheme(r), ab);

  // Empty scheme rejected (schemes are nonempty, Section 1.1).
  Result<RelId> empty = catalog.AddRelation("bad", AttrSet{});
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kIllFormed);

  // Re-adding with the same type returns the same id.
  EXPECT_EQ(Unwrap(catalog.AddRelation("r", ab)), r);

  // Re-adding with a different type fails.
  AttrSet abc = catalog.MakeScheme({"A", "B", "C"});
  Result<RelId> conflict = catalog.AddRelation("r", abc);
  EXPECT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kIllFormed);
}

TEST(CatalogTest, AddRelationRejectsUnknownAttributeIds) {
  Catalog catalog;
  Result<RelId> bad = catalog.AddRelation("r", AttrSet{42});
  EXPECT_FALSE(bad.ok());
}

TEST(CatalogTest, FindByName) {
  Catalog catalog;
  AttrSet ab = catalog.MakeScheme({"A", "B"});
  RelId r = Unwrap(catalog.AddRelation("r", ab));
  EXPECT_EQ(Unwrap(catalog.FindRelation("r")), r);
  EXPECT_EQ(Unwrap(catalog.FindAttribute("A")), catalog.AddAttribute("A"));
  EXPECT_EQ(catalog.FindRelation("nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.FindAttribute("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, MintRelationAvoidsCollisions) {
  Catalog catalog;
  AttrSet ab = catalog.MakeScheme({"A", "B"});
  RelId m1 = catalog.MintRelation("__q", ab);
  RelId m2 = catalog.MintRelation("__q", ab);
  EXPECT_NE(m1, m2);
  EXPECT_NE(catalog.RelationName(m1), catalog.RelationName(m2));
  EXPECT_EQ(catalog.RelationScheme(m1), ab);
}

TEST(CatalogTest, UniverseIsUnionOfTypes) {
  Catalog catalog;
  RelId r = Unwrap(catalog.AddRelation("r", catalog.MakeScheme({"A", "B"})));
  RelId s = Unwrap(catalog.AddRelation("s", catalog.MakeScheme({"B", "C"})));
  EXPECT_EQ(catalog.Universe({r, s}), catalog.MakeScheme({"A", "B", "C"}));
}

TEST(DbSchemaTest, SortsAndDeduplicates) {
  Catalog catalog;
  RelId r = Unwrap(catalog.AddRelation("r", catalog.MakeScheme({"A"})));
  RelId s = Unwrap(catalog.AddRelation("s", catalog.MakeScheme({"B"})));
  DbSchema schema(catalog, {s, r, s});
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_TRUE(schema.Contains(r));
  EXPECT_TRUE(schema.Contains(s));
  EXPECT_EQ(schema.universe(), catalog.MakeScheme({"A", "B"}));
}

TEST(DbSchemaTest, DefaultIsEmpty) {
  DbSchema schema;
  EXPECT_EQ(schema.size(), 0u);
  EXPECT_FALSE(schema.Contains(0));
}

}  // namespace
}  // namespace viewcap
