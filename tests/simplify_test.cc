// Tests for views/simplify.h: Section 4's normal form. Includes the
// reconstruction of the Section 4.1 worked example (see EXPERIMENTS.md for
// the provenance discussion) and the Theorem 4.2.x uniqueness/maximality
// results.
#include <gtest/gtest.h>

#include "algebra/parser.h"
#include "tableau/build.h"
#include "tableau/homomorphism.h"
#include "tests/test_util.h"
#include "views/equivalence.h"
#include "views/redundancy.h"
#include "views/simplify.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

// The Section 4.1 scenario, reconstructed: base e(A,B), f(B,C), g(A);
//   S := e * f               -- traditionally decomposable
//   T := pi{A,C}(e * f) * g  -- NOT traditionally decomposable, but
//                               T == pi{A,C}(S) * pi{A}(T), so T is not
//                               simple in the presence of S.
class Section41Test : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    e_ = Unwrap(catalog_.AddRelation("e", catalog_.MakeScheme({"A", "B"})));
    f_ = Unwrap(catalog_.AddRelation("f", catalog_.MakeScheme({"B", "C"})));
    g_ = Unwrap(catalog_.AddRelation("g", catalog_.MakeScheme({"A"})));
    base_ = DbSchema(catalog_, {e_, f_, g_});
    RelId hs = Unwrap(catalog_.AddRelation("hS", u_));
    RelId ht = Unwrap(catalog_.AddRelation("hT", catalog_.MakeScheme({"A", "C"})));
    view_ = Unwrap(View::Create(
        &catalog_, base_,
        {{hs, MustParse(catalog_, "e * f")},
         {ht, MustParse(catalog_, "pi{A,C}(e * f) * g")}},
        "VST"));
  }

  Tableau T(const std::string& text) {
    return MustBuildTableau(catalog_, u_, *MustParse(catalog_, text));
  }

  Catalog catalog_;
  AttrSet u_;
  RelId e_ = kInvalidRel, f_ = kInvalidRel, g_ = kInvalidRel;
  DbSchema base_;
  std::optional<View> view_;
};

TEST_F(Section41Test, SDecomposesTraditionally) {
  // pi_AB(S) |x| pi_BC(S) == S.
  EXPECT_TRUE(EquivalentTableaux(
      catalog_, T("pi{A,B}(e * f) * pi{B,C}(e * f)"), T("e * f")));
}

TEST_F(Section41Test, TDoesNotDecomposeTraditionally) {
  // pi_A(T) |x| pi_C(T) != T: the A-C correlation is lost.
  EXPECT_FALSE(EquivalentTableaux(
      catalog_,
      T("pi{A}(pi{A,C}(e * f) * g) * pi{C}(pi{A,C}(e * f) * g)"),
      T("pi{A,C}(e * f) * g")));
}

TEST_F(Section41Test, TRebuildsFromProjectionInPresenceOfS) {
  // T == pi_AC(S) * pi_A(T): the inter-relational constraint at work.
  EXPECT_TRUE(EquivalentTableaux(
      catalog_, T("pi{A,C}(e * f) * pi{A}(pi{A,C}(e * f) * g)"),
      T("pi{A,C}(e * f) * g")));
}

TEST_F(Section41Test, ViewIsNonredundantYetNotSimplified) {
  QuerySet set = QuerySet::FromView(*view_);
  EXPECT_TRUE(Unwrap(IsNonredundantSet(&catalog_, set)));
  // Neither defining query is simple.
  EXPECT_FALSE(Unwrap(IsSimple(&catalog_, set, 0)).simple);
  EXPECT_FALSE(Unwrap(IsSimple(&catalog_, set, 1)).simple);
  EXPECT_FALSE(Unwrap(IsSimplifiedView(&catalog_, *view_)));
}

TEST_F(Section41Test, SimplifyProducesTheNormalForm) {
  SimplifyOutcome outcome = Unwrap(Simplify(&catalog_, *view_));
  EXPECT_FALSE(outcome.inconclusive);
  // The normal form: { pi_AB(S), pi_BC(S), pi_A(T) }.
  ASSERT_EQ(outcome.view.size(), 3u);
  std::vector<Tableau> expected = {T("pi{A,B}(e * f)"), T("pi{B,C}(e * f)"),
                                   T("pi{A}(pi{A,C}(e * f) * g)")};
  for (const Tableau& want : expected) {
    bool found = false;
    for (const ViewDefinition& d : outcome.view.definitions()) {
      if (EquivalentTableaux(catalog_, d.tableau, want)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
  // Theorem 4.1.3: equivalent to the input; Theorem 4.1.1: nonredundant.
  EXPECT_TRUE(Unwrap(AreEquivalent(*view_, outcome.view)).equivalent);
  EXPECT_TRUE(Unwrap(IsSimplifiedView(&catalog_, outcome.view)));
  EXPECT_TRUE(Unwrap(
      IsNonredundantSet(&catalog_, QuerySet::FromView(outcome.view))));
}

TEST_F(Section41Test, SimplifiedDefiningQueriesAreProjectionsOfInputs) {
  // Theorem 4.2.1: every defining query of a simplified equivalent is a
  // projection of some defining query of the input.
  SimplifyOutcome outcome = Unwrap(Simplify(&catalog_, *view_));
  SymbolPool pool;
  for (const ViewDefinition& d : outcome.view.definitions()) {
    bool is_projection_of_input = false;
    for (const ViewDefinition& input : view_->definitions()) {
      input.tableau.ReserveSymbols(pool);
      for (const AttrSet& x : input.tableau.Trs().NonemptySubsets()) {
        Tableau projected =
            x == input.tableau.Trs()
                ? input.tableau
                : Unwrap(ProjectTableau(catalog_, input.tableau, x, pool));
        if (EquivalentTableaux(catalog_, d.tableau, projected)) {
          is_projection_of_input = true;
          break;
        }
      }
      if (is_projection_of_input) break;
    }
    EXPECT_TRUE(is_projection_of_input);
  }
}

TEST_F(Section41Test, MaximalityOfSimplifiedViews) {
  // Theorem 4.2.3: no nonredundant equivalent view is larger than the
  // simplified one. Cross-check against the input itself (2 < 3) and the
  // bound machinery.
  SimplifyOutcome outcome = Unwrap(Simplify(&catalog_, *view_));
  NonredundantViewResult nr = Unwrap(MakeNonredundant(*view_));
  EXPECT_LE(nr.view.size(), outcome.view.size());
}

// Example 3.1.5 as the Section 4 illustration: W = {pi_AB(r), pi_BC(r)} is
// simplified; V = {pi_AB(r) |x| pi_BC(r)} is nonredundant but NOT
// simplified; simplify(V) equals W up to renaming (Theorem 4.2.2).
class Example315SimplifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", u_));
    base_ = DbSchema(catalog_, {r_});
    RelId l = Unwrap(catalog_.AddRelation("l", u_));
    RelId l1 = Unwrap(catalog_.AddRelation("l1", catalog_.MakeScheme({"A", "B"})));
    RelId l2 = Unwrap(catalog_.AddRelation("l2", catalog_.MakeScheme({"B", "C"})));
    v_ = Unwrap(View::Create(
        &catalog_, base_,
        {{l, MustParse(catalog_, "pi{A,B}(r) * pi{B,C}(r)")}}, "V"));
    w_ = Unwrap(View::Create(&catalog_, base_,
                             {{l1, MustParse(catalog_, "pi{A,B}(r)")},
                              {l2, MustParse(catalog_, "pi{B,C}(r)")}},
                             "W"));
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel;
  DbSchema base_;
  std::optional<View> v_, w_;
};

TEST_F(Example315SimplifyTest, WIsSimplifiedVIsNot) {
  EXPECT_TRUE(Unwrap(IsSimplifiedView(&catalog_, *w_)));
  EXPECT_FALSE(Unwrap(IsSimplifiedView(&catalog_, *v_)));
}

TEST_F(Example315SimplifyTest, SimplifyVYieldsWUpToRenaming) {
  SimplifyOutcome outcome = Unwrap(Simplify(&catalog_, *v_));
  EXPECT_EQ(outcome.view.size(), 2u);
  EXPECT_TRUE(Unwrap(SameQueriesUpToRenaming(outcome.view, *w_)));
  EXPECT_TRUE(Unwrap(AreEquivalent(outcome.view, *v_)).equivalent);
}

TEST_F(Example315SimplifyTest, SimplifyIsIdempotentUpToRenaming) {
  SimplifyOutcome once = Unwrap(Simplify(&catalog_, *v_));
  SimplifyOutcome twice = Unwrap(Simplify(&catalog_, once.view));
  EXPECT_TRUE(Unwrap(SameQueriesUpToRenaming(once.view, twice.view)));
}

TEST_F(Example315SimplifyTest, UniquenessAcrossEquivalentInputs) {
  // Theorem 4.2.2: simplifying two equivalent views gives the same set of
  // defining queries up to renaming.
  SimplifyOutcome from_v = Unwrap(Simplify(&catalog_, *v_));
  SimplifyOutcome from_w = Unwrap(Simplify(&catalog_, *w_));
  EXPECT_TRUE(Unwrap(SameQueriesUpToRenaming(from_v.view, from_w.view)));
}

TEST_F(Example315SimplifyTest, SimplifiedIsMaximalAmongNonredundant) {
  // Theorem 4.2.3: |V| = 1 <= 2 = |simplified|; and the simplified view
  // attains the maximum size over the nonredundant equivalents we know.
  SimplifyOutcome outcome = Unwrap(Simplify(&catalog_, *v_));
  EXPECT_GE(outcome.view.size(), v_->size());
  EXPECT_GE(outcome.view.size(), w_->size());
}

TEST_F(Example315SimplifyTest, SameQueriesUpToRenamingNegativeCases) {
  EXPECT_FALSE(Unwrap(SameQueriesUpToRenaming(*v_, *w_)));  // Sizes differ.
  RelId l3 = Unwrap(catalog_.AddRelation("l3", catalog_.MakeScheme({"A", "B"})));
  RelId l4 = Unwrap(catalog_.AddRelation("l4", catalog_.MakeScheme({"A", "C"})));
  View other = Unwrap(View::Create(&catalog_, base_,
                                   {{l3, MustParse(catalog_, "pi{A,B}(r)")},
                                    {l4, MustParse(catalog_, "pi{A,C}(r)")}},
                                   "Other"));
  EXPECT_FALSE(Unwrap(SameQueriesUpToRenaming(other, *w_)));
}

TEST_F(Example315SimplifyTest, ProperProjectionMembersEnumeratesAll) {
  Tableau t = MustBuildTableau(catalog_, u_, *MustParse(catalog_, "r"));
  std::vector<QuerySet::Member> all =
      Unwrap(ProperProjectionMembers(&catalog_, t));
  EXPECT_EQ(all.size(), 6u);  // 2^3 - 2 for TRS {A,B,C}.
  std::vector<QuerySet::Member> maximal =
      Unwrap(MaximalProperProjectionMembers(&catalog_, t));
  EXPECT_EQ(maximal.size(), 3u);
  for (const QuerySet::Member& m : maximal) {
    EXPECT_EQ(m.query.Trs().size(), 2u);
  }
}

TEST(SimplifyDeterminismTest, SurrogateNamesIdenticalAcrossFreshProcesses) {
  // The minted surrogate relation names are seeded from the view's
  // fingerprint, not a process-local counter, so two cold runs — and a
  // cold run vs a warm daemon — render byte-identically. The service
  // differential (tests/service_test.cc, tools/diff_cli_daemon.py)
  // depends on this: it compares simplify output with no carve-out.
  constexpr char kProgram[] = R"(
schema { e(A, B); f(B, C); g(A); }
view VST {
  hS := e * f;
  hT := pi{A,C}(e * f) * g;
}
)";
  auto run = [&] {
    Analyzer analyzer;
    VIEWCAP_EXPECT_OK(analyzer.Load(kProgram));
    std::string report;
    Unwrap(analyzer.SimplifyView("VST", &report));
    return report;
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  // The seeded-prefix scheme is visible in the minted names.
  EXPECT_NE(first.find("_s"), std::string::npos);
}

TEST_F(Example315SimplifyTest, SingleAttributeQueriesAreSimpleIffNonredundant) {
  // TRS of size one has no proper projections: simplicity degenerates to
  // nonredundancy.
  RelId p1 = Unwrap(catalog_.AddRelation("p1", catalog_.MakeScheme({"A"})));
  View tiny = Unwrap(View::Create(
      &catalog_, base_, {{p1, MustParse(catalog_, "pi{A}(r)")}}, "Tiny"));
  QuerySet set = QuerySet::FromView(tiny);
  EXPECT_TRUE(Unwrap(IsSimple(&catalog_, set, 0)).simple);
  EXPECT_TRUE(Unwrap(IsSimplifiedView(&catalog_, tiny)));
  SimplifyOutcome outcome = Unwrap(Simplify(&catalog_, tiny));
  EXPECT_TRUE(Unwrap(SameQueriesUpToRenaming(outcome.view, tiny)));
}

}  // namespace
}  // namespace viewcap
