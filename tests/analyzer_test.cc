// End-to-end tests for core/analyzer.h.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::Unwrap;

constexpr char kProgram[] = R"(
  schema { r(A, B, C); }
  view V { v := pi{A,B}(r) * pi{B,C}(r); }
  view W { w1 := pi{A,B}(r); w2 := pi{B,C}(r); }
  view Narrow { n := pi{A,B}(r); }
)";

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override { VIEWCAP_ASSERT_OK(analyzer_.Load(kProgram)); }
  Analyzer analyzer_;
};

TEST_F(AnalyzerTest, LoadsViewsInOrder) {
  EXPECT_EQ(analyzer_.ViewNames(),
            (std::vector<std::string>{"V", "W", "Narrow"}));
  EXPECT_EQ(analyzer_.base().size(), 1u);
  const View* v = Unwrap(analyzer_.GetView("V"));
  EXPECT_EQ(v->size(), 1u);
  EXPECT_EQ(analyzer_.GetView("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(AnalyzerTest, EquivalenceWithReport) {
  std::string report;
  EquivalenceResult eq =
      Unwrap(analyzer_.CheckEquivalence("V", "W", &report));
  EXPECT_TRUE(eq.equivalent);
  EXPECT_NE(report.find("equivalent(V, W) = true"), std::string::npos);
  EXPECT_NE(report.find("answered by"), std::string::npos);

  EquivalenceResult neq =
      Unwrap(analyzer_.CheckEquivalence("V", "Narrow", &report));
  EXPECT_FALSE(neq.equivalent);
  EXPECT_NE(report.find("NOT answerable"), std::string::npos);
}

TEST_F(AnalyzerTest, AnswerableQueries) {
  std::string report;
  MembershipResult yes = Unwrap(analyzer_.CheckAnswerable(
      "W", "pi{A,C}(pi{A,B}(r) * pi{B,C}(r))", &report));
  EXPECT_TRUE(yes.member);
  EXPECT_NE(report.find("answerable via"), std::string::npos);

  MembershipResult no = Unwrap(analyzer_.CheckAnswerable("W", "r", &report));
  EXPECT_FALSE(no.member);
  EXPECT_NE(report.find("not answerable"), std::string::npos);
}

TEST_F(AnalyzerTest, AnswerableRejectsNonBaseQueries) {
  // 'v' is a view relation, not a base one: not a query of the database.
  EXPECT_EQ(analyzer_.CheckAnswerable("W", "v").status().code(),
            StatusCode::kIllFormed);
  // Parse errors propagate.
  EXPECT_EQ(analyzer_.CheckAnswerable("W", "pi{").status().code(),
            StatusCode::kParseError);
}

TEST_F(AnalyzerTest, RedundancyEliminationRegistersResult) {
  VIEWCAP_ASSERT_OK(analyzer_.Load(R"(
    view R3 { a := pi{A,B}(r); b := pi{B,C}(r);
              c := pi{A,B}(r) * pi{B,C}(r); }
  )"));
  std::string report;
  NonredundantViewResult nr =
      Unwrap(analyzer_.EliminateRedundancy("R3", &report));
  // Greedy order drops a (= pi_AB(c)) and then b (= pi_BC(c)), leaving the
  // singleton {c} — the Example 3.1.5 phenomenon that nonredundant
  // equivalents come in different sizes.
  EXPECT_EQ(nr.view.size(), 1u);
  EXPECT_NE(report.find("kept 1 of 3"), std::string::npos);
  EXPECT_TRUE(analyzer_.GetView("R3_nr").ok());
}

TEST_F(AnalyzerTest, SimplifyRegistersResult) {
  std::string report;
  SimplifyOutcome outcome = Unwrap(analyzer_.SimplifyView("V", &report));
  EXPECT_EQ(outcome.view.size(), 2u);
  EXPECT_TRUE(analyzer_.GetView("V_simplified").ok());
  EXPECT_NE(report.find("simplified in"), std::string::npos);
}

TEST_F(AnalyzerTest, IncrementalLoadSharesCatalog) {
  VIEWCAP_ASSERT_OK(analyzer_.Load(R"(
    schema { s(C, D); }
    view X { x := r * s; }
  )"));
  EXPECT_EQ(analyzer_.base().size(), 2u);
  EXPECT_TRUE(analyzer_.GetView("X").ok());
}

TEST_F(AnalyzerTest, DuplicateViewNameRejected) {
  Status st = analyzer_.Load("view V { dup := pi{A}(r); }");
  EXPECT_EQ(st.code(), StatusCode::kIllFormed);
}

TEST_F(AnalyzerTest, LimitsArePluggable) {
  SearchLimits limits;
  limits.max_candidates = 1;
  analyzer_.set_limits(limits);
  // A non-member query under a starved budget: the analyzer reports the
  // exhaustion instead of a clean negative.
  MembershipResult m = Unwrap(analyzer_.CheckAnswerable("W", "r"));
  EXPECT_FALSE(m.member);
  EXPECT_TRUE(m.budget_exhausted);
}

TEST_F(AnalyzerTest, LatticeClassifiesAllPairs) {
  std::string report;
  std::vector<Analyzer::LatticeEntry> entries =
      Unwrap(analyzer_.CompareAllViews(&report));
  ASSERT_EQ(entries.size(), 3u);  // C(3,2) pairs.
  // V ~ W equivalent; both strictly dominate Narrow.
  for (const Analyzer::LatticeEntry& e : entries) {
    if (e.left == "V" && e.right == "W") {
      EXPECT_TRUE(e.left_dominates_right);
      EXPECT_TRUE(e.right_dominates_left);
    }
    if (e.right == "Narrow") {
      EXPECT_TRUE(e.left_dominates_right);
      EXPECT_FALSE(e.right_dominates_left);
    }
  }
  EXPECT_NE(report.find("EQUIVALENT"), std::string::npos);
  EXPECT_NE(report.find("dominates"), std::string::npos);
}

TEST_F(AnalyzerTest, MinimizeQuery) {
  std::string report;
  MinimizeResult result = Unwrap(analyzer_.MinimizeQuery(
      "pi{A,B}(r) * pi{A,B}(r * r)", &report));
  EXPECT_EQ(result.leaves_after, 1u);
  EXPECT_TRUE(result.minimal);
  EXPECT_NE(report.find("-> 1 leaves"), std::string::npos);
  // Rejects view-relation queries and parse errors.
  EXPECT_EQ(analyzer_.MinimizeQuery("v").status().code(),
            StatusCode::kIllFormed);
  EXPECT_EQ(analyzer_.MinimizeQuery("pi{").status().code(),
            StatusCode::kParseError);
}

TEST_F(AnalyzerTest, ExportedViewReloadsElsewhere) {
  std::string program = Unwrap(analyzer_.ExportView("W"));
  Analyzer fresh;
  VIEWCAP_ASSERT_OK(fresh.Load(program));
  const View* reloaded = Unwrap(fresh.GetView("W"));
  EXPECT_EQ(reloaded->size(), 2u);
}

TEST_F(AnalyzerTest, EvaluateViewQueryAgainstData) {
  std::string report;
  Relation result = Unwrap(analyzer_.EvaluateViewQuery(
      "W", "pi{A,C}(w1 * w2)",
      "r(1, 1, 1); r(2, 1, 3); r(2, 2, 2);", &report));
  // pi_AB and pi_BC recombine on B: pairs (a, c) with a shared b.
  // b=1: a in {1,2} x c in {1,3}; b=2: (2,2) -> 4 + 1 = 5.
  EXPECT_EQ(result.size(), 5u);
  EXPECT_NE(report.find("surrogate: pi{A, C}"), std::string::npos);

  // Errors: bad data, bad query, unknown view.
  EXPECT_EQ(analyzer_
                .EvaluateViewQuery("W", "w1", "r(1);")
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(analyzer_
                .EvaluateViewQuery("W", "r", "r(1, 1, 1);")
                .status()
                .code(),
            StatusCode::kIllFormed);  // 'r' is not a view-schema query.
  EXPECT_EQ(analyzer_
                .EvaluateViewQuery("Nope", "w1", "")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(AnalyzerErrorTest, BadProgramFailsCleanly) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.Load("view V { v := r; }").code(),
            StatusCode::kParseError);
  EXPECT_TRUE(analyzer.ViewNames().empty());
}

}  // namespace
}  // namespace viewcap
