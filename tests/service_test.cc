// Tests for the service core (src/service): the JSON value model, the
// canonical CLI grammar, the Dispatcher request/response contract for
// every RequestKind, the JSON-RPC protocol round trip, and the
// in-process CLI-vs-protocol differential that pins the bit-identical
// verdict guarantee the daemon advertises.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "service/cli.h"
#include "service/dispatcher.h"
#include "service/json.h"
#include "service/protocol.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::Unwrap;

// Example 3.1.5: V and W are equivalent views over one ternary relation.
constexpr const char* kExampleProgram = R"(
schema { r(A, B, C); }
view V { v := pi{A,B}(r) * pi{B,C}(r); }
view W {
  w1 := pi{A,B}(r);
  w2 := pi{B,C}(r);
}
)";

constexpr const char* kExampleData = R"(
r(1, 1, 1);
r(2, 1, 3);
r(2, 2, 2);
)";

// --- JSON value model ---------------------------------------------------

TEST(ServiceJsonTest, ParsesScalarsAndStructure) {
  JsonValue v = Unwrap(ParseJson(
      R"({"a": 1, "b": [true, null, "x\n\"y\""], "c": {"d": -2.5}})"));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("a")->AsSize(), 1u);
  const JsonValue* b = v.Find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[0].AsBool());
  EXPECT_TRUE(b->items()[1].is_null());
  EXPECT_EQ(b->items()[2].AsString(), "x\n\"y\"");
  EXPECT_EQ(v.Find("c")->Find("d")->AsNumber(), -2.5);
}

TEST(ServiceJsonTest, RoundTripsThroughWriter) {
  const std::string text =
      R"({"s":"line1\nline2\t\"q\"","n":42,"f":-0.125,"a":[1,2],"o":{}})";
  JsonValue v = Unwrap(ParseJson(text));
  EXPECT_EQ(WriteJson(v), text);
}

TEST(ServiceJsonTest, WritesIntegersWithoutFraction) {
  EXPECT_EQ(WriteJson(JsonValue::Number(7)), "7");
  EXPECT_EQ(WriteJson(JsonValue::Number(0)), "0");
}

TEST(ServiceJsonTest, ParsesUnicodeEscapes) {
  JsonValue v = Unwrap(ParseJson(R"(["Aé"])"));
  EXPECT_EQ(v.items()[0].AsString(), "A\xc3\xa9");
}

TEST(ServiceJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  // Depth cap against adversarial nesting.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

// --- Canonical CLI grammar ----------------------------------------------

TEST(ServiceCliTest, ParsesAnalysisCommand) {
  CliInvocation inv = Unwrap(ParseCommandLine(
      {"prog.vcp", "equiv", "V", "W", "--threads=4", "--engine-stats"}));
  EXPECT_EQ(inv.request.kind, RequestKind::kEquiv);
  EXPECT_EQ(inv.program_path, "prog.vcp");
  EXPECT_EQ(inv.request.view, "V");
  EXPECT_EQ(inv.request.other_view, "W");
  ASSERT_TRUE(inv.request.threads.has_value());
  EXPECT_EQ(*inv.request.threads, 4u);
  EXPECT_TRUE(inv.request.engine_stats);
}

TEST(ServiceCliTest, LintLeadingAndTrailingFormsAgree) {
  CliInvocation lead = Unwrap(
      ParseCommandLine({"lint", "prog.vcp", "--format=sarif", "--fix"}));
  CliInvocation trail = Unwrap(
      ParseCommandLine({"prog.vcp", "lint", "--format=sarif", "--fix"}));
  for (const CliInvocation* inv : {&lead, &trail}) {
    EXPECT_EQ(inv->request.kind, RequestKind::kLint);
    EXPECT_EQ(inv->program_path, "prog.vcp");
    EXPECT_EQ(inv->request.lint.format, LintFormat::kSarif);
    EXPECT_TRUE(inv->request.lint.fix);
    EXPECT_TRUE(inv->fix_in_place);
  }
}

TEST(ServiceCliTest, LintFlagsRejectedOutsideLint) {
  auto result = ParseCommandLine({"prog.vcp", "list", "--format=json"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("only valid for lint"),
            std::string::npos);
}

TEST(ServiceCliTest, RejectsBadCountsAndArity) {
  EXPECT_FALSE(ParseCommandLine({"p.vcp", "equiv", "V"}).ok());
  EXPECT_FALSE(ParseCommandLine({"p.vcp", "capacity", "V", "zero"}).ok());
  EXPECT_FALSE(ParseCommandLine({"p.vcp", "capacity", "V", "0"}).ok());
  EXPECT_FALSE(ParseCommandLine({"p.vcp", "list", "--threads=x"}).ok());
  EXPECT_FALSE(ParseCommandLine({"p.vcp", "frobnicate"}).ok());
  // load/stats are protocol-only methods, not CLI commands.
  EXPECT_FALSE(ParseCommandLine({"p.vcp", "load"}).ok());
  EXPECT_FALSE(ParseCommandLine({"p.vcp", "stats"}).ok());
}

TEST(ServiceCliTest, ThreadsUnsetKeepsWorkspaceDefault) {
  CliInvocation inv = Unwrap(ParseCommandLine({"p.vcp", "list"}));
  EXPECT_FALSE(inv.request.threads.has_value());
}

// --- Dispatcher: every kind round-trips ---------------------------------

class ServiceDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    VIEWCAP_ASSERT_OK(workspace_.Load(kExampleProgram));
  }

  Response Run(Request request) { return dispatcher_.Handle(request); }

  Workspace workspace_;
  Dispatcher dispatcher_{&workspace_};
};

TEST_F(ServiceDispatchTest, ListExportAndStats) {
  Request list;
  list.kind = RequestKind::kList;
  Response r = Run(list);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("view V"), std::string::npos);
  EXPECT_NE(r.output.find("view W"), std::string::npos);

  Request exp;
  exp.kind = RequestKind::kExport;
  exp.view = "W";
  r = Run(exp);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("schema {"), std::string::npos);

  Request stats;
  stats.kind = RequestKind::kStats;
  r = Run(stats);
  EXPECT_TRUE(r.has_engine_stats);
  EXPECT_NE(r.output.find("Engine statistics"), std::string::npos);
}

TEST_F(ServiceDispatchTest, EquivalenceVerdictsAndExitCodes) {
  Request eq;
  eq.kind = RequestKind::kEquiv;
  eq.view = "V";
  eq.other_view = "W";
  Response r = Run(eq);
  ASSERT_TRUE(r.verdict.has_value());
  EXPECT_TRUE(*r.verdict);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("equivalent(V, W) = true"), std::string::npos);

  eq.view = "W";
  eq.other_view = "V";
  r = Run(eq);
  ASSERT_TRUE(r.verdict.has_value());
  EXPECT_TRUE(*r.verdict);
}

TEST_F(ServiceDispatchTest, AnswerableVerdictWitnessAndNegative) {
  Request member;
  member.kind = RequestKind::kAnswerable;
  member.view = "W";
  member.query = "pi{A,B}(r)";
  Response r = Run(member);
  ASSERT_TRUE(r.verdict.has_value());
  EXPECT_TRUE(*r.verdict);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_FALSE(r.witness.empty());

  member.query = "r";
  r = Run(member);
  ASSERT_TRUE(r.verdict.has_value());
  EXPECT_FALSE(*r.verdict);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.output.find("not answerable"), std::string::npos);
}

TEST_F(ServiceDispatchTest, MutatingCommandsRegisterResults) {
  Request nr;
  nr.kind = RequestKind::kNonredundant;
  nr.view = "W";
  EXPECT_EQ(Run(nr).exit_code, 0);

  Request simp;
  simp.kind = RequestKind::kSimplify;
  simp.view = "V";
  EXPECT_EQ(Run(simp).exit_code, 0);

  Request list;
  list.kind = RequestKind::kList;
  const std::string views = Run(list).output;
  EXPECT_NE(views.find("W_nr"), std::string::npos);
  EXPECT_NE(views.find("V_simplified"), std::string::npos);
}

TEST_F(ServiceDispatchTest, LatticeMinimizeCapacityEvalReport) {
  Request lattice;
  lattice.kind = RequestKind::kLattice;
  Response r = Run(lattice);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_FALSE(r.output.empty());

  Request minimize;
  minimize.kind = RequestKind::kMinimize;
  minimize.query = "pi{A,B}(r) * pi{A,B}(r * r)";
  r = Run(minimize);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("minimal"), std::string::npos);

  Request capacity;
  capacity.kind = RequestKind::kCapacity;
  capacity.view = "W";
  capacity.max_leaves = 2;
  r = Run(capacity);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("members derivable"), std::string::npos);

  Request eval;
  eval.kind = RequestKind::kEval;
  eval.view = "W";
  eval.query = "pi{A,C}(w1 * w2)";
  eval.data_text = kExampleData;
  r = Run(eval);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("surrogate:"), std::string::npos);

  Request report;
  report.kind = RequestKind::kReport;
  r = Run(report);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("viewcap analysis report"), std::string::npos);
}

TEST_F(ServiceDispatchTest, ComposeReportsWellFormednessErrors) {
  // Program loading flattens views-of-views to base level (Lemma 1.4.1),
  // so a text-loaded outer is already over the base schema and Compose
  // correctly rejects it; unknown names report NotFound. Both surface
  // through the service with the CLI error contract.
  VIEWCAP_ASSERT_OK(workspace_.Load("view Outer { o := w1 * w2; }"));
  Request compose;
  compose.kind = RequestKind::kCompose;
  compose.view = "W";
  compose.other_view = "Outer";
  Response r = Run(compose);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.status.code(), StatusCode::kIllFormed);

  compose.other_view = "Nope";
  r = Run(compose);
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
}

TEST_F(ServiceDispatchTest, ErrorsKeepCliContract) {
  Request exp;
  exp.kind = RequestKind::kExport;
  exp.view = "Nope";
  Response r = Run(exp);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
}

TEST_F(ServiceDispatchTest, EngineStatsAppendMatchesLegacyShape) {
  Request eq;
  eq.kind = RequestKind::kEquiv;
  eq.view = "V";
  eq.other_view = "W";
  eq.engine_stats = true;
  Response r = Run(eq);
  EXPECT_TRUE(r.has_engine_stats);
  // Appended after the multi-line equiv report, separated by the legacy
  // "\n" (the report itself continues past the "= true" verdict line).
  EXPECT_NE(r.output.find("equivalent(V, W) = true"), std::string::npos);
  EXPECT_NE(r.output.find("\n\n## Engine statistics"), std::string::npos);
  EXPECT_GT(r.engine_stats.interned_classes, 0u);
}

TEST_F(ServiceDispatchTest, LintThroughDispatcher) {
  Request lint;
  lint.kind = RequestKind::kLint;
  lint.program_path = "demo.vcp";
  lint.program_text =
      "schema { r(A, B); }\n"
      "view Bad { b := pi{A,A}(q); }\n";
  Response r = Run(lint);
  EXPECT_EQ(r.exit_code, 4);  // Undefined relation 'q' is an error.
  EXPECT_GT(r.lint_errors, 0u);
  EXPECT_NE(r.output.find("demo.vcp:"), std::string::npos);

  lint.lint.fix_dry_run = true;
  lint.lint.fix = true;
  r = Run(lint);
  // The dry run prints the fixed program and reports the fix tally.
  EXPECT_NE(r.output.find("schema"), std::string::npos);
  EXPECT_NE(r.note.find("dry run"), std::string::npos);
}

TEST_F(ServiceDispatchTest, PerRequestThreadsKeepVerdictsIdentical) {
  std::vector<Response> runs;
  for (std::size_t threads : {1u, 2u, 8u}) {
    Request eq;
    eq.kind = RequestKind::kEquiv;
    eq.view = "V";
    eq.other_view = "W";
    eq.threads = threads;
    runs.push_back(Run(eq));
  }
  for (const Response& r : runs) {
    EXPECT_EQ(r.output, runs.front().output);
    EXPECT_EQ(r.exit_code, runs.front().exit_code);
  }
}

// --- Protocol round trip ------------------------------------------------

TEST(ServiceProtocolTest, EveryKindSurvivesJsonRoundTrip) {
  std::vector<Request> requests;
  {
    Request r;
    r.kind = RequestKind::kLoad;
    r.program_text = kExampleProgram;
    requests.push_back(r);
  }
  for (RequestKind kind : {RequestKind::kList, RequestKind::kLattice,
                           RequestKind::kReport, RequestKind::kStats}) {
    Request r;
    r.kind = kind;
    requests.push_back(r);
  }
  for (RequestKind kind :
       {RequestKind::kExport, RequestKind::kNonredundant,
        RequestKind::kSimplify}) {
    Request r;
    r.kind = kind;
    r.view = "W";
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kEquiv;
    r.view = "V";
    r.other_view = "W";
    r.threads = 2;
    requests.push_back(r);
    r.kind = RequestKind::kCompose;
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kAnswerable;
    r.view = "W";
    r.query = "pi{A,B}(r)";
    r.engine_stats = true;
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kMinimize;
    r.query = "pi{A,B}(r * r)";
    r.max_candidates = 1000;
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kCapacity;
    r.view = "W";
    r.max_leaves = 3;
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kEval;
    r.view = "W";
    r.query = "w1";
    r.data_text = kExampleData;
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kLint;
    r.program_text = kExampleProgram;
    r.program_path = "x.vcp";
    r.lint.format = LintFormat::kSarif;
    r.lint.semantic = false;
    r.lint.fix = true;
    r.lint.have_baseline = true;
    r.lint.baseline_text = "# baseline";
    r.lint.want_baseline = true;
    r.lint.max_semantic_definitions = 5;
    requests.push_back(r);
  }

  for (const Request& original : requests) {
    const std::string wire = WriteJson(RequestToJson(original));
    JsonValue msg = Unwrap(ParseJson(wire));
    Request back = Unwrap(RequestFromJson(msg.Find("method")->AsString(),
                                          msg.Find("params")));
    EXPECT_EQ(back.kind, original.kind) << wire;
    EXPECT_EQ(back.program_text, original.program_text);
    EXPECT_EQ(back.program_path, original.program_path);
    EXPECT_EQ(back.view, original.view);
    EXPECT_EQ(back.other_view, original.other_view);
    EXPECT_EQ(back.query, original.query);
    EXPECT_EQ(back.data_text, original.data_text);
    EXPECT_EQ(back.max_leaves, original.max_leaves);
    EXPECT_EQ(back.threads, original.threads);
    EXPECT_EQ(back.max_candidates, original.max_candidates);
    EXPECT_EQ(back.engine_stats, original.engine_stats);
    EXPECT_EQ(back.lint.format, original.lint.format);
    EXPECT_EQ(back.lint.semantic, original.lint.semantic);
    EXPECT_EQ(back.lint.fix, original.lint.fix);
    EXPECT_EQ(back.lint.fix_dry_run, original.lint.fix_dry_run);
    EXPECT_EQ(back.lint.baseline_text, original.lint.baseline_text);
    EXPECT_EQ(back.lint.have_baseline, original.lint.have_baseline);
    EXPECT_EQ(back.lint.want_baseline, original.lint.want_baseline);
    EXPECT_EQ(back.lint.max_semantic_definitions,
              original.lint.max_semantic_definitions);
  }
}

TEST(ServiceProtocolTest, MethodAliasesResolve) {
  JsonValue params = Unwrap(ParseJson(R"js({"view":"W","query":"r"})js"));
  EXPECT_EQ(Unwrap(RequestFromJson("membership", &params)).kind,
            RequestKind::kAnswerable);
  EXPECT_EQ(Unwrap(RequestFromJson("analyze", nullptr)).kind,
            RequestKind::kReport);
  EXPECT_FALSE(RequestFromJson("frobnicate", nullptr).ok());
  // Required params are enforced.
  EXPECT_FALSE(RequestFromJson("equiv", nullptr).ok());
  EXPECT_FALSE(RequestFromJson("answerable", nullptr).ok());
}

TEST(ServiceProtocolTest, SessionServesRequestsAndShutdown) {
  Workspace workspace;
  Dispatcher dispatcher(&workspace);
  ServerStats stats;

  std::ostringstream request_lines;
  {
    Request load;
    load.kind = RequestKind::kLoad;
    load.program_text = kExampleProgram;
    JsonValue msg = RequestToJson(load);
    msg.Set("id", JsonValue::Number(1));
    request_lines << WriteJson(msg) << "\n";
  }
  request_lines << "\n";  // Blank lines are skipped.
  request_lines
      << R"({"id":2,"method":"equiv","params":{"left":"V","right":"W"}})"
      << "\n";
  request_lines << R"({"id":3,"method":"ping"})" << "\n";
  request_lines << R"(this is not json)" << "\n";
  request_lines << R"({"id":4,"method":"stats"})" << "\n";
  request_lines << R"({"id":5,"method":"shutdown"})" << "\n";
  request_lines << R"({"id":6,"method":"list"})" << "\n";  // After shutdown.

  std::istringstream in(request_lines.str());
  std::ostringstream out;
  const bool shutdown = ServeSession(dispatcher, &stats, in, out);
  EXPECT_TRUE(shutdown);

  std::vector<std::string> replies;
  std::istringstream reply_stream(out.str());
  for (std::string line; std::getline(reply_stream, line);) {
    replies.push_back(line);
  }
  ASSERT_EQ(replies.size(), 6u);  // Request 6 was never served.
  EXPECT_NE(replies[0].find("\"id\":1"), std::string::npos);
  EXPECT_NE(replies[1].find("\"verdict\":true"), std::string::npos);
  EXPECT_NE(replies[1].find("equivalent(V, W) = true"), std::string::npos);
  EXPECT_NE(replies[2].find("\"result\":{\"ok\":true}"), std::string::npos);
  EXPECT_NE(replies[3].find("\"error\""), std::string::npos);
  EXPECT_NE(replies[4].find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(replies[4].find("\"engine_stats\""), std::string::npos);
  EXPECT_NE(replies[5].find("\"shutting_down\":true"), std::string::npos);
  EXPECT_EQ(stats.requests.load(), 6u);
  EXPECT_EQ(stats.sessions.load(), 1u);
}

// --- CLI vs protocol differential ---------------------------------------
//
// The same command dispatched as a one-shot (fresh Workspace, like
// viewcap_cli) and through a persistent protocol session (like viewcapd)
// must produce byte-identical output and exit codes. tools/
// diff_cli_daemon.py repeats this at the binary level over
// examples/programs/*.vcp.
//
// Simplify's surrogate relation names are seeded from the input view's
// fingerprint (not a catalog-global counter), so even the minted names
// match byte for byte between a cold one-shot and a warm session that
// already did unrelated work.
TEST(ServiceDifferentialTest, OneShotAndSessionAgreeByteForByte) {
  struct Case {
    const char* method;
    const char* params;
  };
  // Mutating commands (they register result views in the warm workspace)
  // come last, so every earlier command sees identical view sets in the
  // cold and warm workspaces.
  const std::vector<Case> cases = {
      {"list", "{}"},
      {"equiv", R"({"left":"V","right":"W"})"},
      {"answerable", R"js({"view":"W","query":"pi{A,B}(r)"})js"},
      {"answerable", R"({"view":"W","query":"r"})"},
      {"lattice", "{}"},
      {"minimize", R"js({"query":"pi{A,B}(r) * pi{A,B}(r * r)"})js"},
      {"export", R"({"view":"W"})"},
      {"capacity", R"({"view":"W","max_leaves":2})"},
      {"report", "{}"},
      {"nonredundant", R"({"view":"W"})"},
      {"simplify", R"({"view":"V"})"},
  };

  // Persistent session: one warm workspace serves every case in order.
  Workspace warm;
  Dispatcher warm_dispatcher(&warm);
  VIEWCAP_ASSERT_OK(warm.Load(kExampleProgram));

  for (const Case& c : cases) {
    JsonValue params = Unwrap(ParseJson(c.params));
    Request request = Unwrap(RequestFromJson(c.method, &params));

    // One-shot: fresh workspace per command, exactly like viewcap_cli.
    Workspace cold;
    Dispatcher cold_dispatcher(&cold);
    VIEWCAP_ASSERT_OK(cold.Load(kExampleProgram));
    Response one_shot = cold_dispatcher.Handle(request);
    Response served = warm_dispatcher.Handle(request);

    EXPECT_EQ(one_shot.output, served.output)
        << c.method << " " << c.params;
    EXPECT_EQ(one_shot.exit_code, served.exit_code)
        << c.method << " " << c.params;
    EXPECT_EQ(one_shot.verdict, served.verdict)
        << c.method << " " << c.params;
    EXPECT_EQ(one_shot.witness, served.witness)
        << c.method << " " << c.params;
  }
}

}  // namespace
}  // namespace viewcap
