// Tests for views/redundancy.h: Example 3.1.1, Theorems 3.1.4 and 3.1.7.
#include <gtest/gtest.h>

#include "algebra/parser.h"
#include "tests/test_util.h"
#include "views/equivalence.h"
#include "views/redundancy.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

// Example 3.1.1: D = {r}, S1 = pi_AB(r), S2 = pi_BC(r), S = S1 |x| S2.
// S is redundant in {S, S1, S2}; {S1, S2} is nonredundant.
class Example311Test : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", u_));
    base_ = DbSchema(catalog_, {r_});
    RelId hs = Unwrap(catalog_.AddRelation("h_s", u_));
    RelId h1 = Unwrap(catalog_.AddRelation("h_s1", catalog_.MakeScheme({"A", "B"})));
    RelId h2 = Unwrap(catalog_.AddRelation("h_s2", catalog_.MakeScheme({"B", "C"})));
    view_ = Unwrap(View::Create(
        &catalog_, base_,
        {{hs, MustParse(catalog_, "pi{A,B}(r) * pi{B,C}(r)")},
         {h1, MustParse(catalog_, "pi{A,B}(r)")},
         {h2, MustParse(catalog_, "pi{B,C}(r)")}},
        "SAll"));
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel;
  DbSchema base_;
  std::optional<View> view_;
};

TEST_F(Example311Test, JoinIsRedundant) {
  QuerySet set = QuerySet::FromView(*view_);
  RedundancyResult s_result = Unwrap(IsRedundant(&catalog_, set, 0));
  EXPECT_TRUE(s_result.redundant);
  ASSERT_NE(s_result.membership.witness, nullptr);
  EXPECT_EQ(s_result.membership.witness->LeafCount(), 2u);  // h_s1 * h_s2.

  // The projections are ALSO redundant in the full set (S1 = pi_AB(S),
  // S2 = pi_BC(S)): Example 3.1.1 claims only that {S1, S2} taken alone is
  // nonredundant, which SubsetIsNonredundant checks.
  EXPECT_TRUE(Unwrap(IsRedundant(&catalog_, set, 1)).redundant);
  EXPECT_TRUE(Unwrap(IsRedundant(&catalog_, set, 2)).redundant);
}

TEST_F(Example311Test, SubsetIsNonredundant) {
  // {S1, S2} is a nonredundant query set (Proposition 3.1.3 instance).
  QuerySet set = QuerySet::FromView(*view_).Without(0);
  EXPECT_TRUE(Unwrap(IsNonredundantSet(&catalog_, set)));
}

TEST_F(Example311Test, MakeNonredundantReachesAFixpoint) {
  // Greedy elimination scans in order and drops S (index 0) first; the
  // surviving {S1, S2} is nonredundant. (Dropping a projection first would
  // eventually leave {S} — also a valid nonredundant equivalent; the two
  // outcomes are exactly the views of Example 3.1.5.)
  NonredundantViewResult result = Unwrap(MakeNonredundant(*view_));
  EXPECT_FALSE(result.inconclusive);
  EXPECT_EQ(result.view.size(), 2u);
  // Theorem 3.1.4: the result is equivalent to the input.
  EXPECT_TRUE(Unwrap(AreEquivalent(*view_, result.view)).equivalent);
  // And itself nonredundant.
  EXPECT_TRUE(Unwrap(
      IsNonredundantSet(&catalog_, QuerySet::FromView(result.view))));
}

TEST_F(Example311Test, SingletonIsNeverRedundant) {
  QuerySet set = QuerySet::FromView(view_->Restrict({0}));
  EXPECT_FALSE(Unwrap(IsRedundant(&catalog_, set, 0)).redundant);
}

TEST_F(Example311Test, IndexOutOfRangeIsInvalidArgument) {
  QuerySet set = QuerySet::FromView(*view_);
  EXPECT_EQ(IsRedundant(&catalog_, set, 99).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(Example311Test, DuplicateDefinitionsCollapse) {
  RelId d1 = Unwrap(catalog_.AddRelation("dup1", catalog_.MakeScheme({"A", "B"})));
  RelId d2 = Unwrap(catalog_.AddRelation("dup2", catalog_.MakeScheme({"A", "B"})));
  View dup = Unwrap(View::Create(
      &catalog_, base_,
      {{d1, MustParse(catalog_, "pi{A,B}(r)")},
       {d2, MustParse(catalog_, "pi{A,B}(pi{A,B}(r))")}},  // Same mapping.
      "Dup"));
  NonredundantViewResult result = Unwrap(MakeNonredundant(dup));
  EXPECT_EQ(result.view.size(), 1u);
  EXPECT_TRUE(Unwrap(AreEquivalent(dup, result.view)).equivalent);
}

TEST_F(Example311Test, SizeBoundDominatesNonredundantEquivalents) {
  // Theorem 3.1.7 via Lemma 3.1.6: every nonredundant view equivalent to
  // the input has at most NonredundantSizeBound members. Check against the
  // two known nonredundant equivalents of Example 3.1.5.
  QuerySet set = QuerySet::FromView(*view_);
  std::size_t bound = NonredundantSizeBound(catalog_, set);
  EXPECT_GE(bound, 2u);  // {S1, S2} is a nonredundant equivalent.
  // The singleton view {S} is nonredundant and equivalent too.
  EXPECT_GE(bound, 1u);
}

TEST(RedundancyTest, AllThreeProjectionsIndependent) {
  // pi_AB, pi_BC, pi_AC of a ternary relation: pairwise independent, no
  // member derivable from the other two (the lost correlation differs).
  Catalog catalog;
  AttrSet u = catalog.MakeScheme({"A", "B", "C"});
  RelId r = Unwrap(catalog.AddRelation("r", u));
  DbSchema base(catalog, {r});
  RelId h1 = Unwrap(catalog.AddRelation("p_ab", catalog.MakeScheme({"A", "B"})));
  RelId h2 = Unwrap(catalog.AddRelation("p_bc", catalog.MakeScheme({"B", "C"})));
  RelId h3 = Unwrap(catalog.AddRelation("p_ac", catalog.MakeScheme({"A", "C"})));
  View view = Unwrap(View::Create(&catalog, base,
                                  {{h1, MustParse(catalog, "pi{A,B}(r)")},
                                   {h2, MustParse(catalog, "pi{B,C}(r)")},
                                   {h3, MustParse(catalog, "pi{A,C}(r)")}},
                                  "P3"));
  EXPECT_TRUE(
      Unwrap(IsNonredundantSet(&catalog, QuerySet::FromView(view))));
  NonredundantViewResult result = Unwrap(MakeNonredundant(view));
  EXPECT_EQ(result.view.size(), 3u);
}

}  // namespace
}  // namespace viewcap
