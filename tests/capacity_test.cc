// Tests for views/capacity.h: query sets, closure membership
// (Theorems 1.5.2, 2.3.2, 2.4.11) and the Section 2.3 worked example.
#include <gtest/gtest.h>

#include "algebra/expand.h"
#include "algebra/parser.h"
#include "algebra/printer.h"
#include "tableau/build.h"
#include "tableau/homomorphism.h"
#include "tests/test_util.h"
#include "views/capacity.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Row;
using testing::Unwrap;

class CapacityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", u_));
    base_ = DbSchema(catalog_, {r_});
    w1_ = Unwrap(catalog_.AddRelation("w1", catalog_.MakeScheme({"A", "B"})));
    w2_ = Unwrap(catalog_.AddRelation("w2", catalog_.MakeScheme({"B", "C"})));
    view_ = Unwrap(View::Create(
        &catalog_, base_,
        {{w1_, MustParse(catalog_, "pi{A,B}(r)")},
         {w2_, MustParse(catalog_, "pi{B,C}(r)")}},
        "W"));
  }

  Tableau T(const std::string& text) {
    return MustBuildTableau(catalog_, u_, *MustParse(catalog_, text));
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel, w1_ = kInvalidRel, w2_ = kInvalidRel;
  DbSchema base_;
  std::optional<View> view_;
};

TEST_F(CapacityTest, DefiningQueriesAreInCapacity) {
  // Theorem 1.5.2 part (ii): F is contained in Cap(V).
  CapacityOracle oracle(*view_);
  for (const ViewDefinition& d : view_->definitions()) {
    MembershipResult m = Unwrap(oracle.Contains(d.tableau));
    EXPECT_TRUE(m.member);
    ASSERT_NE(m.witness, nullptr);
    // The witness expands to the defining query's mapping.
    ExprPtr expanded =
        Unwrap(Expand(catalog_, m.witness, view_->AsDefinitions()));
    EXPECT_TRUE(EquivalentTableaux(catalog_,
                                   MustBuildTableau(catalog_, u_, *expanded),
                                   d.tableau));
  }
}

TEST_F(CapacityTest, CapacityClosedUnderProjectionAndJoin) {
  // Theorem 1.5.2 part (i), spot-checked: projections and joins of members
  // are members.
  CapacityOracle oracle(*view_);
  const char* derived[] = {
      "pi{A}(pi{A,B}(r))",
      "pi{B}(pi{B,C}(r))",
      "pi{A,B}(r) * pi{B,C}(r)",
      "pi{A,C}(pi{A,B}(r) * pi{B,C}(r))",
      "pi{A}(pi{A,B}(r)) * pi{C}(pi{B,C}(r))",
  };
  for (const char* text : derived) {
    MembershipResult m = Unwrap(oracle.Contains(MustParse(catalog_, text)));
    EXPECT_TRUE(m.member) << text;
  }
}

TEST_F(CapacityTest, NonMembersRejected) {
  CapacityOracle oracle(*view_);
  // The full relation r cannot be recovered from its two projections.
  const char* non_members[] = {
      "r",
      "pi{A,C}(r)",           // The A-C correlation was lost.
      "pi{A,B,C}(r * r)",
  };
  for (const char* text : non_members) {
    MembershipResult m = Unwrap(oracle.Contains(MustParse(catalog_, text)));
    EXPECT_FALSE(m.member) << text;
    EXPECT_FALSE(m.budget_exhausted) << text;
  }
}

TEST_F(CapacityTest, WitnessExpansionIsEquivalentToQuery) {
  // Theorem 2.3.2: the witness is a construction; its expansion through
  // the defining queries realizes the query's mapping.
  CapacityOracle oracle(*view_);
  ExprPtr query = MustParse(catalog_, "pi{A,C}(pi{A,B}(r) * pi{B,C}(r))");
  MembershipResult m = Unwrap(oracle.Contains(query));
  ASSERT_TRUE(m.member);
  ASSERT_NE(m.witness, nullptr);
  ExprPtr expanded =
      Unwrap(Expand(catalog_, m.witness, view_->AsDefinitions()));
  EXPECT_TRUE(EquivalentTableaux(catalog_,
                                 MustBuildTableau(catalog_, u_, *expanded),
                                 MustBuildTableau(catalog_, u_, *query)));
}

TEST_F(CapacityTest, UniverseMismatchIsIllFormed) {
  CapacityOracle oracle(*view_);
  // A perfectly valid template, but over the universe {A,B} instead of the
  // query set's {A,B,C} (w1 has type {A,B}, so it fits the small universe).
  AttrSet small = catalog_.MakeScheme({"A", "B"});
  Tableau wrong =
      MustBuildTableau(catalog_, small, *MustParse(catalog_, "w1"));
  EXPECT_EQ(oracle.Contains(wrong).status().code(), StatusCode::kIllFormed);
}

TEST_F(CapacityTest, BudgetExhaustionIsReported) {
  SearchLimits limits;
  limits.max_candidates = 1;  // Absurdly small.
  CapacityOracle oracle(*view_, limits);
  // A non-member: the canonical-witness fast path fails and the (capped)
  // enumeration gives up immediately.
  MembershipResult m = Unwrap(oracle.Contains(MustParse(catalog_, "r")));
  EXPECT_FALSE(m.member);
  EXPECT_TRUE(m.budget_exhausted);
}

TEST_F(CapacityTest, LeafBudgetFollowsReducedQuerySize) {
  CapacityOracle oracle(*view_);
  MembershipResult m =
      Unwrap(oracle.Contains(MustParse(catalog_, "pi{A,B}(r)")));
  EXPECT_EQ(m.leaf_budget, 1u);
  SearchLimits slack;
  slack.extra_leaves = 2;
  CapacityOracle oracle2(*view_, slack);
  MembershipResult m2 =
      Unwrap(oracle2.Contains(MustParse(catalog_, "pi{A,B}(r)")));
  EXPECT_EQ(m2.leaf_budget, 3u);
}

TEST_F(CapacityTest, QuerySetValidation) {
  // Handle type must equal the query's TRS.
  Tableau q = T("pi{A,B}(r)");
  Result<QuerySet> bad = QuerySet::Create(
      &catalog_, u_, {QuerySet::Member{w2_, q}});  // R(w2) = {B,C}.
  EXPECT_EQ(bad.status().code(), StatusCode::kIllFormed);
  Result<QuerySet> good =
      QuerySet::Create(&catalog_, u_, {QuerySet::Member{w1_, q}});
  EXPECT_TRUE(good.ok());
}

TEST_F(CapacityTest, QuerySetFromTableauxMintsHandles) {
  QuerySet set = Unwrap(QuerySet::FromTableaux(
      &catalog_, u_, {T("pi{A,B}(r)"), T("pi{B,C}(r)")}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_NE(set.members()[0].handle, set.members()[1].handle);
  EXPECT_EQ(catalog_.RelationScheme(set.members()[0].handle),
            catalog_.MakeScheme({"A", "B"}));
}

TEST_F(CapacityTest, QuerySetWithoutAndWith) {
  QuerySet set = QuerySet::FromView(*view_);
  EXPECT_EQ(set.Without(0).size(), 1u);
  EXPECT_EQ(set.Without(0).members()[0].handle, w2_);
  QuerySet bigger = set.With({QuerySet::Member{
      catalog_.MintRelation("__x", catalog_.MakeScheme({"A"})),
      T("pi{A}(r)")}});
  EXPECT_EQ(bigger.size(), 3u);
}

TEST_F(CapacityTest, EnumerateCapacityListsDistinctMembers) {
  CapacityOracle oracle(*view_);
  std::vector<CapacityOracle::CapacityEntry> one_leaf =
      Unwrap(oracle.EnumerateCapacity(1, 100));
  // w1, w2 and their single-attribute projections — with pi_B(w1) and
  // pi_B(w2) collapsing into one class (both are pi_B(r)): 5 members.
  EXPECT_EQ(one_leaf.size(), 5u);
  for (std::size_t i = 0; i < one_leaf.size(); ++i) {
    for (std::size_t j = i + 1; j < one_leaf.size(); ++j) {
      EXPECT_FALSE(EquivalentTableaux(catalog_, one_leaf[i].query,
                                      one_leaf[j].query));
    }
  }
  // Every entry's witness expands to its reduced template's mapping.
  for (const auto& entry : one_leaf) {
    ExprPtr expanded =
        Unwrap(Expand(catalog_, entry.witness, view_->AsDefinitions()));
    EXPECT_TRUE(EquivalentTableaux(
        catalog_, MustBuildTableau(catalog_, u_, *expanded), entry.query));
  }
  // Larger budgets enumerate supersets.
  std::vector<CapacityOracle::CapacityEntry> two_leaves =
      Unwrap(oracle.EnumerateCapacity(2, 100));
  EXPECT_GT(two_leaves.size(), one_leaf.size());
}

TEST_F(CapacityTest, EnumerateCapacityHonorsEntryCap) {
  CapacityOracle oracle(*view_);
  std::vector<CapacityOracle::CapacityEntry> capped =
      Unwrap(oracle.EnumerateCapacity(2, 3));
  EXPECT_EQ(capped.size(), 3u);
}

// The Section 2.3 worked example: Q (three-row template over eta1/eta4 of
// the Figure 1 catalog) has a construction from {S1, S2}.
TEST(Section23Test, ConstructionExample) {
  Catalog catalog;
  AttrSet u = catalog.MakeScheme({"A", "B", "C"});
  AttrSet ab = catalog.MakeScheme({"A", "B"});
  Unwrap(catalog.AddRelation("eta3", u));
  Unwrap(catalog.AddRelation("eta4", u));
  // S1, S2 as in Figure 1.
  Tableau s1 = Unwrap(Tableau::Create(
      catalog, u,
      {Row(catalog, u, "eta3", {"a3", "0", "c3"}),
       Row(catalog, u, "eta3", {"0", "b3", "c3"})}));
  Tableau s2 = Unwrap(Tableau::Create(
      catalog, u,
      {Row(catalog, u, "eta4", {"0", "0", "c4"}),
       Row(catalog, u, "eta4", {"a4", "b4", "0"})}));
  // Q = {(0A,b1,c1):eta3, (a1,0B,c2):eta4, (a2,b2,0C):eta4}: equivalent to
  // pi_A(eta3) |x| pi_B(eta4) |x| pi_C(eta4), which Section 2.3 shows is
  // T -> beta for the Figure 1 substitution.
  Tableau q = Unwrap(Tableau::Create(
      catalog, u,
      {Row(catalog, u, "eta3", {"0", "b1", "c1"}),
       Row(catalog, u, "eta4", {"a1", "0", "c2"}),
       Row(catalog, u, "eta4", {"a2", "b2", "0"})}));

  // Handles for the query set {S1, S2}.
  RelId h1 = Unwrap(catalog.AddRelation("q_s1", ab));
  RelId h2 = Unwrap(catalog.AddRelation("q_s2", u));
  QuerySet set = Unwrap(QuerySet::Create(
      &catalog, u, {QuerySet::Member{h1, s1}, QuerySet::Member{h2, s2}}));
  CapacityOracle oracle(&catalog, set);
  MembershipResult m = Unwrap(oracle.Contains(q));
  EXPECT_TRUE(m.member);
  ASSERT_NE(m.witness, nullptr);

  // And the exhibited-construction variant finds at least one.
  std::vector<ExhibitedConstruction> constructions =
      Unwrap(oracle.FindConstructions(q, 4));
  ASSERT_FALSE(constructions.empty());
  for (const ExhibitedConstruction& c : constructions) {
    EXPECT_TRUE(EquivalentTableaux(catalog, c.substitution.result, q));
    // The exhibited hom maps Q's rows into the substitution.
    std::vector<std::size_t> image =
        RowImage(catalog, q, c.substitution.result, c.hom);
    EXPECT_EQ(image.size(), q.size());
  }
}

}  // namespace
}  // namespace viewcap
