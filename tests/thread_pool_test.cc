// Unit tests for base/thread_pool.h: the worker pool and dynamic-sharding
// loop behind the parallel closure searches.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "base/thread_pool.h"

namespace viewcap {
namespace {

TEST(CancelTokenTest, StartsClearAndLatches) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // Idempotent.
  EXPECT_TRUE(token.cancelled());
}

TEST(ThreadPoolTest, DecideThreads) {
  EXPECT_EQ(ThreadPool::DecideThreads(1), 1u);
  EXPECT_EQ(ThreadPool::DecideThreads(7), 7u);
  // 0 resolves to hardware concurrency, which is at least 1.
  EXPECT_GE(ThreadPool::DecideThreads(0), 1u);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::atomic<std::size_t> calls{0};
  pool.Run(4, [&](std::size_t party) {
    EXPECT_EQ(party, 0u);  // No helpers exist; only the caller runs.
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1u);
}

TEST(ThreadPoolTest, RunInvokesDistinctParties) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::atomic<std::size_t> calls{0};
  std::atomic<bool> party_seen[4] = {};
  pool.Run(4, [&](std::size_t party) {
    ASSERT_LT(party, 4u);
    // Each party index is handed out at most once.
    EXPECT_FALSE(party_seen[party].exchange(true));
    calls.fetch_add(1);
  });
  // The caller always runs; helpers may or may not have started, so the
  // call count is between 1 and parties.
  EXPECT_GE(calls.load(), 1u);
  EXPECT_LE(calls.load(), 4u);
  EXPECT_TRUE(party_seen[0].load());
}

TEST(ThreadPoolTest, EnsureWorkersGrowsOnly) {
  ThreadPool pool(1);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.workers(), 3u);
  pool.EnsureWorkers(2);  // Never shrinks.
  EXPECT_EQ(pool.workers(), 3u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, 4, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolFallsBackToSerial) {
  constexpr std::size_t kN = 100;
  std::size_t sum = 0;  // Serial path: plain non-atomic state is fine.
  ParallelFor(nullptr, 8, kN, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST(ParallelForTest, SingleThreadRunsInIndexOrder) {
  ThreadPool pool(2);
  std::vector<std::size_t> order;
  ParallelFor(&pool, 1, 10, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // Inner loops run from inside pool workers; completion must not depend
  // on idle workers being available (the caller participates).
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  ParallelFor(&pool, 3, 4, [&](std::size_t) {
    ParallelFor(&pool, 3, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32u);
}

TEST(ParallelForTest, ZeroAndOneElementRanges) {
  ThreadPool pool(2);
  std::atomic<std::size_t> calls{0};
  ParallelFor(&pool, 4, 0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
  ParallelFor(&pool, 4, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1u);
}

}  // namespace
}  // namespace viewcap
