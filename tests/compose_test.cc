// Tests for views/compose.h: view composition and program export.
#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/parser.h"
#include "core/analyzer.h"
#include "relation/generator.h"
#include "tests/test_util.h"
#include "views/compose.h"
#include "views/equivalence.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class ComposeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
    base_ = DbSchema(catalog_, {r_, s_});
    v1_ = Unwrap(catalog_.AddRelation("v1", catalog_.MakeScheme({"A", "B"})));
    v2_ = Unwrap(catalog_.AddRelation("v2", catalog_.MakeScheme({"B", "C"})));
    inner_ = Unwrap(View::Create(
        &catalog_, base_,
        {{v1_, MustParse(catalog_, "pi{A, B}(r * s)")},
         {v2_, MustParse(catalog_, "pi{B, C}(r * s)")}},
        "Inner"));
    w_ = Unwrap(catalog_.AddRelation("w", catalog_.MakeScheme({"A", "C"})));
    outer_ = Unwrap(View::Create(
        &catalog_, DbSchema(catalog_, {v1_, v2_}),
        {{w_, MustParse(catalog_, "pi{A, C}(v1 * v2)")}}, "Outer"));
  }

  Catalog catalog_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel;
  RelId v1_ = kInvalidRel, v2_ = kInvalidRel, w_ = kInvalidRel;
  DbSchema base_;
  std::optional<View> inner_, outer_;
};

TEST_F(ComposeTest, FlattensOverTheBase) {
  View composed = Unwrap(Compose(*inner_, *outer_));
  EXPECT_EQ(composed.size(), 1u);
  EXPECT_EQ(composed.base().relations(), base_.relations());
  EXPECT_EQ(composed.name(), "Outer_over_Inner");
  // The flattened query mentions only base relations.
  for (RelId rel : composed.definitions()[0].query->RelNames()) {
    EXPECT_TRUE(base_.Contains(rel));
  }
}

TEST_F(ComposeTest, CompositionSemantics) {
  // alpha_{composed}(w) == (alpha_{inner})_{outer}(w) for all alpha.
  View composed = Unwrap(Compose(*inner_, *outer_));
  InstanceOptions options;
  options.tuples_per_relation = 5;
  options.domain_size = 3;
  InstanceGenerator generator(&catalog_, options);
  Random rng(4242);
  for (int trial = 0; trial < 15; ++trial) {
    Instantiation alpha = generator.Generate(base_, rng);
    Instantiation via_composed = composed.Induce(alpha);
    Instantiation via_stack = outer_->Induce(inner_->Induce(alpha));
    EXPECT_EQ(via_composed.Get(w_), via_stack.Get(w_)) << "trial " << trial;
  }
}

TEST_F(ComposeTest, CompositionNeverGainsCapacity) {
  View composed = Unwrap(Compose(*inner_, *outer_));
  DominanceResult dom = Unwrap(Dominates(*inner_, composed));
  EXPECT_TRUE(dom.dominates);
  // And here it genuinely loses capacity (v1 is not recoverable from w).
  DominanceResult reverse = Unwrap(Dominates(composed, *inner_));
  EXPECT_FALSE(reverse.dominates);
}

TEST_F(ComposeTest, RejectsForeignOuterQueries) {
  // An "outer" view whose query reads a base relation directly is not a
  // view of the inner view's schema.
  RelId bad = Unwrap(catalog_.AddRelation("bad", catalog_.MakeScheme({"A", "B"})));
  View not_over_inner = Unwrap(View::Create(
      &catalog_, base_, {{bad, MustParse(catalog_, "r")}}, "Bad"));
  EXPECT_EQ(Compose(*inner_, not_over_inner).status().code(),
            StatusCode::kIllFormed);
}

TEST_F(ComposeTest, ExportRoundTripsThroughTheParser) {
  std::string program = ExportProgram(*inner_);
  Analyzer fresh;
  VIEWCAP_ASSERT_OK(fresh.Load(program));
  const View* reloaded = Unwrap(fresh.GetView("Inner"));
  ASSERT_EQ(reloaded->size(), inner_->size());
  for (std::size_t i = 0; i < reloaded->size(); ++i) {
    EXPECT_TRUE(Expr::StructurallyEqual(*reloaded->definitions()[i].query,
                                        *inner_->definitions()[i].query));
  }
}

TEST(AnalyzerComposeTest, TextualViewsOfViewsAreFlattenedAtLoad) {
  Analyzer analyzer;
  VIEWCAP_ASSERT_OK(analyzer.Load(R"(
    schema { r(A, B); s(B, C); }
    view Inner { v1 := pi{A,B}(r * s); v2 := pi{B,C}(r * s); }
    view Outer { w := pi{A,C}(v1 * v2); }
  )"));
  // 'Outer' references 'Inner''s relations; Load flattens it to a
  // base-level view (Lemma 1.4.1), so its stored query mentions only r, s.
  const View* outer = Unwrap(analyzer.GetView("Outer"));
  ASSERT_EQ(outer->size(), 1u);
  for (RelId rel : outer->definitions()[0].query->RelNames()) {
    EXPECT_TRUE(analyzer.base().Contains(rel));
  }
  // And it is dominated by Inner (composition never gains capacity).
  const View* inner = Unwrap(analyzer.GetView("Inner"));
  EXPECT_TRUE(Unwrap(Dominates(*inner, *outer)).dominates);
}

TEST(AnalyzerComposeTest, ComposeViaAnalyzer) {
  Analyzer analyzer;
  Status st = analyzer.Load(R"(
    schema { r(A, B); s(B, C); }
    view Inner { v1 := pi{A,B}(r * s); v2 := pi{B,C}(r * s); }
  )");
  VIEWCAP_ASSERT_OK(st);
  // Build the outer view directly against the inner schema, then compose.
  Catalog& catalog = analyzer.catalog();
  RelId v1 = Unwrap(catalog.FindRelation("v1"));
  RelId v2 = Unwrap(catalog.FindRelation("v2"));
  RelId w = Unwrap(catalog.AddRelation("w", catalog.MakeScheme({"A", "C"})));
  View outer = Unwrap(View::Create(
      &catalog, DbSchema(catalog, {v1, v2}),
      {{w, MustParse(catalog, "pi{A,C}(v1 * v2)")}}, "Outer"));
  const View* inner = Unwrap(analyzer.GetView("Inner"));
  View composed = Unwrap(Compose(*inner, outer));
  EXPECT_EQ(composed.size(), 1u);
  EXPECT_TRUE(Unwrap(Dominates(*inner, composed)).dominates);
}

}  // namespace
}  // namespace viewcap
