// Tests for tableau/homomorphism.h: Propositions 2.4.1-2.4.3, cross
// validated against the semantic containment reading on random instances.
#include <gtest/gtest.h>

#include "algebra/parser.h"
#include "relation/generator.h"
#include "tableau/build.h"
#include "tableau/counterexample.h"
#include "tableau/evaluate.h"
#include "tableau/homomorphism.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class HomTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
  }

  Tableau T(const std::string& text) {
    return MustBuildTableau(catalog_, u_, *MustParse(catalog_, text));
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel;
};

TEST_F(HomTest, IdentityHomomorphismExists) {
  Tableau t = T("r * s");
  EXPECT_TRUE(HasHomomorphism(catalog_, t, t));
}

TEST_F(HomTest, ProjectionDirection) {
  // pi_A(r)(alpha) contains pi_A... : r's result projected is smaller than
  // pi_A(r)? No: for templates P = template(pi_A(r)) and R = template(r),
  // there is a homomorphism P -> R (P is "less constrained" on output but
  // as mappings with different TRS they are incomparable). Use same-TRS
  // pairs instead:
  Tableau narrow = T("pi{A}(r)");
  Tableau narrower = T("pi{A}(r * s)");
  // [pi_A(r |x| s)](alpha) is contained in [pi_A(r)](alpha) for all alpha,
  // so by Prop 2.4.1 there is a homomorphism narrow -> narrower.
  EXPECT_TRUE(HasHomomorphism(catalog_, narrow, narrower));
  // And not the other way (the semijoin genuinely filters).
  EXPECT_FALSE(HasHomomorphism(catalog_, narrower, narrow));
}

TEST_F(HomTest, TagMismatchBlocksHomomorphism) {
  Tableau t_r = T("pi{B}(r)");
  Tableau t_s = T("pi{B}(s)");
  EXPECT_FALSE(HasHomomorphism(catalog_, t_r, t_s));
  EXPECT_FALSE(HasHomomorphism(catalog_, t_s, t_r));
  EXPECT_FALSE(EquivalentTableaux(catalog_, t_r, t_s));
}

TEST_F(HomTest, EquivalenceOfDifferentRealizations) {
  // pi_AB(r |x| s) and pi_AB(r |x| pi_B(s)) realize the same mapping.
  Tableau t1 = T("pi{A, B}(r * s)");
  Tableau t2 = T("pi{A, B}(r * pi{B}(s))");
  EXPECT_TRUE(EquivalentTableaux(catalog_, t1, t2));
}

TEST_F(HomTest, IdempotentSelfJoin) {
  EXPECT_TRUE(EquivalentTableaux(catalog_, T("r"), T("r * r")));
  EXPECT_TRUE(EquivalentTableaux(catalog_, T("r * s"), T("r * s * r")));
}

TEST_F(HomTest, DifferentTrsNeverEquivalent) {
  EXPECT_FALSE(EquivalentTableaux(catalog_, T("pi{A}(r)"), T("r")));
}

TEST_F(HomTest, HomomorphismFixesDistinguished) {
  Tableau from = T("r");
  Tableau to = T("r * s");
  std::optional<SymbolMap> hom = FindHomomorphism(catalog_, from, to);
  ASSERT_TRUE(hom.has_value());
  for (const auto& [key, value] : *hom) {
    if (key.IsDistinguished()) {
      EXPECT_EQ(key, value);
    }
    EXPECT_EQ(key.attr, value.attr);  // Valuations preserve the domain.
  }
  // The map must send every `from` row onto a row of `to`.
  std::vector<std::size_t> image = RowImage(catalog_, from, to, *hom);
  EXPECT_EQ(image.size(), from.size());
}

TEST_F(HomTest, DifferentUniversesNeverMap) {
  Tableau t1 = T("r");
  AttrSet small = catalog_.MakeScheme({"A", "B"});
  Tableau t2 = MustBuildTableau(catalog_, small, *MustParse(catalog_, "r"));
  EXPECT_FALSE(HasHomomorphism(catalog_, t1, t2));
}

TEST_F(HomTest, IsomorphismBetweenRenamedCopies) {
  Tableau t = T("pi{A, C}(r * s)");
  SymbolMap rename;
  for (const Symbol& sym : t.Symbols()) {
    if (!sym.IsDistinguished()) {
      rename[sym] = Symbol::Nondistinguished(sym.attr, sym.ordinal + 70);
    }
  }
  Tableau copy = t.Apply(rename);
  std::optional<SymbolMap> iso = FindIsomorphism(catalog_, t, copy);
  ASSERT_TRUE(iso.has_value());
  // The isomorphism maps nondistinguished symbols injectively onto
  // nondistinguished symbols.
  for (const auto& [key, value] : *iso) {
    EXPECT_EQ(key.IsDistinguished(), value.IsDistinguished());
  }
}

TEST_F(HomTest, NoIsomorphismAcrossSizes) {
  EXPECT_FALSE(FindIsomorphism(catalog_, T("r"), T("r * s")).has_value());
  // Equivalent but different row counts: homomorphic both ways, still not
  // isomorphic.
  EXPECT_TRUE(EquivalentTableaux(catalog_, T("r"), T("r * r")));
  EXPECT_FALSE(FindIsomorphism(catalog_, T("r"), T("r * r")).has_value());
}

TEST_F(HomTest, ReducedEquivalentTemplatesAreIsomorphic) {
  // The core is unique up to isomorphism: reduced equivalent templates
  // must be isomorphic (the Section 4.2 uniqueness engine).
  Tableau a = T("pi{A, B}(r * s)");
  Tableau b = T("pi{A, B}(r * pi{B, C}(s))");
  ASSERT_TRUE(EquivalentTableaux(catalog_, a, b));
  EXPECT_TRUE(FindIsomorphism(catalog_, a, b).has_value());
}

TEST_F(HomTest, NonEquivalentSameSizeNotIsomorphic) {
  Tableau a = T("pi{A}(r) * pi{B}(s)");
  Tableau b = T("pi{A}(r) * pi{C}(s)");
  EXPECT_FALSE(FindIsomorphism(catalog_, a, b).has_value());
}

TEST_F(HomTest, RowEmbeddingIgnoresDistinguishedness) {
  // pi_A(r) does not map homomorphically into pi_B(r) (0_A must stay
  // fixed), but it row-embeds (0_A may land anywhere).
  Tableau pa = T("pi{A}(r)");
  Tableau pb = T("pi{B}(r)");
  EXPECT_FALSE(HasHomomorphism(catalog_, pa, pb));
  EXPECT_TRUE(HasRowEmbedding(catalog_, pa, pb));
}

TEST_F(HomTest, RowEmbeddingStillRequiresTagsAndConsistency) {
  EXPECT_FALSE(HasRowEmbedding(catalog_, T("pi{B}(s)"), T("pi{B}(r)")));
  // Two r-rows sharing their B symbol cannot embed into a single row
  // template if consistency breaks; but they can both land on one row.
  EXPECT_TRUE(HasRowEmbedding(catalog_, T("r * r"), T("r")));
}

// Proposition 2.4.1 cross-validation: hom(T -> S) iff S(alpha) subset of
// T(alpha) for all alpha. We check the forward direction on random
// instances and the backward direction via the frozen canonical instance.
TEST_F(HomTest, SemanticContainmentMatchesHomomorphism) {
  const char* exprs[] = {
      "r", "r * s", "pi{A, B}(r * s)", "pi{A}(r)", "pi{A}(r * s)",
      "pi{B}(r)", "pi{B}(s)", "pi{B}(r * s)", "r * pi{B}(s)",
  };
  DbSchema schema(catalog_, {r_, s_});
  InstanceOptions options;
  options.tuples_per_relation = 5;
  options.domain_size = 3;
  InstanceGenerator generator(&catalog_, options);
  Random rng(99);

  for (const char* from_text : exprs) {
    for (const char* to_text : exprs) {
      Tableau from = T(from_text);
      Tableau to = T(to_text);
      if (from.Trs() != to.Trs()) continue;
      const bool hom = HasHomomorphism(catalog_, from, to);
      // Forward: hom implies containment everywhere.
      for (int trial = 0; trial < 10; ++trial) {
        Instantiation alpha = generator.Generate(schema, rng);
        Relation from_result = EvaluateTableau(from, alpha);
        Relation to_result = EvaluateTableau(to, alpha);
        bool contained = true;
        for (const Tuple& t : to_result) {
          if (!from_result.Contains(t)) {
            contained = false;
            break;
          }
        }
        if (hom) {
          EXPECT_TRUE(contained)
              << from_text << " -> " << to_text << " trial " << trial;
        }
      }
      // Backward: no hom implies the frozen instance of `to` witnesses
      // non-containment (Chandra-Merlin).
      if (!hom) {
        Instantiation frozen = FreezeTableau(catalog_, to);
        Relation from_result = EvaluateTableau(from, frozen);
        Relation to_result = EvaluateTableau(to, frozen);
        bool contained = true;
        for (const Tuple& t : to_result) {
          if (!from_result.Contains(t)) {
            contained = false;
            break;
          }
        }
        EXPECT_FALSE(contained) << from_text << " -> " << to_text;
      }
    }
  }
}

}  // namespace
}  // namespace viewcap
