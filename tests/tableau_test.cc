// Tests for tableau/tableau.h: the Section 2.1 template conditions,
// including failure injection for each well-formedness rule.
#include <gtest/gtest.h>

#include "tableau/tableau.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::Row;
using testing::Unwrap;

class TableauTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    ab_ = catalog_.MakeScheme({"A", "B"});
    Unwrap(catalog_.AddRelation("r_ab", ab_));
    Unwrap(catalog_.AddRelation("r_abc", u_));
  }
  Catalog catalog_;
  AttrSet u_, ab_;
};

TEST_F(TableauTest, ValidSingleRow) {
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_, {Row(catalog_, u_, "r_ab", {"0", "0", "c1"})}));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Trs(), ab_);
  EXPECT_EQ(t.RelNames().size(), 1u);
}

TEST_F(TableauTest, RowsAreASet) {
  TaggedTuple row = Row(catalog_, u_, "r_ab", {"0", "0", "c1"});
  Tableau t = Unwrap(Tableau::Create(catalog_, u_, {row, row}));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.ContainsRow(row));
}

TEST_F(TableauTest, EmptyTemplateRejected) {
  Result<Tableau> bad = Tableau::Create(catalog_, u_, {});
  EXPECT_EQ(bad.status().code(), StatusCode::kIllFormed);
}

TEST_F(TableauTest, ConditionOneRejectsDistinguishedOutsideType) {
  // r_ab has type {A,B} but the row has 0_C.
  Result<Tableau> bad = Tableau::Create(
      catalog_, u_, {Row(catalog_, u_, "r_ab", {"0", "0", "0"})});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("condition (i)"), std::string::npos);
}

TEST_F(TableauTest, ConditionTwoRejectsSharingOutsideTypes) {
  // Both rows share c1 at C, but C is not in r_ab's type.
  Result<Tableau> bad = Tableau::Create(
      catalog_, u_,
      {Row(catalog_, u_, "r_ab", {"0", "b1", "c1"}),
       Row(catalog_, u_, "r_ab", {"a1", "0", "c1"})});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("condition (ii)"), std::string::npos);
}

TEST_F(TableauTest, SharingInsideBothTypesAllowed) {
  // Shared b1 at B, which is in both rows' types: fine.
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_,
      {Row(catalog_, u_, "r_ab", {"0", "b1", "c1"}),
       Row(catalog_, u_, "r_abc", {"a1", "b1", "0"})}));
  EXPECT_EQ(t.size(), 2u);
}

TEST_F(TableauTest, ConditionThreeRejectsNoDistinguished) {
  Result<Tableau> bad = Tableau::Create(
      catalog_, u_, {Row(catalog_, u_, "r_ab", {"a1", "b1", "c1"})});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("condition (iii)"),
            std::string::npos);
}

TEST_F(TableauTest, RejectsRowNotOverUniverse) {
  Tuple small(ab_, {Symbol::Distinguished(*ab_.begin()),
                    Symbol::Distinguished(*(++ab_.begin()))});
  RelId r_ab = Unwrap(catalog_.FindRelation("r_ab"));
  Result<Tableau> bad =
      Tableau::Create(catalog_, u_, {TaggedTuple{r_ab, small}});
  EXPECT_FALSE(bad.ok());
}

TEST_F(TableauTest, RejectsTypeOutsideUniverse) {
  AttrSet with_d = catalog_.MakeScheme({"A", "D"});
  Unwrap(catalog_.AddRelation("r_ad", with_d));
  // Universe {A,B,C} does not include D.
  Result<Tableau> bad = Tableau::Create(
      catalog_, u_, {Row(catalog_, u_, "r_ad", {"0", "b1", "c1"})});
  EXPECT_FALSE(bad.ok());
}

TEST_F(TableauTest, TrsUnionsAcrossRows) {
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_,
      {Row(catalog_, u_, "r_ab", {"0", "b1", "c1"}),
       Row(catalog_, u_, "r_abc", {"a1", "b2", "0"})}));
  EXPECT_EQ(t.Trs(), catalog_.MakeScheme({"A", "C"}));
}

TEST_F(TableauTest, SubsetRowsAndApply) {
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_,
      {Row(catalog_, u_, "r_ab", {"0", "b1", "c1"}),
       Row(catalog_, u_, "r_abc", {"a1", "b2", "0"})}));
  Tableau sub = t.SubsetRows({0});
  EXPECT_EQ(sub.size(), 1u);

  SymbolMap map;
  AttrId b = Unwrap(catalog_.FindAttribute("B"));
  map[Symbol::Nondistinguished(b, 1)] = Symbol::Nondistinguished(b, 7);
  Tableau mapped = t.Apply(map);
  bool found = false;
  for (const TaggedTuple& row : mapped.rows()) {
    for (std::size_t i = 0; i < row.tuple.size(); ++i) {
      if (row.tuple.ValueAt(i) == Symbol::Nondistinguished(b, 7)) {
        found = true;
      }
      EXPECT_NE(row.tuple.ValueAt(i), Symbol::Nondistinguished(b, 1));
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TableauTest, ReserveSymbolsPreventsCollisions) {
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_, {Row(catalog_, u_, "r_ab", {"0", "b3", "c5"})}));
  SymbolPool pool;
  t.ReserveSymbols(pool);
  AttrId b = Unwrap(catalog_.FindAttribute("B"));
  AttrId c = Unwrap(catalog_.FindAttribute("C"));
  EXPECT_GT(pool.Fresh(b).ordinal, 3u);
  EXPECT_GT(pool.Fresh(c).ordinal, 5u);
}

TEST_F(TableauTest, SymbolsAreSortedUnique) {
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_,
      {Row(catalog_, u_, "r_ab", {"0", "b1", "c1"}),
       Row(catalog_, u_, "r_abc", {"a1", "b1", "0"})}));
  std::vector<Symbol> symbols = t.Symbols();
  EXPECT_TRUE(std::is_sorted(symbols.begin(), symbols.end()));
  // Row1: 0_A, b1, c1; Row2: a1, b1, 0_C -> {0_A, a1, b1, c1, 0_C}.
  EXPECT_EQ(symbols.size(), 5u);
}

TEST_F(TableauTest, ToStringMentionsTagsAndTypes) {
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_, {Row(catalog_, u_, "r_ab", {"0", "0", "c1"})}));
  std::string text = t.ToString(catalog_);
  EXPECT_NE(text.find("r_ab"), std::string::npos);
  EXPECT_NE(text.find("0_A"), std::string::npos);
}

}  // namespace
}  // namespace viewcap
