// Fidelity cross-check of Lemmas 2.4.9/2.4.10: a (size-bounded) literal
// materialization of the paper's J_k template enumeration, compared
// against the expression-driven CapacityOracle on the same membership
// questions. The two decision procedures must agree.
//
// Setting: U = {A, B}, one base relation r(A, B), query set
// F = { pi_A(r), pi_B(r) } with handles h_a:{A}, h_b:{B}. The paper's
// procedure enumerates expression templates S over U with symbols drawn
// from V_k (k+1 symbols per attribute including 0_A) and relation names
// among the handles, and asks whether some construction S -> beta is
// equivalent to the query. Lemma 2.4.8 bounds the needed construction at
// #(Q) rows, so enumerating subsets of P with at most #(Q)+1 rows is
// faithful (the +1 is headroom beyond the bound actually used).
#include <gtest/gtest.h>

#include "algebra/parser.h"
#include "tableau/build.h"
#include "tableau/homomorphism.h"
#include "tableau/recognize.h"
#include "tableau/reduce.h"
#include "tableau/substitution.h"
#include "tests/test_util.h"
#include "views/capacity.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class JkCrosscheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B"});
    a_ = Unwrap(catalog_.FindAttribute("A"));
    b_ = Unwrap(catalog_.FindAttribute("B"));
    r_ = Unwrap(catalog_.AddRelation("r", u_));
    h_a_ = Unwrap(catalog_.AddRelation("h_a", AttrSet{a_}));
    h_b_ = Unwrap(catalog_.AddRelation("h_b", AttrSet{b_}));
    pa_ = MustBuildTableau(catalog_, u_, *MustParse(catalog_, "pi{A}(r)"));
    pb_ = MustBuildTableau(catalog_, u_, *MustParse(catalog_, "pi{B}(r)"));
    beta_.emplace(h_a_, *pa_);
    beta_.emplace(h_b_, *pb_);
    set_ = Unwrap(QuerySet::Create(
        &catalog_, u_,
        {QuerySet::Member{h_a_, *pa_}, QuerySet::Member{h_b_, *pb_}}));
  }

  // The pool P of Lemma 2.4.9: every tagged tuple over V_k for both
  // handles. Symbols: ordinal 0 = distinguished, ordinals 100+1..100+k
  // nondistinguished (offset to avoid colliding with the defining
  // templates' symbols).
  std::vector<TaggedTuple> MakePool(std::uint32_t k) {
    std::vector<Symbol> va{Symbol::Distinguished(a_)};
    std::vector<Symbol> vb{Symbol::Distinguished(b_)};
    for (std::uint32_t i = 1; i <= k; ++i) {
      va.push_back(Symbol::Nondistinguished(a_, 100 + i));
      vb.push_back(Symbol::Nondistinguished(b_, 100 + i));
    }
    std::vector<TaggedTuple> pool;
    for (RelId handle : {h_a_, h_b_}) {
      for (const Symbol& sa : va) {
        for (const Symbol& sb : vb) {
          pool.push_back(TaggedTuple{handle, Tuple(u_, {sa, sb})});
        }
      }
    }
    return pool;
  }

  // The paper-literal decision: does some expression template S, made of
  // at most `max_rows` pool rows, satisfy S -> beta == query?
  bool PaperLiteralMember(const Tableau& query, std::uint32_t k,
                          std::size_t max_rows) {
    std::vector<TaggedTuple> pool = MakePool(k);
    // Enumerate subsets of size 1..max_rows by index vectors.
    std::vector<std::size_t> pick;
    return EnumerateSubsets(pool, pick, 0, max_rows, query);
  }

  bool EnumerateSubsets(const std::vector<TaggedTuple>& pool,
                        std::vector<std::size_t>& pick, std::size_t from,
                        std::size_t max_rows, const Tableau& query) {
    if (!pick.empty() && TryCandidate(pool, pick, query)) return true;
    if (pick.size() == max_rows) return false;
    for (std::size_t i = from; i < pool.size(); ++i) {
      pick.push_back(i);
      if (EnumerateSubsets(pool, pick, i + 1, max_rows, query)) return true;
      pick.pop_back();
    }
    return false;
  }

  bool TryCandidate(const std::vector<TaggedTuple>& pool,
                    const std::vector<std::size_t>& pick,
                    const Tableau& query) {
    std::vector<TaggedTuple> rows;
    for (std::size_t i : pick) rows.push_back(pool[i]);
    Result<Tableau> s = Tableau::Create(catalog_, u_, std::move(rows));
    if (!s.ok()) return false;  // Not a valid template.
    // J_k keeps only *expression* templates (Prop. 2.4.6 filter).
    Result<RecognitionResult> recognition =
        RecognizeExpressionTemplate(catalog_, *s);
    if (!recognition.ok() || recognition->expression == nullptr) {
      return false;
    }
    SymbolPool pool_syms;
    Result<Tableau> substituted =
        SubstituteTableau(catalog_, *s, beta_, pool_syms);
    if (!substituted.ok()) return false;
    return EquivalentTableaux(catalog_, *substituted, query);
  }

  Catalog catalog_;
  AttrSet u_;
  AttrId a_ = 0, b_ = 0;
  RelId r_ = kInvalidRel, h_a_ = kInvalidRel, h_b_ = kInvalidRel;
  std::optional<Tableau> pa_, pb_;
  TemplateAssignment beta_;
  std::optional<QuerySet> set_;
};

TEST_F(JkCrosscheckTest, BothProceduresAgreeOnMembership) {
  struct Case {
    const char* query;
    bool expected_member;
  };
  const Case cases[] = {
      {"pi{A}(r)", true},             // A defining query itself.
      {"pi{B}(r)", true},
      {"pi{A}(r) * pi{B}(r)", true},  // The cross product.
      {"r", false},                   // The lost A-B correlation.
      {"pi{A}(pi{A}(r) * pi{B}(r))", true},
  };
  CapacityOracle oracle(&catalog_, *set_);
  for (const Case& c : cases) {
    Tableau query =
        MustBuildTableau(catalog_, u_, *MustParse(catalog_, c.query));
    Tableau reduced = Reduce(catalog_, query);
    const std::uint32_t k = static_cast<std::uint32_t>(reduced.size());

    MembershipResult oracle_verdict = Unwrap(oracle.Contains(query));
    bool literal_verdict =
        PaperLiteralMember(query, k, /*max_rows=*/reduced.size() + 1);

    EXPECT_EQ(oracle_verdict.member, c.expected_member) << c.query;
    EXPECT_EQ(literal_verdict, c.expected_member) << c.query;
    EXPECT_EQ(oracle_verdict.member, literal_verdict) << c.query;
  }
}

TEST_F(JkCrosscheckTest, PoolSizeMatchesLemma249) {
  // |P| = |schema| * (k+1)^|U| (Lemma 2.4.9's finiteness argument).
  EXPECT_EQ(MakePool(1).size(), 2u * 2 * 2);
  EXPECT_EQ(MakePool(2).size(), 2u * 3 * 3);
}

}  // namespace
}  // namespace viewcap
