// Unit tests for algebra/parser.h and algebra/printer.h.
#include <gtest/gtest.h>

#include "algebra/ast.h"
#include "algebra/parser.h"
#include "algebra/printer.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})).value();
    catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})).value();
  }
  Catalog catalog_;
};

TEST_F(ParserTest, ParsesRelationName) {
  ExprPtr e = MustParse(catalog_, "r");
  EXPECT_EQ(e->kind(), Expr::Kind::kRelName);
  EXPECT_EQ(catalog_.RelationName(e->rel()), "r");
}

TEST_F(ParserTest, ParsesProjection) {
  ExprPtr e = MustParse(catalog_, "pi{A}(r)");
  EXPECT_EQ(e->kind(), Expr::Kind::kProject);
  EXPECT_EQ(e->trs(), catalog_.MakeScheme({"A"}));
}

TEST_F(ParserTest, ParsesNaryJoinFlat) {
  ExprPtr e = MustParse(catalog_, "r * s * r");
  EXPECT_EQ(e->kind(), Expr::Kind::kJoin);
  EXPECT_EQ(e->children().size(), 3u);
  EXPECT_EQ(e->LeafCount(), 3u);
}

TEST_F(ParserTest, ParenthesesGroup) {
  ExprPtr e = MustParse(catalog_, "r * (s * r)");
  EXPECT_EQ(e->children().size(), 2u);
  EXPECT_EQ(e->children()[1]->kind(), Expr::Kind::kJoin);
}

TEST_F(ParserTest, WhitespaceAndCommentsIgnored) {
  ExprPtr e = MustParse(catalog_, "  pi{A, B} ( # comment\n r )  ");
  EXPECT_EQ(e->trs(), catalog_.MakeScheme({"A", "B"}));
  ExprPtr e2 = MustParse(catalog_, "r // c++ style\n * s");
  EXPECT_EQ(e2->LeafCount(), 2u);
}

TEST_F(ParserTest, ErrorsCarryPosition) {
  Result<ExprPtr> bad = ParseExpr(catalog_, "pi{A}(unknown)");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad.status().message().find("unknown"), std::string::npos);

  EXPECT_FALSE(ParseExpr(catalog_, "r *").ok());
  EXPECT_FALSE(ParseExpr(catalog_, "pi{}(r)").ok());
  EXPECT_FALSE(ParseExpr(catalog_, "(r").ok());
  EXPECT_FALSE(ParseExpr(catalog_, "r s").ok());
  EXPECT_FALSE(ParseExpr(catalog_, "r @ s").ok());
  EXPECT_FALSE(ParseExpr(catalog_, "").ok());
}

TEST_F(ParserTest, IllTypedProjectionRejected) {
  // C is not in TRS(r).
  Result<ExprPtr> bad = ParseExpr(catalog_, "pi{C}(r)");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIllFormed);
}

TEST_F(ParserTest, PrinterRoundTrips) {
  const char* cases[] = {
      "r",
      "pi{A}(r)",
      "r * s",
      "pi{A, C}(r * s)",
      "pi{A, B}(r) * pi{B, C}(s)",
      "(r * s) * r",
      "pi{B}(pi{A, B}(r * s))",
  };
  for (const char* text : cases) {
    ExprPtr parsed = MustParse(catalog_, text);
    std::string printed = ToString(*parsed, catalog_);
    ExprPtr reparsed = MustParse(catalog_, printed);
    EXPECT_TRUE(Expr::StructurallyEqual(*parsed, *reparsed))
        << text << " -> " << printed;
  }
}

TEST_F(ParserTest, AttrSetPrinting) {
  EXPECT_EQ(ToString(catalog_.MakeScheme({"A", "B"}), catalog_), "{A, B}");
  EXPECT_EQ(ToString(AttrSet{}, catalog_), "{}");
}

TEST(ProgramTest, ParsesSchemaAndViews) {
  Catalog catalog;
  ParsedProgram program = Unwrap(ParseProgram(catalog, R"(
    schema { r(A, B); s(B, C); }
    view V { v1 := pi{A, B}(r); v2 := r * s; }
    view W { w := pi{A}(r); }
  )"));
  EXPECT_EQ(program.base_relations.size(), 2u);
  ASSERT_EQ(program.views.size(), 2u);
  EXPECT_EQ(program.views[0].name, "V");
  EXPECT_EQ(program.views[0].definitions.size(), 2u);
  EXPECT_EQ(program.views[1].definitions.size(), 1u);
  // View relation names are interned with the TRS of their query.
  RelId v2 = program.views[0].definitions[1].view_rel;
  EXPECT_EQ(catalog.RelationScheme(v2), catalog.MakeScheme({"A", "B", "C"}));
}

TEST(ProgramTest, ViewsSeeEarlierSchemaBlocksAcrossText) {
  Catalog catalog;
  ParsedProgram program = Unwrap(ParseProgram(catalog, R"(
    schema { r(A, B); }
    view V { v := r; }
    schema { s(B, C); }
    view W { w := r * s; }
  )"));
  EXPECT_EQ(program.views.size(), 2u);
}

TEST(ProgramTest, Failures) {
  Catalog catalog;
  EXPECT_FALSE(ParseProgram(catalog, "view V { v := r; }").ok());
  EXPECT_FALSE(ParseProgram(catalog, "schema { r(A,B) }").ok());
  EXPECT_FALSE(ParseProgram(catalog, "bogus { }").ok());
  EXPECT_FALSE(ParseProgram(catalog, "schema { r(); }").ok());
  EXPECT_FALSE(
      ParseProgram(catalog, "schema { r(A); } view V { v = r; }").ok());
}

TEST_F(ParserTest, ErrorPositionsAreExact) {
  // The unknown name starts at line 1, column 7 (1-based).
  Result<ExprPtr> bad = ParseExpr(catalog_, "pi{A}(unknown)");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("at 1:7"), std::string::npos)
      << bad.status().message();
  // Locations track newlines.
  Result<ExprPtr> bad2 = ParseExpr(catalog_, "r *\n  nope");
  ASSERT_FALSE(bad2.ok());
  EXPECT_NE(bad2.status().message().find("at 2:3"), std::string::npos)
      << bad2.status().message();
}

TEST_F(ParserTest, AstCarriesSpans) {
  std::vector<SyntaxError> errors;
  AstExprPtr ast = ParseExprAst("pi{A, B}( r * s )", errors);
  ASSERT_NE(ast, nullptr);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(ast->kind, AstExpr::Kind::kProject);
  // The node's extent runs from its first token to one past its last.
  EXPECT_EQ(ast->span.begin, (SourceLocation{1, 1}));
  EXPECT_EQ(ast->span.end, (SourceLocation{1, 18}));
  ASSERT_EQ(ast->projection.size(), 2u);
  EXPECT_EQ(ast->projection[0].span.begin, (SourceLocation{1, 4}));
  EXPECT_EQ(ast->projection[1].span.begin, (SourceLocation{1, 7}));
  ASSERT_EQ(ast->children.size(), 1u);
  const AstExpr& join = *ast->children[0];
  ASSERT_EQ(join.kind, AstExpr::Kind::kJoin);
  EXPECT_EQ(join.span.begin, (SourceLocation{1, 11}));
  ASSERT_EQ(join.children.size(), 2u);
  EXPECT_EQ(join.children[1]->span.begin, (SourceLocation{1, 15}));
}

TEST(ProgramAstTest, DeclarationAndDefinitionSpans) {
  std::vector<SyntaxError> errors;
  AstProgram program = ParseProgramAst(
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(r); }\n",
      errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(program.items.size(), 2u);
  ASSERT_EQ(program.items[0].relations.size(), 1u);
  EXPECT_EQ(program.items[0].relations[0].name_span.begin,
            (SourceLocation{1, 10}));
  const AstView& view = program.items[1].view;
  EXPECT_EQ(view.name_span.begin, (SourceLocation{2, 6}));
  ASSERT_EQ(view.definitions.size(), 1u);
  EXPECT_EQ(view.definitions[0].name_span.begin, (SourceLocation{2, 10}));
}

TEST(ProgramAstTest, RecoversPastBrokenStatements) {
  std::vector<SyntaxError> errors;
  AstProgram program = ParseProgramAst(
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(r) @; y := r; }\n",
      errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].span.begin, (SourceLocation{2, 24}));
  // The definition after the broken one survives.
  ASSERT_EQ(program.items.size(), 2u);
  const AstView& view = program.items[1].view;
  ASSERT_GE(view.definitions.size(), 1u);
  EXPECT_EQ(view.definitions.back().name, "y");
}

TEST(ProgramTest, LoadErrorsNameTheirPosition) {
  Catalog catalog;
  Result<ParsedProgram> bad = ParseProgram(catalog, R"(schema { r(A, B); }
view V { v := pi{A}(ghost); }
)");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("at 2:21"), std::string::npos)
      << bad.status().message();
}

TEST(ProgramTest, RedefiningViewRelationWithOtherTypeFails) {
  Catalog catalog;
  Result<ParsedProgram> bad = ParseProgram(catalog, R"(
    schema { r(A, B); }
    view V { v := r; }
    view W { v := pi{A}(r); }
  )");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace viewcap
