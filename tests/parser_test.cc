// Unit tests for algebra/parser.h and algebra/printer.h.
#include <gtest/gtest.h>

#include "algebra/parser.h"
#include "algebra/printer.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})).value();
    catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})).value();
  }
  Catalog catalog_;
};

TEST_F(ParserTest, ParsesRelationName) {
  ExprPtr e = MustParse(catalog_, "r");
  EXPECT_EQ(e->kind(), Expr::Kind::kRelName);
  EXPECT_EQ(catalog_.RelationName(e->rel()), "r");
}

TEST_F(ParserTest, ParsesProjection) {
  ExprPtr e = MustParse(catalog_, "pi{A}(r)");
  EXPECT_EQ(e->kind(), Expr::Kind::kProject);
  EXPECT_EQ(e->trs(), catalog_.MakeScheme({"A"}));
}

TEST_F(ParserTest, ParsesNaryJoinFlat) {
  ExprPtr e = MustParse(catalog_, "r * s * r");
  EXPECT_EQ(e->kind(), Expr::Kind::kJoin);
  EXPECT_EQ(e->children().size(), 3u);
  EXPECT_EQ(e->LeafCount(), 3u);
}

TEST_F(ParserTest, ParenthesesGroup) {
  ExprPtr e = MustParse(catalog_, "r * (s * r)");
  EXPECT_EQ(e->children().size(), 2u);
  EXPECT_EQ(e->children()[1]->kind(), Expr::Kind::kJoin);
}

TEST_F(ParserTest, WhitespaceAndCommentsIgnored) {
  ExprPtr e = MustParse(catalog_, "  pi{A, B} ( # comment\n r )  ");
  EXPECT_EQ(e->trs(), catalog_.MakeScheme({"A", "B"}));
  ExprPtr e2 = MustParse(catalog_, "r // c++ style\n * s");
  EXPECT_EQ(e2->LeafCount(), 2u);
}

TEST_F(ParserTest, ErrorsCarryPosition) {
  Result<ExprPtr> bad = ParseExpr(catalog_, "pi{A}(unknown)");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad.status().message().find("unknown"), std::string::npos);

  EXPECT_FALSE(ParseExpr(catalog_, "r *").ok());
  EXPECT_FALSE(ParseExpr(catalog_, "pi{}(r)").ok());
  EXPECT_FALSE(ParseExpr(catalog_, "(r").ok());
  EXPECT_FALSE(ParseExpr(catalog_, "r s").ok());
  EXPECT_FALSE(ParseExpr(catalog_, "r @ s").ok());
  EXPECT_FALSE(ParseExpr(catalog_, "").ok());
}

TEST_F(ParserTest, IllTypedProjectionRejected) {
  // C is not in TRS(r).
  Result<ExprPtr> bad = ParseExpr(catalog_, "pi{C}(r)");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIllFormed);
}

TEST_F(ParserTest, PrinterRoundTrips) {
  const char* cases[] = {
      "r",
      "pi{A}(r)",
      "r * s",
      "pi{A, C}(r * s)",
      "pi{A, B}(r) * pi{B, C}(s)",
      "(r * s) * r",
      "pi{B}(pi{A, B}(r * s))",
  };
  for (const char* text : cases) {
    ExprPtr parsed = MustParse(catalog_, text);
    std::string printed = ToString(*parsed, catalog_);
    ExprPtr reparsed = MustParse(catalog_, printed);
    EXPECT_TRUE(Expr::StructurallyEqual(*parsed, *reparsed))
        << text << " -> " << printed;
  }
}

TEST_F(ParserTest, AttrSetPrinting) {
  EXPECT_EQ(ToString(catalog_.MakeScheme({"A", "B"}), catalog_), "{A, B}");
  EXPECT_EQ(ToString(AttrSet{}, catalog_), "{}");
}

TEST(ProgramTest, ParsesSchemaAndViews) {
  Catalog catalog;
  ParsedProgram program = Unwrap(ParseProgram(catalog, R"(
    schema { r(A, B); s(B, C); }
    view V { v1 := pi{A, B}(r); v2 := r * s; }
    view W { w := pi{A}(r); }
  )"));
  EXPECT_EQ(program.base_relations.size(), 2u);
  ASSERT_EQ(program.views.size(), 2u);
  EXPECT_EQ(program.views[0].name, "V");
  EXPECT_EQ(program.views[0].definitions.size(), 2u);
  EXPECT_EQ(program.views[1].definitions.size(), 1u);
  // View relation names are interned with the TRS of their query.
  RelId v2 = program.views[0].definitions[1].view_rel;
  EXPECT_EQ(catalog.RelationScheme(v2), catalog.MakeScheme({"A", "B", "C"}));
}

TEST(ProgramTest, ViewsSeeEarlierSchemaBlocksAcrossText) {
  Catalog catalog;
  ParsedProgram program = Unwrap(ParseProgram(catalog, R"(
    schema { r(A, B); }
    view V { v := r; }
    schema { s(B, C); }
    view W { w := r * s; }
  )"));
  EXPECT_EQ(program.views.size(), 2u);
}

TEST(ProgramTest, Failures) {
  Catalog catalog;
  EXPECT_FALSE(ParseProgram(catalog, "view V { v := r; }").ok());
  EXPECT_FALSE(ParseProgram(catalog, "schema { r(A,B) }").ok());
  EXPECT_FALSE(ParseProgram(catalog, "bogus { }").ok());
  EXPECT_FALSE(ParseProgram(catalog, "schema { r(); }").ok());
  EXPECT_FALSE(
      ParseProgram(catalog, "schema { r(A); } view V { v = r; }").ok());
}

TEST(ProgramTest, RedefiningViewRelationWithOtherTypeFails) {
  Catalog catalog;
  Result<ParsedProgram> bad = ParseProgram(catalog, R"(
    schema { r(A, B); }
    view V { v := r; }
    view W { v := pi{A}(r); }
  )");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace viewcap
