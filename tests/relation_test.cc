// Unit tests for relation/relation.h, instantiation.h and generator.h:
// the Section 1.1 operators.
#include <gtest/gtest.h>

#include "relation/generator.h"
#include "relation/instantiation.h"
#include "relation/relation.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::Unwrap;

class RelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    abc_ = catalog_.MakeScheme({"A", "B", "C"});
    ab_ = catalog_.MakeScheme({"A", "B"});
    bc_ = catalog_.MakeScheme({"B", "C"});
    a_ = Unwrap(catalog_.FindAttribute("A"));
    b_ = Unwrap(catalog_.FindAttribute("B"));
    c_ = Unwrap(catalog_.FindAttribute("C"));
  }

  Tuple T2(const AttrSet& scheme, std::uint32_t v1, std::uint32_t v2) {
    auto it = scheme.begin();
    AttrId x = *it++, y = *it;
    return Tuple(scheme, {Symbol::Nondistinguished(x, v1),
                          Symbol::Nondistinguished(y, v2)});
  }

  Catalog catalog_;
  AttrSet abc_, ab_, bc_;
  AttrId a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(RelationTest, InsertDeduplicates) {
  Relation r(ab_);
  EXPECT_TRUE(r.Insert(T2(ab_, 1, 1)));
  EXPECT_FALSE(r.Insert(T2(ab_, 1, 1)));
  EXPECT_TRUE(r.Insert(T2(ab_, 1, 2)));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(T2(ab_, 1, 2)));
  EXPECT_FALSE(r.Contains(T2(ab_, 9, 9)));
}

TEST_F(RelationTest, ConstructorSortsAndDeduplicates) {
  Relation r(ab_, {T2(ab_, 2, 2), T2(ab_, 1, 1), T2(ab_, 2, 2)});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(std::is_sorted(r.tuples().begin(), r.tuples().end()));
}

TEST_F(RelationTest, ProjectProducesSetSemantics) {
  Relation r(ab_, {T2(ab_, 1, 1), T2(ab_, 1, 2), T2(ab_, 2, 1)});
  Relation p = r.Project(AttrSet{a_});
  // (1,1) and (1,2) collapse onto a=1.
  EXPECT_EQ(p.size(), 2u);
}

TEST_F(RelationTest, NaturalJoinOnSharedAttribute) {
  Relation left(ab_, {T2(ab_, 1, 1), T2(ab_, 2, 2)});
  Relation right(bc_, {T2(bc_, 1, 5), T2(bc_, 1, 6), T2(bc_, 3, 7)});
  Relation joined = Relation::NaturalJoin(left, right);
  EXPECT_EQ(joined.scheme(), abc_);
  // b=1 matches twice, b=2 and b=3 dangle.
  EXPECT_EQ(joined.size(), 2u);
  for (const Tuple& t : joined) {
    EXPECT_EQ(t.At(a_), Symbol::Nondistinguished(a_, 1));
    EXPECT_EQ(t.At(b_), Symbol::Nondistinguished(b_, 1));
  }
}

TEST_F(RelationTest, JoinWithNoSharedAttributesIsCartesian) {
  AttrSet aa{a_}, cc{c_};
  Relation left(aa);
  left.Insert(Tuple(aa, {Symbol::Nondistinguished(a_, 1)}));
  left.Insert(Tuple(aa, {Symbol::Nondistinguished(a_, 2)}));
  Relation right(cc);
  right.Insert(Tuple(cc, {Symbol::Nondistinguished(c_, 1)}));
  right.Insert(Tuple(cc, {Symbol::Nondistinguished(c_, 2)}));
  right.Insert(Tuple(cc, {Symbol::Nondistinguished(c_, 3)}));
  EXPECT_EQ(Relation::NaturalJoin(left, right).size(), 6u);
}

TEST_F(RelationTest, JoinWithEmptyIsEmpty) {
  Relation left(ab_, {T2(ab_, 1, 1)});
  Relation right(bc_);
  EXPECT_TRUE(Relation::NaturalJoin(left, right).empty());
}

TEST_F(RelationTest, JoinIdenticalSchemesIsIntersection) {
  Relation r1(ab_, {T2(ab_, 1, 1), T2(ab_, 2, 2)});
  Relation r2(ab_, {T2(ab_, 2, 2), T2(ab_, 3, 3)});
  Relation joined = Relation::NaturalJoin(r1, r2);
  EXPECT_EQ(joined.size(), 1u);
  EXPECT_TRUE(joined.Contains(T2(ab_, 2, 2)));
}

TEST_F(RelationTest, NaturalJoinAllAssociates) {
  Relation r1(ab_, {T2(ab_, 1, 1)});
  Relation r2(bc_, {T2(bc_, 1, 2)});
  Relation lhs = Relation::NaturalJoinAll({r1, r2});
  Relation rhs = Relation::NaturalJoin(r1, r2);
  EXPECT_EQ(lhs, rhs);
  EXPECT_EQ(Relation::NaturalJoinAll({r1}), r1);
}

TEST_F(RelationTest, InstantiationDefaultsToEmpty) {
  RelId r = Unwrap(catalog_.AddRelation("r", ab_));
  Instantiation alpha(&catalog_);
  EXPECT_TRUE(alpha.Get(r).empty());
  EXPECT_EQ(alpha.Get(r).scheme(), ab_);
}

TEST_F(RelationTest, InstantiationSetChecksScheme) {
  RelId r = Unwrap(catalog_.AddRelation("r", ab_));
  Instantiation alpha(&catalog_);
  EXPECT_FALSE(alpha.Set(r, Relation(bc_)).ok());
  VIEWCAP_EXPECT_OK(alpha.Set(r, Relation(ab_, {T2(ab_, 1, 1)})));
  EXPECT_EQ(alpha.Get(r).size(), 1u);
  EXPECT_EQ(alpha.TotalTuples(), 1u);
}

TEST_F(RelationTest, InstantiationWithOverrides) {
  RelId r = Unwrap(catalog_.AddRelation("r", ab_));
  Instantiation alpha(&catalog_);
  VIEWCAP_EXPECT_OK(alpha.Set(r, Relation(ab_, {T2(ab_, 1, 1)})));
  Instantiation beta = alpha.With(r, Relation(ab_, {T2(ab_, 2, 2)}));
  EXPECT_EQ(alpha.Get(r).size(), 1u);
  EXPECT_TRUE(alpha.Get(r).Contains(T2(ab_, 1, 1)));
  EXPECT_TRUE(beta.Get(r).Contains(T2(ab_, 2, 2)));
  EXPECT_FALSE(beta.Get(r).Contains(T2(ab_, 1, 1)));
}

TEST_F(RelationTest, GeneratorIsDeterministicAndWellTyped) {
  RelId r = Unwrap(catalog_.AddRelation("r", ab_));
  RelId s = Unwrap(catalog_.AddRelation("s", bc_));
  DbSchema schema(catalog_, {r, s});
  InstanceOptions options;
  options.tuples_per_relation = 8;
  InstanceGenerator generator(&catalog_, options);
  Random rng1(42), rng2(42);
  Instantiation i1 = generator.Generate(schema, rng1);
  Instantiation i2 = generator.Generate(schema, rng2);
  EXPECT_EQ(i1.Get(r), i2.Get(r));
  EXPECT_EQ(i1.Get(s), i2.Get(s));
  EXPECT_EQ(i1.Get(r).scheme(), ab_);
  EXPECT_LE(i1.Get(r).size(), 8u);
  EXPECT_FALSE(i1.Get(r).empty());
}

TEST_F(RelationTest, GeneratorDomainBounds) {
  InstanceOptions options;
  options.tuples_per_relation = 50;
  options.domain_size = 2;
  options.distinguished_probability = 0.0;
  InstanceGenerator generator(&catalog_, options);
  Random rng(7);
  Relation rel = generator.GenerateRelation(ab_, rng);
  EXPECT_LE(rel.size(), 4u);  // Only 2x2 possible tuples.
  for (const Tuple& t : rel) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXPECT_GE(t.ValueAt(i).ordinal, 1u);
      EXPECT_LE(t.ValueAt(i).ordinal, 2u);
    }
  }
}

}  // namespace
}  // namespace viewcap
