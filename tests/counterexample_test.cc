// Tests for tableau/counterexample.h.
#include <gtest/gtest.h>

#include "algebra/parser.h"
#include "tableau/build.h"
#include "tableau/counterexample.h"
#include "tableau/evaluate.h"
#include "tableau/homomorphism.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class CounterexampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
  }

  Tableau T(const std::string& text) {
    return MustBuildTableau(catalog_, u_, *MustParse(catalog_, text));
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel;
};

TEST_F(CounterexampleTest, FreezeProjectsRowsOntoTypes) {
  Tableau t = T("r * s");
  Instantiation frozen = FreezeTableau(catalog_, t);
  EXPECT_EQ(frozen.Get(r_).size(), 1u);
  EXPECT_EQ(frozen.Get(s_).size(), 1u);
  EXPECT_EQ(frozen.Get(r_).scheme(), catalog_.RelationScheme(r_));
}

TEST_F(CounterexampleTest, TemplateContainsItsDistinguishedTupleOnFreeze) {
  // T(freeze(T)) always contains the all-distinguished tuple over TRS(T):
  // the identity embedding witnesses it.
  for (const char* text : {"r", "r * s", "pi{A, C}(r * s)", "pi{B}(s)"}) {
    Tableau t = T(text);
    Relation result = EvaluateTableau(t, FreezeTableau(catalog_, t));
    EXPECT_TRUE(result.Contains(Tuple::AllDistinguished(t.Trs()))) << text;
  }
}

TEST_F(CounterexampleTest, FrozenInstanceWitnessesNonEquivalence) {
  // pi_A(r) vs pi_A(r |x| s): inequivalent, same TRS.
  Tableau wide = T("pi{A}(r)");
  Tableau narrow = T("pi{A}(r * s)");
  InstanceOptions options;
  Random rng(3);
  std::optional<Instantiation> witness = FindDistinguishingInstance(
      catalog_, wide, narrow, options, /*random_trials=*/0, rng);
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(EvaluateTableau(wide, *witness),
            EvaluateTableau(narrow, *witness));
}

TEST_F(CounterexampleTest, NoWitnessForEquivalentTemplates) {
  Tableau t1 = T("pi{A, B}(r * s)");
  Tableau t2 = T("pi{A, B}(r * pi{B}(s))");
  ASSERT_TRUE(EquivalentTableaux(catalog_, t1, t2));
  InstanceOptions options;
  options.tuples_per_relation = 4;
  options.domain_size = 3;
  Random rng(17);
  EXPECT_FALSE(FindDistinguishingInstance(catalog_, t1, t2, options,
                                          /*random_trials=*/30, rng)
                   .has_value());
}

TEST_F(CounterexampleTest, DifferentTrsAlwaysDistinguished) {
  Tableau t1 = T("pi{A}(r)");
  Tableau t2 = T("r");
  InstanceOptions options;
  Random rng(5);
  EXPECT_TRUE(FindDistinguishingInstance(catalog_, t1, t2, options, 0, rng)
                  .has_value());
}

TEST_F(CounterexampleTest, FrozenWitnessesAreAlwaysEnoughForValidTemplates) {
  // Exhaustive cross-check on a family: whenever homomorphic equivalence
  // fails, one of the two frozen instances already distinguishes.
  const char* exprs[] = {"r", "r * s", "pi{A, B}(r * s)", "pi{A}(r)",
                         "pi{A}(r * s)", "r * pi{B}(s)"};
  InstanceOptions options;
  Random rng(11);
  for (const char* x : exprs) {
    for (const char* y : exprs) {
      Tableau tx = T(x), ty = T(y);
      bool equivalent = EquivalentTableaux(catalog_, tx, ty);
      std::optional<Instantiation> witness = FindDistinguishingInstance(
          catalog_, tx, ty, options, /*random_trials=*/0, rng);
      EXPECT_EQ(witness.has_value(), !equivalent) << x << " vs " << y;
    }
  }
}

}  // namespace
}  // namespace viewcap
