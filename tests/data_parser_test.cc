// Tests for relation/data_parser.h.
#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/parser.h"
#include "relation/data_parser.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class DataParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
  }
  Catalog catalog_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel;
};

TEST_F(DataParserTest, ParsesFacts) {
  Instantiation alpha = Unwrap(ParseInstance(catalog_, R"(
    r(1, 2);
    r(2, 2);
    s(2, 9);
  )"));
  EXPECT_EQ(alpha.Get(r_).size(), 2u);
  EXPECT_EQ(alpha.Get(s_).size(), 1u);
}

TEST_F(DataParserTest, InternsTokensConsistentlyPerAttribute) {
  Instantiation alpha = Unwrap(ParseInstance(catalog_, R"(
    r(x, y);
    s(y, x);    # 'y' in the B column matches r's B value; 'x' in C is new
  )"));
  // Join on B succeeds because both 'y' tokens intern to the same symbol.
  ExprPtr join = MustParse(catalog_, "r * s");
  EXPECT_EQ(Evaluate(*join, alpha).size(), 1u);
}

TEST_F(DataParserTest, SameTokenDifferentAttributesDiffer) {
  Instantiation alpha = Unwrap(ParseInstance(catalog_, R"(
    r(7, 7);
  )"));
  const Tuple& t = alpha.Get(r_).tuples()[0];
  EXPECT_NE(t.ValueAt(0).attr, t.ValueAt(1).attr);
}

TEST_F(DataParserTest, ZeroIsDistinguished) {
  Instantiation alpha = Unwrap(ParseInstance(catalog_, "r(0, 1);"));
  const Tuple& t = alpha.Get(r_).tuples()[0];
  EXPECT_TRUE(t.ValueAt(0).IsDistinguished());
  EXPECT_FALSE(t.ValueAt(1).IsDistinguished());
}

TEST_F(DataParserTest, DuplicateFactsDeduplicate) {
  Instantiation alpha =
      Unwrap(ParseInstance(catalog_, "r(1, 2); r(1, 2);"));
  EXPECT_EQ(alpha.Get(r_).size(), 1u);
}

TEST_F(DataParserTest, CommentsAndWhitespace) {
  Instantiation alpha = Unwrap(ParseInstance(catalog_, R"(
    # leading comment
    r ( 1 , 2 ) ;   # trailing comment

    r(3,4);
  )"));
  EXPECT_EQ(alpha.Get(r_).size(), 2u);
}

TEST_F(DataParserTest, EmptyInputIsEmptyInstance) {
  Instantiation alpha = Unwrap(ParseInstance(catalog_, "  # nothing\n"));
  EXPECT_TRUE(alpha.Get(r_).empty());
}

TEST_F(DataParserTest, ErrorsCarryLineNumbers) {
  auto check = [&](const char* text, const char* what) {
    Result<Instantiation> bad = ParseInstance(catalog_, text);
    ASSERT_FALSE(bad.ok()) << text;
    EXPECT_EQ(bad.status().code(), StatusCode::kParseError) << text;
    EXPECT_NE(bad.status().message().find("line"), std::string::npos)
        << what;
  };
  check("unknown(1, 2);", "unknown relation");
  check("r(1);", "arity too small");
  check("r(1, 2, 3);", "arity too large");
  check("r(1, 2)", "missing semicolon");
  check("r 1, 2);", "missing paren");
  check("r(,);", "missing value");
  check("\n\nr(1;", "line number advances");
}

TEST_F(DataParserTest, QueriesRunOverParsedInstances) {
  Instantiation alpha = Unwrap(ParseInstance(catalog_, R"(
    r(a1, b1); r(a2, b1); r(a3, b2);
    s(b1, c1); s(b2, c2); s(b2, c3);
  )"));
  ExprPtr q = MustParse(catalog_, "pi{A, C}(r * s)");
  // a1,a2 pair with c1; a3 pairs with c2 and c3: 4 results.
  EXPECT_EQ(Evaluate(*q, alpha).size(), 4u);
}

}  // namespace
}  // namespace viewcap
