// Shared fixtures and builders for the viewcap test suite.
#ifndef VIEWCAP_TESTS_TEST_UTIL_H_
#define VIEWCAP_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/viewcap.h"

namespace viewcap {
namespace testing {

/// gtest helper: asserts a Status is OK with a useful message.
#define VIEWCAP_EXPECT_OK(expr)                                   \
  do {                                                            \
    const ::viewcap::Status _st = (expr);                         \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (false)

#define VIEWCAP_ASSERT_OK(expr)                                   \
  do {                                                            \
    const ::viewcap::Status _st = (expr);                         \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (false)

/// Unwraps a Result in a test, failing loudly on error.
template <typename T>
T Unwrap(Result<T> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

/// A tiny DSL for building tagged tuples in tests:
///   Row(catalog, universe, "r", {"0", "b1", "0"})
/// where each cell is "0" (distinguished) or "<x><n>" (nondistinguished
/// with ordinal n of that attribute; the letter is ignored, only digits are
/// read). Cells follow the universe's sorted attribute order.
inline TaggedTuple Row(const Catalog& catalog, const AttrSet& universe,
                       const std::string& rel_name,
                       const std::vector<std::string>& cells) {
  RelId rel = Unwrap(catalog.FindRelation(rel_name));
  EXPECT_EQ(cells.size(), universe.size());
  std::vector<Symbol> values;
  values.reserve(cells.size());
  std::size_t i = 0;
  for (AttrId a : universe) {
    const std::string& cell = cells[i++];
    if (cell == "0") {
      values.push_back(Symbol::Distinguished(a));
    } else {
      std::uint32_t ordinal = 0;
      for (char c : cell) {
        if (c >= '0' && c <= '9') {
          ordinal = ordinal * 10 + static_cast<std::uint32_t>(c - '0');
        }
      }
      EXPECT_GT(ordinal, 0u) << "bad test cell '" << cell << "'";
      values.push_back(Symbol::Nondistinguished(a, ordinal));
    }
  }
  return TaggedTuple{rel, Tuple(universe, std::move(values))};
}

/// Parses an expression, failing the test on error.
inline ExprPtr MustParse(Catalog& catalog, const std::string& text) {
  return Unwrap(ParseExpr(catalog, text));
}

/// A catalog preloaded with one ternary relation r(A, B, C), the workhorse
/// schema of the paper's Section 3 examples.
class SingleRelationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    abc_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", abc_));
    base_ = DbSchema(catalog_, {r_});
  }

  Catalog catalog_;
  AttrSet abc_;
  RelId r_ = kInvalidRel;
  DbSchema base_;
};

}  // namespace testing
}  // namespace viewcap

#endif  // VIEWCAP_TESTS_TEST_UTIL_H_
