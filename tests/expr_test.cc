// Unit tests for algebra/expr.h and algebra/eval.h (Section 1.2).
#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/expr.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::Unwrap;

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ab_ = catalog_.MakeScheme({"A", "B"});
    bc_ = catalog_.MakeScheme({"B", "C"});
    abc_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", ab_));
    s_ = Unwrap(catalog_.AddRelation("s", bc_));
    a_ = Unwrap(catalog_.FindAttribute("A"));
    b_ = Unwrap(catalog_.FindAttribute("B"));
    c_ = Unwrap(catalog_.FindAttribute("C"));
  }

  Catalog catalog_;
  AttrSet ab_, bc_, abc_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel;
  AttrId a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(ExprTest, RelNameLeaf) {
  ExprPtr e = Expr::Rel(catalog_, r_);
  EXPECT_EQ(e->kind(), Expr::Kind::kRelName);
  EXPECT_EQ(e->rel(), r_);
  EXPECT_EQ(e->trs(), ab_);
  EXPECT_EQ(e->LeafCount(), 1u);
  EXPECT_EQ(e->NodeCount(), 1u);
  EXPECT_EQ(e->RelNames(), (std::vector<RelId>{r_}));
}

TEST_F(ExprTest, ProjectTyping) {
  ExprPtr r = Expr::Rel(catalog_, r_);
  ExprPtr p = Unwrap(Expr::Project(AttrSet{a_}, r));
  EXPECT_EQ(p->trs(), AttrSet{a_});
  EXPECT_EQ(p->kind(), Expr::Kind::kProject);
  EXPECT_EQ(p->projection(), AttrSet{a_});

  // Projection onto the full TRS is legal (X need only be nonempty subset).
  EXPECT_TRUE(Expr::Project(ab_, r).ok());
  // Empty projection is ill-formed.
  EXPECT_EQ(Expr::Project(AttrSet{}, r).status().code(),
            StatusCode::kIllFormed);
  // Projection outside the TRS is ill-formed.
  EXPECT_EQ(Expr::Project(AttrSet{c_}, r).status().code(),
            StatusCode::kIllFormed);
  // Null child is invalid.
  EXPECT_EQ(Expr::Project(AttrSet{a_}, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExprTest, JoinTyping) {
  ExprPtr r = Expr::Rel(catalog_, r_);
  ExprPtr s = Expr::Rel(catalog_, s_);
  ExprPtr j = Unwrap(Expr::Join({r, s}));
  EXPECT_EQ(j->trs(), abc_);  // TRS is the union (Section 1.2(iii)).
  EXPECT_EQ(j->LeafCount(), 2u);
  EXPECT_EQ(j->RelNames(), (std::vector<RelId>{r_, s_}));

  EXPECT_EQ(Expr::Join({r}).status().code(), StatusCode::kIllFormed);
  EXPECT_EQ(Expr::Join({r, nullptr}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExprTest, RelNamesDeduplicatesRepeatedOccurrences) {
  ExprPtr r = Expr::Rel(catalog_, r_);
  ExprPtr j = Expr::MustJoin2(Expr::MustProject(AttrSet{a_}, r), r);
  EXPECT_EQ(j->LeafCount(), 2u);
  EXPECT_EQ(j->RelNames(), (std::vector<RelId>{r_}));
}

TEST_F(ExprTest, StructuralEquality) {
  ExprPtr e1 = Expr::MustProject(AttrSet{a_}, Expr::Rel(catalog_, r_));
  ExprPtr e2 = Expr::MustProject(AttrSet{a_}, Expr::Rel(catalog_, r_));
  ExprPtr e3 = Expr::MustProject(AttrSet{b_}, Expr::Rel(catalog_, r_));
  EXPECT_TRUE(Expr::StructurallyEqual(*e1, *e2));
  EXPECT_FALSE(Expr::StructurallyEqual(*e1, *e3));
  EXPECT_FALSE(Expr::StructurallyEqual(*e1, *Expr::Rel(catalog_, r_)));
}

// --- Evaluation (the inductive semantics of Section 1.2). ---

class EvalTest : public ExprTest {
 protected:
  void SetUp() override {
    ExprTest::SetUp();
    alpha_ = std::make_unique<Instantiation>(&catalog_);
    Relation rel_r(ab_);
    rel_r.Insert(MakeTuple(ab_, {1, 1}));
    rel_r.Insert(MakeTuple(ab_, {2, 1}));
    rel_r.Insert(MakeTuple(ab_, {3, 2}));
    Relation rel_s(bc_);
    rel_s.Insert(MakeTuple(bc_, {1, 5}));
    rel_s.Insert(MakeTuple(bc_, {1, 6}));
    VIEWCAP_ASSERT_OK(alpha_->Set(r_, rel_r));
    VIEWCAP_ASSERT_OK(alpha_->Set(s_, rel_s));
  }

  Tuple MakeTuple(const AttrSet& scheme, std::vector<std::uint32_t> vals) {
    std::vector<Symbol> symbols;
    std::size_t i = 0;
    for (AttrId attr : scheme) {
      symbols.push_back(Symbol::Nondistinguished(attr, vals[i++]));
    }
    return Tuple(scheme, std::move(symbols));
  }

  std::unique_ptr<Instantiation> alpha_;
};

TEST_F(EvalTest, RelNameReturnsAssignment) {
  EXPECT_EQ(Evaluate(*Expr::Rel(catalog_, r_), *alpha_), alpha_->Get(r_));
}

TEST_F(EvalTest, ProjectEvaluates) {
  ExprPtr p = Expr::MustProject(AttrSet{b_}, Expr::Rel(catalog_, r_));
  Relation result = Evaluate(*p, *alpha_);
  EXPECT_EQ(result.size(), 2u);  // b values {1, 2}.
}

TEST_F(EvalTest, JoinEvaluates) {
  ExprPtr j = Expr::MustJoin2(Expr::Rel(catalog_, r_),
                              Expr::Rel(catalog_, s_));
  Relation result = Evaluate(*j, *alpha_);
  // r has two tuples with b=1, s has two with b=1: 4 combinations.
  EXPECT_EQ(result.size(), 4u);
  EXPECT_EQ(result.scheme(), abc_);
}

TEST_F(EvalTest, NestedExpressionEvaluates) {
  // pi_A(r |x| s): the a-values of r-tuples whose b matches s.
  ExprPtr e = Expr::MustProject(
      AttrSet{a_},
      Expr::MustJoin2(Expr::Rel(catalog_, r_), Expr::Rel(catalog_, s_)));
  Relation result = Evaluate(*e, *alpha_);
  EXPECT_EQ(result.size(), 2u);  // a in {1, 2}; a=3 has b=2 unmatched.
}

TEST_F(EvalTest, EvaluationOnUnsetNameIsEmpty) {
  RelId t = Unwrap(catalog_.AddRelation("t", ab_));
  EXPECT_TRUE(Evaluate(*Expr::Rel(catalog_, t), *alpha_).empty());
}

}  // namespace
}  // namespace viewcap
