// Tests for tableau/build.h: Algorithm 2.1.1 on hand-worked cases plus the
// Proposition 2.1.2 semantic property (template == expression) on random
// instances.
#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/parser.h"
#include "relation/generator.h"
#include "tableau/build.h"
#include "tableau/evaluate.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class BuildTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
    a_ = Unwrap(catalog_.FindAttribute("A"));
    b_ = Unwrap(catalog_.FindAttribute("B"));
    c_ = Unwrap(catalog_.FindAttribute("C"));
  }
  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel;
  AttrId a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(BuildTest, LeafTemplateStep) {
  // Step (i): 0_A exactly at the attributes of the type; fresh
  // nondistinguished padding elsewhere.
  Tableau t = MustBuildTableau(catalog_, u_, *MustParse(catalog_, "r"));
  ASSERT_EQ(t.size(), 1u);
  const TaggedTuple& row = t.rows()[0];
  EXPECT_EQ(row.rel, r_);
  EXPECT_EQ(row.tuple.At(a_), Symbol::Distinguished(a_));
  EXPECT_EQ(row.tuple.At(b_), Symbol::Distinguished(b_));
  EXPECT_FALSE(row.tuple.At(c_).IsDistinguished());
  EXPECT_EQ(t.Trs(), catalog_.MakeScheme({"A", "B"}));
}

TEST_F(BuildTest, ProjectionStepRenamesUniformly) {
  // Step (ii): all occurrences of 0_B are replaced by ONE fresh symbol.
  Tableau t =
      MustBuildTableau(catalog_, u_, *MustParse(catalog_, "pi{A}(r * s)"));
  ASSERT_EQ(t.size(), 2u);
  // Exactly one row (the r-row) has 0_A; no row has 0_B or 0_C.
  EXPECT_EQ(t.Trs(), AttrSet{a_});
  // The two rows still share their B symbol (the join link survives the
  // projection's renaming).
  const Symbol b0 = t.rows()[0].tuple.At(b_);
  const Symbol b1 = t.rows()[1].tuple.At(b_);
  EXPECT_EQ(b0, b1);
  EXPECT_FALSE(b0.IsDistinguished());
}

TEST_F(BuildTest, JoinStepDisjointSymbols) {
  // Step (iii): pairwise disjoint nondistinguished symbols across operands.
  Tableau t =
      MustBuildTableau(catalog_, u_,
                       *MustParse(catalog_, "pi{A}(r) * pi{C}(s)"));
  ASSERT_EQ(t.size(), 2u);
  const TaggedTuple& row_r = t.rows()[0].rel == r_ ? t.rows()[0] : t.rows()[1];
  const TaggedTuple& row_s = t.rows()[0].rel == r_ ? t.rows()[1] : t.rows()[0];
  // Neither B symbol is shared: the projections severed the join link.
  EXPECT_NE(row_r.tuple.At(b_), row_s.tuple.At(b_));
  EXPECT_EQ(t.Trs(), catalog_.MakeScheme({"A", "C"}));
}

TEST_F(BuildTest, JoinSharesDistinguished) {
  Tableau t = MustBuildTableau(catalog_, u_, *MustParse(catalog_, "r * s"));
  ASSERT_EQ(t.size(), 2u);
  // Both rows carry 0_B: the join variable.
  EXPECT_EQ(t.rows()[0].tuple.At(b_), Symbol::Distinguished(b_));
  EXPECT_EQ(t.rows()[1].tuple.At(b_), Symbol::Distinguished(b_));
  EXPECT_EQ(t.Trs(), u_);
}

TEST_F(BuildTest, RowCountEqualsLeafCount) {
  const char* cases[] = {"r", "r * s", "pi{B}(r) * pi{B}(s) * r",
                         "pi{A, C}(r * s) * (r * s)"};
  for (const char* text : cases) {
    ExprPtr e = MustParse(catalog_, text);
    Tableau t = MustBuildTableau(catalog_, u_, *e);
    EXPECT_EQ(t.size(), e->LeafCount()) << text;
  }
}

TEST_F(BuildTest, SelfJoinOfFullTypeRelationMergesRows) {
  // eta |x| eta where R(eta) = U: both leaf rows are all-distinguished and
  // merge — the one duplicate-row case (see DESIGN.md).
  RelId full = Unwrap(catalog_.AddRelation("full", u_));
  ExprPtr e = Expr::MustJoin2(Expr::Rel(catalog_, full),
                              Expr::Rel(catalog_, full));
  Tableau t = MustBuildTableau(catalog_, u_, *e);
  EXPECT_EQ(t.size(), 1u);
}

TEST_F(BuildTest, BuildRejectsTypeOutsideUniverse) {
  Unwrap(catalog_.AddRelation("wide", catalog_.MakeScheme({"A", "D"})));
  Result<Tableau> bad =
      BuildTableau(catalog_, u_, *MustParse(catalog_, "wide"));
  EXPECT_EQ(bad.status().code(), StatusCode::kIllFormed);
}

TEST_F(BuildTest, SharedPoolKeepsTemplatesDisjoint) {
  SymbolPool pool;
  Tableau t1 =
      Unwrap(BuildTableau(catalog_, u_, *MustParse(catalog_, "pi{A}(r)"),
                          pool));
  Tableau t2 =
      Unwrap(BuildTableau(catalog_, u_, *MustParse(catalog_, "pi{A}(r)"),
                          pool));
  for (const Symbol& s1 : t1.Symbols()) {
    if (s1.IsDistinguished()) continue;
    for (const Symbol& s2 : t2.Symbols()) {
      EXPECT_NE(s1, s2);
    }
  }
}

TEST_F(BuildTest, ProjectTableauDirect) {
  SymbolPool pool;
  Tableau t = MustBuildTableau(catalog_, u_, *MustParse(catalog_, "r * s"));
  t.ReserveSymbols(pool);
  Tableau p = Unwrap(ProjectTableau(catalog_, t,
                                    catalog_.MakeScheme({"A", "C"}), pool));
  EXPECT_EQ(p.Trs(), catalog_.MakeScheme({"A", "C"}));
  // Projection list must be nonempty subset of TRS.
  EXPECT_FALSE(ProjectTableau(catalog_, t, AttrSet{}, pool).ok());
  EXPECT_FALSE(
      ProjectTableau(catalog_, p, catalog_.MakeScheme({"B"}), pool).ok());
}

TEST_F(BuildTest, JoinTableauxRelabelsCollidingSymbols) {
  SymbolPool pool_a, pool_b;
  // Built from separate pools, these share nondistinguished ordinals.
  Tableau t1 = Unwrap(
      BuildTableau(catalog_, u_, *MustParse(catalog_, "pi{A}(r)"), pool_a));
  Tableau t2 = Unwrap(
      BuildTableau(catalog_, u_, *MustParse(catalog_, "pi{B}(r)"), pool_b));
  SymbolPool join_pool;
  Tableau joined = Unwrap(JoinTableaux(catalog_, t1, t2, join_pool));
  EXPECT_EQ(joined.size(), 2u);
  VIEWCAP_EXPECT_OK(joined.Validate(catalog_));
  EXPECT_EQ(joined.Trs(), catalog_.MakeScheme({"A", "B"}));
}

TEST_F(BuildTest, JoinTableauxRequiresSameUniverse) {
  SymbolPool pool;
  Tableau t1 = MustBuildTableau(catalog_, u_, *MustParse(catalog_, "r"));
  AttrSet small = catalog_.MakeScheme({"A", "B"});
  Tableau t2 = MustBuildTableau(catalog_, small, *MustParse(catalog_, "r"));
  EXPECT_FALSE(JoinTableaux(catalog_, t1, t2, pool).ok());
}

// Proposition 2.1.2: the built template realizes the same mapping as the
// expression, on random instances.
TEST_F(BuildTest, TemplateAgreesWithExpressionOnRandomInstances) {
  const char* cases[] = {
      "r",
      "pi{A}(r)",
      "r * s",
      "pi{A, C}(r * s)",
      "pi{A, B}(r) * pi{B, C}(s)",
      "pi{B}(pi{A, B}(r * s)) * s",
      "pi{A}(r) * pi{C}(s)",
      "r * r",
  };
  DbSchema schema(catalog_, {r_, s_});
  InstanceOptions options;
  options.tuples_per_relation = 6;
  options.domain_size = 3;
  InstanceGenerator generator(&catalog_, options);
  Random rng(7);
  for (const char* text : cases) {
    ExprPtr e = MustParse(catalog_, text);
    Tableau t = MustBuildTableau(catalog_, u_, *e);
    for (int trial = 0; trial < 15; ++trial) {
      Instantiation alpha = generator.Generate(schema, rng);
      EXPECT_EQ(EvaluateTableau(t, alpha), Evaluate(*e, alpha))
          << text << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace viewcap
