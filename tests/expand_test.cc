// Tests for algebra/expand.h: Lemma 1.4.1 expression expansion and the
// Theorem 1.4.2 surrogate property (checked semantically on instances).
#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/expand.h"
#include "algebra/parser.h"
#include "algebra/printer.h"
#include "relation/generator.h"
#include "tests/test_util.h"
#include "views/view.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class ExpandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
    base_ = DbSchema(catalog_, {r_, s_});
  }
  Catalog catalog_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel;
  DbSchema base_;
};

TEST_F(ExpandTest, ReplacesNamesByDefinitions) {
  RelId v = Unwrap(catalog_.AddRelation("v", catalog_.MakeScheme({"A", "B"})));
  Definitions defs{{v, MustParse(catalog_, "pi{A, B}(r * s)")}};
  ExprPtr query = MustParse(catalog_, "pi{A}(v)");
  ExprPtr expanded = Unwrap(Expand(catalog_, query, defs));
  EXPECT_EQ(ToString(*expanded, catalog_), "pi{A}(pi{A, B}(r * s))");
}

TEST_F(ExpandTest, LeavesBaseNamesAlone) {
  Definitions defs;
  ExprPtr query = MustParse(catalog_, "r * s");
  ExprPtr expanded = Unwrap(Expand(catalog_, query, defs));
  EXPECT_TRUE(Expr::StructurallyEqual(*query, *expanded));
}

TEST_F(ExpandTest, ExpandsEveryOccurrence) {
  RelId v = Unwrap(catalog_.AddRelation("v", catalog_.MakeScheme({"A", "B"})));
  Definitions defs{{v, MustParse(catalog_, "pi{A, B}(r * s)")}};
  ExprPtr query = MustParse(catalog_, "pi{A}(v) * pi{B}(v)");
  ExprPtr expanded = Unwrap(Expand(catalog_, query, defs));
  EXPECT_EQ(expanded->LeafCount(), 4u);  // Two copies of r * s.
  for (RelId rel : expanded->RelNames()) {
    EXPECT_TRUE(rel == r_ || rel == s_);
  }
}

TEST_F(ExpandTest, RejectsTypeMismatchedDefinition) {
  RelId v = Unwrap(catalog_.AddRelation("v2", catalog_.MakeScheme({"A", "B"})));
  Definitions defs{{v, MustParse(catalog_, "pi{A}(r)")}};  // TRS {A} != {A,B}.
  Result<ExprPtr> bad = Expand(catalog_, MustParse(catalog_, "v2"), defs);
  EXPECT_EQ(bad.status().code(), StatusCode::kIllFormed);
}

// Theorem 1.4.2: for every view query E, the expanded query E-hat satisfies
// E-hat(alpha) = E(alpha_V) on every instantiation alpha. Checked on random
// instances across several view queries.
TEST_F(ExpandTest, SurrogatePropertyOnRandomInstances) {
  RelId v1 = Unwrap(catalog_.AddRelation("v1", catalog_.MakeScheme({"A", "B"})));
  RelId v2 =
      Unwrap(catalog_.AddRelation("v2", catalog_.MakeScheme({"B", "C"})));
  View view = Unwrap(View::Create(
      &catalog_, base_,
      {{v1, MustParse(catalog_, "pi{A, B}(r * s)")},
       {v2, MustParse(catalog_, "pi{B, C}(r * s)")}},
      "V"));

  const char* view_queries[] = {
      "v1",
      "v2",
      "v1 * v2",
      "pi{A}(v1)",
      "pi{A, C}(v1 * v2)",
      "pi{B}(v1) * pi{C}(v2)",
  };
  InstanceOptions options;
  options.tuples_per_relation = 5;
  options.domain_size = 3;
  InstanceGenerator generator(&catalog_, options);
  Random rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    Instantiation alpha = generator.Generate(base_, rng);
    Instantiation induced = view.Induce(alpha);
    for (const char* text : view_queries) {
      ExprPtr query = MustParse(catalog_, text);
      ExprPtr surrogate = Unwrap(view.Surrogate(query));
      EXPECT_EQ(Evaluate(*surrogate, alpha), Evaluate(*query, induced))
          << "query " << text << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace viewcap
