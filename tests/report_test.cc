// Tests for core/report.h: the markdown audit generator.
#include <gtest/gtest.h>

#include "core/report.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::Unwrap;

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    VIEWCAP_ASSERT_OK(analyzer_.Load(R"(
      schema { r(A, B, C); }
      view V { v := pi{A,B}(r) * pi{B,C}(r); }
      view W { w1 := pi{A,B}(r); w2 := pi{B,C}(r); }
    )"));
  }
  Analyzer analyzer_;
};

TEST_F(ReportTest, ContainsAllSections) {
  std::string report = Unwrap(RenderReport(analyzer_));
  EXPECT_NE(report.find("# viewcap analysis report"), std::string::npos);
  EXPECT_NE(report.find("## Underlying database schema"), std::string::npos);
  EXPECT_NE(report.find("`r(A, B, C)`"), std::string::npos);
  EXPECT_NE(report.find("## View `V`"), std::string::npos);
  EXPECT_NE(report.find("## View `W`"), std::string::npos);
  EXPECT_NE(report.find("Simplified normal form"), std::string::npos);
  EXPECT_NE(report.find("## Pairwise dominance"), std::string::npos);
  EXPECT_NE(report.find("V EQUIVALENT to W"), std::string::npos);
  EXPECT_NE(report.find("Capacity fragment"), std::string::npos);
  EXPECT_NE(report.find("Lemma 3.1.6"), std::string::npos);
}

TEST_F(ReportTest, VerdictsMatchTheory) {
  std::string report = Unwrap(RenderReport(analyzer_));
  // V's single join definition is not simple (it decomposes); W's
  // projections are simple. The table rows carry the verdicts.
  std::size_t v_row = report.find("| `v` |");
  ASSERT_NE(v_row, std::string::npos);
  std::size_t v_row_end = report.find('\n', v_row);
  std::string v_line = report.substr(v_row, v_row_end - v_row);
  EXPECT_NE(v_line.find("| no | no |"), std::string::npos) << v_line;

  std::size_t w1_row = report.find("| `w1` |");
  ASSERT_NE(w1_row, std::string::npos);
  std::string w1_line =
      report.substr(w1_row, report.find('\n', w1_row) - w1_row);
  EXPECT_NE(w1_line.find("| no | yes |"), std::string::npos) << w1_line;
}

TEST_F(ReportTest, OptionsDisableSections) {
  ReportOptions options;
  options.include_normal_forms = false;
  options.include_lattice = false;
  options.capacity_leaves = 0;
  std::string report = Unwrap(RenderReport(analyzer_, options));
  EXPECT_EQ(report.find("Simplified normal form"), std::string::npos);
  EXPECT_EQ(report.find("## Pairwise dominance"), std::string::npos);
  EXPECT_EQ(report.find("Capacity fragment"), std::string::npos);
  EXPECT_NE(report.find("## View `V`"), std::string::npos);
}

TEST_F(ReportTest, SingleViewSkipsLattice) {
  Analyzer solo;
  VIEWCAP_ASSERT_OK(solo.Load(R"(
    schema { r(A, B); }
    view Only { o := r; }
  )"));
  std::string report = Unwrap(RenderReport(solo));
  EXPECT_EQ(report.find("## Pairwise dominance"), std::string::npos);
}

}  // namespace
}  // namespace viewcap
