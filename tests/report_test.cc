// Tests for core/report.h: the markdown audit generator.
#include <gtest/gtest.h>

#include "base/simd.h"
#include "base/strings.h"
#include "core/report.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::Unwrap;

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    VIEWCAP_ASSERT_OK(analyzer_.Load(R"(
      schema { r(A, B, C); }
      view V { v := pi{A,B}(r) * pi{B,C}(r); }
      view W { w1 := pi{A,B}(r); w2 := pi{B,C}(r); }
    )"));
  }
  Analyzer analyzer_;
};

TEST_F(ReportTest, ContainsAllSections) {
  std::string report = Unwrap(RenderReport(analyzer_));
  EXPECT_NE(report.find("# viewcap analysis report"), std::string::npos);
  EXPECT_NE(report.find("## Underlying database schema"), std::string::npos);
  EXPECT_NE(report.find("`r(A, B, C)`"), std::string::npos);
  EXPECT_NE(report.find("## View `V`"), std::string::npos);
  EXPECT_NE(report.find("## View `W`"), std::string::npos);
  EXPECT_NE(report.find("Simplified normal form"), std::string::npos);
  EXPECT_NE(report.find("## Pairwise dominance"), std::string::npos);
  EXPECT_NE(report.find("V EQUIVALENT to W"), std::string::npos);
  EXPECT_NE(report.find("Capacity fragment"), std::string::npos);
  EXPECT_NE(report.find("Lemma 3.1.6"), std::string::npos);
}

TEST_F(ReportTest, VerdictsMatchTheory) {
  std::string report = Unwrap(RenderReport(analyzer_));
  // V's single join definition is not simple (it decomposes); W's
  // projections are simple. The table rows carry the verdicts.
  std::size_t v_row = report.find("| `v` |");
  ASSERT_NE(v_row, std::string::npos);
  std::size_t v_row_end = report.find('\n', v_row);
  std::string v_line = report.substr(v_row, v_row_end - v_row);
  EXPECT_NE(v_line.find("| no | no |"), std::string::npos) << v_line;

  std::size_t w1_row = report.find("| `w1` |");
  ASSERT_NE(w1_row, std::string::npos);
  std::string w1_line =
      report.substr(w1_row, report.find('\n', w1_row) - w1_row);
  EXPECT_NE(w1_line.find("| no | yes |"), std::string::npos) << w1_line;
}

TEST_F(ReportTest, OptionsDisableSections) {
  ReportOptions options;
  options.include_normal_forms = false;
  options.include_lattice = false;
  options.capacity_leaves = 0;
  std::string report = Unwrap(RenderReport(analyzer_, options));
  EXPECT_EQ(report.find("Simplified normal form"), std::string::npos);
  EXPECT_EQ(report.find("## Pairwise dominance"), std::string::npos);
  EXPECT_EQ(report.find("Capacity fragment"), std::string::npos);
  EXPECT_NE(report.find("## View `V`"), std::string::npos);
}

TEST_F(ReportTest, SingleViewSkipsLattice) {
  Analyzer solo;
  VIEWCAP_ASSERT_OK(solo.Load(R"(
    schema { r(A, B); }
    view Only { o := r; }
  )"));
  std::string report = Unwrap(RenderReport(solo));
  EXPECT_EQ(report.find("## Pairwise dominance"), std::string::npos);
}

TEST(RenderHitRateTest, ZeroDenominatorPrintsNotApplicable) {
  // A fresh engine has caches with zero requests; their rate column must
  // read "n/a", never a fake "0.0%" (and never divide by zero).
  EXPECT_EQ(RenderHitRate(0, 0), "n/a");
  EXPECT_EQ(RenderHitRate(0, 4), "0.0%");
  EXPECT_EQ(RenderHitRate(1, 3), "33.3%");
  EXPECT_EQ(RenderHitRate(3, 3), "100.0%");
}

TEST(RenderEngineStatsTest, FreshEngineRendersNoBogusRates) {
  const std::string out = RenderEngineStats(EngineStats{});
  EXPECT_NE(out.find("| reduce | 0 | 0 | n/a |"), std::string::npos) << out;
  EXPECT_EQ(out.find("0.0%"), std::string::npos) << out;
  // The filter table renders its header but no backend rows: no filter
  // ran, so there is nothing to rate.
  EXPECT_NE(out.find("### Candidate filter"), std::string::npos);
  EXPECT_NE(out.find("| backend | invocations | rows | survivors |"),
            std::string::npos);
  EXPECT_EQ(out.find("| scalar |"), std::string::npos) << out;
}

TEST(RenderEngineStatsTest, FilterTableShowsOnlyBackendsThatRan) {
  EngineStats stats;
  const std::size_t slot = SimdBackendIndex(SimdBackend::kScalar);
  stats.filter[slot].invocations = 4;
  stats.filter[slot].rows = 10;
  stats.filter[slot].survivors = 5;
  const std::string out = RenderEngineStats(stats);
  EXPECT_NE(out.find("| scalar | 4 | 10 | 5 | 50.0% |"), std::string::npos)
      << out;
  EXPECT_EQ(out.find("| simd128 |"), std::string::npos) << out;
  EXPECT_EQ(out.find("| simd256 |"), std::string::npos) << out;
}

TEST(RenderEngineStatsTest, LiveEngineReportsFilterActivity) {
  // Any real workload runs the candidate filter (Reduce probes at
  // minimum), so the resolved backend's row must appear with a live
  // survivor rate.
  Analyzer analyzer;
  VIEWCAP_ASSERT_OK(analyzer.Load(R"(
    schema { r(A, B, C); }
    view V { v := pi{A,B}(r) * pi{B,C}(r); }
  )"));
  ReportOptions options;
  options.include_engine_stats = true;
  const std::string report = Unwrap(RenderReport(analyzer, options));
  const EngineStats stats = analyzer.engine_stats();
  const SimdBackend backend = ResolveSimdBackend(DefaultSimdBackend());
  const FilterBackendCounters& f = stats.filter[SimdBackendIndex(backend)];
  EXPECT_GT(f.invocations, 0u);
  EXPECT_GE(f.rows, f.survivors);
  const std::string row =
      StrCat("| ", SimdBackendName(backend), " | ", f.invocations, " | ",
             f.rows, " | ", f.survivors, " | ");
  EXPECT_NE(report.find(row), std::string::npos) << report;
}

}  // namespace
}  // namespace viewcap
