// Thread-count determinism of the parallel closure searches: membership,
// equivalence and redundancy must report the same verdicts, witnesses and
// search statistics for every SearchLimits::threads value (see
// ExprEnumerator::EnumerateSharded for the argument why).
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "algebra/parser.h"
#include "algebra/printer.h"
#include "tests/test_util.h"
#include "views/capacity.h"
#include "views/equivalence.h"
#include "views/redundancy.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

const std::size_t kThreadCounts[] = {1, 2, 8};

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", u_));
    base_ = DbSchema(catalog_, {r_});
    w1_ = Unwrap(catalog_.AddRelation("w1", catalog_.MakeScheme({"A", "B"})));
    w2_ = Unwrap(catalog_.AddRelation("w2", catalog_.MakeScheme({"B", "C"})));
    view_ = Unwrap(View::Create(
        &catalog_, base_,
        {{w1_, MustParse(catalog_, "pi{A,B}(r)")},
         {w2_, MustParse(catalog_, "pi{B,C}(r)")}},
        "W"));
  }

  /// One fresh-engine membership run (a shared engine would let the
  /// verdict cache short-circuit later thread counts).
  MembershipResult Membership(const std::string& query, SearchLimits limits) {
    CapacityOracle oracle(*view_, limits);
    return Unwrap(oracle.Contains(MustParse(catalog_, query)));
  }

  static std::string WitnessString(const Catalog& catalog,
                                   const MembershipResult& m) {
    return m.witness == nullptr ? "<null>" : ToString(*m.witness, catalog);
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel, w1_ = kInvalidRel, w2_ = kInvalidRel;
  DbSchema base_;
  std::optional<View> view_;
};

TEST_F(ParallelDeterminismTest, MemberFoundByEnumerationIsIdentical) {
  // pi{A}(r) x pi{C}(r) is a member, but not via the canonical single-copy
  // witness (the canonical join correlates on B; the cross product does
  // not), so the sharded enumeration must actually find the witness.
  const std::string query = "pi{A}(r) * pi{C}(r)";
  SearchLimits limits;
  limits.threads = 1;
  MembershipResult reference = Membership(query, limits);
  ASSERT_TRUE(reference.member);
  ASSERT_GT(reference.candidates_tried, 0u)
      << "expected the enumeration path, not the canonical fast path";
  for (std::size_t threads : kThreadCounts) {
    limits.threads = threads;
    MembershipResult m = Membership(query, limits);
    EXPECT_EQ(m.member, reference.member) << threads;
    EXPECT_EQ(WitnessString(catalog_, m),
              WitnessString(catalog_, reference))
        << threads;
    EXPECT_EQ(m.budget_exhausted, reference.budget_exhausted) << threads;
    EXPECT_EQ(m.candidates_tried, reference.candidates_tried) << threads;
    EXPECT_EQ(m.leaf_budget, reference.leaf_budget) << threads;
  }
}

TEST_F(ParallelDeterminismTest, NonMemberVerdictIsIdentical) {
  // The full relation r is not recoverable from its two projections; the
  // search runs to natural exhaustion of the leaf budget.
  SearchLimits limits;
  limits.threads = 1;
  MembershipResult reference = Membership("r", limits);
  ASSERT_FALSE(reference.member);
  ASSERT_FALSE(reference.budget_exhausted);
  for (std::size_t threads : kThreadCounts) {
    limits.threads = threads;
    MembershipResult m = Membership("r", limits);
    EXPECT_FALSE(m.member) << threads;
    EXPECT_EQ(m.budget_exhausted, reference.budget_exhausted) << threads;
    EXPECT_EQ(m.candidates_tried, reference.candidates_tried) << threads;
  }
}

TEST_F(ParallelDeterminismTest, BudgetExhaustedNonMemberIsIdentical) {
  // With a tiny candidate cap the non-member search is cut off mid-stream:
  // every thread count must report the same (exhausted) statistics.
  SearchLimits limits;
  limits.max_candidates = 4;  // The leaf-1 stream alone has 6 candidates.
  limits.threads = 1;
  MembershipResult reference = Membership("r", limits);
  ASSERT_FALSE(reference.member);
  ASSERT_TRUE(reference.budget_exhausted);
  for (std::size_t threads : kThreadCounts) {
    limits.threads = threads;
    MembershipResult m = Membership("r", limits);
    EXPECT_FALSE(m.member) << threads;
    EXPECT_TRUE(m.budget_exhausted) << threads;
    EXPECT_EQ(m.candidates_tried, reference.candidates_tried) << threads;
  }
}

TEST_F(ParallelDeterminismTest, EquivalenceVerdictIsIdentical) {
  RelId l = Unwrap(catalog_.AddRelation("l", u_));
  View v = Unwrap(View::Create(
      &catalog_, base_,
      {{l, MustParse(catalog_, "pi{A,B}(r) * pi{B,C}(r)")}}, "V"));
  SearchLimits limits;
  limits.threads = 1;
  EquivalenceResult reference = Unwrap(AreEquivalent(v, *view_, limits));
  ASSERT_TRUE(reference.equivalent);
  for (std::size_t threads : kThreadCounts) {
    limits.threads = threads;
    EquivalenceResult eq = Unwrap(AreEquivalent(v, *view_, limits));
    EXPECT_EQ(eq.equivalent, reference.equivalent) << threads;
    EXPECT_EQ(eq.inconclusive, reference.inconclusive) << threads;
    EXPECT_EQ(eq.v_over_w.dominates, reference.v_over_w.dominates)
        << threads;
    EXPECT_EQ(eq.w_over_v.dominates, reference.w_over_v.dominates)
        << threads;
    ASSERT_EQ(eq.v_over_w.witnesses.size(),
              reference.v_over_w.witnesses.size())
        << threads;
    for (std::size_t j = 0; j < eq.v_over_w.witnesses.size(); ++j) {
      const ExprPtr& got = eq.v_over_w.witnesses[j];
      const ExprPtr& want = reference.v_over_w.witnesses[j];
      EXPECT_EQ(got == nullptr ? "<null>" : ToString(*got, catalog_),
                want == nullptr ? "<null>" : ToString(*want, catalog_))
          << threads << " witness " << j;
    }
  }
}

TEST_F(ParallelDeterminismTest, InequivalenceVerdictIsIdentical) {
  RelId full = Unwrap(catalog_.AddRelation("full", u_));
  View big = Unwrap(View::Create(
      &catalog_, base_, {{full, MustParse(catalog_, "r")}}, "Big"));
  SearchLimits limits;
  limits.threads = 1;
  EquivalenceResult reference = Unwrap(AreEquivalent(big, *view_, limits));
  ASSERT_FALSE(reference.equivalent);
  for (std::size_t threads : kThreadCounts) {
    limits.threads = threads;
    EquivalenceResult eq = Unwrap(AreEquivalent(big, *view_, limits));
    EXPECT_EQ(eq.equivalent, reference.equivalent) << threads;
    EXPECT_EQ(eq.v_over_w.dominates, reference.v_over_w.dominates)
        << threads;
    EXPECT_EQ(eq.w_over_v.dominates, reference.w_over_v.dominates)
        << threads;
    EXPECT_EQ(eq.w_over_v.missing, reference.w_over_v.missing) << threads;
  }
}

TEST_F(ParallelDeterminismTest, RedundancyVictimIsIdentical) {
  // m3 duplicates the capacity of {m1, m2}: the elimination must drop the
  // same member (the smallest redundant index) for every thread count.
  RelId m1 =
      Unwrap(catalog_.AddRelation("m1", catalog_.MakeScheme({"A", "B"})));
  RelId m2 =
      Unwrap(catalog_.AddRelation("m2", catalog_.MakeScheme({"B", "C"})));
  RelId m3 = Unwrap(catalog_.AddRelation("m3", u_));
  View x = Unwrap(View::Create(
      &catalog_, base_,
      {{m1, MustParse(catalog_, "pi{A,B}(r)")},
       {m2, MustParse(catalog_, "pi{B,C}(r)")},
       {m3, MustParse(catalog_, "pi{A,B}(r) * pi{B,C}(r)")}},
      "X"));
  SearchLimits limits;
  limits.threads = 1;
  NonredundantViewResult reference = Unwrap(MakeNonredundant(x, limits));
  ASSERT_LT(reference.kept.size(), x.size());
  for (std::size_t threads : kThreadCounts) {
    limits.threads = threads;
    NonredundantViewResult result = Unwrap(MakeNonredundant(x, limits));
    EXPECT_EQ(result.kept, reference.kept) << threads;
    EXPECT_EQ(result.inconclusive, reference.inconclusive) << threads;
  }
}

TEST_F(ParallelDeterminismTest, NonredundantSetVerdictIsIdentical) {
  QuerySet set = QuerySet::FromView(*view_);
  for (std::size_t threads : kThreadCounts) {
    SearchLimits limits;
    limits.threads = threads;
    bool inconclusive = true;
    EXPECT_TRUE(
        Unwrap(IsNonredundantSet(&catalog_, set, limits, &inconclusive)))
        << threads;
    EXPECT_FALSE(inconclusive) << threads;
  }
}

}  // namespace
}  // namespace viewcap
