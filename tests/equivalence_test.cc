// Tests for views/equivalence.h: Example 3.1.5, Lemma 1.5.4,
// Theorems 1.5.5 and 2.4.12.
#include <gtest/gtest.h>

#include "algebra/expand.h"
#include "algebra/parser.h"
#include "tableau/build.h"
#include "tableau/homomorphism.h"
#include "tests/test_util.h"
#include "views/equivalence.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

// Example 3.1.5: D = {r}, S1 = pi_AB(r), S2 = pi_BC(r), S = S1 |x| S2;
// V = {(S, l)} and W = {(S1, l1), (S2, l2)} are equivalent nonredundant
// views of different sizes.
class Example315Test : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", u_));
    base_ = DbSchema(catalog_, {r_});
    RelId l = Unwrap(catalog_.AddRelation("l", u_));
    RelId l1 = Unwrap(catalog_.AddRelation("l1", catalog_.MakeScheme({"A", "B"})));
    RelId l2 = Unwrap(catalog_.AddRelation("l2", catalog_.MakeScheme({"B", "C"})));
    v_ = Unwrap(View::Create(
        &catalog_, base_,
        {{l, MustParse(catalog_, "pi{A,B}(r) * pi{B,C}(r)")}}, "V"));
    w_ = Unwrap(View::Create(&catalog_, base_,
                             {{l1, MustParse(catalog_, "pi{A,B}(r)")},
                              {l2, MustParse(catalog_, "pi{B,C}(r)")}},
                             "W"));
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel;
  DbSchema base_;
  std::optional<View> v_, w_;
};

TEST_F(Example315Test, ViewsAreEquivalent) {
  EquivalenceResult result = Unwrap(AreEquivalent(*v_, *w_));
  EXPECT_TRUE(result.equivalent);
  EXPECT_FALSE(result.inconclusive);
  EXPECT_TRUE(result.v_over_w.dominates);
  EXPECT_TRUE(result.w_over_v.dominates);
}

TEST_F(Example315Test, WitnessesAnswerTheOtherViewsQueries) {
  EquivalenceResult result = Unwrap(AreEquivalent(*v_, *w_));
  // Every W-definition has a V-schema expression answering it, whose
  // expansion through V realizes the same mapping.
  for (std::size_t j = 0; j < w_->size(); ++j) {
    ASSERT_NE(result.v_over_w.witnesses[j], nullptr);
    ExprPtr expanded = Unwrap(Expand(catalog_, result.v_over_w.witnesses[j],
                                     v_->AsDefinitions()));
    EXPECT_TRUE(EquivalentTableaux(
        catalog_, MustBuildTableau(catalog_, u_, *expanded),
        w_->definitions()[j].tableau));
  }
}

TEST_F(Example315Test, EquivalentViewsMayDifferInSize) {
  EXPECT_EQ(v_->size(), 1u);
  EXPECT_EQ(w_->size(), 2u);
  EXPECT_TRUE(Unwrap(AreEquivalent(*v_, *w_)).equivalent);
}

TEST_F(Example315Test, FullRelationViewStrictlyDominates) {
  RelId full = Unwrap(catalog_.AddRelation("full", u_));
  View big = Unwrap(View::Create(&catalog_, base_,
                                 {{full, MustParse(catalog_, "r")}}, "Big"));
  // Cap(W) is contained in Cap(Big) but not conversely.
  DominanceResult big_over_w = Unwrap(Dominates(big, *w_));
  EXPECT_TRUE(big_over_w.dominates);
  DominanceResult w_over_big = Unwrap(Dominates(*w_, big));
  EXPECT_FALSE(w_over_big.dominates);
  EXPECT_EQ(w_over_big.missing.size(), 1u);
  EquivalenceResult eq = Unwrap(AreEquivalent(big, *w_));
  EXPECT_FALSE(eq.equivalent);
}

TEST_F(Example315Test, EquivalenceIsReflexiveAndSymmetric) {
  EXPECT_TRUE(Unwrap(AreEquivalent(*v_, *v_)).equivalent);
  EXPECT_TRUE(Unwrap(AreEquivalent(*w_, *w_)).equivalent);
  EXPECT_EQ(Unwrap(AreEquivalent(*v_, *w_)).equivalent,
            Unwrap(AreEquivalent(*w_, *v_)).equivalent);
}

TEST_F(Example315Test, DominanceRequiresSharedUniverse) {
  Catalog other;
  RelId other_r =
      Unwrap(other.AddRelation("r", other.MakeScheme({"X", "Y"})));
  DbSchema other_base(other, {other_r});
  RelId ov = Unwrap(other.AddRelation("ov", other.MakeScheme({"X", "Y"})));
  View foreign = Unwrap(
      View::Create(&other, other_base, {{ov, MustParse(other, "r")}}));
  EXPECT_EQ(Dominates(*v_, foreign).status().code(), StatusCode::kIllFormed);
}

// Transitivity check on a chain of three pairwise-equivalent views.
TEST_F(Example315Test, EquivalenceIsTransitiveOnChain) {
  RelId m1 = Unwrap(catalog_.AddRelation("m1", catalog_.MakeScheme({"A", "B"})));
  RelId m2 = Unwrap(catalog_.AddRelation("m2", catalog_.MakeScheme({"B", "C"})));
  RelId m3 = Unwrap(catalog_.AddRelation("m3", u_));
  // X: redundant-looking mixture, still the same capacity.
  View x = Unwrap(View::Create(
      &catalog_, base_,
      {{m1, MustParse(catalog_, "pi{A,B}(r)")},
       {m2, MustParse(catalog_, "pi{B,C}(r)")},
       {m3, MustParse(catalog_, "pi{A,B}(r) * pi{B,C}(r)")}},
      "X"));
  EXPECT_TRUE(Unwrap(AreEquivalent(*v_, *w_)).equivalent);
  EXPECT_TRUE(Unwrap(AreEquivalent(*w_, x)).equivalent);
  EXPECT_TRUE(Unwrap(AreEquivalent(*v_, x)).equivalent);
}

// Views over different base relations are never equivalent when a defining
// query mentions relations the other cannot reach (RN preservation).
TEST(EquivalenceTest, DistinctRelationNamesSeparateCapacities) {
  Catalog catalog;
  RelId r = Unwrap(catalog.AddRelation("r", catalog.MakeScheme({"A", "B"})));
  RelId s = Unwrap(catalog.AddRelation("s", catalog.MakeScheme({"A", "B"})));
  DbSchema base(catalog, {r, s});
  RelId vr = Unwrap(catalog.AddRelation("vr", catalog.MakeScheme({"A", "B"})));
  RelId vs = Unwrap(catalog.AddRelation("vs", catalog.MakeScheme({"A", "B"})));
  View view_r =
      Unwrap(View::Create(&catalog, base, {{vr, MustParse(catalog, "r")}}));
  View view_s =
      Unwrap(View::Create(&catalog, base, {{vs, MustParse(catalog, "s")}}));
  EquivalenceResult eq = Unwrap(AreEquivalent(view_r, view_s));
  EXPECT_FALSE(eq.equivalent);
  EXPECT_FALSE(eq.v_over_w.dominates);
  EXPECT_FALSE(eq.w_over_v.dominates);
}

}  // namespace
}  // namespace viewcap
