// Tests for tableau/canonical.h.
#include <gtest/gtest.h>

#include "algebra/parser.h"
#include "tableau/build.h"
#include "tableau/canonical.h"
#include "tableau/homomorphism.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class CanonicalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
  }

  Tableau T(const std::string& text) {
    // A private pool per build: same expression yields differently-named
    // nondistinguished symbols across calls only when pools are shared;
    // with fresh pools the names coincide, so rename below to decouple.
    return MustBuildTableau(catalog_, u_, *MustParse(catalog_, text));
  }

  Tableau TRenamed(const std::string& text, std::uint32_t offset) {
    Tableau t = T(text);
    SymbolMap rename;
    for (const Symbol& s : t.Symbols()) {
      if (!s.IsDistinguished()) {
        rename[s] = Symbol::Nondistinguished(s.attr, s.ordinal + offset);
      }
    }
    return t.Apply(rename);
  }

  Catalog catalog_;
  AttrSet u_;
};

TEST_F(CanonicalTest, InvariantUnderSymbolRenaming) {
  EXPECT_EQ(CanonicalKey(T("pi{A}(r * s)")),
            CanonicalKey(TRenamed("pi{A}(r * s)", 40)));
}

TEST_F(CanonicalTest, InvariantUnderRowOrder) {
  // Join order permutes rows; small templates get the exact canonical key.
  EXPECT_EQ(CanonicalKey(T("r * s")), CanonicalKey(T("s * r")));
  EXPECT_EQ(CanonicalKey(T("pi{A}(r) * s * r")),
            CanonicalKey(T("r * s * pi{A}(r)")));
}

TEST_F(CanonicalTest, DistinguishesDifferentStructures) {
  EXPECT_NE(CanonicalKey(T("r")), CanonicalKey(T("pi{A}(r)")));
  EXPECT_NE(CanonicalKey(T("r * s")), CanonicalKey(T("pi{A}(r) * s")));
  EXPECT_NE(CanonicalKey(T("pi{A}(r * s)")),
            CanonicalKey(T("pi{A}(r) * pi{B}(s)")));
}

TEST_F(CanonicalTest, SharedVsUnsharedSymbolsDiffer) {
  // r |x| s (shared 0_B) vs pi_A-style severed link.
  Tableau linked = T("pi{A, C}(r * s)");
  Tableau severed = T("pi{A}(r) * pi{C}(s)");
  EXPECT_NE(CanonicalKey(linked), CanonicalKey(severed));
}

TEST_F(CanonicalTest, LargeTemplatesUseSignature) {
  // Build a template with more rows than the exact-canonicalization cap.
  std::string text = "r * s";
  for (std::size_t i = 2; i * 2 <= 2 * (kMaxRowsForExactCanonicalKey + 2);
       ++i) {
    text += " * pi{A}(r * s)";
  }
  Tableau big = T(text);
  ASSERT_GT(big.size(), kMaxRowsForExactCanonicalKey);
  std::string key = CanonicalKey(big);
  EXPECT_EQ(key.substr(0, 2), "S:");
  // Isomorphic copies still collide.
  SymbolMap rename;
  for (const Symbol& s : big.Symbols()) {
    if (!s.IsDistinguished()) {
      rename[s] = Symbol::Nondistinguished(s.attr, s.ordinal + 100);
    }
  }
  EXPECT_EQ(key, CanonicalKey(big.Apply(rename)));
}

TEST_F(CanonicalTest, EqualKeysForEquivalentReducedRealizations) {
  // Reduced equivalent templates are isomorphic (unique core), so their
  // exact canonical keys coincide.
  Tableau a = T("pi{A, B}(r * s)");
  Tableau b = TRenamed("pi{A, B}(r * pi{B, C}(s))", 17);
  ASSERT_TRUE(EquivalentTableaux(catalog_, a, b));
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
}

}  // namespace
}  // namespace viewcap
