// Tests for tableau/canonical.h.
#include <gtest/gtest.h>

#include "algebra/parser.h"
#include "tableau/build.h"
#include "tableau/canonical.h"
#include "tableau/homomorphism.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class CanonicalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
  }

  Tableau T(const std::string& text) {
    // A private pool per build: same expression yields differently-named
    // nondistinguished symbols across calls only when pools are shared;
    // with fresh pools the names coincide, so rename below to decouple.
    return MustBuildTableau(catalog_, u_, *MustParse(catalog_, text));
  }

  Tableau TRenamed(const std::string& text, std::uint32_t offset) {
    Tableau t = T(text);
    SymbolMap rename;
    for (const Symbol& s : t.Symbols()) {
      if (!s.IsDistinguished()) {
        rename[s] = Symbol::Nondistinguished(s.attr, s.ordinal + offset);
      }
    }
    return t.Apply(rename);
  }

  Catalog catalog_;
  AttrSet u_;
};

TEST_F(CanonicalTest, InvariantUnderSymbolRenaming) {
  EXPECT_EQ(CanonicalKey(T("pi{A}(r * s)")),
            CanonicalKey(TRenamed("pi{A}(r * s)", 40)));
}

TEST_F(CanonicalTest, InvariantUnderRowOrder) {
  // Join order permutes rows; small templates get the exact canonical key.
  EXPECT_EQ(CanonicalKey(T("r * s")), CanonicalKey(T("s * r")));
  EXPECT_EQ(CanonicalKey(T("pi{A}(r) * s * r")),
            CanonicalKey(T("r * s * pi{A}(r)")));
}

TEST_F(CanonicalTest, DistinguishesDifferentStructures) {
  EXPECT_NE(CanonicalKey(T("r")), CanonicalKey(T("pi{A}(r)")));
  EXPECT_NE(CanonicalKey(T("r * s")), CanonicalKey(T("pi{A}(r) * s")));
  EXPECT_NE(CanonicalKey(T("pi{A}(r * s)")),
            CanonicalKey(T("pi{A}(r) * pi{B}(s)")));
}

TEST_F(CanonicalTest, SharedVsUnsharedSymbolsDiffer) {
  // r |x| s (shared 0_B) vs pi_A-style severed link.
  Tableau linked = T("pi{A, C}(r * s)");
  Tableau severed = T("pi{A}(r) * pi{C}(s)");
  EXPECT_NE(CanonicalKey(linked), CanonicalKey(severed));
}

TEST_F(CanonicalTest, LargeTemplatesUseSignature) {
  // Build a template with more rows than the exact-canonicalization cap.
  std::string text = "r * s";
  for (std::size_t i = 2; i * 2 <= 2 * (kMaxRowsForExactCanonicalKey + 2);
       ++i) {
    text += " * pi{A}(r * s)";
  }
  Tableau big = T(text);
  ASSERT_GT(big.size(), kMaxRowsForExactCanonicalKey);
  std::string key = CanonicalKey(big);
  EXPECT_EQ(key.substr(0, 2), "S:");
  // Isomorphic copies still collide.
  SymbolMap rename;
  for (const Symbol& s : big.Symbols()) {
    if (!s.IsDistinguished()) {
      rename[s] = Symbol::Nondistinguished(s.attr, s.ordinal + 100);
    }
  }
  EXPECT_EQ(key, CanonicalKey(big.Apply(rename)));
}

TEST_F(CanonicalTest, ExactPathExactlyAtTheRowThreshold) {
  // 2 (r * s) + 2 (projected copy) + 1 (pi{A}(r)) distinct rows: exactly
  // the exact-canonicalization cap, so the n!-scan "X:" path must be taken.
  Tableau t = T("r * s * pi{A}(r * s) * pi{A}(r)");
  ASSERT_EQ(t.size(), kMaxRowsForExactCanonicalKey);
  std::string key = CanonicalKey(t);
  EXPECT_EQ(key.substr(0, 2), "X:");
  for (std::uint32_t seed : {1u, 9u, 57u, 1000u}) {
    EXPECT_EQ(key, CanonicalKey(RenameNondistinguished(t, seed)))
        << "exact key split an isomorphic pair at seed " << seed;
  }
}

TEST_F(CanonicalTest, SignaturePathJustBeyondTheRowThreshold) {
  // One more projected copy pushes the row count to the cap + 1, which
  // must switch the key to the invariant-signature "S:" path.
  Tableau t = T("r * s * pi{A}(r * s) * pi{A}(r * s)");
  ASSERT_EQ(t.size(), kMaxRowsForExactCanonicalKey + 1);
  std::string key = CanonicalKey(t);
  EXPECT_EQ(key.substr(0, 2), "S:");
}

TEST_F(CanonicalTest, SignatureNeverSplitsRenamedIsomorphs) {
  // The signature may merge non-isomorphic templates but must never split
  // isomorphic ones: every RenameNondistinguished relabeling keys equal.
  Tableau t = T("r * s * pi{A}(r * s) * pi{A}(r * s) * pi{B}(r * s)");
  ASSERT_GT(t.size(), kMaxRowsForExactCanonicalKey);
  std::string key = CanonicalKey(t);
  ASSERT_EQ(key.substr(0, 2), "S:");
  for (std::uint32_t seed : {0u, 1u, 13u, 64u, 999u}) {
    Tableau renamed = RenameNondistinguished(t, seed);
    EXPECT_EQ(key, CanonicalKey(renamed))
        << "signature split an isomorphic pair at seed " << seed;
  }
}

TEST_F(CanonicalTest, RenameNondistinguishedYieldsEquivalentTemplate) {
  Tableau t = T("pi{A}(r * s) * r");
  Tableau renamed = RenameNondistinguished(t, 50);
  // Literally different rows (the labels moved), yet mapping-equivalent.
  EXPECT_NE(t, renamed);
  EXPECT_TRUE(EquivalentTableaux(catalog_, t, renamed));
}

TEST_F(CanonicalTest, ExactPathSeparatesNonIsomorphicFiveRowTemplates) {
  Tableau a = T("r * s * pi{A}(r * s) * pi{A}(r)");
  Tableau b = T("r * s * pi{A}(r * s) * pi{C}(s)");
  ASSERT_EQ(a.size(), kMaxRowsForExactCanonicalKey);
  ASSERT_EQ(b.size(), kMaxRowsForExactCanonicalKey);
  // On the exact path equal keys would mean isomorphic; these are not.
  EXPECT_NE(CanonicalKey(a), CanonicalKey(b));
}

TEST_F(CanonicalTest, EqualKeysForEquivalentReducedRealizations) {
  // Reduced equivalent templates are isomorphic (unique core), so their
  // exact canonical keys coincide.
  Tableau a = T("pi{A, B}(r * s)");
  Tableau b = TRenamed("pi{A, B}(r * pi{B, C}(s))", 17);
  ASSERT_TRUE(EquivalentTableaux(catalog_, a, b));
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
}

}  // namespace
}  // namespace viewcap
