// Unit tests for relation/attr_set.h.
#include "relation/attr_set.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace viewcap {
namespace {

TEST(AttrSetTest, DefaultIsEmpty) {
  AttrSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(AttrSetTest, DeduplicatesAndSorts) {
  AttrSet s{3, 1, 2, 1, 3};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.attrs(), (std::vector<AttrId>{1, 2, 3}));
}

TEST(AttrSetTest, Contains) {
  AttrSet s{1, 4, 9};
  EXPECT_TRUE(s.Contains(4));
  EXPECT_FALSE(s.Contains(5));
  EXPECT_FALSE(AttrSet{}.Contains(0));
}

TEST(AttrSetTest, SubsetRelations) {
  AttrSet small{1, 2}, big{1, 2, 3};
  EXPECT_TRUE(small.SubsetOf(big));
  EXPECT_TRUE(small.SubsetOf(small));
  EXPECT_FALSE(big.SubsetOf(small));
  EXPECT_TRUE(small.ProperSubsetOf(big));
  EXPECT_FALSE(small.ProperSubsetOf(small));
  EXPECT_TRUE(AttrSet{}.SubsetOf(small));
}

TEST(AttrSetTest, UnionIntersectDifference) {
  AttrSet a{1, 2, 3}, b{2, 3, 4};
  EXPECT_EQ(a.Union(b), (AttrSet{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), (AttrSet{2, 3}));
  EXPECT_EQ(a.Difference(b), (AttrSet{1}));
  EXPECT_EQ(b.Difference(a), (AttrSet{4}));
  EXPECT_EQ(a.Union(AttrSet{}), a);
  EXPECT_EQ(a.Intersect(AttrSet{}), AttrSet{});
}

TEST(AttrSetTest, InsertKeepsOrderAndUniqueness) {
  AttrSet s{5, 1};
  s.Insert(3);
  EXPECT_EQ(s.attrs(), (std::vector<AttrId>{1, 3, 5}));
  s.Insert(3);
  EXPECT_EQ(s.size(), 3u);
}

TEST(AttrSetTest, IndexOf) {
  AttrSet s{10, 20, 30};
  EXPECT_EQ(s.IndexOf(10), 0u);
  EXPECT_EQ(s.IndexOf(20), 1u);
  EXPECT_EQ(s.IndexOf(30), 2u);
}

TEST(AttrSetTest, NonemptyProperSubsetsCount) {
  AttrSet s{1, 2, 3};
  std::vector<AttrSet> subsets = s.NonemptyProperSubsets();
  EXPECT_EQ(subsets.size(), 6u);  // 2^3 - 2.
  for (const AttrSet& x : subsets) {
    EXPECT_FALSE(x.empty());
    EXPECT_TRUE(x.ProperSubsetOf(s));
  }
  // All distinct.
  std::sort(subsets.begin(), subsets.end());
  EXPECT_TRUE(std::adjacent_find(subsets.begin(), subsets.end()) ==
              subsets.end());
}

TEST(AttrSetTest, NonemptySubsetsIncludesSelf) {
  AttrSet s{1, 2};
  std::vector<AttrSet> subsets = s.NonemptySubsets();
  EXPECT_EQ(subsets.size(), 3u);
  EXPECT_TRUE(std::find(subsets.begin(), subsets.end(), s) != subsets.end());
}

TEST(AttrSetTest, SubsetsOfSingletonAndEmpty) {
  EXPECT_TRUE((AttrSet{7}).NonemptyProperSubsets().empty());
  EXPECT_TRUE(AttrSet{}.NonemptyProperSubsets().empty());
  EXPECT_TRUE(AttrSet{}.NonemptySubsets().empty());
}

TEST(AttrSetTest, Ordering) {
  EXPECT_LT((AttrSet{1}), (AttrSet{1, 2}));
  EXPECT_LT((AttrSet{1, 2}), (AttrSet{2}));
}

}  // namespace
}  // namespace viewcap
