// Unit tests for lint/linter.h and lint/diagnostics.h: one positive and one
// negative program per rule, span accuracy against markers located in the
// source text, and a golden test for the machine-readable JSON rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>

#include "lint/baseline.h"
#include "lint/diagnostics.h"
#include "lint/fixits.h"
#include "lint/linter.h"
#include "lint/rules.h"
#include "lint/sarif.h"

namespace viewcap {
namespace {

/// All findings with `code`, in output order.
std::vector<Diagnostic> WithCode(const LintResult& result,
                                 std::string_view code) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == code) out.push_back(d);
  }
  return out;
}

bool HasCode(const LintResult& result, std::string_view code) {
  return !WithCode(result, code).empty();
}

/// Line/column (1-based) of the `occurrence`-th `marker` in `text`. The
/// tests derive expected spans from the program text itself instead of
/// hand-counted columns.
SourceLocation LocOf(std::string_view text, std::string_view marker,
                     int occurrence = 1) {
  std::size_t pos = 0;
  for (int i = 0; i < occurrence; ++i) {
    pos = text.find(marker, i == 0 ? 0 : pos + 1);
    EXPECT_NE(pos, std::string_view::npos) << "marker: " << marker;
  }
  SourceLocation loc;
  for (std::size_t i = 0; i < pos; ++i) {
    if (text[i] == '\n') {
      ++loc.line;
      loc.column = 1;
    } else {
      ++loc.column;
    }
  }
  return loc;
}

LintResult Lint(std::string_view program) { return Linter().Run(program); }

TEST(LintStructuralTest, CleanProgramHasNoFindings) {
  LintResult r = Lint(R"(
    schema { r(A, B); s(B, C); }
    view V { v := pi{A}(r); w := pi{B,C}(r * s); }
  )");
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(LintStructuralTest, SyntaxErrorIsReportedAndRecoveredFrom) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(r) @ ; y := pi{B}(q); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> syntax = WithCode(r, "VCL000");
  ASSERT_EQ(syntax.size(), 1u);
  EXPECT_EQ(syntax[0].severity, Severity::kError);
  EXPECT_EQ(syntax[0].span.begin, LocOf(program, "@"));
  // Recovery continued into the next definition: the undefined relation
  // there is still diagnosed.
  EXPECT_TRUE(HasCode(r, "VCL001"));
}

TEST(LintStructuralTest, UndefinedRelation) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(r * ghost); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL001");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "ghost"));
  EXPECT_NE(d[0].message.find("ghost"), std::string::npos);
  EXPECT_TRUE(r.HasErrors());
}

TEST(LintStructuralTest, UndefinedRelationDoesNotCascadeToAttributes) {
  // TRS of `r * ghost` is unknown, so the projection list must not be
  // checked against a partial scheme.
  LintResult r = Lint(
      "schema { r(A, B); }\n"
      "view V { x := pi{Z}(r * ghost); }\n");
  EXPECT_TRUE(HasCode(r, "VCL001"));
  EXPECT_FALSE(HasCode(r, "VCL002"));
}

TEST(LintStructuralTest, UnknownAttribute) {
  const std::string program =
      "schema { r(A, B); s(C, D); }\n"
      "view V { x := pi{A,D}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL002");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "D}"));
  // The in-scheme attribute A is not flagged.
  EXPECT_NE(d[0].message.find("'D'"), std::string::npos);
}

TEST(LintStructuralTest, EmptyProjectionListAndEmptyScheme) {
  LintResult r = Lint(
      "schema { r(A, B); e(); }\n"
      "view V { x := pi{}(r); }\n");
  std::vector<Diagnostic> d = WithCode(r, "VCL003");
  ASSERT_EQ(d.size(), 2u);  // Declaration of e and the projection.
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[1].severity, Severity::kError);
}

TEST(LintStructuralTest, DuplicateAttributeInProjection) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A,A}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL004");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kWarning);
  // The *second* occurrence in the projection list is the duplicate.
  EXPECT_EQ(d[0].span.begin, LocOf(program, "A", 3));
}

TEST(LintStructuralTest, IdentityProjectionNote) {
  LintResult r = Lint(
      "schema { r(A, B); }\n"
      "view V { x := pi{A,B}(r); }\n");
  std::vector<Diagnostic> d = WithCode(r, "VCL005");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kNote);
  // A proper projection is not an identity.
  EXPECT_FALSE(HasCode(Lint("schema { r(A, B); }\n"
                            "view V { x := pi{A}(r); }\n"),
                       "VCL005"));
}

TEST(LintStructuralTest, DuplicateDefinition) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(r); }\n"
      "view W { x := pi{B}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL006");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "x", 2));
  EXPECT_NE(d[0].note.find("first defined at"), std::string::npos);
}

TEST(LintStructuralTest, ShadowedRelation) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { r := pi{A,B}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL007");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "r :="));
}

TEST(LintStructuralTest, UnusedRelation) {
  const std::string program =
      "schema { r(A, B); dusty(E, F); }\n"
      "view V { x := pi{A}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL008");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kWarning);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "dusty"));
  // A schema-only program (no definitions yet) reports nothing.
  EXPECT_TRUE(Lint("schema { r(A, B); }\n").diagnostics.empty());
}

TEST(LintStructuralTest, ConflictingDeclaration) {
  // Same scheme: a warning. Different scheme: an error.
  LintResult same = Lint(
      "schema { r(A, B); }\n"
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(r); }\n");
  std::vector<Diagnostic> ds = WithCode(same, "VCL009");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].severity, Severity::kWarning);

  LintResult diff = Lint(
      "schema { r(A, B); }\n"
      "schema { r(A, C); }\n"
      "view V { x := pi{A}(r); }\n");
  std::vector<Diagnostic> dd = WithCode(diff, "VCL009");
  ASSERT_EQ(dd.size(), 1u);
  EXPECT_EQ(dd[0].severity, Severity::kError);
  EXPECT_NE(dd[0].note.find("previously declared at 1:10"),
            std::string::npos);
}

TEST(LintSemanticTest, RedundantDefinition) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { big := r; small := pi{A}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL101");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kWarning);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "small"));
  // The witness reconstructs `small` from the rest of the view.
  EXPECT_NE(d[0].note.find("pi{A}(big)"), std::string::npos);
  // `big` is not reconstructible from `small` (B was projected away).
  EXPECT_EQ(d.size(), 1u);
}

TEST(LintSemanticTest, NonredundantViewIsClean) {
  LintResult r = Lint(
      "schema { r(A, B); }\n"
      "view V { a := pi{A}(r); b := pi{B}(r); }\n");
  EXPECT_FALSE(HasCode(r, "VCL101"));
}

TEST(LintSemanticTest, NotSimplified) {
  const std::string program =
      "schema { r(A, B, C); }\n"
      "view V { joined := pi{A,B}(r) * pi{B,C}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL102");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kWarning);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "joined"));
  // A single proper projection of a base relation is simple.
  EXPECT_FALSE(HasCode(Lint("schema { r(A, B, C); }\n"
                            "view V { x := pi{A,B}(r); }\n"),
                       "VCL102"));
}

TEST(LintSemanticTest, EquivalentDefinitions) {
  const std::string program =
      "schema { r(A, B, C); }\n"
      "view V { good := pi{A,B}(r); dup := pi{A,B}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL103");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kWarning);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "dup"));
  EXPECT_NE(d[0].note.find("'good' is defined at"), std::string::npos);
  // The twins must not *also* be reported redundant via each other: that
  // would restate the same finding under a second code.
  EXPECT_FALSE(HasCode(r, "VCL101"));
}

TEST(LintSemanticTest, DistinctDefinitionsNotReportedEquivalent) {
  LintResult r = Lint(
      "schema { r(A, B, C); }\n"
      "view V { a := pi{A,B}(r); b := pi{B,C}(r); }\n");
  EXPECT_FALSE(HasCode(r, "VCL103"));
}

TEST(LintSemanticTest, ReconstructibleAcrossViews) {
  // V2 is alive (nothing answers pi{C}(r)), so the derivable 'c' gets the
  // per-definition VCL104 note rather than a whole-view VCL201.
  const std::string program =
      "schema { r(A, B, C); }\n"
      "view V1 { a := pi{A,B}(r); }\n"
      "view V2 { c := pi{A}(r); d := pi{C}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL104");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kNote);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "c :="));
  EXPECT_NE(d[0].note.find("pi{A}(a)"), std::string::npos);
  EXPECT_FALSE(HasCode(r, "VCL201"));
  // Notes never make the result failing.
  EXPECT_FALSE(r.HasErrors());
  EXPECT_FALSE(r.HasWarnings());
}

TEST(LintSemanticTest, SingleViewHasNoReconstructibleFindings) {
  LintResult r = Lint(
      "schema { r(A, B, C); }\n"
      "view V1 { a := pi{A,B}(r); c := pi{B,C}(r); }\n");
  EXPECT_FALSE(HasCode(r, "VCL104"));
}

TEST(LintSemanticTest, SemanticRulesCanBeDisabled) {
  LintOptions options;
  options.semantic = false;
  LintResult r = Linter(options).Run(
      "schema { r(A, B); }\n"
      "view V { big := r; small := pi{A}(r); }\n");
  EXPECT_FALSE(HasCode(r, "VCL101"));
  EXPECT_FALSE(HasCode(r, "VCL102"));
  EXPECT_FALSE(HasCode(r, "VCL103"));
  EXPECT_FALSE(HasCode(r, "VCL104"));
}

TEST(LintSemanticTest, BrokenDefinitionsAreExcludedFromSemanticRules) {
  // `small` duplicates `broken` structurally, but `broken` never resolved;
  // no semantic rule may fire on or against it.
  LintResult r = Lint(
      "schema { r(A, B); }\n"
      "view V { broken := pi{A}(ghost); small := pi{A}(r); }\n");
  EXPECT_TRUE(HasCode(r, "VCL001"));
  EXPECT_FALSE(HasCode(r, "VCL101"));
  EXPECT_FALSE(HasCode(r, "VCL103"));
}

TEST(LintResultTest, DiagnosticsAreSortedByPosition) {
  LintResult r = Lint(
      "schema { r(A, B); unused(E, F); }\n"
      "view V { x := pi{A}(ghost); y := pi{Z}(r); }\n");
  ASSERT_GE(r.diagnostics.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      r.diagnostics.begin(), r.diagnostics.end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        return a.span.begin < b.span.begin;
      }));
}

TEST(LintRenderTest, TextFormat) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(ghost); }\n";
  LintResult r = Lint(program);
  std::string text = RenderText(r.diagnostics, "demo.vcp");
  EXPECT_NE(
      text.find(
          "demo.vcp:2:21: error: undefined relation 'ghost' [VCL001]"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("1 error, 0 warnings, 0 notes."), std::string::npos)
      << text;
  // No findings renders nothing (callers print their own "clean" line).
  EXPECT_EQ(RenderText({}, "demo.vcp"), "");
}

TEST(LintRenderTest, JsonGolden) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(q); }\n";
  LintResult r = Lint(program);
  const std::string expected =
      "{\"file\": \"demo.vcp\", \"diagnostics\": [\n"
      "  {\"severity\": \"error\", \"code\": \"VCL001\", \"line\": 2, "
      "\"column\": 21, \"endLine\": 2, \"endColumn\": 22, "
      "\"message\": \"undefined relation 'q'\"}\n"
      "], \"errors\": 1, \"warnings\": 0, \"notes\": 0}\n";
  EXPECT_EQ(RenderJson(r.diagnostics, "demo.vcp"), expected);
}

TEST(LintRenderTest, JsonEscapesSpecialCharacters) {
  std::vector<Diagnostic> diags;
  diags.push_back(Diagnostic{Severity::kWarning, "VCL999",
                             SourceSpan{{1, 1}, {1, 2}},
                             "a \"quoted\"\tmessage\n", ""});
  std::string json = RenderJson(diags, "odd\\name.vcp");
  EXPECT_NE(json.find("odd\\\\name.vcp"), std::string::npos) << json;
  EXPECT_NE(json.find("a \\\"quoted\\\"\\tmessage\\n"), std::string::npos)
      << json;
}

TEST(LintRenderTest, JsonEmptyDiagnostics) {
  std::string json = RenderJson({}, "clean.vcp");
  EXPECT_EQ(json,
            "{\"file\": \"clean.vcp\", \"diagnostics\": "
            "[], \"errors\": 0, \"warnings\": 0, \"notes\": 0}\n");
}

// --------------------------------------------------- whole-program rules

TEST(LintProgramTest, SubsumedViewIsReported) {
  const std::string program =
      "schema { r(A, B, C); }\n"
      "view V1 { a := pi{A,B}(r); b := pi{B,C}(r); }\n"
      "view V2 { c := pi{A}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL201");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kWarning);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "V2"));
  EXPECT_NE(d[0].note.find("c = "), std::string::npos);
  // The fix-it deletes the whole `view V2 { ... }` block.
  ASSERT_EQ(d[0].fixits.size(), 1u);
  EXPECT_EQ(d[0].fixits[0].replacement, "");
  EXPECT_EQ(d[0].fixits[0].span.begin, LocOf(program, "view V2"));
  // A subsumed view's definitions are not *also* noted reconstructible:
  // VCL201 states the stronger fact.
  EXPECT_FALSE(HasCode(r, "VCL104"));
}

TEST(LintProgramTest, LiveViewIsNotReportedSubsumed) {
  // Nothing answers pi{C}(r), so V2 is alive; and a single-view program
  // has no "rest" to subsume against.
  EXPECT_FALSE(HasCode(Lint("schema { r(A, B, C); }\n"
                            "view V1 { a := pi{A,B}(r); }\n"
                            "view V2 { c := pi{C}(r); }\n"),
                       "VCL201"));
  EXPECT_FALSE(HasCode(Lint("schema { r(A, B, C); }\n"
                            "view OnlyOne { a := pi{A,B}(r); }\n"),
                       "VCL201"));
}

TEST(LintProgramTest, MutuallySubsumedViewsEliminateGreedily) {
  // Each view answers the other. Deleting both would lose pi{A}(r) from
  // the program, so the greedy order must flag exactly one.
  LintResult r = Lint(
      "schema { r(A, B, C); }\n"
      "view V1 { a := pi{A}(r); }\n"
      "view V2 { b := pi{A}(r); }\n");
  EXPECT_EQ(WithCode(r, "VCL201").size(), 1u);
}

TEST(LintProgramTest, SubsumedViewWithUnresolvedDefinitionIsSkipped) {
  // V2's second definition does not resolve (undefined relation), so its
  // capacity is unknown and no subsumption verdict may be issued.
  LintResult r = Lint(
      "schema { r(A, B, C); }\n"
      "view V1 { a := pi{A,B}(r); b := pi{B,C}(r); }\n"
      "view V2 { c := pi{A}(r); d := pi{A}(ghost); }\n");
  EXPECT_TRUE(HasCode(r, "VCL001"));
  EXPECT_FALSE(HasCode(r, "VCL201"));
}

TEST(LintProgramTest, SubsumedViewFixitRemovesTheBlock) {
  const std::string program =
      "schema { r(A, B, C); }\n"
      "view V1 { a := pi{A,B}(r); b := pi{B,C}(r); }\n"
      "view V2 { c := pi{A}(r); }\n";
  FixOutcome outcome = FixProgram(program, LintOptions{});
  EXPECT_TRUE(outcome.clean);
  EXPECT_EQ(outcome.text.find("V2"), std::string::npos) << outcome.text;
  EXPECT_NE(outcome.text.find("view V1"), std::string::npos);
  LintResult after = Lint(outcome.text);
  EXPECT_FALSE(HasCode(after, "VCL201"));
  EXPECT_EQ(after.Fixable(), 0u);
}

TEST(LintProgramTest, CompositionCapacityLossIsNoted) {
  const std::string program =
      "schema { r(A, B, C); }\n"
      "view Inner { a := pi{A,B}(r); b := pi{B,C}(r); }\n"
      "view Outer { o := pi{A}(a); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL202");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kNote);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "Outer"));
  EXPECT_NE(d[0].message.find("'Inner'"), std::string::npos);
  EXPECT_NE(d[0].note.find("Section 1.3"), std::string::npos);
}

TEST(LintProgramTest, LosslessCompositionIsSilent) {
  // Outer re-exports every definition of Inner: nothing is lost.
  LintResult r = Lint(
      "schema { r(A, B, C); }\n"
      "view Inner { a := pi{A,B}(r); b := pi{B,C}(r); }\n"
      "view Outer { o1 := pi{A,B}(a); o2 := pi{B,C}(b); }\n");
  EXPECT_FALSE(HasCode(r, "VCL202"));
}

TEST(LintProgramTest, MixedLeavesAreNotAComposition) {
  // Outer reads a base relation next to the view: Cap(Outer) is not
  // comparable to Cap(Inner) by construction, so the rule stays silent.
  LintResult r = Lint(
      "schema { r(A, B, C); s(C, D); }\n"
      "view Inner { a := pi{A,B}(r); b := pi{B,C}(r); }\n"
      "view Outer { o := pi{A}(a * s); }\n");
  EXPECT_FALSE(HasCode(r, "VCL202"));
}

TEST(LintProgramTest, DefinitionCycleIsAnError) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(y); y := pi{A}(x); z := pi{A,B}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL203");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "x :="));
  EXPECT_NE(d[0].message.find("x -> y -> x"), std::string::npos);
}

TEST(LintProgramTest, SelfReferenceIsACycle) {
  LintResult r = Lint(
      "schema { r(A, B); }\n"
      "view V { w := pi{A}(w); }\n");
  EXPECT_TRUE(HasCode(r, "VCL203"));
}

TEST(LintProgramTest, CycleRuleRunsWithoutSemanticPass) {
  LintOptions options;
  options.semantic = false;
  LintResult r = Linter(options).Run(
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(y); y := pi{A}(x); }\n");
  EXPECT_TRUE(HasCode(r, "VCL203"));
}

TEST(LintProgramTest, AcyclicReferencesAndShadowsAreNotCycles) {
  // A chain is not a cycle, and a definition shadowing a base relation
  // resolves its own name to the base (the shadowing itself is VCL007).
  EXPECT_FALSE(HasCode(Lint("schema { r(A, B); }\n"
                            "view V { x := pi{A,B}(r); y := pi{A}(x); }\n"),
                       "VCL203"));
  LintResult shadowed = Lint(
      "schema { r(A, B); }\n"
      "view V { r := pi{A}(r); }\n");
  EXPECT_TRUE(HasCode(shadowed, "VCL007"));
  EXPECT_FALSE(HasCode(shadowed, "VCL203"));
}

TEST(LintProgramTest, DeterminacyBoundaryNoteInProjectSelectFragment) {
  LintOptions options;
  options.limits.max_candidates = 1;  // Guarantee budget exhaustion.
  const std::string program =
      "schema { r(A, B, C); }\n"
      "view V1 { a := pi{A,B}(r); }\n"
      "view V2 { c := pi{C}(r); }\n";
  LintResult r = Linter(options).Run(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL204");
  ASSERT_GE(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kNote);
  // No joins anywhere: the note cites the decidable fragment.
  EXPECT_NE(d[0].note.find("arXiv:2411.08874"), std::string::npos);
  EXPECT_EQ(d[0].note.find("arXiv:1501.01817"), std::string::npos);
}

TEST(LintProgramTest, DeterminacyBoundaryNoteBeyondTheFragment) {
  LintOptions options;
  options.limits.max_candidates = 1;
  LintResult r = Linter(options).Run(
      "schema { r(A, B); s(B, C); }\n"
      "view V1 { a := r * s; }\n"
      "view V2 { b := pi{A,B}(r * s); }\n");
  std::vector<Diagnostic> d = WithCode(r, "VCL204");
  ASSERT_GE(d.size(), 1u);
  // Joins present: the note cites the undecidability of the general case.
  EXPECT_NE(d[0].note.find("arXiv:1501.01817"), std::string::npos);
}

TEST(LintProgramTest, NoDeterminacyNoteWhenSearchesConclude) {
  EXPECT_FALSE(HasCode(Lint("schema { r(A, B, C); }\n"
                            "view V1 { a := pi{A,B}(r); }\n"
                            "view V2 { c := pi{C}(r); }\n"),
                       "VCL204"));
}

TEST(LintProgramTest, SemanticSkippedNoteNamesTheThreshold) {
  LintOptions options;
  options.max_semantic_definitions = 1;
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { a := pi{A}(r); b := pi{B}(r); }\n";
  LintResult r = Linter(options).Run(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL010");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kNote);
  EXPECT_NE(d[0].message.find("max_semantic_definitions = 1"),
            std::string::npos);
  // The skipped pass reported nothing semantic.
  EXPECT_FALSE(HasCode(r, "VCL101"));
  EXPECT_FALSE(HasCode(r, "VCL201"));
}

TEST(LintProgramTest, NoSkippedNoteUnderTheThresholdOrWhenDisabled) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { a := pi{A}(r); b := pi{B}(r); }\n";
  EXPECT_FALSE(HasCode(Lint(program), "VCL010"));
  LintOptions options;
  options.semantic = false;  // Explicitly off is a choice, not a surprise.
  EXPECT_FALSE(HasCode(Linter(options).Run(program), "VCL010"));
}

// ---------------------------------------------------------------- fix-its

TEST(LintFixitTest, DuplicateAttributeFixitDropsTheRepeat) {
  const std::string program =
      "schema { r(A, B, C); }\n"
      "view V { x := pi{A, B, B}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL004");
  ASSERT_EQ(d.size(), 1u);
  ASSERT_EQ(d[0].fixits.size(), 1u);
  ApplyOutcome out = ApplyEdits(program, d[0].fixits);
  EXPECT_NE(out.text.find("pi{A, B}(r)"), std::string::npos) << out.text;
}

TEST(LintFixitTest, IdentityProjectionFixitUnwrapsTheOperand) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{B, A}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL005");
  ASSERT_EQ(d.size(), 1u);
  ASSERT_EQ(d[0].fixits.size(), 1u);
  EXPECT_EQ(d[0].fixits[0].replacement, "r");
  ApplyOutcome out = ApplyEdits(program, d[0].fixits);
  EXPECT_NE(out.text.find("x := r;"), std::string::npos) << out.text;
}

TEST(LintFixitTest, RedundantDefinitionFixitDeletesTheStatement) {
  const std::string program =
      "schema { r(A, B, C); }\n"
      "view V {\n"
      "  keep := pi{A,B}(r);\n"
      "  gone := pi{A}(r);\n"
      "}\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL101");
  ASSERT_EQ(d.size(), 1u);
  ASSERT_EQ(d[0].fixits.size(), 1u);
  ApplyOutcome out = ApplyEdits(program, d[0].fixits);
  EXPECT_EQ(out.text.find("gone"), std::string::npos) << out.text;
  // The statement's line disappears entirely, not leaving a blank.
  EXPECT_EQ(out.text.find("\n\n"), std::string::npos) << out.text;
  EXPECT_FALSE(HasCode(Lint(out.text), "VCL101"));
}

TEST(LintFixitTest, FixProgramReachesAFixpointOnNestedFindings) {
  // The outer identity projection hides another one: one pass cannot fix
  // both, so FixProgram must iterate.
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A,B}(pi{A,B}(pi{A,B,B}(r))); }\n";
  FixOutcome outcome = FixProgram(program, LintOptions{});
  EXPECT_TRUE(outcome.clean);
  EXPECT_GE(outcome.rounds, 2u);
  // Every pi{A,B} over r(A, B) is an identity, so the fixpoint unwraps the
  // whole tower (deduping {A,B,B} on the way) down to the bare relation.
  EXPECT_NE(outcome.text.find("x := r;"), std::string::npos) << outcome.text;
  // Idempotence: fixing the fixed program changes nothing.
  FixOutcome again = FixProgram(outcome.text, LintOptions{});
  EXPECT_TRUE(again.clean);
  EXPECT_EQ(again.edits_applied, 0u);
  EXPECT_EQ(again.text, outcome.text);
}

TEST(LintFixitTest, LineMapRoundTrip) {
  const std::string text = "ab\ncdef\n\ng";
  LineMap map(text);
  EXPECT_EQ(map.Offset({1, 1}), 0u);
  EXPECT_EQ(map.Offset({2, 3}), 5u);
  EXPECT_EQ(map.Offset({2, 99}), 7u);  // Clamped to the line's end.
  EXPECT_EQ(map.Offset({4, 1}), 9u);
  for (std::size_t offset : {0u, 3u, 5u, 8u, 9u}) {
    EXPECT_EQ(map.Offset(map.Location(offset)), offset) << offset;
  }
  EXPECT_EQ(map.Slice(SourceSpan{{2, 1}, {2, 5}}), "cdef");
}

TEST(LintFixitTest, ApplyEditsResolvesOverlapsGreedily) {
  const std::string text = "abcdef";
  std::vector<TextEdit> edits;
  edits.push_back(TextEdit{SourceSpan{{1, 1}, {1, 5}}, "X"});
  edits.push_back(TextEdit{SourceSpan{{1, 3}, {1, 6}}, "Y"});  // Overlaps.
  ApplyOutcome out = ApplyEdits(text, edits);
  EXPECT_EQ(out.text, "Xef");
  EXPECT_EQ(out.applied, 1u);
  EXPECT_EQ(out.skipped, 1u);
}

// ------------------------------------------------------------------ SARIF

TEST(LintSarifTest, GoldenRunResultAndRegion) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(q); }\n";
  LintResult r = Lint(program);
  const std::string sarif = RenderSarif(r.diagnostics, "demo.vcp");
  EXPECT_NE(sarif.find("\"$schema\": "
                       "\"https://json.schemastore.org/sarif-2.1.0.json\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"viewcap-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"VCL001\", \"name\": "
                       "\"undefined-relation\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"VCL001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\": 0"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"message\": {\"text\": \"undefined relation "
                       "'q'\"}"),
            std::string::npos);
  EXPECT_NE(
      sarif.find("\"region\": {\"startLine\": 2, \"startColumn\": 21, "
                 "\"endLine\": 2, \"endColumn\": 22}"),
      std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"artifactLocation\": {\"uri\": \"demo.vcp\"}"),
            std::string::npos);
}

TEST(LintSarifTest, EmptyGolden) {
  EXPECT_EQ(
      RenderSarif({}, "clean.vcp"),
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"viewcap-lint\",\n"
      "          \"informationUri\": \"https://github.com/viewcap/viewcap\",\n"
      "          \"rules\": []\n"
      "        }\n"
      "      },\n"
      "      \"results\": []\n"
      "    }\n"
      "  ]\n"
      "}\n");
}

TEST(LintSarifTest, FixesCarryDeletedRegionsAndInsertions) {
  std::vector<Diagnostic> diags;
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.code = "VCL005";
  d.span = SourceSpan{{3, 8}, {3, 20}};
  d.message = "identity projection";
  d.fixits.push_back(TextEdit{SourceSpan{{3, 8}, {3, 20}}, "r"});
  diags.push_back(std::move(d));
  const std::string sarif = RenderSarif(diags, "p.vcp");
  EXPECT_NE(
      sarif.find("{\"deletedRegion\": {\"startLine\": 3, \"startColumn\": 8, "
                 "\"endLine\": 3, \"endColumn\": 20}, "
                 "\"insertedContent\": {\"text\": \"r\"}}"),
      std::string::npos)
      << sarif;
}

TEST(LintSarifTest, RuleRegistryCoversEveryLintedCode) {
  // Every code the linter can emit has registry metadata, so SARIF rules
  // are never bare ids.
  for (std::string_view code :
       {"VCL000", "VCL001", "VCL002", "VCL003", "VCL004", "VCL005", "VCL006",
        "VCL007", "VCL008", "VCL009", "VCL010", "VCL101", "VCL102", "VCL103",
        "VCL104", "VCL201", "VCL202", "VCL203", "VCL204"}) {
    const RuleInfo* info = FindRule(code);
    ASSERT_NE(info, nullptr) << code;
    EXPECT_FALSE(info->name.empty()) << code;
    EXPECT_FALSE(info->summary.empty()) << code;
  }
  EXPECT_EQ(FindRule("VCL999"), nullptr);
}

// --------------------------------------------------------------- baseline

TEST(LintBaselineTest, WriteParseFilterRoundTrip) {
  const std::string program =
      "schema { r(A, B, C); unused(E, F); }\n"
      "view V { x := pi{A}(r); y := pi{A}(ghost); }\n";
  LintResult r = Lint(program);
  ASSERT_GE(r.diagnostics.size(), 2u);
  const std::string text = WriteBaseline(r.diagnostics);
  Baseline baseline = ParseBaseline(text);
  std::size_t suppressed = 0;
  std::vector<Diagnostic> survivors =
      FilterBaseline(r.diagnostics, baseline, &suppressed);
  EXPECT_TRUE(survivors.empty());
  EXPECT_EQ(suppressed, r.diagnostics.size());
}

TEST(LintBaselineTest, NewFindingsSurviveTheBaseline) {
  LintResult before = Lint(
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(ghost); }\n");
  Baseline baseline = ParseBaseline(WriteBaseline(before.diagnostics));
  LintResult after = Lint(
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(ghost); y := pi{A}(phantom); }\n");
  std::vector<Diagnostic> survivors =
      FilterBaseline(after.diagnostics, baseline);
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_NE(survivors[0].message.find("phantom"), std::string::npos);
}

TEST(LintBaselineTest, EntriesSuppressAtMostTheirCount) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.code = "VCL101";
  d.message = "same message";
  Baseline baseline = ParseBaseline("VCL101\tsame message\n");
  std::size_t suppressed = 0;
  std::vector<Diagnostic> survivors =
      FilterBaseline({d, d}, baseline, &suppressed);
  EXPECT_EQ(survivors.size(), 1u);
  EXPECT_EQ(suppressed, 1u);
}

TEST(LintBaselineTest, CommentsAndMalformedLinesAreIgnored) {
  Baseline baseline = ParseBaseline(
      "# header comment\n"
      "\n"
      "no tab on this line\n"
      "VCL001\tundefined relation 'q'\n");
  EXPECT_EQ(baseline.entries.size(), 1u);
}

// ------------------------------------------------------------- vcl-ignore

TEST(LintIgnoreTest, SameLineCommentSuppresses) {
  LintResult r = Lint(
      "schema { r(A, B); }\n"
      "view V { x := pi{B, A}(r); } # vcl-ignore(VCL005)\n");
  EXPECT_FALSE(HasCode(r, "VCL005"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintIgnoreTest, StandaloneCommentTargetsTheNextLine) {
  LintResult r = Lint(
      "schema { r(A, B); }\n"
      "view V {\n"
      "  -- vcl-ignore(VCL005)\n"
      "  x := pi{B, A}(r);\n"
      "}\n");
  EXPECT_FALSE(HasCode(r, "VCL005"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintIgnoreTest, OtherCodesAndLinesStillReport) {
  // The directive names VCL004; the VCL005 on the same line and the
  // VCL005 on another line are untouched.
  LintResult r = Lint(
      "schema { r(A, B); }\n"
      "view V { x := pi{B, A}(r); } // vcl-ignore(VCL004)\n");
  EXPECT_TRUE(HasCode(r, "VCL005"));
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(LintIgnoreTest, MultipleCodesInOneDirective) {
  LintResult r = Lint(
      "schema { r(A, B); unused(E, F); }\n"
      "view V { x := pi{B, A}(r); }\n"
      "-- trailing standalone comment, targets nothing\n");
  ASSERT_TRUE(HasCode(r, "VCL005"));
  ASSERT_TRUE(HasCode(r, "VCL008"));
  LintResult s = Lint(
      "schema { r(A, B); unused(E, F); } # vcl-ignore(VCL008, VCL005)\n"
      "view V { x := pi{B, A}(r); } # vcl-ignore(VCL005)\n");
  EXPECT_FALSE(HasCode(s, "VCL008"));
  EXPECT_FALSE(HasCode(s, "VCL005"));
  EXPECT_EQ(s.suppressed, 2u);
}

}  // namespace
}  // namespace viewcap
