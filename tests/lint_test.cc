// Unit tests for lint/linter.h and lint/diagnostics.h: one positive and one
// negative program per rule, span accuracy against markers located in the
// source text, and a golden test for the machine-readable JSON rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>

#include "lint/diagnostics.h"
#include "lint/linter.h"

namespace viewcap {
namespace {

/// All findings with `code`, in output order.
std::vector<Diagnostic> WithCode(const LintResult& result,
                                 std::string_view code) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == code) out.push_back(d);
  }
  return out;
}

bool HasCode(const LintResult& result, std::string_view code) {
  return !WithCode(result, code).empty();
}

/// Line/column (1-based) of the `occurrence`-th `marker` in `text`. The
/// tests derive expected spans from the program text itself instead of
/// hand-counted columns.
SourceLocation LocOf(std::string_view text, std::string_view marker,
                     int occurrence = 1) {
  std::size_t pos = 0;
  for (int i = 0; i < occurrence; ++i) {
    pos = text.find(marker, i == 0 ? 0 : pos + 1);
    EXPECT_NE(pos, std::string_view::npos) << "marker: " << marker;
  }
  SourceLocation loc;
  for (std::size_t i = 0; i < pos; ++i) {
    if (text[i] == '\n') {
      ++loc.line;
      loc.column = 1;
    } else {
      ++loc.column;
    }
  }
  return loc;
}

LintResult Lint(std::string_view program) { return Linter().Run(program); }

TEST(LintStructuralTest, CleanProgramHasNoFindings) {
  LintResult r = Lint(R"(
    schema { r(A, B); s(B, C); }
    view V { v := pi{A}(r); w := pi{B,C}(r * s); }
  )");
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(LintStructuralTest, SyntaxErrorIsReportedAndRecoveredFrom) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(r) @ ; y := pi{B}(q); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> syntax = WithCode(r, "VCL000");
  ASSERT_EQ(syntax.size(), 1u);
  EXPECT_EQ(syntax[0].severity, Severity::kError);
  EXPECT_EQ(syntax[0].span.begin, LocOf(program, "@"));
  // Recovery continued into the next definition: the undefined relation
  // there is still diagnosed.
  EXPECT_TRUE(HasCode(r, "VCL001"));
}

TEST(LintStructuralTest, UndefinedRelation) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(r * ghost); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL001");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "ghost"));
  EXPECT_NE(d[0].message.find("ghost"), std::string::npos);
  EXPECT_TRUE(r.HasErrors());
}

TEST(LintStructuralTest, UndefinedRelationDoesNotCascadeToAttributes) {
  // TRS of `r * ghost` is unknown, so the projection list must not be
  // checked against a partial scheme.
  LintResult r = Lint(
      "schema { r(A, B); }\n"
      "view V { x := pi{Z}(r * ghost); }\n");
  EXPECT_TRUE(HasCode(r, "VCL001"));
  EXPECT_FALSE(HasCode(r, "VCL002"));
}

TEST(LintStructuralTest, UnknownAttribute) {
  const std::string program =
      "schema { r(A, B); s(C, D); }\n"
      "view V { x := pi{A,D}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL002");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "D}"));
  // The in-scheme attribute A is not flagged.
  EXPECT_NE(d[0].message.find("'D'"), std::string::npos);
}

TEST(LintStructuralTest, EmptyProjectionListAndEmptyScheme) {
  LintResult r = Lint(
      "schema { r(A, B); e(); }\n"
      "view V { x := pi{}(r); }\n");
  std::vector<Diagnostic> d = WithCode(r, "VCL003");
  ASSERT_EQ(d.size(), 2u);  // Declaration of e and the projection.
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[1].severity, Severity::kError);
}

TEST(LintStructuralTest, DuplicateAttributeInProjection) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A,A}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL004");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kWarning);
  // The *second* occurrence in the projection list is the duplicate.
  EXPECT_EQ(d[0].span.begin, LocOf(program, "A", 3));
}

TEST(LintStructuralTest, IdentityProjectionNote) {
  LintResult r = Lint(
      "schema { r(A, B); }\n"
      "view V { x := pi{A,B}(r); }\n");
  std::vector<Diagnostic> d = WithCode(r, "VCL005");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kNote);
  // A proper projection is not an identity.
  EXPECT_FALSE(HasCode(Lint("schema { r(A, B); }\n"
                            "view V { x := pi{A}(r); }\n"),
                       "VCL005"));
}

TEST(LintStructuralTest, DuplicateDefinition) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(r); }\n"
      "view W { x := pi{B}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL006");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "x", 2));
  EXPECT_NE(d[0].note.find("first defined at"), std::string::npos);
}

TEST(LintStructuralTest, ShadowedRelation) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { r := pi{A,B}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL007");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "r :="));
}

TEST(LintStructuralTest, UnusedRelation) {
  const std::string program =
      "schema { r(A, B); dusty(E, F); }\n"
      "view V { x := pi{A}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL008");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kWarning);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "dusty"));
  // A schema-only program (no definitions yet) reports nothing.
  EXPECT_TRUE(Lint("schema { r(A, B); }\n").diagnostics.empty());
}

TEST(LintStructuralTest, ConflictingDeclaration) {
  // Same scheme: a warning. Different scheme: an error.
  LintResult same = Lint(
      "schema { r(A, B); }\n"
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(r); }\n");
  std::vector<Diagnostic> ds = WithCode(same, "VCL009");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].severity, Severity::kWarning);

  LintResult diff = Lint(
      "schema { r(A, B); }\n"
      "schema { r(A, C); }\n"
      "view V { x := pi{A}(r); }\n");
  std::vector<Diagnostic> dd = WithCode(diff, "VCL009");
  ASSERT_EQ(dd.size(), 1u);
  EXPECT_EQ(dd[0].severity, Severity::kError);
  EXPECT_NE(dd[0].note.find("previously declared at 1:10"),
            std::string::npos);
}

TEST(LintSemanticTest, RedundantDefinition) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { big := r; small := pi{A}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL101");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kWarning);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "small"));
  // The witness reconstructs `small` from the rest of the view.
  EXPECT_NE(d[0].note.find("pi{A}(big)"), std::string::npos);
  // `big` is not reconstructible from `small` (B was projected away).
  EXPECT_EQ(d.size(), 1u);
}

TEST(LintSemanticTest, NonredundantViewIsClean) {
  LintResult r = Lint(
      "schema { r(A, B); }\n"
      "view V { a := pi{A}(r); b := pi{B}(r); }\n");
  EXPECT_FALSE(HasCode(r, "VCL101"));
}

TEST(LintSemanticTest, NotSimplified) {
  const std::string program =
      "schema { r(A, B, C); }\n"
      "view V { joined := pi{A,B}(r) * pi{B,C}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL102");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kWarning);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "joined"));
  // A single proper projection of a base relation is simple.
  EXPECT_FALSE(HasCode(Lint("schema { r(A, B, C); }\n"
                            "view V { x := pi{A,B}(r); }\n"),
                       "VCL102"));
}

TEST(LintSemanticTest, EquivalentDefinitions) {
  const std::string program =
      "schema { r(A, B, C); }\n"
      "view V { good := pi{A,B}(r); dup := pi{A,B}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL103");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kWarning);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "dup"));
  EXPECT_NE(d[0].note.find("'good' is defined at"), std::string::npos);
  // The twins must not *also* be reported redundant via each other: that
  // would restate the same finding under a second code.
  EXPECT_FALSE(HasCode(r, "VCL101"));
}

TEST(LintSemanticTest, DistinctDefinitionsNotReportedEquivalent) {
  LintResult r = Lint(
      "schema { r(A, B, C); }\n"
      "view V { a := pi{A,B}(r); b := pi{B,C}(r); }\n");
  EXPECT_FALSE(HasCode(r, "VCL103"));
}

TEST(LintSemanticTest, ReconstructibleAcrossViews) {
  const std::string program =
      "schema { r(A, B, C); }\n"
      "view V1 { a := pi{A,B}(r); }\n"
      "view V2 { c := pi{A}(r); }\n";
  LintResult r = Lint(program);
  std::vector<Diagnostic> d = WithCode(r, "VCL104");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].severity, Severity::kNote);
  EXPECT_EQ(d[0].span.begin, LocOf(program, "c :="));
  EXPECT_NE(d[0].note.find("pi{A}(a)"), std::string::npos);
  // Notes never make the result failing.
  EXPECT_FALSE(r.HasErrors());
  EXPECT_FALSE(r.HasWarnings());
}

TEST(LintSemanticTest, SingleViewHasNoReconstructibleFindings) {
  LintResult r = Lint(
      "schema { r(A, B, C); }\n"
      "view V1 { a := pi{A,B}(r); c := pi{B,C}(r); }\n");
  EXPECT_FALSE(HasCode(r, "VCL104"));
}

TEST(LintSemanticTest, SemanticRulesCanBeDisabled) {
  LintOptions options;
  options.semantic = false;
  LintResult r = Linter(options).Run(
      "schema { r(A, B); }\n"
      "view V { big := r; small := pi{A}(r); }\n");
  EXPECT_FALSE(HasCode(r, "VCL101"));
  EXPECT_FALSE(HasCode(r, "VCL102"));
  EXPECT_FALSE(HasCode(r, "VCL103"));
  EXPECT_FALSE(HasCode(r, "VCL104"));
}

TEST(LintSemanticTest, BrokenDefinitionsAreExcludedFromSemanticRules) {
  // `small` duplicates `broken` structurally, but `broken` never resolved;
  // no semantic rule may fire on or against it.
  LintResult r = Lint(
      "schema { r(A, B); }\n"
      "view V { broken := pi{A}(ghost); small := pi{A}(r); }\n");
  EXPECT_TRUE(HasCode(r, "VCL001"));
  EXPECT_FALSE(HasCode(r, "VCL101"));
  EXPECT_FALSE(HasCode(r, "VCL103"));
}

TEST(LintResultTest, DiagnosticsAreSortedByPosition) {
  LintResult r = Lint(
      "schema { r(A, B); unused(E, F); }\n"
      "view V { x := pi{A}(ghost); y := pi{Z}(r); }\n");
  ASSERT_GE(r.diagnostics.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      r.diagnostics.begin(), r.diagnostics.end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        return a.span.begin < b.span.begin;
      }));
}

TEST(LintRenderTest, TextFormat) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(ghost); }\n";
  LintResult r = Lint(program);
  std::string text = RenderText(r.diagnostics, "demo.vcp");
  EXPECT_NE(
      text.find(
          "demo.vcp:2:21: error: undefined relation 'ghost' [VCL001]"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("1 error, 0 warnings, 0 notes."), std::string::npos)
      << text;
  // No findings renders nothing (callers print their own "clean" line).
  EXPECT_EQ(RenderText({}, "demo.vcp"), "");
}

TEST(LintRenderTest, JsonGolden) {
  const std::string program =
      "schema { r(A, B); }\n"
      "view V { x := pi{A}(q); }\n";
  LintResult r = Lint(program);
  const std::string expected =
      "{\"file\": \"demo.vcp\", \"diagnostics\": [\n"
      "  {\"severity\": \"error\", \"code\": \"VCL001\", \"line\": 2, "
      "\"column\": 21, \"endLine\": 2, \"endColumn\": 22, "
      "\"message\": \"undefined relation 'q'\"}\n"
      "], \"errors\": 1, \"warnings\": 0, \"notes\": 0}\n";
  EXPECT_EQ(RenderJson(r.diagnostics, "demo.vcp"), expected);
}

TEST(LintRenderTest, JsonEscapesSpecialCharacters) {
  std::vector<Diagnostic> diags;
  diags.push_back(Diagnostic{Severity::kWarning, "VCL999",
                             SourceSpan{{1, 1}, {1, 2}},
                             "a \"quoted\"\tmessage\n", ""});
  std::string json = RenderJson(diags, "odd\\name.vcp");
  EXPECT_NE(json.find("odd\\\\name.vcp"), std::string::npos) << json;
  EXPECT_NE(json.find("a \\\"quoted\\\"\\tmessage\\n"), std::string::npos)
      << json;
}

TEST(LintRenderTest, JsonEmptyDiagnostics) {
  std::string json = RenderJson({}, "clean.vcp");
  EXPECT_EQ(json,
            "{\"file\": \"clean.vcp\", \"diagnostics\": "
            "[], \"errors\": 0, \"warnings\": 0, \"notes\": 0}\n");
}

}  // namespace
}  // namespace viewcap
