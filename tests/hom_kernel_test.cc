// Differential suite for the flat SoA homomorphism kernel
// (tableau/soa.h, tableau/hom_kernel.h): across a seeded random corpus
// the kernel must match the legacy HomSearch oracle bit for bit —
// verdicts, SymbolMap witnesses, and (at the engine level) EngineStats
// counters for threads {1, 2, 8}.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "algebra/printer.h"
#include "base/random.h"
#include "base/strings.h"
#include "engine/engine.h"
#include "tableau/build.h"
#include "tableau/hom_kernel.h"
#include "tableau/homomorphism.h"
#include "tableau/soa.h"
#include "tests/test_util.h"
#include "views/capacity.h"
#include "views/equivalence.h"
#include "views/redundancy.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

// A schema with overlapping binary relations over {A, B, C, D}: joins
// repeat symbols across rows, projections mint nondistinguished symbols —
// the two axes the kernel's candidate prunes and binding trail must get
// right.
class HomKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    universe_ = catalog_.MakeScheme({"A", "B", "C", "D"});
    rels_.push_back(
        Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"}))));
    rels_.push_back(
        Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"}))));
    rels_.push_back(
        Unwrap(catalog_.AddRelation("t", catalog_.MakeScheme({"C", "D"}))));
    rels_.push_back(
        Unwrap(catalog_.AddRelation("u", catalog_.MakeScheme({"A", "C"}))));
  }

  Tableau T(const std::string& text) {
    return MustBuildTableau(catalog_, universe_, *MustParse(catalog_, text));
  }

  /// Random normalized expression with `leaves` leaf occurrences: a leaf,
  /// or a join of two random subexpressions, optionally wrapped in a
  /// random nontrivial projection. Always yields a valid template.
  ExprPtr RandomExpr(Random& rng, std::size_t leaves) {
    ExprPtr expr;
    if (leaves <= 1) {
      expr = Expr::Rel(catalog_, rels_[rng.Index(rels_.size())]);
    } else {
      const std::size_t left = 1 + rng.Index(leaves - 1);
      expr = Expr::MustJoin(
          {RandomExpr(rng, left), RandomExpr(rng, leaves - left)});
    }
    const AttrSet trs = expr->trs();
    if (trs.size() > 1 && rng.Chance(0.4)) {
      // Random proper nonempty projection of the TRS.
      const std::size_t keep = 1 + rng.Index(trs.size() - 1);
      std::vector<std::size_t> picks = rng.Sample(trs.size(), keep);
      AttrSet kept;
      std::size_t pos = 0, pick = 0;
      for (AttrId a : trs) {
        if (pick < picks.size() && picks[pick] == pos) {
          kept = kept.Union(AttrSet{a});
          ++pick;
        }
        ++pos;
      }
      expr = Expr::MustProject(kept, std::move(expr));
    }
    return expr;
  }

  Tableau RandomTableau(Random& rng, std::size_t max_leaves) {
    return MustBuildTableau(catalog_, universe_,
                            *RandomExpr(rng, 1 + rng.Index(max_leaves)));
  }

  /// Injectively renames every nondistinguished symbol to a fresh high
  /// ordinal — an isomorphic copy of `t` (validity is preserved:
  /// conditions (i)-(iii) are invariant under injective nondistinguished
  /// renaming).
  Tableau RenamedCopy(const Tableau& t, std::uint32_t offset) {
    SymbolMap rename;
    for (const Symbol& s : t.Symbols()) {
      if (!s.IsDistinguished()) {
        rename.emplace(s,
                       Symbol::Nondistinguished(s.attr, s.ordinal + offset));
      }
    }
    Tableau out = t.Apply(rename);
    VIEWCAP_EXPECT_OK(out.Validate(catalog_));
    return out;
  }

  Catalog catalog_;
  AttrSet universe_;
  std::vector<RelId> rels_;
};

// --- SoA encoding invariants -------------------------------------------

TEST_F(HomKernelTest, LoweringRoundTripsRowsAndSymbols) {
  Tableau t = T("pi{A,C}(r * s) * u");
  const SoaTemplate soa = SoaTemplate::Lower(t);
  ASSERT_EQ(soa.num_rows(), static_cast<std::int32_t>(t.size()));
  ASSERT_EQ(soa.width(), static_cast<std::int32_t>(t.universe().size()));
  // Row i of the encoding is row i of the tableau, cell for cell.
  for (std::int32_t i = 0; i < soa.num_rows(); ++i) {
    const TaggedTuple& row = t.rows()[static_cast<std::size_t>(i)];
    EXPECT_EQ(soa.row_rel(i), row.rel);
    for (std::int32_t k = 0; k < soa.width(); ++k) {
      EXPECT_EQ(soa.symbol(soa.row(i)[k]),
                row.tuple.ValueAt(static_cast<std::size_t>(k)));
    }
  }
  // Distinguished ids form the dense prefix [0, num_distinguished).
  for (std::int32_t id = 0; id < soa.num_symbols(); ++id) {
    EXPECT_EQ(soa.symbol(id).IsDistinguished(), soa.IsDistinguished(id));
  }
  EXPECT_EQ(static_cast<std::size_t>(soa.num_symbols()), t.Symbols().size());
}

TEST_F(HomKernelTest, TagGroupsPartitionRowsContiguously) {
  Tableau t = T("r * s * t * u * r");
  const SoaTemplate soa = SoaTemplate::Lower(t);
  std::int32_t covered = 0;
  for (const SoaRowGroup& g : soa.groups()) {
    EXPECT_EQ(g.begin, covered);
    for (std::int32_t i = g.begin; i < g.end; ++i) {
      EXPECT_EQ(soa.row_rel(i), g.rel);
    }
    EXPECT_EQ(soa.GroupFor(g.rel), &g);
    covered = g.end;
  }
  EXPECT_EQ(covered, soa.num_rows());
  EXPECT_EQ(soa.GroupFor(kInvalidRel), nullptr);
}

TEST_F(HomKernelTest, DistinguishedMasksMatchCells) {
  Tableau t = T("pi{B}(r * s) * t");
  const SoaTemplate soa = SoaTemplate::Lower(t);
  for (std::int32_t i = 0; i < soa.num_rows(); ++i) {
    for (std::int32_t k = 0; k < soa.width(); ++k) {
      const bool mask_bit =
          (soa.dist_mask(i)[k / 64] >> (k % 64) & 1) != 0;
      EXPECT_EQ(mask_bit, soa.IsDistinguished(soa.row(i)[k])) << i << "," << k;
    }
  }
}

// --- Kernel vs legacy oracle: randomized differential ------------------

TEST_F(HomKernelTest, RandomizedDifferentialAgainstLegacy) {
  Random rng(20260808);
  std::size_t homs_found = 0, embeds_found = 0, isos_found = 0;
  for (int round = 0; round < 150; ++round) {
    const Tableau a = RandomTableau(rng, 4);
    // Mix of related targets (joins containing `a`-like structure,
    // renamed copies) and independent ones, so both verdicts occur.
    Tableau b = rng.Chance(0.5) ? RandomTableau(rng, 4)
                                : RenamedCopy(RandomTableau(rng, 3), 100);

    // Homomorphism: verdict AND witness must be bit-identical.
    const std::optional<SymbolMap> kernel_hom =
        FindHomomorphism(catalog_, a, b);
    const std::optional<SymbolMap> legacy_hom =
        legacy::FindHomomorphism(catalog_, a, b);
    ASSERT_EQ(kernel_hom.has_value(), legacy_hom.has_value()) << round;
    if (kernel_hom.has_value()) {
      ++homs_found;
      EXPECT_EQ(*kernel_hom, *legacy_hom) << round;
      // Witness validity: RowImage CHECK-fails unless the map really is a
      // homomorphism of a into b.
      RowImage(catalog_, a, b, *kernel_hom);
    }
    // Prune soundness: disabling the unification prune must not change
    // the verdict (satellite: candidate lists shrink, answers don't).
    EXPECT_EQ(kernel_hom.has_value(),
              legacy::HasHomomorphism(catalog_, a, b,
                                      /*unification_prune=*/false))
        << round;

    // Row embedding (distinguished symbols free).
    const bool kernel_embed = HasRowEmbedding(catalog_, a, b);
    EXPECT_EQ(kernel_embed, legacy::HasRowEmbedding(catalog_, a, b)) << round;
    EXPECT_EQ(kernel_embed,
              legacy::HasRowEmbedding(catalog_, a, b,
                                      /*unification_prune=*/false))
        << round;
    if (kernel_embed) ++embeds_found;

    // Equivalence, both engines of it.
    EXPECT_EQ(EquivalentTableaux(catalog_, a, b),
              legacy::EquivalentTableaux(catalog_, a, b))
        << round;

    // Isomorphism (injective + nondistinguished-preserving).
    const std::optional<SymbolMap> kernel_iso =
        FindIsomorphism(catalog_, a, b);
    const std::optional<SymbolMap> legacy_iso =
        legacy::FindIsomorphism(catalog_, a, b);
    ASSERT_EQ(kernel_iso.has_value(), legacy_iso.has_value()) << round;
    if (kernel_iso.has_value()) {
      ++isos_found;
      EXPECT_EQ(*kernel_iso, *legacy_iso) << round;
    }
  }
  // The corpus must actually exercise the positive paths.
  EXPECT_GE(homs_found, 10u);
  EXPECT_GE(embeds_found, 10u);
}

TEST_F(HomKernelTest, IsomorphicRenamedCopiesFoundIdentically) {
  Random rng(77);
  std::size_t isos = 0;
  for (int round = 0; round < 40; ++round) {
    const Tableau a = RandomTableau(rng, 4);
    const Tableau b = RenamedCopy(a, 1000);
    const std::optional<SymbolMap> kernel_iso =
        FindIsomorphism(catalog_, a, b);
    const std::optional<SymbolMap> legacy_iso =
        legacy::FindIsomorphism(catalog_, a, b);
    ASSERT_EQ(kernel_iso.has_value(), legacy_iso.has_value()) << round;
    if (kernel_iso.has_value()) {
      ++isos;
      EXPECT_EQ(*kernel_iso, *legacy_iso) << round;
      RowImage(catalog_, a, b, *kernel_iso);
    }
  }
  EXPECT_GT(isos, 30u);  // Renamed copies are isomorphic by construction.
}

TEST_F(HomKernelTest, EmbeddingWitnessMayMoveDistinguished) {
  // pi{A}(r) row-embeds into pi{B}(r) by mapping 0_A to a
  // nondistinguished symbol — a homomorphism cannot.
  const Tableau narrow_a = T("pi{A}(r)");
  const Tableau narrow_b = T("pi{B}(r)");
  EXPECT_FALSE(HasHomomorphism(catalog_, narrow_a, narrow_b));
  EXPECT_TRUE(HasRowEmbedding(catalog_, narrow_a, narrow_b));
  EXPECT_EQ(legacy::HasRowEmbedding(catalog_, narrow_a, narrow_b), true);
}

TEST_F(HomKernelTest, UnificationPruneCutsRepeatedSymbolCandidates) {
  // from joins r and s on a shared B symbol; the target keeps r and s
  // rows whose B symbols differ, so no row pair can unify. The signature
  // prune empties the candidate lists; with or without it the verdict is
  // the same (no embedding).
  const Tableau from = T("pi{A,C}(r * s)");
  const Tableau to = T("pi{A}(r) * pi{C}(s)");
  EXPECT_FALSE(HasRowEmbedding(catalog_, from, to));
  EXPECT_FALSE(legacy::HasRowEmbedding(catalog_, from, to));
  EXPECT_FALSE(legacy::HasRowEmbedding(catalog_, from, to,
                                       /*unification_prune=*/false));
  // And the unifiable direction still succeeds with the prune on.
  EXPECT_TRUE(HasRowEmbedding(catalog_, to, from));
}

TEST_F(HomKernelTest, ReduceProbeMatchesSubsetSearch) {
  // The reduction probe (one lowering, excluded target row) must return
  // exactly the verdict of searching into the separately-built subset.
  Random rng(99);
  HomScratch scratch;
  for (int round = 0; round < 60; ++round) {
    const Tableau t = RandomTableau(rng, 4);
    if (t.size() < 2) continue;
    const SoaTemplate soa = SoaTemplate::Lower(t);
    for (std::size_t drop = 0; drop < t.size(); ++drop) {
      std::vector<std::size_t> keep;
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i != drop) keep.push_back(i);
      }
      const Tableau sub = t.SubsetRows(keep);
      EXPECT_EQ(SoaReduceProbe(soa, static_cast<std::int32_t>(drop), scratch),
                legacy::HasHomomorphism(catalog_, t, sub))
          << round << "," << drop;
    }
  }
}

TEST_F(HomKernelTest, WaveMatchesScalarSearches) {
  Random rng(4242);
  const Tableau target = T("r * s * t");
  const SoaTemplate target_soa = SoaTemplate::Lower(target);
  std::vector<Tableau> sources;
  std::vector<SoaTemplate> lowered;
  for (int i = 0; i < 12; ++i) {
    sources.push_back(RandomTableau(rng, 3));
    lowered.push_back(SoaTemplate::Lower(sources.back()));
  }
  std::vector<const SoaTemplate*> pointers;
  for (const SoaTemplate& soa : lowered) pointers.push_back(&soa);
  HomScratch scratch;
  const std::vector<char> wave =
      SoaSearchWave(pointers, target_soa, HomMode::kRowEmbedding, scratch);
  ASSERT_EQ(wave.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(wave[i] != 0, HasRowEmbedding(catalog_, sources[i], target))
        << i;
  }
}

// --- SIMD backends: survivor lists and verdicts bit-identical ----------

TEST_F(HomKernelTest, FilterBackendsProduceIdenticalSurvivorLists) {
  // Every compiled-and-runnable backend must emit the scalar oracle's
  // candidate lists bit for bit: same survivors, same offsets, same
  // most-constrained order, same filter counters. This is the invariant
  // that makes backend choice invisible to verdicts and witnesses.
  const std::vector<SimdBackend> backends = AvailableSimdBackends();
  ASSERT_FALSE(backends.empty());
  ASSERT_EQ(backends.front(), SimdBackend::kScalar);
  Random rng(31415);
  std::size_t nonempty_lists = 0;
  for (int round = 0; round < 120; ++round) {
    const Tableau a = RandomTableau(rng, 4);
    const Tableau b = rng.Chance(0.5) ? RandomTableau(rng, 5)
                                      : RenamedCopy(RandomTableau(rng, 4), 50);
    if (a.universe() != b.universe()) continue;
    const SoaTemplate from = SoaTemplate::Lower(a);
    const SoaTemplate to = SoaTemplate::Lower(b);
    for (const HomMode mode :
         {HomMode::kHomomorphism, HomMode::kRowEmbedding}) {
      HomScratch scalar;
      scalar.backend = SimdBackend::kScalar;
      const std::int64_t scalar_survivors =
          SoaBuildCandidates(from, to, mode, scalar);
      if (scalar_survivors > 0) ++nonempty_lists;
      for (std::size_t bi = 1; bi < backends.size(); ++bi) {
        SCOPED_TRACE(StrCat("round=", round, " backend=",
                            SimdBackendName(backends[bi])));
        HomScratch vec;
        vec.backend = backends[bi];
        EXPECT_EQ(SoaBuildCandidates(from, to, mode, vec), scalar_survivors);
        EXPECT_EQ(vec.candidates, scalar.candidates);
        EXPECT_EQ(vec.cand_begin, scalar.cand_begin);
        EXPECT_EQ(vec.order, scalar.order);
        EXPECT_EQ(vec.filter.counters, scalar.filter.counters);
      }
    }
  }
  EXPECT_GE(nonempty_lists, 40u);  // The corpus must exercise survivors.
}

TEST_F(HomKernelTest, FilterBackendsAgreeOnReduceProbesAndWaves) {
  const std::vector<SimdBackend> backends = AvailableSimdBackends();
  Random rng(2718);
  for (int round = 0; round < 60; ++round) {
    const Tableau t = RandomTableau(rng, 4);
    const SoaTemplate soa = SoaTemplate::Lower(t);
    // The all-n-drops sweep must agree with per-drop probes on every
    // backend — and across backends.
    std::optional<std::int32_t> expected_sweep;
    for (const SimdBackend backend : backends) {
      SCOPED_TRACE(StrCat("round=", round, " backend=",
                          SimdBackendName(backend)));
      HomScratch scratch;
      scratch.backend = backend;
      const std::int32_t sweep = SoaReduceSweep(soa, scratch);
      std::int32_t probe = -1;
      for (std::int32_t drop = 0; drop < soa.num_rows(); ++drop) {
        if (SoaReduceProbe(soa, drop, scratch)) {
          probe = drop;
          break;
        }
      }
      EXPECT_EQ(sweep, probe);
      if (!expected_sweep.has_value()) {
        expected_sweep = sweep;
      } else {
        EXPECT_EQ(sweep, *expected_sweep);
      }
    }
  }
  // Waves: phase-1 prefilter + phase-2 searches match scalar verdicts on
  // every backend.
  const Tableau target = T("r * s * t * u");
  const SoaTemplate target_soa = SoaTemplate::Lower(target);
  std::vector<Tableau> sources;
  std::vector<SoaTemplate> lowered;
  for (int i = 0; i < 16; ++i) {
    sources.push_back(RandomTableau(rng, 3));
    lowered.push_back(SoaTemplate::Lower(sources.back()));
  }
  std::vector<const SoaTemplate*> pointers;
  for (const SoaTemplate& soa : lowered) pointers.push_back(&soa);
  for (const HomMode mode : {HomMode::kHomomorphism, HomMode::kRowEmbedding}) {
    std::optional<std::vector<char>> expected_wave;
    for (const SimdBackend backend : backends) {
      SCOPED_TRACE(StrCat("mode=", static_cast<int>(mode), " backend=",
                          SimdBackendName(backend)));
      HomScratch scratch;
      scratch.backend = backend;
      const std::vector<char> wave =
          SoaSearchWave(pointers, target_soa, mode, scratch);
      for (std::size_t i = 0; i < sources.size(); ++i) {
        EXPECT_EQ(wave[i] != 0,
                  SoaSearch(lowered[i], target_soa, mode, scratch, nullptr))
            << i;
      }
      if (!expected_wave.has_value()) {
        expected_wave = wave;
      } else {
        EXPECT_EQ(wave, *expected_wave);
      }
    }
  }
}

// --- Engine level: SoA vs legacy kernels, threads {1,2,8} --------------

/// Asserts counter identity between two engine runs. With `exact` every
/// field must match — valid only for runs whose scheduling is
/// deterministic (threads=1). Under real parallelism the comparison drops
/// the fingerprint-set-sensitive fields: when two equivalent-but-distinct
/// candidates intern concurrently, whichever wins the race becomes the
/// class representative, and every later expansion is substituted from
/// that representative — so the *set* of template fingerprints flowing
/// through the reduce/key caches (and with it their run/entry counts,
/// intern fast-path hits, and confirm scans) can shift by ±1 collision
/// accidents between any two parallel runs, including two runs of the
/// same kernel. Request totals are per-call and the remaining caches key
/// on interned class ids, which relabel bijectively when representatives
/// swap, so those counters are scheduling-invariant and stay compared.
void ExpectSameStats(const EngineStats& soa, const EngineStats& legacy_stats,
                     bool exact) {
  const auto same = [exact](const CacheCounters& a, const CacheCounters& b,
                            bool fingerprint_keyed, const char* which) {
    EXPECT_EQ(a.requests, b.requests) << which;
    if (exact || !fingerprint_keyed) {
      EXPECT_EQ(a.runs, b.runs) << which;
      EXPECT_EQ(a.entries, b.entries) << which;
      EXPECT_EQ(a.evictions, b.evictions) << which;
    }
  };
  same(soa.reduce, legacy_stats.reduce, /*fingerprint_keyed=*/true, "reduce");
  same(soa.canonical_key, legacy_stats.canonical_key,
       /*fingerprint_keyed=*/true, "canonical_key");
  same(soa.homomorphism, legacy_stats.homomorphism,
       /*fingerprint_keyed=*/false, "homomorphism");
  same(soa.row_embedding, legacy_stats.row_embedding,
       /*fingerprint_keyed=*/false, "row_embedding");
  same(soa.expansion, legacy_stats.expansion, /*fingerprint_keyed=*/false,
       "expansion");
  same(soa.verdict, legacy_stats.verdict, /*fingerprint_keyed=*/false,
       "verdict");
  same(soa.dominance, legacy_stats.dominance, /*fingerprint_keyed=*/false,
       "dominance");
  EXPECT_EQ(soa.intern_requests, legacy_stats.intern_requests);
  EXPECT_EQ(soa.interned_classes, legacy_stats.interned_classes);
  if (exact) {
    EXPECT_EQ(soa.intern_hits, legacy_stats.intern_hits);
    EXPECT_EQ(soa.equivalence_confirms, legacy_stats.equivalence_confirms);
  }
}

class EngineDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", u_));
    base_ = DbSchema(catalog_, {r_});
    w1_ = Unwrap(catalog_.AddRelation("w1", catalog_.MakeScheme({"A", "B"})));
    w2_ = Unwrap(catalog_.AddRelation("w2", catalog_.MakeScheme({"B", "C"})));
    w3_ = Unwrap(catalog_.AddRelation("w3", catalog_.MakeScheme({"A", "B"})));
    // The equivalence test's view relation, minted once here so every
    // workload run sees an identical catalog.
    l_ = catalog_.MintRelation("l", u_);
    view_ = Unwrap(View::Create(
        &catalog_, base_,
        {{w1_, MustParse(catalog_, "pi{A,B}(r)")},
         {w2_, MustParse(catalog_, "pi{B,C}(r)")},
         {w3_, MustParse(catalog_, "pi{A,B}(r)")}},
        "W"));
  }

  static EngineOptions KernelOptions(
      bool use_soa, SimdBackend backend = DefaultSimdBackend()) {
    EngineOptions options;
    options.use_soa_kernel = use_soa;
    options.simd = backend;
    return options;
  }

  /// Runs the full mixed workload — membership (enumeration + canonical
  /// paths, repeated for warmth), view equivalence, redundancy
  /// elimination — on one engine and returns (stats, observable outcome
  /// rendering).
  std::pair<EngineStats, std::string> RunWorkload(
      bool use_soa, std::size_t threads,
      SimdBackend backend = DefaultSimdBackend()) {
    Engine engine(&catalog_, KernelOptions(use_soa, backend));
    SearchLimits limits;
    limits.threads = threads;
    std::string log;
    for (int repeat = 0; repeat < 2; ++repeat) {
      CapacityOracle oracle(&engine, *view_, limits);
      for (const char* query :
           {"pi{A}(r) * pi{C}(r)", "r", "pi{A,B}(r) * pi{B,C}(r)"}) {
        MembershipResult m =
            Unwrap(oracle.Contains(MustParse(catalog_, query)));
        log += StrCat(query, "=>", m.member ? 1 : 0, ",",
                      m.candidates_tried, ",",
                      m.witness == nullptr
                          ? std::string("<none>")
                          : ToString(*m.witness, catalog_),
                      ";");
      }
    }
    View v = Unwrap(View::Create(
        &catalog_, base_,
        {{l_, MustParse(catalog_, "pi{A,B}(r) * pi{B,C}(r)")}}, "V"));
    EquivalenceResult eq = Unwrap(AreEquivalent(engine, v, *view_, limits));
    log += StrCat("eq=>", eq.equivalent ? 1 : 0, ";");
    NonredundantViewResult nr =
        Unwrap(MakeNonredundant(engine, *view_, limits));
    log += StrCat("kept=>");
    for (std::size_t k : nr.kept) log += StrCat(k, ",");
    return {engine.Stats(), log};
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel, w1_ = kInvalidRel, w2_ = kInvalidRel,
        w3_ = kInvalidRel, l_ = kInvalidRel;
  DbSchema base_;
  std::optional<View> view_;
};

TEST_F(EngineDifferentialTest, SoaAndLegacyEnginesAgreeForEveryThreadCount) {
  std::optional<std::pair<EngineStats, std::string>> reference;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(StrCat("threads=", threads));
    auto soa = RunWorkload(/*use_soa=*/true, threads);
    auto legacy_run = RunWorkload(/*use_soa=*/false, threads);
    // Same thread count, different kernels: identical outcomes AND
    // identical engine counters (the kernels sit below every counter).
    // At threads=1 the whole run is deterministic, so every field must
    // match bit for bit; parallel runs compare the scheduling-invariant
    // subset (see ExpectSameStats).
    EXPECT_EQ(soa.second, legacy_run.second);
    {
      SCOPED_TRACE("soa-vs-legacy");
      ExpectSameStats(soa.first, legacy_run.first, /*exact=*/threads == 1);
    }
    // And the SoA *outcomes* are thread-count invariant. (Cache request
    // counters are not compared across thread counts: concurrent level
    // scans evaluate a timing-dependent number of items past the stop
    // index speculatively, so raw cache traffic may differ even though
    // every observed verdict, witness and candidates_tried is identical.)
    if (!reference.has_value()) {
      reference = soa;
    } else {
      EXPECT_EQ(soa.second, reference->second);
    }
  }
}

TEST_F(EngineDifferentialTest, SimdBackendsAgreeForEveryThreadCount) {
  // Engine-level backend invariance: the full mixed workload must produce
  // identical outcomes and scheduling-invariant counters on every
  // runnable SIMD backend, at every thread count. At threads=1 the
  // filter counters themselves must match bit for bit across backends
  // (same searches, same candidate lists — only the lanes differ).
  const std::vector<SimdBackend> backends = AvailableSimdBackends();
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    std::optional<std::pair<EngineStats, std::string>> scalar_run;
    for (const SimdBackend backend : backends) {
      SCOPED_TRACE(StrCat("threads=", threads, " backend=",
                          SimdBackendName(backend)));
      auto run = RunWorkload(/*use_soa=*/true, threads, backend);
      // The engine accumulates filter work in exactly its resolved
      // backend's stats slot.
      const std::size_t slot = SimdBackendIndex(backend);
      EXPECT_GT(run.first.filter[slot].invocations, 0u);
      EXPECT_GE(run.first.filter[slot].rows, run.first.filter[slot].survivors);
      for (std::size_t b = 0; b < kNumSimdBackends; ++b) {
        if (b != slot) EXPECT_EQ(run.first.filter[b].invocations, 0u) << b;
      }
      if (!scalar_run.has_value()) {
        scalar_run = run;
        continue;
      }
      EXPECT_EQ(run.second, scalar_run->second);
      ExpectSameStats(run.first, scalar_run->first, /*exact=*/threads == 1);
      if (threads == 1) {
        const std::size_t scalar_slot = SimdBackendIndex(backends.front());
        EXPECT_EQ(run.first.filter[slot].invocations,
                  scalar_run->first.filter[scalar_slot].invocations);
        EXPECT_EQ(run.first.filter[slot].rows,
                  scalar_run->first.filter[scalar_slot].rows);
        EXPECT_EQ(run.first.filter[slot].survivors,
                  scalar_run->first.filter[scalar_slot].survivors);
      }
    }
  }
}

TEST_F(EngineDifferentialTest, RowEmbedsBatchMatchesScalarAndCounters) {
  Engine engine(&catalog_);
  std::vector<TableauId> ids;
  for (const char* text :
       {"pi{A,B}(r)", "pi{B,C}(r)", "pi{A}(r)", "pi{A,B}(r) * pi{B,C}(r)"}) {
    ids.push_back(engine.Intern(
        MustBuildTableau(catalog_, u_, *MustParse(catalog_, text))));
  }
  const TableauId target = ids.back();
  const std::vector<char> batch = engine.RowEmbedsBatch(ids, target);
  const EngineStats after_batch = engine.Stats();
  ASSERT_EQ(batch.size(), ids.size());
  // Scalar replay: verdicts identical, and every probe now hits the cache
  // (same keys), so runs stay flat while requests double.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(batch[i] != 0, engine.RowEmbeds(ids[i], target)) << i;
  }
  const EngineStats after_scalar = engine.Stats();
  EXPECT_EQ(after_batch.row_embedding.requests, ids.size());
  EXPECT_EQ(after_scalar.row_embedding.requests, 2 * ids.size());
  EXPECT_EQ(after_scalar.row_embedding.runs, after_batch.row_embedding.runs);
}

TEST_F(EngineDifferentialTest, SoaFormIsCachedPerClass) {
  Engine engine(&catalog_);
  const Tableau t =
      MustBuildTableau(catalog_, u_, *MustParse(catalog_, "pi{A,B}(r)"));
  const TableauId id = engine.Intern(t);
  const SoaTemplate& soa = engine.SoaForm(id);
  EXPECT_EQ(soa.num_rows(),
            static_cast<std::int32_t>(engine.Representative(id).size()));
  // Interning an equivalent form lands in the same class; the cached SoA
  // form is the same object.
  const TableauId again = engine.Intern(
      MustBuildTableau(catalog_, u_, *MustParse(catalog_, "pi{A,B}(r * r)")));
  EXPECT_EQ(again, id);
  EXPECT_EQ(&engine.SoaForm(again), &soa);
}

}  // namespace
}  // namespace viewcap
