// Tests for views/components.h and views/essential.h: Figure 2 and
// Examples 3.2.1/3.2.2 reproduced, plus the Corollary 3.3.6 certificate.
#include <gtest/gtest.h>

#include "algebra/parser.h"
#include "tableau/build.h"
#include "tableau/homomorphism.h"
#include "tableau/substitution.h"
#include "tests/test_util.h"
#include "views/essential.h"
#include "views/redundancy.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Row;
using testing::Unwrap;

// The Figure 2 setting. U = {A,B,C}; eta1:AB, eta2:ABC are the database
// schema; lambda1:AB, lambda2:ABC, lambda3:ABC are the construction-level
// names; B = {S, T} with
//   S = { sigma1 = (0A,0B,c1):eta1 }
//   T = { tau1 = (0A,b1,c2):eta1, tau2 = (a1,b1,0C):eta2,
//         tau3 = (a2,0B,0C):eta2 }
//   E = { eps1 = (0A,b2,c3):lambda1, eps2 = (a3,b2,0C):lambda2,
//         eps3 = (a4,0B,0C):lambda3 }
//   beta(lambda1) = S, beta(lambda2) = beta(lambda3) = T.
class Figure2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    ab_ = catalog_.MakeScheme({"A", "B"});
    eta1_ = Unwrap(catalog_.AddRelation("eta1", ab_));
    eta2_ = Unwrap(catalog_.AddRelation("eta2", u_));
    lambda1_ = Unwrap(catalog_.AddRelation("lambda1", ab_));
    lambda2_ = Unwrap(catalog_.AddRelation("lambda2", u_));
    lambda3_ = Unwrap(catalog_.AddRelation("lambda3", u_));

    s_ = Unwrap(Tableau::Create(
        catalog_, u_, {Row(catalog_, u_, "eta1", {"0", "0", "c1"})}));
    t_ = Unwrap(Tableau::Create(
        catalog_, u_,
        {Row(catalog_, u_, "eta1", {"0", "b1", "c2"}),
         Row(catalog_, u_, "eta2", {"a1", "b1", "0"}),
         Row(catalog_, u_, "eta2", {"a2", "0", "0"})}));
    e_ = Unwrap(Tableau::Create(
        catalog_, u_,
        {Row(catalog_, u_, "lambda1", {"0", "b2", "c3"}),
         Row(catalog_, u_, "lambda2", {"a3", "b2", "0"}),
         Row(catalog_, u_, "lambda3", {"a4", "0", "0"})}));
    beta_.emplace(lambda1_, *s_);
    beta_.emplace(lambda2_, *t_);
    beta_.emplace(lambda3_, *t_);

    // Row indices in T's sorted order: tau1 < tau2 < tau3.
    tau1_ = 0;
    tau2_ = 1;
    tau3_ = 2;
  }

  // Builds the Figure 2 exhibited construction (E -> beta, f).
  ExhibitedConstruction MakeConstruction() {
    SymbolPool pool;
    SubstitutionOutcome outcome =
        Unwrap(Substitute(catalog_, *e_, beta_, pool));
    // E -> beta realizes T's mapping (it is a construction of T).
    EXPECT_TRUE(EquivalentTableaux(catalog_, outcome.result, *t_));
    std::optional<SymbolMap> hom =
        FindHomomorphism(catalog_, *t_, outcome.result);
    EXPECT_TRUE(hom.has_value());
    return ExhibitedConstruction{nullptr, *e_, beta_, std::move(outcome),
                                 std::move(*hom)};
  }

  // Query-set form of B = {S, T} for the oracle-driven classifications.
  QuerySet MakeQuerySet() {
    RelId hs = catalog_.MintRelation("h_s", ab_);
    RelId ht = catalog_.MintRelation("h_t", u_);
    return Unwrap(QuerySet::Create(
        &catalog_, u_,
        {QuerySet::Member{hs, *s_}, QuerySet::Member{ht, *t_}}));
  }

  Catalog catalog_;
  AttrSet u_, ab_;
  RelId eta1_ = kInvalidRel, eta2_ = kInvalidRel;
  RelId lambda1_ = kInvalidRel, lambda2_ = kInvalidRel,
        lambda3_ = kInvalidRel;
  std::optional<Tableau> s_, t_, e_;
  TemplateAssignment beta_;
  std::size_t tau1_ = 0, tau2_ = 0, tau3_ = 0;
};

TEST_F(Figure2Test, ConnectedComponents) {
  // Example 3.2.1 coda: {tau1, tau2} (linked by b1) and {tau3}.
  std::vector<std::vector<std::size_t>> components = ConnectedComponents(*t_);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], (std::vector<std::size_t>{tau1_, tau2_}));
  EXPECT_EQ(components[1], (std::vector<std::size_t>{tau3_}));
  EXPECT_EQ(ComponentTrs(*t_, components[0]),
            catalog_.MakeScheme({"A", "C"}));
  EXPECT_EQ(ComponentTrs(*t_, components[1]),
            catalog_.MakeScheme({"B", "C"}));
}

TEST_F(Figure2Test, SubstitutionHasSevenRows) {
  ExhibitedConstruction c = MakeConstruction();
  EXPECT_EQ(c.substitution.result.size(), 7u);  // 1 + 3 + 3 (Figure 2d).
}

TEST_F(Figure2Test, ImmediateDescendants) {
  // Example 3.2.1: tau1 has no immediate descendant (its child sigma1 is a
  // non-T-block child); the immediate descendant of tau2 is tau3; tau3's
  // is tau3.
  ExhibitedConstruction c = MakeConstruction();
  DescendantAnalysis analysis = AnalyzeDescendants(*t_, *t_, c);
  EXPECT_FALSE(analysis.immediate_descendant[tau1_].has_value());
  ASSERT_TRUE(analysis.immediate_descendant[tau2_].has_value());
  EXPECT_EQ(*analysis.immediate_descendant[tau2_], tau3_);
  ASSERT_TRUE(analysis.immediate_descendant[tau3_].has_value());
  EXPECT_EQ(*analysis.immediate_descendant[tau3_], tau3_);
}

TEST_F(Figure2Test, LineagesAndSelfDescendence) {
  // "The lineage of tau1 is null while the lineage of tau2 and tau3 is
  //  tau3, tau3, ...; clearly tau3 is self-descendent."
  ExhibitedConstruction c = MakeConstruction();
  DescendantAnalysis analysis = AnalyzeDescendants(*t_, *t_, c);
  EXPECT_TRUE(Lineage(analysis, tau1_).empty());
  std::vector<std::size_t> l2 = Lineage(analysis, tau2_);
  ASSERT_FALSE(l2.empty());
  EXPECT_EQ(l2.front(), tau3_);
  EXPECT_FALSE(IsSelfDescendent(analysis, tau1_));
  EXPECT_FALSE(IsSelfDescendent(analysis, tau2_));
  EXPECT_TRUE(IsSelfDescendent(analysis, tau3_));
}

TEST_F(Figure2Test, Tau3IsEssentialByUniqueness) {
  // Example 3.2.2: tau3 is the only tagged tuple in B containing both 0_B
  // and 0_C, hence essential.
  QuerySet set = MakeQuerySet();
  EssentialResult result =
      Unwrap(ClassifyEssential(&catalog_, set, /*member=*/1, tau3_));
  EXPECT_EQ(result.verdict, EssentialVerdict::kEssential);
}

TEST_F(Figure2Test, Tau1AndTau2AreNotEssential) {
  // The Figure 2 construction itself witnesses non-self-descendence for
  // tau1 and tau2, so neither is essential (Proposition 3.2.5). The
  // bounded refutation search must find such a construction.
  QuerySet set = MakeQuerySet();
  EssentialResult r1 =
      Unwrap(ClassifyEssential(&catalog_, set, 1, tau1_, SearchLimits{},
                               /*max_constructions=*/128));
  EXPECT_EQ(r1.verdict, EssentialVerdict::kNotEssential) << r1.reason;
  EssentialResult r2 =
      Unwrap(ClassifyEssential(&catalog_, set, 1, tau2_, SearchLimits{},
                               /*max_constructions=*/128));
  EXPECT_EQ(r2.verdict, EssentialVerdict::kNotEssential) << r2.reason;
}

TEST_F(Figure2Test, EssentialComponentCertifiesNonredundancy) {
  // {tau3} is an essential connected component of T; Corollary 3.2.6 then
  // gives nonredundancy of T in B, which the oracle confirms directly.
  QuerySet set = MakeQuerySet();
  std::optional<std::vector<std::size_t>> component =
      Unwrap(FindEssentialComponent(&catalog_, set, 1, SearchLimits{}, 128));
  ASSERT_TRUE(component.has_value());
  EXPECT_EQ(*component, (std::vector<std::size_t>{tau3_}));
  EXPECT_FALSE(Unwrap(IsRedundant(&catalog_, set, 1)).redundant);
}

TEST_F(Figure2Test, SigmaIsEssentialSoSIsNonredundant) {
  QuerySet set = MakeQuerySet();
  EssentialResult r =
      Unwrap(ClassifyEssential(&catalog_, set, /*member=*/0, 0));
  EXPECT_EQ(r.verdict, EssentialVerdict::kEssential);
  EXPECT_FALSE(Unwrap(IsRedundant(&catalog_, set, 0)).redundant);
}

TEST_F(Figure2Test, TrivialConstructionKeepsEverythingSelfDescendent) {
  // The identity construction {(t, handle)} -> beta routes every row of T
  // through itself: all rows self-descendent.
  RelId handle = catalog_.MintRelation("h_id", u_);
  Tuple leaf_tuple = Tuple::AllDistinguished(u_);
  Tableau leaf = Unwrap(
      Tableau::Create(catalog_, u_, {TaggedTuple{handle, leaf_tuple}}));
  TemplateAssignment beta{{handle, *t_}};
  SymbolPool pool;
  SubstitutionOutcome outcome =
      Unwrap(Substitute(catalog_, leaf, beta, pool));
  ASSERT_TRUE(EquivalentTableaux(catalog_, outcome.result, *t_));
  std::optional<SymbolMap> hom =
      FindHomomorphism(catalog_, *t_, outcome.result);
  ASSERT_TRUE(hom.has_value());
  ExhibitedConstruction c{nullptr, leaf, beta, std::move(outcome),
                          std::move(*hom)};
  DescendantAnalysis analysis = AnalyzeDescendants(*t_, *t_, c);
  for (std::size_t i = 0; i < t_->size(); ++i) {
    EXPECT_TRUE(IsSelfDescendent(analysis, i)) << "row " << i;
  }
}

TEST_F(Figure2Test, Theorem339EssentialDescendantsConstruction) {
  // Theorem 3.3.9: for the nonredundant set B = {S, T} and the query
  // Q = T, there is an exhibited construction under which every immediate
  // descendant (w.r.t. T) of a row of Q is an essential tagged tuple of T
  // — here, lands in {tau3}.
  QuerySet set = MakeQuerySet();
  CapacityOracle oracle(&catalog_, set);
  std::vector<ExhibitedConstruction> constructions =
      Unwrap(oracle.FindConstructions(*t_, 64));
  ASSERT_FALSE(constructions.empty());
  bool found = false;
  for (const ExhibitedConstruction& c : constructions) {
    DescendantAnalysis analysis = AnalyzeDescendants(*t_, *t_, c);
    bool all_essential = true;
    for (const std::optional<std::size_t>& descendant :
         analysis.immediate_descendant) {
      if (descendant.has_value() && *descendant != tau3_) {
        all_essential = false;
        break;
      }
    }
    if (all_essential) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(Figure2Test, ComponentsOfDisconnectedTemplate) {
  // A join of fully projected atoms has one component per row.
  Tableau t = MustBuildTableau(
      catalog_, u_,
      *MustParse(catalog_, "pi{A}(eta1) * pi{B}(eta2) * pi{C}(eta2)"));
  EXPECT_EQ(ConnectedComponents(t).size(), 3u);
}

TEST_F(Figure2Test, ErrorsOnBadIndices) {
  QuerySet set = MakeQuerySet();
  EXPECT_FALSE(ClassifyEssential(&catalog_, set, 9, 0).ok());
  EXPECT_FALSE(ClassifyEssential(&catalog_, set, 1, 9).ok());
  EXPECT_FALSE(FindEssentialComponent(&catalog_, set, 9).ok());
}

}  // namespace
}  // namespace viewcap
