// Tests for tableau/recognize.h: Proposition 2.4.6 (expression-template
// recognition) and tableau-based expression minimization.
#include <gtest/gtest.h>

#include "algebra/parser.h"
#include "algebra/printer.h"
#include "relation/generator.h"
#include "algebra/eval.h"
#include "tableau/build.h"
#include "tableau/homomorphism.h"
#include "tableau/recognize.h"
#include "tableau/reduce.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Row;
using testing::Unwrap;

class RecognizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
  }

  Tableau T(const std::string& text) {
    return MustBuildTableau(catalog_, u_, *MustParse(catalog_, text));
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel;
};

TEST_F(RecognizeTest, RecognizesAlgorithmOutputs) {
  // Every Algorithm 2.1.1 output is an expression template; recognition
  // must find a realizer equivalent to it.
  const char* cases[] = {"r", "pi{A}(r)", "r * s", "pi{A, C}(r * s)",
                         "pi{A, B}(r) * pi{B, C}(s)"};
  for (const char* text : cases) {
    Tableau t = T(text);
    RecognitionResult result =
        Unwrap(RecognizeExpressionTemplate(catalog_, t));
    ASSERT_NE(result.expression, nullptr) << text;
    Tableau realized = MustBuildTableau(catalog_, u_, *result.expression);
    EXPECT_TRUE(EquivalentTableaux(catalog_, realized, t)) << text;
  }
}

TEST_F(RecognizeTest, RejectsZigzagTemplate) {
  // The canonical non-PJ-expressible tableau over a binary relation: the
  // length-3 zigzag
  //   (0_A, b1), (a1, b1), (a1, 0_B)   all tagged r over U = {A, B}
  // ("x, y such that x -R- b -R^-1- a -R- y"). Without renaming,
  // projection and join cannot chain r with itself through alternating
  // attributes, so no realizer exists; the recognizer exhausts its space
  // and reports a clean negative.
  Catalog catalog;
  AttrSet ab = catalog.MakeScheme({"A", "B"});
  Unwrap(catalog.AddRelation("r", ab));
  Tableau zigzag = Unwrap(Tableau::Create(
      catalog, ab,
      {Row(catalog, ab, "r", {"0", "b1"}),
       Row(catalog, ab, "r", {"a1", "b1"}),
       Row(catalog, ab, "r", {"a1", "0"})}));
  ASSERT_TRUE(IsReduced(catalog, zigzag));

  RecognitionResult result =
      Unwrap(RecognizeExpressionTemplate(catalog, zigzag));
  EXPECT_EQ(result.expression, nullptr);
  EXPECT_FALSE(result.budget_exhausted);
}

TEST_F(RecognizeTest, StarvedBudgetIsReported) {
  // A template the canonical fast path cannot answer (the zigzag) under a
  // zero-candidate cap: the inconclusive verdict must be flagged.
  Catalog catalog;
  AttrSet ab = catalog.MakeScheme({"A", "B"});
  Unwrap(catalog.AddRelation("r", ab));
  Tableau zigzag = Unwrap(Tableau::Create(
      catalog, ab,
      {Row(catalog, ab, "r", {"0", "b1"}),
       Row(catalog, ab, "r", {"a1", "b1"}),
       Row(catalog, ab, "r", {"a1", "0"})}));
  SearchLimits starved;
  starved.max_candidates = 0;
  RecognitionResult result =
      Unwrap(RecognizeExpressionTemplate(catalog, zigzag, starved));
  EXPECT_EQ(result.expression, nullptr);
  EXPECT_TRUE(result.budget_exhausted);
}

TEST_F(RecognizeTest, RecognizesUpToEquivalenceNotSyntax) {
  // The found realizer need not be syntactically the source expression.
  Tableau t = T("pi{A, B}(r * s) * r");
  RecognitionResult result =
      Unwrap(RecognizeExpressionTemplate(catalog_, t));
  ASSERT_NE(result.expression, nullptr);
  // t reduces to 2 rows; the realizer has at most 2 leaves.
  EXPECT_LE(result.expression->LeafCount(), 2u);
  EXPECT_TRUE(EquivalentTableaux(
      catalog_, MustBuildTableau(catalog_, u_, *result.expression), t));
}

TEST_F(RecognizeTest, MinimizeCollapsesSelfJoins) {
  ExprPtr bloated = MustParse(catalog_, "r * r * r");
  MinimizeResult result =
      Unwrap(MinimizeExpression(catalog_, u_, bloated));
  EXPECT_EQ(result.leaves_before, 3u);
  EXPECT_EQ(result.leaves_after, 1u);
  EXPECT_TRUE(result.minimal);
  EXPECT_TRUE(EquivalentTableaux(
      catalog_, MustBuildTableau(catalog_, u_, *result.expression),
      MustBuildTableau(catalog_, u_, *bloated)));
}

TEST_F(RecognizeTest, MinimizeRemovesSubsumedSemijoins) {
  // pi_AB(r * s) * (r * s): the projected copy is subsumed by the full
  // join; minimal realization has 2 leaves.
  ExprPtr bloated = MustParse(catalog_, "pi{A, B}(r * s) * (r * s)");
  MinimizeResult result =
      Unwrap(MinimizeExpression(catalog_, u_, bloated));
  EXPECT_EQ(result.leaves_before, 4u);
  EXPECT_EQ(result.leaves_after, 2u);
  EXPECT_TRUE(result.minimal);
}

TEST_F(RecognizeTest, MinimizeKeepsAlreadyMinimal) {
  for (const char* text : {"r", "r * s", "pi{A, C}(r * s)"}) {
    ExprPtr e = MustParse(catalog_, text);
    MinimizeResult result = Unwrap(MinimizeExpression(catalog_, u_, e));
    EXPECT_EQ(result.leaves_after, e->LeafCount()) << text;
    EXPECT_TRUE(result.minimal) << text;
  }
}

TEST_F(RecognizeTest, MinimizePreservesSemanticsOnRandomInstances) {
  const char* cases[] = {
      "r * r * s",
      "pi{A, B}(r * s) * (r * s) * pi{B}(s)",
      "pi{A}(r) * r * s",
  };
  DbSchema schema(catalog_, {r_, s_});
  InstanceOptions options;
  options.tuples_per_relation = 5;
  options.domain_size = 3;
  InstanceGenerator generator(&catalog_, options);
  Random rng(77);
  for (const char* text : cases) {
    ExprPtr e = MustParse(catalog_, text);
    MinimizeResult result = Unwrap(MinimizeExpression(catalog_, u_, e));
    EXPECT_LE(result.leaves_after, result.leaves_before);
    for (int trial = 0; trial < 10; ++trial) {
      Instantiation alpha = generator.Generate(schema, rng);
      EXPECT_EQ(Evaluate(*result.expression, alpha), Evaluate(*e, alpha))
          << text;
    }
  }
}

TEST_F(RecognizeTest, MinimizeRejectsNullAndForeign) {
  EXPECT_FALSE(MinimizeExpression(catalog_, u_, nullptr).ok());
}

}  // namespace
}  // namespace viewcap
