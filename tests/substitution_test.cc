// Tests for tableau/substitution.h: Figure 1 / Example 2.2.2 reproduced
// cell-for-cell, the Theorem 2.2.3 semantic property, and error paths.
#include <gtest/gtest.h>

#include "algebra/parser.h"
#include "relation/generator.h"
#include "tableau/build.h"
#include "tableau/evaluate.h"
#include "tableau/homomorphism.h"
#include "tableau/reduce.h"
#include "tableau/substitution.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Row;
using testing::Unwrap;

// The Figure 1 setting: U = {A,B,C}; eta1:AB, eta2/eta3/eta4:ABC.
class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    ab_ = catalog_.MakeScheme({"A", "B"});
    eta1_ = Unwrap(catalog_.AddRelation("eta1", ab_));
    eta2_ = Unwrap(catalog_.AddRelation("eta2", u_));
    eta3_ = Unwrap(catalog_.AddRelation("eta3", u_));
    eta4_ = Unwrap(catalog_.AddRelation("eta4", u_));
    a_ = Unwrap(catalog_.FindAttribute("A"));
    b_ = Unwrap(catalog_.FindAttribute("B"));
    c_ = Unwrap(catalog_.FindAttribute("C"));

    // T = { tau1=(0A,b1,c1):eta1, tau2=(a1,0B,c2):eta2,
    //       tau3=(a1,b2,0C):eta2 }.
    t_ = Unwrap(Tableau::Create(
        catalog_, u_,
        {Row(catalog_, u_, "eta1", {"0", "b1", "c1"}),
         Row(catalog_, u_, "eta2", {"a1", "0", "c2"}),
         Row(catalog_, u_, "eta2", {"a1", "b2", "0"})}));
    // S1 = { (a3,0B,c3):eta3, (0A,b3,c3):eta3 }, TRS = {A,B} = R(eta1).
    s1_ = Unwrap(Tableau::Create(
        catalog_, u_,
        {Row(catalog_, u_, "eta3", {"a3", "0", "c3"}),
         Row(catalog_, u_, "eta3", {"0", "b3", "c3"})}));
    // S2 = { (0A,0B,c4):eta4, (a4,b4,0C):eta4 }, TRS = {A,B,C} = R(eta2).
    s2_ = Unwrap(Tableau::Create(
        catalog_, u_,
        {Row(catalog_, u_, "eta4", {"0", "0", "c4"}),
         Row(catalog_, u_, "eta4", {"a4", "b4", "0"})}));
    beta_.emplace(eta1_, *s1_);
    beta_.emplace(eta2_, *s2_);
  }

  Catalog catalog_;
  AttrSet u_, ab_;
  RelId eta1_ = kInvalidRel, eta2_ = kInvalidRel, eta3_ = kInvalidRel,
        eta4_ = kInvalidRel;
  AttrId a_ = 0, b_ = 0, c_ = 0;
  std::optional<Tableau> t_, s1_, s2_;
  TemplateAssignment beta_;
};

TEST_F(Figure1Test, SubstitutionShape) {
  SymbolPool pool;
  SubstitutionOutcome outcome =
      Unwrap(Substitute(catalog_, *t_, beta_, pool));
  // Six rows: |S1| for tau1 + |S2| for tau2 + |S2| for tau3 (Figure 1).
  EXPECT_EQ(outcome.result.size(), 6u);
  ASSERT_EQ(outcome.blocks.size(), 3u);
  EXPECT_EQ(outcome.blocks[0].size(), 2u);
  EXPECT_EQ(outcome.blocks[1].size(), 2u);
  EXPECT_EQ(outcome.blocks[2].size(), 2u);
  VIEWCAP_EXPECT_OK(outcome.result.Validate(catalog_));
  // TRS(T -> beta) = TRS(T) = {A,B,C}.
  EXPECT_EQ(outcome.result.Trs(), u_);
  // RN(T -> beta) = {eta3, eta4}.
  EXPECT_EQ(outcome.result.RelNames(), (std::vector<RelId>{eta3_, eta4_}));
}

// Checks the six rows of Figure 1 cell-for-cell (up to the identity of
// marked symbols, which the figure denotes <tau, a>): distinguished
// symbols of S_i replaced by tau's values; nondistinguished marked fresh,
// equal within a block iff equal in S_i, never shared across blocks.
TEST_F(Figure1Test, SubstitutionCells) {
  SymbolPool pool;
  SubstitutionOutcome outcome =
      Unwrap(Substitute(catalog_, *t_, beta_, pool));

  const Symbol b1 = Symbol::Nondistinguished(b_, 1);
  const Symbol c2 = Symbol::Nondistinguished(c_, 2);
  const Symbol b2 = Symbol::Nondistinguished(b_, 2);
  const Symbol a1 = Symbol::Nondistinguished(a_, 1);

  // Block tau1 = <tau1, S1>: rows (<t1,a3>, b1, <t1,c3>) and
  // (0A, <t1,b3>, <t1,c3>), both tagged eta3; the two <t1,c3> marks agree.
  const auto& block1 = outcome.blocks[0];
  ASSERT_EQ(block1.size(), 2u);
  const TaggedTuple* row_m = nullptr;  // (mark, b1, mark)
  const TaggedTuple* row_d = nullptr;  // (0A, mark, mark)
  for (const TaggedTuple& row : block1) {
    EXPECT_EQ(row.rel, eta3_);
    if (row.tuple.At(a_).IsDistinguished()) {
      row_d = &row;
    } else {
      row_m = &row;
    }
  }
  ASSERT_NE(row_m, nullptr);
  ASSERT_NE(row_d, nullptr);
  EXPECT_EQ(row_m->tuple.At(b_), b1);             // 0_B -> tau1(B) = b1.
  EXPECT_FALSE(row_m->tuple.At(a_).IsDistinguished());  // a3 marked.
  EXPECT_FALSE(row_m->tuple.At(c_).IsDistinguished());  // c3 marked.
  EXPECT_EQ(row_m->tuple.At(c_), row_d->tuple.At(c_));  // Same c3 mark.
  EXPECT_FALSE(row_d->tuple.At(b_).IsDistinguished());  // b3 marked.
  EXPECT_NE(row_d->tuple.At(b_), b1);

  // Block tau2 = <tau2, S2>: rows (a1, 0B, <t2,c4>) and
  // (<t2,a4>, <t2,b4>, c2), tagged eta4.
  const auto& block2 = outcome.blocks[1];
  const TaggedTuple* row_b = nullptr;
  const TaggedTuple* row_c2 = nullptr;
  for (const TaggedTuple& row : block2) {
    EXPECT_EQ(row.rel, eta4_);
    if (row.tuple.At(b_).IsDistinguished()) {
      row_b = &row;
    } else {
      row_c2 = &row;
    }
  }
  ASSERT_NE(row_b, nullptr);
  ASSERT_NE(row_c2, nullptr);
  EXPECT_EQ(row_b->tuple.At(a_), a1);    // 0_A -> tau2(A) = a1.
  EXPECT_EQ(row_c2->tuple.At(c_), c2);   // 0_C -> tau2(C) = c2.

  // Block tau3: rows (a1, b2, <t3,c4>) and (<t3,a4>, <t3,b4>, 0C).
  const auto& block3 = outcome.blocks[2];
  const TaggedTuple* row_ab = nullptr;
  const TaggedTuple* row_0c = nullptr;
  for (const TaggedTuple& row : block3) {
    if (row.tuple.At(c_).IsDistinguished()) {
      row_0c = &row;
    } else {
      row_ab = &row;
    }
  }
  ASSERT_NE(row_ab, nullptr);
  ASSERT_NE(row_0c, nullptr);
  EXPECT_EQ(row_ab->tuple.At(a_), a1);  // Shared with block tau2!
  EXPECT_EQ(row_ab->tuple.At(b_), b2);

  // Marks are block-local: tau2's c4-mark differs from tau3's c4-mark.
  EXPECT_NE(row_b->tuple.At(c_), row_ab->tuple.At(c_));
}

// Example 2.2.2 coda: T == pi_A(eta1) |x| pi_BC(pi_AB(eta2) |x|
// pi_AC(eta2)), and T -> beta == pi_A(eta3) |x| pi_B(eta4) |x| pi_C(eta4).
TEST_F(Figure1Test, EquivalentExpressions) {
  ExprPtr t_expr = MustParse(
      catalog_, "pi{A}(eta1) * pi{B, C}(pi{A, B}(eta2) * pi{A, C}(eta2))");
  Tableau t_from_expr = MustBuildTableau(catalog_, u_, *t_expr);
  EXPECT_TRUE(EquivalentTableaux(catalog_, *t_, t_from_expr));

  SymbolPool pool;
  Tableau substituted =
      Unwrap(SubstituteTableau(catalog_, *t_, beta_, pool));
  ExprPtr result_expr =
      MustParse(catalog_, "pi{A}(eta3) * pi{B}(eta4) * pi{C}(eta4)");
  Tableau result_from_expr = MustBuildTableau(catalog_, u_, *result_expr);
  EXPECT_TRUE(
      EquivalentTableaux(catalog_, substituted, result_from_expr));
}

// Theorem 2.2.3: [T -> beta](alpha) = T(beta -> alpha) for every alpha.
TEST_F(Figure1Test, SubstitutionTheoremOnRandomInstances) {
  SymbolPool pool;
  Tableau substituted =
      Unwrap(SubstituteTableau(catalog_, *t_, beta_, pool));
  DbSchema schema(catalog_, {eta3_, eta4_});
  InstanceOptions options;
  options.tuples_per_relation = 5;
  options.domain_size = 3;
  InstanceGenerator generator(&catalog_, options);
  Random rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    Instantiation alpha = generator.Generate(schema, rng);
    Instantiation effect = ApplyAssignment(beta_, alpha);
    EXPECT_EQ(EvaluateTableau(substituted, alpha),
              EvaluateTableau(*t_, effect))
        << "trial " << trial;
  }
}

TEST_F(Figure1Test, MissingAssignmentIsNotFound) {
  TemplateAssignment partial;
  partial.emplace(eta1_, *s1_);
  SymbolPool pool;
  Result<Tableau> bad = SubstituteTableau(catalog_, *t_, partial, pool);
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST_F(Figure1Test, WrongTrsAssignmentIsIllFormed) {
  TemplateAssignment wrong;
  wrong.emplace(eta1_, *s2_);  // TRS {A,B,C} != R(eta1) = {A,B}.
  wrong.emplace(eta2_, *s2_);
  SymbolPool pool;
  Result<Tableau> bad = SubstituteTableau(catalog_, *t_, wrong, pool);
  EXPECT_EQ(bad.status().code(), StatusCode::kIllFormed);
}

TEST_F(Figure1Test, IdentitySubstitutionViaLeafTemplate) {
  // Section 2.3's trick: {(t, eta)} -> beta == beta(eta) when t is all
  // distinguished on R(eta).
  SymbolPool pool;
  Tableau leaf = Unwrap(Tableau::Create(
      catalog_, u_, {Row(catalog_, u_, "eta2", {"0", "0", "0"})}));
  Tableau substituted =
      Unwrap(SubstituteTableau(catalog_, leaf, beta_, pool));
  EXPECT_TRUE(EquivalentTableaux(catalog_, substituted, *s2_));
}

}  // namespace
}  // namespace viewcap
