// Metamorphic tests for viewcap-lint: properties that must hold across
// program transformations that cannot change what the rules mean.
//
// 1. Renaming invariance — findings (codes and their counts) are identical
//    under a consistent renaming of relations, attributes, views and
//    definitions: every rule reasons about structure, never about names.
// 2. Thread invariance — the sharded closure searches (SearchLimits::
//    threads) are a pure performance knob: the full diagnostic list
//    (codes, spans, messages, fix-its) is bit-identical for any count.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostics.h"
#include "lint/linter.h"

namespace viewcap {
namespace {

/// code -> occurrence count, the renaming-invariant fingerprint of a run.
std::map<std::string, std::size_t> CodeCounts(const LintResult& result) {
  std::map<std::string, std::size_t> counts;
  for (const Diagnostic& d : result.diagnostics) ++counts[d.code];
  return counts;
}

/// Applies a whole-word identifier renaming to program text. Identifiers
/// in .vcp programs are [A-Za-z_][A-Za-z0-9_]*; the replacement never
/// touches partial matches ("r" inside "unrelated").
std::string Rename(std::string_view text,
                   const std::vector<std::pair<std::string, std::string>>&
                       renames) {
  auto is_word = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  std::string out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (!is_word(text[i])) {
      out += text[i++];
      continue;
    }
    std::size_t j = i;
    while (j < text.size() && is_word(text[j])) ++j;
    std::string word(text.substr(i, j - i));
    for (const auto& [from, to] : renames) {
      if (word == from) {
        word = to;
        break;
      }
    }
    out += word;
    i = j;
  }
  return out;
}

/// A program that trips structural, semantic and whole-program rules at
/// once: VCL004/005/008 (structural), VCL101/102/103 (per-view closure),
/// VCL201/202 (cross-view).
constexpr std::string_view kProgram =
    "schema { r(A, B, C); s(C, D); unused(E, F); }\n"
    "view Inner {\n"
    "  a := pi{A,B}(r);\n"
    "  b := pi{B,C}(r);\n"
    "  twin := pi{A,B}(r);\n"
    "  doubled := pi{A, A}(r);\n"
    "  ident := pi{C, D}(s);\n"
    "  wide := pi{A,B}(r) * pi{B,C}(r);\n"
    "}\n"
    "view Outer { o := pi{A}(a); }\n"
    "view Dead { d := pi{B}(r); }\n";

TEST(LintMetamorphicTest, FindingsAreInvariantUnderRenaming) {
  const LintResult base = Linter().Run(kProgram);
  ASSERT_FALSE(base.diagnostics.empty());
  // Rename every identifier class: relations, attributes, views and
  // definition names, with length changes to also shift spans.
  const std::string renamed_text = Rename(
      kProgram,
      {{"r", "relation_one"},
       {"s", "sss"},
       {"unused", "idle"},
       {"A", "Alpha"},
       {"B", "Beta"},
       {"C", "Gamma"},
       {"D", "Delta"},
       {"E", "Eps"},
       {"F", "Phi"},
       {"Inner", "Core"},
       {"Outer", "Shell"},
       {"Dead", "Gone"},
       {"a", "first"},
       {"b", "second"},
       {"twin", "copy"},
       {"doubled", "dupattr"},
       {"ident", "same"},
       {"wide", "joined"},
       {"o", "proj"},
       {"d", "dd"}});
  const LintResult renamed = Linter().Run(renamed_text);
  EXPECT_EQ(CodeCounts(base), CodeCounts(renamed))
      << "renamed program:\n"
      << renamed_text;
}

TEST(LintMetamorphicTest, FindingsAreInvariantUnderThreadCount) {
  LintOptions serial;
  serial.limits.threads = 1;
  LintOptions sharded;
  sharded.limits.threads = 8;
  const LintResult a = Linter(serial).Run(kProgram);
  const LintResult b = Linter(sharded).Run(kProgram);
  ASSERT_FALSE(a.diagnostics.empty());
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    const Diagnostic& x = a.diagnostics[i];
    const Diagnostic& y = b.diagnostics[i];
    EXPECT_EQ(x.code, y.code) << i;
    EXPECT_EQ(x.severity, y.severity) << i;
    EXPECT_TRUE(x.span.begin == y.span.begin) << i;
    EXPECT_EQ(x.message, y.message) << i;
    EXPECT_EQ(x.note, y.note) << i;
    EXPECT_EQ(x.fixits, y.fixits) << i;
  }
}

TEST(LintMetamorphicTest, ThreadCountInvarianceUnderTightBudgets) {
  // Budget exhaustion (VCL204 territory) is where sharding could plausibly
  // diverge; verdicts must still be deterministic.
  LintOptions serial;
  serial.limits.threads = 1;
  serial.limits.max_candidates = 64;
  LintOptions sharded = serial;
  sharded.limits.threads = 8;
  const LintResult a = Linter(serial).Run(kProgram);
  const LintResult b = Linter(sharded).Run(kProgram);
  EXPECT_EQ(CodeCounts(a), CodeCounts(b));
}

}  // namespace
}  // namespace viewcap
