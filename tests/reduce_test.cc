// Tests for tableau/reduce.h: Proposition 2.4.4.
#include <gtest/gtest.h>

#include "algebra/parser.h"
#include "relation/generator.h"
#include "tableau/build.h"
#include "tableau/evaluate.h"
#include "tableau/homomorphism.h"
#include "tableau/reduce.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class ReduceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
  }

  Tableau T(const std::string& text) {
    return MustBuildTableau(catalog_, u_, *MustParse(catalog_, text));
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel;
};

TEST_F(ReduceTest, AlreadyReducedUnchanged) {
  Tableau t = T("r * s");
  Tableau reduced = Reduce(catalog_, t);
  EXPECT_EQ(reduced, t);
  EXPECT_TRUE(IsReduced(catalog_, t));
}

TEST_F(ReduceTest, SelfJoinCollapses) {
  Tableau t = T("r * r");
  EXPECT_EQ(Reduce(catalog_, t).size(), 1u);
  EXPECT_FALSE(IsReduced(catalog_, t));
}

TEST_F(ReduceTest, SemijoinSubsumedByFullAtom) {
  // pi_AB(r |x| s) |x| s: the pi-renamed s-row maps into the full s-row.
  Tableau t = T("pi{A, B}(r * s) * s");
  Tableau reduced = Reduce(catalog_, t);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(reduced.size(), 2u);
  EXPECT_TRUE(EquivalentTableaux(catalog_, t, reduced));
}

TEST_F(ReduceTest, ReducedIsSubsetOfInput) {
  Tableau t = T("pi{A, B}(r * s) * s * r");
  Tableau reduced = Reduce(catalog_, t);
  for (const TaggedTuple& row : reduced.rows()) {
    EXPECT_TRUE(t.ContainsRow(row));
  }
}

TEST_F(ReduceTest, ReductionIsIdempotent) {
  Tableau t = T("pi{A, B}(r * s) * s * r * r");
  Tableau once = Reduce(catalog_, t);
  Tableau twice = Reduce(catalog_, once);
  EXPECT_EQ(once, twice);
}

TEST_F(ReduceTest, ReductionPreservesSemanticsOnRandomInstances) {
  const char* cases[] = {
      "r * r",
      "pi{A, B}(r * s) * s",
      "pi{A, B}(r * s) * (r * s)",
      "pi{A}(r) * r",
      "pi{B}(r) * pi{B}(s) * (r * s)",
  };
  DbSchema schema(catalog_, {r_, s_});
  InstanceOptions options;
  options.tuples_per_relation = 5;
  options.domain_size = 3;
  InstanceGenerator generator(&catalog_, options);
  Random rng(5);
  for (const char* text : cases) {
    Tableau t = T(text);
    Tableau reduced = Reduce(catalog_, t);
    EXPECT_LE(reduced.size(), t.size());
    VIEWCAP_EXPECT_OK(reduced.Validate(catalog_));
    for (int trial = 0; trial < 10; ++trial) {
      Instantiation alpha = generator.Generate(schema, rng);
      EXPECT_EQ(EvaluateTableau(t, alpha), EvaluateTableau(reduced, alpha))
          << text;
    }
  }
}

TEST_F(ReduceTest, EquivalentTemplatesReduceToSameSize) {
  // Reduced templates are minimum-size in their equivalence class, so
  // equivalent inputs always reduce to the same row count.
  Tableau t1 = T("pi{A, B}(r * s)");
  Tableau t2 = T("pi{A, B}(r * s) * pi{A, B}(r * s)");
  Tableau t3 = T("pi{A, B}(r * s * s) * r");
  Tableau r1 = Reduce(catalog_, t1);
  Tableau r2 = Reduce(catalog_, t2);
  EXPECT_TRUE(EquivalentTableaux(catalog_, t1, t2));
  EXPECT_EQ(r1.size(), r2.size());
  // t3 is also equivalent to t1: the extra s-atom inside is subsumed and
  // the outer r is implied by the projected r-row... verify equivalence
  // first, then the size equality.
  if (EquivalentTableaux(catalog_, t1, t3)) {
    EXPECT_EQ(Reduce(catalog_, t3).size(), r1.size());
  }
}

TEST_F(ReduceTest, SingleRowIsAlwaysReduced) {
  EXPECT_TRUE(IsReduced(catalog_, T("r")));
  EXPECT_TRUE(IsReduced(catalog_, T("pi{A}(r)")));
}

}  // namespace
}  // namespace viewcap
