// Tests for tableau/evaluate.h: alpha-embeddings and T(alpha).
#include <gtest/gtest.h>

#include "tableau/evaluate.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::Row;
using testing::Unwrap;

class EvaluateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = catalog_.MakeScheme({"A", "B", "C"});
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
    a_ = Unwrap(catalog_.FindAttribute("A"));
    b_ = Unwrap(catalog_.FindAttribute("B"));
    c_ = Unwrap(catalog_.FindAttribute("C"));
    alpha_ = std::make_unique<Instantiation>(&catalog_);
  }

  void Fill(RelId rel, const std::vector<std::pair<int, int>>& pairs) {
    const AttrSet& scheme = catalog_.RelationScheme(rel);
    auto it = scheme.begin();
    AttrId x = *it++, y = *it;
    Relation relation(scheme);
    for (auto [v1, v2] : pairs) {
      relation.Insert(Tuple(
          scheme,
          {Symbol::Nondistinguished(x, static_cast<std::uint32_t>(v1)),
           Symbol::Nondistinguished(y, static_cast<std::uint32_t>(v2))}));
    }
    VIEWCAP_ASSERT_OK(alpha_->Set(rel, relation));
  }

  Catalog catalog_;
  AttrSet u_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel;
  AttrId a_ = 0, b_ = 0, c_ = 0;
  std::unique_ptr<Instantiation> alpha_;
};

TEST_F(EvaluateTest, SingleRowActsAsProjection) {
  Fill(r_, {{1, 1}, {2, 2}});
  // Template of pi_A(r).
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_, {Row(catalog_, u_, "r", {"0", "b9", "c9"})}));
  Relation result = EvaluateTableau(t, *alpha_);
  EXPECT_EQ(result.scheme(), AttrSet{a_});
  EXPECT_EQ(result.size(), 2u);
}

TEST_F(EvaluateTest, JoinTemplateMatchesSharedSymbols) {
  Fill(r_, {{1, 1}, {2, 2}});
  Fill(s_, {{1, 5}, {3, 6}});
  // Template of pi_AC(r |x| s): rows share nondistinguished b1.
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_,
      {Row(catalog_, u_, "r", {"0", "b1", "c8"}),
       Row(catalog_, u_, "s", {"a8", "b1", "0"})}));
  Relation result = EvaluateTableau(t, *alpha_);
  // Only b=1 joins: (a=1, c=5).
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.tuples()[0].At(a_), Symbol::Nondistinguished(a_, 1));
  EXPECT_EQ(result.tuples()[0].At(c_), Symbol::Nondistinguished(c_, 5));
}

TEST_F(EvaluateTest, EmptyRelationYieldsEmptyResult) {
  Fill(r_, {{1, 1}});
  // s is unset (empty); any template mentioning it returns the empty
  // relation.
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_,
      {Row(catalog_, u_, "r", {"0", "b1", "c8"}),
       Row(catalog_, u_, "s", {"a8", "b1", "0"})}));
  EXPECT_TRUE(EvaluateTableau(t, *alpha_).empty());
}

TEST_F(EvaluateTest, DistinguishedSymbolsMatchActualConstants) {
  // Instances may contain the distinguished constant 0_A; embeddings can
  // map template symbols onto it.
  Relation relation(catalog_.RelationScheme(r_));
  relation.Insert(Tuple(catalog_.RelationScheme(r_),
                        {Symbol::Distinguished(a_),
                         Symbol::Nondistinguished(b_, 2)}));
  VIEWCAP_ASSERT_OK(alpha_->Set(r_, relation));
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_, {Row(catalog_, u_, "r", {"0", "0", "c9"})}));
  Relation result = EvaluateTableau(t, *alpha_);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.tuples()[0].At(a_), Symbol::Distinguished(a_));
}

TEST_F(EvaluateTest, RepeatedVariableWithinRowForcesEquality) {
  // A row with the same symbol at A-position... domains are disjoint so
  // within-row repetition is impossible; instead test repetition across
  // rows of the same relation (self-join pattern).
  Fill(r_, {{1, 2}, {2, 3}, {5, 5}});
  // rows: r(0_A, b1), r(b1-as-A?...) -- cross-attr sharing impossible;
  // instead: two r-rows sharing the B symbol: pairs (x,y),(x',y) with
  // equal second component.
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_,
      {Row(catalog_, u_, "r", {"0", "b1", "c8"}),
       Row(catalog_, u_, "r", {"a2", "b1", "c9"})}));
  Relation result = EvaluateTableau(t, *alpha_);
  // For every tuple (a,b) there is at least itself as partner: all 3 a's.
  EXPECT_EQ(result.size(), 3u);
}

TEST_F(EvaluateTest, CountEmbeddingsCountsAssignments) {
  Fill(r_, {{1, 1}, {2, 1}});
  Fill(s_, {{1, 5}, {1, 6}});
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_,
      {Row(catalog_, u_, "r", {"0", "b1", "c8"}),
       Row(catalog_, u_, "s", {"a8", "b1", "0"})}));
  // 2 r-tuples x 2 s-tuples, all with b=1: 4 embeddings.
  EXPECT_EQ(CountEmbeddings(t, *alpha_), 4u);
  EXPECT_EQ(EvaluateTableau(t, *alpha_).size(), 4u);
}

TEST_F(EvaluateTest, OutputDeduplicates) {
  Fill(r_, {{1, 1}, {1, 2}});
  // pi_A(r): two embeddings, one output tuple.
  Tableau t = Unwrap(Tableau::Create(
      catalog_, u_, {Row(catalog_, u_, "r", {"0", "b9", "c9"})}));
  EXPECT_EQ(CountEmbeddings(t, *alpha_), 2u);
  EXPECT_EQ(EvaluateTableau(t, *alpha_).size(), 1u);
}

}  // namespace
}  // namespace viewcap
