// Unit tests for algebra/enumerator.h: the candidate generator behind the
// Section 2.4 decision procedures.
#include <gtest/gtest.h>

#include <set>

#include "algebra/enumerator.h"
#include "algebra/printer.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::Unwrap;

class EnumeratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
  }

  Catalog catalog_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel;
};

TEST_F(EnumeratorTest, LevelOneFormsAreNamesAndProjections) {
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  std::vector<std::string> seen;
  ExprEnumerator::Stats stats = enumerator.Enumerate(
      1, 1000, [&](const ExprPtr& e) {
        EXPECT_EQ(e->LeafCount(), 1u);
        seen.push_back(ToString(*e, catalog_));
        return ExprEnumerator::Verdict::kKeep;
      });
  // Per binary name: the name + 2 proper single-attribute projections.
  EXPECT_EQ(stats.generated, 6u);
  EXPECT_EQ(stats.kept, 6u);
  EXPECT_FALSE(stats.exhausted_budget);
  EXPECT_FALSE(stats.stopped);
  std::set<std::string> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), 6u);
  EXPECT_TRUE(unique.count("r"));
  EXPECT_TRUE(unique.count("pi{A}(r)"));
  EXPECT_TRUE(unique.count("pi{C}(s)"));
}

TEST_F(EnumeratorTest, LeafCountsAreNondecreasing) {
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  std::size_t last = 0;
  enumerator.Enumerate(3, 100000, [&](const ExprPtr& e) {
    EXPECT_GE(e->LeafCount(), last);
    last = e->LeafCount();
    return ExprEnumerator::Verdict::kKeep;
  });
  EXPECT_EQ(last, 3u);
}

TEST_F(EnumeratorTest, SkippedCandidatesAreNotBuildingBlocks) {
  ExprEnumerator enumerator(&catalog_, {r_});
  // Skip everything at level 1: no joins can ever form.
  std::size_t total = 0;
  ExprEnumerator::Stats stats = enumerator.Enumerate(
      3, 100000, [&](const ExprPtr& e) {
        ++total;
        EXPECT_EQ(e->LeafCount(), 1u);
        return ExprEnumerator::Verdict::kSkip;
      });
  EXPECT_EQ(stats.kept, 0u);
  EXPECT_EQ(total, stats.generated);
  EXPECT_GT(total, 0u);
}

TEST_F(EnumeratorTest, StopAbortsImmediately) {
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  ExprEnumerator::Stats stats = enumerator.Enumerate(
      3, 100000,
      [&](const ExprPtr&) { return ExprEnumerator::Verdict::kStop; });
  EXPECT_TRUE(stats.stopped);
  EXPECT_EQ(stats.generated, 1u);
}

TEST_F(EnumeratorTest, CandidateCapReported) {
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  ExprEnumerator::Stats stats = enumerator.Enumerate(
      4, 10, [&](const ExprPtr&) { return ExprEnumerator::Verdict::kKeep; });
  EXPECT_TRUE(stats.exhausted_budget);
  EXPECT_EQ(stats.generated, 10u);
}

TEST_F(EnumeratorTest, JoinsCombineKeptBlocksOnly) {
  // Keep only the bare names; level-2 candidates are then exactly the
  // unordered name pairs and their projections.
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  std::vector<std::string> level2;
  enumerator.Enumerate(2, 100000, [&](const ExprPtr& e) {
    if (e->LeafCount() == 1) {
      return e->kind() == Expr::Kind::kRelName
                 ? ExprEnumerator::Verdict::kKeep
                 : ExprEnumerator::Verdict::kSkip;
    }
    level2.push_back(ToString(*e, catalog_));
    return ExprEnumerator::Verdict::kSkip;
  });
  // Pairs: r*r (TRS {A,B}: +2 projections), r*s (TRS {A,B,C}: +6), s*s
  // (+2): 3 joins + 10 projections = 13 candidates.
  EXPECT_EQ(level2.size(), 13u);
  std::set<std::string> unique(level2.begin(), level2.end());
  EXPECT_TRUE(unique.count("r * s"));
  EXPECT_TRUE(unique.count("pi{A, C}(r * s)"));
  EXPECT_TRUE(unique.count("r * r"));
  // Commutative duplicates are not emitted.
  EXPECT_FALSE(unique.count("s * r"));
}

TEST_F(EnumeratorTest, ZeroBudgetYieldsNothing) {
  ExprEnumerator enumerator(&catalog_, {r_});
  ExprEnumerator::Stats stats = enumerator.Enumerate(
      0, 100, [&](const ExprPtr&) { return ExprEnumerator::Verdict::kKeep; });
  EXPECT_EQ(stats.generated, 0u);
}

}  // namespace
}  // namespace viewcap
