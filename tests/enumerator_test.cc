// Unit tests for algebra/enumerator.h: the candidate generator behind the
// Section 2.4 decision procedures.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "algebra/enumerator.h"
#include "algebra/printer.h"
#include "base/thread_pool.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::Unwrap;

class EnumeratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
  }

  Catalog catalog_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel;
};

TEST_F(EnumeratorTest, LevelOneFormsAreNamesAndProjections) {
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  std::vector<std::string> seen;
  ExprEnumerator::Stats stats = enumerator.Enumerate(
      1, 1000, [&](const ExprPtr& e) {
        EXPECT_EQ(e->LeafCount(), 1u);
        seen.push_back(ToString(*e, catalog_));
        return ExprEnumerator::Verdict::kKeep;
      });
  // Per binary name: the name + 2 proper single-attribute projections.
  EXPECT_EQ(stats.generated, 6u);
  EXPECT_EQ(stats.kept, 6u);
  EXPECT_FALSE(stats.exhausted_budget);
  EXPECT_FALSE(stats.stopped);
  std::set<std::string> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), 6u);
  EXPECT_TRUE(unique.count("r"));
  EXPECT_TRUE(unique.count("pi{A}(r)"));
  EXPECT_TRUE(unique.count("pi{C}(s)"));
}

TEST_F(EnumeratorTest, LeafCountsAreNondecreasing) {
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  std::size_t last = 0;
  enumerator.Enumerate(3, 100000, [&](const ExprPtr& e) {
    EXPECT_GE(e->LeafCount(), last);
    last = e->LeafCount();
    return ExprEnumerator::Verdict::kKeep;
  });
  EXPECT_EQ(last, 3u);
}

TEST_F(EnumeratorTest, SkippedCandidatesAreNotBuildingBlocks) {
  ExprEnumerator enumerator(&catalog_, {r_});
  // Skip everything at level 1: no joins can ever form.
  std::size_t total = 0;
  ExprEnumerator::Stats stats = enumerator.Enumerate(
      3, 100000, [&](const ExprPtr& e) {
        ++total;
        EXPECT_EQ(e->LeafCount(), 1u);
        return ExprEnumerator::Verdict::kSkip;
      });
  EXPECT_EQ(stats.kept, 0u);
  EXPECT_EQ(total, stats.generated);
  EXPECT_GT(total, 0u);
}

TEST_F(EnumeratorTest, StopAbortsImmediately) {
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  ExprEnumerator::Stats stats = enumerator.Enumerate(
      3, 100000,
      [&](const ExprPtr&) { return ExprEnumerator::Verdict::kStop; });
  EXPECT_TRUE(stats.stopped);
  EXPECT_EQ(stats.generated, 1u);
}

TEST_F(EnumeratorTest, CandidateCapReported) {
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  ExprEnumerator::Stats stats = enumerator.Enumerate(
      4, 10, [&](const ExprPtr&) { return ExprEnumerator::Verdict::kKeep; });
  EXPECT_TRUE(stats.exhausted_budget);
  EXPECT_EQ(stats.generated, 10u);
}

TEST_F(EnumeratorTest, JoinsCombineKeptBlocksOnly) {
  // Keep only the bare names; level-2 candidates are then exactly the
  // unordered name pairs and their projections.
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  std::vector<std::string> level2;
  enumerator.Enumerate(2, 100000, [&](const ExprPtr& e) {
    if (e->LeafCount() == 1) {
      return e->kind() == Expr::Kind::kRelName
                 ? ExprEnumerator::Verdict::kKeep
                 : ExprEnumerator::Verdict::kSkip;
    }
    level2.push_back(ToString(*e, catalog_));
    return ExprEnumerator::Verdict::kSkip;
  });
  // Pairs: r*r (TRS {A,B}: +2 projections), r*s (TRS {A,B,C}: +6), s*s
  // (+2): 3 joins + 10 projections = 13 candidates.
  EXPECT_EQ(level2.size(), 13u);
  std::set<std::string> unique(level2.begin(), level2.end());
  EXPECT_TRUE(unique.count("r * s"));
  EXPECT_TRUE(unique.count("pi{A, C}(r * s)"));
  EXPECT_TRUE(unique.count("r * r"));
  // Commutative duplicates are not emitted.
  EXPECT_FALSE(unique.count("s * r"));
}

// --- EnumerateSharded: the parallel driver must be observationally
// identical to Enumerate for every thread count. ---

struct ShardEval {
  bool witness = false;
};

/// A sharded visitor equivalent to the serial `visit` used in the parity
/// tests: keeps bare names, skips projections, stops on `stop_at`.
ExprEnumerator::ShardedVisitor<ShardEval> MakeVisitor(
    const Catalog& catalog, const std::string& stop_at,
    std::vector<std::string>* committed) {
  ExprEnumerator::ShardedVisitor<ShardEval> visitor;
  visitor.evaluate = [&catalog, stop_at](const ExprPtr& e) {
    return ShardEval{ToString(*e, catalog) == stop_at};
  };
  visitor.is_stop = [](const ShardEval& eval) { return eval.witness; };
  visitor.commit = [&catalog, committed](const ExprPtr& e,
                                         const ShardEval& eval) {
    if (committed != nullptr) committed->push_back(ToString(*e, catalog));
    if (eval.witness) return ExprEnumerator::Verdict::kStop;
    return e->kind() == Expr::Kind::kRelName ? ExprEnumerator::Verdict::kKeep
                                             : ExprEnumerator::Verdict::kSkip;
  };
  return visitor;
}

TEST_F(EnumeratorTest, ShardedMatchesSerialForEveryThreadCount) {
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  // Serial reference: same verdicts as MakeVisitor, no stop candidate.
  std::vector<std::string> serial_order;
  ExprEnumerator::Stats serial = enumerator.Enumerate(
      3, 100000, [&](const ExprPtr& e) {
        serial_order.push_back(ToString(*e, catalog_));
        return e->kind() == Expr::Kind::kRelName
                   ? ExprEnumerator::Verdict::kKeep
                   : ExprEnumerator::Verdict::kSkip;
      });
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ThreadPool pool(threads > 0 ? threads - 1 : 0);
    std::vector<std::string> order;
    ExprEnumerator::Stats stats = enumerator.EnumerateSharded(
        3, 100000, threads, &pool,
        MakeVisitor(catalog_, "<<none>>", &order));
    EXPECT_EQ(stats.generated, serial.generated) << threads;
    EXPECT_EQ(stats.kept, serial.kept) << threads;
    EXPECT_EQ(stats.stopped, serial.stopped) << threads;
    EXPECT_EQ(stats.exhausted_budget, serial.exhausted_budget) << threads;
    // The committed candidate sequence is bit-identical, not just counted.
    EXPECT_EQ(order, serial_order) << threads;
  }
}

TEST_F(EnumeratorTest, ShardedStopsAtSmallestStopIndex) {
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  // "r * s" appears at level 2; everything after it must never commit.
  std::vector<std::string> serial_order;
  ExprEnumerator::Stats serial = enumerator.Enumerate(
      3, 100000, [&](const ExprPtr& e) {
        serial_order.push_back(ToString(*e, catalog_));
        if (serial_order.back() == "r * s") {
          return ExprEnumerator::Verdict::kStop;
        }
        return e->kind() == Expr::Kind::kRelName
                   ? ExprEnumerator::Verdict::kKeep
                   : ExprEnumerator::Verdict::kSkip;
      });
  ASSERT_TRUE(serial.stopped);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ThreadPool pool(threads > 0 ? threads - 1 : 0);
    std::vector<std::string> order;
    ExprEnumerator::Stats stats = enumerator.EnumerateSharded(
        3, 100000, threads, &pool, MakeVisitor(catalog_, "r * s", &order));
    EXPECT_TRUE(stats.stopped) << threads;
    EXPECT_EQ(stats.generated, serial.generated) << threads;
    EXPECT_EQ(order, serial_order) << threads;
  }
}

TEST_F(EnumeratorTest, ShardedCancelledSearchDoesNotReportExhaustedBudget) {
  // Regression: the candidate cap truncates the level-1 wave at four of
  // its six candidates (a tentative budget exhaustion), but the stop
  // candidate "s" commits inside the truncated prefix — exactly like the
  // serial search, which stops before ever noticing the cap. The
  // cancelled search must not report exhausted_budget.
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  ExprEnumerator::Stats serial = enumerator.Enumerate(
      1, 4, [&](const ExprPtr& e) {
        return ToString(*e, catalog_) == "s" ? ExprEnumerator::Verdict::kStop
                                             : ExprEnumerator::Verdict::kKeep;
      });
  ASSERT_TRUE(serial.stopped);
  ASSERT_FALSE(serial.exhausted_budget);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ThreadPool pool(threads > 0 ? threads - 1 : 0);
    ExprEnumerator::ShardedVisitor<ShardEval> visitor;
    visitor.evaluate = [this](const ExprPtr& e) {
      return ShardEval{ToString(*e, catalog_) == "s"};
    };
    visitor.is_stop = [](const ShardEval& eval) { return eval.witness; };
    visitor.commit = [](const ExprPtr&, const ShardEval& eval) {
      return eval.witness ? ExprEnumerator::Verdict::kStop
                          : ExprEnumerator::Verdict::kKeep;
    };
    ExprEnumerator::Stats stats =
        enumerator.EnumerateSharded(1, 4, threads, &pool, visitor);
    EXPECT_TRUE(stats.stopped) << threads;
    EXPECT_FALSE(stats.exhausted_budget) << threads;
    EXPECT_EQ(stats.generated, serial.generated) << threads;
  }
}

TEST_F(EnumeratorTest, ShardedReportsExhaustedBudgetWithoutStop) {
  ExprEnumerator enumerator(&catalog_, {r_, s_});
  ExprEnumerator::Stats serial = enumerator.Enumerate(
      4, 10, [&](const ExprPtr&) { return ExprEnumerator::Verdict::kKeep; });
  ASSERT_TRUE(serial.exhausted_budget);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ThreadPool pool(threads > 0 ? threads - 1 : 0);
    ExprEnumerator::ShardedVisitor<ShardEval> visitor;
    visitor.evaluate = [](const ExprPtr&) { return ShardEval{}; };
    visitor.is_stop = [](const ShardEval&) { return false; };
    visitor.commit = [](const ExprPtr&, const ShardEval&) {
      return ExprEnumerator::Verdict::kKeep;
    };
    ExprEnumerator::Stats stats =
        enumerator.EnumerateSharded(4, 10, threads, &pool, visitor);
    EXPECT_TRUE(stats.exhausted_budget) << threads;
    EXPECT_FALSE(stats.stopped) << threads;
    EXPECT_EQ(stats.generated, serial.generated) << threads;
    EXPECT_EQ(stats.kept, serial.kept) << threads;
  }
}

TEST_F(EnumeratorTest, ZeroBudgetYieldsNothing) {
  ExprEnumerator enumerator(&catalog_, {r_});
  ExprEnumerator::Stats stats = enumerator.Enumerate(
      0, 100, [&](const ExprPtr&) { return ExprEnumerator::Verdict::kKeep; });
  EXPECT_EQ(stats.generated, 0u);
}

}  // namespace
}  // namespace viewcap
