// Concurrency tests for the service core: many sessions multiplexed onto
// one Workspace/Dispatcher, at per-request thread counts {1, 2, 8}, must
// produce bit-identical verdicts regardless of interleaving — the PR 5
// determinism guarantee lifted to the daemon. Runs under ci-tsan (the
// preset's filter matches "Service").
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/dispatcher.h"
#include "service/protocol.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

constexpr const char* kProgram = R"(
schema { r(A, B, C); }
view V { v := pi{A,B}(r) * pi{B,C}(r); }
view W {
  w1 := pi{A,B}(r);
  w2 := pi{B,C}(r);
}
view Narrow { n := pi{A,B}(r); }
)";

/// The mixed read-only workload each simulated session runs. Every
/// request is answerable deterministically, so the expected transcript
/// is a pure function of the request list.
std::vector<Request> SessionWorkload(std::size_t threads) {
  std::vector<Request> requests;
  {
    Request r;
    r.kind = RequestKind::kEquiv;
    r.view = "V";
    r.other_view = "W";
    r.threads = threads;
    requests.push_back(r);
    r.view = "Narrow";
    requests.push_back(r);  // Not equivalent: exit 3.
  }
  {
    Request r;
    r.kind = RequestKind::kAnswerable;
    r.view = "W";
    r.query = "pi{A,C}(r)";
    r.threads = threads;
    requests.push_back(r);
    r.query = "pi{A,B}(r)";
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kLattice;
    r.threads = threads;
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kList;
    requests.push_back(r);
  }
  return requests;
}

std::vector<Response> RunWorkload(Dispatcher& dispatcher,
                                  const std::vector<Request>& workload) {
  std::vector<Response> responses;
  responses.reserve(workload.size());
  for (const Request& request : workload) {
    responses.push_back(dispatcher.Handle(request));
  }
  return responses;
}

TEST(ServiceConcurrentTest, ParallelSessionsMatchSerialBaseline) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    // Serial baseline on a fresh workspace.
    Workspace baseline_ws;
    VIEWCAP_ASSERT_OK(baseline_ws.Load(kProgram));
    Dispatcher baseline_dispatcher(&baseline_ws);
    const std::vector<Request> workload = SessionWorkload(threads);
    const std::vector<Response> baseline =
        RunWorkload(baseline_dispatcher, workload);

    // Eight concurrent sessions against one shared warm workspace.
    Workspace shared_ws;
    VIEWCAP_ASSERT_OK(shared_ws.Load(kProgram));
    Dispatcher shared_dispatcher(&shared_ws);
    constexpr std::size_t kSessions = 8;
    std::vector<std::vector<Response>> transcripts(kSessions);
    {
      std::vector<std::thread> sessions;
      sessions.reserve(kSessions);
      for (std::size_t s = 0; s < kSessions; ++s) {
        sessions.emplace_back([&, s] {
          transcripts[s] = RunWorkload(shared_dispatcher, workload);
        });
      }
      for (std::thread& session : sessions) session.join();
    }

    for (std::size_t s = 0; s < kSessions; ++s) {
      ASSERT_EQ(transcripts[s].size(), baseline.size());
      for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(transcripts[s][i].output, baseline[i].output)
            << "threads=" << threads << " session=" << s << " request=" << i;
        EXPECT_EQ(transcripts[s][i].exit_code, baseline[i].exit_code);
        EXPECT_EQ(transcripts[s][i].verdict, baseline[i].verdict);
        EXPECT_EQ(transcripts[s][i].witness, baseline[i].witness);
      }
    }
  }
}

TEST(ServiceConcurrentTest, ConcurrentLoadsAndReadsStaySafe) {
  Workspace workspace;
  VIEWCAP_ASSERT_OK(workspace.Load(kProgram));
  Dispatcher dispatcher(&workspace);

  // Readers hammer equivalence while writers grow the workspace with
  // fresh view programs; the reader verdicts must be untouched by the
  // interleaved catalog growth.
  std::vector<std::thread> threads;
  std::vector<int> reader_failures(4, 0);
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&dispatcher, &reader_failures, t] {
      for (int i = 0; i < 8; ++i) {
        Request eq;
        eq.kind = RequestKind::kEquiv;
        eq.view = "V";
        eq.other_view = "W";
        eq.threads = 2;
        Response r = dispatcher.Handle(eq);
        if (!r.verdict.has_value() || !*r.verdict || r.exit_code != 0) {
          ++reader_failures[t];
        }
      }
    });
  }
  for (std::size_t t = 0; t < 2; ++t) {
    threads.emplace_back([&workspace, t] {
      for (int i = 0; i < 4; ++i) {
        const std::string name =
            "Extra_" + std::to_string(t) + "_" + std::to_string(i);
        const std::string program =
            "view " + name + " { x" + std::to_string(t) +
            std::to_string(i) + " := pi{A,B}(r); }";
        VIEWCAP_EXPECT_OK(workspace.Load(program));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int failures : reader_failures) EXPECT_EQ(failures, 0);

  Request list;
  list.kind = RequestKind::kList;
  const std::string views = dispatcher.Handle(list).output;
  EXPECT_NE(views.find("Extra_0_3"), std::string::npos);
  EXPECT_NE(views.find("Extra_1_3"), std::string::npos);
}

TEST(ServiceConcurrentTest, ConcurrentProtocolSessionsShareServerStats) {
  Workspace workspace;
  VIEWCAP_ASSERT_OK(workspace.Load(kProgram));
  Dispatcher dispatcher(&workspace);
  ServerStats stats;

  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kRequestsPerSession = 3;
  std::vector<std::string> outputs(kSessions);
  std::vector<std::thread> sessions;
  for (std::size_t s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&dispatcher, &stats, &outputs, s] {
      std::string input;
      for (std::size_t i = 0; i < kRequestsPerSession; ++i) {
        input +=
            R"js({"id":1,"method":"answerable","params":)js"
            R"js({"view":"W","query":"pi{A,B}(r)","threads":2}})js"
            "\n";
      }
      std::istringstream in(input);
      std::ostringstream out;
      ServeSession(dispatcher, &stats, in, out);
      outputs[s] = out.str();
    });
  }
  for (std::thread& session : sessions) session.join();

  for (const std::string& output : outputs) {
    EXPECT_EQ(output, outputs.front());
    EXPECT_NE(output.find("\"verdict\":true"), std::string::npos);
  }
  EXPECT_EQ(stats.sessions.load(), kSessions);
  EXPECT_EQ(stats.requests.load(), kSessions * kRequestsPerSession);
}

}  // namespace
}  // namespace viewcap
