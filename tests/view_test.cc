// Tests for views/view.h: Sections 1.3-1.4.
#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/parser.h"
#include "algebra/printer.h"
#include "relation/generator.h"
#include "tests/test_util.h"
#include "views/view.h"

namespace viewcap {
namespace {

using testing::MustParse;
using testing::Unwrap;

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = Unwrap(catalog_.AddRelation("r", catalog_.MakeScheme({"A", "B"})));
    s_ = Unwrap(catalog_.AddRelation("s", catalog_.MakeScheme({"B", "C"})));
    base_ = DbSchema(catalog_, {r_, s_});
    v1_ = Unwrap(catalog_.AddRelation("v1", catalog_.MakeScheme({"A", "B"})));
    v2_ = Unwrap(catalog_.AddRelation("v2", catalog_.MakeScheme({"B", "C"})));
  }

  Catalog catalog_;
  RelId r_ = kInvalidRel, s_ = kInvalidRel, v1_ = kInvalidRel,
        v2_ = kInvalidRel;
  DbSchema base_;
};

TEST_F(ViewTest, CreateValidView) {
  View view = Unwrap(View::Create(
      &catalog_, base_,
      {{v1_, MustParse(catalog_, "pi{A, B}(r * s)")},
       {v2_, MustParse(catalog_, "pi{B, C}(r * s)")}},
      "V"));
  EXPECT_EQ(view.size(), 2u);
  EXPECT_EQ(view.name(), "V");
  EXPECT_EQ(view.universe(), catalog_.MakeScheme({"A", "B", "C"}));
  DbSchema schema = view.ViewSchema();
  EXPECT_TRUE(schema.Contains(v1_));
  EXPECT_TRUE(schema.Contains(v2_));
  // Definition templates are Algorithm 2.1.1 outputs over the universe.
  for (const ViewDefinition& d : view.definitions()) {
    VIEWCAP_EXPECT_OK(d.tableau.Validate(catalog_));
    EXPECT_EQ(d.tableau.Trs(), catalog_.RelationScheme(d.rel));
  }
}

TEST_F(ViewTest, RejectsEmptyView) {
  EXPECT_EQ(View::Create(&catalog_, base_, {}).status().code(),
            StatusCode::kIllFormed);
}

TEST_F(ViewTest, RejectsDuplicateViewNames) {
  Result<View> bad = View::Create(
      &catalog_, base_,
      {{v1_, MustParse(catalog_, "r")}, {v1_, MustParse(catalog_, "r")}});
  EXPECT_EQ(bad.status().code(), StatusCode::kIllFormed);
}

TEST_F(ViewTest, RejectsShadowingBaseRelation) {
  Result<View> bad =
      View::Create(&catalog_, base_, {{r_, MustParse(catalog_, "r")}});
  EXPECT_EQ(bad.status().code(), StatusCode::kIllFormed);
}

TEST_F(ViewTest, RejectsTrsTypeMismatch) {
  Result<View> bad = View::Create(
      &catalog_, base_, {{v1_, MustParse(catalog_, "pi{A}(r)")}});
  EXPECT_EQ(bad.status().code(), StatusCode::kIllFormed);
}

TEST_F(ViewTest, RejectsQueryOverForeignRelations) {
  Unwrap(catalog_.AddRelation("foreign", catalog_.MakeScheme({"A", "B"})));
  Result<View> bad = View::Create(
      &catalog_, base_, {{v1_, MustParse(catalog_, "foreign")}});
  EXPECT_EQ(bad.status().code(), StatusCode::kIllFormed);
}

TEST_F(ViewTest, InduceOverridesViewNamesOnly) {
  View view = Unwrap(View::Create(
      &catalog_, base_, {{v1_, MustParse(catalog_, "pi{A, B}(r * s)")}}));
  InstanceOptions options;
  InstanceGenerator generator(&catalog_, options);
  Random rng(1);
  Instantiation alpha = generator.Generate(base_, rng);
  Instantiation induced = view.Induce(alpha);
  EXPECT_EQ(induced.Get(r_), alpha.Get(r_));
  EXPECT_EQ(induced.Get(v1_),
            Evaluate(*view.definitions()[0].query, alpha));
}

TEST_F(ViewTest, SurrogateRejectsNonViewQueries) {
  View view = Unwrap(View::Create(
      &catalog_, base_, {{v1_, MustParse(catalog_, "pi{A, B}(r * s)")}}));
  Result<ExprPtr> bad = view.Surrogate(MustParse(catalog_, "r"));
  EXPECT_EQ(bad.status().code(), StatusCode::kIllFormed);
  Result<ExprPtr> good = view.Surrogate(MustParse(catalog_, "pi{A}(v1)"));
  EXPECT_TRUE(good.ok());
}

TEST_F(ViewTest, AccessorsExposeTheoryObjects) {
  View view = Unwrap(View::Create(
      &catalog_, base_,
      {{v1_, MustParse(catalog_, "pi{A, B}(r * s)")},
       {v2_, MustParse(catalog_, "pi{B, C}(r * s)")}}));
  EXPECT_EQ(view.AsDefinitions().size(), 2u);
  EXPECT_EQ(view.AsAssignment().size(), 2u);
  EXPECT_EQ(view.QueryTableaux().size(), 2u);
  EXPECT_EQ(view.AsAssignment().at(v1_).Trs(),
            catalog_.RelationScheme(v1_));
}

TEST_F(ViewTest, RestrictKeepsSelectedDefinitions) {
  View view = Unwrap(View::Create(
      &catalog_, base_,
      {{v1_, MustParse(catalog_, "pi{A, B}(r * s)")},
       {v2_, MustParse(catalog_, "pi{B, C}(r * s)")}}));
  View only_second = view.Restrict({1});
  EXPECT_EQ(only_second.size(), 1u);
  EXPECT_EQ(only_second.definitions()[0].rel, v2_);
}

TEST_F(ViewTest, ToStringListsDefinitions) {
  View view = Unwrap(View::Create(
      &catalog_, base_, {{v1_, MustParse(catalog_, "pi{A, B}(r * s)")}},
      "MyView"));
  std::string text = view.ToString();
  EXPECT_NE(text.find("MyView"), std::string::npos);
  EXPECT_NE(text.find("v1 := pi{A, B}(r * s)"), std::string::npos);
}

}  // namespace
}  // namespace viewcap
