// Unit tests for relation/symbol.h and relation/tuple.h.
#include <gtest/gtest.h>

#include "relation/symbol.h"
#include "relation/tuple.h"
#include "tests/test_util.h"

namespace viewcap {
namespace {

using testing::Unwrap;

TEST(SymbolTest, DistinguishedVsNondistinguished) {
  Symbol d = Symbol::Distinguished(3);
  Symbol n = Symbol::Nondistinguished(3, 7);
  EXPECT_TRUE(d.IsDistinguished());
  EXPECT_FALSE(n.IsDistinguished());
  EXPECT_NE(d, n);
  EXPECT_EQ(d, Symbol::Distinguished(3));
}

TEST(SymbolTest, DomainsAreDisjointByConstruction) {
  // Same ordinal, different attributes: different symbols.
  EXPECT_NE(Symbol::Nondistinguished(0, 1), Symbol::Nondistinguished(1, 1));
  EXPECT_NE(Symbol::Distinguished(0), Symbol::Distinguished(1));
}

TEST(SymbolTest, OrderingAndHash) {
  Symbol a = Symbol::Distinguished(0);
  Symbol b = Symbol::Nondistinguished(0, 1);
  Symbol c = Symbol::Nondistinguished(1, 1);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(SymbolHash{}(a), SymbolHash{}(b));
}

TEST(SymbolTest, ToStringUsesAttributeNames) {
  Catalog catalog;
  AttrId a = catalog.AddAttribute("A");
  EXPECT_EQ(Symbol::Distinguished(a).ToString(catalog), "0_A");
  EXPECT_EQ(Symbol::Nondistinguished(a, 3).ToString(catalog), "a3");
}

TEST(SymbolPoolTest, FreshNeverRepeats) {
  SymbolPool pool;
  Symbol s1 = pool.Fresh(0);
  Symbol s2 = pool.Fresh(0);
  Symbol s3 = pool.Fresh(1);
  EXPECT_NE(s1, s2);
  EXPECT_FALSE(s1.IsDistinguished());
  EXPECT_EQ(s3.attr, 1u);
}

TEST(SymbolPoolTest, ReserveSkipsUsedOrdinals) {
  SymbolPool pool;
  pool.Reserve(0, 10);
  Symbol s = pool.Fresh(0);
  EXPECT_GT(s.ordinal, 10u);
}

TEST(SymbolPoolTest, ReserveAllCoversKeysAndValues) {
  SymbolPool pool;
  SymbolMap map;
  map[Symbol::Nondistinguished(0, 5)] = Symbol::Nondistinguished(0, 9);
  pool.ReserveAll(map);
  EXPECT_GT(pool.Fresh(0).ordinal, 9u);
}

class TupleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    abc_ = catalog_.MakeScheme({"A", "B", "C"});
    a_ = Unwrap(catalog_.FindAttribute("A"));
    b_ = Unwrap(catalog_.FindAttribute("B"));
    c_ = Unwrap(catalog_.FindAttribute("C"));
  }
  Catalog catalog_;
  AttrSet abc_;
  AttrId a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(TupleTest, AllDistinguished) {
  Tuple t = Tuple::AllDistinguished(abc_);
  EXPECT_EQ(t.size(), 3u);
  for (AttrId attr : abc_) {
    EXPECT_EQ(t.At(attr), Symbol::Distinguished(attr));
  }
  EXPECT_EQ(t.DistinguishedAttrs(), abc_);
}

TEST_F(TupleTest, ProjectKeepsValues) {
  Tuple t(abc_, {Symbol::Distinguished(a_), Symbol::Nondistinguished(b_, 1),
                 Symbol::Nondistinguished(c_, 2)});
  AttrSet ac{a_, c_};
  Tuple p = t.Project(ac);
  EXPECT_EQ(p.scheme(), ac);
  EXPECT_EQ(p.At(a_), Symbol::Distinguished(a_));
  EXPECT_EQ(p.At(c_), Symbol::Nondistinguished(c_, 2));
}

TEST_F(TupleTest, AgreesWithAndCombine) {
  AttrSet ab{a_, b_}, bc{b_, c_};
  Tuple left(ab, {Symbol::Nondistinguished(a_, 1),
                  Symbol::Nondistinguished(b_, 2)});
  Tuple right(bc, {Symbol::Nondistinguished(b_, 2),
                   Symbol::Nondistinguished(c_, 3)});
  EXPECT_TRUE(left.AgreesWith(right));
  Tuple joined = left.CombineWith(right);
  EXPECT_EQ(joined.scheme(), abc_);
  EXPECT_EQ(joined.At(a_), Symbol::Nondistinguished(a_, 1));
  EXPECT_EQ(joined.At(c_), Symbol::Nondistinguished(c_, 3));

  Tuple conflicting(bc, {Symbol::Nondistinguished(b_, 9),
                         Symbol::Nondistinguished(c_, 3)});
  EXPECT_FALSE(left.AgreesWith(conflicting));
}

TEST_F(TupleTest, AgreesWithDisjointSchemes) {
  AttrSet aa{a_}, cc{c_};
  Tuple ta(aa, {Symbol::Nondistinguished(a_, 1)});
  Tuple tc(cc, {Symbol::Nondistinguished(c_, 1)});
  EXPECT_TRUE(ta.AgreesWith(tc));  // Nothing shared, vacuously true.
}

TEST_F(TupleTest, ApplyMapsOnlyListedSymbols) {
  Tuple t(abc_, {Symbol::Distinguished(a_), Symbol::Nondistinguished(b_, 1),
                 Symbol::Nondistinguished(c_, 2)});
  SymbolMap map;
  map[Symbol::Nondistinguished(b_, 1)] = Symbol::Nondistinguished(b_, 8);
  Tuple mapped = t.Apply(map);
  EXPECT_EQ(mapped.At(b_), Symbol::Nondistinguished(b_, 8));
  EXPECT_EQ(mapped.At(a_), Symbol::Distinguished(a_));
  EXPECT_EQ(mapped.At(c_), Symbol::Nondistinguished(c_, 2));
}

TEST_F(TupleTest, SetAndSetValueAt) {
  Tuple t = Tuple::AllDistinguished(abc_);
  t.Set(b_, Symbol::Nondistinguished(b_, 4));
  EXPECT_EQ(t.At(b_), Symbol::Nondistinguished(b_, 4));
  EXPECT_EQ(t.DistinguishedAttrs(), (AttrSet{a_, c_}));
}

TEST_F(TupleTest, EqualityAndOrdering) {
  Tuple t1 = Tuple::AllDistinguished(abc_);
  Tuple t2 = Tuple::AllDistinguished(abc_);
  EXPECT_EQ(t1, t2);
  t2.Set(c_, Symbol::Nondistinguished(c_, 1));
  EXPECT_NE(t1, t2);
  EXPECT_LT(t1, t2);  // Distinguished (ordinal 0) sorts first.
  EXPECT_NE(TupleHash{}(t1), TupleHash{}(t2));
}

TEST_F(TupleTest, ToString) {
  Tuple t(abc_, {Symbol::Distinguished(a_), Symbol::Nondistinguished(b_, 1),
                 Symbol::Nondistinguished(c_, 2)});
  EXPECT_EQ(t.ToString(catalog_), "(0_A, b1, c2)");
}

}  // namespace
}  // namespace viewcap
