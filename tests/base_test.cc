// Unit tests for base/: Status, Result, strings, random, hashing.
#include <gtest/gtest.h>

#include "base/hash.h"
#include "base/random.h"
#include "base/status.h"
#include "base/strings.h"

namespace viewcap {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, NamedConstructorsMapToCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IllFormed("x").code(), StatusCode::kIllFormed);
  EXPECT_EQ(Status::BudgetExhausted("x").code(),
            StatusCode::kBudgetExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  VIEWCAP_ASSIGN_OR_RETURN(int half, Half(x));
  VIEWCAP_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(5).status().code(), StatusCode::kInvalidArgument);
}

TEST(StringsTest, StrCatConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
}

TEST(StringsTest, StrSplitKeepsEmptyFields) {
  std::vector<std::string> parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("abc"));
  EXPECT_TRUE(IsIdentifier("_a1"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("1a"));
  EXPECT_FALSE(IsIdentifier("a-b"));
}

TEST(RandomTest, DeterministicFromSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Next(1000), b.Next(1000));
  }
}

TEST(RandomTest, NextRespectsBound) {
  Random rng(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.Next(5), 5u);
  }
}

TEST(RandomTest, RangeInclusive) {
  Random rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, SampleIsSortedSubset) {
  Random rng(11);
  std::vector<std::size_t> sample = rng.Sample(10, 4);
  ASSERT_EQ(sample.size(), 4u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  for (std::size_t s : sample) EXPECT_LT(s, 10u);
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) ==
              sample.end());
}

TEST(RandomTest, ChanceExtremes) {
  Random rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(HashTest, CombineChangesSeed) {
  std::size_t seed = 0;
  HashCombine(seed, 1);
  std::size_t one = seed;
  HashCombine(seed, 2);
  EXPECT_NE(seed, one);
  EXPECT_NE(one, 0u);
}

TEST(HashTest, RangeOrderSensitive) {
  std::vector<int> a{1, 2, 3}, b{3, 2, 1};
  EXPECT_NE(HashRange(a.begin(), a.end()), HashRange(b.begin(), b.end()));
}

}  // namespace
}  // namespace viewcap
