#!/usr/bin/env sh
# Runs clang-tidy (config: .clang-tidy at the repo root) over the first-party
# sources, using the compile_commands.json exported by the CMake configure.
#
#   tools/run_tidy.sh [build-dir]
#
# Exits 0 when clang-tidy is not installed so CI images without LLVM don't
# fail the pipeline; exits non-zero on findings when it is.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_tidy.sh: clang-tidy not found on PATH; skipping (not a failure)."
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy.sh: $build_dir/compile_commands.json missing." >&2
  echo "run_tidy.sh: configure first: cmake --preset default" >&2
  exit 2
fi

# First-party translation units only; third-party and generated code are
# out of scope for the profile.
files=$(find "$repo_root/src" "$repo_root/tools" "$repo_root/examples" \
  -name '*.cc' 2>/dev/null | sort)

# --warnings-as-errors promotes every emitted diagnostic to an error so a
# finding fails the run: clang-tidy otherwise exits 0 on plain warnings.
status=0
for f in $files; do
  clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' "$f" \
    || status=1
done
exit $status
