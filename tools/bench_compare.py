#!/usr/bin/env python3
"""Compare two benchmark baseline JSON files (bench --json=... output).

Usage:
  tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold=PCT]

Prints a delta table of ns_per_op for every benchmark present in both
files (plus a note for benchmarks only in one of them) and exits non-zero
when any shared benchmark regressed by more than the threshold
(default 15%). Intended for CI gating and for checking in refreshed
bench/BENCH_*.json baselines:

  build/bench/bench_capacity --json=/tmp/new.json
  tools/bench_compare.py bench/BENCH_capacity.json /tmp/new.json
"""

import json
import sys

DEFAULT_THRESHOLD_PCT = 15.0


def load_records(path):
    """Returns {benchmark name: ns_per_op} from a baseline file.

    Any problem with the file — missing, unreadable, not JSON, or JSON
    that is not shaped like a bench --json baseline — is reported as a
    single line on stderr and exits 2; CI logs should show the broken
    path, not a traceback.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as err:
        sys.stderr.write("bench_compare: cannot read %s: %s\n" % (path, err))
        sys.exit(2)
    if not isinstance(doc, dict) or not isinstance(doc.get("benchmarks"), list):
        sys.stderr.write(
            "bench_compare: %s is not a bench baseline"
            " (expected {\"benchmarks\": [...]})\n" % path)
        sys.exit(2)
    records = {}
    for entry in doc["benchmarks"]:
        if not isinstance(entry, dict):
            continue
        name = entry.get("name")
        ns = entry.get("ns_per_op")
        if not isinstance(name, str) or not isinstance(ns, (int, float)):
            continue
        records[name] = float(ns)
    if not records:
        sys.stderr.write("bench_compare: no benchmark records in %s\n" % path)
        sys.exit(2)
    return records


def format_ns(ns):
    if ns >= 1e9:
        return "%.2fs" % (ns / 1e9)
    if ns >= 1e6:
        return "%.2fms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.2fus" % (ns / 1e3)
    return "%.0fns" % ns


def main(argv):
    threshold = DEFAULT_THRESHOLD_PCT
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            try:
                threshold = float(arg.split("=", 1)[1])
            except ValueError:
                sys.stderr.write("bench_compare: bad threshold %r\n" % arg)
                return 2
        elif arg in ("-h", "--help"):
            sys.stdout.write(__doc__)
            return 0
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.stderr.write(
            "usage: bench_compare.py BASELINE.json CANDIDATE.json"
            " [--threshold=PCT]\n")
        return 2

    baseline = load_records(paths[0])
    candidate = load_records(paths[1])
    shared = sorted(set(baseline) & set(candidate))
    only_baseline = sorted(set(baseline) - set(candidate))
    only_candidate = sorted(set(candidate) - set(baseline))

    name_width = max([len(n) for n in shared] + [len("benchmark")])
    header = "%-*s  %12s  %12s  %8s" % (
        name_width, "benchmark", "baseline", "candidate", "delta")
    print(header)
    print("-" * len(header))
    regressions = []
    for name in shared:
        old = baseline[name]
        new = candidate[name]
        delta_pct = (new - old) / old * 100.0 if old > 0 else 0.0
        marker = ""
        if delta_pct > threshold:
            marker = "  REGRESSED"
            regressions.append((name, delta_pct))
        print("%-*s  %12s  %12s  %+7.1f%%%s" % (
            name_width, name, format_ns(old), format_ns(new), delta_pct,
            marker))
    for name in only_baseline:
        print("%-*s  %12s  %12s" % (
            name_width, name, format_ns(baseline[name]), "(missing)"))
    for name in only_candidate:
        print("%-*s  %12s  %12s" % (
            name_width, name, "(new)", format_ns(candidate[name])))

    if regressions:
        print()
        print("%d benchmark(s) regressed beyond %.1f%%:" % (
            len(regressions), threshold))
        for name, delta_pct in regressions:
            print("  %s (+%.1f%%)" % (name, delta_pct))
        return 1
    print()
    print("no regressions beyond %.1f%% across %d shared benchmark(s)" % (
        threshold, len(shared)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
