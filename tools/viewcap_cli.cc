// viewcap_cli: command-line front end for the view-capacity analyses.
//
// Usage:
//   viewcap_cli <program-file> <command> [args...] [--engine-stats]
//   viewcap_cli lint <program-file> [--format=text|json|sarif]
//       [--no-semantic] [--fix | --fix-dry-run] [--baseline=<file>]
//       [--write-baseline=<file>] [--max-semantic-definitions=N]
// Commands:
//   list                          print the loaded views
//   equiv <V> <W>                 decide view equivalence (Theorem 2.4.12)
//   answerable <V> <query-expr>   Cap membership (Theorem 2.4.11)
//   nonredundant <V>              redundancy elimination (Theorem 3.1.4)
//   simplify <V>                  the normal form (Theorem 4.1.3)
//   lattice                       pairwise dominance of all views
//   minimize <query-expr>         tableau minimization of a base query
//   export <V>                    print a view as a reloadable program
//   capacity <V> <max-leaves>     list Cap(V) members up to a size budget
//   eval <V> <view-query> <data-file>
//                                 run a view query against a data file
//   report (alias: analyze)       full markdown audit of every view
//   lint                          static analysis: structural and
//                                 paper-backed semantic diagnostics
//
// --engine-stats (any analysis command) appends the run's memoizing-engine
// cache statistics after the command output.
//
// --threads=N (any analysis command, and lint) shards the closure searches
// across N threads (0 = one per hardware thread). Verdicts and witnesses
// are identical for every N; the default 1 is the exact legacy serial path.
//
// lint flags:
//   --format=sarif        emit SARIF 2.1.0 (for code-scanning upload)
//   --fix                 apply every machine-applicable fix-it in place,
//                         re-linting to a fixpoint (idempotent: the fixed
//                         file re-lints with zero fixable findings)
//   --fix-dry-run         print the fixed program to stdout instead
//   --baseline=<file>     subtract known findings (lint/baseline.h)
//   --write-baseline=<file>  record the current findings as the baseline
//
// lint exit codes are severity-based: 0 = clean (notes allowed),
// 3 = warnings found, 4 = errors found (1 = I/O failure, 2 = usage).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/viewcap.h"
#include "lint/baseline.h"
#include "lint/fixits.h"
#include "lint/linter.h"
#include "lint/sarif.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: viewcap_cli <program-file> <command> [args...] "
               "[--engine-stats] [--threads=N]\n"
               "       viewcap_cli lint <program-file> "
               "[--format=text|json|sarif] [--no-semantic] [--threads=N]\n"
               "                   [--fix | --fix-dry-run] "
               "[--baseline=<file>] [--write-baseline=<file>]\n"
               "commands:\n"
               "  list\n"
               "  equiv <V> <W>\n"
               "  answerable <V> <query-expr>\n"
               "  nonredundant <V>\n"
               "  simplify <V>\n"
               "  lattice\n"
               "  minimize <query-expr>\n"
               "  export <V>\n"
               "  capacity <V> <max-leaves>\n"
               "  eval <V> <view-query> <data-file>\n"
               "  report | analyze [--engine-stats]\n"
               "  lint [--format=text|json|sarif] [--no-semantic] [--fix]\n");
  return 2;
}

/// Parses the value of a `--threads=N` flag. Returns false (leaving
/// `*threads` untouched) on a malformed count; 0 is valid and means one
/// thread per hardware thread.
bool ParseThreads(const char* text, std::size_t* threads) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *threads = static_cast<std::size_t>(value);
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) return false;
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// `viewcap_cli lint <file> [flags]` or `viewcap_cli <file> lint [flags]`.
/// `path` is args[path_at]; everything else in `args` past index 1 is a flag.
int RunLint(const std::vector<std::string>& args, std::size_t path_at,
            std::size_t threads) {
  const std::string& path = args[path_at];
  enum class Format { kText, kJson, kSarif };
  Format format = Format::kText;
  bool fix = false;
  bool fix_dry_run = false;
  std::string baseline_path;
  std::string write_baseline_path;
  viewcap::LintOptions options;
  options.limits.threads = threads;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--format=json") {
      format = Format::kJson;
    } else if (args[i] == "--format=text") {
      format = Format::kText;
    } else if (args[i] == "--format=sarif") {
      format = Format::kSarif;
    } else if (args[i] == "--no-semantic") {
      options.semantic = false;
    } else if (args[i] == "--fix") {
      fix = true;
    } else if (args[i] == "--fix-dry-run") {
      fix_dry_run = true;
    } else if (args[i].rfind("--baseline=", 0) == 0) {
      baseline_path = args[i].substr(std::string("--baseline=").size());
    } else if (args[i].rfind("--write-baseline=", 0) == 0) {
      write_baseline_path =
          args[i].substr(std::string("--write-baseline=").size());
    } else if (args[i].rfind("--max-semantic-definitions=", 0) == 0) {
      std::size_t value = 0;
      const std::string count =
          args[i].substr(std::string("--max-semantic-definitions=").size());
      if (!ParseThreads(count.c_str(), &value)) {
        std::fprintf(stderr, "viewcap_cli: bad definition count '%s'\n",
                     count.c_str());
        return 2;
      }
      options.max_semantic_definitions = value;
    } else if (args[i].rfind("--max-candidates=", 0) == 0) {
      std::size_t value = 0;
      const std::string count =
          args[i].substr(std::string("--max-candidates=").size());
      if (!ParseThreads(count.c_str(), &value) || value == 0) {
        std::fprintf(stderr, "viewcap_cli: bad candidate budget '%s'\n",
                     count.c_str());
        return 2;
      }
      options.limits.max_candidates = value;
    } else {
      std::fprintf(stderr, "viewcap_cli: unknown lint flag '%s'\n",
                   args[i].c_str());
      return Usage();
    }
  }
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "viewcap_cli: cannot open '%s'\n", path.c_str());
    return 1;
  }
  if (fix || fix_dry_run) {
    viewcap::FixOutcome outcome = viewcap::FixProgram(text, options);
    if (fix_dry_run) {
      // Print the fixed program; leave the file untouched.
      std::cout << outcome.text;
      std::fprintf(stderr, "viewcap_cli: %zu edit%s in %zu round%s (dry run)\n",
                   outcome.edits_applied, outcome.edits_applied == 1 ? "" : "s",
                   outcome.rounds, outcome.rounds == 1 ? "" : "s");
      return outcome.clean ? 0 : 1;
    }
    if (outcome.edits_applied > 0) {
      std::ofstream out(path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "viewcap_cli: cannot write '%s'\n", path.c_str());
        return 1;
      }
      out << outcome.text;
    }
    std::fprintf(stderr, "viewcap_cli: applied %zu edit%s in %zu round%s\n",
                 outcome.edits_applied, outcome.edits_applied == 1 ? "" : "s",
                 outcome.rounds, outcome.rounds == 1 ? "" : "s");
    text = outcome.text;  // Report the remaining (unfixable) findings below.
  }
  viewcap::Linter linter(options);
  viewcap::LintResult result = linter.Run(text);
  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "viewcap_cli: cannot write '%s'\n",
                   write_baseline_path.c_str());
      return 1;
    }
    out << viewcap::WriteBaseline(result.diagnostics);
  }
  if (!baseline_path.empty()) {
    std::string baseline_text;
    if (!ReadFile(baseline_path, &baseline_text)) {
      std::fprintf(stderr, "viewcap_cli: cannot open '%s'\n",
                   baseline_path.c_str());
      return 1;
    }
    std::size_t suppressed = 0;
    result.diagnostics =
        viewcap::FilterBaseline(std::move(result.diagnostics),
                                viewcap::ParseBaseline(baseline_text),
                                &suppressed);
    result.suppressed += suppressed;
  }
  switch (format) {
    case Format::kJson:
      std::cout << viewcap::RenderJson(result.diagnostics, path);
      break;
    case Format::kSarif:
      std::cout << viewcap::RenderSarif(result.diagnostics, path);
      break;
    case Format::kText:
      if (result.diagnostics.empty()) {
        std::cout << path << ": no problems found";
        if (result.suppressed > 0) {
          std::cout << " (" << result.suppressed << " suppressed)";
        }
        std::cout << "\n";
      } else {
        std::cout << viewcap::RenderText(result.diagnostics, path);
        if (result.suppressed > 0) {
          std::cout << result.suppressed << " suppressed.\n";
        }
      }
      break;
  }
  if (result.HasErrors()) return 4;
  if (result.HasWarnings()) return 3;
  return 0;
}

/// Runs one analysis command against a loaded analyzer. `args` is the
/// positional argument vector: args[0] = program file, args[1] = command.
int Dispatch(viewcap::Analyzer& analyzer, const std::vector<std::string>& args) {
  const std::string& command = args[1];
  std::string report;
  if (command == "list") {
    for (const std::string& name : analyzer.ViewNames()) {
      auto view = analyzer.GetView(name);
      std::cout << (*view)->ToString();
    }
    return 0;
  }
  if (command == "equiv" && args.size() == 4) {
    auto result = analyzer.CheckEquivalence(args[2], args[3], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return result->equivalent ? 0 : 3;
  }
  if (command == "answerable" && args.size() == 4) {
    auto result = analyzer.CheckAnswerable(args[2], args[3], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return result->member ? 0 : 3;
  }
  if (command == "nonredundant" && args.size() == 3) {
    auto result = analyzer.EliminateRedundancy(args[2], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "simplify" && args.size() == 3) {
    auto result = analyzer.SimplifyView(args[2], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "lattice" && args.size() == 2) {
    auto result = analyzer.CompareAllViews(&report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "minimize" && args.size() == 3) {
    auto result = analyzer.MinimizeQuery(args[2], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "capacity" && args.size() == 4) {
    char* end = nullptr;
    const unsigned long max_leaves = std::strtoul(args[3].c_str(), &end, 10);
    if (end == args[3].c_str() || *end != '\0' || max_leaves == 0) {
      std::fprintf(stderr, "viewcap_cli: bad leaf budget '%s'\n",
                   args[3].c_str());
      return 2;
    }
    auto result = analyzer.EnumerateViewCapacity(
        args[2], static_cast<std::size_t>(max_leaves), 256, &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if ((command == "report" || command == "analyze") && args.size() == 2) {
    auto result = viewcap::RenderReport(analyzer);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << *result;
    return 0;
  }
  if (command == "eval" && args.size() == 5) {
    std::ifstream data_in(args[4]);
    if (!data_in) {
      std::fprintf(stderr, "viewcap_cli: cannot open '%s'\n",
                   args[4].c_str());
      return 1;
    }
    std::stringstream data;
    data << data_in.rdbuf();
    auto result =
        analyzer.EvaluateViewQuery(args[2], args[3], data.str(), &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "export" && args.size() == 3) {
    auto result = analyzer.ExportView(args[2]);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << *result;
    return 0;
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  // --engine-stats and --threads=N may appear anywhere; strip them before
  // positional dispatch.
  bool engine_stats = false;
  std::size_t threads = 1;
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine-stats") == 0) {
      engine_stats = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      if (!ParseThreads(argv[i] + 10, &threads)) {
        std::fprintf(stderr, "viewcap_cli: bad thread count '%s'\n",
                     argv[i] + 10);
        return 2;
      }
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.size() < 2) return Usage();
  // Lint runs before (instead of) analyzer loading: its whole point is to
  // diagnose programs the loader would reject.
  if (args[0] == "lint") return RunLint(args, 1, threads);
  if (args[1] == "lint") return RunLint(args, 0, threads);
  std::string program_text;
  if (!ReadFile(args[0], &program_text)) {
    std::fprintf(stderr, "viewcap_cli: cannot open '%s'\n", args[0].c_str());
    return 1;
  }
  viewcap::Analyzer analyzer;
  {
    viewcap::SearchLimits limits = analyzer.limits();
    limits.threads = threads;
    analyzer.set_limits(limits);
  }
  viewcap::Status st = analyzer.Load(program_text);
  if (!st.ok()) {
    std::fprintf(stderr, "viewcap_cli: %s\n", st.ToString().c_str());
    return 1;
  }
  int code = Dispatch(analyzer, args);
  // One engine serves the whole run, so the stats describe exactly the
  // command that just executed.
  if (engine_stats && code != 2) {
    std::cout << "\n" << viewcap::RenderEngineStats(analyzer.engine_stats());
  }
  return code;
}
