// viewcap_cli: command-line front end for the view-capacity analyses.
//
// Usage:
//   viewcap_cli <program-file> <command> [args...]
//   viewcap_cli lint <program-file> [--format=text|json] [--no-semantic]
// Commands:
//   list                          print the loaded views
//   equiv <V> <W>                 decide view equivalence (Theorem 2.4.12)
//   answerable <V> <query-expr>   Cap membership (Theorem 2.4.11)
//   nonredundant <V>              redundancy elimination (Theorem 3.1.4)
//   simplify <V>                  the normal form (Theorem 4.1.3)
//   lattice                       pairwise dominance of all views
//   minimize <query-expr>         tableau minimization of a base query
//   export <V>                    print a view as a reloadable program
//   capacity <V> <max-leaves>     list Cap(V) members up to a size budget
//   eval <V> <view-query> <data-file>
//                                 run a view query against a data file
//   report                        full markdown audit of every view
//   lint                          static analysis: structural and
//                                 paper-backed semantic diagnostics
//
// lint exit codes are severity-based: 0 = clean (notes allowed),
// 3 = warnings found, 4 = errors found (1 = I/O failure, 2 = usage).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/viewcap.h"
#include "lint/linter.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: viewcap_cli <program-file> <command> [args...]\n"
               "       viewcap_cli lint <program-file> "
               "[--format=text|json] [--no-semantic]\n"
               "commands:\n"
               "  list\n"
               "  equiv <V> <W>\n"
               "  answerable <V> <query-expr>\n"
               "  nonredundant <V>\n"
               "  simplify <V>\n"
               "  lattice\n"
               "  minimize <query-expr>\n"
               "  export <V>\n"
               "  capacity <V> <max-leaves>\n"
               "  eval <V> <view-query> <data-file>\n"
               "  report\n"
               "  lint [--format=text|json] [--no-semantic]\n");
  return 2;
}

bool ReadFile(const char* path, std::string* out) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) return false;
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// `viewcap_cli lint <file> [flags]` or `viewcap_cli <file> lint [flags]`.
int RunLint(const char* path, int argc, char** argv, int flags_from) {
  bool json = false;
  viewcap::LintOptions options;
  for (int i = flags_from; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format=json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--format=text") == 0) {
      json = false;
    } else if (std::strcmp(argv[i], "--no-semantic") == 0) {
      options.semantic = false;
    } else {
      std::fprintf(stderr, "viewcap_cli: unknown lint flag '%s'\n", argv[i]);
      return Usage();
    }
  }
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "viewcap_cli: cannot open '%s'\n", path);
    return 1;
  }
  viewcap::Linter linter(options);
  viewcap::LintResult result = linter.Run(text);
  if (json) {
    std::cout << viewcap::RenderJson(result.diagnostics, path);
  } else if (result.diagnostics.empty()) {
    std::cout << path << ": no problems found\n";
  } else {
    std::cout << viewcap::RenderText(result.diagnostics, path);
  }
  if (result.HasErrors()) return 4;
  if (result.HasWarnings()) return 3;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  // Lint runs before (instead of) analyzer loading: its whole point is to
  // diagnose programs the loader would reject.
  if (std::strcmp(argv[1], "lint") == 0) {
    return RunLint(argv[2], argc, argv, 3);
  }
  if (std::strcmp(argv[2], "lint") == 0) {
    return RunLint(argv[1], argc, argv, 3);
  }
  std::string program_text;
  if (!ReadFile(argv[1], &program_text)) {
    std::fprintf(stderr, "viewcap_cli: cannot open '%s'\n", argv[1]);
    return 1;
  }
  viewcap::Analyzer analyzer;
  viewcap::Status st = analyzer.Load(program_text);
  if (!st.ok()) {
    std::fprintf(stderr, "viewcap_cli: %s\n", st.ToString().c_str());
    return 1;
  }

  const std::string command = argv[2];
  std::string report;
  if (command == "list") {
    for (const std::string& name : analyzer.ViewNames()) {
      auto view = analyzer.GetView(name);
      std::cout << (*view)->ToString();
    }
    return 0;
  }
  if (command == "equiv" && argc == 5) {
    auto result = analyzer.CheckEquivalence(argv[3], argv[4], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return result->equivalent ? 0 : 3;
  }
  if (command == "answerable" && argc == 5) {
    auto result = analyzer.CheckAnswerable(argv[3], argv[4], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return result->member ? 0 : 3;
  }
  if (command == "nonredundant" && argc == 4) {
    auto result = analyzer.EliminateRedundancy(argv[3], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "simplify" && argc == 4) {
    auto result = analyzer.SimplifyView(argv[3], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "lattice" && argc == 3) {
    auto result = analyzer.CompareAllViews(&report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "minimize" && argc == 4) {
    auto result = analyzer.MinimizeQuery(argv[3], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "capacity" && argc == 5) {
    char* end = nullptr;
    const unsigned long max_leaves = std::strtoul(argv[4], &end, 10);
    if (end == argv[4] || *end != '\0' || max_leaves == 0) {
      std::fprintf(stderr, "viewcap_cli: bad leaf budget '%s'\n", argv[4]);
      return 2;
    }
    auto result = analyzer.EnumerateViewCapacity(
        argv[3], static_cast<std::size_t>(max_leaves), 256, &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "report" && argc == 3) {
    auto result = viewcap::RenderReport(analyzer);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << *result;
    return 0;
  }
  if (command == "eval" && argc == 6) {
    std::ifstream data_in(argv[5]);
    if (!data_in) {
      std::fprintf(stderr, "viewcap_cli: cannot open '%s'\n", argv[5]);
      return 1;
    }
    std::stringstream data;
    data << data_in.rdbuf();
    auto result =
        analyzer.EvaluateViewQuery(argv[3], argv[4], data.str(), &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "export" && argc == 4) {
    auto result = analyzer.ExportView(argv[3]);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << *result;
    return 0;
  }
  return Usage();
}
