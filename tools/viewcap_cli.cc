// viewcap_cli: one-shot command-line front end for the view-capacity
// analyses.
//
// This is a thin shell over the service core (src/service): argv is
// parsed by the canonical grammar (service/cli.h) into a typed Request,
// the Request runs through the same Dispatcher the viewcapd daemon uses,
// and the Response renders back to stdout/stderr/exit code. All file I/O
// happens here at the edges; the dispatcher never touches the filesystem.
//
// Usage:
//   viewcap_cli <program-file> <command> [args...] [--engine-stats]
//   viewcap_cli lint <program-file> [--format=text|json|sarif]
//       [--no-semantic] [--fix | --fix-dry-run] [--baseline=<file>]
//       [--write-baseline=<file>] [--max-semantic-definitions=N]
// Commands:
//   list                          print the loaded views
//   equiv <V> <W>                 decide view equivalence (Theorem 2.4.12)
//   answerable <V> <query-expr>   Cap membership (Theorem 2.4.11)
//   nonredundant <V>              redundancy elimination (Theorem 3.1.4)
//   simplify <V>                  the normal form (Theorem 4.1.3)
//   lattice                       pairwise dominance of all views
//   minimize <query-expr>         tableau minimization of a base query
//   export <V>                    print a view as a reloadable program
//   capacity <V> <max-leaves>     list Cap(V) members up to a size budget
//   eval <V> <view-query> <data-file>
//                                 run a view query against a data file
//   compose <inner> <outer>       flatten a view-over-a-view to the base
//   report (alias: analyze)       full markdown audit of every view
//   lint                          static analysis: structural and
//                                 paper-backed semantic diagnostics
//
// --engine-stats (any analysis command) appends the run's memoizing-engine
// cache statistics after the command output.
//
// --threads=N (any analysis command, and lint) shards the closure searches
// across N threads (0 = one per hardware thread). Verdicts and witnesses
// are identical for every N; the default 1 is the exact legacy serial path.
//
// lint exit codes are severity-based: 0 = clean (notes allowed),
// 3 = warnings found, 4 = errors found (1 = I/O failure, 2 = usage).
//
// The persistent capacity index (src/index, DESIGN.md) has three entry
// points here:
//   index build <program> <index-file>   saturate and write the index
//   index query <index-file> <program> <command> [args...]
//                                        attach, then run the command
//   index info <index-file>              print the header without a program
// plus the global --index=<index-file> flag (same as `index query`). A
// stale or corrupt index is a hard error (exit 1), never silently served.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "index/index_reader.h"
#include "index/index_writer.h"
#include "service/cli.h"
#include "service/dispatcher.h"

namespace {

int CannotOpen(const std::string& path) {
  std::fprintf(stderr, "viewcap_cli: cannot open '%s'\n", path.c_str());
  return 1;
}

int CannotWrite(const std::string& path) {
  std::fprintf(stderr, "viewcap_cli: cannot write '%s'\n", path.c_str());
  return 1;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto parsed = viewcap::ParseCommandLine(args);
  if (!parsed.ok()) {
    if (!parsed.status().message().empty()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   parsed.status().message().c_str());
    }
    std::fputs(viewcap::UsageText().c_str(), stderr);
    return 2;
  }
  viewcap::CliInvocation inv = std::move(parsed).value();
  viewcap::Request& req = inv.request;

  // `index info` inspects the file header alone — no program involved.
  if (inv.index_action == viewcap::IndexAction::kInfo) {
    auto info = viewcap::IndexReader::Inspect(inv.index_path);
    if (!info.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
    std::printf("capacity index: %s\n", inv.index_path.c_str());
    std::printf("format version: %u (fingerprint scheme %u)\n",
                info->format_version, info->fingerprint_scheme_version);
    std::printf("file size: %llu bytes\n",
                static_cast<unsigned long long>(info->file_size));
    std::printf("catalog fingerprint: %s\n",
                info->catalog_fingerprint.c_str());
    auto u = [](std::uint64_t v) {
      return static_cast<unsigned long long>(v);
    };
    std::printf("serving limits: extra_leaves=%llu max_leaves=%llu "
                "max_candidates=%llu\n",
                u(info->extra_leaves), u(info->max_leaves),
                u(info->max_candidates));
    std::printf("build budget: max_leaves=%llu max_entries_per_view=%llu\n",
                u(info->build_max_leaves), u(info->build_max_entries));
    std::printf("sections: %llu classes, %llu sets, %llu verdicts, "
                "%llu dominance entries\n",
                u(info->classes), u(info->sets), u(info->verdicts),
                u(info->dominance_entries));
    return 0;
  }

  if (!viewcap::ReadFileToString(inv.program_path, &req.program_text)) {
    return CannotOpen(inv.program_path);
  }

  viewcap::Workspace workspace;
  viewcap::Dispatcher dispatcher(&workspace);
  const bool is_lint = req.kind == viewcap::RequestKind::kLint;

  // `index build` loads the program, saturates, and writes the file; the
  // ordinary dispatch path is never entered.
  if (inv.index_action == viewcap::IndexAction::kBuild) {
    const viewcap::Status loaded = workspace.Load(req.program_text);
    if (!loaded.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n", loaded.ToString().c_str());
      return 1;
    }
    viewcap::IndexBuildOptions options;
    options.max_leaves = inv.index_build_leaves;
    options.max_entries_per_view = inv.index_build_entries;
    options.limits = workspace.default_limits();
    if (req.threads.has_value()) options.limits.threads = *req.threads;
    if (req.max_candidates > 0) {
      options.limits.max_candidates = req.max_candidates;
    }
    auto stats = workspace.BuildIndex(inv.index_path, options);
    if (!stats.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: %zu classes, %zu sets, %zu verdicts, "
                "%zu dominance entries (%zu bytes)\n",
                inv.index_path.c_str(), stats->classes, stats->sets,
                stats->verdicts, stats->dominance_entries, stats->bytes);
    return 0;
  }

  if (is_lint) {
    // Lint runs before (instead of) program loading: its whole point is
    // to diagnose programs the loader would reject.
    if (!inv.baseline_path.empty()) {
      if (!viewcap::ReadFileToString(inv.baseline_path,
                                     &req.lint.baseline_text)) {
        return CannotOpen(inv.baseline_path);
      }
      req.lint.have_baseline = true;
    }
  } else {
    viewcap::Request load;
    load.kind = viewcap::RequestKind::kLoad;
    load.program_text = req.program_text;
    viewcap::Response loaded = dispatcher.Handle(load);
    if (!loaded.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   loaded.status.ToString().c_str());
      return 1;
    }
    // The data file is read only after a successful load, like the
    // historical shell.
    if (req.kind == viewcap::RequestKind::kEval) {
      if (!viewcap::ReadFileToString(inv.data_path, &req.data_text)) {
        return CannotOpen(inv.data_path);
      }
    }
    // Attach after load: the index is validated against the loaded
    // program's catalog fingerprint, and a stale or corrupt index is a
    // hard error rather than a silent live fallback.
    if (inv.index_action == viewcap::IndexAction::kQuery) {
      const viewcap::Status attached =
          workspace.AttachIndex(inv.index_path);
      if (!attached.ok()) {
        std::fprintf(stderr, "viewcap_cli: %s\n",
                     attached.ToString().c_str());
        return 1;
      }
    }
  }

  viewcap::Response resp = dispatcher.Handle(req);

  // Lint file side effects happen before anything prints, so a write
  // failure exits 1 without partial output.
  if (is_lint && resp.ok()) {
    if (inv.fix_in_place && resp.edits_applied > 0) {
      if (!WriteFile(inv.program_path, resp.fixed_text)) {
        return CannotWrite(inv.program_path);
      }
    }
    if (!inv.write_baseline_path.empty() && !req.lint.fix_dry_run) {
      if (!WriteFile(inv.write_baseline_path, resp.baseline_text)) {
        return CannotWrite(inv.write_baseline_path);
      }
    }
  }

  if (!resp.note.empty()) {
    std::fprintf(stderr, "%s\n", resp.note.c_str());
  }
  std::cout << resp.output;
  if (!resp.ok()) {
    std::fprintf(stderr, "viewcap_cli: %s\n", resp.status.ToString().c_str());
  }
  return resp.exit_code;
}
