// viewcap_cli: command-line front end for the view-capacity analyses.
//
// Usage:
//   viewcap_cli <program-file> <command> [args...] [--engine-stats]
//   viewcap_cli lint <program-file> [--format=text|json] [--no-semantic]
// Commands:
//   list                          print the loaded views
//   equiv <V> <W>                 decide view equivalence (Theorem 2.4.12)
//   answerable <V> <query-expr>   Cap membership (Theorem 2.4.11)
//   nonredundant <V>              redundancy elimination (Theorem 3.1.4)
//   simplify <V>                  the normal form (Theorem 4.1.3)
//   lattice                       pairwise dominance of all views
//   minimize <query-expr>         tableau minimization of a base query
//   export <V>                    print a view as a reloadable program
//   capacity <V> <max-leaves>     list Cap(V) members up to a size budget
//   eval <V> <view-query> <data-file>
//                                 run a view query against a data file
//   report (alias: analyze)       full markdown audit of every view
//   lint                          static analysis: structural and
//                                 paper-backed semantic diagnostics
//
// --engine-stats (any analysis command) appends the run's memoizing-engine
// cache statistics after the command output.
//
// --threads=N (any analysis command, and lint) shards the closure searches
// across N threads (0 = one per hardware thread). Verdicts and witnesses
// are identical for every N; the default 1 is the exact legacy serial path.
//
// lint exit codes are severity-based: 0 = clean (notes allowed),
// 3 = warnings found, 4 = errors found (1 = I/O failure, 2 = usage).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/viewcap.h"
#include "lint/linter.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: viewcap_cli <program-file> <command> [args...] "
               "[--engine-stats] [--threads=N]\n"
               "       viewcap_cli lint <program-file> "
               "[--format=text|json] [--no-semantic] [--threads=N]\n"
               "commands:\n"
               "  list\n"
               "  equiv <V> <W>\n"
               "  answerable <V> <query-expr>\n"
               "  nonredundant <V>\n"
               "  simplify <V>\n"
               "  lattice\n"
               "  minimize <query-expr>\n"
               "  export <V>\n"
               "  capacity <V> <max-leaves>\n"
               "  eval <V> <view-query> <data-file>\n"
               "  report | analyze [--engine-stats]\n"
               "  lint [--format=text|json] [--no-semantic]\n");
  return 2;
}

/// Parses the value of a `--threads=N` flag. Returns false (leaving
/// `*threads` untouched) on a malformed count; 0 is valid and means one
/// thread per hardware thread.
bool ParseThreads(const char* text, std::size_t* threads) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *threads = static_cast<std::size_t>(value);
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) return false;
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// `viewcap_cli lint <file> [flags]` or `viewcap_cli <file> lint [flags]`.
/// `path` is args[path_at]; everything else in `args` past index 1 is a flag.
int RunLint(const std::vector<std::string>& args, std::size_t path_at,
            std::size_t threads) {
  const std::string& path = args[path_at];
  bool json = false;
  viewcap::LintOptions options;
  options.limits.threads = threads;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--format=json") {
      json = true;
    } else if (args[i] == "--format=text") {
      json = false;
    } else if (args[i] == "--no-semantic") {
      options.semantic = false;
    } else {
      std::fprintf(stderr, "viewcap_cli: unknown lint flag '%s'\n",
                   args[i].c_str());
      return Usage();
    }
  }
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "viewcap_cli: cannot open '%s'\n", path.c_str());
    return 1;
  }
  viewcap::Linter linter(options);
  viewcap::LintResult result = linter.Run(text);
  if (json) {
    std::cout << viewcap::RenderJson(result.diagnostics, path);
  } else if (result.diagnostics.empty()) {
    std::cout << path << ": no problems found\n";
  } else {
    std::cout << viewcap::RenderText(result.diagnostics, path);
  }
  if (result.HasErrors()) return 4;
  if (result.HasWarnings()) return 3;
  return 0;
}

/// Runs one analysis command against a loaded analyzer. `args` is the
/// positional argument vector: args[0] = program file, args[1] = command.
int Dispatch(viewcap::Analyzer& analyzer, const std::vector<std::string>& args) {
  const std::string& command = args[1];
  std::string report;
  if (command == "list") {
    for (const std::string& name : analyzer.ViewNames()) {
      auto view = analyzer.GetView(name);
      std::cout << (*view)->ToString();
    }
    return 0;
  }
  if (command == "equiv" && args.size() == 4) {
    auto result = analyzer.CheckEquivalence(args[2], args[3], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return result->equivalent ? 0 : 3;
  }
  if (command == "answerable" && args.size() == 4) {
    auto result = analyzer.CheckAnswerable(args[2], args[3], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return result->member ? 0 : 3;
  }
  if (command == "nonredundant" && args.size() == 3) {
    auto result = analyzer.EliminateRedundancy(args[2], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "simplify" && args.size() == 3) {
    auto result = analyzer.SimplifyView(args[2], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "lattice" && args.size() == 2) {
    auto result = analyzer.CompareAllViews(&report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "minimize" && args.size() == 3) {
    auto result = analyzer.MinimizeQuery(args[2], &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "capacity" && args.size() == 4) {
    char* end = nullptr;
    const unsigned long max_leaves = std::strtoul(args[3].c_str(), &end, 10);
    if (end == args[3].c_str() || *end != '\0' || max_leaves == 0) {
      std::fprintf(stderr, "viewcap_cli: bad leaf budget '%s'\n",
                   args[3].c_str());
      return 2;
    }
    auto result = analyzer.EnumerateViewCapacity(
        args[2], static_cast<std::size_t>(max_leaves), 256, &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if ((command == "report" || command == "analyze") && args.size() == 2) {
    auto result = viewcap::RenderReport(analyzer);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << *result;
    return 0;
  }
  if (command == "eval" && args.size() == 5) {
    std::ifstream data_in(args[4]);
    if (!data_in) {
      std::fprintf(stderr, "viewcap_cli: cannot open '%s'\n",
                   args[4].c_str());
      return 1;
    }
    std::stringstream data;
    data << data_in.rdbuf();
    auto result =
        analyzer.EvaluateViewQuery(args[2], args[3], data.str(), &report);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << report;
    return 0;
  }
  if (command == "export" && args.size() == 3) {
    auto result = analyzer.ExportView(args[2]);
    if (!result.ok()) {
      std::fprintf(stderr, "viewcap_cli: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::cout << *result;
    return 0;
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  // --engine-stats and --threads=N may appear anywhere; strip them before
  // positional dispatch.
  bool engine_stats = false;
  std::size_t threads = 1;
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine-stats") == 0) {
      engine_stats = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      if (!ParseThreads(argv[i] + 10, &threads)) {
        std::fprintf(stderr, "viewcap_cli: bad thread count '%s'\n",
                     argv[i] + 10);
        return 2;
      }
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.size() < 2) return Usage();
  // Lint runs before (instead of) analyzer loading: its whole point is to
  // diagnose programs the loader would reject.
  if (args[0] == "lint") return RunLint(args, 1, threads);
  if (args[1] == "lint") return RunLint(args, 0, threads);
  std::string program_text;
  if (!ReadFile(args[0], &program_text)) {
    std::fprintf(stderr, "viewcap_cli: cannot open '%s'\n", args[0].c_str());
    return 1;
  }
  viewcap::Analyzer analyzer;
  {
    viewcap::SearchLimits limits = analyzer.limits();
    limits.threads = threads;
    analyzer.set_limits(limits);
  }
  viewcap::Status st = analyzer.Load(program_text);
  if (!st.ok()) {
    std::fprintf(stderr, "viewcap_cli: %s\n", st.ToString().c_str());
    return 1;
  }
  int code = Dispatch(analyzer, args);
  // One engine serves the whole run, so the stats describe exactly the
  // command that just executed.
  if (engine_stats && code != 2) {
    std::cout << "\n" << viewcap::RenderEngineStats(analyzer.engine_stats());
  }
  return code;
}
