#!/usr/bin/env python3
"""Index round trip: indexed serving must be bit-identical to the live engine.

For every program under examples/programs/*.vcp that loads, builds a
persistent capacity index with `viewcap_cli index build`, then reopens
the file in a fresh process per command (`viewcap_cli index query ...`)
and diffs stdout and exit code byte-for-byte against the live engine
running the same command without an index. The verdict suite covers
every ordered view pair (`equiv`, i.e. dominance both directions) and
every view probed with every definition body in the program
(`answerable`, membership positives and negatives alike).

Also asserts the invalidation contract: querying an index against a
different program must fail loudly instead of serving stale verdicts.

Usage: index_roundtrip.py <viewcap_cli> <programs-dir> [<scratch-dir>]
"""

import glob
import os
import re
import subprocess
import sys
import tempfile


def run(cli, argv):
    proc = subprocess.run([cli] + argv, capture_output=True, text=True,
                          timeout=300)
    return proc.stdout, proc.returncode, proc.stderr


def verdict_commands(program_text):
    """Every (argv-suffix) verdict command the program supports."""
    views = re.findall(r"^\s*view\s+(\w+)", program_text, re.MULTILINE)
    queries = [q.strip() for q in re.findall(r":=\s*([^;]+);", program_text)]
    cases = []
    for left in views:
        for right in views:
            if left != right:
                cases.append(["equiv", left, right])
    for view in views:
        for query in queries:
            cases.append(["answerable", view, query])
    return cases


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    cli, programs_dir = sys.argv[1], sys.argv[2]
    scratch = sys.argv[3] if len(sys.argv) == 4 else tempfile.mkdtemp(
        prefix="viewcap_index_roundtrip_")
    os.makedirs(scratch, exist_ok=True)
    programs = sorted(glob.glob(os.path.join(programs_dir, "*.vcp")))
    assert programs, f"no programs under {programs_dir}"

    checked = 0
    indexed_programs = []
    for program_path in programs:
        name = os.path.splitext(os.path.basename(program_path))[0]
        index_path = os.path.join(scratch, name + ".vcidx")
        out, code, err = run(cli, ["index", "build", program_path,
                                   index_path])
        if code != 0:
            # Programs that do not load (lint demos) cannot be indexed;
            # the plain CLI must agree that the program is unloadable.
            _, live_code, _ = run(cli, [program_path, "list"])
            assert live_code != 0, (
                f"{name}: index build failed ({err.strip()}) but the "
                f"program loads live")
            continue
        indexed_programs.append((program_path, index_path))

        with open(program_path) as f:
            program_text = f.read()
        for suffix in verdict_commands(program_text):
            live_out, live_code, _ = run(cli, [program_path] + suffix)
            idx_out, idx_code, idx_err = run(
                cli, ["index", "query", index_path, program_path] + suffix)
            label = f"{name}: {' '.join(suffix)}"
            assert live_out == idx_out, (
                f"{label}: stdout differs\n--- live ---\n{live_out}"
                f"--- indexed ---\n{idx_out}{idx_err}")
            assert live_code == idx_code, (
                f"{label}: exit {live_code} (live) vs {idx_code} (indexed)")
            checked += 1

    assert indexed_programs, "no example program produced an index"

    # Staleness: every index must refuse to serve a different program.
    for program_path, index_path in indexed_programs:
        for other_path, _ in indexed_programs:
            if other_path == program_path:
                continue
            _, code, err = run(cli, ["index", "query", index_path,
                                     other_path, "list"])
            assert code != 0, (
                f"{os.path.basename(index_path)} served stale verdicts for "
                f"{os.path.basename(other_path)}")
            assert "fingerprint" in err, (
                f"stale rejection lacks a fingerprint diagnostic: {err}")
            checked += 1

    print(f"index_roundtrip: {checked} cases bit-identical across "
          f"{len(indexed_programs)} indexed program(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
