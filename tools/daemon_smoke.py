#!/usr/bin/env python3
"""Smoke test for viewcapd: drive a scripted session and check shutdown.

Runs the daemon twice:

  1. stdio mode: load a program, ask a membership question, read the live
     stats, then request shutdown — and assert the process exits cleanly.
  2. TCP mode (--listen=0): connect to the announced port, drive the same
     requests over the socket, request shutdown, and assert the server
     process exits cleanly. Skipped (without failing) if the loopback
     bind is unavailable in the sandbox.

Usage: daemon_smoke.py <path-to-viewcapd> <program.vcp>
"""

import json
import socket
import subprocess
import sys

PROGRAM_QUERIES = [
    {"id": 2, "method": "answerable",
     "params": {"view": "W", "query": "pi{A,B}(r)"}},
    {"id": 3, "method": "answerable",
     "params": {"view": "W", "query": "pi{A,B}(r)", "threads": 2}},
    {"id": 4, "method": "stats"},
]


def check_replies(replies):
    """Asserts the scripted session's replies; returns None on success."""
    by_id = {r.get("id"): r for r in replies}
    for rid in (2, 3):
        result = by_id[rid].get("result")
        assert result, f"request {rid} failed: {by_id[rid]}"
        assert result["verdict"] is True, f"request {rid}: {result}"
        assert result["exit_code"] == 0
    # Identical question at different thread counts: identical answers.
    assert by_id[2]["result"]["output"] == by_id[3]["result"]["output"]
    stats = by_id[4]["result"]
    assert stats["ok"] and "engine_stats" in stats, stats
    assert stats["engine_stats"]["verdict"]["requests"] > 0, (
        "stats should show warm verdict-cache traffic")


def run_stdio(daemon, program_path):
    with open(program_path) as f:
        program = f.read()
    requests = [{"id": 1, "method": "load", "params": {"program": program}}]
    requests += PROGRAM_QUERIES
    requests.append({"id": 5, "method": "shutdown"})
    payload = "".join(json.dumps(r) + "\n" for r in requests)
    proc = subprocess.run([daemon], input=payload, capture_output=True,
                          text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr
    replies = [json.loads(line) for line in proc.stdout.splitlines() if line]
    assert len(replies) == 5, proc.stdout
    assert replies[0]["result"]["ok"], replies[0]
    check_replies(replies)
    assert replies[4]["result"]["shutting_down"] is True
    print("daemon_smoke: stdio session ok")


def run_tcp(daemon, program_path):
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.bind(("127.0.0.1", 0))
    except OSError as err:
        print(f"daemon_smoke: TCP skipped (loopback bind failed: {err})")
        return
    finally:
        probe.close()

    proc = subprocess.Popen(
        [daemon, f"--program={program_path}", "--listen=0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        announce = proc.stderr.readline()
        assert "listening on port" in announce, announce
        port = int(announce.strip().rsplit(" ", 1)[-1])

        with socket.create_connection(("127.0.0.1", port), timeout=30) as conn:
            stream = conn.makefile("rw")
            requests = PROGRAM_QUERIES + [{"id": 5, "method": "shutdown"}]
            replies = []
            for request in requests:
                stream.write(json.dumps(request) + "\n")
                stream.flush()
                replies.append(json.loads(stream.readline()))
        check_replies(replies)
        assert replies[-1]["result"]["shutting_down"] is True
        proc.wait(timeout=60)
        assert proc.returncode == 0, proc.stderr.read()
        print("daemon_smoke: TCP session ok")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    daemon, program_path = sys.argv[1], sys.argv[2]
    run_stdio(daemon, program_path)
    run_tcp(daemon, program_path)
    print("daemon_smoke: all sessions ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
