#!/usr/bin/env python3
"""Differential test: viewcap_cli and viewcapd must agree byte for byte.

For every program under examples/programs/*.vcp, runs a suite of commands
through the one-shot CLI and through a fresh viewcapd stdio session, and
asserts stdout and exit code are identical. Then re-runs each read-only
command twice against one warm daemon and asserts the two replies are
identical — the warm engine may answer faster, but never differently.

Usage: diff_cli_daemon.py <viewcap_cli> <viewcapd> <programs-dir>
"""

import glob
import json
import os
import re
import subprocess
import sys


def cli_run(cli, argv):
    proc = subprocess.run([cli] + argv, capture_output=True, text=True,
                          timeout=120)
    return proc.stdout, proc.returncode


def daemon_session(daemon, requests):
    """Runs one stdio session; returns the parsed reply list."""
    payload = "".join(json.dumps(r) + "\n" for r in requests)
    payload += json.dumps({"id": 999, "method": "shutdown"}) + "\n"
    proc = subprocess.run([daemon], input=payload, capture_output=True,
                          text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    return [json.loads(line) for line in proc.stdout.splitlines() if line]


def daemon_run(daemon, program, method, params):
    """One command in a fresh daemon; returns (stdout, exit_code) in CLI
    terms: a failed load or command maps to empty output and exit 1."""
    requests = []
    if method != "lint":
        requests.append(
            {"id": 1, "method": "load", "params": {"program": program}})
    requests.append({"id": 2, "method": method, "params": params})
    replies = daemon_session(daemon, requests)
    by_id = {r.get("id"): r for r in replies}
    if method != "lint" and "error" in by_id[1]:
        return "", 1
    reply = by_id[2]
    if "error" in reply:
        return "", 1
    return reply["result"]["output"], reply["result"]["exit_code"]


def commands_for(program_text, program_path):
    """The per-program differential suite: (cli-argv, method, params)."""
    views = re.findall(r"^\s*view\s+(\w+)", program_text, re.MULTILINE)
    cases = [
        ([program_path, "list"], "list", {}),
        ([program_path, "lattice"], "lattice", {}),
        ([program_path, "report"], "report", {}),
        (["lint", program_path], "lint",
         {"program": program_text, "path": program_path}),
        (["lint", program_path, "--format=json"], "lint",
         {"program": program_text, "path": program_path, "format": "json"}),
    ]
    for view in views:
        cases.append(([program_path, "export", view], "export",
                      {"view": view}))
    if len(views) >= 2:
        cases.append(([program_path, "equiv", views[0], views[1]], "equiv",
                      {"left": views[0], "right": views[1]}))
        cases.append(
            ([program_path, "equiv", views[0], views[1], "--threads=2"],
             "equiv", {"left": views[0], "right": views[1], "threads": 2}))
    if views:
        cases.append(([program_path, "simplify", views[0]], "simplify",
                      {"view": views[0]}))
        cases.append(([program_path, "nonredundant", views[0]],
                      "nonredundant", {"view": views[0]}))
    return cases


def main():
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    cli, daemon, programs_dir = sys.argv[1], sys.argv[2], sys.argv[3]
    programs = sorted(glob.glob(os.path.join(programs_dir, "*.vcp")))
    assert programs, f"no programs under {programs_dir}"

    checked = 0
    for program_path in programs:
        with open(program_path) as f:
            program_text = f.read()
        for argv, method, params in commands_for(program_text, program_path):
            cli_out, cli_code = cli_run(cli, argv)
            daemon_out, daemon_code = daemon_run(
                daemon, program_text, method, params)
            label = f"{os.path.basename(program_path)}: {' '.join(argv)}"
            assert cli_out == daemon_out, (
                f"{label}: stdout differs\n--- cli ---\n{cli_out}"
                f"--- daemon ---\n{daemon_out}")
            assert cli_code == daemon_code, (
                f"{label}: exit {cli_code} (cli) vs {daemon_code} (daemon)")
            checked += 1

    # Warm pass: repeated identical requests in one session answer
    # identically (the memo caches change latency, never verdicts).
    for program_path in programs:
        with open(program_path) as f:
            program_text = f.read()
        read_only = [(m, p) for _, m, p in
                     commands_for(program_text, program_path)
                     if m in ("list", "lattice", "report", "export", "equiv",
                              "lint")]
        requests = [
            {"id": 1, "method": "load", "params": {"program": program_text}}]
        for i, (method, params) in enumerate(read_only):
            for repeat in (0, 1):
                requests.append({"id": 10 + 2 * i + repeat,
                                 "method": method, "params": params})
        replies = {r.get("id"): r for r in daemon_session(daemon, requests)}
        for i in range(len(read_only)):
            first, second = replies[10 + 2 * i], replies[10 + 2 * i + 1]
            first.pop("id"), second.pop("id")
            assert first == second, (
                f"{program_path}: warm reply differs for "
                f"{read_only[i][0]}: {first} vs {second}")
            checked += 1

    # Warm-then-simplify: Simplify's surrogate names are seeded from the
    # view fingerprint, so a daemon that has already served a pile of
    # other requests must still mint byte-identical simplify output to a
    # one-shot CLI run. (Simplify registers its surrogate view, so it
    # runs once per session rather than in the repeat loop above.)
    for program_path in programs:
        with open(program_path) as f:
            program_text = f.read()
        views = re.findall(r"^\s*view\s+(\w+)", program_text, re.MULTILINE)
        if not views:
            continue
        warmup = [(m, p) for _, m, p in
                  commands_for(program_text, program_path)
                  if m in ("list", "lattice", "report", "export", "equiv")]
        requests = [
            {"id": 1, "method": "load", "params": {"program": program_text}}]
        for i, (method, params) in enumerate(warmup):
            requests.append({"id": 10 + i, "method": method, "params": params})
        requests.append({"id": 500, "method": "simplify",
                         "params": {"view": views[0]}})
        replies = {r.get("id"): r for r in daemon_session(daemon, requests)}
        warm = replies[500]
        warm_out, warm_code = (("", 1) if "error" in warm else
                               (warm["result"]["output"],
                                warm["result"]["exit_code"]))
        cli_out, cli_code = cli_run(cli, [program_path, "simplify", views[0]])
        assert (cli_out, cli_code) == (warm_out, warm_code), (
            f"{program_path}: warm-daemon simplify differs from one-shot "
            f"CLI\n--- cli ---\n{cli_out}--- warm daemon ---\n{warm_out}")
        checked += 1

    print(f"diff_cli_daemon: {checked} cases agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
