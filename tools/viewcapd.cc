// viewcapd: the warm-engine analysis daemon.
//
// One long-lived Workspace (catalog + memoizing engine) serves every
// session, so repeated questions hit the engine's caches instead of
// re-deriving closures from scratch — the warm-vs-cold gap that
// bench/BENCH_serving.json measures (>=10x on repeated membership).
// Sessions speak the line-delimited JSON protocol of service/protocol.h
// and multiplex onto the shared engine; verdicts are bit-identical to the
// one-shot viewcap_cli because both are thin shells over the same
// Dispatcher.
//
// Usage:
//   viewcapd [--program=<file>]... [--index=<index-file>] [--threads=N]
//            [--max-candidates=N] [--listen=PORT]
//
// With no --listen the daemon serves a single session on stdin/stdout
// (the mode scripts and the CI smoke test use). With --listen=PORT it
// accepts TCP connections on 127.0.0.1:PORT (PORT 0 picks a free port;
// the chosen port is announced on stderr as "viewcapd: listening on
// port N"), one thread per connection. --program preloads view programs
// at startup; --threads/--max-candidates set the workspace-default
// SearchLimits that requests inherit unless they override per request.
//
// --index attaches a persistent capacity index (built with `viewcap_cli
// index build`) after the preloads, so every session's membership and
// dominance questions are served from the mmap'd file with live-engine
// fallback; a stale or corrupt index fails startup (exit 1) rather than
// silently serving live. The `stats` method reports the index's
// hit/miss/fallback counters.
//
// Shutdown is graceful: a protocol `shutdown` request (any session) or
// SIGINT/SIGTERM stops accepting, unblocks the live sessions, and joins
// them before exiting.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <istream>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "service/cli.h"
#include "service/protocol.h"

namespace {

// The signal handler may only touch async-signal-safe state: it flags the
// stop and half-closes the listening socket so accept() unblocks.
volatile std::sig_atomic_t g_stop = 0;
int g_listen_fd = -1;

void OnSignal(int) {
  g_stop = 1;
  if (g_listen_fd >= 0) ::shutdown(g_listen_fd, SHUT_RDWR);
}

/// A std::streambuf over a connected socket, so TCP sessions run through
/// the exact ServeSession code path the stdio mode uses.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t n = ::read(fd_, in_, sizeof(in_));
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (Flush() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return Flush(); }

 private:
  int Flush() {
    const char* data = pbase();
    std::ptrdiff_t left = pptr() - pbase();
    while (left > 0) {
      const ssize_t wrote = ::write(fd_, data, static_cast<size_t>(left));
      if (wrote <= 0) return -1;
      data += wrote;
      left -= wrote;
    }
    setp(out_, out_ + sizeof(out_));
    return 0;
  }

  int fd_;
  char in_[4096];
  char out_[4096];
};

int UsageError(const std::string& message) {
  if (!message.empty()) {
    std::fprintf(stderr, "viewcapd: %s\n", message.c_str());
  }
  std::fprintf(stderr,
               "usage: viewcapd [--program=<file>]... "
               "[--index=<index-file>] [--threads=N] "
               "[--max-candidates=N] [--listen=PORT]\n");
  return 2;
}

/// Live TCP connections, so shutdown can unblock their reads.
class ConnectionSet {
 public:
  void Add(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    fds_.push_back(fd);
  }
  void Remove(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = fds_.begin(); it != fds_.end(); ++it) {
      if (*it == fd) {
        fds_.erase(it);
        break;
      }
    }
  }
  void ShutdownAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : fds_) ::shutdown(fd, SHUT_RDWR);
  }

 private:
  std::mutex mu_;
  std::vector<int> fds_;
};

int ServeTcp(viewcap::Dispatcher& dispatcher, viewcap::ServerStats& stats,
             unsigned short port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("viewcapd: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 16) < 0) {
    std::perror("viewcapd: bind/listen");
    ::close(listen_fd);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  std::fprintf(stderr, "viewcapd: listening on port %d\n",
               static_cast<int>(ntohs(addr.sin_port)));

  g_listen_fd = listen_fd;
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  ConnectionSet connections;
  std::vector<std::thread> sessions;
  while (g_stop == 0) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (g_stop != 0) break;
      if (errno == EINTR) continue;
      break;
    }
    connections.Add(conn);
    sessions.emplace_back([&dispatcher, &stats, &connections, conn] {
      FdStreambuf buf(conn);
      std::istream in(&buf);
      std::ostream out(&buf);
      const bool shutdown_requested =
          viewcap::ServeSession(dispatcher, &stats, in, out);
      out.flush();
      connections.Remove(conn);
      ::close(conn);
      if (shutdown_requested) OnSignal(0);
    });
  }
  // Stop the remaining sessions at their next read and wait them out.
  connections.ShutdownAll();
  for (std::thread& session : sessions) session.join();
  ::close(listen_fd);
  g_listen_fd = -1;
  std::fprintf(stderr, "viewcapd: shutting down\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> programs;
  std::string index_path;
  viewcap::SearchLimits limits;
  bool listen = false;
  unsigned short port = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    std::size_t count = 0;
    if (name == "--program") {
      programs.push_back(value);
    } else if (name == "--index") {
      if (value.empty()) {
        return UsageError("flag '--index' needs a file path");
      }
      index_path = value;
    } else if (name == "--threads") {
      if (!viewcap::ParseCount(value, &count)) {
        return UsageError("bad thread count '" + value + "'");
      }
      limits.threads = count;
    } else if (name == "--max-candidates") {
      if (!viewcap::ParseCount(value, &count) || count == 0) {
        return UsageError("bad candidate budget '" + value + "'");
      }
      limits.max_candidates = count;
    } else if (name == "--listen") {
      if (!viewcap::ParseCount(value, &count) || count > 65535) {
        return UsageError("bad port '" + value + "'");
      }
      listen = true;
      port = static_cast<unsigned short>(count);
    } else {
      return UsageError("unknown flag '" + arg + "'");
    }
  }

  viewcap::Workspace workspace(limits);
  viewcap::Dispatcher dispatcher(&workspace);
  viewcap::ServerStats stats;

  for (const std::string& path : programs) {
    std::string text;
    if (!viewcap::ReadFileToString(path, &text)) {
      std::fprintf(stderr, "viewcapd: cannot open '%s'\n", path.c_str());
      return 1;
    }
    const viewcap::Status st = workspace.Load(text);
    if (!st.ok()) {
      std::fprintf(stderr, "viewcapd: %s: %s\n", path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }

  // Attach after the preloads so the index is validated against the
  // catalog it will serve. A stale or corrupt index fails startup —
  // silently serving live would defeat the point of deploying one.
  if (!index_path.empty()) {
    const viewcap::Status st = workspace.AttachIndex(index_path);
    if (!st.ok()) {
      std::fprintf(stderr, "viewcapd: %s: %s\n", index_path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }

  if (!listen) {
    viewcap::ServeSession(dispatcher, &stats, std::cin, std::cout);
    return 0;
  }
  return ServeTcp(dispatcher, stats, port);
}
