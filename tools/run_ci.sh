#!/usr/bin/env sh
# The full local CI gate: configure + build the ci-asan preset
# (ASan/UBSan, warnings-as-errors), run the test suite under it, then the
# concurrency-sensitive subset under ThreadSanitizer (ci-tsan preset), and
# finally clang-tidy over the first-party sources. Mirrors what a hosted
# pipeline would run; any stage failing fails the script.
#
#   tools/run_ci.sh
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

echo "== configure (ci-asan) =="
cmake --preset ci-asan

echo "== build (ci-asan) =="
cmake --build --preset ci-asan

echo "== test (ci-asan) =="
ctest --preset ci-asan

echo "== configure (ci-tsan) =="
cmake --preset ci-tsan

echo "== build (ci-tsan) =="
cmake --build --preset ci-tsan

# The ci-tsan test preset filters to the suites that exercise the parallel
# closure search (thread pool, sharded enumeration, engine sharing,
# capacity/equivalence/redundancy drivers).
echo "== test (ci-tsan, parallel subset) =="
ctest --preset ci-tsan

echo "== clang-tidy =="
"$repo_root/tools/run_tidy.sh" "$repo_root/build-asan"

echo "run_ci.sh: all stages passed."
