#!/usr/bin/env sh
# The full local CI gate: configure + build the ci-asan preset
# (ASan/UBSan, warnings-as-errors), run the test suite under it, then the
# concurrency-sensitive subset under ThreadSanitizer (ci-tsan preset), the
# full suite again under standalone UBSan (ci-ubsan preset, catching UB
# that the combined ASan build can mask), clang-tidy over the first-party
# sources, and a threshold-gated benchmark comparison against the checked
# in bench/BENCH_*.json baselines. Mirrors what a hosted pipeline would
# run; any stage failing fails the script.
#
#   tools/run_ci.sh
#
# BENCH_THRESHOLD_PCT (default 50) is the allowed ns_per_op regression per
# benchmark before the perf stage fails; baselines were recorded on a
# different machine, so the gate is deliberately loose — it catches
# order-of-magnitude mistakes, not percent-level drift.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

echo "== configure (ci-asan) =="
cmake --preset ci-asan

echo "== build (ci-asan) =="
cmake --build --preset ci-asan

echo "== test (ci-asan) =="
ctest --preset ci-asan

# Drive the daemon end to end under ASan: scripted stdio and TCP
# sessions (load, membership at two thread counts, live stats), then a
# protocol shutdown — the script asserts verdicts and a clean exit.
echo "== daemon smoke (viewcapd scripted session) =="
python3 "$repo_root/tools/daemon_smoke.py" \
    "$repo_root/build-asan/tools/viewcapd" \
    "$repo_root/examples/programs/example315.vcp"

echo "== configure (ci-tsan) =="
cmake --preset ci-tsan

echo "== build (ci-tsan) =="
cmake --build --preset ci-tsan

# The ci-tsan test preset filters to the suites that exercise the parallel
# closure search (thread pool, sharded enumeration, engine sharing,
# capacity/equivalence/redundancy drivers) plus the SoA-vs-legacy
# homomorphism differential suite (hom_kernel_test), which drives the
# engine at several thread counts. The asan/ubsan presets run the full
# suite, so the differential tests run under all three sanitizers.
echo "== test (ci-tsan, parallel subset) =="
ctest --preset ci-tsan

echo "== configure (ci-ubsan) =="
cmake --preset ci-ubsan

echo "== build (ci-ubsan) =="
cmake --build --preset ci-ubsan

echo "== test (ci-ubsan) =="
ctest --preset ci-ubsan

# The SIMD-vs-scalar differential suite runs inside the three sanitizer
# passes above with runtime backend dispatch; run it once more with the
# SIMD override forced off so the pure-scalar configuration (what
# -DVIEWCAP_SIMD=off ships) keeps the exact same verdicts and counters.
echo "== hom kernel differential (VIEWCAP_SIMD=off) =="
VIEWCAP_SIMD=off "$repo_root/build-asan/tests/hom_kernel_test"

# Persistent capacity index round trip under ASan: build an index over
# every example catalog, reopen it in a fresh process per command, and
# require every verdict to be bit-identical to the live engine (plus the
# stale-index rejection contract). Catches serialization drift that the
# unit tests' in-process round trips could mask.
echo "== index round trip (build / fresh-process query diff) =="
python3 "$repo_root/tools/index_roundtrip.py" \
    "$repo_root/build-asan/tools/viewcap_cli" \
    "$repo_root/examples/programs"

echo "== clang-tidy =="
"$repo_root/tools/run_tidy.sh" "$repo_root/build-asan"

# Every checked-in baseline is gated, including BENCH_homomorphism.json
# (the SoA kernel vs legacy pointer-walking series — the guard against
# regressing the hot homomorphism path).
echo "== bench (threshold-gated against bench/BENCH_*.json) =="
cmake --preset default
bench_out=$(mktemp -d)
trap 'rm -rf "$bench_out"' EXIT
for baseline in "$repo_root"/bench/BENCH_*.json; do
  name=$(basename "$baseline" .json | sed 's/^BENCH_/bench_/')
  cmake --build --preset default --target "$name"
  "$repo_root/build/bench/$name" --json="$bench_out/$name.json"
  python3 "$repo_root/tools/bench_compare.py" "$baseline" \
      "$bench_out/$name.json" --threshold="${BENCH_THRESHOLD_PCT:-50}"
done

echo "run_ci.sh: all stages passed."
