// The memoizing closure engine: interned template classes and shared
// decision caches for the Section 2.4 kernels (see DESIGN.md, "The engine
// layer").
//
// Every decision procedure in the library runs the same
// substitute -> reduce -> canonicalize -> homomorphism pipeline over
// overlapping template sets. An Engine owns that pipeline once per
// analysis run: templates are interned into equivalence classes (same
// TableauId iff equivalent mappings), the hot kernels are memoized behind
// bounded LRU caches, and every cache exports hit/miss/eviction counters
// through an EngineStats snapshot.
//
// Thread-safety contract: every Engine method may be called concurrently
// from the parallel closure-search workers (DESIGN.md, "Parallel search").
// The memo caches are striped behind per-shard mutexes, interning's
// canonical-key bucket insert-or-confirm is atomic under a shard lock, the
// interning store is guarded by a reader/writer lock (published
// representatives are immutable and their references stable), and the
// statistics counters are relaxed atomics. The expensive kernels
// themselves (reduce, canonicalize, substitute, homomorphism search) run
// OUTSIDE all locks; concurrent misses on the same key are collapsed to
// one execution by the caches' compute-once entry point (waiters block
// until the first caller publishes), so each kernel runs at most once per
// key and every request counter is a function of the request sequence,
// not of thread timing. One determinism caveat remains by design: when
// equivalent-but-distinct templates intern concurrently, the race winner
// becomes the class representative, and since expansions substitute the
// representative, the fingerprint sets reaching the reduce/key caches
// (their run/entry counts, not any verdict or witness) can differ between
// parallel runs. The SoA/legacy differential suite pins the full counter
// vector at threads=1 and the scheduling-invariant subset beyond. The
// catalog behind the
// engine is only read; callers minting relations concurrently with
// searches must provide their own exclusion (the library's drivers mint
// before searching).
#ifndef VIEWCAP_ENGINE_ENGINE_H_
#define VIEWCAP_ENGINE_ENGINE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "algebra/expr.h"
#include "base/simd.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "tableau/soa.h"
#include "tableau/substitution.h"
#include "tableau/tableau.h"

namespace viewcap {

/// Identifier of an interned equivalence class of templates. Two templates
/// interned into one Engine receive the same TableauId if and only if they
/// realize the same mapping (Proposition 2.4.3): interning reduces to the
/// core (unique up to isomorphism, Section 4.2), buckets by canonical key
/// (isomorphism-invariant), and confirms key collisions with the exact
/// two-way homomorphism test. Ids are dense indices, stable for the
/// engine's lifetime — the interning store never evicts.
using TableauId = std::size_t;

inline constexpr TableauId kInvalidTableauId =
    static_cast<TableauId>(-1);

/// Outcome of a closure-membership test (Theorem 2.4.11). Lives in the
/// engine layer because membership verdicts are what the engine's verdict
/// cache stores; views/capacity.h re-exports it for its callers.
struct MembershipResult {
  /// True when the query was shown to be in the closure.
  bool member = false;
  /// When member: an expression over the query-set handles whose expansion
  /// is equivalent to the query — the paper's construction T -> beta with
  /// T the witness's template (Theorem 2.3.2).
  ExprPtr witness;
  /// True when the enumeration stopped on max_candidates before either
  /// finding a witness or exhausting the leaf budget; a negative verdict is
  /// then inconclusive.
  bool budget_exhausted = false;
  std::size_t candidates_tried = 0;
  std::size_t leaf_budget = 0;
};

/// Outcome of a dominance test "does `v` dominate `w`", i.e. is Cap(W)
/// contained in Cap(V)? Decided via Lemma 1.5.4: every defining query of
/// W must lie in Cap(V). Lives in the engine layer for the same reason as
/// MembershipResult — whole dominance answers are what the engine's
/// dominance cache stores; views/equivalence.h re-exports it.
struct DominanceResult {
  bool dominates = false;
  /// True when some membership test hit its candidate budget: a negative
  /// answer is then not a proof of non-dominance.
  bool inconclusive = false;
  /// For each definition of `w` (by index) that was found in Cap(V): an
  /// expression over V's schema whose expansion answers it.
  std::vector<ExprPtr> witnesses;
  /// Indices of `w` definitions not found in Cap(V).
  std::vector<std::size_t> missing;
};

/// Engine tuning.
struct EngineOptions {
  /// Per-cache entry bound for the memo caches (reduce, canonical key,
  /// pair predicates, expansions, verdicts). 0 disables memoization (every
  /// request is a miss and nothing is stored). The interning store is
  /// exempt: evicting a class would invalidate issued TableauIds.
  std::size_t max_memo_entries = 1 << 16;

  /// Run the Section 2.4 pair predicates (intern confirms, homomorphism,
  /// row embedding) on the flat SoA kernel over per-class cached SoA
  /// forms (tableau/hom_kernel.h). Off routes them through the legacy
  /// pointer-walking search instead — same verdicts and counters, used by
  /// the engine-level differential tests. SoA forms are cached either
  /// way, so flipping the flag never changes interning behavior.
  bool use_soa_kernel = true;

  /// Candidate-filter backend the kernel searches run on. The default is
  /// the runtime-dispatched widest available backend (honoring the
  /// VIEWCAP_SIMD environment override); the engine clamps an unavailable
  /// request down at construction. Every backend computes bit-identical
  /// candidate lists (hom_filter.h), so this knob changes throughput and
  /// the per-backend stats slot — never verdicts or witnesses.
  SimdBackend simd = DefaultSimdBackend();
};

/// Counter snapshot for one memo cache. `requests - runs` is the hit
/// count; `runs` counts actual kernel executions (misses).
struct CacheCounters {
  std::size_t requests = 0;
  std::size_t runs = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;

  std::size_t hits() const { return requests - runs; }

  bool operator==(const CacheCounters&) const = default;
};

/// Candidate-filter activity of the SoA kernel searches an engine ran,
/// per executed backend (EngineStats::filter is indexed by SimdBackend).
/// `rows` counts candidate target rows pushed through the filter
/// predicate — the lanes processed; `survivors / rows` is the survivor
/// rate the stats renderer reports. Filter work happens only inside
/// actual kernel executions (cache misses), so like the `runs` counters
/// these are exact at threads=1 and scheduling-invariant in total.
struct FilterBackendCounters {
  std::size_t invocations = 0;
  std::size_t rows = 0;
  std::size_t survivors = 0;

  bool operator==(const FilterBackendCounters&) const = default;
};

/// Point-in-time snapshot of an engine's caches (see
/// RenderEngineStats in core/report.h for the human-readable form). Under
/// concurrent use the counters are relaxed atomics: totals are exact once
/// the workers have quiesced, but a snapshot taken mid-search may be
/// momentarily inconsistent across counters (e.g. requests read before a
/// racing run is counted).
struct EngineStats {
  CacheCounters reduce;         ///< Reduce-to-core kernel (Prop 2.4.4).
  CacheCounters canonical_key;  ///< CanonicalKey kernel.
  CacheCounters homomorphism;   ///< Hom existence between interned pairs.
  CacheCounters row_embedding;  ///< Row-embedding between interned pairs.
  CacheCounters expansion;      ///< Reduced T -> beta expansion classes.
  CacheCounters verdict;        ///< Membership verdicts per (set, query).
  CacheCounters dominance;      ///< Dominance verdicts per (view pair).

  std::size_t intern_requests = 0;
  std::size_t intern_hits = 0;       ///< Existing class found.
  std::size_t interned_classes = 0;  ///< Live classes (never evicted).
  /// EquivalentTableaux confirmations run to resolve canonical-key bucket
  /// collisions during interning.
  std::size_t equivalence_confirms = 0;

  /// Per-backend candidate-filter counters (indexed by SimdBackend; a
  /// single-backend engine accumulates in exactly one slot).
  std::array<FilterBackendCounters, kNumSimdBackends> filter = {};

  bool operator==(const EngineStats&) const = default;
};

/// Exact structural fingerprint of a template: equal strings iff equal
/// universe, rows, tags and symbols (no renaming). Used as the memo key
/// for the per-template kernels, where canonical keys would be unsound
/// (the beyond-threshold signature path of CanonicalKey may collide for
/// non-equivalent templates).
std::string TableauFingerprint(const Tableau& t);

/// Version of the fingerprint/cache-key scheme: TableauFingerprint's
/// format, the verdict-key layout built by CapacityOracle::VerdictKey and
/// the dominance-key layout of DominanceKeyFor. Bump whenever any of those
/// encodings changes — the persistent capacity index stamps this version
/// into its header and a reader rejects files written under a different
/// scheme (src/index/), so stale key layouts are never silently served.
inline constexpr std::uint32_t kFingerprintSchemeVersion = 1;

class Engine;
struct HomScratch;

/// One membership question as the persistent index sees it: the query
/// set's members (handles and interned classes, in member order), the
/// interned query class, and the search limits the caller is using.
/// Everything is expressed in process-local TableauIds; the index
/// implementation translates them to its stored class ordinals via the
/// engine's canonical keys (see src/index/index_reader.h).
struct MembershipProbe {
  const std::vector<RelId>* handles = nullptr;
  const std::vector<TableauId>* member_ids = nullptr;
  /// The oracle's set fingerprint — a process-local cache key the index
  /// may use to memoize its own set resolution (never persisted).
  const std::string* set_fingerprint = nullptr;
  TableauId query_id = kInvalidTableauId;
  std::size_t extra_leaves = 0;
  std::size_t max_leaves = 0;
  std::size_t max_candidates = 0;
};

/// A read-only source of precomputed verdicts consulted between the
/// engine's in-memory caches and a live closure search (the persistent
/// capacity index of src/index/ is the one implementation; tests stub
/// it). A lookup either returns the exact verdict the live engine would
/// compute — bit-identical member/witness/budget fields — or nullopt, in
/// which case the caller falls back to the live search. Implementations
/// must be safe for concurrent lookups and must record their own
/// hit/miss/fallback counters.
class VerdictIndex {
 public:
  virtual ~VerdictIndex() = default;

  /// Precomputed Theorem 2.4.11 membership verdict, or nullopt when the
  /// probe's set, query class or limits are not covered.
  virtual std::optional<MembershipResult> LookupMembership(
      Engine& engine, const MembershipProbe& probe) = 0;

  /// Precomputed Lemma 1.5.4 dominance verdict under the exact
  /// process-independent dominance key (DominanceKeyFor), or nullopt.
  virtual std::optional<DominanceResult> LookupDominance(
      Engine& engine, const std::string& key) = 0;
};

/// A bounded memo cache with LRU eviction. Values are returned by pointer
/// valid only until the next Put (eviction may free them); callers copy
/// immediately. Capacity 0 disables the cache entirely: Get always misses
/// and Put stores nothing. NOT thread-safe — this is the single-stripe
/// core; concurrent callers go through StripedMemoCache, which shards keys
/// across independently locked MemoCache stripes.
template <typename Value>
class MemoCache {
 public:
  explicit MemoCache(std::size_t capacity) : capacity_(capacity) {}

  /// nullptr on miss; refreshes recency on hit.
  const Value* Get(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// No-op when the cache is disabled (capacity 0).
  void Put(const std::string& key, Value value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  std::size_t size() const { return index_.size(); }
  std::size_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<std::string, Value>> order_;  // Front = most recent.
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, Value>>::
                         iterator>
      index_;
  std::size_t evictions_ = 0;
};

/// Thread-safe facade over hash-sharded MemoCache stripes, each behind its
/// own mutex. The total capacity is divided exactly across the stripes, so
/// the aggregate entry bound equals the configured capacity; LRU recency
/// is tracked per stripe (an approximation of global LRU — see DESIGN.md,
/// "Parallel search", for the tradeoff against per-worker caches). Small
/// capacities (or 0 = disabled) collapse to a single stripe so the
/// historical single-threaded eviction order is preserved exactly.
template <typename Value>
class StripedMemoCache {
 public:
  /// Stripe count for capacities large enough to shard.
  static constexpr std::size_t kStripes = 8;

  explicit StripedMemoCache(std::size_t capacity) {
    const std::size_t stripes =
        capacity >= kStripes * kStripes ? kStripes : 1;
    stripes_.reserve(stripes);
    for (std::size_t i = 0; i < stripes; ++i) {
      // Distribute the capacity exactly: the first capacity % stripes
      // stripes take one extra entry.
      const std::size_t share =
          capacity / stripes + (i < capacity % stripes ? 1 : 0);
      stripes_.push_back(std::make_unique<Stripe>(share));
    }
  }

  /// Copy-out get: the stripe lock is held only for the lookup, so the
  /// returned value stays valid regardless of concurrent Puts.
  std::optional<Value> Get(const std::string& key) {
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    const Value* hit = stripe.cache.Get(key);
    if (hit == nullptr) return std::nullopt;
    return *hit;
  }

  void Put(const std::string& key, Value value) {
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.cache.Put(key, std::move(value));
  }

  /// Compute-once get. On a miss, exactly one caller runs `compute`
  /// (outside the stripe lock); concurrent requests for the same key
  /// block until the result is published and then return it as a hit.
  /// `*ran` reports whether THIS call executed `compute`, so run counters
  /// derived from it count one execution per key regardless of how the
  /// requests interleave — the property the engine's differential stats
  /// tests depend on. `compute` returns std::optional<Value>; nullopt is
  /// not cached (the caller surfaces its own error) and releases any
  /// waiters to compute for themselves, matching the serial behavior of
  /// re-running an uncacheable request. With the cache disabled
  /// (capacity 0) every call computes immediately and nothing blocks.
  template <typename Fn>
  std::optional<Value> GetOrCompute(const std::string& key,
                                    const Fn& compute, bool* ran) {
    Stripe& stripe = StripeFor(key);
    {
      std::unique_lock<std::mutex> lock(stripe.mu);
      if (!stripe.disabled) {
        for (;;) {
          if (const Value* hit = stripe.cache.Get(key)) {
            *ran = false;
            return *hit;
          }
          if (stripe.in_flight.find(key) == stripe.in_flight.end()) break;
          stripe.cv.wait(lock);
        }
        stripe.in_flight.insert(key);
      }
    }
    *ran = true;
    std::optional<Value> value = compute();
    if (stripe.disabled) return value;
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      stripe.in_flight.erase(key);
      if (value.has_value()) stripe.cache.Put(key, *value);
    }
    stripe.cv.notify_all();
    return value;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe->mu);
      total += stripe->cache.size();
    }
    return total;
  }

  std::size_t evictions() const {
    std::size_t total = 0;
    for (const auto& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe->mu);
      total += stripe->cache.evictions();
    }
    return total;
  }

 private:
  struct Stripe {
    explicit Stripe(std::size_t capacity)
        : cache(capacity), disabled(capacity == 0) {}
    mutable std::mutex mu;
    std::condition_variable cv;
    MemoCache<Value> cache;
    /// Keys whose value is being computed by some caller right now
    /// (GetOrCompute); requests for them wait instead of duplicating the
    /// kernel execution.
    std::unordered_set<std::string> in_flight;
    const bool disabled;
  };

  Stripe& StripeFor(const std::string& key) {
    return *stripes_[std::hash<std::string>{}(key) % stripes_.size()];
  }

  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// One analysis run's shared closure machinery. The catalog must outlive
/// the engine; catalog growth (minted handles) is fine — the engine never
/// enumerates the catalog. Safe for concurrent use by the parallel search
/// workers (see the file comment for the exact contract).
class Engine {
 public:
  explicit Engine(const Catalog* catalog, EngineOptions options = {});

  const Catalog& catalog() const { return *catalog_; }
  const EngineOptions& options() const { return options_; }

  /// Memoized Reduce (Proposition 2.4.4), keyed by exact fingerprint.
  /// Returns by value: the backing cache entry may be evicted later.
  Tableau Reduced(const Tableau& t);

  /// Memoized CanonicalKey, keyed by exact fingerprint.
  std::string Key(const Tableau& t);

  /// Interns `t`'s equivalence class: reduce, canonical-key bucket,
  /// confirm collisions with EquivalentTableaux. Every template is reduced
  /// and canonicalized at most once per engine. The bucket insert-or-
  /// confirm is atomic under a per-key shard lock, so concurrent interns
  /// of equivalent templates agree on one id. A bounded fingerprint ->
  /// id memo short-circuits re-interning an exact previously seen form
  /// (the warm-engine steady state) without touching the reduce /
  /// canonical-key / lowering kernels.
  TableauId Intern(const Tableau& t);

  /// The class's stored reduced representative. The reference is stable
  /// for the engine's lifetime: the interning store is a deque, so adding
  /// classes never moves previously stored representatives, and published
  /// representatives are immutable.
  const Tableau& Representative(TableauId id) const;

  /// The class representative's cached SoA lowering — computed exactly
  /// once per equivalence class, when the class is interned. Reference
  /// stability mirrors Representative(): the store is a deque of
  /// immutable published entries.
  const SoaTemplate& SoaForm(TableauId id) const;

  /// Mapping equivalence as an id comparison (Proposition 2.4.3 via the
  /// interning invariant).
  bool Equivalent(const Tableau& a, const Tableau& b);

  /// Memoized homomorphism existence Representative(from) ->
  /// Representative(to) (Proposition 2.4.1). Equivalent to the test on any
  /// class members: homomorphisms compose with the two-way homomorphisms
  /// linking a member to its representative.
  bool HomomorphismExists(TableauId from, TableauId to);

  /// Memoized row-embedding existence between class representatives (the
  /// capacity search's completeness-preserving prune). Row embeddings also
  /// compose with homomorphisms, so the verdict is class-invariant.
  bool RowEmbeds(TableauId from, TableauId to);

  /// Wave form of RowEmbeds: evaluates every (froms[i], to) pair against
  /// the one shared target, reusing kernel scratch and the target's SoA
  /// form across the batch. results[i] == RowEmbeds(froms[i], to), with
  /// identical per-pair cache consults and counter bumps in index order —
  /// the bulk-submission entry the sharded enumerator and the redundancy
  /// scans feed.
  std::vector<char> RowEmbedsBatch(const std::vector<TableauId>& froms,
                                   TableauId to);

  /// The class of the reduced expansion Reduce(Representative(level) ->
  /// beta), memoized by (level, interned classes of beta's assignments on
  /// RN(level)). By the substitution congruence (Lemma 2.3.1) the class
  /// depends only on those inputs, so the cache is shared across query
  /// sets that route the same handles to equivalent queries — redundancy's
  /// leave-one-out loops reuse the full-set closure frontier.
  Result<TableauId> ExpansionClass(TableauId level,
                                   const TemplateAssignment& beta);

  /// Cached membership verdict lookup. Keys are built by the capacity
  /// oracle from (query-set fingerprint, search limits, query class); see
  /// DESIGN.md for why the set fingerprint includes the handle names.
  /// Returns by value: under concurrency a pointer into the cache could
  /// dangle on the next store.
  std::optional<MembershipResult> LookupVerdict(const std::string& key);
  void StoreVerdict(const std::string& key, const MembershipResult& verdict);

  /// Cached dominance verdict lookup (whole Lemma 1.5.4 answers, one
  /// level above the membership verdicts). Keys are built by
  /// views/equivalence from the member-wise fingerprints of both views
  /// plus the search limits — fingerprints, not interned ids, so a warm
  /// hit costs string building and one probe, never an intern.
  std::optional<DominanceResult> LookupDominance(const std::string& key);
  void StoreDominance(const std::string& key, const DominanceResult& verdict);

  /// The worker pool shared by every parallel search running over this
  /// engine, sized for `total_threads` concurrent threads (the pool holds
  /// total_threads - 1 workers; the searching thread itself is the last
  /// party). Created lazily on first use — serial runs never spawn a
  /// thread — and grown, never shrunk, by later calls asking for more.
  ThreadPool* SharedPool(std::size_t total_threads);

  /// One-call consistent snapshot of the relaxed-atomic statistics: the
  /// counters are re-read until two consecutive full reads agree (bounded
  /// retries), so a quiescent engine always reports an exact, mutually
  /// consistent vector and a busy one reports the last stable-enough
  /// read. This is the single entry point for every stats consumer — the
  /// CLI's --engine-stats, the daemon's live `stats` method, the report
  /// renderer — none of them read individual counters field-by-field.
  EngineStats StatsSnapshot() const;

  /// Deprecated spelling of StatsSnapshot(), kept for older callers.
  EngineStats Stats() const { return StatsSnapshot(); }

  /// Attaches a precomputed verdict source (or detaches with nullptr).
  /// The index must outlive its attachment; verdict consumers
  /// (CapacityOracle::Contains, Dominates) consult it after an in-memory
  /// cache miss and before a live search. Attachment is atomic so a
  /// serving process may attach while searches run; lookups already in
  /// flight simply miss it.
  void AttachIndex(VerdictIndex* index) {
    attached_index_.store(index, std::memory_order_release);
  }
  VerdictIndex* attached_index() const {
    return attached_index_.load(std::memory_order_acquire);
  }

 private:
  /// One relaxed pass over every counter; under concurrent use the result
  /// may mix before/after values of a racing update (StatsSnapshot's
  /// retry loop is what restores consistency).
  EngineStats ReadStatsOnce() const;

  /// Relaxed-atomic counter shorthand (statistics only; never used for
  /// synchronization).
  using Counter = std::atomic<std::size_t>;
  static std::size_t Load(const Counter& c) {
    return c.load(std::memory_order_relaxed);
  }
  static void Bump(Counter& c) { c.fetch_add(1, std::memory_order_relaxed); }
  static void Add(Counter& c, std::size_t n) {
    if (n != 0) c.fetch_add(n, std::memory_order_relaxed);
  }

  /// The thread-local kernel scratch, configured for this engine: backend
  /// set to the resolved EngineOptions::simd and filter counters zeroed.
  /// Every kernel call site pairs it with HarvestFilter, which folds the
  /// counters the calls accumulated into the per-backend stats slot.
  /// Leases never nest: each site prepares, runs its searches, and
  /// harvests before returning to code that could take another lease.
  HomScratch& PreparedScratch();
  void HarvestFilter(const HomScratch& scratch);

  /// Shard count for the interning bucket locks.
  static constexpr std::size_t kInternShards = 16;

  const Catalog* catalog_;
  EngineOptions options_;

  // Interning store: never evicted (ids must stay valid). A deque, not a
  // vector, so Representative() references survive later Intern() growth
  // (ExpansionClass interns beta's assignments while holding the level's
  // representative). classes_mu_ guards the deque's internal structure
  // only: published elements are immutable and their references stable, so
  // readers hold the lock just for the index operation.
  /// True when the class's representative and `reduced` realize the same
  /// mapping; `reduced_soa` is the caller's lowering of `reduced`.
  bool ConfirmEquivalent(TableauId id, const Tableau& reduced,
                         const SoaTemplate& reduced_soa);

  mutable std::shared_mutex classes_mu_;
  std::deque<Tableau> classes_;  // id -> reduced representative.
  std::deque<SoaTemplate> soa_classes_;  // id -> cached SoA lowering.

  // Canonical-key buckets. buckets_mu_ guards the map's find-or-insert
  // (references to mapped vectors survive rehashing); each vector is then
  // owned by the shard lock of its key, which is held across the whole
  // insert-or-confirm so concurrent interns of one class serialize.
  std::mutex buckets_mu_;
  std::array<std::mutex, kInternShards> intern_shard_mu_;
  std::unordered_map<std::string, std::vector<TableauId>> key_buckets_;

  // Lazily created parallel-search pool (SharedPool).
  std::mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_;

  StripedMemoCache<Tableau> reduce_cache_;
  StripedMemoCache<std::string> key_cache_;
  // Exact-fingerprint -> interned id fast path. Ids are never invalidated
  // (classes are not evicted), so a bounded LRU over the mapping is safe:
  // eviction only re-routes a future request through the slow path, which
  // re-derives the same id.
  StripedMemoCache<TableauId> intern_cache_;
  StripedMemoCache<bool> hom_cache_;
  StripedMemoCache<bool> embed_cache_;
  StripedMemoCache<TableauId> expansion_cache_;
  StripedMemoCache<MembershipResult> verdict_cache_;
  StripedMemoCache<DominanceResult> dominance_cache_;

  // requests/runs counters; entries/evictions come from the caches.
  Counter reduce_requests_{0}, reduce_runs_{0};
  Counter key_requests_{0}, key_runs_{0};
  Counter hom_requests_{0}, hom_runs_{0};
  Counter embed_requests_{0}, embed_runs_{0};
  Counter expansion_requests_{0}, expansion_runs_{0};
  Counter verdict_requests_{0}, verdict_runs_{0};
  Counter dominance_requests_{0}, dominance_runs_{0};
  Counter intern_requests_{0}, intern_hits_{0};
  Counter equivalence_confirms_{0};

  // Per-backend candidate-filter counters (EngineStats::filter),
  // harvested from kernel scratch after each search batch. An engine
  // accumulates in exactly one slot — the resolved backend — but the
  // array keeps snapshots meaningful across engines with different
  // options in one process.
  std::array<Counter, kNumSimdBackends> filter_invocations_ = {};
  std::array<Counter, kNumSimdBackends> filter_rows_ = {};
  std::array<Counter, kNumSimdBackends> filter_survivors_ = {};
  SimdBackend resolved_simd_;

  std::atomic<VerdictIndex*> attached_index_{nullptr};
};

}  // namespace viewcap

#endif  // VIEWCAP_ENGINE_ENGINE_H_
