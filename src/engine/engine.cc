#include "engine/engine.h"

#include <charconv>

#include "base/check.h"
#include "base/strings.h"
#include "tableau/canonical.h"
#include "tableau/hom_kernel.h"
#include "tableau/homomorphism.h"
#include "tableau/reduce.h"

namespace viewcap {

namespace {

// Kernel scratch reused across every search a thread runs through this
// translation unit: engine searches are frequent and small, so the
// steady state does no allocation.
HomScratch& KernelScratch() {
  thread_local HomScratch scratch;
  return scratch;
}

// Appends the decimal rendering of `v` without allocating. Fingerprints
// sit on every memo-cache probe and on the interning fast path, so they
// cannot afford the ostringstream that StrCat constructs per call.
void AppendU32(std::uint32_t v, std::string* out) {
  char buf[10];
  char* end = std::to_chars(buf, buf + sizeof(buf), v).ptr;
  out->append(buf, end);
}

}  // namespace

std::string TableauFingerprint(const Tableau& t) {
  std::string out;
  out.reserve(32 + 8 * t.universe().size() + 24 * t.size());
  out.push_back('U');
  for (AttrId a : t.universe()) {
    AppendU32(a, &out);
    out.push_back(',');
  }
  for (const TaggedTuple& row : t.rows()) {
    out += "|r";
    AppendU32(row.rel, &out);
    out.push_back(':');
    for (std::size_t k = 0; k < row.tuple.size(); ++k) {
      const Symbol& s = row.tuple.ValueAt(k);
      AppendU32(s.attr, &out);
      out.push_back('.');
      AppendU32(s.ordinal, &out);
      out.push_back(',');
    }
  }
  return out;
}

Engine::Engine(const Catalog* catalog, EngineOptions options)
    : catalog_(catalog),
      options_(options),
      reduce_cache_(options.max_memo_entries),
      key_cache_(options.max_memo_entries),
      intern_cache_(options.max_memo_entries),
      hom_cache_(options.max_memo_entries),
      embed_cache_(options.max_memo_entries),
      expansion_cache_(options.max_memo_entries),
      verdict_cache_(options.max_memo_entries),
      dominance_cache_(options.max_memo_entries),
      resolved_simd_(ResolveSimdBackend(options.simd)) {}

HomScratch& Engine::PreparedScratch() {
  HomScratch& scratch = KernelScratch();
  scratch.backend = resolved_simd_;
  scratch.filter.counters.Reset();
  return scratch;
}

void Engine::HarvestFilter(const HomScratch& scratch) {
  const FilterCounters& c = scratch.filter.counters;
  if (c.invocations == 0) return;
  const std::size_t b = SimdBackendIndex(scratch.backend);
  Add(filter_invocations_[b], static_cast<std::size_t>(c.invocations));
  Add(filter_rows_[b], static_cast<std::size_t>(c.rows));
  Add(filter_survivors_[b], static_cast<std::size_t>(c.survivors));
}

Tableau Engine::Reduced(const Tableau& t) {
  Bump(reduce_requests_);
  const std::string fingerprint = TableauFingerprint(t);
  bool ran = false;
  std::optional<Tableau> reduced = reduce_cache_.GetOrCompute(
      fingerprint,
      [&]() -> std::optional<Tableau> {
        // The sweep inside Reduce runs on this engine's configured
        // candidate-filter backend and its filter work lands in the
        // per-backend stats.
        HomScratch& scratch = PreparedScratch();
        Tableau result = Reduce(*catalog_, t, scratch);
        HarvestFilter(scratch);
        return result;
      },
      &ran);
  if (ran) {
    Bump(reduce_runs_);
    // A core is its own reduction, so pre-seed the result's entry too:
    // later requests for the already-reduced form (e.g. re-interning a
    // representative) stay hits.
    const std::string reduced_fingerprint = TableauFingerprint(*reduced);
    if (reduced_fingerprint != fingerprint) {
      reduce_cache_.Put(reduced_fingerprint, *reduced);
    }
  }
  return *std::move(reduced);
}

std::string Engine::Key(const Tableau& t) {
  Bump(key_requests_);
  const std::string fingerprint = TableauFingerprint(t);
  bool ran = false;
  std::optional<std::string> key = key_cache_.GetOrCompute(
      fingerprint,
      [&]() -> std::optional<std::string> { return CanonicalKey(t); }, &ran);
  if (ran) Bump(key_runs_);
  return *std::move(key);
}

TableauId Engine::Intern(const Tableau& t) {
  Bump(intern_requests_);
  // Fast path: an exact form interned before maps straight to its id —
  // the warm-engine steady state, where the same query templates are
  // re-interned on every request. Skips the reduce / canonical-key /
  // lowering kernels and the bucket confirms entirely. The request
  // counters of the skipped kernels are still bumped: a completed prior
  // intern of this exact form left their cache entries warm, so the
  // calls this path replaces would have been pure hits — bumping keeps
  // the counter flow identical whichever path answers, which the
  // differential tests rely on at every thread count.
  const std::string fingerprint = TableauFingerprint(t);
  if (std::optional<TableauId> memo = intern_cache_.Get(fingerprint)) {
    Bump(reduce_requests_);
    Bump(key_requests_);
    Bump(intern_hits_);
    return *memo;
  }
  // The expensive kernels run before any interning lock is taken: they are
  // memoized behind their own stripe locks. The SoA lowering of the
  // reduced form also happens here, once: on a new class it is published
  // as the class's cached form, on a hit it backed the confirms.
  Tableau reduced = Reduced(t);
  const std::string key = Key(reduced);
  SoaTemplate reduced_soa = SoaTemplate::Lower(reduced);
  // The shard lock serializes the whole insert-or-confirm for this key
  // (equivalent templates reduce to isomorphic cores, so they share a
  // canonical key and therefore a shard): two threads interning one class
  // concurrently agree on a single id.
  std::lock_guard<std::mutex> shard_lock(
      intern_shard_mu_[std::hash<std::string>{}(key) % kInternShards]);
  // Double-check the fingerprint memo under the shard lock: a racing
  // intern of this exact form publishes its id before releasing the lock
  // (equal forms share a canonical key and therefore a shard), so losing
  // the race is detected here deterministically instead of re-running
  // the bucket confirms — keeping the confirm counters independent of
  // thread interleaving.
  if (std::optional<TableauId> memo = intern_cache_.Get(fingerprint)) {
    Bump(intern_hits_);
    return *memo;
  }
  std::vector<TableauId>* bucket;
  {
    // References to mapped values survive unordered_map rehashes, so the
    // map lock covers only the find-or-insert; the vector itself is owned
    // by the shard lock already held.
    std::lock_guard<std::mutex> map_lock(buckets_mu_);
    bucket = &key_buckets_[key];
  }
  for (TableauId id : *bucket) {
    // A canonical-key hit is only a candidate: beyond the exact-form row
    // threshold keys are invariant signatures that non-equivalent
    // templates may share.
    Bump(equivalence_confirms_);
    if (ConfirmEquivalent(id, reduced, reduced_soa)) {
      Bump(intern_hits_);
      intern_cache_.Put(fingerprint, id);
      return id;
    }
  }
  TableauId id;
  {
    std::lock_guard<std::shared_mutex> classes_lock(classes_mu_);
    id = classes_.size();
    classes_.push_back(std::move(reduced));
    soa_classes_.push_back(std::move(reduced_soa));
    bucket->push_back(id);
  }
  intern_cache_.Put(fingerprint, id);
  return id;
}

bool Engine::ConfirmEquivalent(TableauId id, const Tableau& reduced,
                               const SoaTemplate& reduced_soa) {
  const Tableau& rep = Representative(id);
  if (!options_.use_soa_kernel) {
    return legacy::EquivalentTableaux(*catalog_, rep, reduced);
  }
  if (rep.Trs() != reduced.Trs()) return false;
  if (rep.universe() != reduced.universe()) return false;
  const SoaTemplate& rep_soa = SoaForm(id);
  HomScratch& scratch = PreparedScratch();
  const bool equivalent =
      SoaSearch(rep_soa, reduced_soa, HomMode::kHomomorphism, scratch,
                nullptr) &&
      SoaSearch(reduced_soa, rep_soa, HomMode::kHomomorphism, scratch,
                nullptr);
  HarvestFilter(scratch);
  return equivalent;
}

const Tableau& Engine::Representative(TableauId id) const {
  // The lock covers only the index operation: deque references are stable
  // under push_back and published elements are immutable.
  std::shared_lock<std::shared_mutex> lock(classes_mu_);
  VIEWCAP_CHECK(id < classes_.size());
  return classes_[id];
}

const SoaTemplate& Engine::SoaForm(TableauId id) const {
  std::shared_lock<std::shared_mutex> lock(classes_mu_);
  VIEWCAP_CHECK(id < soa_classes_.size());
  return soa_classes_[id];
}

bool Engine::Equivalent(const Tableau& a, const Tableau& b) {
  return Intern(a) == Intern(b);
}

bool Engine::HomomorphismExists(TableauId from, TableauId to) {
  Bump(hom_requests_);
  const std::string key = StrCat(from, "~", to);
  bool ran = false;
  std::optional<bool> exists = hom_cache_.GetOrCompute(
      key,
      [&]() -> std::optional<bool> {
        if (options_.use_soa_kernel) {
          if (Representative(from).universe() !=
              Representative(to).universe()) {
            return false;
          }
          HomScratch& scratch = PreparedScratch();
          const bool exists = SoaSearch(SoaForm(from), SoaForm(to),
                                        HomMode::kHomomorphism, scratch,
                                        nullptr);
          HarvestFilter(scratch);
          return exists;
        }
        return legacy::HasHomomorphism(*catalog_, Representative(from),
                                       Representative(to));
      },
      &ran);
  if (ran) Bump(hom_runs_);
  return *exists;
}

bool Engine::RowEmbeds(TableauId from, TableauId to) {
  Bump(embed_requests_);
  const std::string key = StrCat(from, "~", to);
  bool ran = false;
  std::optional<bool> embeds = embed_cache_.GetOrCompute(
      key,
      [&]() -> std::optional<bool> {
        if (options_.use_soa_kernel) {
          if (Representative(from).universe() !=
              Representative(to).universe()) {
            return false;
          }
          HomScratch& scratch = PreparedScratch();
          const bool embeds = SoaSearch(SoaForm(from), SoaForm(to),
                                        HomMode::kRowEmbedding, scratch,
                                        nullptr);
          HarvestFilter(scratch);
          return embeds;
        }
        return legacy::HasRowEmbedding(*catalog_, Representative(from),
                                       Representative(to));
      },
      &ran);
  if (ran) Bump(embed_runs_);
  return *embeds;
}

std::vector<char> Engine::RowEmbedsBatch(const std::vector<TableauId>& froms,
                                         TableauId to) {
  std::vector<char> results(froms.size(), 0);
  if (froms.empty()) return results;
  // Target-side state is resolved once for the whole wave; per-pair cache
  // consults and counters stay identical to sequential RowEmbeds calls so
  // the batch entry is semantically (and statistically) transparent.
  const Tableau& to_rep = Representative(to);
  const SoaTemplate& to_soa = SoaForm(to);
  // One scratch lease covers the wave: filter counters accumulate over
  // every search of the batch and are harvested once at the end.
  HomScratch& scratch = PreparedScratch();
  for (std::size_t i = 0; i < froms.size(); ++i) {
    const TableauId from = froms[i];
    Bump(embed_requests_);
    const std::string key = StrCat(from, "~", to);
    bool ran = false;
    std::optional<bool> embeds = embed_cache_.GetOrCompute(
        key,
        [&]() -> std::optional<bool> {
          if (options_.use_soa_kernel) {
            return Representative(from).universe() == to_rep.universe() &&
                   SoaSearch(SoaForm(from), to_soa, HomMode::kRowEmbedding,
                             scratch, nullptr);
          }
          return legacy::HasRowEmbedding(*catalog_, Representative(from),
                                         to_rep);
        },
        &ran);
    if (ran) Bump(embed_runs_);
    results[i] = *embeds ? 1 : 0;
  }
  HarvestFilter(scratch);
  return results;
}

Result<TableauId> Engine::ExpansionClass(TableauId level,
                                         const TemplateAssignment& beta) {
  Bump(expansion_requests_);
  const Tableau& rep = Representative(level);
  std::string key = StrCat("L", level, "|");
  bool keyed = true;
  for (RelId rel : rep.RelNames()) {
    auto it = beta.find(rel);
    if (it == beta.end()) {
      // Let the substitution surface the NotFound error uncached.
      keyed = false;
      break;
    }
    key += StrCat(rel, ">", Intern(it->second), ";");
  }
  if (!keyed) {
    Bump(expansion_runs_);
    SymbolPool pool;
    VIEWCAP_ASSIGN_OR_RETURN(Tableau expansion,
                             SubstituteTableau(*catalog_, rep, beta, pool));
    return Intern(expansion);
  }
  Status failure = Status::OK();
  bool ran = false;
  std::optional<TableauId> id = expansion_cache_.GetOrCompute(
      key,
      [&]() -> std::optional<TableauId> {
        SymbolPool pool;
        Result<Tableau> expansion =
            SubstituteTableau(*catalog_, rep, beta, pool);
        if (!expansion.ok()) {
          // Not cached: the error is surfaced by this caller and any
          // waiter re-runs the substitution for its own error.
          failure = expansion.status();
          return std::nullopt;
        }
        return Intern(*std::move(expansion));
      },
      &ran);
  if (ran) Bump(expansion_runs_);
  if (!id.has_value()) return failure;
  return *id;
}

std::optional<MembershipResult> Engine::LookupVerdict(
    const std::string& key) {
  Bump(verdict_requests_);
  std::optional<MembershipResult> hit = verdict_cache_.Get(key);
  if (!hit.has_value()) Bump(verdict_runs_);
  return hit;
}

void Engine::StoreVerdict(const std::string& key,
                          const MembershipResult& verdict) {
  verdict_cache_.Put(key, verdict);
}

std::optional<DominanceResult> Engine::LookupDominance(
    const std::string& key) {
  Bump(dominance_requests_);
  std::optional<DominanceResult> hit = dominance_cache_.Get(key);
  if (!hit.has_value()) Bump(dominance_runs_);
  return hit;
}

void Engine::StoreDominance(const std::string& key,
                            const DominanceResult& verdict) {
  dominance_cache_.Put(key, verdict);
}

ThreadPool* Engine::SharedPool(std::size_t total_threads) {
  const std::size_t workers = total_threads > 0 ? total_threads - 1 : 0;
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(workers);
  } else {
    pool_->EnsureWorkers(workers);
  }
  return pool_.get();
}

EngineStats Engine::ReadStatsOnce() const {
  EngineStats stats;
  stats.reduce = {Load(reduce_requests_), Load(reduce_runs_),
                  reduce_cache_.evictions(), reduce_cache_.size()};
  stats.canonical_key = {Load(key_requests_), Load(key_runs_),
                         key_cache_.evictions(), key_cache_.size()};
  stats.homomorphism = {Load(hom_requests_), Load(hom_runs_),
                        hom_cache_.evictions(), hom_cache_.size()};
  stats.row_embedding = {Load(embed_requests_), Load(embed_runs_),
                         embed_cache_.evictions(), embed_cache_.size()};
  stats.expansion = {Load(expansion_requests_), Load(expansion_runs_),
                     expansion_cache_.evictions(), expansion_cache_.size()};
  stats.verdict = {Load(verdict_requests_), Load(verdict_runs_),
                   verdict_cache_.evictions(), verdict_cache_.size()};
  stats.dominance = {Load(dominance_requests_), Load(dominance_runs_),
                     dominance_cache_.evictions(), dominance_cache_.size()};
  stats.intern_requests = Load(intern_requests_);
  stats.intern_hits = Load(intern_hits_);
  {
    std::shared_lock<std::shared_mutex> lock(classes_mu_);
    stats.interned_classes = classes_.size();
  }
  stats.equivalence_confirms = Load(equivalence_confirms_);
  for (std::size_t b = 0; b < kNumSimdBackends; ++b) {
    stats.filter[b] = {Load(filter_invocations_[b]), Load(filter_rows_[b]),
                       Load(filter_survivors_[b])};
  }
  return stats;
}

EngineStats Engine::StatsSnapshot() const {
  // Seqlock-style consistency without a writer lock: keep re-reading the
  // whole counter vector until two consecutive reads agree. On a
  // quiescent engine the first retry confirms immediately; under heavy
  // concurrent mutation the loop gives up after a few rounds and returns
  // the freshest read (momentary cross-counter skew is acceptable there
  // by the EngineStats contract).
  constexpr int kMaxRetries = 4;
  EngineStats prev = ReadStatsOnce();
  for (int i = 0; i < kMaxRetries; ++i) {
    EngineStats next = ReadStatsOnce();
    if (next == prev) return next;
    prev = next;
  }
  return prev;
}

}  // namespace viewcap
