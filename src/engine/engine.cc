#include "engine/engine.h"

#include "base/check.h"
#include "base/strings.h"
#include "tableau/canonical.h"
#include "tableau/homomorphism.h"
#include "tableau/reduce.h"

namespace viewcap {

std::string TableauFingerprint(const Tableau& t) {
  std::string out = "U";
  for (AttrId a : t.universe()) out += StrCat(a, ",");
  for (const TaggedTuple& row : t.rows()) {
    out += StrCat("|r", row.rel, ":");
    for (std::size_t k = 0; k < row.tuple.size(); ++k) {
      const Symbol& s = row.tuple.ValueAt(k);
      out += StrCat(s.attr, ".", s.ordinal, ",");
    }
  }
  return out;
}

Engine::Engine(const Catalog* catalog, EngineOptions options)
    : catalog_(catalog),
      options_(options),
      reduce_cache_(options.max_memo_entries),
      key_cache_(options.max_memo_entries),
      hom_cache_(options.max_memo_entries),
      embed_cache_(options.max_memo_entries),
      expansion_cache_(options.max_memo_entries),
      verdict_cache_(options.max_memo_entries) {}

Tableau Engine::Reduced(const Tableau& t) {
  Bump(reduce_requests_);
  const std::string fingerprint = TableauFingerprint(t);
  if (std::optional<Tableau> hit = reduce_cache_.Get(fingerprint)) {
    return *std::move(hit);
  }
  Bump(reduce_runs_);
  Tableau reduced = Reduce(*catalog_, t);
  // A core is its own reduction, so pre-seed the result's entry too: later
  // requests for the already-reduced form (e.g. re-interning a
  // representative) stay hits.
  const std::string reduced_fingerprint = TableauFingerprint(reduced);
  if (reduced_fingerprint != fingerprint) {
    reduce_cache_.Put(reduced_fingerprint, reduced);
  }
  reduce_cache_.Put(fingerprint, reduced);
  return reduced;
}

std::string Engine::Key(const Tableau& t) {
  Bump(key_requests_);
  const std::string fingerprint = TableauFingerprint(t);
  if (std::optional<std::string> hit = key_cache_.Get(fingerprint)) {
    return *std::move(hit);
  }
  Bump(key_runs_);
  std::string key = CanonicalKey(t);
  key_cache_.Put(fingerprint, key);
  return key;
}

TableauId Engine::Intern(const Tableau& t) {
  Bump(intern_requests_);
  // The expensive kernels run before any interning lock is taken: they are
  // memoized behind their own stripe locks.
  Tableau reduced = Reduced(t);
  const std::string key = Key(reduced);
  // The shard lock serializes the whole insert-or-confirm for this key
  // (equivalent templates reduce to isomorphic cores, so they share a
  // canonical key and therefore a shard): two threads interning one class
  // concurrently agree on a single id.
  std::lock_guard<std::mutex> shard_lock(
      intern_shard_mu_[std::hash<std::string>{}(key) % kInternShards]);
  std::vector<TableauId>* bucket;
  {
    // References to mapped values survive unordered_map rehashes, so the
    // map lock covers only the find-or-insert; the vector itself is owned
    // by the shard lock already held.
    std::lock_guard<std::mutex> map_lock(buckets_mu_);
    bucket = &key_buckets_[key];
  }
  for (TableauId id : *bucket) {
    // A canonical-key hit is only a candidate: beyond the exact-form row
    // threshold keys are invariant signatures that non-equivalent
    // templates may share.
    Bump(equivalence_confirms_);
    if (EquivalentTableaux(*catalog_, Representative(id), reduced)) {
      Bump(intern_hits_);
      return id;
    }
  }
  std::lock_guard<std::shared_mutex> classes_lock(classes_mu_);
  const TableauId id = classes_.size();
  classes_.push_back(std::move(reduced));
  bucket->push_back(id);
  return id;
}

const Tableau& Engine::Representative(TableauId id) const {
  // The lock covers only the index operation: deque references are stable
  // under push_back and published elements are immutable.
  std::shared_lock<std::shared_mutex> lock(classes_mu_);
  VIEWCAP_CHECK(id < classes_.size());
  return classes_[id];
}

bool Engine::Equivalent(const Tableau& a, const Tableau& b) {
  return Intern(a) == Intern(b);
}

bool Engine::HomomorphismExists(TableauId from, TableauId to) {
  Bump(hom_requests_);
  const std::string key = StrCat(from, "~", to);
  if (std::optional<bool> hit = hom_cache_.Get(key)) return *hit;
  Bump(hom_runs_);
  const bool exists =
      HasHomomorphism(*catalog_, Representative(from), Representative(to));
  hom_cache_.Put(key, exists);
  return exists;
}

bool Engine::RowEmbeds(TableauId from, TableauId to) {
  Bump(embed_requests_);
  const std::string key = StrCat(from, "~", to);
  if (std::optional<bool> hit = embed_cache_.Get(key)) return *hit;
  Bump(embed_runs_);
  const bool embeds =
      HasRowEmbedding(*catalog_, Representative(from), Representative(to));
  embed_cache_.Put(key, embeds);
  return embeds;
}

Result<TableauId> Engine::ExpansionClass(TableauId level,
                                         const TemplateAssignment& beta) {
  Bump(expansion_requests_);
  const Tableau& rep = Representative(level);
  std::string key = StrCat("L", level, "|");
  bool keyed = true;
  for (RelId rel : rep.RelNames()) {
    auto it = beta.find(rel);
    if (it == beta.end()) {
      // Let the substitution surface the NotFound error uncached.
      keyed = false;
      break;
    }
    key += StrCat(rel, ">", Intern(it->second), ";");
  }
  if (keyed) {
    if (std::optional<TableauId> hit = expansion_cache_.Get(key)) {
      return *hit;
    }
  }
  Bump(expansion_runs_);
  SymbolPool pool;
  VIEWCAP_ASSIGN_OR_RETURN(Tableau expansion,
                           SubstituteTableau(*catalog_, rep, beta, pool));
  const TableauId id = Intern(expansion);
  if (keyed) expansion_cache_.Put(key, id);
  return id;
}

std::optional<MembershipResult> Engine::LookupVerdict(
    const std::string& key) {
  Bump(verdict_requests_);
  std::optional<MembershipResult> hit = verdict_cache_.Get(key);
  if (!hit.has_value()) Bump(verdict_runs_);
  return hit;
}

void Engine::StoreVerdict(const std::string& key,
                          const MembershipResult& verdict) {
  verdict_cache_.Put(key, verdict);
}

ThreadPool* Engine::SharedPool(std::size_t total_threads) {
  const std::size_t workers = total_threads > 0 ? total_threads - 1 : 0;
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(workers);
  } else {
    pool_->EnsureWorkers(workers);
  }
  return pool_.get();
}

EngineStats Engine::Stats() const {
  EngineStats stats;
  stats.reduce = {Load(reduce_requests_), Load(reduce_runs_),
                  reduce_cache_.evictions(), reduce_cache_.size()};
  stats.canonical_key = {Load(key_requests_), Load(key_runs_),
                         key_cache_.evictions(), key_cache_.size()};
  stats.homomorphism = {Load(hom_requests_), Load(hom_runs_),
                        hom_cache_.evictions(), hom_cache_.size()};
  stats.row_embedding = {Load(embed_requests_), Load(embed_runs_),
                         embed_cache_.evictions(), embed_cache_.size()};
  stats.expansion = {Load(expansion_requests_), Load(expansion_runs_),
                     expansion_cache_.evictions(), expansion_cache_.size()};
  stats.verdict = {Load(verdict_requests_), Load(verdict_runs_),
                   verdict_cache_.evictions(), verdict_cache_.size()};
  stats.intern_requests = Load(intern_requests_);
  stats.intern_hits = Load(intern_hits_);
  {
    std::shared_lock<std::shared_mutex> lock(classes_mu_);
    stats.interned_classes = classes_.size();
  }
  stats.equivalence_confirms = Load(equivalence_confirms_);
  return stats;
}

}  // namespace viewcap
