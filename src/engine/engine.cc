#include "engine/engine.h"

#include "base/check.h"
#include "base/strings.h"
#include "tableau/canonical.h"
#include "tableau/homomorphism.h"
#include "tableau/reduce.h"

namespace viewcap {

std::string TableauFingerprint(const Tableau& t) {
  std::string out = "U";
  for (AttrId a : t.universe()) out += StrCat(a, ",");
  for (const TaggedTuple& row : t.rows()) {
    out += StrCat("|r", row.rel, ":");
    for (std::size_t k = 0; k < row.tuple.size(); ++k) {
      const Symbol& s = row.tuple.ValueAt(k);
      out += StrCat(s.attr, ".", s.ordinal, ",");
    }
  }
  return out;
}

Engine::Engine(const Catalog* catalog, EngineOptions options)
    : catalog_(catalog),
      options_(options),
      reduce_cache_(options.max_memo_entries),
      key_cache_(options.max_memo_entries),
      hom_cache_(options.max_memo_entries),
      embed_cache_(options.max_memo_entries),
      expansion_cache_(options.max_memo_entries),
      verdict_cache_(options.max_memo_entries) {}

Tableau Engine::Reduced(const Tableau& t) {
  ++reduce_requests_;
  const std::string fingerprint = TableauFingerprint(t);
  if (const Tableau* hit = reduce_cache_.Get(fingerprint)) return *hit;
  ++reduce_runs_;
  Tableau reduced = Reduce(*catalog_, t);
  // A core is its own reduction, so pre-seed the result's entry too: later
  // requests for the already-reduced form (e.g. re-interning a
  // representative) stay hits.
  const std::string reduced_fingerprint = TableauFingerprint(reduced);
  if (reduced_fingerprint != fingerprint) {
    reduce_cache_.Put(reduced_fingerprint, reduced);
  }
  reduce_cache_.Put(fingerprint, reduced);
  return reduced;
}

std::string Engine::Key(const Tableau& t) {
  ++key_requests_;
  const std::string fingerprint = TableauFingerprint(t);
  if (const std::string* hit = key_cache_.Get(fingerprint)) return *hit;
  ++key_runs_;
  std::string key = CanonicalKey(t);
  key_cache_.Put(fingerprint, key);
  return key;
}

TableauId Engine::Intern(const Tableau& t) {
  ++intern_requests_;
  Tableau reduced = Reduced(t);
  const std::string key = Key(reduced);
  std::vector<TableauId>& bucket = key_buckets_[key];
  for (TableauId id : bucket) {
    // A canonical-key hit is only a candidate: beyond the exact-form row
    // threshold keys are invariant signatures that non-equivalent
    // templates may share.
    ++equivalence_confirms_;
    if (EquivalentTableaux(*catalog_, classes_[id], reduced)) {
      ++intern_hits_;
      return id;
    }
  }
  const TableauId id = classes_.size();
  classes_.push_back(std::move(reduced));
  bucket.push_back(id);
  return id;
}

const Tableau& Engine::Representative(TableauId id) const {
  VIEWCAP_CHECK(id < classes_.size());
  return classes_[id];
}

bool Engine::Equivalent(const Tableau& a, const Tableau& b) {
  return Intern(a) == Intern(b);
}

bool Engine::HomomorphismExists(TableauId from, TableauId to) {
  ++hom_requests_;
  const std::string key = StrCat(from, "~", to);
  if (const bool* hit = hom_cache_.Get(key)) return *hit;
  ++hom_runs_;
  const bool exists =
      HasHomomorphism(*catalog_, Representative(from), Representative(to));
  hom_cache_.Put(key, exists);
  return exists;
}

bool Engine::RowEmbeds(TableauId from, TableauId to) {
  ++embed_requests_;
  const std::string key = StrCat(from, "~", to);
  if (const bool* hit = embed_cache_.Get(key)) return *hit;
  ++embed_runs_;
  const bool embeds =
      HasRowEmbedding(*catalog_, Representative(from), Representative(to));
  embed_cache_.Put(key, embeds);
  return embeds;
}

Result<TableauId> Engine::ExpansionClass(TableauId level,
                                         const TemplateAssignment& beta) {
  ++expansion_requests_;
  const Tableau& rep = Representative(level);
  std::string key = StrCat("L", level, "|");
  bool keyed = true;
  for (RelId rel : rep.RelNames()) {
    auto it = beta.find(rel);
    if (it == beta.end()) {
      // Let the substitution surface the NotFound error uncached.
      keyed = false;
      break;
    }
    key += StrCat(rel, ">", Intern(it->second), ";");
  }
  if (keyed) {
    if (const TableauId* hit = expansion_cache_.Get(key)) return *hit;
  }
  ++expansion_runs_;
  SymbolPool pool;
  VIEWCAP_ASSIGN_OR_RETURN(Tableau expansion,
                           SubstituteTableau(*catalog_, rep, beta, pool));
  const TableauId id = Intern(expansion);
  if (keyed) expansion_cache_.Put(key, id);
  return id;
}

const MembershipResult* Engine::LookupVerdict(const std::string& key) {
  ++verdict_requests_;
  const MembershipResult* hit = verdict_cache_.Get(key);
  if (hit == nullptr) ++verdict_runs_;
  return hit;
}

void Engine::StoreVerdict(const std::string& key,
                          const MembershipResult& verdict) {
  verdict_cache_.Put(key, verdict);
}

EngineStats Engine::Stats() const {
  EngineStats stats;
  stats.reduce = {reduce_requests_, reduce_runs_, reduce_cache_.evictions(),
                  reduce_cache_.size()};
  stats.canonical_key = {key_requests_, key_runs_, key_cache_.evictions(),
                         key_cache_.size()};
  stats.homomorphism = {hom_requests_, hom_runs_, hom_cache_.evictions(),
                        hom_cache_.size()};
  stats.row_embedding = {embed_requests_, embed_runs_,
                         embed_cache_.evictions(), embed_cache_.size()};
  stats.expansion = {expansion_requests_, expansion_runs_,
                     expansion_cache_.evictions(), expansion_cache_.size()};
  stats.verdict = {verdict_requests_, verdict_runs_,
                   verdict_cache_.evictions(), verdict_cache_.size()};
  stats.intern_requests = intern_requests_;
  stats.intern_hits = intern_hits_;
  stats.interned_classes = classes_.size();
  stats.equivalence_confirms = equivalence_confirms_;
  return stats;
}

}  // namespace viewcap
