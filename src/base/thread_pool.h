// A small fixed-size worker pool for the parallel closure searches (see
// DESIGN.md, "Parallel search").
//
// The pool runs plain void() tasks on a set of long-lived worker threads.
// Its central primitive is Run(parties, fn): the CALLER participates as
// party 0 and up to parties-1 pool workers join as helpers. Completion
// never depends on a helper actually starting — if every worker is busy
// (or the pool has no workers at all) the caller simply does all the work
// itself — so nested Run calls from inside pool workers cannot deadlock:
// a blocked caller only ever waits for helpers that are actively running.
#ifndef VIEWCAP_BASE_THREAD_POOL_H_
#define VIEWCAP_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace viewcap {

/// Cooperative cancellation flag shared between a search driver and its
/// workers. Workers poll; nothing is interrupted mid-kernel.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

class ThreadPool {
 public:
  /// Spawns `workers` threads immediately. A pool with zero workers is
  /// valid: every Run degenerates to the caller executing fn(0) alone.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Grow-only: spawns additional workers so the pool has at least
  /// `workers`. Safe to call concurrently with Run.
  void EnsureWorkers(std::size_t workers);

  std::size_t workers() const;

  /// Executes fn(party) once per party, for up to `parties` parties: the
  /// caller runs fn(0) and up to parties-1 idle workers run fn(1..).
  /// Returns when the caller's call and every HELPER THAT STARTED have
  /// returned; helpers that never got scheduled are cancelled and skipped.
  /// fn must therefore treat parties as an upper bound and share work
  /// dynamically (e.g. an atomic counter), never partition it statically
  /// by party index. fn must be thread-safe.
  void Run(std::size_t parties, const std::function<void(std::size_t)>& fn);

  /// Resolves a SearchLimits::threads-style knob: 0 means
  /// hardware_concurrency (at least 1), anything else is taken as-is.
  static std::size_t DecideThreads(std::size_t requested);

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
};

/// Calls fn(i) for every i in [0, n), sharing the index space dynamically
/// across up to `parallelism` threads (the caller plus pool workers). With
/// a null pool or parallelism <= 1 this is a plain serial loop. fn must be
/// thread-safe; no ordering between invocations is promised.
void ParallelFor(ThreadPool* pool, std::size_t parallelism, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace viewcap

#endif  // VIEWCAP_BASE_THREAD_POOL_H_
