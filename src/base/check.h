// Internal invariant checking. These are for programmer errors only; user
// facing failures go through Status (see base/status.h).
#ifndef VIEWCAP_BASE_CHECK_H_
#define VIEWCAP_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace viewcap {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "viewcap: CHECK failed at %s:%d: %s\n", file, line,
               condition);
  std::abort();
}

}  // namespace internal
}  // namespace viewcap

/// Aborts the process when `condition` is false. Enabled in all build types:
/// the library's algorithms rely on template well-formedness invariants whose
/// violation would otherwise produce silently wrong answers.
#define VIEWCAP_CHECK(condition)                                          \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::viewcap::internal::CheckFailed(__FILE__, __LINE__, #condition);   \
    }                                                                     \
  } while (false)

/// Like VIEWCAP_CHECK but compiled out in NDEBUG builds; use on hot paths.
#ifdef NDEBUG
#define VIEWCAP_DCHECK(condition) \
  do {                            \
  } while (false)
#else
#define VIEWCAP_DCHECK(condition) VIEWCAP_CHECK(condition)
#endif

#endif  // VIEWCAP_BASE_CHECK_H_
