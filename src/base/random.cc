#include "base/random.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace viewcap {

std::uint64_t Random::Next(std::uint64_t bound) {
  VIEWCAP_CHECK(bound > 0);
  std::uniform_int_distribution<std::uint64_t> dist(0, bound - 1);
  return dist(engine_);
}

std::int64_t Random::Range(std::int64_t lo, std::int64_t hi) {
  VIEWCAP_CHECK(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Random::Chance(double p) {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_) < p;
}

std::size_t Random::Index(std::size_t size) {
  VIEWCAP_CHECK(size > 0);
  return static_cast<std::size_t>(Next(size));
}

std::vector<std::size_t> Random::Sample(std::size_t n, std::size_t k) {
  VIEWCAP_CHECK(k <= n);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  std::shuffle(all.begin(), all.end(), engine_);
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace viewcap
