// Small string helpers shared across modules (printers, parser diagnostics).
#ifndef VIEWCAP_BASE_STRINGS_H_
#define VIEWCAP_BASE_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace viewcap {

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Joins the elements of `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

/// True when `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True when `name` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view name);

}  // namespace viewcap

#endif  // VIEWCAP_BASE_STRINGS_H_
