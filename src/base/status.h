// Status and Result<T>: RocksDB/Arrow-style error propagation without
// exceptions on API boundaries.
#ifndef VIEWCAP_BASE_STATUS_H_
#define VIEWCAP_BASE_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "base/check.h"

namespace viewcap {

/// Error taxonomy for the library. Values are stable; new codes append only.
enum class StatusCode {
  kOk = 0,
  /// Caller passed a structurally invalid argument (e.g. empty projection).
  kInvalidArgument = 1,
  /// A name was not found in the catalog / view / instantiation.
  kNotFound = 2,
  /// Parse failure in the textual expression/view language.
  kParseError = 3,
  /// A well-formedness condition from the paper was violated
  /// (template conditions (i)-(iii) of Section 2.1, view typing, ...).
  kIllFormed = 4,
  /// A bounded search (capacity membership, expression recognition, ...)
  /// exhausted its SearchLimits without reaching a verdict.
  kBudgetExhausted = 5,
  /// Internal invariant violation surfaced as a recoverable error.
  kInternal = 6,
};

/// Returns a human-readable name for `code` ("Ok", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on success (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IllFormed(std::string msg) {
    return Status(StatusCode::kIllFormed, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder in the style of arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: failure. Constructing from an OK status
  /// is a programmer error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    VIEWCAP_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the held value; the Result must be ok().
  const T& value() const& {
    VIEWCAP_CHECK(ok());
    return *value_;
  }
  T& value() & {
    VIEWCAP_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    VIEWCAP_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates a non-OK Status from the current function.
#define VIEWCAP_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::viewcap::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status. `lhs` must be a declaration, e.g.
///   VIEWCAP_ASSIGN_OR_RETURN(auto tpl, BuildTableau(catalog, expr));
#define VIEWCAP_ASSIGN_OR_RETURN(lhs, rexpr)             \
  VIEWCAP_ASSIGN_OR_RETURN_IMPL(                         \
      VIEWCAP_STATUS_CONCAT(_result_, __LINE__), lhs, rexpr)

#define VIEWCAP_STATUS_CONCAT_INNER(a, b) a##b
#define VIEWCAP_STATUS_CONCAT(a, b) VIEWCAP_STATUS_CONCAT_INNER(a, b)
#define VIEWCAP_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                                  \
  if (!result.ok()) return result.status();               \
  lhs = std::move(result).value();

}  // namespace viewcap

#endif  // VIEWCAP_BASE_STATUS_H_
