// Hash combining helpers used by the canonicalization and dedup layers.
#ifndef VIEWCAP_BASE_HASH_H_
#define VIEWCAP_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace viewcap {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

inline constexpr std::uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ULL;

/// 64-bit FNV-1a over a byte range. Unlike std::hash, the value is fixed
/// by the algorithm — stable across processes, library versions and
/// builds — so it is safe to persist (the on-disk capacity index uses it
/// for section checksums and dominance-key hashing) and to seed
/// deterministic name minting from.
inline std::uint64_t Fnv1a64(std::string_view bytes,
                             std::uint64_t seed = kFnv1a64OffsetBasis) {
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= static_cast<std::uint64_t>(c);
    h *= kFnv1a64Prime;
  }
  return h;
}

/// Hashes a range of hashable elements into one value.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = 0;
  for (; first != last; ++first) {
    HashCombine(seed, std::hash<typename std::iterator_traits<It>::value_type>{}(*first));
  }
  return seed;
}

}  // namespace viewcap

#endif  // VIEWCAP_BASE_HASH_H_
