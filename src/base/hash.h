// Hash combining helpers used by the canonicalization and dedup layers.
#ifndef VIEWCAP_BASE_HASH_H_
#define VIEWCAP_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace viewcap {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a range of hashable elements into one value.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = 0;
  for (; first != last; ++first) {
    HashCombine(seed, std::hash<typename std::iterator_traits<It>::value_type>{}(*first));
  }
  return seed;
}

}  // namespace viewcap

#endif  // VIEWCAP_BASE_HASH_H_
