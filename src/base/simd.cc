#include "base/simd.h"

#include <cstdlib>
#include <string>

namespace viewcap {
namespace {

// AVX2 is only probed for when the 256-bit translation unit was compiled
// in (x86-64 with a -mavx2-capable compiler); elsewhere the answer is a
// constant false and no x86 builtin is referenced.
bool CpuHasAvx2() {
#if defined(VIEWCAP_SIMD_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

std::string_view SimdBackendName(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kLanes128:
      return "simd128";
    case SimdBackend::kLanes256:
      return "simd256";
  }
  return "scalar";
}

bool SimdBackendCompiled(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return true;
    case SimdBackend::kLanes128:
      return VIEWCAP_SIMD_VECTOR_EXT != 0;
    case SimdBackend::kLanes256:
#if defined(VIEWCAP_SIMD_HAVE_AVX2)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool SimdBackendAvailable(SimdBackend backend) {
  if (!SimdBackendCompiled(backend)) return false;
  if (backend == SimdBackend::kLanes256) return CpuHasAvx2();
  return true;
}

std::vector<SimdBackend> AvailableSimdBackends() {
  std::vector<SimdBackend> out;
  for (const SimdBackend backend :
       {SimdBackend::kScalar, SimdBackend::kLanes128, SimdBackend::kLanes256}) {
    if (SimdBackendAvailable(backend)) out.push_back(backend);
  }
  return out;
}

SimdBackend ResolveSimdBackend(SimdBackend requested) {
  if (requested == SimdBackend::kLanes256 && !SimdBackendAvailable(requested)) {
    requested = SimdBackend::kLanes128;
  }
  if (requested == SimdBackend::kLanes128 && !SimdBackendAvailable(requested)) {
    requested = SimdBackend::kScalar;
  }
  return requested;
}

SimdBackend DetectSimdBackend() {
  const char* env = std::getenv("VIEWCAP_SIMD");
  if (env != nullptr) {
    const std::string value(env);
    if (value == "off" || value == "scalar" || value == "0") {
      return SimdBackend::kScalar;
    }
    if (value == "128" || value == "simd128" || value == "sse") {
      return ResolveSimdBackend(SimdBackend::kLanes128);
    }
    if (value == "256" || value == "simd256" || value == "avx2") {
      return ResolveSimdBackend(SimdBackend::kLanes256);
    }
    // "auto" and unknown values fall through to CPU dispatch.
  }
  return ResolveSimdBackend(SimdBackend::kLanes256);
}

SimdBackend DefaultSimdBackend() {
  static const SimdBackend backend = DetectSimdBackend();
  return backend;
}

}  // namespace viewcap
