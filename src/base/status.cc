#include "base/status.h"

namespace viewcap {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIllFormed:
      return "IllFormed";
    case StatusCode::kBudgetExhausted:
      return "BudgetExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace viewcap
