#include "base/thread_pool.h"

#include <memory>

namespace viewcap {

namespace {

/// Shared state of one Run call. Owned by shared_ptr so helper tasks that
/// get scheduled after the Run already completed find a live (cancelled)
/// state instead of a dangling stack frame.
struct RunState {
  std::function<void(std::size_t)> fn;
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t active = 0;    // Helpers currently inside fn.
  bool cancelled = false;    // Caller finished; unstarted helpers skip.
  std::size_t next_party = 1;  // Party index for the next helper to start.
};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) { EnsureWorkers(workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::EnsureWorkers(std::size_t workers) {
  std::lock_guard<std::mutex> lock(mu_);
  while (threads_.size() < workers) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

std::size_t ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Run(std::size_t parties,
                     const std::function<void(std::size_t)>& fn) {
  if (parties <= 1) {
    fn(0);
    return;
  }
  auto state = std::make_shared<RunState>();
  state->fn = fn;
  const std::size_t helpers = parties - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([state] {
        std::size_t party;
        {
          std::lock_guard<std::mutex> s(state->mu);
          if (state->cancelled) return;
          party = state->next_party++;
          ++state->active;
        }
        state->fn(party);
        {
          std::lock_guard<std::mutex> s(state->mu);
          --state->active;
        }
        state->done_cv.notify_all();
      });
    }
  }
  if (helpers == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }
  fn(0);
  std::unique_lock<std::mutex> s(state->mu);
  state->cancelled = true;
  state->done_cv.wait(s, [&state] { return state->active == 0; });
}

std::size_t ThreadPool::DecideThreads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ParallelFor(ThreadPool* pool, std::size_t parallelism, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || parallelism <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  pool->Run(std::min(parallelism, n), [&](std::size_t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  });
}

}  // namespace viewcap
