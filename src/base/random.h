// Deterministic random source used by generators and property tests.
#ifndef VIEWCAP_BASE_RANDOM_H_
#define VIEWCAP_BASE_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace viewcap {

/// A seedable PRNG wrapper. Every randomized component in the library takes
/// a Random& so that tests and benchmarks are reproducible from a seed.
class Random {
 public:
  /// Constructs a generator from `seed`. Equal seeds yield equal streams.
  explicit Random(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t Next(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability `p` in [0,1].
  bool Chance(double p);

  /// Picks a uniformly random element index for a container of `size`.
  std::size_t Index(std::size_t size);

  /// Returns a uniformly random subset of {0,...,n-1} of size k.
  std::vector<std::size_t> Sample(std::size_t n, std::size_t k);

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace viewcap

#endif  // VIEWCAP_BASE_RANDOM_H_
