// Portable fixed-width SIMD backend selection for the homomorphism
// kernel's candidate filter (DESIGN.md, "Vectorized candidate filter").
//
// The kernel's filter stage has three implementations: a scalar loop (the
// differential oracle — always compiled, always available), a 128-bit
// lane version built on the GCC/Clang generic vector extensions (any
// architecture those compilers target), and a 256-bit AVX2 version
// compiled into a dedicated -mavx2 translation unit on x86-64 when the
// compiler supports it. Which one runs is decided at RUNTIME: the
// detector probes the CPU (AVX2 via __builtin_cpu_supports) and honors
// the VIEWCAP_SIMD environment override, so one binary serves every
// machine and `VIEWCAP_SIMD=off` pins the scalar oracle for differential
// runs. The CMake cache variable VIEWCAP_SIMD=off removes the vector
// backends at build time entirely (the same header macros gate them).
//
// Every backend computes the identical candidate predicate, so verdicts,
// witnesses and survivor lists are bit-identical whichever one runs —
// tests/hom_kernel_test.cc asserts this differentially.
#ifndef VIEWCAP_BASE_SIMD_H_
#define VIEWCAP_BASE_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

// Compile-time capability: the generic vector-extension backend needs a
// GCC-compatible compiler and must not be disabled by the build.
#if !defined(VIEWCAP_SIMD_DISABLED) && (defined(__GNUC__) || defined(__clang__))
#define VIEWCAP_SIMD_VECTOR_EXT 1
#else
#define VIEWCAP_SIMD_VECTOR_EXT 0
#endif

namespace viewcap {

/// Candidate-filter backend. Values are dense indices (statistics arrays
/// are indexed by backend).
enum class SimdBackend : std::uint8_t {
  kScalar = 0,    ///< Plain loops; the differential oracle.
  kLanes128 = 1,  ///< 128-bit lanes (2 x u64 / 4 x i32), generic vectors.
  kLanes256 = 2,  ///< 256-bit lanes (4 x u64 / 8 x i32), AVX2 on x86-64.
};

inline constexpr std::size_t kNumSimdBackends = 3;

inline constexpr std::size_t SimdBackendIndex(SimdBackend backend) {
  return static_cast<std::size_t>(backend);
}

/// Stable short name: "scalar", "simd128", "simd256" (stats tables, JSON
/// keys, benchmark series).
std::string_view SimdBackendName(SimdBackend backend);

/// True when the backend's code was compiled into this binary.
bool SimdBackendCompiled(SimdBackend backend);

/// True when the backend is compiled AND the running CPU supports it
/// (kLanes256 needs AVX2; the others run anywhere they compile).
bool SimdBackendAvailable(SimdBackend backend);

/// The available backends in ascending width order — kScalar is always
/// first. Tests and benches iterate this to cover every backend the
/// machine can actually run.
std::vector<SimdBackend> AvailableSimdBackends();

/// Clamps `requested` down to the widest available backend no wider than
/// it (a request for 256-bit lanes on a non-AVX2 machine runs 128-bit,
/// and so on down to scalar).
SimdBackend ResolveSimdBackend(SimdBackend requested);

/// Runtime dispatch: the VIEWCAP_SIMD environment override when set
/// ("off"/"scalar", "128", "256"/"avx2", "auto"; unknown values fall back
/// to auto), otherwise the widest available backend. Unavailable
/// requests clamp down rather than fail. Re-reads the environment on
/// every call; use DefaultSimdBackend() for the cached decision.
SimdBackend DetectSimdBackend();

/// DetectSimdBackend() computed once per process — the default backend
/// for kernel scratch and engines that do not choose explicitly.
SimdBackend DefaultSimdBackend();

}  // namespace viewcap

#endif  // VIEWCAP_BASE_SIMD_H_
