// Source positions for the textual program syntax: every token of a .vcp
// program carries a 1-based line/column location, and syntax nodes carry
// the span they cover. Diagnostics (src/lint) and parser errors render
// these as "line:column".
#ifndef VIEWCAP_BASE_SOURCE_H_
#define VIEWCAP_BASE_SOURCE_H_

#include <string>

#include "base/strings.h"

namespace viewcap {

/// A 1-based position in a program text.
struct SourceLocation {
  int line = 1;
  int column = 1;

  bool operator==(const SourceLocation&) const = default;
  bool operator<(const SourceLocation& other) const {
    return line != other.line ? line < other.line : column < other.column;
  }
};

/// A half-open range [begin, end) of program text. A span covering a single
/// token begins at its first character and ends one past its last.
struct SourceSpan {
  SourceLocation begin;
  SourceLocation end;

  bool operator==(const SourceSpan&) const = default;
};

/// "line:column" of a location.
inline std::string ToString(const SourceLocation& loc) {
  return StrCat(loc.line, ":", loc.column);
}

/// "line:column" of a span's begin (the conventional anchor for messages).
inline std::string ToString(const SourceSpan& span) {
  return ToString(span.begin);
}

}  // namespace viewcap

#endif  // VIEWCAP_BASE_SOURCE_H_
