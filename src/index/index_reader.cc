#include "index/index_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>

#include "algebra/parser.h"
#include "base/hash.h"
#include "base/strings.h"

namespace viewcap {

namespace {

/// Fills an IndexInfo from a parsed header plus the meta section.
Result<IndexInfo> DecodeInfo(const IndexHeader& header,
                             std::string_view file) {
  IndexInfo info;
  info.format_version = header.format_version;
  info.fingerprint_scheme_version = header.fingerprint_scheme_version;
  info.file_size = header.file_size;
  info.catalog_fingerprint = header.catalog_fingerprint;
  VIEWCAP_ASSIGN_OR_RETURN(std::string_view meta,
                           FindSection(header, file, kSectionMeta));
  Cursor cursor(meta, "meta section");
  VIEWCAP_ASSIGN_OR_RETURN(info.extra_leaves, cursor.ReadU64());
  VIEWCAP_ASSIGN_OR_RETURN(info.max_leaves, cursor.ReadU64());
  VIEWCAP_ASSIGN_OR_RETURN(info.max_candidates, cursor.ReadU64());
  VIEWCAP_ASSIGN_OR_RETURN(info.build_max_leaves, cursor.ReadU64());
  VIEWCAP_ASSIGN_OR_RETURN(info.build_max_entries, cursor.ReadU64());
  VIEWCAP_ASSIGN_OR_RETURN(info.classes, cursor.ReadU64());
  VIEWCAP_ASSIGN_OR_RETURN(info.sets, cursor.ReadU64());
  VIEWCAP_ASSIGN_OR_RETURN(info.verdicts, cursor.ReadU64());
  VIEWCAP_ASSIGN_OR_RETURN(info.dominance_entries, cursor.ReadU64());
  if (!cursor.AtEnd()) {
    return Status::IllFormed(
        "capacity index: meta section has trailing bytes");
  }
  return info;
}

std::string SetSignature(RelId handle, std::uint32_t ordinal) {
  return StrCat(handle, ":", ordinal, ";");
}

}  // namespace

Result<std::unique_ptr<IndexReader>> IndexReader::Open(
    const std::string& path, Catalog* catalog) {
  std::unique_ptr<IndexReader> reader(new IndexReader());
  VIEWCAP_RETURN_NOT_OK(reader->Load(path, catalog));
  return reader;
}

Result<IndexInfo> IndexReader::Inspect(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(
        StrCat("capacity index: cannot open '", path, "'"));
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  VIEWCAP_ASSIGN_OR_RETURN(IndexHeader header, ParseIndexHeader(bytes));
  return DecodeInfo(header, bytes);
}

IndexReader::~IndexReader() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

Status IndexReader::Load(const std::string& path, Catalog* catalog) {
  path_ = path;
  catalog_ = catalog;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound(StrCat("capacity index: cannot open '", path,
                                   "': ", std::strerror(errno)));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal(StrCat("capacity index: cannot stat '", path,
                                   "': ", std::strerror(errno)));
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::IllFormed(
        "capacity index: file too small to hold a header (0 bytes)");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::Internal(StrCat("capacity index: cannot mmap '", path,
                                   "': ", std::strerror(errno)));
  }
  data_ = static_cast<const char*>(map);
  size_ = size;
  const std::string_view file(data_, size_);

  VIEWCAP_ASSIGN_OR_RETURN(IndexHeader header, ParseIndexHeader(file));
  if (header.fingerprint_scheme_version != kFingerprintSchemeVersion) {
    return Status::IllFormed(StrCat(
        "capacity index: fingerprint scheme version ",
        header.fingerprint_scheme_version, " does not match this build (",
        kFingerprintSchemeVersion,
        "); rebuild the index with 'viewcap_cli index build'"));
  }
  if (header.catalog_fingerprint != CatalogFingerprint(*catalog)) {
    return Status::IllFormed(
        "capacity index: catalog fingerprint mismatch — the index was "
        "built over a different program; rebuild it with 'viewcap_cli "
        "index build'");
  }
  VIEWCAP_ASSIGN_OR_RETURN(info_, DecodeInfo(header, file));

  VIEWCAP_ASSIGN_OR_RETURN(std::string_view classes,
                           FindSection(header, file, kSectionClasses));
  VIEWCAP_ASSIGN_OR_RETURN(keys_, FindSection(header, file, kSectionKeys));
  VIEWCAP_ASSIGN_OR_RETURN(std::string_view sets,
                           FindSection(header, file, kSectionSets));
  VIEWCAP_ASSIGN_OR_RETURN(verdicts_,
                           FindSection(header, file, kSectionVerdicts));
  VIEWCAP_ASSIGN_OR_RETURN(dominance_,
                           FindSection(header, file, kSectionDominance));

  {
    Cursor cursor(classes, "classes section");
    VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t count, cursor.ReadU32());
    if (count != info_.classes) {
      return Status::IllFormed(
          StrCat("capacity index: classes section holds ", count,
                 " classes but meta claims ", info_.classes));
    }
    decoded_classes_.reserve(count);
    for (std::uint32_t c = 0; c < count; ++c) {
      VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t universe_size, cursor.ReadU32());
      std::vector<AttrId> attrs;
      attrs.reserve(universe_size);
      for (std::uint32_t k = 0; k < universe_size; ++k) {
        VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t attr, cursor.ReadU32());
        if (!catalog->HasAttribute(attr)) {
          return Status::IllFormed(StrCat("capacity index: class ", c,
                                          " references unknown attribute id ",
                                          attr));
        }
        if (!attrs.empty() && attr <= attrs.back()) {
          return Status::IllFormed(StrCat(
              "capacity index: class ", c, " universe is not sorted"));
        }
        attrs.push_back(attr);
      }
      const AttrSet universe(attrs);
      VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t row_count, cursor.ReadU32());
      std::vector<TaggedTuple> rows;
      rows.reserve(row_count);
      for (std::uint32_t r = 0; r < row_count; ++r) {
        VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t rel, cursor.ReadU32());
        if (!catalog->HasRelation(rel)) {
          return Status::IllFormed(StrCat("capacity index: class ", c,
                                          " references unknown relation id ",
                                          rel));
        }
        std::vector<Symbol> values;
        values.reserve(universe_size);
        for (std::uint32_t k = 0; k < universe_size; ++k) {
          VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t ordinal, cursor.ReadU32());
          values.push_back(Symbol{attrs[k], ordinal});
        }
        rows.push_back(TaggedTuple{rel, Tuple(universe, std::move(values))});
      }
      Result<Tableau> decoded = Tableau::Create(*catalog, universe, rows);
      if (!decoded.ok()) {
        return Status::IllFormed(StrCat("capacity index: class ", c,
                                        " is malformed: ",
                                        decoded.status().message()));
      }
      decoded_classes_.push_back(*std::move(decoded));
    }
    if (!cursor.AtEnd()) {
      return Status::IllFormed(
          "capacity index: classes section has trailing bytes");
    }
  }

  VIEWCAP_RETURN_NOT_OK(ValidateKeys());

  {
    Cursor cursor(sets, "sets section");
    VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t count, cursor.ReadU32());
    if (count != info_.sets) {
      return Status::IllFormed(StrCat("capacity index: sets section holds ",
                                      count, " sets but meta claims ",
                                      info_.sets));
    }
    for (std::uint32_t s = 0; s < count; ++s) {
      VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t member_count, cursor.ReadU32());
      std::string signature;
      for (std::uint32_t m = 0; m < member_count; ++m) {
        VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t handle, cursor.ReadU32());
        VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t ordinal, cursor.ReadU32());
        if (!catalog->HasRelation(handle)) {
          return Status::IllFormed(StrCat("capacity index: set ", s,
                                          " references unknown handle id ",
                                          handle));
        }
        if (ordinal >= decoded_classes_.size()) {
          return Status::IllFormed(StrCat("capacity index: set ", s,
                                          " references class ordinal ",
                                          ordinal, " out of range"));
        }
        signature += SetSignature(handle, ordinal);
      }
      if (!set_index_.emplace(std::move(signature), s).second) {
        return Status::IllFormed(
            StrCat("capacity index: duplicate set record at ordinal ", s));
      }
    }
    if (!cursor.AtEnd()) {
      return Status::IllFormed(
          "capacity index: sets section has trailing bytes");
    }
  }

  VIEWCAP_RETURN_NOT_OK(ValidateVerdicts());
  VIEWCAP_RETURN_NOT_OK(ValidateDominance());
  return Status::OK();
}

Status IndexReader::ValidateKeys() {
  Cursor cursor(keys_, "key section");
  VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t count, cursor.ReadU32());
  key_count_ = count;
  std::vector<std::uint64_t> offsets;
  offsets.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    VIEWCAP_ASSIGN_OR_RETURN(std::uint64_t offset, cursor.ReadU64());
    offsets.push_back(offset);
  }
  const std::size_t blob_pos = cursor.offset();
  std::string_view previous;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (offsets[i] > keys_.size() - blob_pos) {
      return Status::IllFormed(
          StrCat("capacity index: key entry ", i, " offset out of range"));
    }
    VIEWCAP_RETURN_NOT_OK(
        cursor.Seek(blob_pos + static_cast<std::size_t>(offsets[i])));
    VIEWCAP_ASSIGN_OR_RETURN(std::string_view key, cursor.ReadString());
    if (i > 0 && key <= previous) {
      return Status::IllFormed(
          "capacity index: key table is not strictly sorted");
    }
    previous = key;
    VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t ordinal_count, cursor.ReadU32());
    if (ordinal_count == 0) {
      return Status::IllFormed(
          StrCat("capacity index: key entry ", i, " lists no classes"));
    }
    for (std::uint32_t k = 0; k < ordinal_count; ++k) {
      VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t ordinal, cursor.ReadU32());
      if (ordinal >= decoded_classes_.size()) {
        return Status::IllFormed(StrCat("capacity index: key entry ", i,
                                        " references class ordinal ", ordinal,
                                        " out of range"));
      }
    }
  }
  return Status::OK();
}

Status IndexReader::ValidateVerdicts() {
  Cursor cursor(verdicts_, "verdict section");
  VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t count, cursor.ReadU32());
  verdict_count_ = count;
  if (count != info_.verdicts) {
    return Status::IllFormed(StrCat("capacity index: verdict section holds ",
                                    count, " verdicts but meta claims ",
                                    info_.verdicts));
  }
  std::vector<std::uint64_t> offsets;
  offsets.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    VIEWCAP_ASSIGN_OR_RETURN(std::uint64_t offset, cursor.ReadU64());
    offsets.push_back(offset);
  }
  const std::size_t blob_pos = cursor.offset();
  std::pair<std::uint32_t, std::uint32_t> previous{0, 0};
  for (std::uint32_t i = 0; i < count; ++i) {
    if (offsets[i] > verdicts_.size() - blob_pos) {
      return Status::IllFormed(StrCat("capacity index: verdict entry ", i,
                                      " offset out of range"));
    }
    VIEWCAP_RETURN_NOT_OK(
        cursor.Seek(blob_pos + static_cast<std::size_t>(offsets[i])));
    VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t set_ordinal, cursor.ReadU32());
    VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t query_ordinal, cursor.ReadU32());
    if (set_ordinal >= info_.sets ||
        query_ordinal >= decoded_classes_.size()) {
      return Status::IllFormed(StrCat("capacity index: verdict entry ", i,
                                      " references out-of-range ordinals"));
    }
    const auto key = std::make_pair(set_ordinal, query_ordinal);
    if (i > 0 && key <= previous) {
      return Status::IllFormed(
          "capacity index: verdict section is not strictly sorted");
    }
    previous = key;
    VIEWCAP_RETURN_NOT_OK(cursor.ReadU8().status());   // member
    VIEWCAP_RETURN_NOT_OK(cursor.ReadU8().status());   // budget_exhausted
    VIEWCAP_RETURN_NOT_OK(cursor.ReadU64().status());  // candidates_tried
    VIEWCAP_RETURN_NOT_OK(cursor.ReadU64().status());  // leaf_budget
    VIEWCAP_RETURN_NOT_OK(cursor.ReadString().status());
  }
  return Status::OK();
}

Status IndexReader::ValidateDominance() {
  Cursor cursor(dominance_, "dominance section");
  VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t count, cursor.ReadU32());
  dominance_count_ = count;
  if (count != info_.dominance_entries) {
    return Status::IllFormed(
        StrCat("capacity index: dominance section holds ", count,
               " entries but meta claims ", info_.dominance_entries));
  }
  std::uint64_t previous_hash = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    VIEWCAP_ASSIGN_OR_RETURN(std::uint64_t hash, cursor.ReadU64());
    if (i > 0 && hash < previous_hash) {
      return Status::IllFormed(
          "capacity index: dominance hashes are not sorted");
    }
    previous_hash = hash;
  }
  std::vector<std::uint64_t> offsets;
  offsets.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    VIEWCAP_ASSIGN_OR_RETURN(std::uint64_t offset, cursor.ReadU64());
    offsets.push_back(offset);
  }
  const std::size_t blob_pos = cursor.offset();
  for (std::uint32_t i = 0; i < count; ++i) {
    if (offsets[i] > dominance_.size() - blob_pos) {
      return Status::IllFormed(StrCat("capacity index: dominance entry ", i,
                                      " offset out of range"));
    }
    VIEWCAP_RETURN_NOT_OK(
        cursor.Seek(blob_pos + static_cast<std::size_t>(offsets[i])));
    VIEWCAP_ASSIGN_OR_RETURN(std::string_view key, cursor.ReadString());
    if (key.empty()) {
      return Status::IllFormed(
          StrCat("capacity index: dominance entry ", i, " has an empty key"));
    }
    VIEWCAP_RETURN_NOT_OK(cursor.ReadU8().status());  // dominates
    VIEWCAP_RETURN_NOT_OK(cursor.ReadU8().status());  // inconclusive
    VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t witness_count, cursor.ReadU32());
    for (std::uint32_t w = 0; w < witness_count; ++w) {
      VIEWCAP_RETURN_NOT_OK(cursor.ReadU8().status());
      VIEWCAP_RETURN_NOT_OK(cursor.ReadString().status());
    }
    VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t missing_count, cursor.ReadU32());
    for (std::uint32_t m = 0; m < missing_count; ++m) {
      VIEWCAP_RETURN_NOT_OK(cursor.ReadU64().status());
    }
  }
  return Status::OK();
}

std::uint32_t IndexReader::U32At(std::string_view s, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(s[pos + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t IndexReader::U64At(std::string_view s, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(s[pos + i]))
         << (8 * i);
  }
  return v;
}

IndexReader::KeyEntry IndexReader::KeyEntryAt(std::size_t i) const {
  const std::size_t blob_pos = 4 + 8 * key_count_;
  const std::size_t pos =
      blob_pos + static_cast<std::size_t>(U64At(keys_, 4 + 8 * i));
  KeyEntry entry;
  const std::uint32_t length = U32At(keys_, pos);
  entry.key = keys_.substr(pos + 4, length);
  entry.ordinal_count = U32At(keys_, pos + 4 + length);
  entry.ordinals_pos = pos + 8 + length;
  return entry;
}

std::optional<std::uint32_t> IndexReader::ResolveClass(Engine& engine,
                                                       TableauId id) {
  {
    std::lock_guard<std::mutex> lock(resolve_mu_);
    auto it = class_resolution_.find(id);
    if (it != class_resolution_.end()) return it->second;
  }
  // The engine work (canonical key, equivalence confirms) runs outside
  // the resolution lock; racing resolvers of one id compute the same
  // answer.
  const std::string key = engine.Key(engine.Representative(id));
  std::optional<std::uint32_t> resolved;
  std::size_t lo = 0, hi = key_count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (KeyEntryAt(mid).key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < key_count_) {
    const KeyEntry entry = KeyEntryAt(lo);
    if (entry.key == key) {
      // Canonical keys may collide beyond the signature threshold;
      // confirm each candidate by exact equivalence.
      for (std::uint32_t k = 0; k < entry.ordinal_count && !resolved; ++k) {
        const std::uint32_t ordinal =
            U32At(keys_, entry.ordinals_pos + 4 * k);
        if (engine.Equivalent(engine.Representative(id),
                              decoded_classes_[ordinal])) {
          resolved = ordinal;
        }
      }
    }
  }
  std::lock_guard<std::mutex> lock(resolve_mu_);
  return class_resolution_.try_emplace(id, resolved).first->second;
}

std::optional<std::uint32_t> IndexReader::ResolveSet(
    Engine& engine, const MembershipProbe& probe) {
  {
    std::lock_guard<std::mutex> lock(resolve_mu_);
    auto it = set_resolution_.find(*probe.set_fingerprint);
    if (it != set_resolution_.end()) return it->second;
  }
  std::optional<std::uint32_t> resolved;
  std::string signature;
  bool complete = true;
  for (std::size_t i = 0; i < probe.member_ids->size(); ++i) {
    const std::optional<std::uint32_t> ordinal =
        ResolveClass(engine, (*probe.member_ids)[i]);
    if (!ordinal) {
      complete = false;
      break;
    }
    signature += SetSignature((*probe.handles)[i], *ordinal);
  }
  if (complete) {
    auto it = set_index_.find(signature);
    if (it != set_index_.end()) resolved = it->second;
  }
  std::lock_guard<std::mutex> lock(resolve_mu_);
  return set_resolution_.try_emplace(*probe.set_fingerprint, resolved)
      .first->second;
}

std::optional<MembershipResult> IndexReader::LookupMembership(
    Engine& engine, const MembershipProbe& probe) {
  membership_lookups_.fetch_add(1, std::memory_order_relaxed);
  if (probe.extra_leaves != info_.extra_leaves ||
      probe.max_leaves != info_.max_leaves ||
      probe.max_candidates != info_.max_candidates) {
    // Verdicts are only exact under the limits they were computed with;
    // any other limits fall back to the live search.
    limit_mismatches_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::optional<std::uint32_t> set_ordinal = ResolveSet(engine, probe);
  if (!set_ordinal) return std::nullopt;
  const std::optional<std::uint32_t> query_ordinal =
      ResolveClass(engine, probe.query_id);
  if (!query_ordinal) return std::nullopt;

  const auto target = std::make_pair(*set_ordinal, *query_ordinal);
  const std::size_t blob_pos = 4 + 8 * verdict_count_;
  const auto entry_pos = [&](std::size_t i) {
    return blob_pos + static_cast<std::size_t>(U64At(verdicts_, 4 + 8 * i));
  };
  const auto entry_key = [&](std::size_t i) {
    const std::size_t pos = entry_pos(i);
    return std::make_pair(U32At(verdicts_, pos), U32At(verdicts_, pos + 4));
  };
  std::size_t lo = 0, hi = verdict_count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (entry_key(mid) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == verdict_count_ || entry_key(lo) != target) return std::nullopt;

  const std::size_t pos = entry_pos(lo);
  MembershipResult result;
  result.member = verdicts_[pos + 8] != 0;
  result.budget_exhausted = verdicts_[pos + 9] != 0;
  result.candidates_tried =
      static_cast<std::size_t>(U64At(verdicts_, pos + 10));
  result.leaf_budget = static_cast<std::size_t>(U64At(verdicts_, pos + 18));
  const std::uint32_t witness_length = U32At(verdicts_, pos + 26);
  if (witness_length > 0) {
    const std::string_view text = verdicts_.substr(pos + 30, witness_length);
    Result<ExprPtr> witness = ParseExpr(*catalog_, text);
    // A decode failure is treated as a miss: the caller re-runs the live
    // search and gets a correct (just slower) answer.
    if (!witness.ok()) return std::nullopt;
    result.witness = *std::move(witness);
  }
  membership_hits_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::optional<DominanceResult> IndexReader::LookupDominance(
    Engine& engine, const std::string& key) {
  (void)engine;
  dominance_lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t hash = Fnv1a64(key);
  const std::size_t hashes_pos = 4;
  const std::size_t offsets_pos = 4 + 8 * dominance_count_;
  const std::size_t blob_pos = 4 + 16 * dominance_count_;
  const auto hash_at = [&](std::size_t i) {
    return U64At(dominance_, hashes_pos + 8 * i);
  };
  std::size_t lo = 0, hi = dominance_count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (hash_at(mid) < hash) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (std::size_t i = lo; i < dominance_count_ && hash_at(i) == hash; ++i) {
    const std::size_t pos =
        blob_pos + static_cast<std::size_t>(U64At(dominance_, offsets_pos + 8 * i));
    const std::uint32_t key_length = U32At(dominance_, pos);
    if (dominance_.substr(pos + 4, key_length) != key) continue;
    Cursor cursor(dominance_, "dominance section");
    if (!cursor.Seek(pos + 4 + key_length).ok()) return std::nullopt;
    DominanceResult result;
    // The section was structurally validated at Open, so these reads
    // cannot fail; the guards keep the no-UB promise anyway.
    Result<std::uint8_t> dominates = cursor.ReadU8();
    Result<std::uint8_t> inconclusive = cursor.ReadU8();
    if (!dominates.ok() || !inconclusive.ok()) return std::nullopt;
    result.dominates = *dominates != 0;
    result.inconclusive = *inconclusive != 0;
    Result<std::uint32_t> witness_count = cursor.ReadU32();
    if (!witness_count.ok()) return std::nullopt;
    result.witnesses.reserve(*witness_count);
    for (std::uint32_t w = 0; w < *witness_count; ++w) {
      Result<std::uint8_t> present = cursor.ReadU8();
      if (!present.ok()) return std::nullopt;
      Result<std::string_view> text = cursor.ReadString();
      if (!text.ok()) return std::nullopt;
      if (*present == 0) {
        result.witnesses.push_back(nullptr);
        continue;
      }
      Result<ExprPtr> witness = ParseExpr(*catalog_, *text);
      if (!witness.ok()) return std::nullopt;
      result.witnesses.push_back(*std::move(witness));
    }
    Result<std::uint32_t> missing_count = cursor.ReadU32();
    if (!missing_count.ok()) return std::nullopt;
    result.missing.reserve(*missing_count);
    for (std::uint32_t m = 0; m < *missing_count; ++m) {
      Result<std::uint64_t> index = cursor.ReadU64();
      if (!index.ok()) return std::nullopt;
      result.missing.push_back(static_cast<std::size_t>(*index));
    }
    dominance_hits_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  return std::nullopt;
}

IndexStats IndexReader::StatsSnapshot() const {
  IndexStats stats;
  stats.membership_lookups =
      membership_lookups_.load(std::memory_order_relaxed);
  stats.membership_hits = membership_hits_.load(std::memory_order_relaxed);
  stats.dominance_lookups =
      dominance_lookups_.load(std::memory_order_relaxed);
  stats.dominance_hits = dominance_hits_.load(std::memory_order_relaxed);
  stats.limit_mismatches = limit_mismatches_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace viewcap
