#include "index/format.h"

#include <cstring>

#include "base/hash.h"
#include "base/strings.h"
#include "engine/engine.h"  // kFingerprintSchemeVersion.

namespace viewcap {

namespace {

// Fixed header prefix: magic + endian word + two versions + section count
// + file size + header size + checksum.
constexpr std::size_t kChecksumOffset = 40;
constexpr std::size_t kFixedPrefixSize = 48;

// Header checksum: everything before the checksum field plus everything
// after it up to header_size.
std::uint64_t HeaderChecksum(std::string_view file, std::uint64_t header_size) {
  std::uint64_t h = Fnv1a64(file.substr(0, kChecksumOffset));
  return Fnv1a64(file.substr(kFixedPrefixSize, header_size - kFixedPrefixSize),
                 h);
}

}  // namespace

std::string CatalogFingerprint(const Catalog& catalog) {
  std::string out = "VCAT1;attrs=";
  for (std::size_t a = 0; a < catalog.num_attributes(); ++a) {
    if (a != 0) out += ',';
    out += catalog.AttributeName(static_cast<AttrId>(a));
  }
  out += ";rels=";
  for (std::size_t r = 0; r < catalog.num_relations(); ++r) {
    if (r != 0) out += ',';
    out += catalog.RelationName(static_cast<RelId>(r));
    out += '(';
    const AttrSet& scheme = catalog.RelationScheme(static_cast<RelId>(r));
    for (std::size_t i = 0; i < scheme.size(); ++i) {
      if (i != 0) out += ' ';
      out += std::to_string(scheme.attrs()[i]);
    }
    out += ')';
  }
  return out;
}

void AppendU8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void AppendU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendString(std::string& out, std::string_view s) {
  AppendU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

Status Cursor::Truncated(std::size_t need) const {
  return Status::IllFormed(
      StrCat("capacity index: ", what_, " truncated at byte ", offset_,
             " (need ", need, ", have ", remaining(), ")"));
}

Result<std::uint8_t> Cursor::ReadU8() {
  if (remaining() < 1) return Truncated(1);
  return static_cast<std::uint8_t>(bytes_[offset_++]);
}

Result<std::uint32_t> Cursor::ReadU32() {
  if (remaining() < 4) return Truncated(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes_[offset_ + i]))
         << (8 * i);
  }
  offset_ += 4;
  return v;
}

Result<std::uint64_t> Cursor::ReadU64() {
  if (remaining() < 8) return Truncated(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes_[offset_ + i]))
         << (8 * i);
  }
  offset_ += 8;
  return v;
}

Result<std::string_view> Cursor::ReadString() {
  VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t length, ReadU32());
  if (remaining() < length) return Truncated(length);
  std::string_view s = bytes_.substr(offset_, length);
  offset_ += length;
  return s;
}

Status Cursor::Seek(std::size_t offset) {
  if (offset > bytes_.size()) {
    return Status::IllFormed(StrCat("capacity index: ", what_,
                                    " seek past end (offset ", offset,
                                    ", size ", bytes_.size(), ")"));
  }
  offset_ = offset;
  return Status::OK();
}

Result<IndexHeader> ParseIndexHeader(std::string_view file) {
  if (file.size() < kFixedPrefixSize) {
    return Status::IllFormed(
        StrCat("capacity index: file too small to hold a header (",
               file.size(), " bytes)"));
  }
  if (std::memcmp(file.data(), kIndexMagic, sizeof(kIndexMagic)) != 0) {
    return Status::IllFormed(
        "capacity index: bad magic (not a viewcap index file)");
  }
  Cursor cursor(file, "header");
  VIEWCAP_RETURN_NOT_OK(cursor.Seek(sizeof(kIndexMagic)));
  VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t endian, cursor.ReadU32());
  if (endian != kIndexEndianWord) {
    return Status::IllFormed(
        "capacity index: endianness mismatch (file written on a "
        "byte-swapped host)");
  }
  IndexHeader header;
  VIEWCAP_ASSIGN_OR_RETURN(header.format_version, cursor.ReadU32());
  if (header.format_version != kIndexFormatVersion) {
    return Status::IllFormed(
        StrCat("capacity index: unsupported format version ",
               header.format_version, " (this build reads version ",
               kIndexFormatVersion, ")"));
  }
  VIEWCAP_ASSIGN_OR_RETURN(header.fingerprint_scheme_version,
                           cursor.ReadU32());
  VIEWCAP_ASSIGN_OR_RETURN(std::uint32_t section_count, cursor.ReadU32());
  VIEWCAP_ASSIGN_OR_RETURN(header.file_size, cursor.ReadU64());
  VIEWCAP_ASSIGN_OR_RETURN(header.header_size, cursor.ReadU64());
  VIEWCAP_ASSIGN_OR_RETURN(std::uint64_t checksum, cursor.ReadU64());
  if (header.file_size != file.size()) {
    return Status::IllFormed(StrCat("capacity index: header claims ",
                                    header.file_size, " bytes but the file is ",
                                    file.size()));
  }
  if (header.header_size < kFixedPrefixSize ||
      header.header_size > file.size()) {
    return Status::IllFormed(
        StrCat("capacity index: implausible header size ",
               header.header_size));
  }
  if (HeaderChecksum(file, header.header_size) != checksum) {
    return Status::IllFormed("capacity index: header checksum mismatch");
  }
  // Everything below kChecksumOffset onward is checksum-verified; decode
  // failures past this point indicate a writer bug rather than corruption,
  // but still surface as clean errors.
  VIEWCAP_ASSIGN_OR_RETURN(std::string_view fingerprint, cursor.ReadString());
  header.catalog_fingerprint.assign(fingerprint);
  header.sections.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    IndexSection section;
    VIEWCAP_ASSIGN_OR_RETURN(section.id, cursor.ReadU32());
    VIEWCAP_ASSIGN_OR_RETURN(section.offset, cursor.ReadU64());
    VIEWCAP_ASSIGN_OR_RETURN(section.size, cursor.ReadU64());
    VIEWCAP_ASSIGN_OR_RETURN(section.checksum, cursor.ReadU64());
    if (section.offset < header.header_size ||
        section.offset > file.size() ||
        section.size > file.size() - section.offset) {
      return Status::IllFormed(
          StrCat("capacity index: section ", section.id,
                 " out of bounds (offset ", section.offset, ", size ",
                 section.size, ", file ", file.size(), ")"));
    }
    for (const IndexSection& seen : header.sections) {
      if (seen.id == section.id) {
        return Status::IllFormed(
            StrCat("capacity index: duplicate section id ", section.id));
      }
    }
    header.sections.push_back(section);
  }
  if (cursor.offset() != header.header_size) {
    return Status::IllFormed(
        StrCat("capacity index: header size mismatch (table ends at ",
               cursor.offset(), ", header claims ", header.header_size, ")"));
  }
  return header;
}

Result<std::string_view> FindSection(const IndexHeader& header,
                                     std::string_view file,
                                     std::uint32_t id) {
  for (const IndexSection& section : header.sections) {
    if (section.id != id) continue;
    std::string_view bytes =
        file.substr(section.offset, section.size);
    if (Fnv1a64(bytes) != section.checksum) {
      return Status::IllFormed(
          StrCat("capacity index: section ", id, " checksum mismatch"));
    }
    return bytes;
  }
  return Status::NotFound(
      StrCat("capacity index: no section with id ", id));
}

std::string AssembleIndexFile(
    std::string_view catalog_fingerprint,
    const std::vector<std::pair<std::uint32_t, std::string>>& sections) {
  // Header size: fixed prefix + fingerprint string + table.
  const std::uint64_t header_size =
      kFixedPrefixSize + 4 + catalog_fingerprint.size() +
      sections.size() * (4 + 8 + 8 + 8);
  std::uint64_t file_size = header_size;
  for (const auto& [id, payload] : sections) file_size += payload.size();

  std::string out;
  out.reserve(file_size);
  out.append(kIndexMagic, sizeof(kIndexMagic));
  AppendU32(out, kIndexEndianWord);
  AppendU32(out, kIndexFormatVersion);
  AppendU32(out, kFingerprintSchemeVersion);
  AppendU32(out, static_cast<std::uint32_t>(sections.size()));
  AppendU64(out, file_size);
  AppendU64(out, header_size);
  AppendU64(out, 0);  // Checksum placeholder, patched below.
  AppendString(out, catalog_fingerprint);
  std::uint64_t offset = header_size;
  for (const auto& [id, payload] : sections) {
    AppendU32(out, id);
    AppendU64(out, offset);
    AppendU64(out, payload.size());
    AppendU64(out, Fnv1a64(payload));
    offset += payload.size();
  }
  const std::uint64_t checksum = HeaderChecksum(out, header_size);
  for (int i = 0; i < 8; ++i) {
    out[kChecksumOffset + static_cast<std::size_t>(i)] =
        static_cast<char>((checksum >> (8 * i)) & 0xff);
  }
  for (const auto& [id, payload] : sections) out += payload;
  return out;
}

}  // namespace viewcap
