#include "index/index_writer.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/printer.h"
#include "base/hash.h"
#include "base/strings.h"
#include "base/thread_pool.h"
#include "index/format.h"
#include "views/capacity.h"
#include "views/equivalence.h"

namespace viewcap {

namespace {

/// Renames every nondistinguished symbol of `t` to dense per-attribute
/// ordinals (1, 2, ...) in row-major first-occurrence order. The capacity
/// sweep's query tableaux carry fresh symbols minted from the engine's
/// shared pool, so their raw ordinals record GLOBAL mint order — which
/// depends on thread interleaving during the parallel Phase A sweep. The
/// canonical labeling is a pure function of the tableau's structure, so
/// serialized exemplars are byte-identical for every --threads. The
/// renaming is an injective attribute-preserving map fixing distinguished
/// symbols, i.e. an isomorphism: the equivalence class and (by the
/// renaming-invariance contract of CanonicalKey) the key table are
/// unchanged.
Tableau CanonicalizeSymbols(const Tableau& t) {
  SymbolMap rename;
  std::unordered_map<AttrId, std::uint32_t> next;
  const std::size_t width = t.universe().size();
  for (const TaggedTuple& row : t.rows()) {
    for (std::size_t k = 0; k < width; ++k) {
      const Symbol s = row.tuple.ValueAt(k);
      if (s.IsDistinguished()) continue;
      if (rename.try_emplace(s, Symbol{s.attr, next[s.attr] + 1}).second) {
        ++next[s.attr];
      }
    }
  }
  return t.Apply(rename);
}

/// Dense ordinals for the interned classes the index stores. Ordinals are
/// assigned in first-reference order, which is deterministic: views in
/// load order, definitions in declaration order, then the capacity sweep's
/// deterministic enumeration order.
///
/// Each ordinal also records an EXEMPLAR — the symbol-canonicalized
/// engine-reduced form of the first tableau the build referenced for the
/// class — and serialization uses exemplars, not Engine::Representative.
/// The representative's identity depends on which of several equivalent
/// reduced forms interned first, which the parallel sweep makes a race;
/// the exemplar is a pure function of the program text and the
/// deterministic Phase B reference order, so index bytes are identical
/// for every --threads. Exemplar and representative are equivalent
/// reduced templates, hence isomorphic, so the canonical-key table is
/// unaffected either way.
class ClassRegistry {
 public:
  explicit ClassRegistry(Engine* engine) : engine_(engine) {}

  std::uint32_t OrdinalOf(TableauId id, const Tableau& source) {
    auto [it, inserted] = ordinals_.try_emplace(
        id, static_cast<std::uint32_t>(exemplars_.size()));
    if (inserted) {
      exemplars_.push_back(CanonicalizeSymbols(engine_->Reduced(source)));
    }
    return it->second;
  }

  const Tableau& exemplar(std::size_t ordinal) const {
    return exemplars_[ordinal];
  }
  std::size_t size() const { return exemplars_.size(); }

 private:
  Engine* engine_;
  std::unordered_map<TableauId, std::uint32_t> ordinals_;
  std::deque<Tableau> exemplars_;
};

void SerializeTableau(const Tableau& t, std::string& out) {
  const AttrSet& universe = t.universe();
  AppendU32(out, static_cast<std::uint32_t>(universe.size()));
  for (AttrId attr : universe) AppendU32(out, attr);
  AppendU32(out, static_cast<std::uint32_t>(t.rows().size()));
  for (const TaggedTuple& row : t.rows()) {
    AppendU32(out, row.rel);
    // The tuple is over the full universe (TaggedTuple contract), so the
    // attribute of position k is universe.attrs()[k]; only ordinals need
    // storing.
    for (std::size_t k = 0; k < universe.size(); ++k) {
      AppendU32(out, row.tuple.ValueAt(k).ordinal);
    }
  }
}

}  // namespace

Result<std::string> BuildIndexBytes(Analyzer& analyzer,
                                    const IndexBuildOptions& options,
                                    IndexBuildStats* stats_out) {
  Engine& engine = analyzer.engine();
  const Catalog& catalog = analyzer.catalog();
  // Captured before any closure work: the fingerprint names the catalog
  // state a fresh process reaches by loading the same program text, which
  // is the invalidation gate the reader checks at attach time.
  const std::string fingerprint = CatalogFingerprint(catalog);

  const std::vector<std::string> names = analyzer.ViewNames();
  if (names.empty()) {
    return Status::InvalidArgument(
        "capacity index: the program declares no views to index");
  }
  std::vector<const View*> views;
  views.reserve(names.size());
  for (const std::string& name : names) {
    VIEWCAP_ASSIGN_OR_RETURN(const View* view, analyzer.GetView(name));
    views.push_back(view);
  }

  ClassRegistry classes(&engine);
  struct SetRecord {
    std::vector<std::pair<RelId, std::uint32_t>> members;
  };
  std::vector<SetRecord> sets;
  sets.reserve(views.size());
  // Keyed by (set ordinal, query class ordinal); a std::map so the
  // serialized order is the reader's binary-search order.
  std::map<std::pair<std::uint32_t, std::uint32_t>, MembershipResult>
      verdicts;
  std::map<std::string, DominanceResult> dominance;

  // One oracle per view, all over the shared engine, under the SERVING
  // limits (see IndexBuildOptions). A deque: oracles own a mutex and are
  // immovable.
  std::deque<CapacityOracle> oracles;
  for (const View* view : views) {
    SetRecord record;
    record.members.reserve(view->size());
    for (const ViewDefinition& d : view->definitions()) {
      record.members.emplace_back(
          d.rel, classes.OrdinalOf(engine.Intern(d.tableau), d.tableau));
    }
    sets.push_back(std::move(record));
    oracles.emplace_back(&engine, *view, options.limits);
  }

  // Phase A — every expensive closure answer, parallel over source views:
  // view i's thread enumerates its capacity fragment, computes the
  // membership verdict of each entry, probes every other view's
  // definitions against its oracle and computes its row of the dominance
  // matrix. Each answer is independently deterministic (verdicts,
  // witnesses and enumeration order are bit-identical for any thread
  // count per the parallel-search contract), so running views
  // concurrently cannot change any stored value — only the racy parts of
  // the build (ordinal assignment, dedup, exemplar choice) matter for
  // byte identity, and those all happen in the serial Phase B below.
  // Duplicate queries across entries re-run Contains instead of being
  // deduped up front (ordinals do not exist yet); the engine's verdict
  // cache makes the repeats warm hits.
  struct ViewSweep {
    Status status = Status::OK();
    std::vector<CapacityOracle::CapacityEntry> entries;
    std::vector<MembershipResult> entry_verdicts;
    /// Ordered cross-view targets j (ascending, universe-compatible, != i)
    /// with the per-definition probe verdicts and the dominance verdict.
    std::vector<std::size_t> cross_targets;
    std::vector<std::vector<MembershipResult>> cross_verdicts;
    std::vector<DominanceResult> cross_dominance;
  };
  std::vector<ViewSweep> sweeps(views.size());
  const std::size_t threads =
      ThreadPool::DecideThreads(options.limits.threads);
  ThreadPool* pool =
      threads > 1 && views.size() > 1 ? engine.SharedPool(threads) : nullptr;
  ParallelFor(pool, threads, views.size(), [&](std::size_t i) {
    ViewSweep& sweep = sweeps[i];
    const auto run = [&]() -> Status {
      VIEWCAP_ASSIGN_OR_RETURN(
          sweep.entries,
          oracles[i].EnumerateCapacity(options.max_leaves,
                                       options.max_entries_per_view));
      sweep.entry_verdicts.reserve(sweep.entries.size());
      for (const CapacityOracle::CapacityEntry& entry : sweep.entries) {
        VIEWCAP_ASSIGN_OR_RETURN(MembershipResult verdict,
                                 oracles[i].Contains(entry.query));
        sweep.entry_verdicts.push_back(std::move(verdict));
      }
      for (std::size_t j = 0; j < views.size(); ++j) {
        if (i == j || views[i]->universe() != views[j]->universe()) continue;
        std::vector<MembershipResult> probes;
        probes.reserve(views[j]->size());
        for (const ViewDefinition& d : views[j]->definitions()) {
          VIEWCAP_ASSIGN_OR_RETURN(MembershipResult verdict,
                                   oracles[i].Contains(d.tableau));
          probes.push_back(std::move(verdict));
        }
        VIEWCAP_ASSIGN_OR_RETURN(
            DominanceResult result,
            Dominates(engine, *views[i], *views[j], options.limits));
        sweep.cross_targets.push_back(j);
        sweep.cross_verdicts.push_back(std::move(probes));
        sweep.cross_dominance.push_back(std::move(result));
      }
      return Status::OK();
    };
    sweep.status = run();
  });
  for (const ViewSweep& sweep : sweeps) {
    VIEWCAP_RETURN_NOT_OK(sweep.status);
  }

  // Phase B — ordinal assignment and map insertion, serial, in exactly
  // the order the single-threaded build used: view i's capacity entries
  // in enumeration order, then the cross-view probes in (i, j) order.
  const auto store_verdict = [&](std::uint32_t set_ordinal,
                                 const Tableau& query,
                                 MembershipResult verdict) {
    const std::uint32_t query_ordinal =
        classes.OrdinalOf(engine.Intern(query), query);
    const auto key = std::make_pair(set_ordinal, query_ordinal);
    // First stored verdict wins, as in the serial build; duplicates carry
    // the identical answer anyway (Contains is deterministic).
    if (verdicts.find(key) == verdicts.end()) {
      verdicts.emplace(key, std::move(verdict));
    }
  };
  for (std::size_t i = 0; i < views.size(); ++i) {
    ViewSweep& sweep = sweeps[i];
    for (std::size_t k = 0; k < sweep.entries.size(); ++k) {
      store_verdict(static_cast<std::uint32_t>(i), sweep.entries[k].query,
                    std::move(sweep.entry_verdicts[k]));
    }
  }
  for (std::size_t i = 0; i < views.size(); ++i) {
    ViewSweep& sweep = sweeps[i];
    for (std::size_t c = 0; c < sweep.cross_targets.size(); ++c) {
      const std::size_t j = sweep.cross_targets[c];
      const auto& definitions = views[j]->definitions();
      for (std::size_t k = 0; k < definitions.size(); ++k) {
        store_verdict(static_cast<std::uint32_t>(i), definitions[k].tableau,
                      std::move(sweep.cross_verdicts[c][k]));
      }
      dominance.emplace(DominanceKeyFor(*views[i], *views[j], options.limits),
                        std::move(sweep.cross_dominance[c]));
    }
  }

  // --- Serialize ---------------------------------------------------------

  std::string meta;
  AppendU64(meta, options.limits.extra_leaves);
  AppendU64(meta, options.limits.max_leaves);
  AppendU64(meta, options.limits.max_candidates);
  AppendU64(meta, options.max_leaves);
  AppendU64(meta, options.max_entries_per_view);
  AppendU64(meta, classes.size());
  AppendU64(meta, sets.size());
  AppendU64(meta, verdicts.size());
  AppendU64(meta, dominance.size());

  std::string classes_section;
  AppendU32(classes_section, static_cast<std::uint32_t>(classes.size()));
  for (std::size_t ordinal = 0; ordinal < classes.size(); ++ordinal) {
    SerializeTableau(classes.exemplar(ordinal), classes_section);
  }

  // Canonical keys, sorted (std::map), each mapping to every stored class
  // ordinal sharing the key (distinct classes may collide beyond the
  // canonical-key threshold; the reader disambiguates by equivalence).
  std::map<std::string, std::vector<std::uint32_t>> by_key;
  for (std::size_t ordinal = 0; ordinal < classes.size(); ++ordinal) {
    by_key[engine.Key(classes.exemplar(ordinal))].push_back(
        static_cast<std::uint32_t>(ordinal));
  }
  std::string keys_section;
  {
    std::string blob;
    std::vector<std::uint64_t> offsets;
    offsets.reserve(by_key.size());
    for (const auto& [key, ordinals] : by_key) {
      offsets.push_back(blob.size());
      AppendString(blob, key);
      AppendU32(blob, static_cast<std::uint32_t>(ordinals.size()));
      for (std::uint32_t ordinal : ordinals) AppendU32(blob, ordinal);
    }
    AppendU32(keys_section, static_cast<std::uint32_t>(offsets.size()));
    for (std::uint64_t offset : offsets) AppendU64(keys_section, offset);
    keys_section += blob;
  }

  std::string sets_section;
  AppendU32(sets_section, static_cast<std::uint32_t>(sets.size()));
  for (const SetRecord& record : sets) {
    AppendU32(sets_section, static_cast<std::uint32_t>(record.members.size()));
    for (const auto& [handle, ordinal] : record.members) {
      AppendU32(sets_section, handle);
      AppendU32(sets_section, ordinal);
    }
  }

  std::string verdicts_section;
  {
    std::string blob;
    std::vector<std::uint64_t> offsets;
    offsets.reserve(verdicts.size());
    for (const auto& [key, verdict] : verdicts) {
      offsets.push_back(blob.size());
      AppendU32(blob, key.first);
      AppendU32(blob, key.second);
      AppendU8(blob, verdict.member ? 1 : 0);
      AppendU8(blob, verdict.budget_exhausted ? 1 : 0);
      AppendU64(blob, verdict.candidates_tried);
      AppendU64(blob, verdict.leaf_budget);
      AppendString(blob, verdict.witness == nullptr
                             ? std::string()
                             : ToString(verdict.witness, catalog));
    }
    AppendU32(verdicts_section, static_cast<std::uint32_t>(offsets.size()));
    for (std::uint64_t offset : offsets) AppendU64(verdicts_section, offset);
    verdicts_section += blob;
  }

  std::string dominance_section;
  {
    // Sorted by (hash, key): binary search lands on the hash run, the full
    // key stored with each entry disambiguates collisions exactly.
    std::vector<std::pair<std::uint64_t, const std::string*>> order;
    order.reserve(dominance.size());
    for (const auto& [key, result] : dominance) {
      order.emplace_back(Fnv1a64(key), &key);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : *a.second < *b.second;
              });
    std::string blob;
    std::vector<std::uint64_t> offsets;
    offsets.reserve(order.size());
    for (const auto& [hash, key] : order) {
      const DominanceResult& result = dominance.at(*key);
      offsets.push_back(blob.size());
      AppendString(blob, *key);
      AppendU8(blob, result.dominates ? 1 : 0);
      AppendU8(blob, result.inconclusive ? 1 : 0);
      AppendU32(blob, static_cast<std::uint32_t>(result.witnesses.size()));
      for (const ExprPtr& witness : result.witnesses) {
        AppendU8(blob, witness == nullptr ? 0 : 1);
        AppendString(blob, witness == nullptr ? std::string()
                                              : ToString(witness, catalog));
      }
      AppendU32(blob, static_cast<std::uint32_t>(result.missing.size()));
      for (std::size_t index : result.missing) AppendU64(blob, index);
    }
    AppendU32(dominance_section, static_cast<std::uint32_t>(order.size()));
    for (const auto& [hash, key] : order) AppendU64(dominance_section, hash);
    for (std::uint64_t offset : offsets) AppendU64(dominance_section, offset);
    dominance_section += blob;
  }

  std::vector<std::pair<std::uint32_t, std::string>> sections;
  sections.emplace_back(kSectionMeta, std::move(meta));
  sections.emplace_back(kSectionClasses, std::move(classes_section));
  sections.emplace_back(kSectionKeys, std::move(keys_section));
  sections.emplace_back(kSectionSets, std::move(sets_section));
  sections.emplace_back(kSectionVerdicts, std::move(verdicts_section));
  sections.emplace_back(kSectionDominance, std::move(dominance_section));
  std::string file = AssembleIndexFile(fingerprint, sections);

  if (stats_out != nullptr) {
    stats_out->classes = classes.size();
    stats_out->sets = sets.size();
    stats_out->verdicts = verdicts.size();
    stats_out->dominance_entries = dominance.size();
    stats_out->bytes = file.size();
  }
  return file;
}

Result<IndexBuildStats> BuildIndexFile(Analyzer& analyzer,
                                       const std::string& path,
                                       const IndexBuildOptions& options) {
  IndexBuildStats stats;
  VIEWCAP_ASSIGN_OR_RETURN(std::string bytes,
                           BuildIndexBytes(analyzer, options, &stats));
  const std::string temp = StrCat(path, ".tmp");
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal(
          StrCat("capacity index: cannot open '", temp, "' for writing"));
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(temp.c_str());
      return Status::Internal(
          StrCat("capacity index: short write to '", temp, "'"));
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::Internal(
        StrCat("capacity index: cannot rename '", temp, "' to '", path, "'"));
  }
  return stats;
}

}  // namespace viewcap
