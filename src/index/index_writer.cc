#include "index/index_writer.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/printer.h"
#include "base/hash.h"
#include "base/strings.h"
#include "index/format.h"
#include "views/capacity.h"
#include "views/equivalence.h"

namespace viewcap {

namespace {

/// Dense ordinals for the interned classes the index stores. Ordinals are
/// assigned in first-reference order, which is deterministic: views in
/// load order, definitions in declaration order, then the capacity sweep's
/// deterministic enumeration order.
class ClassRegistry {
 public:
  std::uint32_t OrdinalOf(TableauId id) {
    auto [it, inserted] = ordinals_.try_emplace(
        id, static_cast<std::uint32_t>(ids_.size()));
    if (inserted) ids_.push_back(id);
    return it->second;
  }

  const std::vector<TableauId>& ids() const { return ids_; }
  std::size_t size() const { return ids_.size(); }

 private:
  std::unordered_map<TableauId, std::uint32_t> ordinals_;
  std::vector<TableauId> ids_;
};

void SerializeTableau(const Tableau& t, std::string& out) {
  const AttrSet& universe = t.universe();
  AppendU32(out, static_cast<std::uint32_t>(universe.size()));
  for (AttrId attr : universe) AppendU32(out, attr);
  AppendU32(out, static_cast<std::uint32_t>(t.rows().size()));
  for (const TaggedTuple& row : t.rows()) {
    AppendU32(out, row.rel);
    // The tuple is over the full universe (TaggedTuple contract), so the
    // attribute of position k is universe.attrs()[k]; only ordinals need
    // storing.
    for (std::size_t k = 0; k < universe.size(); ++k) {
      AppendU32(out, row.tuple.ValueAt(k).ordinal);
    }
  }
}

}  // namespace

Result<std::string> BuildIndexBytes(Analyzer& analyzer,
                                    const IndexBuildOptions& options,
                                    IndexBuildStats* stats_out) {
  Engine& engine = analyzer.engine();
  const Catalog& catalog = analyzer.catalog();
  // Captured before any closure work: the fingerprint names the catalog
  // state a fresh process reaches by loading the same program text, which
  // is the invalidation gate the reader checks at attach time.
  const std::string fingerprint = CatalogFingerprint(catalog);

  const std::vector<std::string> names = analyzer.ViewNames();
  if (names.empty()) {
    return Status::InvalidArgument(
        "capacity index: the program declares no views to index");
  }
  std::vector<const View*> views;
  views.reserve(names.size());
  for (const std::string& name : names) {
    VIEWCAP_ASSIGN_OR_RETURN(const View* view, analyzer.GetView(name));
    views.push_back(view);
  }

  ClassRegistry classes;
  struct SetRecord {
    std::vector<std::pair<RelId, std::uint32_t>> members;
  };
  std::vector<SetRecord> sets;
  sets.reserve(views.size());
  // Keyed by (set ordinal, query class ordinal); a std::map so the
  // serialized order is the reader's binary-search order.
  std::map<std::pair<std::uint32_t, std::uint32_t>, MembershipResult>
      verdicts;
  std::map<std::string, DominanceResult> dominance;

  // One oracle per view, all over the shared engine, under the SERVING
  // limits (see IndexBuildOptions). A deque: oracles own a mutex and are
  // immovable.
  std::deque<CapacityOracle> oracles;
  for (const View* view : views) {
    SetRecord record;
    record.members.reserve(view->size());
    for (const ViewDefinition& d : view->definitions()) {
      record.members.emplace_back(d.rel,
                                  classes.OrdinalOf(engine.Intern(d.tableau)));
    }
    sets.push_back(std::move(record));
    oracles.emplace_back(&engine, *view, options.limits);
  }

  const auto store_verdict = [&](std::uint32_t set_ordinal,
                                 const Tableau& query,
                                 CapacityOracle& oracle) -> Status {
    const std::uint32_t query_ordinal =
        classes.OrdinalOf(engine.Intern(query));
    const auto key = std::make_pair(set_ordinal, query_ordinal);
    if (verdicts.find(key) != verdicts.end()) return Status::OK();
    VIEWCAP_ASSIGN_OR_RETURN(MembershipResult verdict, oracle.Contains(query));
    verdicts.emplace(key, std::move(verdict));
    return Status::OK();
  };

  // Saturation sweep: the size-bounded capacity fragment of each view.
  for (std::size_t i = 0; i < views.size(); ++i) {
    VIEWCAP_ASSIGN_OR_RETURN(
        std::vector<CapacityOracle::CapacityEntry> entries,
        oracles[i].EnumerateCapacity(options.max_leaves,
                                     options.max_entries_per_view));
    for (const CapacityOracle::CapacityEntry& entry : entries) {
      VIEWCAP_RETURN_NOT_OK(store_verdict(static_cast<std::uint32_t>(i),
                                          entry.query, oracles[i]));
    }
  }

  // Cross-view precomputation: every ordered pair's definition probes
  // (negatives included — a stored "not a member" saves the same search
  // as a stored witness) plus the whole dominance verdict.
  for (std::size_t i = 0; i < views.size(); ++i) {
    for (std::size_t j = 0; j < views.size(); ++j) {
      if (i == j || views[i]->universe() != views[j]->universe()) continue;
      for (const ViewDefinition& d : views[j]->definitions()) {
        VIEWCAP_RETURN_NOT_OK(store_verdict(static_cast<std::uint32_t>(i),
                                            d.tableau, oracles[i]));
      }
      VIEWCAP_ASSIGN_OR_RETURN(
          DominanceResult result,
          Dominates(engine, *views[i], *views[j], options.limits));
      dominance.emplace(DominanceKeyFor(*views[i], *views[j], options.limits),
                        std::move(result));
    }
  }

  // --- Serialize ---------------------------------------------------------

  std::string meta;
  AppendU64(meta, options.limits.extra_leaves);
  AppendU64(meta, options.limits.max_leaves);
  AppendU64(meta, options.limits.max_candidates);
  AppendU64(meta, options.max_leaves);
  AppendU64(meta, options.max_entries_per_view);
  AppendU64(meta, classes.size());
  AppendU64(meta, sets.size());
  AppendU64(meta, verdicts.size());
  AppendU64(meta, dominance.size());

  std::string classes_section;
  AppendU32(classes_section, static_cast<std::uint32_t>(classes.size()));
  for (TableauId id : classes.ids()) {
    SerializeTableau(engine.Representative(id), classes_section);
  }

  // Canonical keys, sorted (std::map), each mapping to every stored class
  // ordinal sharing the key (distinct classes may collide beyond the
  // canonical-key threshold; the reader disambiguates by equivalence).
  std::map<std::string, std::vector<std::uint32_t>> by_key;
  for (std::size_t ordinal = 0; ordinal < classes.size(); ++ordinal) {
    by_key[engine.Key(engine.Representative(classes.ids()[ordinal]))]
        .push_back(static_cast<std::uint32_t>(ordinal));
  }
  std::string keys_section;
  {
    std::string blob;
    std::vector<std::uint64_t> offsets;
    offsets.reserve(by_key.size());
    for (const auto& [key, ordinals] : by_key) {
      offsets.push_back(blob.size());
      AppendString(blob, key);
      AppendU32(blob, static_cast<std::uint32_t>(ordinals.size()));
      for (std::uint32_t ordinal : ordinals) AppendU32(blob, ordinal);
    }
    AppendU32(keys_section, static_cast<std::uint32_t>(offsets.size()));
    for (std::uint64_t offset : offsets) AppendU64(keys_section, offset);
    keys_section += blob;
  }

  std::string sets_section;
  AppendU32(sets_section, static_cast<std::uint32_t>(sets.size()));
  for (const SetRecord& record : sets) {
    AppendU32(sets_section, static_cast<std::uint32_t>(record.members.size()));
    for (const auto& [handle, ordinal] : record.members) {
      AppendU32(sets_section, handle);
      AppendU32(sets_section, ordinal);
    }
  }

  std::string verdicts_section;
  {
    std::string blob;
    std::vector<std::uint64_t> offsets;
    offsets.reserve(verdicts.size());
    for (const auto& [key, verdict] : verdicts) {
      offsets.push_back(blob.size());
      AppendU32(blob, key.first);
      AppendU32(blob, key.second);
      AppendU8(blob, verdict.member ? 1 : 0);
      AppendU8(blob, verdict.budget_exhausted ? 1 : 0);
      AppendU64(blob, verdict.candidates_tried);
      AppendU64(blob, verdict.leaf_budget);
      AppendString(blob, verdict.witness == nullptr
                             ? std::string()
                             : ToString(verdict.witness, catalog));
    }
    AppendU32(verdicts_section, static_cast<std::uint32_t>(offsets.size()));
    for (std::uint64_t offset : offsets) AppendU64(verdicts_section, offset);
    verdicts_section += blob;
  }

  std::string dominance_section;
  {
    // Sorted by (hash, key): binary search lands on the hash run, the full
    // key stored with each entry disambiguates collisions exactly.
    std::vector<std::pair<std::uint64_t, const std::string*>> order;
    order.reserve(dominance.size());
    for (const auto& [key, result] : dominance) {
      order.emplace_back(Fnv1a64(key), &key);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : *a.second < *b.second;
              });
    std::string blob;
    std::vector<std::uint64_t> offsets;
    offsets.reserve(order.size());
    for (const auto& [hash, key] : order) {
      const DominanceResult& result = dominance.at(*key);
      offsets.push_back(blob.size());
      AppendString(blob, *key);
      AppendU8(blob, result.dominates ? 1 : 0);
      AppendU8(blob, result.inconclusive ? 1 : 0);
      AppendU32(blob, static_cast<std::uint32_t>(result.witnesses.size()));
      for (const ExprPtr& witness : result.witnesses) {
        AppendU8(blob, witness == nullptr ? 0 : 1);
        AppendString(blob, witness == nullptr ? std::string()
                                              : ToString(witness, catalog));
      }
      AppendU32(blob, static_cast<std::uint32_t>(result.missing.size()));
      for (std::size_t index : result.missing) AppendU64(blob, index);
    }
    AppendU32(dominance_section, static_cast<std::uint32_t>(order.size()));
    for (const auto& [hash, key] : order) AppendU64(dominance_section, hash);
    for (std::uint64_t offset : offsets) AppendU64(dominance_section, offset);
    dominance_section += blob;
  }

  std::vector<std::pair<std::uint32_t, std::string>> sections;
  sections.emplace_back(kSectionMeta, std::move(meta));
  sections.emplace_back(kSectionClasses, std::move(classes_section));
  sections.emplace_back(kSectionKeys, std::move(keys_section));
  sections.emplace_back(kSectionSets, std::move(sets_section));
  sections.emplace_back(kSectionVerdicts, std::move(verdicts_section));
  sections.emplace_back(kSectionDominance, std::move(dominance_section));
  std::string file = AssembleIndexFile(fingerprint, sections);

  if (stats_out != nullptr) {
    stats_out->classes = classes.size();
    stats_out->sets = sets.size();
    stats_out->verdicts = verdicts.size();
    stats_out->dominance_entries = dominance.size();
    stats_out->bytes = file.size();
  }
  return file;
}

Result<IndexBuildStats> BuildIndexFile(Analyzer& analyzer,
                                       const std::string& path,
                                       const IndexBuildOptions& options) {
  IndexBuildStats stats;
  VIEWCAP_ASSIGN_OR_RETURN(std::string bytes,
                           BuildIndexBytes(analyzer, options, &stats));
  const std::string temp = StrCat(path, ".tmp");
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal(
          StrCat("capacity index: cannot open '", temp, "' for writing"));
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(temp.c_str());
      return Status::Internal(
          StrCat("capacity index: short write to '", temp, "'"));
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::Internal(
        StrCat("capacity index: cannot rename '", temp, "' to '", path, "'"));
  }
  return stats;
}

}  // namespace viewcap
