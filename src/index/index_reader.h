// mmap-backed query half of the persistent capacity index (see DESIGN.md,
// "Persistent capacity index").
#ifndef VIEWCAP_INDEX_INDEX_READER_H_
#define VIEWCAP_INDEX_INDEX_READER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "engine/engine.h"
#include "index/format.h"

namespace viewcap {

/// Point-in-time snapshot of a reader's serving counters. Hits are exact
/// served verdicts; every non-hit lookup fell back to the live engine, so
/// fallbacks are derived, not separately counted. `limit_mismatches` is
/// the subset of membership fallbacks caused by the caller probing under
/// limits other than the ones the index was built for.
struct IndexStats {
  std::size_t membership_lookups = 0;
  std::size_t membership_hits = 0;
  std::size_t dominance_lookups = 0;
  std::size_t dominance_hits = 0;
  std::size_t limit_mismatches = 0;

  std::size_t membership_fallbacks() const {
    return membership_lookups - membership_hits;
  }
  std::size_t dominance_fallbacks() const {
    return dominance_lookups - dominance_hits;
  }
};

/// Header and meta facts of an index file (what `viewcap_cli index info`
/// prints; no catalog needed).
struct IndexInfo {
  std::uint32_t format_version = 0;
  std::uint32_t fingerprint_scheme_version = 0;
  std::uint64_t file_size = 0;
  std::string catalog_fingerprint;
  // Serving limits every stored verdict was computed under.
  std::uint64_t extra_leaves = 0;
  std::uint64_t max_leaves = 0;
  std::uint64_t max_candidates = 0;
  // Saturation budget of the build sweep.
  std::uint64_t build_max_leaves = 0;
  std::uint64_t build_max_entries = 0;
  // Entity counts.
  std::uint64_t classes = 0;
  std::uint64_t sets = 0;
  std::uint64_t verdicts = 0;
  std::uint64_t dominance_entries = 0;
};

/// Serves precomputed verdicts out of an mmap'd index file. Open() fully
/// validates the file — header, versions, catalog fingerprint, section
/// checksums and structural decode — so a stale or corrupt index is a
/// structured Status at attach time, never a silently wrong answer later.
/// After Open, lookups are binary searches over the mapping plus a
/// per-process resolution cache translating live TableauIds to stored
/// class ordinals (via the engine's canonical keys, confirmed by exact
/// equivalence). Lookups are safe for concurrent use; the catalog pointer
/// is only read (witness re-parsing touches names the fingerprint match
/// guarantees are already interned).
class IndexReader : public VerdictIndex {
 public:
  /// Opens and fully validates `path` against `catalog` (the serving
  /// process's catalog, after loading the same program the index was
  /// built from). Rejects — with a structured IllFormed, never UB — files
  /// that are truncated, corrupt, version- or endian-mismatched, or built
  /// over a different catalog.
  static Result<std::unique_ptr<IndexReader>> Open(const std::string& path,
                                                   Catalog* catalog);

  /// Header + meta of `path` without a catalog (no fingerprint check, no
  /// structural decode beyond the meta section).
  static Result<IndexInfo> Inspect(const std::string& path);

  ~IndexReader() override;
  IndexReader(const IndexReader&) = delete;
  IndexReader& operator=(const IndexReader&) = delete;

  const std::string& path() const { return path_; }
  const IndexInfo& info() const { return info_; }
  IndexStats StatsSnapshot() const;

  std::optional<MembershipResult> LookupMembership(
      Engine& engine, const MembershipProbe& probe) override;
  std::optional<DominanceResult> LookupDominance(
      Engine& engine, const std::string& key) override;

 private:
  IndexReader() = default;

  /// mmaps `path` and validates everything; called by Open.
  Status Load(const std::string& path, Catalog* catalog);
  Status ValidateClasses(const Catalog& catalog);
  Status ValidateKeys();
  Status ValidateSets();
  Status ValidateVerdicts();
  Status ValidateDominance();

  // Unchecked little-endian reads; positions were bounds-validated at
  // Open time.
  static std::uint32_t U32At(std::string_view s, std::size_t pos);
  static std::uint64_t U64At(std::string_view s, std::size_t pos);

  struct KeyEntry {
    std::string_view key;
    std::uint32_t ordinal_count = 0;
    std::size_t ordinals_pos = 0;  // Into keys_.
  };
  KeyEntry KeyEntryAt(std::size_t i) const;

  /// Stored class ordinal of live class `id`, or nullopt when the index
  /// has no equivalent class. Memoized (the file is immutable, so a
  /// negative answer stays correct).
  std::optional<std::uint32_t> ResolveClass(Engine& engine, TableauId id);
  std::optional<std::uint32_t> ResolveSet(Engine& engine,
                                          const MembershipProbe& probe);

  std::string path_;
  const char* data_ = nullptr;  // mmap base; non-null once loaded.
  std::size_t size_ = 0;
  Catalog* catalog_ = nullptr;
  IndexInfo info_;

  std::string_view keys_;
  std::string_view verdicts_;
  std::string_view dominance_;
  std::size_t key_count_ = 0;
  std::size_t verdict_count_ = 0;
  std::size_t dominance_count_ = 0;

  /// Every stored class, decoded and validated at Open (class counts are
  /// bounded by the build's saturation budget, so eager decode is cheap
  /// and removes all runtime decode-failure paths for classes).
  std::vector<Tableau> decoded_classes_;
  /// "(handle:ordinal;)*" signature -> set ordinal, built at Open.
  std::unordered_map<std::string, std::uint32_t> set_index_;

  std::mutex resolve_mu_;
  std::unordered_map<TableauId, std::optional<std::uint32_t>>
      class_resolution_;
  std::unordered_map<std::string, std::optional<std::uint32_t>>
      set_resolution_;

  mutable std::atomic<std::size_t> membership_lookups_{0};
  mutable std::atomic<std::size_t> membership_hits_{0};
  mutable std::atomic<std::size_t> dominance_lookups_{0};
  mutable std::atomic<std::size_t> dominance_hits_{0};
  mutable std::atomic<std::size_t> limit_mismatches_{0};
};

}  // namespace viewcap

#endif  // VIEWCAP_INDEX_INDEX_READER_H_
