// Offline builder of the persistent capacity index (the build half of the
// build/query split; see DESIGN.md, "Persistent capacity index").
#ifndef VIEWCAP_INDEX_INDEX_WRITER_H_
#define VIEWCAP_INDEX_INDEX_WRITER_H_

#include <cstddef>
#include <string>

#include "algebra/enumerator.h"
#include "base/status.h"
#include "core/analyzer.h"

namespace viewcap {

/// Build tuning. `limits` are the SERVING limits: every stored verdict is
/// the exact answer the live engine gives under these limits, and the
/// reader refuses to serve probes using any other limits — that is what
/// makes index answers bit-identical to live answers by construction.
/// `max_leaves`/`max_entries_per_view` only bound the saturation sweep
/// (which queries get precomputed), not the answers themselves.
struct IndexBuildOptions {
  /// Leaf budget of the per-view capacity enumeration that decides which
  /// query classes get stored.
  std::size_t max_leaves = 4;
  /// Cap on stored capacity members per view.
  std::size_t max_entries_per_view = 256;
  /// The search limits verdicts are computed (and later served) under.
  SearchLimits limits;
};

struct IndexBuildStats {
  std::size_t classes = 0;
  std::size_t sets = 0;
  std::size_t verdicts = 0;
  std::size_t dominance_entries = 0;
  std::size_t bytes = 0;
};

/// Closure-saturates every loaded view of `analyzer` up to the build
/// budget and serializes the complete index image: interned classes, the
/// sorted canonical-key table, per-view query sets, membership verdicts
/// (the per-view capacity sweep plus every cross-view definition probe,
/// negatives included) and whole dominance verdicts for every ordered
/// view pair. The analyzer's catalog fingerprint is captured before any
/// work and stamped into the header.
///
/// The per-view saturation and cross-view sweeps run in parallel over
/// views on the engine's shared pool when `options.limits.threads` allows
/// (0 = hardware concurrency, 1 = serial); output bytes are identical for
/// every thread count — the order-sensitive steps (class ordinals, dedup,
/// serialized exemplars) run serially after the parallel phase.
Result<std::string> BuildIndexBytes(Analyzer& analyzer,
                                    const IndexBuildOptions& options,
                                    IndexBuildStats* stats = nullptr);

/// BuildIndexBytes + atomic file publication (temp file in the target
/// directory, then rename), so a crashed build never leaves a torn index
/// at `path`.
Result<IndexBuildStats> BuildIndexFile(Analyzer& analyzer,
                                       const std::string& path,
                                       const IndexBuildOptions& options);

}  // namespace viewcap

#endif  // VIEWCAP_INDEX_INDEX_WRITER_H_
