// On-disk format of the persistent capacity index (see DESIGN.md,
// "Persistent capacity index").
//
// The file is a header followed by self-checksummed sections, every
// multi-byte integer little-endian at a fixed offset, so a reader can
// mmap the file and answer lookups by binary search with zero parsing.
// Layout:
//
//   [ 0,  8)  magic "VCAPIDX1"
//   [ 8, 12)  endianness word 0x01020304 (rejects byte-swapped writers)
//   [12, 16)  format version (kIndexFormatVersion)
//   [16, 20)  engine fingerprint-scheme version (kFingerprintSchemeVersion)
//   [20, 24)  section count
//   [24, 32)  total file size in bytes
//   [32, 40)  header size in bytes (end of the section table)
//   [40, 48)  header checksum: FNV-1a over [0,40) ++ [48, header size)
//   [48, ..)  catalog fingerprint (u32 length + bytes)
//             section table: per section u32 id, u64 offset/size/checksum
//
// Sections follow back to back; each entry's checksum is FNV-1a over the
// section's bytes. Offsets are absolute. Validation order (every failure
// a structured IllFormed, never UB): minimum size -> magic -> endianness
// -> versions -> file size -> header checksum -> catalog fingerprint ->
// section bounds -> section checksums -> structural decode.
#ifndef VIEWCAP_INDEX_FORMAT_H_
#define VIEWCAP_INDEX_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "relation/catalog.h"

namespace viewcap {

inline constexpr char kIndexMagic[8] = {'V', 'C', 'A', 'P',
                                        'I', 'D', 'X', '1'};
inline constexpr std::uint32_t kIndexEndianWord = 0x01020304u;
inline constexpr std::uint32_t kIndexFormatVersion = 1;

/// Section ids (the table may list them in any order; each at most once).
enum IndexSectionId : std::uint32_t {
  kSectionMeta = 1,      ///< Build limits, saturation budget, entity counts.
  kSectionClasses = 2,   ///< Interned template classes in row-major form.
  kSectionKeys = 3,      ///< Sorted canonical-key -> class ordinals table.
  kSectionSets = 4,      ///< Query sets as (handle, class ordinal) members.
  kSectionVerdicts = 5,  ///< Membership verdicts per (set, query class).
  kSectionDominance = 6, ///< Dominance verdicts keyed by DominanceKeyFor.
};

struct IndexSection {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

/// The decoded, validated header of an index file.
struct IndexHeader {
  std::uint32_t format_version = 0;
  std::uint32_t fingerprint_scheme_version = 0;
  std::uint64_t file_size = 0;
  std::uint64_t header_size = 0;
  std::string catalog_fingerprint;
  std::vector<IndexSection> sections;
};

/// Versioned fingerprint of a catalog's name assignment: every attribute
/// name in id order plus every relation name with its scheme (as attribute
/// ids) in id order. Two catalogs share a fingerprint iff loading replays
/// produced the identical id assignment — exactly the condition under
/// which persisted ids, ordinals and witness texts decode to the same
/// objects. The index stamps the builder's fingerprint into its header;
/// a reader attaching over a different catalog rejects the file.
std::string CatalogFingerprint(const Catalog& catalog);

// --- Little-endian serialization helpers (writer side) -------------------

void AppendU8(std::string& out, std::uint8_t v);
void AppendU32(std::string& out, std::uint32_t v);
void AppendU64(std::string& out, std::uint64_t v);
/// u32 byte length + raw bytes.
void AppendString(std::string& out, std::string_view s);

// --- Bounds-checked deserialization (reader side) ------------------------

/// A read head over a byte range. Every Read* fails with IllFormed instead
/// of reading past the end, so corrupt or truncated files surface as clean
/// Status values (the corruption tests run the whole suite under ASan and
/// UBSan to hold the no-UB line).
class Cursor {
 public:
  Cursor(std::string_view bytes, std::string_view what)
      : bytes_(bytes), what_(what) {}

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return bytes_.size() - offset_; }
  bool AtEnd() const { return offset_ == bytes_.size(); }

  Result<std::uint8_t> ReadU8();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  /// u32 length + bytes; the view aliases the underlying buffer.
  Result<std::string_view> ReadString();
  Status Seek(std::size_t offset);

 private:
  Status Truncated(std::size_t need) const;

  std::string_view bytes_;
  std::string_view what_;  // For error messages ("meta section", ...).
  std::size_t offset_ = 0;
};

/// Parses and validates an index header out of the full file image, in the
/// documented order. On success every section's [offset, offset+size) is
/// known to lie inside the file and past the header; checksums of the
/// sections themselves are verified separately (FindSection).
Result<IndexHeader> ParseIndexHeader(std::string_view file);

/// The bytes of section `id`, with its checksum verified. NotFound when
/// the table has no such section.
Result<std::string_view> FindSection(const IndexHeader& header,
                                     std::string_view file, std::uint32_t id);

/// Assembles a complete index file image from the section payloads
/// (writer side): header, fingerprint, table and checksums.
std::string AssembleIndexFile(
    std::string_view catalog_fingerprint,
    const std::vector<std::pair<std::uint32_t, std::string>>& sections);

}  // namespace viewcap

#endif  // VIEWCAP_INDEX_FORMAT_H_
