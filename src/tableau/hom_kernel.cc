#include "tableau/hom_kernel.h"

#include <algorithm>

#include "base/check.h"

namespace viewcap {

namespace {

// One search instance over prepared scratch. The candidate lists, visit
// order and per-row unification loop mirror legacy HomSearch exactly so
// the first witness found is the same map.
class KernelSearch {
 public:
  /// `exclude_target_row` (when >= 0) removes one target row from every
  /// candidate list — the reduction probe's "search t into t minus one
  /// row" without lowering the subset template.
  KernelSearch(const SoaTemplate& from, const SoaTemplate& to, HomMode mode,
               HomScratch& scratch, std::int32_t exclude_target_row = -1)
      : from_(from),
        to_(to),
        fix_distinguished_(mode != HomMode::kRowEmbedding),
        injective_(mode == HomMode::kIsomorphism),
        exclude_target_row_(exclude_target_row),
        s_(scratch) {}

  bool Run() {
    BuildCandidates();
    s_.binding.assign(static_cast<std::size_t>(from_.num_symbols()),
                      kNoDenseSymbol);
    if (injective_) {
      s_.used.assign(static_cast<std::size_t>(to_.num_symbols()), 0);
    }
    s_.trail.clear();
    return Recurse(0);
  }

 private:
  // Candidate target rows per source row: same relation tag, and (in
  // fix-distinguished modes) distinguished wherever the source row is —
  // the legacy constructor's checks — plus the occurrence-signature
  // unification prune: f maps every row onto a same-tagged row, so the
  // value a symbol binds to must occur in every (rel, column) context the
  // symbol occurs in. The prune is applied identically by the legacy
  // search, keeping candidate lists (and hence witnesses) bit-identical.
  void BuildCandidates() {
    const std::int32_t rows = from_.num_rows();
    s_.candidates.clear();
    s_.cand_begin.assign(static_cast<std::size_t>(rows) + 1, 0);
    const std::int32_t words = from_.dist_words();
    for (std::int32_t i = 0; i < rows; ++i) {
      const DenseSymbolId* row = from_.row(i);
      const std::uint64_t* row_mask = from_.dist_mask(i);
      const SoaRowGroup* group = to_.GroupFor(from_.row_rel(i));
      if (group != nullptr) {
        for (std::int32_t j = group->begin; j < group->end; ++j) {
          if (j == exclude_target_row_) continue;
          if (fix_distinguished_) {
            const std::uint64_t* target_mask = to_.dist_mask(j);
            bool covered = true;
            for (std::int32_t w = 0; w < words; ++w) {
              if ((row_mask[w] & ~target_mask[w]) != 0) {
                covered = false;
                break;
              }
            }
            if (!covered) continue;
          }
          const DenseSymbolId* target = to_.row(j);
          bool unifiable = true;
          for (std::int32_t k = 0; k < from_.width(); ++k) {
            if (!SignatureSubset(from_.signature(row[k]),
                                 to_.signature(target[k]))) {
              unifiable = false;
              break;
            }
          }
          if (unifiable) s_.candidates.push_back(j);
        }
      }
      s_.cand_begin[static_cast<std::size_t>(i) + 1] =
          static_cast<std::int32_t>(s_.candidates.size());
    }
    s_.order.resize(static_cast<std::size_t>(rows));
    for (std::int32_t i = 0; i < rows; ++i) {
      s_.order[static_cast<std::size_t>(i)] = i;
    }
    std::sort(s_.order.begin(), s_.order.end(),
              [&](std::int32_t a, std::int32_t b) {
                const std::int32_t ca = CandCount(a);
                const std::int32_t cb = CandCount(b);
                if (ca != cb) return ca < cb;
                return a < b;
              });
  }

  std::int32_t CandCount(std::int32_t i) const {
    return s_.cand_begin[static_cast<std::size_t>(i) + 1] -
           s_.cand_begin[static_cast<std::size_t>(i)];
  }

  bool Recurse(std::int32_t depth) {
    if (depth == static_cast<std::int32_t>(s_.order.size())) return true;
    const std::int32_t i = s_.order[static_cast<std::size_t>(depth)];
    const DenseSymbolId* row = from_.row(i);
    const std::int32_t cand_end = s_.cand_begin[static_cast<std::size_t>(i) + 1];
    for (std::int32_t c = s_.cand_begin[static_cast<std::size_t>(i)];
         c < cand_end; ++c) {
      const std::int32_t j = s_.candidates[static_cast<std::size_t>(c)];
      const DenseSymbolId* target = to_.row(j);
      const std::size_t trail_start = s_.trail.size();
      bool ok = true;
      for (std::int32_t k = 0; k < from_.width(); ++k) {
        const DenseSymbolId var = row[k];
        const DenseSymbolId value = target[k];
        if (fix_distinguished_ && from_.IsDistinguished(var)) {
          // Column k holds only symbols of attribute A_k, so "value is
          // distinguished" already means value == 0_{A_k} == var.
          if (!to_.IsDistinguished(value)) {
            ok = false;
            break;
          }
          continue;
        }
        const DenseSymbolId bound = s_.binding[static_cast<std::size_t>(var)];
        if (bound != kNoDenseSymbol) {
          if (bound != value) {
            ok = false;
            break;
          }
        } else {
          if (injective_ && (to_.IsDistinguished(value) ||
                             s_.used[static_cast<std::size_t>(value)] != 0)) {
            ok = false;
            break;
          }
          s_.binding[static_cast<std::size_t>(var)] = value;
          if (injective_) s_.used[static_cast<std::size_t>(value)] = 1;
          s_.trail.push_back(var);
        }
      }
      if (ok && Recurse(depth + 1)) return true;
      while (s_.trail.size() > trail_start) {
        const DenseSymbolId var = s_.trail.back();
        s_.trail.pop_back();
        DenseSymbolId& slot = s_.binding[static_cast<std::size_t>(var)];
        if (injective_) s_.used[static_cast<std::size_t>(slot)] = 0;
        slot = kNoDenseSymbol;
      }
    }
    return false;
  }

  const SoaTemplate& from_;
  const SoaTemplate& to_;
  bool fix_distinguished_;
  bool injective_;
  std::int32_t exclude_target_row_;
  HomScratch& s_;
};

}  // namespace

bool SoaSearch(const SoaTemplate& from, const SoaTemplate& to, HomMode mode,
               HomScratch& scratch, std::vector<DenseSymbolId>* witness) {
  VIEWCAP_CHECK(from.width() == to.width() &&
                "SoaSearch: templates over different universes");
  KernelSearch search(from, to, mode, scratch);
  if (!search.Run()) return false;
  if (witness != nullptr) *witness = scratch.binding;
  return true;
}

bool SoaReduceProbe(const SoaTemplate& t, std::int32_t drop,
                    HomScratch& scratch) {
  // Homomorphism of t into t minus row `drop` over one shared lowering.
  // Target-side signatures come from the full template, so the
  // unification prune is a (sound) overapproximation of the subset's —
  // the search is complete either way, and the reduction loop only
  // consumes the verdict.
  KernelSearch search(t, t, HomMode::kHomomorphism, scratch, drop);
  return search.Run();
}

std::vector<char> SoaSearchWave(const std::vector<const SoaTemplate*>& froms,
                                const SoaTemplate& to, HomMode mode,
                                HomScratch& scratch) {
  std::vector<char> results(froms.size(), 0);
  for (std::size_t i = 0; i < froms.size(); ++i) {
    const SoaTemplate* from = froms[i];
    if (from == nullptr || from->width() != to.width()) continue;
    results[i] = SoaSearch(*from, to, mode, scratch, nullptr) ? 1 : 0;
  }
  return results;
}

SymbolMap DecodeWitness(const SoaTemplate& from, const SoaTemplate& to,
                        const std::vector<DenseSymbolId>& witness) {
  SymbolMap map;
  map.reserve(static_cast<std::size_t>(from.num_symbols()));
  for (std::int32_t d = 0; d < from.num_symbols(); ++d) {
    const DenseSymbolId value = witness[static_cast<std::size_t>(d)];
    if (value != kNoDenseSymbol) map.emplace(from.symbol(d), to.symbol(value));
  }
  // Identity on distinguished symbols, without overwriting entries the
  // embedding-mode search bound — the exact completion HomSearch::Run
  // performs.
  for (std::int32_t d = 0; d < from.num_distinguished(); ++d) {
    map.emplace(from.symbol(d), from.symbol(d));
  }
  return map;
}

namespace {

HomScratch& LocalScratch() {
  thread_local HomScratch scratch;
  return scratch;
}

}  // namespace

namespace {

/// Necessary condition for a distinguished-fixing map, checked before
/// paying for the lowerings: f(0_A) = 0_A, so every attribute whose
/// distinguished symbol occurs in `from` must occur distinguished in
/// `to` as well. Restores the legacy constructor's instant failure on
/// projection-severed targets.
bool TrsCompatible(const Tableau& from, const Tableau& to) {
  return from.Trs().SubsetOf(to.Trs());
}

}  // namespace

std::optional<SymbolMap> SoaFindHomomorphism(const Tableau& from,
                                             const Tableau& to) {
  if (from.universe() != to.universe()) return std::nullopt;
  if (!TrsCompatible(from, to)) return std::nullopt;
  const SoaTemplate sf = SoaTemplate::Lower(from);
  const SoaTemplate st = SoaTemplate::Lower(to);
  HomScratch& scratch = LocalScratch();
  std::vector<DenseSymbolId> witness;
  if (!SoaSearch(sf, st, HomMode::kHomomorphism, scratch, &witness)) {
    return std::nullopt;
  }
  return DecodeWitness(sf, st, witness);
}

bool SoaHasHomomorphism(const Tableau& from, const Tableau& to) {
  if (from.universe() != to.universe()) return false;
  if (!TrsCompatible(from, to)) return false;
  const SoaTemplate sf = SoaTemplate::Lower(from);
  const SoaTemplate st = SoaTemplate::Lower(to);
  return SoaSearch(sf, st, HomMode::kHomomorphism, LocalScratch(), nullptr);
}

bool SoaHasRowEmbedding(const Tableau& from, const Tableau& to) {
  if (from.universe() != to.universe()) return false;
  const SoaTemplate sf = SoaTemplate::Lower(from);
  const SoaTemplate st = SoaTemplate::Lower(to);
  return SoaSearch(sf, st, HomMode::kRowEmbedding, LocalScratch(), nullptr);
}

std::optional<SymbolMap> SoaFindIsomorphism(const Tableau& a,
                                            const Tableau& b) {
  if (a.universe() != b.universe()) return std::nullopt;
  if (a.size() != b.size()) return std::nullopt;
  if (!TrsCompatible(a, b)) return std::nullopt;
  const SoaTemplate sa = SoaTemplate::Lower(a);
  const SoaTemplate sb = SoaTemplate::Lower(b);
  if (sa.num_symbols() != sb.num_symbols()) return std::nullopt;
  HomScratch& scratch = LocalScratch();
  std::vector<DenseSymbolId> witness;
  if (!SoaSearch(sa, sb, HomMode::kIsomorphism, scratch, &witness)) {
    return std::nullopt;
  }
  return DecodeWitness(sa, sb, witness);
}

}  // namespace viewcap
