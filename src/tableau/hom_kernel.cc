#include "tableau/hom_kernel.h"

#include <algorithm>

#include "base/check.h"

namespace viewcap {

namespace {

// Candidate target rows per source row: same relation tag, and (in
// fix-distinguished modes) distinguished wherever the source row is,
// plus the occurrence-signature unification prune — the filter predicate
// of hom_filter.h, run on `backend`. Appends `from`'s lists to the
// arenas: survivors to `cand`, rows+1 offsets (relative to the caller's
// position in `cand`) to `begins`, and — when `orders` is non-null — the
// most-constrained-first (count, index) visit order. Appending instead
// of overwriting lets the wave entry points prepare a whole batch in one
// arena before any search runs.
void BuildListsAppend(const SoaTemplate& from, const SoaTemplate& to,
                      bool fix_distinguished, std::int32_t exclude_target_row,
                      SimdBackend backend, FilterScratch& fs,
                      std::vector<std::int32_t>& cand,
                      std::vector<std::int32_t>& begins,
                      std::vector<std::int32_t>* orders) {
  const std::int32_t rows = from.num_rows();
  const std::int32_t base = static_cast<std::int32_t>(cand.size());
  const std::size_t begins_base = begins.size();
  begins.push_back(0);
  for (std::int32_t i = 0; i < rows; ++i) {
    const SoaRowGroup* group = to.GroupFor(from.row_rel(i));
    if (group != nullptr) {
      FilterJob job;
      job.from = &from;
      job.to = &to;
      job.source_row = i;
      job.group = group;
      job.fix_distinguished = fix_distinguished;
      job.exclude_target_row = exclude_target_row;
      FilterSourceRow(backend, job, fs, cand);
    }
    begins.push_back(static_cast<std::int32_t>(cand.size()) - base);
  }
  if (orders != nullptr) {
    const std::size_t order_base = orders->size();
    for (std::int32_t i = 0; i < rows; ++i) orders->push_back(i);
    const std::int32_t* b = begins.data() + begins_base;
    std::sort(orders->begin() + static_cast<std::ptrdiff_t>(order_base),
              orders->end(), [b](std::int32_t x, std::int32_t y) {
                const std::int32_t cx = b[x + 1] - b[x];
                const std::int32_t cy = b[y + 1] - b[y];
                if (cx != cy) return cx < cy;
                return x < y;
              });
  }
}

// One search instance over prepared scratch. The candidate lists, visit
// order and per-row unification loop mirror legacy HomSearch exactly so
// the first witness found is the same map.
class KernelSearch {
 public:
  /// `exclude_target_row` (when >= 0) removes one target row from every
  /// candidate list — the reduction probe's "search t into t minus one
  /// row" without lowering the subset template.
  KernelSearch(const SoaTemplate& from, const SoaTemplate& to, HomMode mode,
               HomScratch& scratch, std::int32_t exclude_target_row = -1)
      : from_(from),
        to_(to),
        fix_distinguished_(mode != HomMode::kRowEmbedding),
        injective_(mode == HomMode::kIsomorphism),
        exclude_target_row_(exclude_target_row),
        s_(scratch) {}

  bool Run() {
    s_.candidates.clear();
    s_.cand_begin.clear();
    s_.order.clear();
    BuildListsAppend(from_, to_, fix_distinguished_, exclude_target_row_,
                     s_.backend, s_.filter, s_.candidates, s_.cand_begin,
                     &s_.order);
    return RunPrepared(s_.candidates.data(), s_.cand_begin.data(),
                       s_.order.data());
  }

  /// Backtracking over externally prepared lists: `cand_begin` holds
  /// rows+1 offsets into `candidates`, `order` the visit order. The wave
  /// entry points call this with slices of the shared wave arenas.
  bool RunPrepared(const std::int32_t* candidates,
                   const std::int32_t* cand_begin,
                   const std::int32_t* order) {
    cand_ = candidates;
    cand_begin_ = cand_begin;
    order_ = order;
    s_.binding.assign(static_cast<std::size_t>(from_.num_symbols()),
                      kNoDenseSymbol);
    if (injective_) {
      s_.used.assign(static_cast<std::size_t>(to_.num_symbols()), 0);
    }
    s_.trail.clear();
    return Recurse(0);
  }

 private:
  bool Recurse(std::int32_t depth) {
    if (depth == from_.num_rows()) return true;
    const std::int32_t i = order_[static_cast<std::size_t>(depth)];
    const DenseSymbolId* row = from_.row(i);
    const std::int32_t cand_end = cand_begin_[static_cast<std::size_t>(i) + 1];
    for (std::int32_t c = cand_begin_[static_cast<std::size_t>(i)];
         c < cand_end; ++c) {
      const std::int32_t j = cand_[static_cast<std::size_t>(c)];
      const DenseSymbolId* target = to_.row(j);
      const std::size_t trail_start = s_.trail.size();
      bool ok = true;
      for (std::int32_t k = 0; k < from_.width(); ++k) {
        const DenseSymbolId var = row[k];
        const DenseSymbolId value = target[k];
        if (fix_distinguished_ && from_.IsDistinguished(var)) {
          // Column k holds only symbols of attribute A_k, so "value is
          // distinguished" already means value == 0_{A_k} == var.
          if (!to_.IsDistinguished(value)) {
            ok = false;
            break;
          }
          continue;
        }
        const DenseSymbolId bound = s_.binding[static_cast<std::size_t>(var)];
        if (bound != kNoDenseSymbol) {
          if (bound != value) {
            ok = false;
            break;
          }
        } else {
          if (injective_ && (to_.IsDistinguished(value) ||
                             s_.used[static_cast<std::size_t>(value)] != 0)) {
            ok = false;
            break;
          }
          s_.binding[static_cast<std::size_t>(var)] = value;
          if (injective_) s_.used[static_cast<std::size_t>(value)] = 1;
          s_.trail.push_back(var);
        }
      }
      if (ok && Recurse(depth + 1)) return true;
      while (s_.trail.size() > trail_start) {
        const DenseSymbolId var = s_.trail.back();
        s_.trail.pop_back();
        DenseSymbolId& slot = s_.binding[static_cast<std::size_t>(var)];
        if (injective_) s_.used[static_cast<std::size_t>(slot)] = 0;
        slot = kNoDenseSymbol;
      }
    }
    return false;
  }

  const SoaTemplate& from_;
  const SoaTemplate& to_;
  bool fix_distinguished_;
  bool injective_;
  std::int32_t exclude_target_row_;
  HomScratch& s_;
  // Prepared candidate lists the recursion walks; set by Run /
  // RunPrepared.
  const std::int32_t* cand_ = nullptr;
  const std::int32_t* cand_begin_ = nullptr;
  const std::int32_t* order_ = nullptr;
};

}  // namespace

bool SoaSearch(const SoaTemplate& from, const SoaTemplate& to, HomMode mode,
               HomScratch& scratch, std::vector<DenseSymbolId>* witness) {
  VIEWCAP_CHECK(from.width() == to.width() &&
                "SoaSearch: templates over different universes");
  KernelSearch search(from, to, mode, scratch);
  if (!search.Run()) return false;
  if (witness != nullptr) *witness = scratch.binding;
  return true;
}

bool SoaReduceProbe(const SoaTemplate& t, std::int32_t drop,
                    HomScratch& scratch) {
  // Homomorphism of t into t minus row `drop` over one shared lowering.
  // Target-side signatures come from the full template, so the
  // unification prune is a (sound) overapproximation of the subset's —
  // the search is complete either way, and the reduction loop only
  // consumes the verdict.
  KernelSearch search(t, t, HomMode::kHomomorphism, scratch, drop);
  return search.Run();
}

std::int32_t SoaReduceSweep(const SoaTemplate& t, HomScratch& scratch) {
  const std::int32_t rows = t.num_rows();
  // One filter pass over the full template (no excluded row); each
  // drop's candidate lists are the full lists minus the dropped target
  // row, because the filter predicate never depends on the exclusion —
  // excluding row d only removes d itself from every list.
  auto& full_cand = scratch.wave_candidates;
  auto& full_begin = scratch.wave_begin;
  full_cand.clear();
  full_begin.clear();
  BuildListsAppend(t, t, /*fix_distinguished=*/true, /*exclude_target_row=*/-1,
                   scratch.backend, scratch.filter, full_cand, full_begin,
                   /*orders=*/nullptr);
  for (std::int32_t drop = 0; drop < rows; ++drop) {
    auto& cand = scratch.candidates;
    auto& begins = scratch.cand_begin;
    cand.clear();
    begins.clear();
    begins.push_back(0);
    for (std::int32_t i = 0; i < rows; ++i) {
      for (std::int32_t c = full_begin[static_cast<std::size_t>(i)];
           c < full_begin[static_cast<std::size_t>(i) + 1]; ++c) {
        const std::int32_t j = full_cand[static_cast<std::size_t>(c)];
        if (j != drop) cand.push_back(j);
      }
      begins.push_back(static_cast<std::int32_t>(cand.size()));
    }
    // Most-constrained-first order over the derived counts — identical
    // to what a per-drop filter pass would have produced.
    auto& order = scratch.order;
    order.clear();
    for (std::int32_t i = 0; i < rows; ++i) order.push_back(i);
    const std::int32_t* b = begins.data();
    std::sort(order.begin(), order.end(), [b](std::int32_t x, std::int32_t y) {
      const std::int32_t cx = b[x + 1] - b[x];
      const std::int32_t cy = b[y + 1] - b[y];
      if (cx != cy) return cx < cy;
      return x < y;
    });
    KernelSearch search(t, t, HomMode::kHomomorphism, scratch, drop);
    if (search.RunPrepared(cand.data(), begins.data(), order.data())) {
      return drop;
    }
  }
  return -1;
}

std::vector<char> SoaSearchWave(const std::vector<const SoaTemplate*>& froms,
                                const SoaTemplate& to, HomMode mode,
                                HomScratch& scratch) {
  std::vector<char> results(froms.size(), 0);
  const bool fix_distinguished = mode != HomMode::kRowEmbedding;

  // Phase 1: one vectorized filter pass over the shared target prepares
  // every source's candidate lists in the wave arenas.
  auto& cand = scratch.wave_candidates;
  auto& begins = scratch.wave_begin;
  auto& orders = scratch.wave_order;
  cand.clear();
  begins.clear();
  orders.clear();
  struct Slice {
    std::int32_t cand_base = -1;
    std::int32_t begins_base = 0;
    std::int32_t order_base = 0;
  };
  std::vector<Slice> slices(froms.size());
  for (std::size_t i = 0; i < froms.size(); ++i) {
    const SoaTemplate* from = froms[i];
    if (from == nullptr || from->width() != to.width()) continue;
    slices[i] = Slice{static_cast<std::int32_t>(cand.size()),
                      static_cast<std::int32_t>(begins.size()),
                      static_cast<std::int32_t>(orders.size())};
    BuildListsAppend(*from, to, fix_distinguished, /*exclude_target_row=*/-1,
                     scratch.backend, scratch.filter, cand, begins, &orders);
  }

  // Phase 2: backtracking over the prepared lists. A source with any
  // empty candidate list is trivially unmappable — skip its search
  // setup entirely (same verdict the search would reach).
  for (std::size_t i = 0; i < froms.size(); ++i) {
    if (slices[i].cand_base < 0) continue;
    const SoaTemplate& from = *froms[i];
    const std::int32_t rows = from.num_rows();
    const std::int32_t* b =
        begins.data() + static_cast<std::size_t>(slices[i].begins_base);
    bool any_empty = false;
    for (std::int32_t r = 0; r < rows; ++r) {
      if (b[r + 1] == b[r]) {
        any_empty = true;
        break;
      }
    }
    if (any_empty) continue;
    KernelSearch search(from, to, mode, scratch);
    results[i] =
        search.RunPrepared(
            cand.data() + static_cast<std::size_t>(slices[i].cand_base), b,
            orders.data() + static_cast<std::size_t>(slices[i].order_base))
            ? 1
            : 0;
  }
  return results;
}

std::int64_t SoaBuildCandidates(const SoaTemplate& from, const SoaTemplate& to,
                                HomMode mode, HomScratch& scratch) {
  VIEWCAP_CHECK(from.width() == to.width() &&
                "SoaBuildCandidates: templates over different universes");
  scratch.candidates.clear();
  scratch.cand_begin.clear();
  scratch.order.clear();
  BuildListsAppend(from, to, mode != HomMode::kRowEmbedding,
                   /*exclude_target_row=*/-1, scratch.backend, scratch.filter,
                   scratch.candidates, scratch.cand_begin, &scratch.order);
  return static_cast<std::int64_t>(scratch.candidates.size());
}

SymbolMap DecodeWitness(const SoaTemplate& from, const SoaTemplate& to,
                        const std::vector<DenseSymbolId>& witness) {
  SymbolMap map;
  map.reserve(static_cast<std::size_t>(from.num_symbols()));
  for (std::int32_t d = 0; d < from.num_symbols(); ++d) {
    const DenseSymbolId value = witness[static_cast<std::size_t>(d)];
    if (value != kNoDenseSymbol) map.emplace(from.symbol(d), to.symbol(value));
  }
  // Identity on distinguished symbols, without overwriting entries the
  // embedding-mode search bound — the exact completion HomSearch::Run
  // performs.
  for (std::int32_t d = 0; d < from.num_distinguished(); ++d) {
    map.emplace(from.symbol(d), from.symbol(d));
  }
  return map;
}

namespace {

HomScratch& LocalScratch() {
  thread_local HomScratch scratch;
  return scratch;
}

}  // namespace

namespace {

/// Necessary condition for a distinguished-fixing map, checked before
/// paying for the lowerings: f(0_A) = 0_A, so every attribute whose
/// distinguished symbol occurs in `from` must occur distinguished in
/// `to` as well. Restores the legacy constructor's instant failure on
/// projection-severed targets.
bool TrsCompatible(const Tableau& from, const Tableau& to) {
  return from.Trs().SubsetOf(to.Trs());
}

}  // namespace

std::optional<SymbolMap> SoaFindHomomorphism(const Tableau& from,
                                             const Tableau& to) {
  if (from.universe() != to.universe()) return std::nullopt;
  if (!TrsCompatible(from, to)) return std::nullopt;
  const SoaTemplate sf = SoaTemplate::Lower(from);
  const SoaTemplate st = SoaTemplate::Lower(to);
  HomScratch& scratch = LocalScratch();
  std::vector<DenseSymbolId> witness;
  if (!SoaSearch(sf, st, HomMode::kHomomorphism, scratch, &witness)) {
    return std::nullopt;
  }
  return DecodeWitness(sf, st, witness);
}

bool SoaHasHomomorphism(const Tableau& from, const Tableau& to) {
  if (from.universe() != to.universe()) return false;
  if (!TrsCompatible(from, to)) return false;
  const SoaTemplate sf = SoaTemplate::Lower(from);
  const SoaTemplate st = SoaTemplate::Lower(to);
  return SoaSearch(sf, st, HomMode::kHomomorphism, LocalScratch(), nullptr);
}

bool SoaHasRowEmbedding(const Tableau& from, const Tableau& to) {
  if (from.universe() != to.universe()) return false;
  const SoaTemplate sf = SoaTemplate::Lower(from);
  const SoaTemplate st = SoaTemplate::Lower(to);
  return SoaSearch(sf, st, HomMode::kRowEmbedding, LocalScratch(), nullptr);
}

std::optional<SymbolMap> SoaFindIsomorphism(const Tableau& a,
                                            const Tableau& b) {
  if (a.universe() != b.universe()) return std::nullopt;
  if (a.size() != b.size()) return std::nullopt;
  if (!TrsCompatible(a, b)) return std::nullopt;
  const SoaTemplate sa = SoaTemplate::Lower(a);
  const SoaTemplate sb = SoaTemplate::Lower(b);
  if (sa.num_symbols() != sb.num_symbols()) return std::nullopt;
  HomScratch& scratch = LocalScratch();
  std::vector<DenseSymbolId> witness;
  if (!SoaSearch(sa, sb, HomMode::kIsomorphism, scratch, &witness)) {
    return std::nullopt;
  }
  return DecodeWitness(sa, sb, witness);
}

}  // namespace viewcap
