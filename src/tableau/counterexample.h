// Canonical ("frozen") instances and semantic distinguishing search.
#ifndef VIEWCAP_TABLEAU_COUNTEREXAMPLE_H_
#define VIEWCAP_TABLEAU_COUNTEREXAMPLE_H_

#include <optional>

#include "base/random.h"
#include "relation/generator.h"
#include "relation/instantiation.h"
#include "tableau/tableau.h"

namespace viewcap {

/// The canonical instance of a template: each tagged tuple (t, eta)
/// contributes t[R(eta)] to alpha(eta), with the template's symbols read as
/// constants. Evaluating any template S on FreezeTableau(T) yields the
/// distinguished tuple of T iff there is a homomorphism from S to T —
/// the Chandra-Merlin reading of Proposition 2.4.1 that the property tests
/// use to cross-validate the homomorphism search.
Instantiation FreezeTableau(const Catalog& catalog, const Tableau& t);

/// Searches for an instantiation on which `a` and `b` produce different
/// relations: first both frozen instances (which are guaranteed to witness
/// any inequivalence of valid templates), then `random_trials` random
/// instances over the names of both templates. Returns nullopt when none
/// found (i.e. the templates appear equivalent).
std::optional<Instantiation> FindDistinguishingInstance(
    const Catalog& catalog, const Tableau& a, const Tableau& b,
    const InstanceOptions& options, std::size_t random_trials, Random& rng);

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_COUNTEREXAMPLE_H_
