#include "tableau/reduce.h"

#include <numeric>

#include "base/check.h"
#include "tableau/homomorphism.h"

namespace viewcap {

Tableau Reduce(const Catalog& catalog, const Tableau& t) {
  Tableau current = t;
  bool changed = true;
  while (changed && current.size() > 1) {
    changed = false;
    for (std::size_t drop = 0; drop < current.size(); ++drop) {
      std::vector<std::size_t> keep;
      keep.reserve(current.size() - 1);
      for (std::size_t i = 0; i < current.size(); ++i) {
        if (i != drop) keep.push_back(i);
      }
      Tableau sub = current.SubsetRows(keep);
      // sub is a subset, so current(alpha) is contained in sub(alpha) for
      // every alpha; equivalence therefore needs exactly a homomorphism
      // current -> sub. That homomorphism fixes distinguished symbols, so
      // TRS and condition (iii) survive automatically.
      if (HasHomomorphism(catalog, current, sub)) {
        current = std::move(sub);
        changed = true;
        break;
      }
    }
  }
  ValidateTableau(catalog, current);
  return current;
}

bool IsReduced(const Catalog& catalog, const Tableau& t) {
  return Reduce(catalog, t).size() == t.size();
}

}  // namespace viewcap
