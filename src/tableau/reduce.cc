#include "tableau/reduce.h"

#include <numeric>

#include "base/check.h"
#include "tableau/hom_kernel.h"
#include "tableau/soa.h"

namespace viewcap {

Tableau Reduce(const Catalog& catalog, const Tableau& t) {
  HomScratch scratch;
  return Reduce(catalog, t, scratch);
}

Tableau Reduce(const Catalog& catalog, const Tableau& t, HomScratch& scratch) {
  Tableau current = t;
  bool changed = true;
  while (changed && current.size() > 1) {
    changed = false;
    // One lowering — and one candidate-filter pass — serves every drop
    // probe of this pass: the sweep searches current -> current minus
    // one row over the same SoA form for all n drops, deriving each
    // drop's candidate lists from one shared prefilter instead of
    // re-filtering (let alone re-lowering) per probe.
    const SoaTemplate soa = SoaTemplate::Lower(current);
    // current minus a row is a subset, so current(alpha) is contained
    // in the subset's result for every alpha; equivalence therefore
    // needs exactly a homomorphism current -> current minus the row.
    // That homomorphism fixes distinguished symbols, so TRS and
    // condition (iii) survive automatically.
    const std::int32_t drop = SoaReduceSweep(soa, scratch);
    if (drop >= 0) {
      std::vector<std::size_t> keep;
      keep.reserve(current.size() - 1);
      for (std::size_t i = 0; i < current.size(); ++i) {
        if (i != static_cast<std::size_t>(drop)) keep.push_back(i);
      }
      current = current.SubsetRows(keep);
      changed = true;
    }
  }
  ValidateTableau(catalog, current);
  return current;
}

bool IsReduced(const Catalog& catalog, const Tableau& t) {
  return Reduce(catalog, t).size() == t.size();
}

}  // namespace viewcap
