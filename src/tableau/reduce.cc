#include "tableau/reduce.h"

#include <numeric>

#include "base/check.h"
#include "tableau/hom_kernel.h"
#include "tableau/soa.h"

namespace viewcap {

Tableau Reduce(const Catalog& catalog, const Tableau& t) {
  Tableau current = t;
  bool changed = true;
  HomScratch scratch;
  while (changed && current.size() > 1) {
    changed = false;
    // One lowering serves every drop probe of this pass: the probe
    // searches current -> current minus one row over the same SoA form
    // instead of building and lowering each (n-1)-row subset.
    const SoaTemplate soa = SoaTemplate::Lower(current);
    for (std::size_t drop = 0; drop < current.size(); ++drop) {
      // current minus a row is a subset, so current(alpha) is contained
      // in the subset's result for every alpha; equivalence therefore
      // needs exactly a homomorphism current -> current minus the row.
      // That homomorphism fixes distinguished symbols, so TRS and
      // condition (iii) survive automatically.
      if (SoaReduceProbe(soa, static_cast<std::int32_t>(drop), scratch)) {
        std::vector<std::size_t> keep;
        keep.reserve(current.size() - 1);
        for (std::size_t i = 0; i < current.size(); ++i) {
          if (i != drop) keep.push_back(i);
        }
        current = current.SubsetRows(keep);
        changed = true;
        break;
      }
    }
  }
  ValidateTableau(catalog, current);
  return current;
}

bool IsReduced(const Catalog& catalog, const Tableau& t) {
  return Reduce(catalog, t).size() == t.size();
}

}  // namespace viewcap
