// Candidate-filter stage of the homomorphism kernel, with SIMD backends
// (DESIGN.md, "Vectorized candidate filter").
//
// For one source row, the filter scans one relation-tag group of target
// rows and emits the ascending list of rows the backtracking search may
// bind it to: same relation tag (implied by the group), distinguished
// wherever the source row is (fix-distinguished modes), and
// per-column occurrence-signature containment. The SoA layout makes the
// first two checks masked integer compares over contiguous arrays, and
// the third gets a vector length prefilter (|sig(source cell)| <=
// |sig(target cell)| is necessary for containment) before the exact
// sorted-subset confirm — so the 128/256-bit backends test 2-8 candidate
// rows or columns per step and compact survivors branch-free.
//
// Every backend evaluates the same pure predicate over the same rows in
// the same order, so survivor lists — and therefore search verdicts,
// witnesses, and survivor counters — are bit-identical across backends.
// The scalar implementation is the straight port of the original loop
// and serves as the differential oracle.
#ifndef VIEWCAP_TABLEAU_HOM_FILTER_H_
#define VIEWCAP_TABLEAU_HOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "base/simd.h"
#include "tableau/soa.h"

namespace viewcap {

/// Filter activity counters, comparable across backends: `invocations`
/// counts filter calls (one per source row with a matching target
/// group), `rows` the candidate target rows pushed through the predicate
/// (the lanes processed), `survivors` the rows that passed. All three
/// are backend-invariant by construction, which is what lets the
/// differential suite compare them exactly.
struct FilterCounters {
  std::uint64_t invocations = 0;
  std::uint64_t rows = 0;
  std::uint64_t survivors = 0;

  void Reset() { *this = FilterCounters{}; }
  bool operator==(const FilterCounters&) const = default;
};

/// Reusable filter-stage scratch (owned by HomScratch): the stage-1
/// survivor buffer and the hoisted per-column needle spans of the source
/// row. Sized on first use, only grows.
struct FilterScratch {
  FilterCounters counters;
  std::vector<std::int32_t> stage1;
  std::vector<const std::uint64_t*> needle_begin;
  std::vector<const std::uint64_t*> needle_end;
};

/// One filter call: source row `source_row` of `from` against the target
/// rows of `group` (a tag group of `to`). `exclude_target_row` (>= 0)
/// removes one target row — the reduction probe's leave-one-out mode.
struct FilterJob {
  const SoaTemplate* from = nullptr;
  const SoaTemplate* to = nullptr;
  std::int32_t source_row = 0;
  const SoaRowGroup* group = nullptr;
  bool fix_distinguished = false;
  std::int32_t exclude_target_row = -1;
};

namespace internal {

/// The scalar oracle: the original per-candidate loop, unchanged in
/// shape. Always compiled.
void FilterSourceRowScalar(const FilterJob& job, FilterScratch& fs,
                           std::vector<std::int32_t>& out);

/// 128-bit generic-vector backend (hom_filter.cc) and 256-bit AVX2
/// backend (hom_filter_avx2.cc, only built on x86-64 with -mavx2
/// support). Declared unconditionally; the dispatcher only references
/// the ones the build compiled.
void FilterSourceRow128(const FilterJob& job, FilterScratch& fs,
                        std::vector<std::int32_t>& out);
void FilterSourceRow256(const FilterJob& job, FilterScratch& fs,
                        std::vector<std::int32_t>& out);

}  // namespace internal

/// Runs the filter on the requested backend, clamping down to the
/// widest compiled-and-CPU-supported one (so a stale `backend` value is
/// safe, never wrong). Appends survivors to `out` in ascending target
/// row order and accumulates into `fs.counters`.
void FilterSourceRow(SimdBackend backend, const FilterJob& job,
                     FilterScratch& fs, std::vector<std::int32_t>& out);

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_HOM_FILTER_H_
