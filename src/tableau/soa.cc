#include "tableau/soa.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace viewcap {

namespace {

/// Dense id of `s` in the partitioned symbol table: [0, nd) holds the
/// distinguished symbols, [nd, n) the nondistinguished ones, each half in
/// sorted Symbol order (a stable partition of a sorted range keeps both
/// halves sorted), so one binary search in the right half resolves any
/// symbol.
DenseSymbolId LookupDense(const std::vector<Symbol>& table,
                          std::int32_t num_distinguished, const Symbol& s) {
  const auto begin =
      table.begin() + (s.IsDistinguished() ? 0 : num_distinguished);
  const auto end =
      s.IsDistinguished() ? table.begin() + num_distinguished : table.end();
  const auto it = std::lower_bound(begin, end, s);
  VIEWCAP_CHECK(it != end && !(s < *it));
  return static_cast<DenseSymbolId>(it - table.begin());
}

}  // namespace

SoaTemplate SoaTemplate::Lower(const Tableau& t) {
  SoaTemplate out;
  out.num_rows_ = static_cast<std::int32_t>(t.size());
  out.width_ = static_cast<std::int32_t>(t.universe().size());
  out.dist_words_ = (out.width_ + 63) / 64;

  // Dense renumbering: distinguished symbols take [0, nd) in sorted
  // Symbol order, nondistinguished the rest. Symbols() is already the
  // sorted distinct list, so one stable partition fixes the numbering.
  out.dense_to_symbol_ = t.Symbols();
  std::stable_partition(out.dense_to_symbol_.begin(),
                        out.dense_to_symbol_.end(),
                        [](const Symbol& s) { return s.IsDistinguished(); });
  out.num_distinguished_ = 0;
  for (const Symbol& s : out.dense_to_symbol_) {
    if (s.IsDistinguished()) ++out.num_distinguished_;
  }
  const std::size_t num_symbols = out.dense_to_symbol_.size();

  // Column k of every row is attribute k of the (sorted) universe, so the
  // column's distinguished symbol is a single dense id per column.
  out.col_distinguished_.assign(static_cast<std::size_t>(out.width_),
                                kNoDenseSymbol);
  {
    const auto dist_end =
        out.dense_to_symbol_.begin() + out.num_distinguished_;
    std::int32_t k = 0;
    for (AttrId a : t.universe()) {
      const Symbol s = Symbol::Distinguished(a);
      const auto it =
          std::lower_bound(out.dense_to_symbol_.begin(), dist_end, s);
      if (it != dist_end && !(s < *it)) {
        out.col_distinguished_[k] =
            static_cast<DenseSymbolId>(it - out.dense_to_symbol_.begin());
      }
      ++k;
    }
  }

  const std::size_t num_cells =
      static_cast<std::size_t>(out.num_rows_) * out.width_;
  out.cells_.reserve(num_cells);
  out.row_rels_.reserve(t.size());
  out.dist_masks_.assign(
      static_cast<std::size_t>(out.num_rows_) * out.dist_words_, 0);
  for (std::int32_t i = 0; i < out.num_rows_; ++i) {
    const TaggedTuple& row = t.rows()[static_cast<std::size_t>(i)];
    out.row_rels_.push_back(row.rel);
    for (std::int32_t k = 0; k < out.width_; ++k) {
      const Symbol& s = row.tuple.ValueAt(static_cast<std::size_t>(k));
      out.cells_.push_back(
          LookupDense(out.dense_to_symbol_, out.num_distinguished_, s));
      if (s.IsDistinguished()) {
        out.dist_masks_[static_cast<std::size_t>(i) * out.dist_words_ +
                        k / 64] |= std::uint64_t{1} << (k % 64);
      }
    }
  }

  // Signatures in one flat arena: count occurrences per symbol, prefix-
  // sum into run offsets, fill, then sort + dedup each run in place
  // (compaction copies forward, so runs only ever move left).
  out.sig_begin_.assign(num_symbols + 1, 0);
  for (const DenseSymbolId id : out.cells_) {
    ++out.sig_begin_[static_cast<std::size_t>(id) + 1];
  }
  std::partial_sum(out.sig_begin_.begin(), out.sig_begin_.end(),
                   out.sig_begin_.begin());
  out.sig_pool_.resize(num_cells);
  {
    std::vector<std::int32_t> cursor(out.sig_begin_.begin(),
                                     out.sig_begin_.end() - 1);
    std::size_t cell = 0;
    for (std::int32_t i = 0; i < out.num_rows_; ++i) {
      const std::uint64_t rel_base =
          static_cast<std::uint64_t>(out.row_rels_[i]) *
          static_cast<std::uint64_t>(out.width_);
      for (std::int32_t k = 0; k < out.width_; ++k, ++cell) {
        const DenseSymbolId id = out.cells_[cell];
        out.sig_pool_[cursor[static_cast<std::size_t>(id)]++] =
            rel_base + static_cast<std::uint64_t>(k);
      }
    }
  }
  {
    std::int32_t write = 0;
    for (std::size_t id = 0; id < num_symbols; ++id) {
      const std::int32_t begin = out.sig_begin_[id];
      const std::int32_t end = out.sig_begin_[id + 1];
      std::sort(out.sig_pool_.begin() + begin, out.sig_pool_.begin() + end);
      out.sig_begin_[id] = write;
      for (std::int32_t r = begin; r < end; ++r) {
        if (r > begin && out.sig_pool_[r] == out.sig_pool_[r - 1]) continue;
        out.sig_pool_[write++] = out.sig_pool_[r];
      }
    }
    out.sig_begin_[num_symbols] = write;
    out.sig_pool_.resize(static_cast<std::size_t>(write));
  }

  // Per-cell signature lengths for the filter's vector length prefilter;
  // must come after dedup so lengths reflect the final runs.
  out.sig_len_cells_.resize(num_cells);
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    out.sig_len_cells_[cell] = out.sig_len(out.cells_[cell]);
  }

  // Rows of a Tableau are sorted by (rel, tuple), so each tag's rows are
  // already one contiguous range: grouping records range bounds without
  // reordering anything.
  for (std::int32_t i = 0; i < out.num_rows_; ++i) {
    if (out.groups_.empty() || out.groups_.back().rel != out.row_rels_[i]) {
      VIEWCAP_CHECK(out.groups_.empty() ||
                    out.groups_.back().rel < out.row_rels_[i]);
      out.groups_.push_back(SoaRowGroup{out.row_rels_[i], i, i + 1});
    } else {
      out.groups_.back().end = i + 1;
    }
  }
  return out;
}

const SoaRowGroup* SoaTemplate::GroupFor(RelId rel) const {
  auto it = std::lower_bound(
      groups_.begin(), groups_.end(), rel,
      [](const SoaRowGroup& g, RelId r) { return g.rel < r; });
  if (it == groups_.end() || it->rel != rel) return nullptr;
  return &*it;
}

bool SignatureSubset(const std::vector<std::uint64_t>& needle,
                     const std::vector<std::uint64_t>& haystack) {
  return std::includes(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end());
}

}  // namespace viewcap
