#include "tableau/build.h"

#include "base/check.h"
#include "base/strings.h"

namespace viewcap {

namespace {

// Recursive worker producing raw rows; validation happens once at the top.
Status BuildRows(const Catalog& catalog, const AttrSet& universe,
                 const Expr& expr, SymbolPool& pool,
                 std::vector<TaggedTuple>& out) {
  switch (expr.kind()) {
    case Expr::Kind::kRelName: {
      // Step (i): a single tagged tuple with 0_A exactly at A in R(eta).
      const AttrSet& type = catalog.RelationScheme(expr.rel());
      if (!type.SubsetOf(universe)) {
        return Status::IllFormed(
            StrCat("type of '", catalog.RelationName(expr.rel()),
                   "' is not contained in the universe"));
      }
      std::vector<Symbol> values;
      values.reserve(universe.size());
      for (AttrId a : universe) {
        values.push_back(type.Contains(a) ? Symbol::Distinguished(a)
                                          : pool.Fresh(a));
      }
      out.push_back(TaggedTuple{expr.rel(), Tuple(universe, values)});
      return Status::OK();
    }
    case Expr::Kind::kProject: {
      // Step (ii): build the child, then replace 0_A by one fresh
      // nondistinguished symbol per attribute A outside the projection.
      std::vector<TaggedTuple> child;
      VIEWCAP_RETURN_NOT_OK(
          BuildRows(catalog, universe, *expr.children()[0], pool, child));
      SymbolMap rename;
      for (AttrId a : expr.children()[0]->trs().Difference(expr.projection())) {
        rename[Symbol::Distinguished(a)] = pool.Fresh(a);
      }
      for (TaggedTuple& row : child) {
        out.push_back(TaggedTuple{row.rel, row.tuple.Apply(rename)});
      }
      return Status::OK();
    }
    case Expr::Kind::kJoin: {
      // Step (iii): children built from one pool have pairwise-disjoint
      // nondistinguished symbols by construction; union the rows.
      for (const ExprPtr& c : expr.children()) {
        VIEWCAP_RETURN_NOT_OK(BuildRows(catalog, universe, *c, pool, out));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable expression kind");
}

}  // namespace

Result<Tableau> BuildTableau(const Catalog& catalog, const AttrSet& universe,
                             const Expr& expr, SymbolPool& pool) {
  std::vector<TaggedTuple> rows;
  VIEWCAP_RETURN_NOT_OK(BuildRows(catalog, universe, expr, pool, rows));
  return Tableau::Create(catalog, universe, std::move(rows));
}

Result<Tableau> BuildTableau(const Catalog& catalog, const AttrSet& universe,
                             const Expr& expr) {
  SymbolPool pool;
  return BuildTableau(catalog, universe, expr, pool);
}

Tableau MustBuildTableau(const Catalog& catalog, const AttrSet& universe,
                         const Expr& expr) {
  Result<Tableau> r = BuildTableau(catalog, universe, expr);
  VIEWCAP_CHECK(r.ok());
  return std::move(r).value();
}

Result<Tableau> ProjectTableau(const Catalog& catalog, const Tableau& t,
                               const AttrSet& x, SymbolPool& pool) {
  AttrSet trs = t.Trs();
  if (x.empty() || !x.SubsetOf(trs)) {
    return Status::IllFormed(
        "projection list must be a nonempty subset of TRS(T)");
  }
  t.ReserveSymbols(pool);
  SymbolMap rename;
  for (AttrId a : trs.Difference(x)) {
    rename[Symbol::Distinguished(a)] = pool.Fresh(a);
  }
  Tableau projected = t.Apply(rename);
  VIEWCAP_RETURN_NOT_OK(projected.Validate(catalog));
  return projected;
}

Result<Tableau> JoinTableaux(const Catalog& catalog, const Tableau& t1,
                             const Tableau& t2, SymbolPool& pool) {
  if (t1.universe() != t2.universe()) {
    return Status::IllFormed("joined templates must share a universe");
  }
  t1.ReserveSymbols(pool);
  t2.ReserveSymbols(pool);
  // Relabel every nondistinguished symbol of t2 that also occurs in t1.
  SymbolMap rename;
  std::vector<Symbol> t1_symbols = t1.Symbols();
  for (const Symbol& s : t2.Symbols()) {
    if (s.IsDistinguished()) continue;
    if (std::binary_search(t1_symbols.begin(), t1_symbols.end(), s)) {
      rename[s] = pool.Fresh(s.attr);
    }
  }
  Tableau relabelled = t2.Apply(rename);
  std::vector<TaggedTuple> rows = t1.rows();
  rows.insert(rows.end(), relabelled.rows().begin(), relabelled.rows().end());
  return Tableau::Create(catalog, t1.universe(), std::move(rows));
}

}  // namespace viewcap
