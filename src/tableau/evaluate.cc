#include "tableau/evaluate.h"

#include <algorithm>
#include <functional>

#include "base/check.h"

namespace viewcap {

namespace {

// Shared backtracking driver: calls `on_solution` once per complete
// row-assignment with the current binding in scope; `on_solution` returns
// false to stop the search.
class EmbeddingSearch {
 public:
  EmbeddingSearch(const Tableau& t, const Instantiation& alpha)
      : tableau_(t), alpha_(alpha), catalog_(alpha.catalog()) {
    // Visit rows with the smallest relations first: fewer candidates near
    // the root of the search tree.
    order_.resize(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) order_[i] = i;
    std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      return alpha.Get(t.rows()[a].rel).size() <
             alpha.Get(t.rows()[b].rel).size();
    });
  }

  void Run(const std::function<bool(const SymbolMap&)>& on_solution) {
    on_solution_ = &on_solution;
    stopped_ = false;
    binding_.clear();
    Recurse(0);
  }

 private:
  bool Recurse(std::size_t depth) {
    if (stopped_) return false;
    if (depth == order_.size()) {
      if (!(*on_solution_)(binding_)) stopped_ = true;
      return !stopped_;
    }
    const TaggedTuple& row = tableau_.rows()[order_[depth]];
    const AttrSet& type = catalog_.RelationScheme(row.rel);
    const Relation& rel = alpha_.Get(row.rel);
    for (const Tuple& candidate : rel) {
      std::vector<Symbol> bound;  // Trail for undo.
      bool ok = true;
      for (AttrId a : type) {
        const Symbol& var = row.tuple.At(a);
        const Symbol& value = candidate.At(a);
        auto it = binding_.find(var);
        if (it != binding_.end()) {
          if (it->second != value) {
            ok = false;
            break;
          }
        } else {
          binding_.emplace(var, value);
          bound.push_back(var);
        }
      }
      if (ok) Recurse(depth + 1);
      for (const Symbol& var : bound) binding_.erase(var);
      if (stopped_) return false;
    }
    return !stopped_;
  }

  const Tableau& tableau_;
  const Instantiation& alpha_;
  const Catalog& catalog_;
  std::vector<std::size_t> order_;
  SymbolMap binding_;
  const std::function<bool(const SymbolMap&)>* on_solution_ = nullptr;
  bool stopped_ = false;
};

}  // namespace

Relation EvaluateTableau(const Tableau& t, const Instantiation& alpha) {
  const AttrSet trs = t.Trs();
  Relation out(trs);
  EmbeddingSearch search(t, alpha);
  search.Run([&](const SymbolMap& binding) {
    std::vector<Symbol> values;
    values.reserve(trs.size());
    for (AttrId a : trs) {
      auto it = binding.find(Symbol::Distinguished(a));
      // Every A in TRS(T) has 0_A at a constrained position of some row
      // (condition (i)), so it is always bound here.
      VIEWCAP_DCHECK(it != binding.end());
      values.push_back(it->second);
    }
    out.Insert(Tuple(trs, std::move(values)));
    return true;
  });
  return out;
}

std::size_t CountEmbeddings(const Tableau& t, const Instantiation& alpha) {
  std::size_t count = 0;
  EmbeddingSearch search(t, alpha);
  search.Run([&](const SymbolMap&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace viewcap
