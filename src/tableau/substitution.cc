#include "tableau/substitution.h"

#include "base/check.h"
#include "base/strings.h"
#include "tableau/evaluate.h"

namespace viewcap {

Result<SubstitutionOutcome> Substitute(const Catalog& catalog,
                                       const Tableau& t,
                                       const TemplateAssignment& beta,
                                       SymbolPool& pool) {
  // Guard against mark collisions with any symbol already in play.
  t.ReserveSymbols(pool);
  for (const auto& [rel, assigned] : beta) assigned.ReserveSymbols(pool);

  for (RelId rel : t.RelNames()) {
    auto it = beta.find(rel);
    if (it == beta.end()) {
      return Status::NotFound(StrCat("no template assigned to '",
                                     catalog.RelationName(rel), "'"));
    }
    if (it->second.universe() != t.universe()) {
      return Status::IllFormed(
          StrCat("template assigned to '", catalog.RelationName(rel),
                 "' is over a different universe"));
    }
    if (it->second.Trs() != catalog.RelationScheme(rel)) {
      return Status::IllFormed(
          StrCat("TRS of the template assigned to '",
                 catalog.RelationName(rel), "' differs from R(",
                 catalog.RelationName(rel), ")"));
    }
  }

  SubstitutionOutcome outcome;
  std::vector<TaggedTuple> all_rows;
  outcome.blocks.reserve(t.size());
  for (const TaggedTuple& tau : t.rows()) {
    const Tableau& assigned = beta.at(tau.rel);
    // The tau symbol-replacement function p_tau: distinguished symbols 0_A
    // become t(A); every nondistinguished symbol gets a fresh mark unique
    // to (tau, symbol).
    SymbolMap replacement;
    for (AttrId a : t.universe()) {
      replacement[Symbol::Distinguished(a)] = tau.tuple.At(a);
    }
    for (const Symbol& s : assigned.Symbols()) {
      if (!s.IsDistinguished()) replacement[s] = pool.Fresh(s.attr);
    }
    std::vector<TaggedTuple> block;
    block.reserve(assigned.size());
    for (const TaggedTuple& sigma : assigned.rows()) {
      block.push_back(TaggedTuple{sigma.rel, sigma.tuple.Apply(replacement)});
    }
    all_rows.insert(all_rows.end(), block.begin(), block.end());
    outcome.blocks.push_back(std::move(block));
  }
  VIEWCAP_ASSIGN_OR_RETURN(
      outcome.result, Tableau::Create(catalog, t.universe(), all_rows));
  return outcome;
}

Result<Tableau> SubstituteTableau(const Catalog& catalog, const Tableau& t,
                                  const TemplateAssignment& beta,
                                  SymbolPool& pool) {
  VIEWCAP_ASSIGN_OR_RETURN(SubstitutionOutcome outcome,
                           Substitute(catalog, t, beta, pool));
  return std::move(outcome.result);
}

Instantiation ApplyAssignment(const TemplateAssignment& beta,
                              const Instantiation& alpha) {
  Instantiation out = alpha;
  for (const auto& [rel, assigned] : beta) {
    Status st = out.Set(rel, EvaluateTableau(assigned, alpha));
    VIEWCAP_CHECK(st.ok());
  }
  return out;
}

}  // namespace viewcap
