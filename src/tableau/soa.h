// Flat structure-of-arrays template encoding (DESIGN.md, "Flat template
// encoding").
//
// The Section 2.4 kernels spend their time walking TaggedTuple/Symbol
// structures: every candidate probe chases a Tuple's vector, hashes a
// 64-bit Symbol into an unordered_map and allocates an undo trail. The
// SoaTemplate lowers a Tableau once into contiguous dense-id arrays so the
// homomorphism kernel (tableau/hom_kernel.h) runs over plain int32_t
// loads, flat-array bindings and precomputed masks instead. The layout is
// deliberately branch-lean and stride-regular: rows are fixed-stride
// symbol-id spans grouped by relation tag, so a SIMD or GPU backend can
// later evaluate candidate waves behind the same interface.
//
// The encoding is lossless and order-preserving: SoA row i is Tableau row
// i (rows of a Tableau are already sorted by (rel, tuple), so grouping by
// tag never reorders them), and dense symbol ids decode back to the exact
// Symbol values. That is what keeps kernel verdicts and witnesses
// bit-identical to the legacy pointer-walking search.
#ifndef VIEWCAP_TABLEAU_SOA_H_
#define VIEWCAP_TABLEAU_SOA_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tableau/tableau.h"

namespace viewcap {

/// Dense symbol id local to one SoaTemplate: symbols of the template
/// renumbered into [0, num_symbols), distinguished symbols first (their
/// ids are [0, num_distinguished)) in sorted Symbol order, then
/// nondistinguished symbols in sorted order. -1 marks "no symbol" slots.
using DenseSymbolId = std::int32_t;

inline constexpr DenseSymbolId kNoDenseSymbol = -1;

/// One relation-tag group of rows: templates keep rows sorted by
/// (rel, tuple), so each tag's rows form one contiguous row range.
struct SoaRowGroup {
  RelId rel = kInvalidRel;
  std::int32_t begin = 0;  ///< First row index of the group.
  std::int32_t end = 0;    ///< One past the last row index.
};

/// A Tableau lowered to flat arrays. Plain data, freely copyable; built
/// once per template (the engine caches one per interned class) and read
/// concurrently by any number of kernel searches.
class SoaTemplate {
 public:
  SoaTemplate() = default;

  /// Lowers `t`. Row i of the encoding is row i of `t`.
  static SoaTemplate Lower(const Tableau& t);

  std::int32_t num_rows() const { return num_rows_; }
  /// Universe width: symbols per row (rows are tuples over the full
  /// universe, so every row has the same stride).
  std::int32_t width() const { return width_; }
  std::int32_t num_symbols() const {
    return static_cast<std::int32_t>(dense_to_symbol_.size());
  }
  std::int32_t num_distinguished() const { return num_distinguished_; }

  bool IsDistinguished(DenseSymbolId id) const {
    return id < num_distinguished_;
  }

  /// Row-major cell array: row i occupies [i * width, (i + 1) * width).
  const DenseSymbolId* row(std::int32_t i) const {
    return cells_.data() + static_cast<std::size_t>(i) * width_;
  }
  const std::vector<DenseSymbolId>& cells() const { return cells_; }

  RelId row_rel(std::int32_t i) const { return row_rels_[i]; }

  /// Tag groups in ascending RelId order (row order is untouched).
  const std::vector<SoaRowGroup>& groups() const { return groups_; }

  /// The group covering relation `rel`, or nullptr when no row has that
  /// tag (binary search over the sorted groups).
  const SoaRowGroup* GroupFor(RelId rel) const;

  /// Per-row bitset of columns holding a distinguished symbol, packed 64
  /// columns per word with `dist_words()` words per row.
  const std::uint64_t* dist_mask(std::int32_t i) const {
    return dist_masks_.data() + static_cast<std::size_t>(i) * dist_words_;
  }
  std::int32_t dist_words() const { return dist_words_; }

  /// Dense id of the distinguished symbol 0_{A_k} of column k, or
  /// kNoDenseSymbol when that symbol occurs in no row.
  DenseSymbolId col_distinguished(std::int32_t k) const {
    return col_distinguished_[k];
  }

  /// View into the shared signature pool: one contiguous sorted-unique
  /// run per symbol.
  struct SigSpan {
    const std::uint64_t* begin;
    const std::uint64_t* end;
  };

  /// Occurrence signature of a dense symbol: the sorted, deduplicated
  /// list of (rel, column) contexts the symbol appears in, packed as
  /// rel * width + column. Signatures drive the unification prune: a
  /// valuation maps every row onto a same-tagged row, so f(s) must occur
  /// in every context s occurs in (the target's signature must contain
  /// the source's).
  SigSpan signature(DenseSymbolId id) const {
    const std::size_t i = static_cast<std::size_t>(id);
    return {sig_pool_.data() + sig_begin_[i],
            sig_pool_.data() + sig_begin_[i + 1]};
  }

  /// Signature length (context count) of a dense symbol — the size of
  /// signature(id), kept as its own array for the vectorized filter.
  std::int32_t sig_len(DenseSymbolId id) const {
    const std::size_t i = static_cast<std::size_t>(id);
    return sig_begin_[i + 1] - sig_begin_[i];
  }

  /// Per-cell signature lengths, row-major with the same stride as the
  /// cell array: sig_len_row(i)[k] == sig_len(row(i)[k]). Materialized so
  /// the filter's necessary-condition stage (|sig(source cell)| must not
  /// exceed |sig(target cell)| for the subset check to hold) is a
  /// contiguous int32 compare the SIMD backends evaluate 4/8 columns at a
  /// time.
  const std::int32_t* sig_len_row(std::int32_t i) const {
    return sig_len_cells_.data() + static_cast<std::size_t>(i) * width_;
  }

  /// Decodes a dense id back to the original Symbol.
  const Symbol& symbol(DenseSymbolId id) const {
    return dense_to_symbol_[static_cast<std::size_t>(id)];
  }

 private:
  std::int32_t num_rows_ = 0;
  std::int32_t width_ = 0;
  std::int32_t num_distinguished_ = 0;
  std::int32_t dist_words_ = 0;
  std::vector<DenseSymbolId> cells_;       // num_rows * width, row-major.
  std::vector<RelId> row_rels_;            // num_rows.
  std::vector<SoaRowGroup> groups_;        // Ascending RelId.
  std::vector<std::uint64_t> dist_masks_;  // num_rows * dist_words.
  std::vector<DenseSymbolId> col_distinguished_;  // width.
  std::vector<Symbol> dense_to_symbol_;           // num_symbols.
  // Signature arena: symbol id's contexts occupy
  // sig_pool_[sig_begin_[id], sig_begin_[id + 1]), sorted unique. One
  // flat pool instead of per-symbol vectors keeps Lower allocation-lean.
  std::vector<std::uint64_t> sig_pool_;
  std::vector<std::int32_t> sig_begin_;     // num_symbols + 1.
  std::vector<std::int32_t> sig_len_cells_;  // num_rows * width, row-major.
};

/// True when the signature `needle` is contained in `haystack` (both
/// sorted unique). The kernel's candidate prune; the vector overload
/// serves the legacy oracle's map-built signatures.
bool SignatureSubset(const std::vector<std::uint64_t>& needle,
                     const std::vector<std::uint64_t>& haystack);

inline bool SignatureSubset(SoaTemplate::SigSpan needle,
                            SoaTemplate::SigSpan haystack) {
  return std::includes(haystack.begin, haystack.end, needle.begin,
                       needle.end);
}

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_SOA_H_
