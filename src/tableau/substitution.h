// Template substitution T -> beta (Section 2.2), the paper's key tool.
#ifndef VIEWCAP_TABLEAU_SUBSTITUTION_H_
#define VIEWCAP_TABLEAU_SUBSTITUTION_H_

#include <unordered_map>

#include "relation/instantiation.h"
#include "tableau/tableau.h"

namespace viewcap {

/// A template(-over-U) assignment beta restricted to the finitely many
/// names that matter: beta(eta) must be defined for every eta in RN(T) and
/// satisfy TRS(beta(eta)) = R(eta).
using TemplateAssignment = std::unordered_map<RelId, Tableau>;

/// The outcome of a substitution, with enough provenance to identify
/// blocks: block(i) is the set of result rows forming <tau_i, beta(eta_i)>
/// for source row tau_i (the "T-blocks" of Section 3.2 when
/// beta(eta_i) = T).
struct SubstitutionOutcome {
  Tableau result;
  /// blocks[i][j]: the image under the tau_i symbol-replacement function of
  /// the j-th row of beta(eta_i). Note the result's rows are the sorted
  /// dedup of all block rows; use Tableau::ContainsRow / row equality to
  /// relate them.
  std::vector<std::vector<TaggedTuple>> blocks;
};

/// Computes T -> beta: for each tagged tuple tau = (t, eta) of `t`, a copy
/// of beta(eta) in which distinguished symbols 0_A are replaced by t(A) and
/// nondistinguished symbols are replaced by fresh symbols "marked by tau"
/// (minted from `pool`, unique per (tau, symbol) pair). The union of these
/// copies is the substitution (Definition, Section 2.2); by Theorem 2.2.3
/// its mapping satisfies [T -> beta](alpha) = T(beta -> alpha).
///
/// Fails with NotFound when some name of RN(T) has no assignment and with
/// IllFormed when an assigned template has the wrong TRS or universe.
Result<SubstitutionOutcome> Substitute(const Catalog& catalog,
                                       const Tableau& t,
                                       const TemplateAssignment& beta,
                                       SymbolPool& pool);

/// Convenience returning just the template.
Result<Tableau> SubstituteTableau(const Catalog& catalog, const Tableau& t,
                                  const TemplateAssignment& beta,
                                  SymbolPool& pool);

/// beta -> alpha (Section 2.2): the instantiation mapping eta to
/// beta(eta)(alpha) for assigned names and to alpha(eta) otherwise.
Instantiation ApplyAssignment(const TemplateAssignment& beta,
                              const Instantiation& alpha);

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_SUBSTITUTION_H_
