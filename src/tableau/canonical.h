// Canonical keys for templates: deduplication up to renaming of
// nondistinguished symbols.
#ifndef VIEWCAP_TABLEAU_CANONICAL_H_
#define VIEWCAP_TABLEAU_CANONICAL_H_

#include <string>

#include "tableau/tableau.h"

namespace viewcap {

/// Row-count threshold for the exact canonical form; beyond it an
/// invariant-based signature is used instead (see CanonicalKey). Kept low:
/// the exact form scans every row permutation (n! of them) and the closure
/// search computes keys on hot paths.
inline constexpr std::size_t kMaxRowsForExactCanonicalKey = 5;

/// Returns a string key such that two templates over the same universe that
/// are identical up to a renaming of nondistinguished symbols get the same
/// key. For templates with at most kMaxRowsForExactCanonicalKey rows the key
/// is exact (equal keys iff isomorphic as symbol structures): the
/// lexicographically least rendering over all row orders, with
/// nondistinguished symbols renamed in first-occurrence order. Larger
/// templates get a sound invariant signature (isomorphic templates always
/// collide; non-isomorphic ones may too), so callers must confirm key hits
/// with EquivalentTableaux.
std::string CanonicalKey(const Tableau& t);

/// Returns an isomorphic copy of `t`: every nondistinguished symbol is
/// renamed by an injective, attribute-preserving map chosen from `seed`
/// (reversed per-attribute order, ordinals offset by the seed), so distinct
/// seeds give distinct labelings of the same symbol structure. By the key's
/// renaming-invariance contract, CanonicalKey(RenameNondistinguished(t, s))
/// == CanonicalKey(t) for every seed — on both the exact and the signature
/// path.
Tableau RenameNondistinguished(const Tableau& t, std::uint32_t seed = 0);

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_CANONICAL_H_
