// 256-bit instantiation of the candidate filter. This translation unit
// is the only one compiled with -mavx2 (CMake adds the flag and the
// VIEWCAP_SIMD_HAVE_AVX2 define when the toolchain supports it on
// x86-64), so AVX2 instructions never leak into code that runs on
// non-AVX2 CPUs — the dispatcher in hom_filter.cc only calls in here
// after the runtime __builtin_cpu_supports("avx2") probe passes.
#include "base/simd.h"

#if defined(VIEWCAP_SIMD_HAVE_AVX2) && VIEWCAP_SIMD_VECTOR_EXT

#include <cstring>

#include "tableau/hom_filter.h"
#include "tableau/hom_filter_impl.h"

namespace viewcap {
namespace internal {
namespace {

// 256-bit lanes: 4 x u64 for the mask stage, 8 x i32 for the length
// stage. Same generic-vector source as the 128-bit backend; the wider
// vector_size plus -mavx2 is the entire difference.
struct Lanes256Traits {
  static constexpr std::int32_t kU64Lanes = 4;
  static constexpr std::int32_t kI32Lanes = 8;
  typedef std::uint64_t U64V __attribute__((vector_size(32)));
  typedef std::int64_t S64V __attribute__((vector_size(32)));
  typedef std::int32_t I32V __attribute__((vector_size(32)));

  static U64V LoadU64(const std::uint64_t* p) {
    U64V v;
    std::memcpy(&v, p, sizeof v);
    return v;
  }
  static I32V LoadI32(const std::int32_t* p) {
    I32V v;
    std::memcpy(&v, p, sizeof v);
    return v;
  }
  static U64V BroadcastU64(std::uint64_t x) { return U64V{x, x, x, x}; }
};

}  // namespace

void FilterSourceRow256(const FilterJob& job, FilterScratch& fs,
                        std::vector<std::int32_t>& out) {
  FilterSourceRowVec<Lanes256Traits>(job, fs, out);
}

}  // namespace internal
}  // namespace viewcap

#endif  // VIEWCAP_SIMD_HAVE_AVX2 && VIEWCAP_SIMD_VECTOR_EXT
