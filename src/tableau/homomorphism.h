// Template homomorphisms (Section 2.4): the containment and equivalence
// tests of Propositions 2.4.1-2.4.3.
//
// The primary entry points run on the flat SoA kernel
// (tableau/hom_kernel.h); the original pointer-walking search is kept in
// namespace legacy as the differential oracle (tests/hom_kernel_test.cc
// asserts verdicts and witnesses are bit-identical).
#ifndef VIEWCAP_TABLEAU_HOMOMORPHISM_H_
#define VIEWCAP_TABLEAU_HOMOMORPHISM_H_

#include <optional>

#include "tableau/tableau.h"

namespace viewcap {

/// Searches for a homomorphism from `from` to `to`: a valuation f with
/// f(0_A) = 0_A for every attribute and f(tau) a tagged tuple of `to` for
/// every tagged tuple tau of `from`. By Proposition 2.4.1 such an f exists
/// iff to(alpha) is contained in from(alpha) for every instantiation.
///
/// The returned map is defined on every symbol occurring in `from`
/// (identity elsewhere); distinguished symbols are included, mapped to
/// themselves.
std::optional<SymbolMap> FindHomomorphism(const Catalog& catalog,
                                          const Tableau& from,
                                          const Tableau& to);

/// True when a homomorphism `from` -> `to` exists.
bool HasHomomorphism(const Catalog& catalog, const Tableau& from,
                     const Tableau& to);

/// Corollary 2.4.2 / Proposition 2.4.3: templates realize the same mapping
/// iff homomorphisms exist in both directions. Decidable, and decided here.
bool EquivalentTableaux(const Catalog& catalog, const Tableau& a,
                        const Tableau& b);

/// Searches for an isomorphism of templates (Section 2.4's definition): a
/// bijective valuation that is a homomorphism in both directions. Decided
/// by searching for an injective, nondistinguished-preserving homomorphism
/// between same-size templates with equally many symbols — its inverse is
/// then automatically a homomorphism. Reduced equivalent templates are
/// always isomorphic (the core is unique), which the uniqueness results of
/// Section 4.2 lean on.
std::optional<SymbolMap> FindIsomorphism(const Catalog& catalog,
                                         const Tableau& a, const Tableau& b);

/// A row embedding is a weakening of homomorphism: a consistent symbol map
/// sending every row of `from` onto a same-tagged row of `to`, WITHOUT the
/// requirement that distinguished symbols stay fixed. If a template C
/// appears as a subexpression of an expression W whose template maps
/// homomorphically into Q, then C row-embeds into Q (the projections above
/// C inside W rename distinguished symbols, so the restriction of the
/// homomorphism is exactly such an embedding). The capacity search uses
/// this as a completeness-preserving prune.
bool HasRowEmbedding(const Catalog& catalog, const Tableau& from,
                     const Tableau& to);

/// For each row index of `from`, the index in `to` of the row it maps to
/// under homomorphism `hom`. CHECK-fails if `hom` is not a homomorphism
/// from `from` to `to` (used to trace T-blocks in Section 3).
std::vector<std::size_t> RowImage(const Catalog& catalog, const Tableau& from,
                                  const Tableau& to, const SymbolMap& hom);

namespace legacy {

/// The original pointer-walking HomSearch entry points, kept as the
/// differential oracle for the SoA kernel. Same contracts as the
/// same-named functions above; with `unification_prune` false the
/// occurrence-signature candidate prune is disabled, giving a
/// prune-free ground truth for verdict soundness tests (the witness may
/// then differ — pruning shrinks candidate lists before ordering).
std::optional<SymbolMap> FindHomomorphism(const Catalog& catalog,
                                          const Tableau& from,
                                          const Tableau& to,
                                          bool unification_prune = true);
bool HasHomomorphism(const Catalog& catalog, const Tableau& from,
                     const Tableau& to, bool unification_prune = true);
bool EquivalentTableaux(const Catalog& catalog, const Tableau& a,
                        const Tableau& b);
std::optional<SymbolMap> FindIsomorphism(const Catalog& catalog,
                                         const Tableau& a, const Tableau& b);
bool HasRowEmbedding(const Catalog& catalog, const Tableau& from,
                     const Tableau& to, bool unification_prune = true);

}  // namespace legacy

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_HOMOMORPHISM_H_
