// Template evaluation: T(alpha) via alpha-embeddings (Section 2.1).
#ifndef VIEWCAP_TABLEAU_EVALUATE_H_
#define VIEWCAP_TABLEAU_EVALUATE_H_

#include "relation/instantiation.h"
#include "tableau/tableau.h"

namespace viewcap {

/// T(alpha) = { f(0_TRS(T)) | f an alpha-embedding of T }: the relation on
/// TRS(T) of images of the distinguished tuple under valuations f such that
/// (f(t))[R(eta)] is in alpha(eta) for every tagged tuple (t, eta).
///
/// Implemented as backtracking unification of each row against the tuples
/// of alpha(eta) — conjunctive-query evaluation where the template's
/// symbols are the variables. Symbols at attributes outside a row's type
/// are unconstrained by that row (condition (ii) makes them unconstrained
/// globally) and do not affect the result.
Relation EvaluateTableau(const Tableau& t, const Instantiation& alpha);

/// Counts alpha-embeddings restricted to the constrained symbols (mostly
/// for diagnostics and benchmarks; distinct embeddings may yield the same
/// output tuple).
std::size_t CountEmbeddings(const Tableau& t, const Instantiation& alpha);

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_EVALUATE_H_
