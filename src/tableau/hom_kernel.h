// Dense homomorphism kernel over SoaTemplate (DESIGN.md, "Flat template
// encoding").
//
// Runs the Section 2.4 backtracking searches (homomorphism, row
// embedding, isomorphism) on the flat SoA form: bindings live in a flat
// int32_t vector indexed by dense symbol id, candidate sets are
// precomputed per-relation row ranges filtered by distinguished-position
// masks and occurrence-signature unification prunes, and undo trails
// reuse one scratch arena across searches. The search visits candidate
// rows in exactly the same deterministic most-constrained-first order as
// the legacy pointer-walking HomSearch (same candidate lists, same
// (count, row-index) ordering), so verdicts and decoded SymbolMap
// witnesses are bit-identical to the legacy path.
//
// The wave entry point evaluates a batch of source templates against one
// shared target, amortizing scratch reuse and the target-side structures
// across the batch — the bulk-submission interface the sharded
// enumerator and the redundancy leave-one-out scan feed.
#ifndef VIEWCAP_TABLEAU_HOM_KERNEL_H_
#define VIEWCAP_TABLEAU_HOM_KERNEL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/simd.h"
#include "tableau/hom_filter.h"
#include "tableau/soa.h"
#include "tableau/tableau.h"

namespace viewcap {

/// Which Section 2.4 search the kernel runs.
enum class HomMode {
  /// Proposition 2.4.1: valuation with f(0_A) = 0_A mapping every row
  /// onto a same-tagged target row.
  kHomomorphism,
  /// Row embedding: consistent symbol map onto same-tagged rows, with no
  /// constraint on distinguished symbols.
  kRowEmbedding,
  /// Isomorphism search: homomorphism that is injective and maps
  /// nondistinguished symbols to nondistinguished ones.
  kIsomorphism,
};

/// Reusable per-thread search state. All arrays are sized on first use
/// and only grow, so a scratch reused across a wave of searches does no
/// steady-state allocation. Default-constructed scratch is valid.
struct HomScratch {
  /// from-dense-id -> to-dense-id, kNoDenseSymbol when unbound.
  std::vector<DenseSymbolId> binding;
  /// Injective mode: to-dense-id -> taken flag.
  std::vector<char> used;
  /// Undo trail of from-dense ids bound so far, truncated on backtrack.
  std::vector<DenseSymbolId> trail;
  /// Candidate arena: target row indices for all source rows,
  /// concatenated; source row i owns [cand_begin[i], cand_begin[i+1]).
  std::vector<std::int32_t> candidates;
  std::vector<std::int32_t> cand_begin;
  /// Source rows in most-constrained-first (count, index) order.
  std::vector<std::int32_t> order;
  /// Candidate-filter backend the searches run on, plus the filter's
  /// scratch and counters. Every backend yields bit-identical candidate
  /// lists (hom_filter.h), so this choice never affects verdicts or
  /// witnesses — only throughput. The engine sets it from
  /// EngineOptions::simd and harvests `filter.counters` into
  /// per-backend stats after each search.
  SimdBackend backend = DefaultSimdBackend();
  FilterScratch filter;
  /// Wave arenas: the batched entry points (SoaSearchWave,
  /// SoaReduceSweep) pre-filter every candidate list of the batch into
  /// these before any backtracking runs, so the filter makes one
  /// vectorized pass over the shared target per wave.
  std::vector<std::int32_t> wave_candidates;
  std::vector<std::int32_t> wave_begin;
  std::vector<std::int32_t> wave_order;
};

/// Runs one search from `from` into `to`, which must be lowered from
/// templates over the same universe (equal width; callers check universe
/// equality first, as the legacy entry points do). Returns true when a
/// map exists; when `witness` is non-null it receives the final binding
/// as a from-dense-id -> to-dense-id vector (kNoDenseSymbol for symbols
/// the search never bound, i.e. distinguished ids in kHomomorphism /
/// kIsomorphism modes, which map to themselves).
bool SoaSearch(const SoaTemplate& from, const SoaTemplate& to, HomMode mode,
               HomScratch& scratch, std::vector<DenseSymbolId>* witness);

/// Reduction probe (tableau/reduce.cc): is there a homomorphism of `t`
/// into `t` minus row `drop`? Runs on one shared lowering of `t` — the
/// excluded row is removed from every candidate list instead of
/// re-lowering the (n-1)-row subset per probe. Verdict-equivalent to
/// SoaHasHomomorphism(t, t.SubsetRows(all but drop)).
bool SoaReduceProbe(const SoaTemplate& t, std::int32_t drop,
                    HomScratch& scratch);

/// The all-n-drops probe behind Reduce: returns the smallest `drop` such
/// that SoaReduceProbe(t, drop, scratch) holds, or -1 when no single row
/// is redundant. The candidate filter runs ONCE over the full template;
/// each drop's lists are then derived by deleting the dropped row from
/// the prefiltered lists (the filter predicate is drop-independent — the
/// exclusion only ever removes the dropped row itself), so n probes pay
/// for one filter pass instead of n. Searches are run in ascending drop
/// order with the exact per-drop candidate lists and ordering, keeping
/// the answer bit-identical to the probe-per-drop loop.
std::int32_t SoaReduceSweep(const SoaTemplate& t, HomScratch& scratch);

/// Evaluates a wave of source templates against one shared target,
/// reusing `scratch` across the batch. results[i] is the verdict for
/// froms[i] (null pointers yield false). Width-mismatched entries are
/// false, mirroring the universe check of the scalar entry points.
///
/// Phase 1 pre-filters every source's candidate lists into the wave
/// arenas in one vectorized pass over the shared target (amortizing the
/// target's masks, length rows and signature pool across the batch);
/// phase 2 runs the backtracking searches over the prepared lists, with
/// an any-empty-list early-out per source (an empty candidate list makes
/// the search trivially false). Verdicts are bit-identical to calling
/// SoaSearch per source.
std::vector<char> SoaSearchWave(const std::vector<const SoaTemplate*>& froms,
                                const SoaTemplate& to, HomMode mode,
                                HomScratch& scratch);

/// Runs only the candidate-filter stage of a search from `from` into
/// `to` on scratch.backend, leaving the lists in scratch.candidates /
/// scratch.cand_begin / scratch.order exactly as the search would see
/// them. Returns the total survivor count. Exposed for the differential
/// tests (survivor lists must be bit-identical across backends) and the
/// filter benchmarks.
std::int64_t SoaBuildCandidates(const SoaTemplate& from, const SoaTemplate& to,
                                HomMode mode, HomScratch& scratch);

/// Decodes a dense witness back into the legacy SymbolMap form: bound
/// pairs become symbol entries, then (matching HomSearch::Run) identity
/// entries are added for every distinguished symbol of `from` that is
/// not already bound.
SymbolMap DecodeWitness(const SoaTemplate& from, const SoaTemplate& to,
                        const std::vector<DenseSymbolId>& witness);

/// SoA-backed equivalents of the tableau/homomorphism.h entry points:
/// lower both sides, search, decode. Bit-identical verdicts and
/// witnesses to the legacy implementations (tests/hom_kernel_test.cc
/// asserts this differentially). The engine layer avoids the per-call
/// lowering by caching SoA forms per interned class and calling
/// SoaSearch directly.
std::optional<SymbolMap> SoaFindHomomorphism(const Tableau& from,
                                             const Tableau& to);
bool SoaHasHomomorphism(const Tableau& from, const Tableau& to);
bool SoaHasRowEmbedding(const Tableau& from, const Tableau& to);
std::optional<SymbolMap> SoaFindIsomorphism(const Tableau& a,
                                            const Tableau& b);

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_HOM_KERNEL_H_
