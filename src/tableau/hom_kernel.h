// Dense homomorphism kernel over SoaTemplate (DESIGN.md, "Flat template
// encoding").
//
// Runs the Section 2.4 backtracking searches (homomorphism, row
// embedding, isomorphism) on the flat SoA form: bindings live in a flat
// int32_t vector indexed by dense symbol id, candidate sets are
// precomputed per-relation row ranges filtered by distinguished-position
// masks and occurrence-signature unification prunes, and undo trails
// reuse one scratch arena across searches. The search visits candidate
// rows in exactly the same deterministic most-constrained-first order as
// the legacy pointer-walking HomSearch (same candidate lists, same
// (count, row-index) ordering), so verdicts and decoded SymbolMap
// witnesses are bit-identical to the legacy path.
//
// The wave entry point evaluates a batch of source templates against one
// shared target, amortizing scratch reuse and the target-side structures
// across the batch — the bulk-submission interface the sharded
// enumerator and the redundancy leave-one-out scan feed.
#ifndef VIEWCAP_TABLEAU_HOM_KERNEL_H_
#define VIEWCAP_TABLEAU_HOM_KERNEL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "tableau/soa.h"
#include "tableau/tableau.h"

namespace viewcap {

/// Which Section 2.4 search the kernel runs.
enum class HomMode {
  /// Proposition 2.4.1: valuation with f(0_A) = 0_A mapping every row
  /// onto a same-tagged target row.
  kHomomorphism,
  /// Row embedding: consistent symbol map onto same-tagged rows, with no
  /// constraint on distinguished symbols.
  kRowEmbedding,
  /// Isomorphism search: homomorphism that is injective and maps
  /// nondistinguished symbols to nondistinguished ones.
  kIsomorphism,
};

/// Reusable per-thread search state. All arrays are sized on first use
/// and only grow, so a scratch reused across a wave of searches does no
/// steady-state allocation. Default-constructed scratch is valid.
struct HomScratch {
  /// from-dense-id -> to-dense-id, kNoDenseSymbol when unbound.
  std::vector<DenseSymbolId> binding;
  /// Injective mode: to-dense-id -> taken flag.
  std::vector<char> used;
  /// Undo trail of from-dense ids bound so far, truncated on backtrack.
  std::vector<DenseSymbolId> trail;
  /// Candidate arena: target row indices for all source rows,
  /// concatenated; source row i owns [cand_begin[i], cand_begin[i+1]).
  std::vector<std::int32_t> candidates;
  std::vector<std::int32_t> cand_begin;
  /// Source rows in most-constrained-first (count, index) order.
  std::vector<std::int32_t> order;
};

/// Runs one search from `from` into `to`, which must be lowered from
/// templates over the same universe (equal width; callers check universe
/// equality first, as the legacy entry points do). Returns true when a
/// map exists; when `witness` is non-null it receives the final binding
/// as a from-dense-id -> to-dense-id vector (kNoDenseSymbol for symbols
/// the search never bound, i.e. distinguished ids in kHomomorphism /
/// kIsomorphism modes, which map to themselves).
bool SoaSearch(const SoaTemplate& from, const SoaTemplate& to, HomMode mode,
               HomScratch& scratch, std::vector<DenseSymbolId>* witness);

/// Reduction probe (tableau/reduce.cc): is there a homomorphism of `t`
/// into `t` minus row `drop`? Runs on one shared lowering of `t` — the
/// excluded row is removed from every candidate list instead of
/// re-lowering the (n-1)-row subset per probe. Verdict-equivalent to
/// SoaHasHomomorphism(t, t.SubsetRows(all but drop)).
bool SoaReduceProbe(const SoaTemplate& t, std::int32_t drop,
                    HomScratch& scratch);

/// Evaluates a wave of source templates against one shared target,
/// reusing `scratch` across the batch. results[i] is the verdict for
/// froms[i] (null pointers yield false). Width-mismatched entries are
/// false, mirroring the universe check of the scalar entry points.
std::vector<char> SoaSearchWave(const std::vector<const SoaTemplate*>& froms,
                                const SoaTemplate& to, HomMode mode,
                                HomScratch& scratch);

/// Decodes a dense witness back into the legacy SymbolMap form: bound
/// pairs become symbol entries, then (matching HomSearch::Run) identity
/// entries are added for every distinguished symbol of `from` that is
/// not already bound.
SymbolMap DecodeWitness(const SoaTemplate& from, const SoaTemplate& to,
                        const std::vector<DenseSymbolId>& witness);

/// SoA-backed equivalents of the tableau/homomorphism.h entry points:
/// lower both sides, search, decode. Bit-identical verdicts and
/// witnesses to the legacy implementations (tests/hom_kernel_test.cc
/// asserts this differentially). The engine layer avoids the per-call
/// lowering by caching SoA forms per interned class and calling
/// SoaSearch directly.
std::optional<SymbolMap> SoaFindHomomorphism(const Tableau& from,
                                             const Tableau& to);
bool SoaHasHomomorphism(const Tableau& from, const Tableau& to);
bool SoaHasRowEmbedding(const Tableau& from, const Tableau& to);
std::optional<SymbolMap> SoaFindIsomorphism(const Tableau& a,
                                            const Tableau& b);

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_HOM_KERNEL_H_
