// Multirelational templates ("tagged tableaux", Section 2.1).
#ifndef VIEWCAP_TABLEAU_TABLEAU_H_
#define VIEWCAP_TABLEAU_TABLEAU_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "relation/catalog.h"
#include "relation/tuple.h"

namespace viewcap {

/// A tagged tuple (t, eta): a tuple t over the universe U paired with a
/// relation name eta with R(eta) contained in U (Section 2.1).
struct TaggedTuple {
  RelId rel = kInvalidRel;
  Tuple tuple;  ///< Over the full universe U of the owning tableau.

  bool operator==(const TaggedTuple& other) const = default;
  bool operator<(const TaggedTuple& other) const {
    return rel != other.rel ? rel < other.rel : tuple < other.tuple;
  }
};

/// An m.r. template over U: a finite nonempty set of tagged tuples
/// satisfying the three well-formedness conditions of Section 2.1:
///  (i)  distinguished symbols of a row occur only at attributes of R(eta);
///  (ii) two distinct rows agree only at attributes in both rows' types;
///  (iii) some row carries some distinguished symbol (TRS nonempty).
///
/// Rows are kept sorted and unique (templates are sets).
class Tableau {
 public:
  Tableau() = default;

  /// Validating constructor; IllFormed when any Section 2.1 condition
  /// fails, any row's tuple is not over `universe`, or any tag's type is
  /// not contained in `universe`.
  static Result<Tableau> Create(const Catalog& catalog, AttrSet universe,
                                std::vector<TaggedTuple> rows);

  /// CHECK-failing convenience for code where ill-formedness is a bug.
  static Tableau MustCreate(const Catalog& catalog, AttrSet universe,
                            std::vector<TaggedTuple> rows);

  const AttrSet& universe() const { return universe_; }
  const std::vector<TaggedTuple>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }

  /// TRS(T) = {A in U | tau(A) = 0_A for some row tau} (Section 2.1).
  AttrSet Trs() const;

  /// RN(T): the sorted set of relation names tagging rows.
  std::vector<RelId> RelNames() const;

  /// True when `row` is one of this template's rows.
  bool ContainsRow(const TaggedTuple& row) const;

  /// The subtemplate keeping rows at `keep` indices. The result may violate
  /// condition (iii); callers needing a valid template must re-validate
  /// (Validate) — reduction only keeps subsets that stay equivalent, which
  /// implies validity.
  Tableau SubsetRows(const std::vector<std::size_t>& keep) const;

  /// Applies a valuation to every row (tags unchanged). The image of a
  /// template under an arbitrary valuation need not satisfy the template
  /// conditions; use Validate when the result must be a template.
  Tableau Apply(const SymbolMap& map) const;

  /// Re-checks the Section 2.1 conditions.
  Status Validate(const Catalog& catalog) const;

  /// Registers every nondistinguished ordinal present into `pool`, so
  /// freshly minted symbols cannot collide with this template's.
  void ReserveSymbols(SymbolPool& pool) const;

  /// Sorted list of all distinct symbols appearing in rows.
  std::vector<Symbol> Symbols() const;

  /// Grid rendering mirroring the paper's figures: one line per tagged
  /// tuple, annotated with its relation name and type.
  std::string ToString(const Catalog& catalog) const;

  bool operator==(const Tableau& other) const = default;

 private:
  Tableau(AttrSet universe, std::vector<TaggedTuple> rows);

  AttrSet universe_;
  std::vector<TaggedTuple> rows_;  // Sorted, unique.
};

/// Debug-build invariant validator for layer boundaries: aborts (with the
/// violated condition) when `t` is not a well-formed Section 2.1 template.
/// Compiled out in NDEBUG builds — wire it where a template crosses from
/// one subsystem to another (construction, reduction, substitution), not
/// on hot inner loops.
void ValidateTableau(const Catalog& catalog, const Tableau& t);

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_TABLEAU_H_
