#include "tableau/counterexample.h"

#include <algorithm>

#include "base/check.h"
#include "tableau/evaluate.h"

namespace viewcap {

Instantiation FreezeTableau(const Catalog& catalog, const Tableau& t) {
  Instantiation alpha(&catalog);
  std::unordered_map<RelId, Relation> relations;
  for (const TaggedTuple& row : t.rows()) {
    const AttrSet& type = catalog.RelationScheme(row.rel);
    auto [it, inserted] = relations.try_emplace(row.rel, Relation(type));
    it->second.Insert(row.tuple.Project(type));
  }
  for (auto& [rel, relation] : relations) {
    Status st = alpha.Set(rel, std::move(relation));
    VIEWCAP_CHECK(st.ok());
  }
  return alpha;
}

std::optional<Instantiation> FindDistinguishingInstance(
    const Catalog& catalog, const Tableau& a, const Tableau& b,
    const InstanceOptions& options, std::size_t random_trials, Random& rng) {
  auto differs = [&](const Instantiation& alpha) {
    return EvaluateTableau(a, alpha) != EvaluateTableau(b, alpha);
  };
  if (a.Trs() != b.Trs()) {
    // Different target schemes: any instance making either nonempty
    // distinguishes them; the frozen instances do.
    Instantiation frozen = FreezeTableau(catalog, a);
    return frozen;
  }
  {
    Instantiation frozen_a = FreezeTableau(catalog, a);
    if (differs(frozen_a)) return frozen_a;
    Instantiation frozen_b = FreezeTableau(catalog, b);
    if (differs(frozen_b)) return frozen_b;
  }
  std::vector<RelId> names = a.RelNames();
  std::vector<RelId> b_names = b.RelNames();
  names.insert(names.end(), b_names.begin(), b_names.end());
  DbSchema schema(catalog, std::move(names));
  InstanceGenerator generator(&catalog, options);
  for (std::size_t i = 0; i < random_trials; ++i) {
    Instantiation alpha = generator.Generate(schema, rng);
    if (differs(alpha)) return alpha;
  }
  return std::nullopt;
}

}  // namespace viewcap
