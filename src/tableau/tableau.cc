#include "tableau/tableau.h"

#include <algorithm>

#include "base/check.h"
#include "base/strings.h"

namespace viewcap {

Tableau::Tableau(AttrSet universe, std::vector<TaggedTuple> rows)
    : universe_(std::move(universe)), rows_(std::move(rows)) {
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

Result<Tableau> Tableau::Create(const Catalog& catalog, AttrSet universe,
                                std::vector<TaggedTuple> rows) {
  Tableau t(std::move(universe), std::move(rows));
  VIEWCAP_RETURN_NOT_OK(t.Validate(catalog));
  return t;
}

Tableau Tableau::MustCreate(const Catalog& catalog, AttrSet universe,
                            std::vector<TaggedTuple> rows) {
  Result<Tableau> r = Create(catalog, std::move(universe), std::move(rows));
  if (!r.ok()) {
    VIEWCAP_CHECK(false && "Tableau::MustCreate on ill-formed template");
  }
  return std::move(r).value();
}

AttrSet Tableau::Trs() const {
  AttrSet out;
  for (const TaggedTuple& row : rows_) {
    out = out.Union(row.tuple.DistinguishedAttrs());
  }
  return out;
}

std::vector<RelId> Tableau::RelNames() const {
  std::vector<RelId> out;
  out.reserve(rows_.size());
  for (const TaggedTuple& row : rows_) out.push_back(row.rel);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Tableau::ContainsRow(const TaggedTuple& row) const {
  return std::binary_search(rows_.begin(), rows_.end(), row);
}

Tableau Tableau::SubsetRows(const std::vector<std::size_t>& keep) const {
  std::vector<TaggedTuple> rows;
  rows.reserve(keep.size());
  for (std::size_t i : keep) {
    VIEWCAP_CHECK(i < rows_.size());
    rows.push_back(rows_[i]);
  }
  return Tableau(universe_, std::move(rows));
}

Tableau Tableau::Apply(const SymbolMap& map) const {
  std::vector<TaggedTuple> rows;
  rows.reserve(rows_.size());
  for (const TaggedTuple& row : rows_) {
    rows.push_back(TaggedTuple{row.rel, row.tuple.Apply(map)});
  }
  return Tableau(universe_, std::move(rows));
}

Status Tableau::Validate(const Catalog& catalog) const {
  if (rows_.empty()) {
    return Status::IllFormed("a template must be nonempty");
  }
  for (const TaggedTuple& row : rows_) {
    if (!catalog.HasRelation(row.rel)) {
      return Status::IllFormed(StrCat("row tagged with unknown relation id ",
                                      row.rel));
    }
    const AttrSet& type = catalog.RelationScheme(row.rel);
    if (!type.SubsetOf(universe_)) {
      return Status::IllFormed(
          StrCat("type of '", catalog.RelationName(row.rel),
                 "' is not contained in the template universe"));
    }
    if (row.tuple.scheme() != universe_) {
      return Status::IllFormed("row tuple is not over the universe U");
    }
    // Condition (i): {A | t(A) = 0_A} subset of R(eta).
    if (!row.tuple.DistinguishedAttrs().SubsetOf(type)) {
      return Status::IllFormed(
          StrCat("condition (i) violated: row tagged '",
                 catalog.RelationName(row.rel),
                 "' has a distinguished symbol outside its type"));
    }
  }
  // Condition (ii): distinct rows agree only within both types.
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    for (std::size_t j = i + 1; j < rows_.size(); ++j) {
      const AttrSet both = catalog.RelationScheme(rows_[i].rel)
                               .Intersect(catalog.RelationScheme(rows_[j].rel));
      for (AttrId a : universe_) {
        if (rows_[i].tuple.At(a) == rows_[j].tuple.At(a) &&
            !both.Contains(a)) {
          return Status::IllFormed(
              StrCat("condition (ii) violated: rows ", i, " and ", j,
                     " share a symbol at attribute '",
                     catalog.AttributeName(a),
                     "' outside both rows' types"));
        }
      }
    }
  }
  // Condition (iii): TRS nonempty.
  if (Trs().empty()) {
    return Status::IllFormed(
        "condition (iii) violated: no distinguished symbol in any row");
  }
  return Status::OK();
}

void Tableau::ReserveSymbols(SymbolPool& pool) const {
  for (const TaggedTuple& row : rows_) {
    for (std::size_t i = 0; i < row.tuple.size(); ++i) {
      const Symbol& s = row.tuple.ValueAt(i);
      if (!s.IsDistinguished()) pool.Reserve(s.attr, s.ordinal);
    }
  }
}

std::vector<Symbol> Tableau::Symbols() const {
  std::vector<Symbol> out;
  for (const TaggedTuple& row : rows_) {
    for (std::size_t i = 0; i < row.tuple.size(); ++i) {
      out.push_back(row.tuple.ValueAt(i));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void ValidateTableau(const Catalog& catalog, const Tableau& t) {
#ifndef NDEBUG
  Status st = t.Validate(catalog);
  if (!st.ok()) {
    internal::CheckFailed("ValidateTableau", 0, st.message().c_str());
  }
#else
  (void)catalog;
  (void)t;
#endif
}

std::string Tableau::ToString(const Catalog& catalog) const {
  std::vector<std::string> header;
  for (AttrId a : universe_) header.push_back(catalog.AttributeName(a));
  std::string out = StrCat("[", StrJoin(header, ", "), "]\n");
  for (const TaggedTuple& row : rows_) {
    std::vector<std::string> type_names;
    for (AttrId a : catalog.RelationScheme(row.rel)) {
      type_names.push_back(catalog.AttributeName(a));
    }
    out += StrCat("  ", row.tuple.ToString(catalog), " , ",
                  catalog.RelationName(row.rel), ":",
                  StrJoin(type_names, ""), "\n");
  }
  return out;
}

}  // namespace viewcap
