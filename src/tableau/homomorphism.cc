#include "tableau/homomorphism.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "base/check.h"
#include "tableau/hom_kernel.h"

namespace viewcap {

namespace {

// Occurrence signatures over Symbol values: the same (rel, column)
// context sets the SoA lowering precomputes (soa.h), packed identically
// as rel * width + column. Used by the legacy search so its candidate
// prune — and therefore its candidate lists and witnesses — match the
// kernel's bit for bit.
using SymbolSignatures = std::map<Symbol, std::vector<std::uint64_t>>;

SymbolSignatures ComputeSignatures(const Tableau& t) {
  SymbolSignatures sigs;
  const std::uint64_t width = t.universe().size();
  for (const TaggedTuple& row : t.rows()) {
    for (std::size_t k = 0; k < row.tuple.size(); ++k) {
      sigs[row.tuple.ValueAt(k)].push_back(
          static_cast<std::uint64_t>(row.rel) * width + k);
    }
  }
  for (auto& [symbol, sig] : sigs) {
    std::sort(sig.begin(), sig.end());
    sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
  }
  return sigs;
}

// Backtracking matcher. Rows of `from` are matched, in a
// most-constrained-first order, against same-tagged rows of `to`;
// the binding unifies full universe-wide tuples, which is exactly the
// definition (f(tau) must literally be a row of `to`). Distinguished
// symbols are pre-bound to themselves.
class HomSearch {
 public:
  // With fix_distinguished (a true homomorphism), f(0_A) = 0_A is enforced;
  // without it the search looks for a row embedding (see header). With
  // injective, the symbol map must be one-to-one and map nondistinguished
  // symbols to nondistinguished ones (the isomorphism search).
  HomSearch(const Catalog& catalog, const Tableau& from, const Tableau& to,
            bool fix_distinguished, bool injective = false,
            bool unification_prune = true)
      : from_(from),
        to_(to),
        fix_distinguished_(fix_distinguished),
        injective_(injective) {
    (void)catalog;
    SymbolSignatures from_sigs;
    SymbolSignatures to_sigs;
    if (unification_prune) {
      from_sigs = ComputeSignatures(from);
      to_sigs = ComputeSignatures(to);
    }
    candidates_.resize(from.size());
    for (std::size_t i = 0; i < from.size(); ++i) {
      const TaggedTuple& row = from.rows()[i];
      for (std::size_t j = 0; j < to.size(); ++j) {
        const TaggedTuple& target = to.rows()[j];
        if (target.rel != row.rel) continue;
        // A homomorphism fixes distinguished symbols, so wherever the
        // source row is distinguished the target must be too.
        bool compatible = true;
        if (fix_distinguished_) {
          for (std::size_t k = 0; k < row.tuple.size(); ++k) {
            if (row.tuple.ValueAt(k).IsDistinguished() &&
                !target.tuple.ValueAt(k).IsDistinguished()) {
              compatible = false;
              break;
            }
          }
        }
        // Unification prune: any symbol map sends rows onto same-tagged
        // rows, so a symbol can only bind a value occurring in every
        // (rel, column) context the symbol occurs in. Prunes rows whose
        // repeated-symbol pattern cannot unify with the target row.
        if (compatible && unification_prune) {
          for (std::size_t k = 0; k < row.tuple.size(); ++k) {
            if (!SignatureSubset(from_sigs.at(row.tuple.ValueAt(k)),
                                 to_sigs.at(target.tuple.ValueAt(k)))) {
              compatible = false;
              break;
            }
          }
        }
        if (compatible) candidates_[i].push_back(j);
      }
    }
    order_.resize(from.size());
    for (std::size_t i = 0; i < from.size(); ++i) order_[i] = i;
    // Deterministic (count, index) order — ties broken by row index, the
    // same order the SoA kernel uses, so both paths replay the identical
    // search and return the identical first witness.
    std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      if (candidates_[a].size() != candidates_[b].size()) {
        return candidates_[a].size() < candidates_[b].size();
      }
      return a < b;
    });
  }

  std::optional<SymbolMap> Run() {
    binding_.clear();
    if (Recurse(0)) {
      // Complete the map with identity on distinguished symbols so the
      // result is a bona fide valuation restriction.
      for (const Symbol& s : from_.Symbols()) {
        if (s.IsDistinguished()) binding_.emplace(s, s);
      }
      return binding_;
    }
    return std::nullopt;
  }

 private:
  bool Recurse(std::size_t depth) {
    if (depth == order_.size()) return true;
    const std::size_t i = order_[depth];
    const TaggedTuple& row = from_.rows()[i];
    for (std::size_t j : candidates_[i]) {
      const TaggedTuple& target = to_.rows()[j];
      // Undo trail lives in a member scratch buffer: truncating back to
      // trail_start on backtrack reuses the allocation across the whole
      // search instead of heap-allocating per candidate row.
      const std::size_t trail_start = trail_.size();
      bool ok = true;
      for (std::size_t k = 0; k < row.tuple.size(); ++k) {
        const Symbol& var = row.tuple.ValueAt(k);
        const Symbol& value = target.tuple.ValueAt(k);
        if (fix_distinguished_ && var.IsDistinguished()) {
          if (var != value) {  // f(0_A) = 0_A.
            ok = false;
            break;
          }
          continue;
        }
        auto it = binding_.find(var);
        if (it != binding_.end()) {
          if (it->second != value) {
            ok = false;
            break;
          }
        } else {
          // For isomorphisms, nondistinguished symbols must map one-to-one
          // onto nondistinguished symbols.
          if (injective_ &&
              (value.IsDistinguished() || used_values_.count(value) > 0)) {
            ok = false;
            break;
          }
          binding_.emplace(var, value);
          if (injective_) used_values_.insert(value);
          trail_.push_back({var, value});
        }
      }
      if (ok && Recurse(depth + 1)) return true;
      while (trail_.size() > trail_start) {
        const auto& [var, value] = trail_.back();
        binding_.erase(var);
        if (injective_) used_values_.erase(value);
        trail_.pop_back();
      }
    }
    return false;
  }

  const Tableau& from_;
  const Tableau& to_;
  bool fix_distinguished_;
  bool injective_;
  std::vector<std::vector<std::size_t>> candidates_;
  std::vector<std::size_t> order_;
  SymbolMap binding_;
  std::unordered_set<Symbol, SymbolHash> used_values_;
  std::vector<std::pair<Symbol, Symbol>> trail_;
};

}  // namespace

std::optional<SymbolMap> FindHomomorphism(const Catalog& catalog,
                                          const Tableau& from,
                                          const Tableau& to) {
  (void)catalog;
  return SoaFindHomomorphism(from, to);
}

bool HasRowEmbedding(const Catalog& catalog, const Tableau& from,
                     const Tableau& to) {
  (void)catalog;
  return SoaHasRowEmbedding(from, to);
}

std::optional<SymbolMap> FindIsomorphism(const Catalog& catalog,
                                         const Tableau& a, const Tableau& b) {
  (void)catalog;
  return SoaFindIsomorphism(a, b);
}

bool HasHomomorphism(const Catalog& catalog, const Tableau& from,
                     const Tableau& to) {
  (void)catalog;
  return SoaHasHomomorphism(from, to);
}

bool EquivalentTableaux(const Catalog& catalog, const Tableau& a,
                        const Tableau& b) {
  (void)catalog;
  if (a.Trs() != b.Trs()) return false;
  if (a.universe() != b.universe()) return false;
  // Lower both sides once and run the kernel in both directions.
  const SoaTemplate sa = SoaTemplate::Lower(a);
  const SoaTemplate sb = SoaTemplate::Lower(b);
  HomScratch scratch;
  return SoaSearch(sa, sb, HomMode::kHomomorphism, scratch, nullptr) &&
         SoaSearch(sb, sa, HomMode::kHomomorphism, scratch, nullptr);
}

std::vector<std::size_t> RowImage(const Catalog& catalog, const Tableau& from,
                                  const Tableau& to, const SymbolMap& hom) {
  (void)catalog;
  std::vector<std::size_t> image(from.size());
  for (std::size_t i = 0; i < from.size(); ++i) {
    const TaggedTuple& row = from.rows()[i];
    TaggedTuple mapped{row.rel, row.tuple.Apply(hom)};
    bool found = false;
    for (std::size_t j = 0; j < to.size(); ++j) {
      if (to.rows()[j] == mapped) {
        image[i] = j;
        found = true;
        break;
      }
    }
    VIEWCAP_CHECK(found && "RowImage: not a homomorphism into `to`");
  }
  return image;
}

namespace legacy {

std::optional<SymbolMap> FindHomomorphism(const Catalog& catalog,
                                          const Tableau& from,
                                          const Tableau& to,
                                          bool unification_prune) {
  if (from.universe() != to.universe()) return std::nullopt;
  return HomSearch(catalog, from, to, /*fix_distinguished=*/true,
                   /*injective=*/false, unification_prune)
      .Run();
}

bool HasRowEmbedding(const Catalog& catalog, const Tableau& from,
                     const Tableau& to, bool unification_prune) {
  if (from.universe() != to.universe()) return false;
  return HomSearch(catalog, from, to, /*fix_distinguished=*/false,
                   /*injective=*/false, unification_prune)
      .Run()
      .has_value();
}

std::optional<SymbolMap> FindIsomorphism(const Catalog& catalog,
                                         const Tableau& a, const Tableau& b) {
  if (a.universe() != b.universe()) return std::nullopt;
  if (a.size() != b.size()) return std::nullopt;
  if (a.Symbols().size() != b.Symbols().size()) return std::nullopt;
  // An injective, nondistinguished-preserving homomorphism between
  // templates with equally many rows and symbols is a bijection on the
  // symbols occurring in them; it maps rows injectively (two rows with the
  // same image would be identified by an injective symbol map, but rows of
  // a template are distinct), hence bijectively, and its inverse fixes
  // distinguished symbols and maps rows of b onto rows of a: an
  // isomorphism.
  return HomSearch(catalog, a, b, /*fix_distinguished=*/true,
                   /*injective=*/true)
      .Run();
}

bool HasHomomorphism(const Catalog& catalog, const Tableau& from,
                     const Tableau& to, bool unification_prune) {
  return FindHomomorphism(catalog, from, to, unification_prune).has_value();
}

bool EquivalentTableaux(const Catalog& catalog, const Tableau& a,
                        const Tableau& b) {
  if (a.Trs() != b.Trs()) return false;
  // Qualified: ADL on the viewcap arguments would otherwise pull the
  // SoA-backed overload into the set and make the call ambiguous.
  return legacy::HasHomomorphism(catalog, a, b) &&
         legacy::HasHomomorphism(catalog, b, a);
}

}  // namespace legacy

}  // namespace viewcap
