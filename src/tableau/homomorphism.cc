#include "tableau/homomorphism.h"

#include <algorithm>
#include <unordered_set>

#include "base/check.h"

namespace viewcap {

namespace {

// Backtracking matcher. Rows of `from` are matched, in a
// most-constrained-first order, against same-tagged rows of `to`;
// the binding unifies full universe-wide tuples, which is exactly the
// definition (f(tau) must literally be a row of `to`). Distinguished
// symbols are pre-bound to themselves.
class HomSearch {
 public:
  // With fix_distinguished (a true homomorphism), f(0_A) = 0_A is enforced;
  // without it the search looks for a row embedding (see header). With
  // injective, the symbol map must be one-to-one and map nondistinguished
  // symbols to nondistinguished ones (the isomorphism search).
  HomSearch(const Catalog& catalog, const Tableau& from, const Tableau& to,
            bool fix_distinguished, bool injective = false)
      : from_(from),
        to_(to),
        fix_distinguished_(fix_distinguished),
        injective_(injective) {
    (void)catalog;
    candidates_.resize(from.size());
    for (std::size_t i = 0; i < from.size(); ++i) {
      const TaggedTuple& row = from.rows()[i];
      for (std::size_t j = 0; j < to.size(); ++j) {
        const TaggedTuple& target = to.rows()[j];
        if (target.rel != row.rel) continue;
        // A homomorphism fixes distinguished symbols, so wherever the
        // source row is distinguished the target must be too.
        bool compatible = true;
        if (fix_distinguished_) {
          for (std::size_t k = 0; k < row.tuple.size(); ++k) {
            if (row.tuple.ValueAt(k).IsDistinguished() &&
                !target.tuple.ValueAt(k).IsDistinguished()) {
              compatible = false;
              break;
            }
          }
        }
        if (compatible) candidates_[i].push_back(j);
      }
    }
    order_.resize(from.size());
    for (std::size_t i = 0; i < from.size(); ++i) order_[i] = i;
    std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      return candidates_[a].size() < candidates_[b].size();
    });
  }

  std::optional<SymbolMap> Run() {
    binding_.clear();
    if (Recurse(0)) {
      // Complete the map with identity on distinguished symbols so the
      // result is a bona fide valuation restriction.
      for (const Symbol& s : from_.Symbols()) {
        if (s.IsDistinguished()) binding_.emplace(s, s);
      }
      return binding_;
    }
    return std::nullopt;
  }

 private:
  bool Recurse(std::size_t depth) {
    if (depth == order_.size()) return true;
    const std::size_t i = order_[depth];
    const TaggedTuple& row = from_.rows()[i];
    for (std::size_t j : candidates_[i]) {
      const TaggedTuple& target = to_.rows()[j];
      std::vector<std::pair<Symbol, Symbol>> bound;  // Trail for undo.
      bool ok = true;
      for (std::size_t k = 0; k < row.tuple.size(); ++k) {
        const Symbol& var = row.tuple.ValueAt(k);
        const Symbol& value = target.tuple.ValueAt(k);
        if (fix_distinguished_ && var.IsDistinguished()) {
          if (var != value) {  // f(0_A) = 0_A.
            ok = false;
            break;
          }
          continue;
        }
        auto it = binding_.find(var);
        if (it != binding_.end()) {
          if (it->second != value) {
            ok = false;
            break;
          }
        } else {
          // For isomorphisms, nondistinguished symbols must map one-to-one
          // onto nondistinguished symbols.
          if (injective_ &&
              (value.IsDistinguished() || used_values_.count(value) > 0)) {
            ok = false;
            break;
          }
          binding_.emplace(var, value);
          if (injective_) used_values_.insert(value);
          bound.push_back({var, value});
        }
      }
      if (ok && Recurse(depth + 1)) return true;
      for (const auto& [var, value] : bound) {
        binding_.erase(var);
        if (injective_) used_values_.erase(value);
      }
    }
    return false;
  }

  const Tableau& from_;
  const Tableau& to_;
  bool fix_distinguished_;
  bool injective_;
  std::vector<std::vector<std::size_t>> candidates_;
  std::vector<std::size_t> order_;
  SymbolMap binding_;
  std::unordered_set<Symbol, SymbolHash> used_values_;
};

}  // namespace

std::optional<SymbolMap> FindHomomorphism(const Catalog& catalog,
                                          const Tableau& from,
                                          const Tableau& to) {
  if (from.universe() != to.universe()) return std::nullopt;
  return HomSearch(catalog, from, to, /*fix_distinguished=*/true).Run();
}

bool HasRowEmbedding(const Catalog& catalog, const Tableau& from,
                     const Tableau& to) {
  if (from.universe() != to.universe()) return false;
  return HomSearch(catalog, from, to, /*fix_distinguished=*/false)
      .Run()
      .has_value();
}

std::optional<SymbolMap> FindIsomorphism(const Catalog& catalog,
                                         const Tableau& a, const Tableau& b) {
  if (a.universe() != b.universe()) return std::nullopt;
  if (a.size() != b.size()) return std::nullopt;
  if (a.Symbols().size() != b.Symbols().size()) return std::nullopt;
  // An injective, nondistinguished-preserving homomorphism between
  // templates with equally many rows and symbols is a bijection on the
  // symbols occurring in them; it maps rows injectively (two rows with the
  // same image would be identified by an injective symbol map, but rows of
  // a template are distinct), hence bijectively, and its inverse fixes
  // distinguished symbols and maps rows of b onto rows of a: an
  // isomorphism.
  return HomSearch(catalog, a, b, /*fix_distinguished=*/true,
                   /*injective=*/true)
      .Run();
}

bool HasHomomorphism(const Catalog& catalog, const Tableau& from,
                     const Tableau& to) {
  return FindHomomorphism(catalog, from, to).has_value();
}

bool EquivalentTableaux(const Catalog& catalog, const Tableau& a,
                        const Tableau& b) {
  if (a.Trs() != b.Trs()) return false;
  return HasHomomorphism(catalog, a, b) && HasHomomorphism(catalog, b, a);
}

std::vector<std::size_t> RowImage(const Catalog& catalog, const Tableau& from,
                                  const Tableau& to, const SymbolMap& hom) {
  (void)catalog;
  std::vector<std::size_t> image(from.size());
  for (std::size_t i = 0; i < from.size(); ++i) {
    const TaggedTuple& row = from.rows()[i];
    TaggedTuple mapped{row.rel, row.tuple.Apply(hom)};
    bool found = false;
    for (std::size_t j = 0; j < to.size(); ++j) {
      if (to.rows()[j] == mapped) {
        image[i] = j;
        found = true;
        break;
      }
    }
    VIEWCAP_CHECK(found && "RowImage: not a homomorphism into `to`");
  }
  return image;
}

}  // namespace viewcap
