// Expression-template recognition (Proposition 2.4.6) and expression
// minimization (the classic application of templates from reference [2],
// Aho-Sagiv-Ullman).
#ifndef VIEWCAP_TABLEAU_RECOGNIZE_H_
#define VIEWCAP_TABLEAU_RECOGNIZE_H_

#include "algebra/enumerator.h"
#include "tableau/tableau.h"

namespace viewcap {

/// Outcome of expression-template recognition.
struct RecognitionResult {
  /// Non-null when a PJ expression realizing the template's mapping was
  /// found; its Algorithm 2.1.1 template is equivalent to the input.
  ExprPtr expression;
  /// True when the search stopped on its candidate cap: a null
  /// `expression` is then inconclusive rather than a disproof.
  bool budget_exhausted = false;
  std::size_t candidates_tried = 0;
  std::size_t leaf_budget = 0;
};

/// Proposition 2.4.6, budgeted: decides whether `t` is an m.r.e. template
/// by searching for a realizing PJ expression over RN(t). The leaf budget
/// is the reduced row count plus `limits.extra_leaves` (every expression's
/// template has one row per leaf occurrence, so a realizer of the reduced
/// core needs at least that many; see DESIGN.md for the completeness
/// discussion of the upper bound).
Result<RecognitionResult> RecognizeExpressionTemplate(
    const Catalog& catalog, const Tableau& t, SearchLimits limits = {});

/// Outcome of expression minimization.
struct MinimizeResult {
  /// An expression with the fewest leaf occurrences realizing the input's
  /// mapping that the search found; never null (falls back to the input).
  ExprPtr expression;
  /// True when the minimizer proved no smaller realization exists within
  /// the (default-complete) budget; false when the candidate cap was hit.
  bool minimal = false;
  std::size_t leaves_before = 0;
  std::size_t leaves_after = 0;
};

/// Tableau-based query minimization: builds the template of `expr`,
/// reduces it to its core (Proposition 2.4.4), and synthesizes a realizing
/// expression of core size via RecognizeExpressionTemplate. The result is
/// equivalent to the input (checked by homomorphisms before returning).
Result<MinimizeResult> MinimizeExpression(const Catalog& catalog,
                                          const AttrSet& universe,
                                          const ExprPtr& expr,
                                          SearchLimits limits = {});

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_RECOGNIZE_H_
