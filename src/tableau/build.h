// Algorithm 2.1.1: converting m.r. expressions to equivalent m.r. templates.
#ifndef VIEWCAP_TABLEAU_BUILD_H_
#define VIEWCAP_TABLEAU_BUILD_H_

#include "algebra/expr.h"
#include "tableau/tableau.h"

namespace viewcap {

/// Builds a template T over `universe` with T == E (Proposition 2.1.2).
/// Every relation name in `expr` must have its type contained in
/// `universe`. Fresh nondistinguished symbols are minted from `pool`;
/// passing one pool across several builds guarantees pairwise-disjoint
/// nondistinguished symbols between the resulting templates (the
/// relabelling step (iii) of the algorithm).
Result<Tableau> BuildTableau(const Catalog& catalog, const AttrSet& universe,
                             const Expr& expr, SymbolPool& pool);

/// Same with a private symbol pool.
Result<Tableau> BuildTableau(const Catalog& catalog, const AttrSet& universe,
                             const Expr& expr);

/// CHECK-failing convenience.
Tableau MustBuildTableau(const Catalog& catalog, const AttrSet& universe,
                         const Expr& expr);

/// The template realizing the expression mapping pi_X o T for a template T
/// (step (ii) of Algorithm 2.1.1 applied directly to a template): every
/// distinguished symbol 0_A with A in TRS(T) - X is replaced by one fresh
/// nondistinguished symbol shared by all rows. X must be a nonempty subset
/// of TRS(T).
Result<Tableau> ProjectTableau(const Catalog& catalog, const Tableau& t,
                               const AttrSet& x, SymbolPool& pool);

/// The template realizing T1 |x| T2 (step (iii)): the union after
/// relabelling `t2`'s nondistinguished symbols away from `t1`'s.
Result<Tableau> JoinTableaux(const Catalog& catalog, const Tableau& t1,
                             const Tableau& t2, SymbolPool& pool);

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_BUILD_H_
