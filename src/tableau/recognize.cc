#include "tableau/recognize.h"

#include <unordered_map>

#include "algebra/enumerator.h"
#include "base/check.h"
#include "tableau/build.h"
#include "tableau/canonical.h"
#include "tableau/homomorphism.h"
#include "tableau/reduce.h"

namespace viewcap {

Result<RecognitionResult> RecognizeExpressionTemplate(
    const Catalog& catalog, const Tableau& t, SearchLimits limits) {
  VIEWCAP_RETURN_NOT_OK(t.Validate(catalog));
  const Tableau target = Reduce(catalog, t);
  const AttrSet target_trs = target.Trs();

  RecognitionResult result;
  result.leaf_budget =
      std::min(limits.max_leaves, target.size() + limits.extra_leaves);

  // Fast path: the canonical realizer pi_TRS(join of one leaf per relation
  // name). It realizes exactly the templates whose rows share symbols only
  // through attributes every same-named row exposes — the unprojected-join
  // family — and is checked by homomorphisms, so a hit is always sound.
  {
    std::vector<ExprPtr> leaves;
    for (RelId rel : target.RelNames()) {
      leaves.push_back(Expr::Rel(catalog, rel));
    }
    ExprPtr candidate = leaves.size() == 1
                            ? leaves[0]
                            : Expr::MustJoin(std::move(leaves));
    if (target_trs.SubsetOf(candidate->trs())) {
      if (candidate->trs() != target_trs) {
        candidate = Expr::MustProject(target_trs, std::move(candidate));
      }
      VIEWCAP_ASSIGN_OR_RETURN(Tableau built,
                               BuildTableau(catalog, t.universe(),
                                            *candidate));
      if (EquivalentTableaux(catalog, built, target)) {
        result.expression = std::move(candidate);
        return result;
      }
    }
  }

  // Dedup buckets keyed by canonical form, resolved by equivalence.
  std::unordered_map<std::string, std::vector<Tableau>> seen;
  auto check_and_insert = [&](const Tableau& reduced) {
    auto& bucket = seen[CanonicalKey(reduced)];
    for (const Tableau& existing : bucket) {
      if (EquivalentTableaux(catalog, existing, reduced)) return true;
    }
    bucket.push_back(reduced);
    return false;
  };

  ExprEnumerator enumerator(&catalog, t.RelNames());
  Status failure = Status::OK();
  ExprEnumerator::Stats stats = enumerator.Enumerate(
      result.leaf_budget, limits.max_candidates,
      [&](const ExprPtr& candidate) -> ExprEnumerator::Verdict {
        Result<Tableau> built =
            BuildTableau(catalog, t.universe(), *candidate);
        if (!built.ok()) {
          failure = built.status();
          return ExprEnumerator::Verdict::kStop;
        }
        // Subexpressions of a realizer row-embed into the target (their
        // templates occur, renamed, inside the realizer's template, which
        // maps homomorphically onto the target).
        if (!HasRowEmbedding(catalog, *built, target)) {
          return ExprEnumerator::Verdict::kSkip;
        }
        Tableau reduced = Reduce(catalog, *built);
        if (check_and_insert(reduced)) {
          return ExprEnumerator::Verdict::kSkip;
        }
        if (reduced.Trs() == target_trs &&
            EquivalentTableaux(catalog, reduced, target)) {
          result.expression = candidate;
          return ExprEnumerator::Verdict::kStop;
        }
        return ExprEnumerator::Verdict::kKeep;
      });
  VIEWCAP_RETURN_NOT_OK(failure);
  result.candidates_tried = stats.generated;
  result.budget_exhausted = stats.exhausted_budget;
  return result;
}

Result<MinimizeResult> MinimizeExpression(const Catalog& catalog,
                                          const AttrSet& universe,
                                          const ExprPtr& expr,
                                          SearchLimits limits) {
  if (expr == nullptr) {
    return Status::InvalidArgument("expression is null");
  }
  MinimizeResult result;
  result.expression = expr;
  result.leaves_before = expr->LeafCount();
  result.leaves_after = result.leaves_before;

  VIEWCAP_ASSIGN_OR_RETURN(Tableau t,
                           BuildTableau(catalog, universe, *expr));
  Tableau core = Reduce(catalog, t);
  if (core.size() >= expr->LeafCount()) {
    // The input already has as few leaves as any realization of the core
    // can (one row per leaf): it is minimal.
    result.minimal = true;
    return result;
  }
  // Search for a realization of core size. Zero extra leaves: we only want
  // strictly smaller realizations, and a core-size one exists for every
  // expression-built template in our experience (DESIGN.md discusses the
  // bound); if none is found we keep the input.
  SearchLimits recognize_limits = limits;
  recognize_limits.extra_leaves = 0;
  VIEWCAP_ASSIGN_OR_RETURN(
      RecognitionResult recognition,
      RecognizeExpressionTemplate(catalog, core, recognize_limits));
  if (recognition.expression != nullptr &&
      recognition.expression->LeafCount() < result.leaves_before) {
    // Double-check equivalence against the original end to end.
    VIEWCAP_ASSIGN_OR_RETURN(
        Tableau found,
        BuildTableau(catalog, universe, *recognition.expression));
    if (EquivalentTableaux(catalog, found, t)) {
      result.expression = recognition.expression;
      result.leaves_after = recognition.expression->LeafCount();
      result.minimal =
          !recognition.budget_exhausted || result.leaves_after == core.size();
      return result;
    }
    return Status::Internal(
        "recognized expression failed the final equivalence check");
  }
  result.minimal = false;  // Search inconclusive; input kept.
  return result;
}

}  // namespace viewcap
