// Template reduction (Proposition 2.4.4): computing the minimal equivalent
// subtemplate (the "core").
#ifndef VIEWCAP_TABLEAU_REDUCE_H_
#define VIEWCAP_TABLEAU_REDUCE_H_

#include "tableau/tableau.h"

namespace viewcap {

struct HomScratch;

/// Returns a reduced template S with S contained in T and S == T. A row is
/// droppable exactly when a homomorphism from the current template into the
/// remainder exists; single-row greedy removal is complete because a
/// homomorphism into a smaller subset is also one into any superset.
/// The result is minimum-size in T's equivalence class, matching the
/// paper's definition of reduced (#(T) <= #(S) for every S == T).
Tableau Reduce(const Catalog& catalog, const Tableau& t);

/// Same, reusing caller-provided kernel scratch — the engine passes its
/// per-thread scratch so the all-n-drops sweep runs on the configured
/// candidate-filter backend and its filter counters land in the engine
/// stats.
Tableau Reduce(const Catalog& catalog, const Tableau& t, HomScratch& scratch);

/// True when no proper subtemplate of `t` is equivalent to `t`.
bool IsReduced(const Catalog& catalog, const Tableau& t);

}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_REDUCE_H_
