#include "tableau/canonical.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "base/strings.h"

namespace viewcap {

namespace {

// Renders rows in the order given by `perm`, renaming nondistinguished
// symbols to n0, n1, ... by first occurrence.
std::string RenderWithOrder(const Tableau& t,
                            const std::vector<std::size_t>& perm) {
  std::map<Symbol, int> names;
  std::string out;
  for (std::size_t i : perm) {
    const TaggedTuple& row = t.rows()[i];
    out += StrCat("r", row.rel, "|");
    for (std::size_t k = 0; k < row.tuple.size(); ++k) {
      const Symbol& s = row.tuple.ValueAt(k);
      if (s.IsDistinguished()) {
        out += "D,";
      } else {
        auto [it, inserted] =
            names.emplace(s, static_cast<int>(names.size()));
        out += StrCat("n", it->second, ",");
      }
    }
    out += ";";
  }
  return out;
}

// Invariant signature: per-row strings built from the tag and, per cell,
// either "D" or a color of the cell's symbol refined over two rounds of
// neighborhood hashing (a tiny Weisfeiler-Leman pass). Isomorphic templates
// always produce equal signatures; collisions between non-isomorphic ones
// are possible and must be resolved by the caller.
std::string Signature(const Tableau& t) {
  // Round 0: color = number of occurrences of the symbol in the template.
  std::map<Symbol, std::size_t> color;
  for (const TaggedTuple& row : t.rows()) {
    for (std::size_t k = 0; k < row.tuple.size(); ++k) {
      ++color[row.tuple.ValueAt(k)];
    }
  }
  std::vector<std::string> row_sigs;
  for (int round = 0; round < 2; ++round) {
    // Render rows under current colors.
    row_sigs.clear();
    row_sigs.reserve(t.size());
    for (const TaggedTuple& row : t.rows()) {
      std::string sig = StrCat("r", row.rel, "|");
      for (std::size_t k = 0; k < row.tuple.size(); ++k) {
        const Symbol& s = row.tuple.ValueAt(k);
        sig += s.IsDistinguished() ? "D," : StrCat("x", color[s], ",");
      }
      row_sigs.push_back(std::move(sig));
    }
    if (round == 1) break;
    // Refine: a symbol's new color is the multiset of row signatures it
    // appears in, interned to a small integer.
    std::map<Symbol, std::vector<std::string>> neighborhoods;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const TaggedTuple& row = t.rows()[i];
      for (std::size_t k = 0; k < row.tuple.size(); ++k) {
        const Symbol& s = row.tuple.ValueAt(k);
        if (!s.IsDistinguished()) neighborhoods[s].push_back(row_sigs[i]);
      }
    }
    // Color = rank of the neighborhood string among the sorted distinct
    // strings. Ranking by content (not by symbol iteration order) keeps the
    // signature invariant under renamings that reorder symbols.
    std::map<Symbol, std::string> joined_by_symbol;
    std::vector<std::string> distinct;
    for (auto& [s, neighborhood] : neighborhoods) {
      std::sort(neighborhood.begin(), neighborhood.end());
      std::string joined = StrJoin(neighborhood, "&");
      distinct.push_back(joined);
      joined_by_symbol[s] = std::move(joined);
    }
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    color.clear();
    for (const auto& [s, joined] : joined_by_symbol) {
      color[s] = static_cast<std::size_t>(
          std::lower_bound(distinct.begin(), distinct.end(), joined) -
          distinct.begin());
    }
  }
  std::sort(row_sigs.begin(), row_sigs.end());
  return StrJoin(row_sigs, ";");
}

}  // namespace

std::string CanonicalKey(const Tableau& t) {
  const std::size_t n = t.size();
  if (n <= kMaxRowsForExactCanonicalKey) {
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::string best = RenderWithOrder(t, perm);
    while (std::next_permutation(perm.begin(), perm.end())) {
      std::string candidate = RenderWithOrder(t, perm);
      if (candidate < best) best = std::move(candidate);
    }
    return StrCat("X:", best);
  }
  return StrCat("S:", Signature(t));
}

Tableau RenameNondistinguished(const Tableau& t, std::uint32_t seed) {
  // Group the nondistinguished symbols by attribute (Symbols() is sorted,
  // so each group arrives in ascending ordinal order).
  std::map<AttrId, std::vector<Symbol>> by_attr;
  for (const Symbol& s : t.Symbols()) {
    if (!s.IsDistinguished()) by_attr[s.attr].push_back(s);
  }
  SymbolMap renaming;
  for (const auto& [attr, symbols] : by_attr) {
    // Reverse the per-attribute order and shift by the seed: injective per
    // attribute, ordinals >= 1, and different seeds yield different labels.
    const std::uint32_t n = static_cast<std::uint32_t>(symbols.size());
    for (std::uint32_t i = 0; i < n; ++i) {
      renaming[symbols[i]] =
          Symbol::Nondistinguished(attr, seed + n - i);
    }
  }
  return t.Apply(renaming);
}

}  // namespace viewcap
