// Shared lane-templated implementation of the vectorized candidate
// filter (hom_filter.h). Included by hom_filter.cc (instantiated with
// 128-bit lanes) and hom_filter_avx2.cc (256-bit lanes, compiled with
// -mavx2) — the same source compiles to SSE2-class or AVX2 code purely
// through the lane traits, which is what keeps the backends
// predicate-identical.
//
// Pipeline per source row (see hom_filter.h for the contract):
//   Stage 1  distinguished-mask cover over the group's contiguous
//            per-row mask words, Traits::kU64Lanes rows per step, with
//            branch-free survivor compaction (the common single-word
//            case; multi-word masks and embedding mode take scalar-shaped
//            paths that fill the same survivor buffer).
//   Stage 2  signature-length prefilter: |sig(source cell)| <=
//            |sig(target cell)| for every column, Traits::kI32Lanes
//            columns per step over the precomputed per-cell length rows.
//            A length violation refutes sorted-set containment, so this
//            only ever rejects rows the exact check would reject.
//   Stage 3  exact sorted-subset confirm per column: identical spans
//            short-circuit (a span's begin pointer is unique per
//            symbol), singleton needles use a broadcast-compare scan,
//            longer needles fall back to std::includes.
#ifndef VIEWCAP_TABLEAU_HOM_FILTER_IMPL_H_
#define VIEWCAP_TABLEAU_HOM_FILTER_IMPL_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tableau/hom_filter.h"
#include "tableau/soa.h"

namespace viewcap {
namespace internal {

/// True when value `v` occurs in the sorted-unique run [begin, end) —
/// equivalent to std::includes with a one-element needle. Runs are short
/// (a symbol's distinct (rel, column) contexts), so a broadcast-compare
/// linear scan beats a binary search.
template <typename Traits>
bool ContainsU64(const std::uint64_t* begin, const std::uint64_t* end,
                 std::uint64_t v) {
  const typename Traits::U64V needle = Traits::BroadcastU64(v);
  // Vector comparisons yield signed-element vectors (all-ones lanes on
  // match), so the accumulator is the signed counterpart type.
  typename Traits::S64V acc;
  std::memset(&acc, 0, sizeof acc);
  const std::uint64_t* p = begin;
  for (; p + Traits::kU64Lanes <= end; p += Traits::kU64Lanes) {
    acc |= (Traits::LoadU64(p) == needle);
  }
  std::int64_t any = 0;
  for (std::int32_t l = 0; l < Traits::kU64Lanes; ++l) {
    any |= acc[l];
  }
  for (; p < end; ++p) {
    if (*p == v) return true;
  }
  return any != 0;
}

template <typename Traits>
void FilterSourceRowVec(const FilterJob& job, FilterScratch& fs,
                        std::vector<std::int32_t>& out) {
  const SoaTemplate& from = *job.from;
  const SoaTemplate& to = *job.to;
  const std::int32_t i = job.source_row;
  const std::int32_t begin = job.group->begin;
  const std::int32_t end = job.group->end;
  const std::int32_t exclude = job.exclude_target_row;
  const std::int32_t width = from.width();

  ++fs.counters.invocations;
  fs.counters.rows += static_cast<std::uint64_t>(end - begin) -
                      ((exclude >= begin && exclude < end) ? 1 : 0);

  // Stage 1: fill the survivor buffer with the rows passing the
  // distinguished-mask cover (all rows but the excluded one in
  // embedding mode), preserving ascending order.
  auto& surv = fs.stage1;
  surv.resize(static_cast<std::size_t>(end - begin));
  std::int32_t n = 0;
  if (job.fix_distinguished && from.dist_words() == 1) {
    const std::uint64_t need = from.dist_mask(i)[0];
    // dist_words == 1 makes the per-row masks a stride-1 array, so the
    // group's masks are the contiguous word range [begin, end).
    const std::uint64_t* have = to.dist_mask(0);
    const typename Traits::U64V vneed = Traits::BroadcastU64(need);
    std::int32_t j = begin;
    for (; j + Traits::kU64Lanes <= end; j += Traits::kU64Lanes) {
      const typename Traits::U64V bad = vneed & ~Traits::LoadU64(have + j);
      for (std::int32_t l = 0; l < Traits::kU64Lanes; ++l) {
        const std::int32_t jj = j + l;
        surv[static_cast<std::size_t>(n)] = jj;
        n += static_cast<std::int32_t>((bad[l] == 0) & (jj != exclude));
      }
    }
    for (; j < end; ++j) {
      surv[static_cast<std::size_t>(n)] = j;
      n += static_cast<std::int32_t>(((need & ~have[j]) == 0) &
                                     (j != exclude));
    }
  } else if (job.fix_distinguished) {
    const std::uint64_t* need = from.dist_mask(i);
    const std::int32_t words = from.dist_words();
    for (std::int32_t j = begin; j < end; ++j) {
      if (j == exclude) continue;
      const std::uint64_t* have = to.dist_mask(j);
      std::uint64_t bad = 0;
      for (std::int32_t w = 0; w < words; ++w) bad |= need[w] & ~have[w];
      surv[static_cast<std::size_t>(n)] = j;
      n += static_cast<std::int32_t>(bad == 0);
    }
  } else {
    for (std::int32_t j = begin; j < end; ++j) {
      surv[static_cast<std::size_t>(n)] = j;
      n += static_cast<std::int32_t>(j != exclude);
    }
  }

  // Hoist the source row's needle spans and length row once; every
  // surviving candidate reuses them.
  const DenseSymbolId* row = from.row(i);
  const std::int32_t* from_len = from.sig_len_row(i);
  fs.needle_begin.resize(static_cast<std::size_t>(width));
  fs.needle_end.resize(static_cast<std::size_t>(width));
  for (std::int32_t k = 0; k < width; ++k) {
    const SoaTemplate::SigSpan span = from.signature(row[k]);
    fs.needle_begin[static_cast<std::size_t>(k)] = span.begin;
    fs.needle_end[static_cast<std::size_t>(k)] = span.end;
  }

  for (std::int32_t s = 0; s < n; ++s) {
    const std::int32_t j = surv[static_cast<std::size_t>(s)];

    // Stage 2: vector length prefilter over the columns.
    const std::int32_t* to_len = to.sig_len_row(j);
    typename Traits::I32V acc;
    std::memset(&acc, 0, sizeof acc);
    std::int32_t k = 0;
    for (; k + Traits::kI32Lanes <= width; k += Traits::kI32Lanes) {
      acc |= (Traits::LoadI32(from_len + k) > Traits::LoadI32(to_len + k));
    }
    std::int32_t any = 0;
    for (std::int32_t l = 0; l < Traits::kI32Lanes; ++l) any |= acc[l];
    for (; k < width; ++k) {
      any |= -static_cast<std::int32_t>(from_len[k] > to_len[k]);
    }
    if (any != 0) continue;

    // Stage 3: exact per-column subset confirm.
    const DenseSymbolId* target = to.row(j);
    bool ok = true;
    for (k = 0; k < width; ++k) {
      const std::uint64_t* nb = fs.needle_begin[static_cast<std::size_t>(k)];
      const std::uint64_t* ne = fs.needle_end[static_cast<std::size_t>(k)];
      const SoaTemplate::SigSpan hay = to.signature(target[k]);
      if (nb == hay.begin) continue;  // Same symbol's span: trivially true.
      if (ne - nb == 1) {
        if (!ContainsU64<Traits>(hay.begin, hay.end, *nb)) {
          ok = false;
          break;
        }
      } else if (!std::includes(hay.begin, hay.end, nb, ne)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      out.push_back(j);
      ++fs.counters.survivors;
    }
  }
}

}  // namespace internal
}  // namespace viewcap

#endif  // VIEWCAP_TABLEAU_HOM_FILTER_IMPL_H_
