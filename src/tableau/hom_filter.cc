#include "tableau/hom_filter.h"

#include <cstring>

#include "tableau/soa.h"

#if VIEWCAP_SIMD_VECTOR_EXT
#include "tableau/hom_filter_impl.h"
#endif

namespace viewcap {
namespace internal {

// The differential oracle: the original per-candidate loop from
// KernelSearch::BuildCandidates, unchanged in shape — every comparison
// in the same order, std::includes for every signature check. The
// vector backends must match its survivor list bit for bit.
void FilterSourceRowScalar(const FilterJob& job, FilterScratch& fs,
                           std::vector<std::int32_t>& out) {
  const SoaTemplate& from = *job.from;
  const SoaTemplate& to = *job.to;
  const std::int32_t i = job.source_row;
  const std::int32_t begin = job.group->begin;
  const std::int32_t end = job.group->end;
  const std::int32_t exclude = job.exclude_target_row;
  const std::int32_t width = from.width();
  const std::int32_t words = from.dist_words();
  const DenseSymbolId* row = from.row(i);
  const std::uint64_t* row_mask = from.dist_mask(i);

  ++fs.counters.invocations;
  fs.counters.rows += static_cast<std::uint64_t>(end - begin) -
                      ((exclude >= begin && exclude < end) ? 1 : 0);

  for (std::int32_t j = begin; j < end; ++j) {
    if (j == exclude) continue;
    if (job.fix_distinguished) {
      const std::uint64_t* target_mask = to.dist_mask(j);
      bool covered = true;
      for (std::int32_t w = 0; w < words; ++w) {
        if ((row_mask[w] & ~target_mask[w]) != 0) {
          covered = false;
          break;
        }
      }
      if (!covered) continue;
    }
    const DenseSymbolId* target = to.row(j);
    bool unifiable = true;
    for (std::int32_t k = 0; k < width; ++k) {
      if (!SignatureSubset(from.signature(row[k]),
                           to.signature(target[k]))) {
        unifiable = false;
        break;
      }
    }
    if (unifiable) {
      out.push_back(j);
      ++fs.counters.survivors;
    }
  }
}

#if VIEWCAP_SIMD_VECTOR_EXT

namespace {

// 128-bit lanes through the GCC/Clang generic vector extensions: 2 x u64
// for the mask stage, 4 x i32 for the length stage. Compiles on any
// architecture these compilers target (SSE2 on x86-64 baseline, NEON on
// aarch64, or synthesized).
struct Lanes128Traits {
  static constexpr std::int32_t kU64Lanes = 2;
  static constexpr std::int32_t kI32Lanes = 4;
  typedef std::uint64_t U64V __attribute__((vector_size(16)));
  typedef std::int64_t S64V __attribute__((vector_size(16)));
  typedef std::int32_t I32V __attribute__((vector_size(16)));

  static U64V LoadU64(const std::uint64_t* p) {
    U64V v;
    std::memcpy(&v, p, sizeof v);
    return v;
  }
  static I32V LoadI32(const std::int32_t* p) {
    I32V v;
    std::memcpy(&v, p, sizeof v);
    return v;
  }
  static U64V BroadcastU64(std::uint64_t x) { return U64V{x, x}; }
};

}  // namespace

void FilterSourceRow128(const FilterJob& job, FilterScratch& fs,
                        std::vector<std::int32_t>& out) {
  FilterSourceRowVec<Lanes128Traits>(job, fs, out);
}

#endif  // VIEWCAP_SIMD_VECTOR_EXT

}  // namespace internal

void FilterSourceRow(SimdBackend backend, const FilterJob& job,
                     FilterScratch& fs, std::vector<std::int32_t>& out) {
  // Callers normally pass an already-resolved backend
  // (DefaultSimdBackend / ResolveSimdBackend); the cached availability
  // probe makes an unresolved one clamp instead of fault.
  switch (backend) {
    case SimdBackend::kLanes256: {
#if defined(VIEWCAP_SIMD_HAVE_AVX2)
      static const bool avx2_ok =
          SimdBackendAvailable(SimdBackend::kLanes256);
      if (avx2_ok) {
        internal::FilterSourceRow256(job, fs, out);
        return;
      }
#endif
      [[fallthrough]];
    }
    case SimdBackend::kLanes128:
#if VIEWCAP_SIMD_VECTOR_EXT
      internal::FilterSourceRow128(job, fs, out);
      return;
#else
      [[fallthrough]];
#endif
    case SimdBackend::kScalar:
      break;
  }
  internal::FilterSourceRowScalar(job, fs, out);
}

}  // namespace viewcap
