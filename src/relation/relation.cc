#include "relation/relation.h"

#include <algorithm>
#include <map>

#include "base/check.h"
#include "base/strings.h"
#include "relation/catalog.h"

namespace viewcap {

Relation::Relation(AttrSet scheme, std::vector<Tuple> tuples)
    : scheme_(std::move(scheme)), tuples_(std::move(tuples)) {
  for (const Tuple& t : tuples_) VIEWCAP_CHECK(t.scheme() == scheme_);
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
}

bool Relation::Insert(Tuple t) {
  VIEWCAP_CHECK(t.scheme() == scheme_);
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) return false;
  tuples_.insert(it, std::move(t));
  return true;
}

bool Relation::Contains(const Tuple& t) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

Relation Relation::Project(const AttrSet& x) const {
  VIEWCAP_CHECK(!x.empty());
  VIEWCAP_CHECK(x.SubsetOf(scheme_));
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  for (const Tuple& t : tuples_) out.push_back(t.Project(x));
  return Relation(x, std::move(out));
}

Relation Relation::NaturalJoin(const Relation& left, const Relation& right) {
  AttrSet shared = left.scheme().Intersect(right.scheme());
  AttrSet combined = left.scheme().Union(right.scheme());
  std::vector<Tuple> out;
  if (shared.empty()) {
    // Cartesian product.
    for (const Tuple& l : left) {
      for (const Tuple& r : right) out.push_back(l.CombineWith(r));
    }
    return Relation(combined, std::move(out));
  }
  // Hash-join on the shared attributes (keys are projected tuples).
  std::map<Tuple, std::vector<const Tuple*>> index;
  for (const Tuple& r : right) index[r.Project(shared)].push_back(&r);
  for (const Tuple& l : left) {
    auto it = index.find(l.Project(shared));
    if (it == index.end()) continue;
    for (const Tuple* r : it->second) out.push_back(l.CombineWith(*r));
  }
  return Relation(combined, std::move(out));
}

Relation Relation::NaturalJoinAll(const std::vector<Relation>& parts) {
  VIEWCAP_CHECK(!parts.empty());
  Relation acc = parts.front();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    acc = NaturalJoin(acc, parts[i]);
  }
  return acc;
}

std::string Relation::ToString(const Catalog& catalog) const {
  std::vector<std::string> header;
  for (AttrId a : scheme_) header.push_back(catalog.AttributeName(a));
  std::string out = StrCat("[", StrJoin(header, ", "), "]\n");
  for (const Tuple& t : tuples_) out += StrCat("  ", t.ToString(catalog), "\n");
  return out;
}

}  // namespace viewcap
