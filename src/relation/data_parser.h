// A small textual format for database instances, used by the CLI's `eval`
// command and the examples:
//
//   r(1, 2, 3);
//   r(2, 2, 4);
//   s(x, 7);        # values are integers or identifiers
//   # comments and blank lines are ignored
//
// Values are interned per attribute: the same token always maps to the
// same symbol of that attribute's domain, and distinct tokens to distinct
// symbols (domains are disjoint across attributes by construction, so "7"
// in an A-column and "7" in a B-column are unrelated constants). The token
// "0" maps to the distinguished symbol 0_A, which instances may contain
// (Section 2.1 fixes 0_A as a specific element of Dom(A)).
#ifndef VIEWCAP_RELATION_DATA_PARSER_H_
#define VIEWCAP_RELATION_DATA_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "relation/instantiation.h"

namespace viewcap {

/// Parses `text` into an instantiation over `catalog`. All mentioned
/// relations must exist and each fact's arity must match its relation's
/// scheme. Diagnostics carry 1-based line numbers.
Result<Instantiation> ParseInstance(const Catalog& catalog,
                                    std::string_view text);

}  // namespace viewcap

#endif  // VIEWCAP_RELATION_DATA_PARSER_H_
