#include "relation/instantiation.h"

#include "base/check.h"
#include "base/strings.h"

namespace viewcap {

Status Instantiation::Set(RelId rel, Relation relation) {
  if (!catalog_->HasRelation(rel)) {
    return Status::NotFound(StrCat("relation id ", rel));
  }
  if (relation.scheme() != catalog_->RelationScheme(rel)) {
    return Status::IllFormed(
        StrCat("relation assigned to '", catalog_->RelationName(rel),
               "' has the wrong scheme"));
  }
  relations_[rel] = std::move(relation);
  return Status::OK();
}

const Relation& Instantiation::Get(RelId rel) const {
  VIEWCAP_CHECK(catalog_->HasRelation(rel));
  auto it = relations_.find(rel);
  if (it != relations_.end()) return it->second;
  auto [eit, inserted] =
      empties_.try_emplace(rel, Relation(catalog_->RelationScheme(rel)));
  (void)inserted;
  return eit->second;
}

Instantiation Instantiation::With(RelId rel, Relation relation) const {
  Instantiation copy = *this;
  copy.empties_.clear();
  Status st = copy.Set(rel, std::move(relation));
  VIEWCAP_CHECK(st.ok());
  return copy;
}

std::size_t Instantiation::TotalTuples() const {
  std::size_t n = 0;
  for (const auto& [rel, relation] : relations_) n += relation.size();
  return n;
}

std::string Instantiation::ToString() const {
  std::string out;
  for (const auto& [rel, relation] : relations_) {
    out += StrCat(catalog_->RelationName(rel), " = ",
                  relation.ToString(*catalog_));
  }
  return out;
}

}  // namespace viewcap
