#include "relation/attr_set.h"

#include <algorithm>

#include "base/check.h"

namespace viewcap {

namespace {

std::vector<AttrId> SortedUnique(std::vector<AttrId> attrs) {
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

}  // namespace

AttrSet::AttrSet(std::initializer_list<AttrId> attrs)
    : attrs_(SortedUnique(std::vector<AttrId>(attrs))) {}

AttrSet::AttrSet(std::vector<AttrId> attrs)
    : attrs_(SortedUnique(std::move(attrs))) {}

bool AttrSet::Contains(AttrId attr) const {
  return std::binary_search(attrs_.begin(), attrs_.end(), attr);
}

bool AttrSet::SubsetOf(const AttrSet& other) const {
  return std::includes(other.attrs_.begin(), other.attrs_.end(),
                       attrs_.begin(), attrs_.end());
}

bool AttrSet::ProperSubsetOf(const AttrSet& other) const {
  return size() < other.size() && SubsetOf(other);
}

AttrSet AttrSet::Union(const AttrSet& other) const {
  std::vector<AttrId> out;
  out.reserve(size() + other.size());
  std::set_union(attrs_.begin(), attrs_.end(), other.attrs_.begin(),
                 other.attrs_.end(), std::back_inserter(out));
  AttrSet result;
  result.attrs_ = std::move(out);
  return result;
}

AttrSet AttrSet::Intersect(const AttrSet& other) const {
  std::vector<AttrId> out;
  std::set_intersection(attrs_.begin(), attrs_.end(), other.attrs_.begin(),
                        other.attrs_.end(), std::back_inserter(out));
  AttrSet result;
  result.attrs_ = std::move(out);
  return result;
}

AttrSet AttrSet::Difference(const AttrSet& other) const {
  std::vector<AttrId> out;
  std::set_difference(attrs_.begin(), attrs_.end(), other.attrs_.begin(),
                      other.attrs_.end(), std::back_inserter(out));
  AttrSet result;
  result.attrs_ = std::move(out);
  return result;
}

void AttrSet::Insert(AttrId attr) {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), attr);
  if (it == attrs_.end() || *it != attr) attrs_.insert(it, attr);
}

std::size_t AttrSet::IndexOf(AttrId attr) const {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), attr);
  VIEWCAP_CHECK(it != attrs_.end() && *it == attr);
  return static_cast<std::size_t>(it - attrs_.begin());
}

std::vector<AttrSet> AttrSet::NonemptyProperSubsets() const {
  std::vector<AttrSet> out;
  const std::size_t n = size();
  VIEWCAP_CHECK(n < 31);
  const std::uint32_t full = (n == 0) ? 0 : ((1u << n) - 1);
  for (std::uint32_t mask = 1; mask < full; ++mask) {
    std::vector<AttrId> subset;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.push_back(attrs_[i]);
    }
    out.emplace_back(std::move(subset));
  }
  return out;
}

std::vector<AttrSet> AttrSet::NonemptySubsets() const {
  std::vector<AttrSet> out = NonemptyProperSubsets();
  if (!empty()) out.push_back(*this);
  return out;
}

}  // namespace viewcap
