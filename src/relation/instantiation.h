// Instantiations: assignments of finite relations to relation names
// (Section 1.1).
#ifndef VIEWCAP_RELATION_INSTANTIATION_H_
#define VIEWCAP_RELATION_INSTANTIATION_H_

#include <string>
#include <unordered_map>

#include "base/status.h"
#include "relation/catalog.h"
#include "relation/relation.h"

namespace viewcap {

/// A mapping alpha on relation names with alpha(eta) a relation on R(eta).
/// The paper's instantiations are total on the infinite name set; here every
/// name not explicitly Set() is implicitly the empty relation of its type,
/// which is the only finitely-representable reading and is faithful for all
/// queries (they mention finitely many names).
class Instantiation {
 public:
  /// Binds to `catalog` for name/type resolution. The catalog must outlive
  /// the instantiation.
  explicit Instantiation(const Catalog* catalog) : catalog_(catalog) {}

  /// Assigns alpha(rel) = relation. Fails unless the relation's scheme
  /// equals R(rel).
  Status Set(RelId rel, Relation relation);

  /// alpha(rel); the empty relation of type R(rel) when unset.
  const Relation& Get(RelId rel) const;

  /// Returns a copy with `rel` overridden (used for induced instantiations).
  Instantiation With(RelId rel, Relation relation) const;

  const Catalog& catalog() const { return *catalog_; }

  /// Names with explicit (possibly empty) assignments.
  const std::unordered_map<RelId, Relation>& assignments() const {
    return relations_;
  }

  /// Total tuple count over explicit assignments.
  std::size_t TotalTuples() const;

  std::string ToString() const;

 private:
  const Catalog* catalog_;
  std::unordered_map<RelId, Relation> relations_;
  // Cache of empty relations handed out by Get for unset names.
  mutable std::unordered_map<RelId, Relation> empties_;
};

}  // namespace viewcap

#endif  // VIEWCAP_RELATION_INSTANTIATION_H_
