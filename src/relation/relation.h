// Finite relations and the projection/join operators (Section 1.1).
#ifndef VIEWCAP_RELATION_RELATION_H_
#define VIEWCAP_RELATION_RELATION_H_

#include <string>
#include <vector>

#include "relation/tuple.h"

namespace viewcap {

/// A finite set of tuples over a common relation scheme. Stored as a sorted
/// unique vector for deterministic iteration and O(log n) membership.
class Relation {
 public:
  Relation() = default;

  /// Empty relation over `scheme`.
  explicit Relation(AttrSet scheme) : scheme_(std::move(scheme)) {}

  /// From tuples; all must share `scheme`. Duplicates are removed.
  Relation(AttrSet scheme, std::vector<Tuple> tuples);

  const AttrSet& scheme() const { return scheme_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

  /// Inserts `t` (scheme-checked); returns true when newly added.
  bool Insert(Tuple t);

  bool Contains(const Tuple& t) const;

  /// pi_X(I): the projection onto nonempty X subset of the scheme.
  Relation Project(const AttrSet& x) const;

  /// I |x| J: the natural join over the union scheme.
  static Relation NaturalJoin(const Relation& left, const Relation& right);

  /// n-ary join; `parts` must be nonempty.
  static Relation NaturalJoinAll(const std::vector<Relation>& parts);

  /// Multi-line rendering with a header row.
  std::string ToString(const Catalog& catalog) const;

  bool operator==(const Relation& other) const = default;

 private:
  AttrSet scheme_;
  std::vector<Tuple> tuples_;  // Sorted, unique.
};

}  // namespace viewcap

#endif  // VIEWCAP_RELATION_RELATION_H_
