#include "relation/generator.h"

#include "base/check.h"

namespace viewcap {

Symbol InstanceGenerator::RandomSymbol(AttrId attr, Random& rng) const {
  if (rng.Chance(options_.distinguished_probability)) {
    return Symbol::Distinguished(attr);
  }
  std::uint32_t ord =
      1 + static_cast<std::uint32_t>(rng.Next(options_.domain_size));
  return Symbol::Nondistinguished(attr, ord);
}

Relation InstanceGenerator::GenerateRelation(const AttrSet& scheme,
                                             Random& rng) const {
  VIEWCAP_CHECK(!scheme.empty());
  Relation out(scheme);
  for (std::size_t i = 0; i < options_.tuples_per_relation; ++i) {
    std::vector<Symbol> values;
    values.reserve(scheme.size());
    for (AttrId a : scheme) values.push_back(RandomSymbol(a, rng));
    out.Insert(Tuple(scheme, std::move(values)));
  }
  return out;
}

Instantiation InstanceGenerator::Generate(const DbSchema& schema,
                                          Random& rng) const {
  Instantiation alpha(catalog_);
  for (RelId rel : schema.relations()) {
    Status st =
        alpha.Set(rel, GenerateRelation(catalog_->RelationScheme(rel), rng));
    VIEWCAP_CHECK(st.ok());
  }
  return alpha;
}

}  // namespace viewcap
