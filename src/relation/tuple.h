// Tuples over a relation scheme (Section 1.1).
#ifndef VIEWCAP_RELATION_TUPLE_H_
#define VIEWCAP_RELATION_TUPLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/hash.h"
#include "relation/attr_set.h"
#include "relation/symbol.h"

namespace viewcap {

class Catalog;

/// A mapping t from a relation scheme R into the attribute domains with
/// t(A) in Dom(A). Stored as a symbol vector parallel to the scheme's
/// sorted attribute order.
class Tuple {
 public:
  Tuple() = default;

  /// Constructs a tuple over `scheme` with `values[i]` assigned to the i-th
  /// attribute in sorted order. Checks |values| == |scheme| and that each
  /// symbol belongs to its attribute's domain.
  Tuple(AttrSet scheme, std::vector<Symbol> values);

  /// The all-distinguished tuple 0_R over `scheme` (Section 2.1).
  static Tuple AllDistinguished(const AttrSet& scheme);

  const AttrSet& scheme() const { return scheme_; }
  std::size_t size() const { return values_.size(); }

  /// t(A). Precondition: scheme().Contains(attr).
  const Symbol& At(AttrId attr) const;

  /// Value by position in sorted scheme order.
  const Symbol& ValueAt(std::size_t index) const { return values_[index]; }
  void SetValueAt(std::size_t index, Symbol s);
  void Set(AttrId attr, Symbol s);

  /// The projection t[X] (Section 1.1). X must be a nonempty subset of the
  /// scheme.
  Tuple Project(const AttrSet& x) const;

  /// True when this tuple and `other` agree on every attribute their
  /// schemes share; the join of two relations keeps exactly the combined
  /// tuples whose components agree this way.
  bool AgreesWith(const Tuple& other) const;

  /// The combined tuple over the union scheme; preconditions:
  /// AgreesWith(other).
  Tuple CombineWith(const Tuple& other) const;

  /// Applies a valuation: each stored symbol s becomes map.at(s) when
  /// present in `map`, else stays (identity outside the map's domain).
  Tuple Apply(const SymbolMap& map) const;

  /// Attributes where the value is the distinguished symbol of that
  /// attribute.
  AttrSet DistinguishedAttrs() const;

  /// Render as e.g. "(0_A, b1, c2)".
  std::string ToString(const Catalog& catalog) const;

  bool operator==(const Tuple& other) const = default;
  bool operator<(const Tuple& other) const;

 private:
  AttrSet scheme_;
  std::vector<Symbol> values_;
};

struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    std::size_t seed = 0;
    for (AttrId a : t.scheme()) HashCombine(seed, a);
    for (std::size_t i = 0; i < t.size(); ++i) {
      HashCombine(seed, SymbolHash{}(t.ValueAt(i)));
    }
    return seed;
  }
};

}  // namespace viewcap

#endif  // VIEWCAP_RELATION_TUPLE_H_
