// Symbols: elements of the pairwise-disjoint attribute domains, including
// the distinguished symbol 0_A of each domain (Sections 1.1 and 2.1).
#ifndef VIEWCAP_RELATION_SYMBOL_H_
#define VIEWCAP_RELATION_SYMBOL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "base/hash.h"
#include "relation/ids.h"

namespace viewcap {

class Catalog;

/// One element of Dom(A) for some attribute A. Ordinal 0 is the
/// distinguished symbol 0_A; positive ordinals are nondistinguished.
/// Because the attribute id is part of the symbol, the disjointness of
/// domains across attributes (Section 1.1) holds by construction, and
/// valuations (f(a) in Dom(A) for a in Dom(A)) are maps that preserve the
/// attribute component.
struct Symbol {
  AttrId attr = kInvalidAttr;
  std::uint32_t ordinal = 0;

  /// The distinguished symbol 0_A of attribute `a`.
  static Symbol Distinguished(AttrId a) { return Symbol{a, 0}; }

  /// The `i`-th nondistinguished symbol of attribute `a` (i >= 1).
  static Symbol Nondistinguished(AttrId a, std::uint32_t i) {
    return Symbol{a, i};
  }

  bool IsDistinguished() const { return ordinal == 0; }

  bool operator==(const Symbol& other) const = default;
  bool operator<(const Symbol& other) const {
    return attr != other.attr ? attr < other.attr : ordinal < other.ordinal;
  }

  /// Debug/printer form: "0_A" for distinguished, "a3" style otherwise
  /// (lowercased attribute name + ordinal), given a catalog for names.
  std::string ToString(const Catalog& catalog) const;
};

struct SymbolHash {
  std::size_t operator()(const Symbol& s) const {
    std::size_t seed = std::hash<std::uint32_t>{}(s.attr);
    HashCombine(seed, std::hash<std::uint32_t>{}(s.ordinal));
    return seed;
  }
};

/// Map type used for valuations, homomorphisms and embeddings. All three
/// are (partial, finite) functions on symbols that fix the attribute
/// component; identity is assumed outside the stored domain.
using SymbolMap = std::unordered_map<Symbol, Symbol, SymbolHash>;

/// Mints fresh nondistinguished symbols per attribute. Counters only move
/// forward, so symbols minted by one pool never collide with each other.
/// Callers seeding a pool from an existing template must call Reserve so the
/// pool starts above every ordinal already in use.
class SymbolPool {
 public:
  SymbolPool() = default;

  /// Returns a brand-new nondistinguished symbol of attribute `attr`.
  Symbol Fresh(AttrId attr);

  /// Ensures future Fresh(attr) calls return ordinals > `ordinal`.
  void Reserve(AttrId attr, std::uint32_t ordinal);

  /// Convenience: reserve for every symbol in the map's key/value sets.
  void ReserveAll(const SymbolMap& map);

 private:
  std::unordered_map<AttrId, std::uint32_t> next_;
};

}  // namespace viewcap

#endif  // VIEWCAP_RELATION_SYMBOL_H_
