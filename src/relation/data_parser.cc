#include "relation/data_parser.h"

#include <cctype>
#include <map>
#include <unordered_map>

#include "base/strings.h"

namespace viewcap {

namespace {

bool IsValueChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.';
}

}  // namespace

Result<Instantiation> ParseInstance(const Catalog& catalog,
                                    std::string_view text) {
  Instantiation alpha(&catalog);
  std::unordered_map<RelId, Relation> relations;
  // Per-attribute interning of value tokens.
  std::map<std::pair<AttrId, std::string>, Symbol> interned;
  std::unordered_map<AttrId, std::uint32_t> next_ordinal;

  auto intern = [&](AttrId attr, const std::string& token) -> Symbol {
    if (token == "0") return Symbol::Distinguished(attr);
    auto [it, inserted] = interned.try_emplace({attr, token}, Symbol{});
    if (inserted) {
      it->second = Symbol::Nondistinguished(attr, ++next_ordinal[attr]);
    }
    return it->second;
  };

  int line_no = 1;
  std::size_t pos = 0;
  auto skip_space = [&] {
    while (pos < text.size()) {
      char c = text[pos];
      if (c == '\n') {
        ++line_no;
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '#') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  };
  auto error = [&](std::string what) {
    return Status::ParseError(StrCat(what, " at line ", line_no));
  };

  while (true) {
    skip_space();
    if (pos >= text.size()) break;
    // Relation name.
    std::string name;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_')) {
      name += text[pos++];
    }
    if (name.empty()) return error("expected a relation name");
    Result<RelId> rel = catalog.FindRelation(name);
    if (!rel.ok()) return error(StrCat("unknown relation '", name, "'"));
    const AttrSet& scheme = catalog.RelationScheme(*rel);

    skip_space();
    if (pos >= text.size() || text[pos] != '(') return error("expected '('");
    ++pos;
    std::vector<Symbol> values;
    std::size_t index = 0;
    for (AttrId attr : scheme) {
      skip_space();
      std::string token;
      while (pos < text.size() && IsValueChar(text[pos])) {
        token += text[pos++];
      }
      if (token.empty()) {
        return error(StrCat("expected a value for attribute ",
                            catalog.AttributeName(attr)));
      }
      values.push_back(intern(attr, token));
      skip_space();
      ++index;
      if (index < scheme.size()) {
        if (pos >= text.size() || text[pos] != ',') {
          return error(StrCat("expected ',' (arity of '", name, "' is ",
                              scheme.size(), ")"));
        }
        ++pos;
      }
    }
    skip_space();
    if (pos >= text.size() || text[pos] != ')') {
      return error(StrCat("expected ')' (arity of '", name, "' is ",
                          scheme.size(), ")"));
    }
    ++pos;
    skip_space();
    if (pos >= text.size() || text[pos] != ';') return error("expected ';'");
    ++pos;

    auto [it, inserted] = relations.try_emplace(*rel, Relation(scheme));
    it->second.Insert(Tuple(scheme, std::move(values)));
  }

  for (auto& [rel, relation] : relations) {
    VIEWCAP_RETURN_NOT_OK(alpha.Set(rel, std::move(relation)));
  }
  return alpha;
}

}  // namespace viewcap
