#include "relation/catalog.h"

#include <algorithm>

#include "base/check.h"
#include "base/strings.h"

namespace viewcap {

AttrId Catalog::AddAttribute(std::string_view name) {
  auto it = attr_index_.find(std::string(name));
  if (it != attr_index_.end()) return it->second;
  AttrId id = static_cast<AttrId>(attr_names_.size());
  attr_names_.emplace_back(name);
  attr_index_.emplace(std::string(name), id);
  return id;
}

Result<RelId> Catalog::AddRelation(std::string_view name, AttrSet scheme) {
  if (scheme.empty()) {
    return Status::IllFormed(
        StrCat("relation scheme for '", name, "' must be nonempty"));
  }
  for (AttrId a : scheme) {
    if (!HasAttribute(a)) {
      return Status::IllFormed(
          StrCat("relation '", name, "' uses unknown attribute id ", a));
    }
  }
  auto it = relation_index_.find(std::string(name));
  if (it != relation_index_.end()) {
    if (relation_schemes_[it->second] == scheme) return it->second;
    return Status::IllFormed(StrCat("relation '", name,
                                    "' already declared with another type"));
  }
  RelId id = static_cast<RelId>(relation_names_.size());
  relation_names_.emplace_back(name);
  relation_schemes_.push_back(std::move(scheme));
  relation_index_.emplace(std::string(name), id);
  return id;
}

Result<AttrId> Catalog::FindAttribute(std::string_view name) const {
  auto it = attr_index_.find(std::string(name));
  if (it == attr_index_.end()) {
    return Status::NotFound(StrCat("attribute '", name, "'"));
  }
  return it->second;
}

Result<RelId> Catalog::FindRelation(std::string_view name) const {
  auto it = relation_index_.find(std::string(name));
  if (it == relation_index_.end()) {
    return Status::NotFound(StrCat("relation '", name, "'"));
  }
  return it->second;
}

const std::string& Catalog::AttributeName(AttrId attr) const {
  VIEWCAP_CHECK(HasAttribute(attr));
  return attr_names_[attr];
}

const std::string& Catalog::RelationName(RelId rel) const {
  VIEWCAP_CHECK(HasRelation(rel));
  return relation_names_[rel];
}

const AttrSet& Catalog::RelationScheme(RelId rel) const {
  VIEWCAP_CHECK(HasRelation(rel));
  return relation_schemes_[rel];
}

AttrSet Catalog::MakeScheme(std::initializer_list<std::string_view> names) {
  std::vector<AttrId> attrs;
  attrs.reserve(names.size());
  for (std::string_view n : names) attrs.push_back(AddAttribute(n));
  return AttrSet(std::move(attrs));
}

RelId Catalog::MintRelation(std::string_view prefix, const AttrSet& scheme) {
  for (std::size_t n = relation_names_.size();; ++n) {
    std::string name = StrCat(prefix, n);
    if (relation_index_.find(name) == relation_index_.end()) {
      Result<RelId> rel = AddRelation(name, scheme);
      VIEWCAP_CHECK(rel.ok());
      return *rel;
    }
  }
}

AttrSet Catalog::Universe(const std::vector<RelId>& rels) const {
  AttrSet u;
  for (RelId r : rels) u = u.Union(RelationScheme(r));
  return u;
}

DbSchema::DbSchema(const Catalog& catalog, std::vector<RelId> rels)
    : rels_(std::move(rels)) {
  std::sort(rels_.begin(), rels_.end());
  rels_.erase(std::unique(rels_.begin(), rels_.end()), rels_.end());
  universe_ = catalog.Universe(rels_);
}

bool DbSchema::Contains(RelId rel) const {
  return std::binary_search(rels_.begin(), rels_.end(), rel);
}

}  // namespace viewcap
