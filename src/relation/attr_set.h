// AttrSet: a finite set of attributes, i.e. a relation scheme (Section 1.1).
#ifndef VIEWCAP_RELATION_ATTR_SET_H_
#define VIEWCAP_RELATION_ATTR_SET_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "relation/ids.h"

namespace viewcap {

/// An immutable-ish sorted set of AttrIds. Used for relation schemes,
/// target relation schemes (TRS) and projection lists. Kept as a sorted
/// unique vector: schemes in this domain are tiny (a handful of attributes)
/// and iteration order matters for tuple layouts.
class AttrSet {
 public:
  /// Empty set. Note: a relation *scheme* must be nonempty; emptiness is
  /// checked at the call sites that require a scheme.
  AttrSet() = default;

  /// From an arbitrary list; duplicates are removed.
  AttrSet(std::initializer_list<AttrId> attrs);
  explicit AttrSet(std::vector<AttrId> attrs);

  bool empty() const { return attrs_.empty(); }
  std::size_t size() const { return attrs_.size(); }

  /// Membership test (binary search).
  bool Contains(AttrId attr) const;

  /// True when every attribute of this set is in `other`.
  bool SubsetOf(const AttrSet& other) const;

  /// True when this is a subset of `other` and not equal to it.
  bool ProperSubsetOf(const AttrSet& other) const;

  /// Set union / intersection / difference.
  AttrSet Union(const AttrSet& other) const;
  AttrSet Intersect(const AttrSet& other) const;
  AttrSet Difference(const AttrSet& other) const;

  /// Adds one attribute (no-op if present).
  void Insert(AttrId attr);

  /// Position of `attr` in sorted order; kInvalidAttr-safe callers only.
  /// Precondition: Contains(attr).
  std::size_t IndexOf(AttrId attr) const;

  /// All subsets of this set that are nonempty *proper* subsets, in
  /// deterministic order. Used for proper projections (Section 4.1).
  std::vector<AttrSet> NonemptyProperSubsets() const;

  /// All nonempty subsets (including the set itself).
  std::vector<AttrSet> NonemptySubsets() const;

  const std::vector<AttrId>& attrs() const { return attrs_; }
  auto begin() const { return attrs_.begin(); }
  auto end() const { return attrs_.end(); }

  bool operator==(const AttrSet& other) const = default;
  /// Lexicographic order, usable as a map key.
  bool operator<(const AttrSet& other) const { return attrs_ < other.attrs_; }

 private:
  std::vector<AttrId> attrs_;
};

}  // namespace viewcap

#endif  // VIEWCAP_RELATION_ATTR_SET_H_
