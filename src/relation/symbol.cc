#include "relation/symbol.h"

#include <algorithm>
#include <cctype>

#include "base/strings.h"
#include "relation/catalog.h"

namespace viewcap {

std::string Symbol::ToString(const Catalog& catalog) const {
  const std::string& attr_name = catalog.HasAttribute(attr)
                                     ? catalog.AttributeName(attr)
                                     : StrCat("#", attr);
  if (IsDistinguished()) return StrCat("0_", attr_name);
  std::string lowered = attr_name;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return StrCat(lowered, ordinal);
}

Symbol SymbolPool::Fresh(AttrId attr) {
  std::uint32_t& next = next_[attr];
  if (next == 0) next = 1;
  return Symbol::Nondistinguished(attr, next++);
}

void SymbolPool::Reserve(AttrId attr, std::uint32_t ordinal) {
  std::uint32_t& next = next_[attr];
  if (next <= ordinal) next = ordinal + 1;
}

void SymbolPool::ReserveAll(const SymbolMap& map) {
  for (const auto& [from, to] : map) {
    Reserve(from.attr, from.ordinal);
    Reserve(to.attr, to.ordinal);
  }
}

}  // namespace viewcap
