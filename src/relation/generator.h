// Random database instance generation for property tests and benchmarks.
#ifndef VIEWCAP_RELATION_GENERATOR_H_
#define VIEWCAP_RELATION_GENERATOR_H_

#include "base/random.h"
#include "relation/instantiation.h"

namespace viewcap {

/// Tuning knobs for InstanceGenerator.
struct InstanceOptions {
  /// Tuples drawn per relation (before dedup).
  std::size_t tuples_per_relation = 6;
  /// Active domain size per attribute; small values force value sharing
  /// across relations, which is what makes joins and embeddings nontrivial.
  std::uint32_t domain_size = 4;
  /// Probability that a generated cell is the distinguished symbol 0_A,
  /// exercising the distinguished/nondistinguished distinction end to end.
  double distinguished_probability = 0.1;
};

/// Produces random instantiations of a database schema.
class InstanceGenerator {
 public:
  InstanceGenerator(const Catalog* catalog, InstanceOptions options)
      : catalog_(catalog), options_(options) {}

  /// A random relation over `scheme`.
  Relation GenerateRelation(const AttrSet& scheme, Random& rng) const;

  /// A random instantiation assigning every relation in `schema`.
  Instantiation Generate(const DbSchema& schema, Random& rng) const;

 private:
  Symbol RandomSymbol(AttrId attr, Random& rng) const;

  const Catalog* catalog_;
  InstanceOptions options_;
};

}  // namespace viewcap

#endif  // VIEWCAP_RELATION_GENERATOR_H_
