#include "relation/tuple.h"

#include <algorithm>

#include "base/check.h"
#include "base/strings.h"
#include "relation/catalog.h"

namespace viewcap {

Tuple::Tuple(AttrSet scheme, std::vector<Symbol> values)
    : scheme_(std::move(scheme)), values_(std::move(values)) {
  VIEWCAP_CHECK(scheme_.size() == values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    VIEWCAP_CHECK(values_[i].attr == scheme_.attrs()[i]);
  }
}

Tuple Tuple::AllDistinguished(const AttrSet& scheme) {
  std::vector<Symbol> values;
  values.reserve(scheme.size());
  for (AttrId a : scheme) values.push_back(Symbol::Distinguished(a));
  return Tuple(scheme, std::move(values));
}

const Symbol& Tuple::At(AttrId attr) const {
  return values_[scheme_.IndexOf(attr)];
}

void Tuple::SetValueAt(std::size_t index, Symbol s) {
  VIEWCAP_CHECK(index < values_.size());
  VIEWCAP_CHECK(s.attr == scheme_.attrs()[index]);
  values_[index] = s;
}

void Tuple::Set(AttrId attr, Symbol s) {
  SetValueAt(scheme_.IndexOf(attr), s);
}

Tuple Tuple::Project(const AttrSet& x) const {
  VIEWCAP_CHECK(!x.empty());
  VIEWCAP_CHECK(x.SubsetOf(scheme_));
  std::vector<Symbol> values;
  values.reserve(x.size());
  for (AttrId a : x) values.push_back(At(a));
  return Tuple(x, std::move(values));
}

bool Tuple::AgreesWith(const Tuple& other) const {
  AttrSet shared = scheme_.Intersect(other.scheme_);
  for (AttrId a : shared) {
    if (At(a) != other.At(a)) return false;
  }
  return true;
}

Tuple Tuple::CombineWith(const Tuple& other) const {
  VIEWCAP_DCHECK(AgreesWith(other));
  AttrSet combined = scheme_.Union(other.scheme_);
  std::vector<Symbol> values;
  values.reserve(combined.size());
  for (AttrId a : combined) {
    values.push_back(scheme_.Contains(a) ? At(a) : other.At(a));
  }
  return Tuple(combined, std::move(values));
}

Tuple Tuple::Apply(const SymbolMap& map) const {
  std::vector<Symbol> values = values_;
  for (Symbol& s : values) {
    auto it = map.find(s);
    if (it != map.end()) s = it->second;
  }
  return Tuple(scheme_, std::move(values));
}

AttrSet Tuple::DistinguishedAttrs() const {
  AttrSet out;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].IsDistinguished()) out.Insert(scheme_.attrs()[i]);
  }
  return out;
}

std::string Tuple::ToString(const Catalog& catalog) const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Symbol& s : values_) parts.push_back(s.ToString(catalog));
  return StrCat("(", StrJoin(parts, ", "), ")");
}

bool Tuple::operator<(const Tuple& other) const {
  if (scheme_ != other.scheme_) return scheme_ < other.scheme_;
  return values_ < other.values_;
}

}  // namespace viewcap
