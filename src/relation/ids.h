// Integral identifiers for interned catalog entities.
#ifndef VIEWCAP_RELATION_IDS_H_
#define VIEWCAP_RELATION_IDS_H_

#include <cstdint>

namespace viewcap {

/// Identifier of an interned attribute (index into Catalog's attribute
/// table). Attribute domains are pairwise disjoint (Section 1.1), which the
/// Symbol representation guarantees by carrying its AttrId.
using AttrId = std::uint32_t;

/// Identifier of an interned relation name. Both base database relation
/// names and view relation names live in the same space, exactly as the
/// paper draws both from the single infinite set RN_U.
using RelId = std::uint32_t;

/// Sentinel for "no attribute" / "no relation".
inline constexpr AttrId kInvalidAttr = static_cast<AttrId>(-1);
inline constexpr RelId kInvalidRel = static_cast<RelId>(-1);

}  // namespace viewcap

#endif  // VIEWCAP_RELATION_IDS_H_
