// Catalog: interning of attribute and relation names with their types.
#ifndef VIEWCAP_RELATION_CATALOG_H_
#define VIEWCAP_RELATION_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "relation/attr_set.h"
#include "relation/ids.h"

namespace viewcap {

/// The naming environment: attributes (with implicitly infinite domains)
/// and relation names with their types R(eta) (Section 1.1). The paper's
/// assumption of infinitely many relation names per type is realized by
/// AddRelation being callable at any time; views mint their schema names
/// here too.
class Catalog {
 public:
  Catalog() = default;

  /// Interns attribute `name`; returns the existing id when already known.
  AttrId AddAttribute(std::string_view name);

  /// Interns relation `name` of type `scheme`. Fails with IllFormed when the
  /// name exists with a different type or the scheme is empty.
  Result<RelId> AddRelation(std::string_view name, AttrSet scheme);

  /// Lookup; NotFound when absent.
  Result<AttrId> FindAttribute(std::string_view name) const;
  Result<RelId> FindRelation(std::string_view name) const;

  /// True when `rel` has been interned.
  bool HasRelation(RelId rel) const { return rel < relation_names_.size(); }
  bool HasAttribute(AttrId attr) const { return attr < attr_names_.size(); }

  /// Name/type accessors. Ids must be valid.
  const std::string& AttributeName(AttrId attr) const;
  const std::string& RelationName(RelId rel) const;
  const AttrSet& RelationScheme(RelId rel) const;

  std::size_t num_attributes() const { return attr_names_.size(); }
  std::size_t num_relations() const { return relation_names_.size(); }

  /// Builds an AttrSet from attribute names, interning new ones.
  AttrSet MakeScheme(std::initializer_list<std::string_view> names);

  /// Interns a relation under a fresh name "<prefix><n>" (the paper's
  /// assumption of infinitely many relation names of every type). Used by
  /// the closure machinery to mint handles for query-set members and by
  /// Simplify for the relations of the normal form.
  RelId MintRelation(std::string_view prefix, const AttrSet& scheme);

  /// The union of the types of `rels` (the universe U of a database schema
  /// over U, Section 1.1).
  AttrSet Universe(const std::vector<RelId>& rels) const;

 private:
  std::vector<std::string> attr_names_;
  std::unordered_map<std::string, AttrId> attr_index_;
  std::vector<std::string> relation_names_;
  std::vector<AttrSet> relation_schemes_;
  std::unordered_map<std::string, RelId> relation_index_;
};

/// A database schema: a finite nonempty set of relation names (Section
/// 1.1). Thin value type over the catalog.
class DbSchema {
 public:
  DbSchema() = default;
  DbSchema(const Catalog& catalog, std::vector<RelId> rels);

  const std::vector<RelId>& relations() const { return rels_; }
  const AttrSet& universe() const { return universe_; }
  bool Contains(RelId rel) const;
  std::size_t size() const { return rels_.size(); }

 private:
  std::vector<RelId> rels_;
  AttrSet universe_;
};

}  // namespace viewcap

#endif  // VIEWCAP_RELATION_CATALOG_H_
