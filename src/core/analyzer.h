// Analyzer: a convenience facade over the whole library, driven by the
// textual program syntax (see algebra/parser.h).
#ifndef VIEWCAP_CORE_ANALYZER_H_
#define VIEWCAP_CORE_ANALYZER_H_

#include <map>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "tableau/recognize.h"
#include "views/compose.h"
#include "views/equivalence.h"
#include "views/redundancy.h"
#include "views/simplify.h"

namespace viewcap {

/// Owns a catalog plus the base schema and views declared by a program and
/// exposes the paper's decision procedures by view name. Intended for the
/// CLI and the examples; library users composing pipelines should use the
/// layer APIs directly.
class Analyzer {
 public:
  Analyzer()
      : catalog_(std::make_unique<Catalog>()),
        engine_(std::make_unique<Engine>(catalog_.get())) {}

  /// Parses `program` (schema and view blocks) into this analyzer.
  /// All relation names across calls share one catalog.
  Status Load(std::string_view program);

  Catalog& catalog() { return *catalog_; }
  const DbSchema& base() const { return base_; }

  /// The memoizing engine shared by every decision procedure this analyzer
  /// runs: repeated questions about the same views hit its caches.
  Engine& engine() { return *engine_; }

  /// Consistent snapshot of the shared engine's cache and interning
  /// counters (Engine::StatsSnapshot).
  EngineStats engine_stats() const { return engine_->StatsSnapshot(); }

  /// The names of loaded views, in load order.
  std::vector<std::string> ViewNames() const;

  /// Fails with NotFound for unknown names.
  Result<const View*> GetView(const std::string& name) const;

  // Every decision method below exists in two forms: the historical one
  // reading this analyzer's member limits(), and an explicit-limits
  // overload taking the SearchLimits per call. The explicit form is what
  // the service layer's shared-lock handlers use — per-request limits
  // without mutating analyzer state (see service/workspace.h).

  /// Theorem 2.4.12. Also renders a human-readable report into `*report`
  /// when non-null (witnessing expressions, missing queries).
  Result<EquivalenceResult> CheckEquivalence(const std::string& left,
                                             const std::string& right,
                                             std::string* report = nullptr);
  Result<EquivalenceResult> CheckEquivalence(const std::string& left,
                                             const std::string& right,
                                             const SearchLimits& limits,
                                             std::string* report = nullptr);

  /// Theorem 2.4.11: is `query_text` (an expression over the base schema)
  /// answerable through view `name`?
  Result<MembershipResult> CheckAnswerable(const std::string& name,
                                           const std::string& query_text,
                                           std::string* report = nullptr);
  Result<MembershipResult> CheckAnswerable(const std::string& name,
                                           const std::string& query_text,
                                           const SearchLimits& limits,
                                           std::string* report = nullptr);

  /// Theorem 3.1.4: redundancy elimination; registers the result as
  /// "<name>_nr".
  Result<NonredundantViewResult> EliminateRedundancy(
      const std::string& name, std::string* report = nullptr);
  Result<NonredundantViewResult> EliminateRedundancy(
      const std::string& name, const SearchLimits& limits,
      std::string* report = nullptr);

  /// Theorem 4.1.3: normalization; registers the result as "<name>_simplified".
  Result<SimplifyOutcome> SimplifyView(const std::string& name,
                                       std::string* report = nullptr);
  Result<SimplifyOutcome> SimplifyView(const std::string& name,
                                       const SearchLimits& limits,
                                       std::string* report = nullptr);

  /// One cell of the pairwise dominance classification.
  struct LatticeEntry {
    std::string left;
    std::string right;
    bool left_dominates_right = false;
    bool right_dominates_left = false;
    bool inconclusive = false;
  };

  /// Classifies every pair of loaded views by dominance (Lemma 1.5.4);
  /// equivalence is mutual dominance. Renders a matrix into `*report`.
  Result<std::vector<LatticeEntry>> CompareAllViews(
      std::string* report = nullptr);
  Result<std::vector<LatticeEntry>> CompareAllViews(
      const SearchLimits& limits, std::string* report = nullptr);

  /// Tableau minimization of a base-schema expression (the reference [2]
  /// application): returns an equivalent expression with the fewest leaf
  /// occurrences found.
  Result<MinimizeResult> MinimizeQuery(const std::string& expr_text,
                                       std::string* report = nullptr);
  Result<MinimizeResult> MinimizeQuery(const std::string& expr_text,
                                       const SearchLimits& limits,
                                       std::string* report = nullptr);

  /// Flattens view `outer` (defined over `inner`'s schema... i.e. whose
  /// queries mention only `inner`'s view relations) into a view over the
  /// base; registers it as "<outer>_over_<inner>".
  Result<const View*> ComposeViews(const std::string& inner,
                                   const std::string& outer,
                                   std::string* report = nullptr);

  /// Renders a loaded view back into program syntax (see ExportProgram).
  Result<std::string> ExportView(const std::string& name) const;

  /// Materializes the distinct members of Cap(view) derivable with at most
  /// `max_leaves` view-query leaves (CapacityOracle::EnumerateCapacity);
  /// renders one line per member into `*report`.
  Result<std::vector<CapacityOracle::CapacityEntry>> EnumerateViewCapacity(
      const std::string& name, std::size_t max_leaves,
      std::size_t max_entries = 256, std::string* report = nullptr);
  Result<std::vector<CapacityOracle::CapacityEntry>> EnumerateViewCapacity(
      const std::string& name, std::size_t max_leaves,
      const SearchLimits& limits, std::size_t max_entries = 256,
      std::string* report = nullptr);

  /// Evaluates a view-schema query against a concrete database instance
  /// (`data_text` in the relation/data_parser.h format): computes the
  /// Theorem 1.4.2 surrogate and runs it on the base engine. The rendered
  /// result relation goes to `*report` when non-null.
  Result<Relation> EvaluateViewQuery(const std::string& view_name,
                                     const std::string& query_text,
                                     const std::string& data_text,
                                     std::string* report = nullptr);

  /// Tuning for all decision procedures run by this analyzer.
  void set_limits(SearchLimits limits) { limits_ = limits; }
  const SearchLimits& limits() const { return limits_; }

 private:
  Status RegisterView(View view, const std::string& name);

  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Engine> engine_;  // Over *catalog_; shared by all commands.
  DbSchema base_;
  std::vector<RelId> base_rels_;
  std::map<std::string, View> views_;
  std::vector<std::string> view_order_;
  SearchLimits limits_;
};

}  // namespace viewcap

#endif  // VIEWCAP_CORE_ANALYZER_H_
