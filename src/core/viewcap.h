// viewcap: equivalence of views by query capacity.
//
// Single public entry header. The library implements Tim Connors,
// "Equivalence of Views by Query Capacity" (PODS 1985 / JCSS 33, 1986):
// projection-join views of multirelational databases, the query-capacity
// measure, decidable view equivalence, redundancy elimination, and the
// simplified-view normal form.
//
// Layer map (each header is self-contained and usable directly):
//   relation/  attributes, schemes, symbols, tuples, relations, instances
//   algebra/   m.r. expressions, evaluation, expansion, parser, printer
//   tableau/   templates, Algorithm 2.1.1, homomorphisms, reduction,
//              substitution, canonical keys, counterexample search
//   engine/    memoizing closure engine: interned template classes plus
//              shared decision caches for the hot kernels
//   views/     views, capacity oracle, equivalence, redundancy,
//              essential tuples, simplification
//   core/      the Analyzer convenience facade
#ifndef VIEWCAP_CORE_VIEWCAP_H_
#define VIEWCAP_CORE_VIEWCAP_H_

#include "algebra/enumerator.h"
#include "algebra/eval.h"
#include "algebra/expand.h"
#include "algebra/expr.h"
#include "algebra/parser.h"
#include "algebra/printer.h"
#include "base/random.h"
#include "base/status.h"
#include "core/analyzer.h"
#include "core/report.h"
#include "engine/engine.h"
#include "relation/attr_set.h"
#include "relation/catalog.h"
#include "relation/data_parser.h"
#include "relation/generator.h"
#include "relation/instantiation.h"
#include "relation/relation.h"
#include "relation/symbol.h"
#include "relation/tuple.h"
#include "tableau/build.h"
#include "tableau/canonical.h"
#include "tableau/counterexample.h"
#include "tableau/evaluate.h"
#include "tableau/hom_kernel.h"
#include "tableau/homomorphism.h"
#include "tableau/recognize.h"
#include "tableau/soa.h"
#include "tableau/reduce.h"
#include "tableau/substitution.h"
#include "tableau/tableau.h"
#include "views/capacity.h"
#include "views/components.h"
#include "views/compose.h"
#include "views/equivalence.h"
#include "views/essential.h"
#include "views/redundancy.h"
#include "views/simplify.h"
#include "views/view.h"

#endif  // VIEWCAP_CORE_VIEWCAP_H_
