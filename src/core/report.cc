#include "core/report.h"

#include "algebra/printer.h"
#include "base/strings.h"
#include "views/components.h"
#include "views/redundancy.h"
#include "views/simplify.h"

namespace viewcap {

namespace {

std::string SchemeNames(const Catalog& catalog, const AttrSet& scheme) {
  std::vector<std::string> names;
  for (AttrId a : scheme) names.push_back(catalog.AttributeName(a));
  return StrJoin(names, ", ");
}

}  // namespace

std::string RenderHitRate(std::size_t hits, std::size_t total) {
  if (total == 0) return "n/a";
  // Integer permille, so the rendering is identical on every platform
  // (no floating-point formatting).
  const std::size_t permille = (hits * 1000 + total / 2) / total;
  return StrCat(permille / 10, ".", permille % 10, "%");
}

std::string RenderEngineStats(const EngineStats& stats) {
  std::string out = "## Engine statistics\n\n";
  out += StrCat("Interned template classes: ", stats.interned_classes, " (",
                stats.intern_requests, " requests, ", stats.intern_hits,
                " hits, ", stats.equivalence_confirms,
                " equivalence confirms)\n\n");
  out += "| cache | requests | hits | hit rate | runs | entries |"
         " evictions |\n";
  out += "|---|---|---|---|---|---|---|\n";
  auto row = [&](const char* name, const CacheCounters& c) {
    out += StrCat("| ", name, " | ", c.requests, " | ", c.hits(), " | ",
                  RenderHitRate(c.hits(), c.requests), " | ", c.runs, " | ",
                  c.entries, " | ", c.evictions, " |\n");
  };
  row("reduce", stats.reduce);
  row("canonical-key", stats.canonical_key);
  row("homomorphism", stats.homomorphism);
  row("row-embedding", stats.row_embedding);
  row("expansion", stats.expansion);
  row("verdict", stats.verdict);
  row("dominance", stats.dominance);
  // Candidate-filter activity of the kernel searches, per SIMD backend.
  // Only backends that actually ran get a row (one engine accumulates in
  // exactly one slot), so a scalar-only run prints a single scalar row
  // and a fresh engine prints the header alone.
  std::string filter_rows;
  for (std::size_t b = 0; b < kNumSimdBackends; ++b) {
    const FilterBackendCounters& f = stats.filter[b];
    if (f.invocations == 0) continue;
    filter_rows += StrCat(
        "| ", SimdBackendName(static_cast<SimdBackend>(b)), " | ",
        f.invocations, " | ", f.rows, " | ", f.survivors, " | ",
        RenderHitRate(f.survivors, f.rows), " |\n");
  }
  out += "\n### Candidate filter\n\n";
  out += "| backend | invocations | rows | survivors | survivor rate |\n";
  out += "|---|---|---|---|---|\n";
  out += filter_rows;
  return out;
}

std::string RenderIndexStats(const IndexStats& stats) {
  std::string out = "## Capacity index statistics\n\n";
  out += "| lookup | requests | hits | hit rate | fallbacks |\n";
  out += "|---|---|---|---|---|\n";
  out += StrCat("| membership | ", stats.membership_lookups, " | ",
                stats.membership_hits, " | ",
                RenderHitRate(stats.membership_hits,
                              stats.membership_lookups),
                " | ", stats.membership_fallbacks(), " |\n");
  out += StrCat("| dominance | ", stats.dominance_lookups, " | ",
                stats.dominance_hits, " | ",
                RenderHitRate(stats.dominance_hits, stats.dominance_lookups),
                " | ", stats.dominance_fallbacks(), " |\n");
  out += StrCat("\nLimit mismatches (served live): ", stats.limit_mismatches,
                "\n");
  return out;
}

Result<std::string> RenderReport(Analyzer& analyzer,
                                 const ReportOptions& options) {
  Catalog& catalog = analyzer.catalog();
  Engine& engine = analyzer.engine();
  std::string out = "# viewcap analysis report\n\n";

  // ---- Schema. ----------------------------------------------------------
  out += "## Underlying database schema\n\n";
  for (RelId rel : analyzer.base().relations()) {
    out += StrCat("* `", catalog.RelationName(rel), "(",
                  SchemeNames(catalog, catalog.RelationScheme(rel)),
                  ")`\n");
  }
  out += "\n";

  // ---- Per-view analysis. ------------------------------------------------
  const std::vector<std::string> names = analyzer.ViewNames();
  for (const std::string& name : names) {
    VIEWCAP_ASSIGN_OR_RETURN(const View* view, analyzer.GetView(name));
    out += StrCat("## View `", name, "`\n\n");
    QuerySet set = QuerySet::FromView(*view);

    out += "| relation | defining query | rows (reduced) | components |"
           " redundant | simple |\n";
    out += "|---|---|---|---|---|---|\n";
    for (std::size_t i = 0; i < view->size(); ++i) {
      const ViewDefinition& d = view->definitions()[i];
      Tableau reduced = engine.Reduced(d.tableau);
      VIEWCAP_ASSIGN_OR_RETURN(
          RedundancyResult redundancy,
          IsRedundant(engine, set, i, analyzer.limits()));
      VIEWCAP_ASSIGN_OR_RETURN(
          SimplicityResult simplicity,
          IsSimple(engine, &catalog, set, i, analyzer.limits()));
      auto verdict = [](bool yes, bool budget) {
        return std::string(yes ? "yes" : "no") +
               (budget ? " (budget)" : "");
      };
      out += StrCat(
          "| `", catalog.RelationName(d.rel), "` | `",
          ToString(*d.query, catalog), "` | ", d.tableau.size(), " (",
          reduced.size(), ") | ", ConnectedComponents(reduced).size(),
          " | ",
          verdict(redundancy.redundant,
                  redundancy.membership.budget_exhausted),
          " | ",
          verdict(simplicity.simple,
                  simplicity.membership.budget_exhausted),
          " |\n");
    }
    out += StrCat("\nNonredundant-equivalent size bound (Lemma 3.1.6): ",
                  NonredundantSizeBound(engine, set), "\n\n");

    if (options.include_normal_forms) {
      VIEWCAP_ASSIGN_OR_RETURN(
          SimplifyOutcome simplified,
          Simplify(engine, &catalog, *view, analyzer.limits()));
      out += StrCat("Simplified normal form (", simplified.view.size(),
                    " definitions, ", simplified.rounds, " rounds",
                    simplified.inconclusive ? ", budget-limited" : "",
                    "):\n\n");
      for (const ViewDefinition& d : simplified.view.definitions()) {
        out += StrCat("* `", ToString(*d.query, catalog), "`\n");
      }
      out += "\n";
    }

    if (options.capacity_leaves > 0) {
      CapacityOracle oracle(&engine, *view, analyzer.limits());
      VIEWCAP_ASSIGN_OR_RETURN(
          std::vector<CapacityOracle::CapacityEntry> entries,
          oracle.EnumerateCapacity(options.capacity_leaves,
                                   options.capacity_entries));
      out += StrCat("Capacity fragment (<= ", options.capacity_leaves,
                    " leaves): ", entries.size(),
                    " distinct query classes\n\n");
    }
  }

  // ---- Lattice. -----------------------------------------------------------
  if (options.include_lattice && names.size() > 1) {
    out += "## Pairwise dominance\n\n";
    std::string lattice;
    VIEWCAP_ASSIGN_OR_RETURN(auto entries,
                             analyzer.CompareAllViews(&lattice));
    (void)entries;
    out += lattice;
    out += "\n";
  }

  if (options.include_engine_stats) {
    out += RenderEngineStats(analyzer.engine_stats());
  }
  return out;
}

}  // namespace viewcap
