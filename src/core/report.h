// Whole-program analysis reports: a markdown audit of every loaded view.
#ifndef VIEWCAP_CORE_REPORT_H_
#define VIEWCAP_CORE_REPORT_H_

#include <string>

#include "core/analyzer.h"
#include "index/index_reader.h"

namespace viewcap {

/// Report tuning.
struct ReportOptions {
  /// Leaf budget for the capacity-fragment section (0 disables it).
  std::size_t capacity_leaves = 2;
  /// Cap on enumerated capacity members per view.
  std::size_t capacity_entries = 64;
  /// Include the simplified normal form of each view.
  bool include_normal_forms = true;
  /// Include the pairwise dominance classification.
  bool include_lattice = true;
  /// Append the shared engine's cache statistics (interned classes, memo
  /// hit rates) as a final section.
  bool include_engine_stats = false;
};

/// Renders an EngineStats snapshot as a markdown table (one row per cache,
/// plus the interning summary). Used by the report's optional stats section
/// and by the CLI's --engine-stats flag.
std::string RenderEngineStats(const EngineStats& stats);

/// Renders an attached capacity index's serving counters (hits, derived
/// hit rates, fallbacks) as a markdown table. Appended to the stats
/// surfaces only when an index is attached.
std::string RenderIndexStats(const IndexStats& stats);

/// "87.5%"-style ratio with one decimal, or "n/a" when `total` is zero.
/// Integer arithmetic only, so renderings are platform-identical.
std::string RenderHitRate(std::size_t hits, std::size_t total);

/// Renders a markdown report over every view loaded into `analyzer`:
/// the schema, per-view structural statistics (reduced template sizes,
/// connected components), redundancy and simplicity verdicts with
/// witnesses, the simplified normal form, the pairwise dominance lattice,
/// and the size-bounded capacity fragment. Runs the full decision
/// machinery; budget-limited verdicts are annotated.
Result<std::string> RenderReport(Analyzer& analyzer,
                                 const ReportOptions& options = {});

}  // namespace viewcap

#endif  // VIEWCAP_CORE_REPORT_H_
