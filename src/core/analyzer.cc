#include "core/analyzer.h"

#include "algebra/eval.h"
#include "algebra/expand.h"
#include "algebra/parser.h"
#include "algebra/printer.h"
#include "base/source.h"
#include "base/strings.h"
#include "relation/data_parser.h"

namespace viewcap {

Status Analyzer::Load(std::string_view program) {
  VIEWCAP_ASSIGN_OR_RETURN(ParsedProgram parsed,
                           ParseProgram(*catalog_, program));
  base_rels_.insert(base_rels_.end(), parsed.base_relations.begin(),
                    parsed.base_relations.end());
  base_ = DbSchema(*catalog_, base_rels_);
  // Queries may reference the relations of previously declared views
  // (views of views, Section 1.3); they are flattened to base-level
  // queries by Lemma 1.4.1 expansion at load time. Registered definitions
  // are always base-level, so one expansion pass reaches a fixpoint.
  Definitions known;
  for (const auto& [name, view] : views_) {
    for (const ViewDefinition& d : view.definitions()) {
      known.emplace(d.rel, d.query);
    }
  }
  for (ParsedView& pv : parsed.views) {
    std::vector<std::pair<RelId, ExprPtr>> defs;
    defs.reserve(pv.definitions.size());
    for (ParsedDefinition& d : pv.definitions) {
      VIEWCAP_ASSIGN_OR_RETURN(ExprPtr flattened,
                               Expand(*catalog_, d.query, known));
      defs.push_back({d.view_rel, std::move(flattened)});
    }
    Result<View> created =
        View::Create(catalog_.get(), base_, std::move(defs), pv.name);
    if (!created.ok()) {
      return Status(created.status().code(),
                    StrCat(created.status().message(), " (view '", pv.name,
                           "' at ", ToString(pv.name_span), ")"));
    }
    View view = std::move(created).value();
    for (const ViewDefinition& d : view.definitions()) {
      known.emplace(d.rel, d.query);
    }
    VIEWCAP_RETURN_NOT_OK(RegisterView(std::move(view), pv.name));
  }
  return Status::OK();
}

Status Analyzer::RegisterView(View view, const std::string& name) {
  if (views_.count(name) > 0) {
    return Status::IllFormed(StrCat("view '", name, "' already defined"));
  }
  view.set_name(name);
  views_.emplace(name, std::move(view));
  view_order_.push_back(name);
  return Status::OK();
}

std::vector<std::string> Analyzer::ViewNames() const { return view_order_; }

Result<const View*> Analyzer::GetView(const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound(StrCat("view '", name, "'"));
  }
  return &it->second;
}

Result<EquivalenceResult> Analyzer::CheckEquivalence(const std::string& left,
                                                     const std::string& right,
                                                     std::string* report) {
  return CheckEquivalence(left, right, limits_, report);
}

Result<EquivalenceResult> Analyzer::CheckEquivalence(const std::string& left,
                                                     const std::string& right,
                                                     const SearchLimits& limits,
                                                     std::string* report) {
  VIEWCAP_ASSIGN_OR_RETURN(const View* v, GetView(left));
  VIEWCAP_ASSIGN_OR_RETURN(const View* w, GetView(right));
  VIEWCAP_ASSIGN_OR_RETURN(EquivalenceResult result,
                           AreEquivalent(*engine_, *v, *w, limits));
  if (report != nullptr) {
    std::string out = StrCat("equivalent(", left, ", ", right, ") = ",
                             result.equivalent ? "true" : "false",
                             result.inconclusive ? " (inconclusive)" : "",
                             "\n");
    auto describe = [&](const View& outer, const View& inner,
                        const DominanceResult& dom) {
      out += StrCat("  Cap(", inner.name(), ") subset of Cap(", outer.name(),
                    "): ", dom.dominates ? "yes" : "no", "\n");
      for (std::size_t j = 0; j < inner.size(); ++j) {
        const std::string rel_name =
            outer.catalog().RelationName(inner.definitions()[j].rel);
        if (dom.witnesses.size() > j && dom.witnesses[j] != nullptr) {
          out += StrCat("    ", rel_name, " answered by ",
                        ToString(*dom.witnesses[j], outer.catalog()), "\n");
        } else {
          out += StrCat("    ", rel_name, " NOT answerable\n");
        }
      }
    };
    describe(*v, *w, result.v_over_w);
    describe(*w, *v, result.w_over_v);
    *report = std::move(out);
  }
  return result;
}

Result<MembershipResult> Analyzer::CheckAnswerable(
    const std::string& name, const std::string& query_text,
    std::string* report) {
  return CheckAnswerable(name, query_text, limits_, report);
}

Result<MembershipResult> Analyzer::CheckAnswerable(
    const std::string& name, const std::string& query_text,
    const SearchLimits& limits, std::string* report) {
  VIEWCAP_ASSIGN_OR_RETURN(const View* view, GetView(name));
  VIEWCAP_ASSIGN_OR_RETURN(ExprPtr query,
                           ParseExpr(*catalog_, query_text));
  for (RelId rel : query->RelNames()) {
    if (!base_.Contains(rel)) {
      return Status::IllFormed(
          StrCat("query mentions non-base relation '",
                 catalog_->RelationName(rel), "'"));
    }
  }
  CapacityOracle oracle(engine_.get(), *view, limits);
  VIEWCAP_ASSIGN_OR_RETURN(MembershipResult result, oracle.Contains(query));
  if (report != nullptr) {
    if (result.member) {
      *report = StrCat("answerable via ", ToString(*result.witness, *catalog_),
                       "\n");
    } else {
      *report = StrCat("not answerable",
                       result.budget_exhausted ? " (search budget hit)" : "",
                       "\n");
    }
  }
  return result;
}

Result<NonredundantViewResult> Analyzer::EliminateRedundancy(
    const std::string& name, std::string* report) {
  return EliminateRedundancy(name, limits_, report);
}

Result<NonredundantViewResult> Analyzer::EliminateRedundancy(
    const std::string& name, const SearchLimits& limits,
    std::string* report) {
  VIEWCAP_ASSIGN_OR_RETURN(const View* view, GetView(name));
  VIEWCAP_ASSIGN_OR_RETURN(NonredundantViewResult result,
                           MakeNonredundant(*engine_, *view, limits));
  if (report != nullptr) {
    *report = StrCat("kept ", result.kept.size(), " of ", view->size(),
                     " definitions\n", result.view.ToString());
  }
  std::string result_name = StrCat(name, "_nr");
  if (views_.count(result_name) == 0) {
    View registered = result.view;
    VIEWCAP_RETURN_NOT_OK(RegisterView(std::move(registered), result_name));
  }
  return result;
}

Result<SimplifyOutcome> Analyzer::SimplifyView(const std::string& name,
                                               std::string* report) {
  return SimplifyView(name, limits_, report);
}

Result<SimplifyOutcome> Analyzer::SimplifyView(const std::string& name,
                                               const SearchLimits& limits,
                                               std::string* report) {
  VIEWCAP_ASSIGN_OR_RETURN(const View* view, GetView(name));
  VIEWCAP_ASSIGN_OR_RETURN(SimplifyOutcome outcome,
                           Simplify(*engine_, catalog_.get(), *view, limits));
  if (report != nullptr) {
    *report = StrCat("simplified in ", outcome.rounds, " round(s)\n",
                     outcome.view.ToString());
  }
  std::string result_name = StrCat(name, "_simplified");
  if (views_.count(result_name) == 0) {
    View registered = outcome.view;
    VIEWCAP_RETURN_NOT_OK(RegisterView(std::move(registered), result_name));
  }
  return outcome;
}

Result<std::vector<Analyzer::LatticeEntry>> Analyzer::CompareAllViews(
    std::string* report) {
  return CompareAllViews(limits_, report);
}

Result<std::vector<Analyzer::LatticeEntry>> Analyzer::CompareAllViews(
    const SearchLimits& limits, std::string* report) {
  std::vector<LatticeEntry> entries;
  for (std::size_t i = 0; i < view_order_.size(); ++i) {
    for (std::size_t j = i + 1; j < view_order_.size(); ++j) {
      const View& left = views_.at(view_order_[i]);
      const View& right = views_.at(view_order_[j]);
      VIEWCAP_ASSIGN_OR_RETURN(DominanceResult lr,
                               Dominates(*engine_, left, right, limits));
      VIEWCAP_ASSIGN_OR_RETURN(DominanceResult rl,
                               Dominates(*engine_, right, left, limits));
      entries.push_back(LatticeEntry{view_order_[i], view_order_[j],
                                     lr.dominates, rl.dominates,
                                     lr.inconclusive || rl.inconclusive});
    }
  }
  if (report != nullptr) {
    std::string out;
    for (const LatticeEntry& e : entries) {
      const char* relation =
          e.left_dominates_right
              ? (e.right_dominates_left ? "EQUIVALENT to" : "dominates")
              : (e.right_dominates_left ? "is dominated by"
                                        : "is incomparable with");
      out += StrCat("  ", e.left, " ", relation, " ", e.right,
                    e.inconclusive ? "  (inconclusive)" : "", "\n");
    }
    *report = std::move(out);
  }
  return entries;
}

Result<MinimizeResult> Analyzer::MinimizeQuery(const std::string& expr_text,
                                               std::string* report) {
  return MinimizeQuery(expr_text, limits_, report);
}

Result<MinimizeResult> Analyzer::MinimizeQuery(const std::string& expr_text,
                                               const SearchLimits& limits,
                                               std::string* report) {
  VIEWCAP_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr(*catalog_, expr_text));
  for (RelId rel : expr->RelNames()) {
    if (!base_.Contains(rel)) {
      return Status::IllFormed(
          StrCat("query mentions non-base relation '",
                 catalog_->RelationName(rel), "'"));
    }
  }
  VIEWCAP_ASSIGN_OR_RETURN(
      MinimizeResult result,
      MinimizeExpression(*catalog_, base_.universe(), expr, limits));
  if (report != nullptr) {
    *report = StrCat(ToString(*result.expression, *catalog_), "\n  (",
                     result.leaves_before, " -> ", result.leaves_after,
                     " leaves", result.minimal ? ", minimal" : "", ")\n");
  }
  return result;
}

Result<const View*> Analyzer::ComposeViews(const std::string& inner,
                                           const std::string& outer,
                                           std::string* report) {
  VIEWCAP_ASSIGN_OR_RETURN(const View* inner_view, GetView(inner));
  VIEWCAP_ASSIGN_OR_RETURN(const View* outer_view, GetView(outer));
  VIEWCAP_ASSIGN_OR_RETURN(View composed,
                           Compose(*engine_, *inner_view, *outer_view));
  std::string result_name = composed.name();
  if (report != nullptr) *report = composed.ToString();
  if (views_.count(result_name) == 0) {
    VIEWCAP_RETURN_NOT_OK(RegisterView(std::move(composed), result_name));
  }
  return &views_.at(result_name);
}

Result<std::string> Analyzer::ExportView(const std::string& name) const {
  VIEWCAP_ASSIGN_OR_RETURN(const View* view, GetView(name));
  return ExportProgram(*view);
}

Result<Relation> Analyzer::EvaluateViewQuery(const std::string& view_name,
                                             const std::string& query_text,
                                             const std::string& data_text,
                                             std::string* report) {
  VIEWCAP_ASSIGN_OR_RETURN(const View* view, GetView(view_name));
  VIEWCAP_ASSIGN_OR_RETURN(ExprPtr query, ParseExpr(*catalog_, query_text));
  VIEWCAP_ASSIGN_OR_RETURN(ExprPtr surrogate, view->Surrogate(query));
  VIEWCAP_ASSIGN_OR_RETURN(Instantiation alpha,
                           ParseInstance(*catalog_, data_text));
  Relation result = Evaluate(*surrogate, alpha);
  if (report != nullptr) {
    *report = StrCat("surrogate: ", ToString(*surrogate, *catalog_), "\n",
                     result.ToString(*catalog_));
  }
  return result;
}

Result<std::vector<CapacityOracle::CapacityEntry>>
Analyzer::EnumerateViewCapacity(const std::string& name,
                                std::size_t max_leaves,
                                std::size_t max_entries,
                                std::string* report) {
  return EnumerateViewCapacity(name, max_leaves, limits_, max_entries,
                               report);
}

Result<std::vector<CapacityOracle::CapacityEntry>>
Analyzer::EnumerateViewCapacity(const std::string& name,
                                std::size_t max_leaves,
                                const SearchLimits& limits,
                                std::size_t max_entries,
                                std::string* report) {
  VIEWCAP_ASSIGN_OR_RETURN(const View* view, GetView(name));
  CapacityOracle oracle(engine_.get(), *view, limits);
  VIEWCAP_ASSIGN_OR_RETURN(
      std::vector<CapacityOracle::CapacityEntry> entries,
      oracle.EnumerateCapacity(max_leaves, max_entries));
  if (report != nullptr) {
    std::string out = StrCat("Cap(", name, ") members derivable with <= ",
                             max_leaves, " leaves: ", entries.size(), "\n");
    for (const auto& entry : entries) {
      out += StrCat("  ", ToString(entry.query.Trs(), *catalog_), "  via  ",
                    ToString(*entry.witness, *catalog_), "\n");
    }
    *report = std::move(out);
  }
  return entries;
}

}  // namespace viewcap
