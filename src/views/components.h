// Connected components of templates (Section 3.3): equivalence classes of
// the reflexive-transitive closure of "shares a nondistinguished symbol".
#ifndef VIEWCAP_VIEWS_COMPONENTS_H_
#define VIEWCAP_VIEWS_COMPONENTS_H_

#include <vector>

#include "tableau/tableau.h"

namespace viewcap {

/// Returns the connected components of `t` as sorted lists of row indices;
/// components are ordered by smallest member. Two rows are linked when they
/// share a nondistinguished symbol (distinguished symbols do not link —
/// the relation L_T of Section 3.3 is on nondistinguished symbols only).
std::vector<std::vector<std::size_t>> ConnectedComponents(const Tableau& t);

/// The attributes where some row of the component (given by row indices)
/// carries a distinguished symbol: TRS restricted to the component.
AttrSet ComponentTrs(const Tableau& t, const std::vector<std::size_t>& rows);

}  // namespace viewcap

#endif  // VIEWCAP_VIEWS_COMPONENTS_H_
