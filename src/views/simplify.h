// Simplified views: the Section 4 normal form.
#ifndef VIEWCAP_VIEWS_SIMPLIFY_H_
#define VIEWCAP_VIEWS_SIMPLIFY_H_

#include "views/capacity.h"

namespace viewcap {

/// The proper projections of a template: pi_X o T for every nonempty X
/// properly contained in TRS(T) (Section 4.1), as fresh-handle query-set
/// members (handles minted in `catalog`).
Result<std::vector<QuerySet::Member>> ProperProjectionMembers(
    Catalog* catalog, const Tableau& t);

/// Only the maximal proper projections (|X| = |TRS(T)| - 1). Every proper
/// projection of T is a projection of a maximal one (projections compose),
/// so swapping the full set for this one preserves closures; the simplicity
/// test and Simplify use it to keep the search small.
Result<std::vector<QuerySet::Member>> MaximalProperProjectionMembers(
    Catalog* catalog, const Tableau& t);

/// Outcome of a simplicity test for one member of a query set.
struct SimplicityResult {
  /// True when the member is simple: it is NOT in the closure of the other
  /// members together with its own proper projections (Section 4.1).
  bool simple = false;
  /// The underlying membership evidence (witness when not simple).
  MembershipResult membership;
};

/// Is member `index` of `set` simple in the set? The membership search
/// shares `engine` (which must be over `catalog`); the projection handles
/// are minted fresh per call, so verdicts are not cached across calls, but
/// the interned queries, reduced expansions of shared handles and pair
/// predicates are.
Result<SimplicityResult> IsSimple(Engine& engine, Catalog* catalog,
                                  const QuerySet& set, std::size_t index,
                                  SearchLimits limits = {});

/// Legacy convenience: a private engine per call.
Result<SimplicityResult> IsSimple(Catalog* catalog, const QuerySet& set,
                                  std::size_t index,
                                  SearchLimits limits = {});

/// True when every definition of `view` is simple among the defining
/// queries, i.e. the view is in normal form. All member tests share
/// `engine`.
Result<bool> IsSimplifiedView(Engine& engine, Catalog* catalog,
                              const View& view, SearchLimits limits = {},
                              bool* inconclusive = nullptr);

/// Legacy convenience: a private engine shared across the member tests.
Result<bool> IsSimplifiedView(Catalog* catalog, const View& view,
                              SearchLimits limits = {},
                              bool* inconclusive = nullptr);

/// Outcome of normalization.
struct SimplifyOutcome {
  /// The equivalent simplified view (Theorem 4.1.3). Its relation names are
  /// minted fresh ("<view name>_s<n>"); by Theorem 4.2.1 each defining
  /// query is a projection of one of the input's defining queries, and by
  /// Theorem 4.2.2 the result is unique up to renaming.
  View view;
  /// True when some membership search hit its budget.
  bool inconclusive = false;
  /// Replacement rounds performed.
  std::size_t rounds = 0;
};

/// Lemma 4.1.2 / Theorem 4.1.3: repeatedly replaces a non-simple defining
/// query by its proper projections (dropping mapping-duplicates along the
/// way) until every query is simple. A non-simple query with a
/// single-attribute TRS has no proper projections and is simply dropped —
/// non-simple then means redundant, so the closure is unchanged. Every
/// replacement round shares `engine`.
Result<SimplifyOutcome> Simplify(Engine& engine, Catalog* catalog,
                                 const View& view, SearchLimits limits = {});

/// Legacy convenience: a private engine for the whole normalization.
Result<SimplifyOutcome> Simplify(Catalog* catalog, const View& view,
                                 SearchLimits limits = {});

/// Theorem 4.2.2's notion of sameness: the views' defining query multisets
/// match one-to-one under mapping equivalence (relation names ignored).
/// With an engine the compatibility matrix is interned-id comparisons.
Result<bool> SameQueriesUpToRenaming(Engine& engine, const View& a,
                                     const View& b);

/// Legacy convenience: a private engine per call.
Result<bool> SameQueriesUpToRenaming(const View& a, const View& b);

}  // namespace viewcap

#endif  // VIEWCAP_VIEWS_SIMPLIFY_H_
