#include "views/simplify.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>

#include "base/check.h"
#include "base/hash.h"
#include "base/strings.h"
#include "tableau/build.h"

namespace viewcap {

namespace {

Result<std::vector<QuerySet::Member>> ProjectionMembers(
    Catalog* catalog, const Tableau& t, const std::vector<AttrSet>& subsets) {
  std::vector<QuerySet::Member> members;
  SymbolPool pool;
  t.ReserveSymbols(pool);
  for (const AttrSet& x : subsets) {
    VIEWCAP_ASSIGN_OR_RETURN(Tableau projected,
                             ProjectTableau(*catalog, t, x, pool));
    RelId handle = catalog->MintRelation("__proj", x);
    members.push_back(QuerySet::Member{handle, std::move(projected)});
  }
  return members;
}

std::vector<AttrSet> MaximalProperSubsets(const AttrSet& trs) {
  std::vector<AttrSet> out;
  for (AttrId a : trs) {
    AttrSet x = trs.Difference(AttrSet{a});
    if (!x.empty()) out.push_back(std::move(x));
  }
  return out;
}

}  // namespace

Result<std::vector<QuerySet::Member>> ProperProjectionMembers(
    Catalog* catalog, const Tableau& t) {
  return ProjectionMembers(catalog, t, t.Trs().NonemptyProperSubsets());
}

Result<std::vector<QuerySet::Member>> MaximalProperProjectionMembers(
    Catalog* catalog, const Tableau& t) {
  return ProjectionMembers(catalog, t, MaximalProperSubsets(t.Trs()));
}

// Note on parallelism: simplification's per-member loops (here and in
// Simplify) stay serial even when limits.threads > 1, because IsSimple
// mints fresh "__proj" handles in the catalog and the catalog is not
// synchronized; the expensive part — the oracle's membership search —
// shards across the engine's worker pool inside Contains, after all
// minting for that call is done.
Result<SimplicityResult> IsSimple(Engine& engine, Catalog* catalog,
                                  const QuerySet& set, std::size_t index,
                                  SearchLimits limits) {
  if (index >= set.size()) {
    return Status::InvalidArgument("query set member index out of range");
  }
  const Tableau& t = set.members()[index].query;
  // Maximal projections generate the same closure as all proper
  // projections, so the verdict is identical and the search much smaller.
  VIEWCAP_ASSIGN_OR_RETURN(std::vector<QuerySet::Member> projections,
                           MaximalProperProjectionMembers(catalog, t));
  QuerySet test_set = set.Without(index).With(std::move(projections));
  SimplicityResult result;
  if (test_set.size() == 0) {
    // Single member with a one-attribute TRS: the closure of the empty set
    // is empty, so the member is trivially simple.
    result.simple = true;
    return result;
  }
  CapacityOracle oracle(&engine, std::move(test_set), limits);
  VIEWCAP_ASSIGN_OR_RETURN(result.membership, oracle.Contains(t));
  result.simple = !result.membership.member;
  return result;
}

Result<SimplicityResult> IsSimple(Catalog* catalog, const QuerySet& set,
                                  std::size_t index, SearchLimits limits) {
  Engine engine(catalog);
  return IsSimple(engine, catalog, set, index, limits);
}

Result<bool> IsSimplifiedView(Engine& engine, Catalog* catalog,
                              const View& view, SearchLimits limits,
                              bool* inconclusive) {
  if (inconclusive != nullptr) *inconclusive = false;
  QuerySet set = QuerySet::FromView(view);
  for (std::size_t i = 0; i < set.size(); ++i) {
    VIEWCAP_ASSIGN_OR_RETURN(SimplicityResult r,
                             IsSimple(engine, catalog, set, i, limits));
    if (!r.simple) return false;
    if (r.membership.budget_exhausted && inconclusive != nullptr) {
      *inconclusive = true;
    }
  }
  return true;
}

Result<bool> IsSimplifiedView(Catalog* catalog, const View& view,
                              SearchLimits limits, bool* inconclusive) {
  Engine engine(catalog);
  return IsSimplifiedView(engine, catalog, view, limits, inconclusive);
}

namespace {

struct WorkingQuery {
  ExprPtr expr;     // Over the base schema; stays in lockstep with tableau.
  Tableau tableau;  // Reduced.
};

// Fixed-width lowercase hex of the low 32 bits of `h`.
std::string Hex8(std::uint64_t h) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[h & 0xf];
    h >>= 4;
  }
  return out;
}

}  // namespace

Result<SimplifyOutcome> Simplify(Engine& engine, Catalog* catalog,
                                 const View& view, SearchLimits limits) {
  SimplifyOutcome outcome;
  std::vector<WorkingQuery> working;
  working.reserve(view.size());
  for (const ViewDefinition& d : view.definitions()) {
    working.push_back(WorkingQuery{d.query, engine.Reduced(d.tableau)});
  }

  // Replacement loop; terminates because replacing a query by proper
  // projections strictly decreases the multiset of TRS sizes
  // (Dershowitz-Manna order). The round cap is a defensive backstop.
  constexpr std::size_t kMaxRounds = 256;
  for (outcome.rounds = 0; outcome.rounds < kMaxRounds; ++outcome.rounds) {
    // Drop mapping-duplicates; interned classes make this id comparisons.
    std::vector<WorkingQuery> unique;
    for (WorkingQuery& w : working) {
      bool duplicate = false;
      for (const WorkingQuery& u : unique) {
        if (engine.Equivalent(w.tableau, u.tableau)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) unique.push_back(std::move(w));
    }
    working = std::move(unique);

    // Build the current query set.
    std::vector<Tableau> tableaux;
    tableaux.reserve(working.size());
    for (const WorkingQuery& w : working) tableaux.push_back(w.tableau);
    VIEWCAP_ASSIGN_OR_RETURN(
        QuerySet set,
        QuerySet::FromTableaux(catalog, view.universe(), std::move(tableaux)));

    // Find a non-simple member and replace it by its proper projections.
    std::optional<std::size_t> replace;
    for (std::size_t i = 0; i < working.size(); ++i) {
      VIEWCAP_ASSIGN_OR_RETURN(SimplicityResult r,
                               IsSimple(engine, catalog, set, i, limits));
      if (r.membership.budget_exhausted) outcome.inconclusive = true;
      if (!r.simple) {
        replace = i;
        break;
      }
    }
    if (!replace.has_value()) break;  // All simple: normal form reached.

    WorkingQuery victim = std::move(working[*replace]);
    working.erase(working.begin() + static_cast<std::ptrdiff_t>(*replace));
    SymbolPool pool;
    victim.tableau.ReserveSymbols(pool);
    // Maximal projections suffice (same closure as all proper projections);
    // any that are themselves non-simple get decomposed in later rounds.
    for (const AttrSet& x : MaximalProperSubsets(victim.tableau.Trs())) {
      VIEWCAP_ASSIGN_OR_RETURN(
          Tableau projected,
          ProjectTableau(*catalog, victim.tableau, x, pool));
      working.push_back(WorkingQuery{Expr::MustProject(x, victim.expr),
                                     engine.Reduced(projected)});
    }
  }
  if (outcome.rounds >= kMaxRounds) {
    return Status::BudgetExhausted("Simplify exceeded its round cap");
  }
  VIEWCAP_CHECK(!working.empty());

  // Materialize the normal form with deterministic names: the name tag is
  // a hash of the input view (its name plus the exact fingerprint of every
  // definition), not a process-local mint counter, so the same view
  // simplifies to byte-identical text in a cold CLI run and a warm daemon
  // session alike. AddRelation is get-or-create for an identical
  // (name, scheme) pair, so re-simplifying the same view in one catalog
  // reuses the names; a genuine clash (another relation already holds the
  // name with a different scheme) falls through to deterministic probing.
  std::uint64_t seed = Fnv1a64(view.name());
  for (const ViewDefinition& d : view.definitions()) {
    seed = Fnv1a64(TableauFingerprint(d.tableau), seed);
  }
  const std::string prefix =
      StrCat(view.name().empty() ? "view" : view.name(), "_s", Hex8(seed));
  std::vector<std::pair<RelId, ExprPtr>> definitions;
  definitions.reserve(working.size());
  for (std::size_t i = 0; i < working.size(); ++i) {
    const WorkingQuery& w = working[i];
    const std::string name = StrCat(prefix, "_", i);
    Result<RelId> rel = catalog->AddRelation(name, w.expr->trs());
    for (std::uint32_t bump = 2; !rel.ok(); ++bump) {
      if (bump > 64) return rel.status();
      rel = catalog->AddRelation(StrCat(name, "_", bump), w.expr->trs());
    }
    definitions.push_back({*rel, w.expr});
  }
  VIEWCAP_ASSIGN_OR_RETURN(
      outcome.view,
      View::Create(catalog, view.base(), std::move(definitions),
                   StrCat(view.name(), "_simplified")));
  return outcome;
}

Result<SimplifyOutcome> Simplify(Catalog* catalog, const View& view,
                                 SearchLimits limits) {
  Engine engine(catalog);
  return Simplify(engine, catalog, view, limits);
}

Result<bool> SameQueriesUpToRenaming(Engine& engine, const View& a,
                                     const View& b) {
  if (a.size() != b.size()) return false;
  if (a.universe() != b.universe()) return false;
  const std::size_t n = a.size();
  // Interning turns the compatibility matrix into id comparisons: the ids
  // for a's definitions are computed once, not once per pair.
  std::vector<TableauId> a_ids(n), b_ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    a_ids[i] = engine.Intern(a.definitions()[i].tableau);
    b_ids[i] = engine.Intern(b.definitions()[i].tableau);
  }
  // Exact bipartite matching by backtracking (views are small).
  std::vector<bool> used(n, false);
  std::function<bool(std::size_t)> match = [&](std::size_t i) -> bool {
    if (i == n) return true;
    for (std::size_t j = 0; j < n; ++j) {
      if (!used[j] && a_ids[i] == b_ids[j]) {
        used[j] = true;
        if (match(i + 1)) return true;
        used[j] = false;
      }
    }
    return false;
  };
  return match(0);
}

Result<bool> SameQueriesUpToRenaming(const View& a, const View& b) {
  Engine engine(&a.catalog());
  return SameQueriesUpToRenaming(engine, a, b);
}

}  // namespace viewcap
