#include "views/essential.h"

#include <algorithm>
#include <unordered_set>

#include "base/check.h"
#include "base/strings.h"

namespace viewcap {

DescendantAnalysis AnalyzeDescendants(const Tableau& q, const Tableau& t,
                                      const ExhibitedConstruction& c) {
  DescendantAnalysis analysis;
  analysis.immediate_descendant.resize(q.size());
  for (std::size_t p = 0; p < q.size(); ++p) {
    const TaggedTuple& rho = q.rows()[p];
    const TaggedTuple image{rho.rel, rho.tuple.Apply(c.hom)};
    // Locate the block containing the image row. blocks[i] is the
    // <tau_i, beta(lambda_i)> block for the i-th row of the level template.
    bool found = false;
    for (std::size_t i = 0; i < c.substitution.blocks.size() && !found; ++i) {
      const RelId lambda = c.level_template.rows()[i].rel;
      for (std::size_t j = 0; j < c.substitution.blocks[i].size(); ++j) {
        if (c.substitution.blocks[i][j] == image) {
          if (c.beta.at(lambda) == t) {
            // A T-block: the immediate descendant is the j-th row of T
            // (block rows are images of beta(lambda)'s rows in order).
            analysis.immediate_descendant[p] = j;
          }
          found = true;
          break;
        }
      }
    }
    VIEWCAP_CHECK(found && "exhibited hom image missing from substitution");
  }
  return analysis;
}

std::vector<std::size_t> Lineage(const DescendantAnalysis& analysis,
                                 std::size_t row) {
  std::vector<std::size_t> lineage;
  std::unordered_set<std::size_t> seen;
  std::size_t current = row;
  while (true) {
    VIEWCAP_CHECK(current < analysis.immediate_descendant.size());
    const std::optional<std::size_t>& next =
        analysis.immediate_descendant[current];
    if (!next.has_value()) break;  // Finite lineage: non-T-block child.
    if (!seen.insert(*next).second) {
      lineage.push_back(*next);  // Close the cycle once, then stop.
      break;
    }
    lineage.push_back(*next);
    current = *next;
  }
  return lineage;
}

bool IsSelfDescendent(const DescendantAnalysis& analysis, std::size_t row) {
  std::vector<std::size_t> lineage = Lineage(analysis, row);
  return std::find(lineage.begin(), lineage.end(), row) != lineage.end();
}

namespace {

/// The generalized Example 3.2.2 criterion: a homomorphic image of the row
/// preserves its tag and its distinguished attributes, and lands on a block
/// row <epsilon, sigma> whose distinguished set is contained in sigma's. If
/// the only (member, row) pair with the same tag and a superset
/// distinguished pattern is the row itself, every exhibited construction of
/// T must route it through a T-block copy of itself, so it is
/// self-descendent everywhere and essential by Proposition 3.2.5.
bool UniquePatternCriterion(const QuerySet& set, std::size_t member_index,
                            std::size_t row_index) {
  const TaggedTuple& tau =
      set.members()[member_index].query.rows()[row_index];
  const AttrSet dist = tau.tuple.DistinguishedAttrs();
  if (dist.empty()) return false;
  for (std::size_t m = 0; m < set.size(); ++m) {
    const Tableau& member = set.members()[m].query;
    for (std::size_t r = 0; r < member.size(); ++r) {
      if (m == member_index && r == row_index) continue;
      const TaggedTuple& sigma = member.rows()[r];
      if (sigma.rel != tau.rel) continue;
      if (dist.SubsetOf(sigma.tuple.DistinguishedAttrs())) return false;
    }
  }
  return true;
}

}  // namespace

Result<EssentialResult> ClassifyEssential(const Catalog* catalog,
                                          const QuerySet& set,
                                          std::size_t member_index,
                                          std::size_t row_index,
                                          SearchLimits limits,
                                          std::size_t max_constructions) {
  if (member_index >= set.size()) {
    return Status::InvalidArgument("member index out of range");
  }
  const Tableau& t = set.members()[member_index].query;
  if (row_index >= t.size()) {
    return Status::InvalidArgument("row index out of range");
  }
  EssentialResult result;

  if (UniquePatternCriterion(set, member_index, row_index)) {
    result.verdict = EssentialVerdict::kEssential;
    result.reason =
        "unique tag + distinguished pattern across the query set "
        "(Example 3.2.2 generalized)";
    return result;
  }

  // Refutation search (Proposition 3.2.5): look for an exhibited
  // construction of T from the set under which the row is not
  // self-descendent.
  CapacityOracle oracle(catalog, set, limits);
  VIEWCAP_ASSIGN_OR_RETURN(
      std::vector<ExhibitedConstruction> constructions,
      oracle.FindConstructions(t, max_constructions));
  result.constructions_examined = constructions.size();
  for (const ExhibitedConstruction& c : constructions) {
    DescendantAnalysis analysis = AnalyzeDescendants(t, t, c);
    if (!IsSelfDescendent(analysis, row_index)) {
      result.verdict = EssentialVerdict::kNotEssential;
      result.reason = StrCat(
          "row is not self-descendent under the construction realized by a ",
          c.expr->LeafCount(), "-leaf expression (Proposition 3.2.5)");
      return result;
    }
  }
  result.verdict = EssentialVerdict::kUnknown;
  result.reason =
      StrCat("self-descendent under all ", constructions.size(),
             " constructions examined; uniqueness criterion inapplicable");
  return result;
}

Result<std::optional<std::vector<std::size_t>>> FindEssentialComponent(
    const Catalog* catalog, const QuerySet& set, std::size_t member_index,
    SearchLimits limits, std::size_t max_constructions) {
  if (member_index >= set.size()) {
    return Status::InvalidArgument("member index out of range");
  }
  const Tableau& t = set.members()[member_index].query;
  for (const std::vector<std::size_t>& component : ConnectedComponents(t)) {
    bool all_essential = true;
    for (std::size_t row : component) {
      VIEWCAP_ASSIGN_OR_RETURN(
          EssentialResult r,
          ClassifyEssential(catalog, set, member_index, row, limits,
                            max_constructions));
      if (r.verdict != EssentialVerdict::kEssential) {
        all_essential = false;
        break;
      }
    }
    if (all_essential) return std::optional(component);
  }
  return std::optional<std::vector<std::size_t>>();
}

}  // namespace viewcap
