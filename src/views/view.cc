#include "views/view.h"

#include <unordered_set>

#include "algebra/eval.h"
#include "algebra/printer.h"
#include "base/check.h"
#include "base/strings.h"
#include "tableau/build.h"

namespace viewcap {

Result<View> View::Create(const Catalog* catalog, DbSchema base,
                          std::vector<std::pair<RelId, ExprPtr>> definitions,
                          std::string name) {
  if (definitions.empty()) {
    return Status::IllFormed("a view must have at least one definition");
  }
  View view;
  view.catalog_ = catalog;
  view.base_ = std::move(base);
  view.name_ = std::move(name);
  std::unordered_set<RelId> seen;
  SymbolPool pool;
  for (auto& [rel, query] : definitions) {
    if (!catalog->HasRelation(rel)) {
      return Status::NotFound(StrCat("view relation id ", rel));
    }
    if (!seen.insert(rel).second) {
      return Status::IllFormed(StrCat("view relation '",
                                      catalog->RelationName(rel),
                                      "' defined twice"));
    }
    if (view.base_.Contains(rel)) {
      return Status::IllFormed(StrCat("view relation '",
                                      catalog->RelationName(rel),
                                      "' shadows a base relation"));
    }
    if (query == nullptr) {
      return Status::InvalidArgument("view definition query is null");
    }
    if (query->trs() != catalog->RelationScheme(rel)) {
      return Status::IllFormed(
          StrCat("TRS of the query defining '", catalog->RelationName(rel),
                 "' differs from the relation's type"));
    }
    for (RelId base_rel : query->RelNames()) {
      if (!view.base_.Contains(base_rel)) {
        return Status::IllFormed(
            StrCat("query defining '", catalog->RelationName(rel),
                   "' mentions '", catalog->RelationName(base_rel),
                   "', which is not in the underlying database schema"));
      }
    }
    VIEWCAP_ASSIGN_OR_RETURN(
        Tableau tableau,
        BuildTableau(*catalog, view.base_.universe(), *query, pool));
    view.defs_.push_back(ViewDefinition{rel, query, std::move(tableau)});
  }
  ValidateView(view);
  return view;
}

Status View::Validate() const {
  if (catalog_ == nullptr) return Status::IllFormed("view has no catalog");
  if (defs_.empty()) {
    return Status::IllFormed("a view must have at least one definition");
  }
  std::unordered_set<RelId> seen;
  for (const ViewDefinition& d : defs_) {
    if (!catalog_->HasRelation(d.rel)) {
      return Status::IllFormed(StrCat("unknown view relation id ", d.rel));
    }
    const std::string& name = catalog_->RelationName(d.rel);
    if (!seen.insert(d.rel).second) {
      return Status::IllFormed(
          StrCat("view relation '", name, "' defined twice"));
    }
    if (base_.Contains(d.rel)) {
      return Status::IllFormed(
          StrCat("view relation '", name, "' shadows a base relation"));
    }
    if (d.query == nullptr) {
      return Status::IllFormed(
          StrCat("definition of '", name, "' has a null query"));
    }
    if (d.query->trs() != catalog_->RelationScheme(d.rel)) {
      return Status::IllFormed(
          StrCat("TRS of the query defining '", name,
                 "' differs from the relation's type"));
    }
    for (RelId rel : d.query->RelNames()) {
      if (!base_.Contains(rel)) {
        return Status::IllFormed(
            StrCat("query defining '", name, "' mentions non-base '",
                   catalog_->RelationName(rel), "'"));
      }
    }
    VIEWCAP_RETURN_NOT_OK(d.tableau.Validate(*catalog_));
    if (d.tableau.Trs() != d.query->trs()) {
      return Status::IllFormed(
          StrCat("template of '", name, "' disagrees with its query's TRS"));
    }
  }
  return Status::OK();
}

void ValidateView(const View& view) {
#ifndef NDEBUG
  Status st = view.Validate();
  if (!st.ok()) {
    internal::CheckFailed("ValidateView", 0, st.message().c_str());
  }
#else
  (void)view;
#endif
}

DbSchema View::ViewSchema() const {
  std::vector<RelId> rels;
  rels.reserve(defs_.size());
  for (const ViewDefinition& d : defs_) rels.push_back(d.rel);
  return DbSchema(*catalog_, std::move(rels));
}

Instantiation View::Induce(const Instantiation& alpha) const {
  Instantiation induced = alpha;
  for (const ViewDefinition& d : defs_) {
    Status st = induced.Set(d.rel, Evaluate(*d.query, alpha));
    VIEWCAP_CHECK(st.ok());
  }
  return induced;
}

Result<ExprPtr> View::Surrogate(const ExprPtr& view_query) const {
  if (view_query == nullptr) {
    return Status::InvalidArgument("view query is null");
  }
  DbSchema schema = ViewSchema();
  for (RelId rel : view_query->RelNames()) {
    if (!schema.Contains(rel)) {
      return Status::IllFormed(
          StrCat("'", catalog_->RelationName(rel),
                 "' is not a relation of the view schema"));
    }
  }
  return Expand(*catalog_, view_query, AsDefinitions());
}

Definitions View::AsDefinitions() const {
  Definitions defs;
  for (const ViewDefinition& d : defs_) defs.emplace(d.rel, d.query);
  return defs;
}

TemplateAssignment View::AsAssignment() const {
  TemplateAssignment beta;
  for (const ViewDefinition& d : defs_) beta.emplace(d.rel, d.tableau);
  return beta;
}

std::vector<Tableau> View::QueryTableaux() const {
  std::vector<Tableau> out;
  out.reserve(defs_.size());
  for (const ViewDefinition& d : defs_) out.push_back(d.tableau);
  return out;
}

View View::Restrict(const std::vector<std::size_t>& keep) const {
  View out;
  out.catalog_ = catalog_;
  out.base_ = base_;
  out.name_ = name_;
  for (std::size_t i : keep) {
    VIEWCAP_CHECK(i < defs_.size());
    out.defs_.push_back(defs_[i]);
  }
  VIEWCAP_CHECK(!out.defs_.empty());
  ValidateView(out);
  return out;
}

std::string View::ToString() const {
  std::string out = StrCat("view ", name_.empty() ? "<anon>" : name_, " {\n");
  for (const ViewDefinition& d : defs_) {
    out += StrCat("  ", catalog_->RelationName(d.rel), " := ",
                  viewcap::ToString(*d.query, *catalog_), ";\n");
  }
  out += "}\n";
  return out;
}

}  // namespace viewcap
