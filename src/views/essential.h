// Essential tagged tuples, lineage and self-descendence (Sections 3.2-3.3).
#ifndef VIEWCAP_VIEWS_ESSENTIAL_H_
#define VIEWCAP_VIEWS_ESSENTIAL_H_

#include <optional>
#include <string>

#include "views/capacity.h"
#include "views/components.h"

namespace viewcap {

/// The immediate-descendant structure of one exhibited construction
/// (E -> beta, f) of a query Q from a query set, relative to a
/// distinguished member T (Section 3.2).
struct DescendantAnalysis {
  /// For each row index of Q: the T-row index of its immediate descendant
  /// when f maps it into a T-block, or nullopt when its child is a
  /// non-T-block child.
  std::vector<std::optional<std::size_t>> immediate_descendant;
};

/// Computes immediate descendants of every row of `q` w.r.t. the template
/// `t` and the exhibited construction `c` (whose hom must map `q` into
/// c.substitution.result). A block of `c` is a T-block when its assigned
/// template c.beta(lambda) equals `t` (template identity — a construction
/// may assign `t` to several names, as in Figure 2). A row's image can
/// coincide with rows of several blocks only when block rows collapse to
/// identical tagged tuples; the first matching block is used (DESIGN.md).
DescendantAnalysis AnalyzeDescendants(const Tableau& q, const Tableau& t,
                                      const ExhibitedConstruction& c);

/// The lineage tau_1, tau_2, ... of row `row` (Section 3.2): iterated
/// immediate descendants, truncated at the first repetition (templates are
/// finite, so infinite lineages are eventually periodic).
std::vector<std::size_t> Lineage(const DescendantAnalysis& analysis,
                                 std::size_t row);

/// True when `row` is a member of its own lineage (self-descendence).
bool IsSelfDescendent(const DescendantAnalysis& analysis, std::size_t row);

/// Verdicts for the (in general search-bounded) essentiality question.
enum class EssentialVerdict {
  /// Proven essential (the uniqueness criterion of Example 3.2.2,
  /// generalized, applies: every construction must route the row through a
  /// T-block copy of itself).
  kEssential,
  /// Proven not essential: a construction of T was found in which the row
  /// is not self-descendent (Proposition 3.2.5).
  kNotEssential,
  /// Neither criterion fired within the search budget.
  kUnknown,
};

struct EssentialResult {
  EssentialVerdict verdict = EssentialVerdict::kUnknown;
  /// Human-readable explanation of which rule decided.
  std::string reason;
  /// Constructions examined during the refutation search.
  std::size_t constructions_examined = 0;
};

/// Classifies row `row_index` of member `member_index` of `set`.
/// `max_constructions` bounds the refutation search.
Result<EssentialResult> ClassifyEssential(const Catalog* catalog,
                                          const QuerySet& set,
                                          std::size_t member_index,
                                          std::size_t row_index,
                                          SearchLimits limits = {},
                                          std::size_t max_constructions = 64);

/// Checks whether member `member_index` has a connected component whose
/// rows are all (provably) essential — the Corollary 3.3.6 certificate that
/// the member is nonredundant in the set. Returns the component's row
/// indices, or nullopt if none is provable within budget.
Result<std::optional<std::vector<std::size_t>>> FindEssentialComponent(
    const Catalog* catalog, const QuerySet& set, std::size_t member_index,
    SearchLimits limits = {}, std::size_t max_constructions = 64);

}  // namespace viewcap

#endif  // VIEWCAP_VIEWS_ESSENTIAL_H_
