// Database views and induced instantiations (Sections 1.3-1.4).
#ifndef VIEWCAP_VIEWS_VIEW_H_
#define VIEWCAP_VIEWS_VIEW_H_

#include <string>
#include <utility>
#include <vector>

#include "algebra/expand.h"
#include "algebra/expr.h"
#include "relation/instantiation.h"
#include "tableau/substitution.h"
#include "tableau/tableau.h"

namespace viewcap {

/// One (E_i, eta_i) pair of a view, carrying both the expression form and
/// its template realization over the base universe.
struct ViewDefinition {
  RelId rel = kInvalidRel;  ///< The view relation name eta_i.
  ExprPtr query;            ///< The defining query E_i (over the base).
  Tableau tableau;          ///< Algorithm 2.1.1 template with tableau == E_i.
};

/// A view of a database schema: a finite set of pairs {(E_i, eta_i)} with
/// TRS(E_i) = R(eta_i) and pairwise-distinct eta_i (Section 1.3). This
/// implementation additionally requires the view schema to be disjoint from
/// the base schema, so that induced instantiations never shadow a base
/// relation a defining query reads.
class View {
 public:
  View() = default;

  /// Validates and constructs. `definitions` pairs each view relation name
  /// with its defining query; queries must mention only base relations.
  static Result<View> Create(const Catalog* catalog, DbSchema base,
                             std::vector<std::pair<RelId, ExprPtr>> definitions,
                             std::string name = "");

  const Catalog& catalog() const { return *catalog_; }
  const DbSchema& base() const { return base_; }
  /// The universe U of the underlying database schema; all templates here
  /// are templates over this U.
  const AttrSet& universe() const { return base_.universe(); }
  const std::vector<ViewDefinition>& definitions() const { return defs_; }
  std::size_t size() const { return defs_.size(); }
  const std::string& name() const { return name_; }
  /// Rebinds the display name; used when registering derived views (e.g.
  /// `W_nr`, `V_simplified`) under their catalog name so `list` output is
  /// unambiguous.
  void set_name(std::string name) { name_ = std::move(name); }

  /// The view schema {eta_i} — itself a database schema.
  DbSchema ViewSchema() const;

  /// alpha_V: the induced instantiation with alpha_V(eta_i) = E_i(alpha)
  /// and alpha_V(eta) = alpha(eta) otherwise (Section 1.3).
  Instantiation Induce(const Instantiation& alpha) const;

  /// Theorem 1.4.2: the unique surrogate query E-hat of the underlying
  /// schema with E-hat(alpha) = E(alpha_V) for every alpha, obtained by
  /// expression expansion (Lemma 1.4.1). `view_query` must be a query of
  /// the view schema.
  Result<ExprPtr> Surrogate(const ExprPtr& view_query) const;

  /// eta_i -> E_i, the map Expand consumes.
  Definitions AsDefinitions() const;

  /// eta_i -> template(E_i), the template assignment beta used by the
  /// substitution machinery (Section 2.3 constructions of Cap(V)).
  TemplateAssignment AsAssignment() const;

  /// The defining query set F = {E_i} as templates; Cap(V) is its closure
  /// (Theorem 1.5.2).
  std::vector<Tableau> QueryTableaux() const;

  /// A view with only the definitions at `keep` indices.
  View Restrict(const std::vector<std::size_t>& keep) const;

  /// Re-checks the Section 1.3 view conditions plus this implementation's
  /// extras: nonempty definitions, TRS(E_i) = R(eta_i), pairwise-distinct
  /// eta_i disjoint from the base schema, queries mentioning only base
  /// relations, and each definition's template well-formed with
  /// Trs(template) = R(eta_i).
  Status Validate() const;

  std::string ToString() const;

 private:
  const Catalog* catalog_ = nullptr;
  DbSchema base_;
  std::vector<ViewDefinition> defs_;
  std::string name_;
};

/// Debug-build invariant validator for layer boundaries: aborts (with the
/// violated condition) when `view` fails View::Validate. Compiled out in
/// NDEBUG builds — wire it where a view crosses between subsystems
/// (construction, redundancy elimination, simplification, composition).
void ValidateView(const View& view);

}  // namespace viewcap

#endif  // VIEWCAP_VIEWS_VIEW_H_
