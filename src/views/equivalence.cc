#include "views/equivalence.h"

#include "base/strings.h"

namespace viewcap {

Result<DominanceResult> Dominates(Engine& engine, const View& v,
                                  const View& w, SearchLimits limits) {
  if (v.universe() != w.universe()) {
    return Status::IllFormed(
        "views are not over the same underlying universe");
  }
  CapacityOracle oracle(&engine, v, limits);
  DominanceResult result;
  result.dominates = true;
  result.witnesses.resize(w.size());
  for (std::size_t j = 0; j < w.size(); ++j) {
    VIEWCAP_ASSIGN_OR_RETURN(
        MembershipResult membership,
        oracle.Contains(w.definitions()[j].tableau));
    if (membership.member) {
      result.witnesses[j] = membership.witness;
    } else {
      result.dominates = false;
      result.missing.push_back(j);
      if (membership.budget_exhausted) result.inconclusive = true;
    }
  }
  return result;
}

Result<DominanceResult> Dominates(const View& v, const View& w,
                                  SearchLimits limits) {
  Engine engine(&v.catalog());
  return Dominates(engine, v, w, limits);
}

Result<EquivalenceResult> AreEquivalent(Engine& engine, const View& v,
                                        const View& w, SearchLimits limits) {
  EquivalenceResult result;
  VIEWCAP_ASSIGN_OR_RETURN(result.v_over_w, Dominates(engine, v, w, limits));
  VIEWCAP_ASSIGN_OR_RETURN(result.w_over_v, Dominates(engine, w, v, limits));
  result.equivalent =
      result.v_over_w.dominates && result.w_over_v.dominates;
  result.inconclusive =
      result.v_over_w.inconclusive || result.w_over_v.inconclusive;
  return result;
}

Result<EquivalenceResult> AreEquivalent(const View& v, const View& w,
                                        SearchLimits limits) {
  Engine engine(&v.catalog());
  return AreEquivalent(engine, v, w, limits);
}

}  // namespace viewcap
