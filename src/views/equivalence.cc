#include "views/equivalence.h"

#include <optional>
#include <string>

#include "base/thread_pool.h"

namespace viewcap {

namespace {

// Cache key for a whole dominance answer: the member-wise exact
// fingerprints of both views (handles included — witnesses are
// expressions over v's handles, and `missing` indexes w's definitions in
// order) plus the search limits. Built from fingerprints rather than
// interned ids so a warm repeat never touches the interning store;
// `threads` is deliberately absent (verdicts are thread-count invariant,
// as for the membership verdict cache).
std::string DominanceKey(const View& v, const View& w,
                         const SearchLimits& limits) {
  std::string key = "D";
  const auto append_members = [&key](const View& view) {
    for (const ViewDefinition& d : view.definitions()) {
      key += std::to_string(d.rel);
      key += ':';
      key += TableauFingerprint(d.tableau);
      key += ';';
    }
  };
  append_members(v);
  key += '|';
  append_members(w);
  key += '|';
  key += std::to_string(limits.extra_leaves);
  key += ',';
  key += std::to_string(limits.max_leaves);
  key += ',';
  key += std::to_string(limits.max_candidates);
  return key;
}

}  // namespace

Result<DominanceResult> Dominates(Engine& engine, const View& v,
                                  const View& w, SearchLimits limits) {
  if (v.universe() != w.universe()) {
    return Status::IllFormed(
        "views are not over the same underlying universe");
  }
  const std::string dominance_key = DominanceKey(v, w, limits);
  if (std::optional<DominanceResult> cached =
          engine.LookupDominance(dominance_key)) {
    return *std::move(cached);
  }
  CapacityOracle oracle(&engine, v, limits);
  DominanceResult result;
  result.dominates = true;
  result.witnesses.resize(w.size());
  for (std::size_t j = 0; j < w.size(); ++j) {
    VIEWCAP_ASSIGN_OR_RETURN(
        MembershipResult membership,
        oracle.Contains(w.definitions()[j].tableau));
    if (membership.member) {
      result.witnesses[j] = membership.witness;
    } else {
      result.dominates = false;
      result.missing.push_back(j);
      if (membership.budget_exhausted) result.inconclusive = true;
    }
  }
  engine.StoreDominance(dominance_key, result);
  return result;
}

Result<DominanceResult> Dominates(const View& v, const View& w,
                                  SearchLimits limits) {
  Engine engine(&v.catalog());
  return Dominates(engine, v, w, limits);
}

Result<EquivalenceResult> AreEquivalent(Engine& engine, const View& v,
                                        const View& w, SearchLimits limits) {
  EquivalenceResult result;
  const std::size_t threads = ThreadPool::DecideThreads(limits.threads);
  if (threads == 1) {
    VIEWCAP_ASSIGN_OR_RETURN(result.v_over_w,
                             Dominates(engine, v, w, limits));
    VIEWCAP_ASSIGN_OR_RETURN(result.w_over_v,
                             Dominates(engine, w, v, limits));
  } else {
    // Both dominance directions run concurrently over the shared engine;
    // each direction's membership searches shard further over the same
    // pool. Both are always computed in full (as in the serial path), so
    // the combined verdict is order-independent.
    std::optional<Result<DominanceResult>> directions[2];
    ParallelFor(engine.SharedPool(threads), threads, 2, [&](std::size_t i) {
      directions[i] = i == 0 ? Dominates(engine, v, w, limits)
                             : Dominates(engine, w, v, limits);
    });
    VIEWCAP_ASSIGN_OR_RETURN(result.v_over_w, *std::move(directions[0]));
    VIEWCAP_ASSIGN_OR_RETURN(result.w_over_v, *std::move(directions[1]));
  }
  result.equivalent =
      result.v_over_w.dominates && result.w_over_v.dominates;
  result.inconclusive =
      result.v_over_w.inconclusive || result.w_over_v.inconclusive;
  return result;
}

Result<EquivalenceResult> AreEquivalent(const View& v, const View& w,
                                        SearchLimits limits) {
  Engine engine(&v.catalog());
  return AreEquivalent(engine, v, w, limits);
}

}  // namespace viewcap
