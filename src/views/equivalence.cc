#include "views/equivalence.h"

#include <optional>
#include <string>

#include "base/thread_pool.h"

namespace viewcap {

// Built from fingerprints rather than interned ids so a warm repeat never
// touches the interning store (see the header for the key's contract).
std::string DominanceKeyFor(const View& v, const View& w,
                            const SearchLimits& limits) {
  std::string key = "D";
  const auto append_members = [&key](const View& view) {
    for (const ViewDefinition& d : view.definitions()) {
      key += std::to_string(d.rel);
      key += ':';
      key += TableauFingerprint(d.tableau);
      key += ';';
    }
  };
  append_members(v);
  key += '|';
  append_members(w);
  key += '|';
  key += std::to_string(limits.extra_leaves);
  key += ',';
  key += std::to_string(limits.max_leaves);
  key += ',';
  key += std::to_string(limits.max_candidates);
  return key;
}

Result<DominanceResult> Dominates(Engine& engine, const View& v,
                                  const View& w, SearchLimits limits) {
  if (v.universe() != w.universe()) {
    return Status::IllFormed(
        "views are not over the same underlying universe");
  }
  const std::string dominance_key = DominanceKeyFor(v, w, limits);
  if (std::optional<DominanceResult> cached =
          engine.LookupDominance(dominance_key)) {
    return *std::move(cached);
  }
  // A persistent index answers by the same process-independent key; a hit
  // is promoted into the in-memory dominance cache so the next repeat is
  // a pure memory lookup.
  if (VerdictIndex* index = engine.attached_index()) {
    if (std::optional<DominanceResult> hit =
            index->LookupDominance(engine, dominance_key)) {
      engine.StoreDominance(dominance_key, *hit);
      return *std::move(hit);
    }
  }
  CapacityOracle oracle(&engine, v, limits);
  DominanceResult result;
  result.dominates = true;
  result.witnesses.resize(w.size());
  for (std::size_t j = 0; j < w.size(); ++j) {
    VIEWCAP_ASSIGN_OR_RETURN(
        MembershipResult membership,
        oracle.Contains(w.definitions()[j].tableau));
    if (membership.member) {
      result.witnesses[j] = membership.witness;
    } else {
      result.dominates = false;
      result.missing.push_back(j);
      if (membership.budget_exhausted) result.inconclusive = true;
    }
  }
  engine.StoreDominance(dominance_key, result);
  return result;
}

Result<DominanceResult> Dominates(const View& v, const View& w,
                                  SearchLimits limits) {
  Engine engine(&v.catalog());
  return Dominates(engine, v, w, limits);
}

Result<EquivalenceResult> AreEquivalent(Engine& engine, const View& v,
                                        const View& w, SearchLimits limits) {
  EquivalenceResult result;
  const std::size_t threads = ThreadPool::DecideThreads(limits.threads);
  if (threads == 1) {
    VIEWCAP_ASSIGN_OR_RETURN(result.v_over_w,
                             Dominates(engine, v, w, limits));
    VIEWCAP_ASSIGN_OR_RETURN(result.w_over_v,
                             Dominates(engine, w, v, limits));
  } else {
    // Both dominance directions run concurrently over the shared engine;
    // each direction's membership searches shard further over the same
    // pool. Both are always computed in full (as in the serial path), so
    // the combined verdict is order-independent.
    std::optional<Result<DominanceResult>> directions[2];
    ParallelFor(engine.SharedPool(threads), threads, 2, [&](std::size_t i) {
      directions[i] = i == 0 ? Dominates(engine, v, w, limits)
                             : Dominates(engine, w, v, limits);
    });
    VIEWCAP_ASSIGN_OR_RETURN(result.v_over_w, *std::move(directions[0]));
    VIEWCAP_ASSIGN_OR_RETURN(result.w_over_v, *std::move(directions[1]));
  }
  result.equivalent =
      result.v_over_w.dominates && result.w_over_v.dominates;
  result.inconclusive =
      result.v_over_w.inconclusive || result.w_over_v.inconclusive;
  return result;
}

Result<EquivalenceResult> AreEquivalent(const View& v, const View& w,
                                        SearchLimits limits) {
  Engine engine(&v.catalog());
  return AreEquivalent(engine, v, w, limits);
}

}  // namespace viewcap
