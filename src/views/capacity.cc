#include "views/capacity.h"

#include <algorithm>
#include <unordered_set>

#include "algebra/enumerator.h"
#include "algebra/printer.h"
#include "base/check.h"
#include "base/strings.h"
#include "base/thread_pool.h"
#include "tableau/build.h"
#include "tableau/homomorphism.h"

namespace viewcap {

Result<QuerySet> QuerySet::Create(const Catalog* catalog, AttrSet universe,
                                  std::vector<Member> members) {
  QuerySet set;
  set.catalog_ = catalog;
  set.universe_ = std::move(universe);
  for (Member& m : members) {
    if (!catalog->HasRelation(m.handle)) {
      return Status::NotFound(StrCat("handle id ", m.handle));
    }
    if (m.query.universe() != set.universe_) {
      return Status::IllFormed("query set member over a different universe");
    }
    if (m.query.Trs() != catalog->RelationScheme(m.handle)) {
      return Status::IllFormed(
          StrCat("handle '", catalog->RelationName(m.handle),
                 "' has a type different from its query's TRS"));
    }
    VIEWCAP_RETURN_NOT_OK(m.query.Validate(*catalog));
  }
  set.members_ = std::move(members);
  return set;
}

Result<QuerySet> QuerySet::FromTableaux(Catalog* catalog, AttrSet universe,
                                        std::vector<Tableau> queries) {
  std::vector<Member> members;
  members.reserve(queries.size());
  for (Tableau& q : queries) {
    RelId handle = catalog->MintRelation("__q", q.Trs());
    members.push_back(Member{handle, std::move(q)});
  }
  return Create(catalog, std::move(universe), std::move(members));
}

QuerySet QuerySet::FromView(const View& view) {
  std::vector<Member> members;
  members.reserve(view.size());
  for (const ViewDefinition& d : view.definitions()) {
    members.push_back(Member{d.rel, d.tableau});
  }
  Result<QuerySet> set =
      Create(&view.catalog(), view.universe(), std::move(members));
  VIEWCAP_CHECK(set.ok());
  return std::move(set).value();
}

QuerySet QuerySet::Without(std::size_t index) const {
  VIEWCAP_CHECK(index < members_.size());
  QuerySet out;
  out.catalog_ = catalog_;
  out.universe_ = universe_;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i != index) out.members_.push_back(members_[i]);
  }
  return out;
}

QuerySet QuerySet::With(std::vector<Member> extra) const {
  QuerySet out = *this;
  for (Member& m : extra) out.members_.push_back(std::move(m));
  return out;
}

TemplateAssignment QuerySet::AsAssignment() const {
  TemplateAssignment beta;
  for (const Member& m : members_) beta.emplace(m.handle, m.query);
  return beta;
}

std::vector<RelId> QuerySet::Handles() const {
  std::vector<RelId> out;
  out.reserve(members_.size());
  for (const Member& m : members_) out.push_back(m.handle);
  return out;
}

CapacityOracle::CapacityOracle(const Catalog* catalog, QuerySet set,
                               SearchLimits limits)
    : owned_engine_(std::make_unique<Engine>(catalog)),
      engine_(owned_engine_.get()),
      catalog_(catalog),
      set_(std::move(set)),
      limits_(limits) {
  InternMembers();
}

CapacityOracle::CapacityOracle(const View& view, SearchLimits limits)
    : CapacityOracle(&view.catalog(), QuerySet::FromView(view), limits) {}

CapacityOracle::CapacityOracle(Engine* engine, QuerySet set,
                               SearchLimits limits)
    : engine_(engine),
      catalog_(&engine->catalog()),
      set_(std::move(set)),
      limits_(limits) {
  InternMembers();
}

CapacityOracle::CapacityOracle(Engine* engine, const View& view,
                               SearchLimits limits)
    : CapacityOracle(engine, QuerySet::FromView(view), limits) {}

void CapacityOracle::InternMembers() {
  member_ids_.reserve(set_.size());
  member_handles_.reserve(set_.size());
  std::string fingerprint = "S";
  for (const QuerySet::Member& m : set_.members()) {
    const TableauId id = engine_->Intern(m.query);
    member_ids_.push_back(id);
    member_handles_.push_back(m.handle);
    // The handle is part of the fingerprint on purpose: a verdict's
    // witness is an expression over the handles, so sets with equivalent
    // queries behind different handles must not share verdicts.
    fingerprint += StrCat(m.handle, ":", id, ";");
  }
  set_fingerprint_ = std::move(fingerprint);
}

std::string CapacityOracle::VerdictKey(TableauId query_id) const {
  return StrCat(set_fingerprint_, "|", limits_.extra_leaves, ",",
                limits_.max_leaves, ",", limits_.max_candidates, "|Q",
                query_id);
}

namespace {

// Worker-side evaluation of one enumeration candidate for the sharded
// Contains search: everything the serial visit computes, minus the dedup
// and verdict bookkeeping (which commit replays in enumeration order).
struct CandidateEval {
  Status failure = Status::OK();
  bool build_failed = false;
  bool expansion_failed = false;
  TableauId level_id = kInvalidTableauId;
  TableauId expansion = kInvalidTableauId;
  bool row_embeds = false;
  bool witness = false;
};

// Fast path: the canonical single-copy witness. If Q is equivalent to
// pi_TRS(Q)(join of one copy of every member whose query row-embeds into
// Q), return that witness immediately. Sound (the witness is checked by
// homomorphisms) but not complete — queries needing several copies of a
// member or partial projections inside the join fall through to the full
// enumeration.
Result<std::optional<ExprPtr>> TryCanonicalWitness(
    Engine& engine, const QuerySet& set,
    const std::vector<TableauId>& member_ids,
    const TemplateAssignment& beta, TableauId query_id) {
  const Catalog& catalog = engine.catalog();
  const Tableau& reduced_query = engine.Representative(query_id);
  std::vector<ExprPtr> parts;
  AttrSet joined_trs;
  // All members are probed against the one query: a single wave instead
  // of per-member RowEmbeds calls (same verdicts and counters).
  const std::vector<char> embeds = engine.RowEmbedsBatch(member_ids, query_id);
  for (std::size_t i = 0; i < set.members().size(); ++i) {
    const QuerySet::Member& m = set.members()[i];
    if (embeds[i] != 0) {
      parts.push_back(Expr::Rel(catalog, m.handle));
      joined_trs = joined_trs.Union(m.query.Trs());
    }
  }
  if (parts.empty()) return std::optional<ExprPtr>();
  const AttrSet query_trs = reduced_query.Trs();
  if (!query_trs.SubsetOf(joined_trs)) return std::optional<ExprPtr>();
  ExprPtr candidate =
      parts.size() == 1 ? parts[0] : Expr::MustJoin(std::move(parts));
  if (candidate->trs() != query_trs) {
    candidate = Expr::MustProject(query_trs, std::move(candidate));
  }
  SymbolPool pool;
  VIEWCAP_ASSIGN_OR_RETURN(
      Tableau level, BuildTableau(catalog, set.universe(), *candidate, pool));
  VIEWCAP_ASSIGN_OR_RETURN(
      TableauId expansion,
      engine.ExpansionClass(engine.Intern(level), beta));
  // Same class <=> equivalent mappings (which also forces equal TRS).
  if (expansion == query_id) return std::optional(candidate);
  return std::optional<ExprPtr>();
}

}  // namespace

Result<MembershipResult> CapacityOracle::Contains(const Tableau& query) const {
  if (query.universe() != set_.universe()) {
    return Status::IllFormed(
        "query is over a different universe than the query set");
  }
  VIEWCAP_RETURN_NOT_OK(query.Validate(*catalog_));
  const TableauId query_id = engine_->Intern(query);
  const std::string verdict_key = VerdictKey(query_id);
  if (std::optional<MembershipResult> cached =
          engine_->LookupVerdict(verdict_key)) {
    return *std::move(cached);
  }
  // Persistent index, when one is attached: a hit is the exact verdict a
  // live search would produce (the index stores live Contains outputs),
  // so it is promoted into the in-memory verdict cache and returned; a
  // miss falls through to the search below, the index recording the
  // fallback in its own counters.
  if (VerdictIndex* index = engine_->attached_index()) {
    MembershipProbe probe;
    probe.handles = &member_handles_;
    probe.member_ids = &member_ids_;
    probe.set_fingerprint = &set_fingerprint_;
    probe.query_id = query_id;
    probe.extra_leaves = limits_.extra_leaves;
    probe.max_leaves = limits_.max_leaves;
    probe.max_candidates = limits_.max_candidates;
    if (std::optional<MembershipResult> hit =
            index->LookupMembership(*engine_, probe)) {
      engine_->StoreVerdict(verdict_key, *hit);
      return *std::move(hit);
    }
  }
  const Tableau& reduced_query = engine_->Representative(query_id);

  MembershipResult result;
  result.leaf_budget =
      std::min(limits_.max_leaves,
               reduced_query.size() + limits_.extra_leaves);

  const TemplateAssignment beta = set_.AsAssignment();

  VIEWCAP_ASSIGN_OR_RETURN(
      std::optional<ExprPtr> canonical,
      TryCanonicalWitness(*engine_, set_, member_ids_, beta, query_id));
  if (canonical.has_value()) {
    result.member = true;
    result.witness = std::move(*canonical);
    engine_->StoreVerdict(verdict_key, result);
    return result;
  }
  // Per-call dedup registries; the expensive kernels behind them (reduce,
  // canonicalize, substitute, embed) are memoized in the engine and so
  // shared across calls and oracles. Touched only by the serial visit /
  // commit path, never by parallel evaluation.
  std::unordered_set<TableauId> seen_levels;
  std::unordered_set<TableauId> seen_expansions;
  ExprEnumerator enumerator(catalog_, set_.Handles());
  Status failure = Status::OK();
  ExprEnumerator::Stats stats;

  const std::size_t threads = ThreadPool::DecideThreads(limits_.threads);
  if (threads == 1) {
    stats = enumerator.Enumerate(
        result.leaf_budget, limits_.max_candidates,
        [&](const ExprPtr& candidate) -> ExprEnumerator::Verdict {
          SymbolPool pool;
          Result<Tableau> level =
              BuildTableau(*catalog_, set_.universe(), *candidate, pool);
          if (!level.ok()) {
            failure = level.status();
            return ExprEnumerator::Verdict::kStop;
          }
          // Cheap pre-substitution dedup: candidates whose handle-level
          // templates coincide up to equivalence (commuted joins etc.)
          // expand to equivalent templates (Lemma 2.3.1).
          const TableauId level_id = engine_->Intern(*level);
          if (!seen_levels.insert(level_id).second) {
            return ExprEnumerator::Verdict::kSkip;
          }
          Result<TableauId> expansion =
              engine_->ExpansionClass(level_id, beta);
          if (!expansion.ok()) {
            failure = expansion.status();
            return ExprEnumerator::Verdict::kStop;
          }
          // Completeness-preserving prune: a witness's expansion maps
          // homomorphically onto the query, and every subexpression's
          // expansion therefore row-embeds into it (see HasRowEmbedding).
          // Candidates failing the embedding can appear in no witness.
          // (Checked on the class representatives: embeddings compose with
          // the core homomorphisms, so the verdict is class-invariant.)
          if (!engine_->RowEmbeds(*expansion, query_id)) {
            return ExprEnumerator::Verdict::kSkip;
          }
          if (!seen_expansions.insert(*expansion).second) {
            return ExprEnumerator::Verdict::kSkip;
          }
          if (*expansion == query_id) {
            result.member = true;
            result.witness = candidate;
            return ExprEnumerator::Verdict::kStop;
          }
          return ExprEnumerator::Verdict::kKeep;
        });
  } else {
    // Sharded search: workers run the pure per-candidate pipeline (build
    // -> intern -> expand -> embed; every kernel engine-memoized and
    // thread-safe), the commit replays the serial verdict order so the
    // result — verdict, witness, statistics — is bit-identical to the
    // threads == 1 search. A duplicate-level candidate's expansion is
    // computed speculatively here (the serial path skips it), but the
    // expansion cache makes that a lookup, not a kernel run.
    ExprEnumerator::ShardedVisitor<CandidateEval> visitor;
    visitor.evaluate = [&](const ExprPtr& candidate) -> CandidateEval {
      CandidateEval eval;
      SymbolPool pool;
      Result<Tableau> level =
          BuildTableau(*catalog_, set_.universe(), *candidate, pool);
      if (!level.ok()) {
        eval.failure = level.status();
        eval.build_failed = true;
        return eval;
      }
      eval.level_id = engine_->Intern(*level);
      Result<TableauId> expansion =
          engine_->ExpansionClass(eval.level_id, beta);
      if (!expansion.ok()) {
        eval.failure = expansion.status();
        eval.expansion_failed = true;
        return eval;
      }
      eval.expansion = *expansion;
      eval.row_embeds = engine_->RowEmbeds(*expansion, query_id);
      eval.witness = *expansion == query_id;
      return eval;
    };
    // Wave form of the same pipeline: the chunk's candidates are built,
    // interned and expanded individually, then all their row-embedding
    // probes against the one query run as a single engine wave
    // (RowEmbedsBatch) — per-candidate results identical to `evaluate`.
    visitor.evaluate_wave = [&](const std::vector<ExprPtr>& level,
                                std::size_t begin, std::size_t end)
        -> std::vector<CandidateEval> {
      std::vector<CandidateEval> evals(end - begin);
      std::vector<TableauId> expansions;
      std::vector<std::size_t> pending;
      for (std::size_t i = begin; i < end; ++i) {
        CandidateEval& eval = evals[i - begin];
        SymbolPool pool;
        Result<Tableau> level_tableau =
            BuildTableau(*catalog_, set_.universe(), *level[i], pool);
        if (!level_tableau.ok()) {
          eval.failure = level_tableau.status();
          eval.build_failed = true;
          continue;
        }
        eval.level_id = engine_->Intern(*level_tableau);
        Result<TableauId> expansion =
            engine_->ExpansionClass(eval.level_id, beta);
        if (!expansion.ok()) {
          eval.failure = expansion.status();
          eval.expansion_failed = true;
          continue;
        }
        eval.expansion = *expansion;
        eval.witness = *expansion == query_id;
        expansions.push_back(*expansion);
        pending.push_back(i - begin);
      }
      const std::vector<char> embeds =
          engine_->RowEmbedsBatch(expansions, query_id);
      for (std::size_t p = 0; p < pending.size(); ++p) {
        evals[pending[p]].row_embeds = embeds[p] != 0;
      }
      return evals;
    };
    // First-witness cancellation: failures and witnesses are what the
    // serial search stops on, so their smallest enumeration index bounds
    // the useful work.
    visitor.is_stop = [](const CandidateEval& eval) {
      return eval.build_failed || eval.expansion_failed || eval.witness;
    };
    visitor.commit = [&](const ExprPtr& candidate,
                         const CandidateEval& eval)
        -> ExprEnumerator::Verdict {
      if (eval.build_failed) {
        failure = eval.failure;
        return ExprEnumerator::Verdict::kStop;
      }
      if (!seen_levels.insert(eval.level_id).second) {
        return ExprEnumerator::Verdict::kSkip;
      }
      if (eval.expansion_failed) {
        failure = eval.failure;
        return ExprEnumerator::Verdict::kStop;
      }
      if (!eval.row_embeds) return ExprEnumerator::Verdict::kSkip;
      if (!seen_expansions.insert(eval.expansion).second) {
        return ExprEnumerator::Verdict::kSkip;
      }
      if (eval.witness) {
        result.member = true;
        result.witness = candidate;
        return ExprEnumerator::Verdict::kStop;
      }
      return ExprEnumerator::Verdict::kKeep;
    };
    stats = enumerator.EnumerateSharded(
        result.leaf_budget, limits_.max_candidates, threads,
        engine_->SharedPool(threads), visitor);
  }

  VIEWCAP_RETURN_NOT_OK(failure);
  result.candidates_tried = stats.generated;
  result.budget_exhausted = stats.exhausted_budget;
  engine_->StoreVerdict(verdict_key, result);
  return result;
}

Result<MembershipResult> CapacityOracle::Contains(const ExprPtr& query) const {
  if (query == nullptr) {
    return Status::InvalidArgument("query expression is null");
  }
  const std::string memo_key = ToString(query, *catalog_);
  {
    std::lock_guard<std::mutex> lock(expr_memo_mu_);
    auto it = expr_memo_.find(memo_key);
    if (it != expr_memo_.end()) return it->second;
  }
  VIEWCAP_ASSIGN_OR_RETURN(
      Tableau tableau, BuildTableau(*catalog_, set_.universe(), *query));
  VIEWCAP_ASSIGN_OR_RETURN(MembershipResult result, Contains(tableau));
  {
    std::lock_guard<std::mutex> lock(expr_memo_mu_);
    if (expr_memo_.size() < kExprMemoCap) expr_memo_.emplace(memo_key, result);
  }
  return result;
}

Result<std::vector<ExhibitedConstruction>> CapacityOracle::FindConstructions(
    const Tableau& query, std::size_t max_results) const {
  if (query.universe() != set_.universe()) {
    return Status::IllFormed(
        "query is over a different universe than the query set");
  }
  // Constructions exhibit provenance (blocks, the concrete homomorphism),
  // so the candidate pipeline below stays on the raw substitution outcome;
  // the engine only supplies the memoized reduced query for the prune.
  const Tableau reduced_query =
      engine_->Representative(engine_->Intern(query));
  const AttrSet query_trs = query.Trs();
  const std::size_t leaf_budget =
      std::min(limits_.max_leaves,
               reduced_query.size() + limits_.extra_leaves);

  const TemplateAssignment beta = set_.AsAssignment();
  std::vector<ExhibitedConstruction> found;
  ExprEnumerator enumerator(catalog_, set_.Handles());
  Status failure = Status::OK();

  enumerator.Enumerate(
      leaf_budget, limits_.max_candidates,
      [&](const ExprPtr& candidate) -> ExprEnumerator::Verdict {
        SymbolPool pool;
        Result<Tableau> level =
            BuildTableau(*catalog_, set_.universe(), *candidate, pool);
        if (!level.ok()) {
          failure = level.status();
          return ExprEnumerator::Verdict::kStop;
        }
        Result<SubstitutionOutcome> outcome =
            Substitute(*catalog_, *level, beta, pool);
        if (!outcome.ok()) {
          failure = outcome.status();
          return ExprEnumerator::Verdict::kStop;
        }
        // Same completeness-preserving prune as Contains.
        if (!HasRowEmbedding(*catalog_, outcome->result, reduced_query)) {
          return ExprEnumerator::Verdict::kSkip;
        }
        // A construction of `query` needs equivalence in both directions;
        // the exhibited homomorphism is the query-to-substitution one.
        if (outcome->result.Trs() == query_trs &&
            HasHomomorphism(*catalog_, outcome->result, query)) {
          std::optional<SymbolMap> hom =
              FindHomomorphism(*catalog_, query, outcome->result);
          if (hom.has_value()) {
            found.push_back(ExhibitedConstruction{
                candidate, std::move(*level), beta, std::move(*outcome),
                std::move(*hom)});
            if (found.size() >= max_results) {
              return ExprEnumerator::Verdict::kStop;
            }
          }
        }
        // No semantic dedup here: distinct constructions of the same
        // mapping are exactly what Section 3.2 quantifies over.
        return ExprEnumerator::Verdict::kKeep;
      });

  VIEWCAP_RETURN_NOT_OK(failure);
  return found;
}

Result<std::vector<CapacityOracle::CapacityEntry>>
CapacityOracle::EnumerateCapacity(std::size_t max_leaves,
                                  std::size_t max_entries) const {
  const TemplateAssignment beta = set_.AsAssignment();
  std::vector<CapacityEntry> entries;
  std::unordered_set<TableauId> seen_levels;
  std::unordered_set<TableauId> seen_expansions;
  ExprEnumerator enumerator(catalog_, set_.Handles());
  Status failure = Status::OK();

  enumerator.Enumerate(
      std::min(max_leaves, limits_.max_leaves), limits_.max_candidates,
      [&](const ExprPtr& candidate) -> ExprEnumerator::Verdict {
        SymbolPool pool;
        Result<Tableau> level =
            BuildTableau(*catalog_, set_.universe(), *candidate, pool);
        if (!level.ok()) {
          failure = level.status();
          return ExprEnumerator::Verdict::kStop;
        }
        // Level-class duplicates expand to expansion-class duplicates
        // (Lemma 2.3.1), which the historical implementation skipped after
        // substituting; skipping them here is the same verdict, cheaper.
        const TableauId level_id = engine_->Intern(*level);
        if (!seen_levels.insert(level_id).second) {
          return ExprEnumerator::Verdict::kSkip;
        }
        Result<TableauId> expansion = engine_->ExpansionClass(level_id, beta);
        if (!expansion.ok()) {
          failure = expansion.status();
          return ExprEnumerator::Verdict::kStop;
        }
        if (!seen_expansions.insert(*expansion).second) {
          return ExprEnumerator::Verdict::kSkip;
        }
        entries.push_back(
            CapacityEntry{candidate, engine_->Representative(*expansion)});
        if (entries.size() >= max_entries) {
          return ExprEnumerator::Verdict::kStop;
        }
        return ExprEnumerator::Verdict::kKeep;
      });
  VIEWCAP_RETURN_NOT_OK(failure);
  return entries;
}

}  // namespace viewcap
