#include "views/components.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "base/check.h"

namespace viewcap {

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Merge(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<std::vector<std::size_t>> ConnectedComponents(const Tableau& t) {
  UnionFind uf(t.size());
  std::map<Symbol, std::size_t> first_owner;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const TaggedTuple& row = t.rows()[i];
    for (std::size_t k = 0; k < row.tuple.size(); ++k) {
      const Symbol& s = row.tuple.ValueAt(k);
      if (s.IsDistinguished()) continue;
      auto [it, inserted] = first_owner.emplace(s, i);
      if (!inserted) uf.Merge(i, it->second);
    }
  }
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < t.size(); ++i) groups[uf.Find(i)].push_back(i);
  std::vector<std::vector<std::size_t>> out;
  out.reserve(groups.size());
  for (auto& [root, rows] : groups) out.push_back(std::move(rows));
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return out;
}

AttrSet ComponentTrs(const Tableau& t, const std::vector<std::size_t>& rows) {
  AttrSet out;
  for (std::size_t i : rows) {
    VIEWCAP_CHECK(i < t.size());
    out = out.Union(t.rows()[i].tuple.DistinguishedAttrs());
  }
  return out;
}

}  // namespace viewcap
