#include "views/redundancy.h"

#include <numeric>
#include <optional>
#include <vector>

#include "base/check.h"
#include "base/thread_pool.h"

namespace viewcap {

namespace {

/// Runs the |F| leave-one-out membership tests of a redundancy scan
/// concurrently (each IsRedundant builds its oracle over the shared,
/// thread-safe engine) and returns the per-index results for the caller
/// to replay in index order. QuerySet::Without never mints catalog names,
/// so the workers only read the catalog, as the engine contract requires.
std::vector<Result<RedundancyResult>> ScanAllMembers(Engine& engine,
                                                     const QuerySet& set,
                                                     SearchLimits limits,
                                                     std::size_t threads) {
  std::vector<std::optional<Result<RedundancyResult>>> slots(set.size());
  ParallelFor(engine.SharedPool(threads), threads, set.size(),
              [&](std::size_t i) {
                slots[i] = IsRedundant(engine, set, i, limits);
              });
  std::vector<Result<RedundancyResult>> results;
  results.reserve(slots.size());
  for (std::optional<Result<RedundancyResult>>& slot : slots) {
    results.push_back(*std::move(slot));
  }
  return results;
}

/// Bulk cache warm-up for a leave-one-out scan: every oracle the scan
/// builds probes (member j -> member i) row embeddings — in the
/// canonical-witness fast path and as the level-1 candidates'
/// completeness prune. Submitting all pairs up front as one engine wave
/// per target (Engine::RowEmbedsBatch) amortizes the kernel's
/// target-side state and leaves the scans' probes cache hits. Runs for
/// every thread count — the waves are semantically transparent, so scan
/// verdicts (and engine counters) stay thread-invariant.
void WarmEmbeddingWaves(Engine& engine, const QuerySet& set) {
  if (set.size() <= 1) return;
  std::vector<TableauId> ids;
  ids.reserve(set.size());
  for (const QuerySet::Member& m : set.members()) {
    ids.push_back(engine.Intern(m.query));
  }
  for (TableauId to : ids) engine.RowEmbedsBatch(ids, to);
}

}  // namespace

Result<RedundancyResult> IsRedundant(Engine& engine, const QuerySet& set,
                                     std::size_t index, SearchLimits limits) {
  if (index >= set.size()) {
    return Status::InvalidArgument("query set member index out of range");
  }
  RedundancyResult result;
  if (set.size() == 1) {
    // The closure of the empty query set is empty: a singleton is never
    // redundant.
    return result;
  }
  CapacityOracle oracle(&engine, set.Without(index), limits);
  VIEWCAP_ASSIGN_OR_RETURN(result.membership,
                           oracle.Contains(set.members()[index].query));
  result.redundant = result.membership.member;
  return result;
}

Result<RedundancyResult> IsRedundant(const Catalog* catalog,
                                     const QuerySet& set, std::size_t index,
                                     SearchLimits limits) {
  Engine engine(catalog);
  return IsRedundant(engine, set, index, limits);
}

Result<bool> IsNonredundantSet(Engine& engine, const QuerySet& set,
                               SearchLimits limits, bool* inconclusive) {
  if (inconclusive != nullptr) *inconclusive = false;
  WarmEmbeddingWaves(engine, set);
  const std::size_t threads = ThreadPool::DecideThreads(limits.threads);
  if (threads == 1 || set.size() <= 1) {
    for (std::size_t i = 0; i < set.size(); ++i) {
      VIEWCAP_ASSIGN_OR_RETURN(RedundancyResult r,
                               IsRedundant(engine, set, i, limits));
      if (r.redundant) return false;
      if (r.membership.budget_exhausted && inconclusive != nullptr) {
        *inconclusive = true;
      }
    }
    return true;
  }
  // All leave-one-out oracles run concurrently; the verdict fold below
  // replays the serial loop in index order, so the returned verdict and
  // the inconclusive flag match threads == 1 exactly (members past the
  // first redundant one are evaluated speculatively but not observed).
  std::vector<Result<RedundancyResult>> scans =
      ScanAllMembers(engine, set, limits, threads);
  for (Result<RedundancyResult>& scan : scans) {
    VIEWCAP_ASSIGN_OR_RETURN(RedundancyResult r, std::move(scan));
    if (r.redundant) return false;
    if (r.membership.budget_exhausted && inconclusive != nullptr) {
      *inconclusive = true;
    }
  }
  return true;
}

Result<bool> IsNonredundantSet(const Catalog* catalog, const QuerySet& set,
                               SearchLimits limits, bool* inconclusive) {
  Engine engine(catalog);
  return IsNonredundantSet(engine, set, limits, inconclusive);
}

Result<NonredundantViewResult> MakeNonredundant(Engine& engine,
                                                const View& view,
                                                SearchLimits limits) {
  NonredundantViewResult result;
  result.kept.resize(view.size());
  std::iota(result.kept.begin(), result.kept.end(), std::size_t{0});

  // Pass 1: drop definitions whose query duplicates an earlier one's
  // mapping (the #(F) < n case of Section 3.1). Interned equivalence
  // classes make this an id comparison.
  {
    std::vector<std::size_t> unique;
    for (std::size_t i : result.kept) {
      bool duplicate = false;
      for (std::size_t j : unique) {
        if (engine.Equivalent(view.definitions()[i].tableau,
                              view.definitions()[j].tableau)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) unique.push_back(i);
    }
    result.kept = std::move(unique);
  }

  // Pass 2: greedily drop redundant members until a fixpoint. Dropping one
  // redundant member keeps the closure intact, so re-testing against the
  // shrunken set stays correct.
  const std::size_t threads = ThreadPool::DecideThreads(limits.threads);
  bool changed = true;
  while (changed && result.kept.size() > 1) {
    changed = false;
    View current = view.Restrict(result.kept);
    QuerySet set = QuerySet::FromView(current);
    WarmEmbeddingWaves(engine, set);
    if (threads == 1) {
      for (std::size_t pos = 0; pos < result.kept.size(); ++pos) {
        VIEWCAP_ASSIGN_OR_RETURN(RedundancyResult r,
                                 IsRedundant(engine, set, pos, limits));
        if (r.membership.budget_exhausted) result.inconclusive = true;
        if (r.redundant) {
          result.kept.erase(result.kept.begin() +
                            static_cast<std::ptrdiff_t>(pos));
          changed = true;
          break;
        }
      }
    } else {
      // Concurrent leave-one-out scan; replaying in index order keeps the
      // victim choice — the smallest redundant position — and the
      // inconclusive flag identical to the serial loop, which is what
      // makes the final kept set thread-count-deterministic.
      std::vector<Result<RedundancyResult>> scans =
          ScanAllMembers(engine, set, limits, threads);
      for (std::size_t pos = 0; pos < scans.size(); ++pos) {
        VIEWCAP_ASSIGN_OR_RETURN(RedundancyResult r, std::move(scans[pos]));
        if (r.membership.budget_exhausted) result.inconclusive = true;
        if (r.redundant) {
          result.kept.erase(result.kept.begin() +
                            static_cast<std::ptrdiff_t>(pos));
          changed = true;
          break;
        }
      }
    }
  }
  result.view = view.Restrict(result.kept);
  return result;
}

Result<NonredundantViewResult> MakeNonredundant(const View& view,
                                                SearchLimits limits) {
  Engine engine(&view.catalog());
  return MakeNonredundant(engine, view, limits);
}

std::size_t NonredundantSizeBound(Engine& engine, const QuerySet& set) {
  std::size_t bound = 0;
  for (const QuerySet::Member& m : set.members()) {
    bound += engine.Reduced(m.query).size();
  }
  return bound;
}

std::size_t NonredundantSizeBound(const Catalog& catalog,
                                  const QuerySet& set) {
  Engine engine(&catalog);
  return NonredundantSizeBound(engine, set);
}

}  // namespace viewcap
