// Redundancy in query sets and views (Section 3.1).
#ifndef VIEWCAP_VIEWS_REDUNDANCY_H_
#define VIEWCAP_VIEWS_REDUNDANCY_H_

#include "views/capacity.h"

namespace viewcap {

/// Outcome of a redundancy test for one member of a query set.
struct RedundancyResult {
  /// True when the member is in the closure of the others (i.e. redundant).
  bool redundant = false;
  /// The membership evidence: when redundant, `membership.witness` is an
  /// expression over the remaining handles deriving the member.
  MembershipResult membership;
};

/// Is member `index` of `set` redundant, i.e. in the closure of the other
/// members (Section 3.1)? The leave-one-out oracle shares `engine`, so
/// expansions computed for the full set (or for other leave-one-out
/// subsets — their assignments agree wherever both are defined) are
/// reused rather than recomputed.
Result<RedundancyResult> IsRedundant(Engine& engine, const QuerySet& set,
                                     std::size_t index,
                                     SearchLimits limits = {});

/// Legacy convenience: a private engine per call.
Result<RedundancyResult> IsRedundant(const Catalog* catalog,
                                     const QuerySet& set, std::size_t index,
                                     SearchLimits limits = {});

/// True when no member of `set` is redundant. `inconclusive` (optional out)
/// is set when some membership search hit its budget. All leave-one-out
/// tests share `engine`.
Result<bool> IsNonredundantSet(Engine& engine, const QuerySet& set,
                               SearchLimits limits = {},
                               bool* inconclusive = nullptr);

/// Legacy convenience: a private engine shared across the member tests.
Result<bool> IsNonredundantSet(const Catalog* catalog, const QuerySet& set,
                               SearchLimits limits = {},
                               bool* inconclusive = nullptr);

/// Outcome of redundancy elimination on a view.
struct NonredundantViewResult {
  /// The equivalent nonredundant view (Theorem 3.1.4), made of a subset of
  /// the input's definitions.
  View view;
  /// Indices of the surviving definitions in the input view.
  std::vector<std::size_t> kept;
  /// True when some search hit its budget (the result is then nonredundant
  /// only as far as the budget could see).
  bool inconclusive = false;
};

/// Theorem 3.1.4: repeatedly drops redundant (and mapping-duplicate)
/// definitions until none remains. Every round of the fixpoint shares
/// `engine`: the closure frontier explored for the full set seeds the
/// shrunken sets' searches.
Result<NonredundantViewResult> MakeNonredundant(Engine& engine,
                                                const View& view,
                                                SearchLimits limits = {});

/// Legacy convenience: a private engine for the whole fixpoint.
Result<NonredundantViewResult> MakeNonredundant(const View& view,
                                                SearchLimits limits = {});

/// The Lemma 3.1.6 bound: an integer n such that every nonredundant query
/// set with the same closure as `set` has at most n members. We use
/// n = sum over members of the reduced row count, which dominates the
/// lemma's count of construction-template relation-name occurrences.
std::size_t NonredundantSizeBound(Engine& engine, const QuerySet& set);

/// Legacy convenience: reduces through a throwaway engine.
std::size_t NonredundantSizeBound(const Catalog& catalog,
                                  const QuerySet& set);

}  // namespace viewcap

#endif  // VIEWCAP_VIEWS_REDUNDANCY_H_
