// Redundancy in query sets and views (Section 3.1).
#ifndef VIEWCAP_VIEWS_REDUNDANCY_H_
#define VIEWCAP_VIEWS_REDUNDANCY_H_

#include "views/capacity.h"

namespace viewcap {

/// Outcome of a redundancy test for one member of a query set.
struct RedundancyResult {
  /// True when the member is in the closure of the others (i.e. redundant).
  bool redundant = false;
  /// The membership evidence: when redundant, `membership.witness` is an
  /// expression over the remaining handles deriving the member.
  MembershipResult membership;
};

/// Is member `index` of `set` redundant, i.e. in the closure of the other
/// members (Section 3.1)?
Result<RedundancyResult> IsRedundant(const Catalog* catalog,
                                     const QuerySet& set, std::size_t index,
                                     SearchLimits limits = {});

/// True when no member of `set` is redundant. `inconclusive` (optional out)
/// is set when some membership search hit its budget.
Result<bool> IsNonredundantSet(const Catalog* catalog, const QuerySet& set,
                               SearchLimits limits = {},
                               bool* inconclusive = nullptr);

/// Outcome of redundancy elimination on a view.
struct NonredundantViewResult {
  /// The equivalent nonredundant view (Theorem 3.1.4), made of a subset of
  /// the input's definitions.
  View view;
  /// Indices of the surviving definitions in the input view.
  std::vector<std::size_t> kept;
  /// True when some search hit its budget (the result is then nonredundant
  /// only as far as the budget could see).
  bool inconclusive = false;
};

/// Theorem 3.1.4: repeatedly drops redundant (and mapping-duplicate)
/// definitions until none remains.
Result<NonredundantViewResult> MakeNonredundant(const View& view,
                                                SearchLimits limits = {});

/// The Lemma 3.1.6 bound: an integer n such that every nonredundant query
/// set with the same closure as `set` has at most n members. We use
/// n = sum over members of the reduced row count, which dominates the
/// lemma's count of construction-template relation-name occurrences.
std::size_t NonredundantSizeBound(const Catalog& catalog,
                                  const QuerySet& set);

}  // namespace viewcap

#endif  // VIEWCAP_VIEWS_REDUNDANCY_H_
