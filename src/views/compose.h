// View composition: views of views (the Section 1.3 observation that a
// view schema is itself a database schema, closed under taking views).
#ifndef VIEWCAP_VIEWS_COMPOSE_H_
#define VIEWCAP_VIEWS_COMPOSE_H_

#include "engine/engine.h"
#include "views/view.h"

namespace viewcap {

/// Flattens a view `outer` whose underlying schema is `inner`'s view
/// schema into an equivalent view over `inner`'s base: every defining
/// query of `outer` is expanded through `inner`'s definitions
/// (Lemma 1.4.1), so that for every instantiation alpha of the base,
///   alpha_{Compose(inner,outer)} and (alpha_{inner})_{outer}
/// agree on outer's view schema. By construction
/// Cap(Compose(inner, outer)) is contained in Cap(inner): composition can
/// only lose capacity, never gain it.
Result<View> Compose(const View& inner, const View& outer);

/// Same composition, but the composed view's defining tableaux are interned
/// into `engine` before returning. Downstream analyses of the composite
/// (equivalence, redundancy, simplification) through the same engine then
/// start from already-reduced representatives.
Result<View> Compose(Engine& engine, const View& inner, const View& outer);

/// Renders a view (plus its underlying schema) back into the textual
/// program syntax of algebra/parser.h; Analyzer::Load on the output
/// recreates an identical view. Useful for persisting Simplify results.
std::string ExportProgram(const View& view);

}  // namespace viewcap

#endif  // VIEWCAP_VIEWS_COMPOSE_H_
