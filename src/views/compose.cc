#include "views/compose.h"

#include "algebra/printer.h"
#include "base/strings.h"

namespace viewcap {

Result<View> Compose(const View& inner, const View& outer) {
  if (&inner.catalog() != &outer.catalog()) {
    return Status::IllFormed("views must share a catalog");
  }
  DbSchema inner_schema = inner.ViewSchema();
  for (const ViewDefinition& d : outer.definitions()) {
    for (RelId rel : d.query->RelNames()) {
      if (!inner_schema.Contains(rel)) {
        return Status::IllFormed(
            StrCat("outer view query mentions '",
                   inner.catalog().RelationName(rel),
                   "', which is not in the inner view's schema"));
      }
    }
  }
  const Definitions inner_defs = inner.AsDefinitions();
  std::vector<std::pair<RelId, ExprPtr>> defs;
  defs.reserve(outer.size());
  for (const ViewDefinition& d : outer.definitions()) {
    VIEWCAP_ASSIGN_OR_RETURN(ExprPtr expanded,
                             Expand(inner.catalog(), d.query, inner_defs));
    defs.push_back({d.rel, std::move(expanded)});
  }
  std::string name = StrCat(outer.name(), "_over_", inner.name());
  return View::Create(&inner.catalog(), inner.base(), std::move(defs),
                      std::move(name));
}

Result<View> Compose(Engine& engine, const View& inner, const View& outer) {
  VIEWCAP_ASSIGN_OR_RETURN(View composed, Compose(inner, outer));
  // Warm the engine: the composite's tableaux are what downstream analyses
  // will reduce and compare first.
  for (const ViewDefinition& d : composed.definitions()) {
    engine.Intern(d.tableau);
  }
  return composed;
}

std::string ExportProgram(const View& view) {
  const Catalog& catalog = view.catalog();
  std::string out = "schema {\n";
  for (RelId rel : view.base().relations()) {
    std::vector<std::string> attrs;
    for (AttrId a : catalog.RelationScheme(rel)) {
      attrs.push_back(catalog.AttributeName(a));
    }
    out += StrCat("  ", catalog.RelationName(rel), "(", StrJoin(attrs, ", "),
                  ");\n");
  }
  out += "}\n";
  out += StrCat("view ", view.name().empty() ? "V" : view.name(), " {\n");
  for (const ViewDefinition& d : view.definitions()) {
    out += StrCat("  ", catalog.RelationName(d.rel), " := ",
                  ToString(*d.query, catalog), ";\n");
  }
  out += "}\n";
  return out;
}

}  // namespace viewcap
