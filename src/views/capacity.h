// Query capacity: closure membership (Theorems 1.5.2, 2.3.2, 2.4.11).
#ifndef VIEWCAP_VIEWS_CAPACITY_H_
#define VIEWCAP_VIEWS_CAPACITY_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/enumerator.h"
#include "algebra/expr.h"
#include "engine/engine.h"
#include "tableau/substitution.h"
#include "views/view.h"

namespace viewcap {

// MembershipResult lives in engine/engine.h (the engine's verdict cache
// stores it); it is re-exported here for the views-layer callers.

/// A finite named query set F of a database schema. Each member query
/// (a template over the schema's universe) is paired with a "handle"
/// relation name of type TRS(query); constructions are substitutions
/// through these handles, exactly as a view's capacity is generated through
/// its schema names (Theorem 1.5.2: Cap(V) = closure of F).
class QuerySet {
 public:
  struct Member {
    RelId handle = kInvalidRel;
    Tableau query;
  };

  QuerySet() = default;

  /// From explicit handle/query pairs; each handle's type must equal the
  /// query's TRS and every query must be over `universe`.
  static Result<QuerySet> Create(const Catalog* catalog, AttrSet universe,
                                 std::vector<Member> members);

  /// Mints fresh handles (Catalog::MintRelation) for `queries`.
  static Result<QuerySet> FromTableaux(Catalog* catalog, AttrSet universe,
                                       std::vector<Tableau> queries);

  /// The defining query set of a view, with the view relation names as
  /// handles.
  static QuerySet FromView(const View& view);

  const std::vector<Member>& members() const { return members_; }
  const AttrSet& universe() const { return universe_; }
  std::size_t size() const { return members_.size(); }

  /// The set without member `index` (for redundancy, Section 3.1).
  QuerySet Without(std::size_t index) const;

  /// This set plus extra members (for simplicity testing, Section 4.1).
  QuerySet With(std::vector<Member> extra) const;

  /// handle -> query template, the template assignment of constructions.
  TemplateAssignment AsAssignment() const;

  /// The handle names, in member order.
  std::vector<RelId> Handles() const;

 private:
  const Catalog* catalog_ = nullptr;
  AttrSet universe_;
  std::vector<Member> members_;
};

/// A construction T -> beta of a query Q from a query set, together with
/// the exhibited homomorphism from Q to T -> beta (Section 3.2's "exhibited
/// construction").
struct ExhibitedConstruction {
  /// The handle-level expression E whose Algorithm 2.1.1 template is T.
  /// May be null for hand-built constructions (the Section 3 machinery
  /// never reads it).
  ExprPtr expr;
  /// T: the handle-level template.
  Tableau level_template;
  /// The template assignment beta of the construction. The Section 3.2
  /// notion of a "T-block" compares assigned templates (beta(lambda) = T),
  /// not names: one construction may route several names to one member.
  TemplateAssignment beta;
  /// T -> beta; blocks[i] is the <tau_i, beta(eta_i)> block of T's i-th
  /// row.
  SubstitutionOutcome substitution;
  /// Homomorphism from the query Q into substitution.result.
  SymbolMap hom;
};

/// Decides membership in the closure of a query set, and with it membership
/// in Cap(V) (Theorem 2.4.11). Enumeration follows Lemma 2.4.10 organized
/// by handle-level expressions; candidates are deduplicated by equivalence
/// of their (reduced) expansions, which is a congruence for projection and
/// join (Lemma 2.3.1), so pruning preserves completeness.
///
/// All closure kernels route through an Engine: levels and expansions are
/// interned once, equivalence tests become TableauId comparisons, and
/// whole membership verdicts are cached per (set fingerprint, limits,
/// query class). Oracles built with the Engine* constructors share that
/// machinery across query sets — dominance's two directions, redundancy's
/// leave-one-out loops and the lattice all reuse one frontier; the legacy
/// constructors own a private engine and behave like the historical
/// implementation.
class CapacityOracle {
 public:
  /// Legacy: owns a private engine over `catalog`.
  CapacityOracle(const Catalog* catalog, QuerySet set,
                 SearchLimits limits = {});

  /// Cap(V) membership for a view's capacity (legacy, private engine).
  explicit CapacityOracle(const View& view, SearchLimits limits = {});

  /// Shares `engine` (and all its caches) with other oracles. The engine
  /// must be over the same catalog as the set and outlive the oracle.
  CapacityOracle(Engine* engine, QuerySet set, SearchLimits limits = {});

  /// Cap(V) membership through a shared engine.
  CapacityOracle(Engine* engine, const View& view, SearchLimits limits = {});

  /// Is `query` (a template over the set's universe) in the closure?
  Result<MembershipResult> Contains(const Tableau& query) const;

  /// Expression convenience: converts with Algorithm 2.1.1 first.
  Result<MembershipResult> Contains(const ExprPtr& query) const;

  /// Collects up to `max_results` exhibited constructions of `query` from
  /// the set (for the Section 3.2 essentiality machinery). Returns an empty
  /// vector when the query is not a member within limits.
  Result<std::vector<ExhibitedConstruction>> FindConstructions(
      const Tableau& query, std::size_t max_results) const;

  /// One pairwise-inequivalent member of the closure.
  struct CapacityEntry {
    /// Expression over the set's handles deriving the member.
    ExprPtr witness;
    /// The member's reduced template over the base schema.
    Tableau query;
  };

  /// Materializes the distinct (up to mapping equivalence) members of the
  /// closure derivable by handle-level expressions with at most
  /// `max_leaves` leaves, stopping after `max_entries` members or the
  /// oracle's candidate cap. Closures are infinite in general
  /// (Section 3.1's categories); this enumerates the finite size-bounded
  /// fragment — the shapes a view's users can actually write down — which
  /// is what the security auditing workflow inspects.
  Result<std::vector<CapacityEntry>> EnumerateCapacity(
      std::size_t max_leaves, std::size_t max_entries) const;

  const QuerySet& set() const { return set_; }
  const SearchLimits& limits() const { return limits_; }
  Engine& engine() const { return *engine_; }

 private:
  /// Verdict-cache key for `query_id`; includes the member-wise set
  /// fingerprint (handles AND query classes — witnesses are expressions
  /// over the handles, so sets with the same queries but different handles
  /// must not share verdicts) and the search limits.
  std::string VerdictKey(TableauId query_id) const;

  /// Interns every member query and builds the set fingerprint.
  void InternMembers();

  std::unique_ptr<Engine> owned_engine_;  // Legacy constructors only.
  Engine* engine_;                        // Never null.
  const Catalog* catalog_;
  QuerySet set_;
  SearchLimits limits_;
  std::vector<TableauId> member_ids_;  // Interned member query classes.
  std::vector<RelId> member_handles_;  // Member handles, in member order.
  std::string set_fingerprint_;

  /// Front-side memo for the expression overload of Contains, keyed by
  /// the query's rendering (unambiguous, so equal text means an equal
  /// expression tree and hence an identical Algorithm 2.1.1 template).
  /// The engine's verdict cache already answers warm repeats without a
  /// search, but still pays a tableau build plus fingerprinting per call;
  /// this memo makes a repeated query one string render and one probe.
  /// Size-capped rather than LRU: an oracle is a per-analysis object and
  /// its distinct-query set is small; a long-lived oracle past the cap
  /// just falls through to the (still cached) engine path.
  static constexpr std::size_t kExprMemoCap = 1 << 12;
  mutable std::mutex expr_memo_mu_;
  mutable std::unordered_map<std::string, MembershipResult> expr_memo_;
};

}  // namespace viewcap

#endif  // VIEWCAP_VIEWS_CAPACITY_H_
