// View dominance and equivalence (Sections 1.4-1.5, Theorem 2.4.12).
#ifndef VIEWCAP_VIEWS_EQUIVALENCE_H_
#define VIEWCAP_VIEWS_EQUIVALENCE_H_

#include "views/capacity.h"

namespace viewcap {

// DominanceResult is defined in engine/engine.h (the engine's dominance
// cache stores whole dominance answers) and re-exported here through
// views/capacity.h.

/// Cache key for a whole "does `v` dominate `w`" answer: the member-wise
/// exact fingerprints of both views (handles included — witnesses are
/// expressions over v's handles, and `missing` indexes w's definitions in
/// order) plus the search limits; `threads` is deliberately absent
/// (verdicts are thread-count invariant). The key contains no
/// process-local state — relation ids are catalog-load-deterministic and
/// TableauFingerprint is structural — so the persistent capacity index
/// stores dominance verdicts under this exact string (format versioned by
/// kFingerprintSchemeVersion).
std::string DominanceKeyFor(const View& v, const View& w,
                            const SearchLimits& limits);

/// Tests whether `v` dominates `w` through a shared engine: the oracle
/// over v reuses every template class and verdict the engine has already
/// seen. The views must share the underlying universe and the engine's
/// catalog.
Result<DominanceResult> Dominates(Engine& engine, const View& v,
                                  const View& w, SearchLimits limits = {});

/// Legacy convenience: a private engine per call.
Result<DominanceResult> Dominates(const View& v, const View& w,
                                  SearchLimits limits = {});

/// Outcome of the equivalence test (Theorem 1.5.5 / 2.4.12).
struct EquivalenceResult {
  bool equivalent = false;
  bool inconclusive = false;
  DominanceResult v_over_w;  ///< Does v dominate w?
  DominanceResult w_over_v;  ///< Does w dominate v?
};

/// Theorem 2.4.12: decides whether `v` and `w` are equivalent
/// (Cap(V) = Cap(W)). Both containment directions share `engine`, so the
/// levels and expansions interned while testing Cap(W) subset Cap(V) are
/// reused by the reverse direction.
Result<EquivalenceResult> AreEquivalent(Engine& engine, const View& v,
                                        const View& w,
                                        SearchLimits limits = {});

/// Legacy convenience: a private engine shared by the two directions.
Result<EquivalenceResult> AreEquivalent(const View& v, const View& w,
                                        SearchLimits limits = {});

}  // namespace viewcap

#endif  // VIEWCAP_VIEWS_EQUIVALENCE_H_
