#include "lint/baseline.h"

#include <algorithm>
#include <utility>

#include "base/strings.h"

namespace viewcap {

namespace {

std::string EntryKey(std::string_view code, std::string_view message) {
  return StrCat(code, "\t", message);
}

}  // namespace

Baseline ParseBaseline(std::string_view text) {
  Baseline baseline;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;
    if (line.find('\t') == std::string_view::npos) continue;  // Malformed.
    ++baseline.entries[std::string(line)];
    if (pos > text.size()) break;
  }
  return baseline;
}

std::string WriteBaseline(const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::string> lines;
  lines.reserve(diagnostics.size());
  for (const Diagnostic& d : diagnostics) {
    lines.push_back(EntryKey(d.code, d.message));
  }
  std::sort(lines.begin(), lines.end());
  std::string out =
      "# viewcap-lint baseline: one \"<code>\\t<message>\" per accepted "
      "finding.\n"
      "# Regenerate with: viewcap_cli lint <file> --write-baseline=<this>\n";
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<Diagnostic> FilterBaseline(std::vector<Diagnostic> diagnostics,
                                       const Baseline& baseline,
                                       std::size_t* suppressed) {
  if (suppressed != nullptr) *suppressed = 0;
  if (baseline.empty()) return diagnostics;
  std::map<std::string, std::size_t> remaining = baseline.entries;
  std::vector<Diagnostic> kept;
  kept.reserve(diagnostics.size());
  for (Diagnostic& d : diagnostics) {
    auto it = remaining.find(EntryKey(d.code, d.message));
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      if (suppressed != nullptr) ++*suppressed;
      continue;
    }
    kept.push_back(std::move(d));
  }
  return kept;
}

}  // namespace viewcap
