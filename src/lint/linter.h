// viewcap-lint: static analysis over .vcp view programs.
//
// The linter parses a program leniently (algebra/ast.h), then runs two
// families of rules:
//
// Structural rules — pure static analysis over the raw AST, no closure
// computation. One finding per occurrence:
//   VCL000 syntax-error            (error)   unparseable surface syntax
//   VCL001 undefined-relation      (error)   name never declared
//   VCL002 unknown-attribute       (error)   projection attribute outside
//                                            the operand's scheme TRS(E)
//   VCL003 empty-attr-list         (error)   empty projection list or
//                                            relation declared with an
//                                            empty scheme
//   VCL004 duplicate-attribute     (warning) repeated attribute in a
//                                            projection list / declaration
//   VCL005 identity-projection     (note)    pi onto the full scheme is
//                                            the identity map
//   VCL006 duplicate-definition    (error)   view relation name defined
//                                            twice (any view)
//   VCL007 shadowed-relation       (error)   definition shadows a base
//                                            relation
//   VCL008 unused-relation         (warning) schema relation never read by
//                                            any definition
//   VCL009 conflicting-declaration (error/warning) relation redeclared
//                                            with a different / identical
//                                            scheme
//
// Semantic rules — bounded, paper-backed closure analyses; they run only
// over definitions whose queries resolved cleanly, and stay silent when a
// search budget is exhausted (no finding is better than a wrong one):
//   VCL101 redundant-definition    (warning) the defining query is in the
//                                            closure of the view's other
//                                            definitions (Theorem 3.1.4)
//   VCL102 not-simplified          (warning) the definition is not simple,
//                                            so the view is not in the
//                                            Section 4 normal form
//   VCL103 equivalent-definitions  (warning) two defining queries are
//                                            equal up to canonical form
//                                            (Section 2 canonical tableaux)
//   VCL104 reconstructible-definition (note) the query is derivable from
//                                            the definitions of the other
//                                            views in the program
#ifndef VIEWCAP_LINT_LINTER_H_
#define VIEWCAP_LINT_LINTER_H_

#include <cstddef>
#include <string_view>

#include "algebra/enumerator.h"
#include "lint/diagnostics.h"

namespace viewcap {

struct LintOptions {
  /// Run the VCL1xx closure-based rules. Structural rules always run.
  bool semantic = true;
  /// Budgets for the closure searches behind the semantic rules.
  SearchLimits limits;
  /// Semantic rules are skipped entirely (silently) when the program has
  /// more resolved definitions than this, keeping lint time predictable on
  /// machine-generated programs.
  std::size_t max_semantic_definitions = 24;
};

struct LintResult {
  /// All findings, sorted by source position.
  std::vector<Diagnostic> diagnostics;

  std::size_t Count(Severity severity) const;
  bool HasErrors() const { return Count(Severity::kError) > 0; }
  bool HasWarnings() const { return Count(Severity::kWarning) > 0; }
};

/// The rule-driven analysis engine. Stateless between runs; each Run owns a
/// private catalog, so linting never mutates caller state.
class Linter {
 public:
  explicit Linter(LintOptions options = {}) : options_(options) {}

  /// Lints `program_text` (the full .vcp source).
  LintResult Run(std::string_view program_text) const;

  const LintOptions& options() const { return options_; }

 private:
  LintOptions options_;
};

}  // namespace viewcap

#endif  // VIEWCAP_LINT_LINTER_H_
