// viewcap-lint: static analysis over .vcp view programs.
//
// The linter parses a program leniently (algebra/ast.h), then runs three
// families of rules:
//
// Structural rules — pure static analysis over the raw AST, no closure
// computation. One finding per occurrence:
//   VCL000 syntax-error            (error)   unparseable surface syntax
//   VCL001 undefined-relation      (error)   name never declared
//   VCL002 unknown-attribute       (error)   projection attribute outside
//                                            the operand's scheme TRS(E)
//   VCL003 empty-attr-list         (error)   empty projection list or
//                                            relation declared with an
//                                            empty scheme
//   VCL004 duplicate-attribute     (warning) repeated attribute in a
//                                            projection list / declaration
//                                            [fix-it: drop the repeat]
//   VCL005 identity-projection     (note)    pi onto the full scheme is
//                                            the identity map
//                                            [fix-it: unwrap the operand]
//   VCL006 duplicate-definition    (error)   view relation name defined
//                                            twice (any view)
//   VCL007 shadowed-relation       (error)   definition shadows a base
//                                            relation
//   VCL008 unused-relation         (warning) schema relation never read by
//                                            any definition
//   VCL009 conflicting-declaration (error/warning) relation redeclared
//                                            with a different / identical
//                                            scheme
//   VCL010 semantic-skipped        (note)    the VCL1xx/VCL2xx passes were
//                                            skipped: the program exceeds
//                                            max_semantic_definitions
//
// Semantic rules — bounded, paper-backed closure analyses; they run only
// over definitions whose queries resolved cleanly, and stay silent when a
// search budget is exhausted (no finding is better than a wrong one):
//   VCL101 redundant-definition    (warning) the defining query is in the
//                                            closure of the view's other
//                                            definitions (Theorem 3.1.4)
//                                            [fix-it: drop the definition]
//   VCL102 not-simplified          (warning) the definition is not simple,
//                                            so the view is not in the
//                                            Section 4 normal form
//   VCL103 equivalent-definitions  (warning) two defining queries are
//                                            equal up to canonical form
//                                            (Section 2 canonical tableaux)
//   VCL104 reconstructible-definition (note) the query is derivable from
//                                            the definitions of the other
//                                            views in the program
//
// Whole-program rules — the VCL2xx family analyzes the program as one
// unit on the run's shared memoizing Engine (closure searches are sharded
// per SearchLimits::threads). VCL203 is graph-only and always runs; the
// rest are gated like the VCL1xx rules:
//   VCL201 subsumed-view           (warning) every defining query of the
//                                            view is answerable from the
//                                            remaining program: Cap(V) is
//                                            dominated, the view is dead
//                                            [fix-it: delete the view]
//   VCL202 composition-capacity-loss (note)  a view composed purely from
//                                            another view strictly loses
//                                            capacity (Section 1.3: the
//                                            containment Cap(outer) subset
//                                            Cap(inner) is proper)
//   VCL203 definition-cycle        (error)   definitions reference each
//                                            other cyclically: no
//                                            stratified Lemma 1.4.1
//                                            expansion exists
//   VCL204 determinacy-boundary    (note)    a whole-program check ran out
//                                            of budget; the note cites the
//                                            decidability boundary
//                                            (project-select determinacy
//                                            is decidable, arXiv:2411.08874;
//                                            general CQ determinacy is not,
//                                            arXiv:1501.01817)
//
// Findings can be suppressed inline: a comment `-- vcl-ignore(VCL101)`
// (also `#` / `//`) suppresses the listed codes on its own line, or on the
// next line when the comment stands alone. Suppressed findings are counted
// in LintResult::suppressed. Fix-its ride on Diagnostic::fixits and are
// applied by lint/fixits.h (CLI: `lint --fix`).
#ifndef VIEWCAP_LINT_LINTER_H_
#define VIEWCAP_LINT_LINTER_H_

#include <cstddef>
#include <string_view>

#include "algebra/enumerator.h"
#include "lint/diagnostics.h"

namespace viewcap {

struct LintOptions {
  /// Run the VCL1xx closure-based rules. Structural rules always run.
  bool semantic = true;
  /// Budgets for the closure searches behind the semantic rules.
  SearchLimits limits;
  /// Semantic rules are skipped entirely (silently) when the program has
  /// more resolved definitions than this, keeping lint time predictable on
  /// machine-generated programs.
  std::size_t max_semantic_definitions = 24;
};

struct LintResult {
  /// All findings, sorted by source position.
  std::vector<Diagnostic> diagnostics;
  /// Findings dropped by inline `vcl-ignore(...)` comments.
  std::size_t suppressed = 0;

  std::size_t Count(Severity severity) const;
  bool HasErrors() const { return Count(Severity::kError) > 0; }
  bool HasWarnings() const { return Count(Severity::kWarning) > 0; }
  /// Findings carrying machine-applicable fix-its.
  std::size_t Fixable() const;
};

/// The rule-driven analysis engine. Stateless between runs; each Run owns a
/// private catalog, so linting never mutates caller state.
class Linter {
 public:
  explicit Linter(LintOptions options = {}) : options_(options) {}

  /// Lints `program_text` (the full .vcp source).
  LintResult Run(std::string_view program_text) const;

  const LintOptions& options() const { return options_; }

 private:
  LintOptions options_;
};

}  // namespace viewcap

#endif  // VIEWCAP_LINT_LINTER_H_
