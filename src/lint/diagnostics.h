// The diagnostics layer of viewcap-lint: typed findings with severities,
// stable codes and source spans, plus renderers for terminals and tools.
#ifndef VIEWCAP_LINT_DIAGNOSTICS_H_
#define VIEWCAP_LINT_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "base/source.h"

namespace viewcap {

/// Finding severities, ordered from least to most severe.
enum class Severity {
  kNote,     ///< Stylistic or informational; never affects exit status.
  kWarning,  ///< Suspicious but evaluable (redundancy, unused relations).
  kError,    ///< The program is broken or would be rejected at load time.
};

/// "note" / "warning" / "error".
std::string_view SeverityName(Severity severity);

/// One machine-applicable edit: replace the text covered by `span` with
/// `replacement` (empty replacement = deletion). Spans are self-contained —
/// an edit carries everything needed to apply it, so fix-its survive being
/// serialized through JSON/SARIF. Applied by ApplyEdits (lint/fixits.h).
struct TextEdit {
  SourceSpan span;
  std::string replacement;

  bool operator==(const TextEdit&) const = default;
};

/// One finding. `code` is a stable identifier ("VCL001"); codes are listed
/// in lint/linter.h next to the rules that emit them.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string code;
  SourceSpan span;
  std::string message;
  /// Optional supplementary line (e.g. the witness expression that proves a
  /// definition redundant). Empty when absent.
  std::string note;
  /// Machine-applicable fix: zero or more edits that, applied together,
  /// resolve the finding. Only attached when the fix is known to be safe
  /// (the fixable rules are marked in lint/rules.h).
  std::vector<TextEdit> fixits;

  bool fixable() const { return !fixits.empty(); }
};

/// Collects diagnostics across lint passes. Rules append in discovery
/// order; callers sort once at the end for stable, position-ordered output.
class DiagnosticSink {
 public:
  void Add(Diagnostic diagnostic);

  /// Convenience: build-and-add.
  void Report(Severity severity, std::string_view code, SourceSpan span,
              std::string message, std::string note = "");

  /// Sorts by (position, code, message).
  void Sort();

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::vector<Diagnostic> Take() { return std::move(diagnostics_); }

  std::size_t Count(Severity severity) const;
  bool HasErrors() const { return Count(Severity::kError) > 0; }
  bool empty() const { return diagnostics_.empty(); }

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Renders diagnostics one per line in the conventional compiler format:
///   <file>:<line>:<column>: <severity>: <message> [<code>]
/// with indented "note: ..." continuation lines, followed by a summary
/// ("2 errors, 1 warning."). Empty input renders an empty string.
std::string RenderText(const std::vector<Diagnostic>& diagnostics,
                       std::string_view filename);

/// Renders diagnostics as a JSON object:
///   {"file": ..., "diagnostics": [{"severity", "code", "line", "column",
///    "endLine", "endColumn", "message", "note", "fixits"}...],
///    "errors": N, "warnings": N, "notes": N}
/// ("note" and "fixits" appear only when present.) Deterministic (caller
/// should Sort() first) and stable across runs, so the output is
/// golden-testable and machine-consumable.
std::string RenderJson(const std::vector<Diagnostic>& diagnostics,
                       std::string_view filename);

/// Escapes `text` for embedding in a JSON string literal (shared by the
/// JSON and SARIF renderers).
std::string JsonEscape(std::string_view text);

}  // namespace viewcap

#endif  // VIEWCAP_LINT_DIAGNOSTICS_H_
