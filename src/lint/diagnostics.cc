#include "lint/diagnostics.h"

#include <algorithm>
#include <tuple>

#include "base/strings.h"

namespace viewcap {

namespace {

std::string Plural(std::size_t n, std::string_view word) {
  return StrCat(n, " ", word, n == 1 ? "" : "s");
}

}  // namespace

/// JSON string escaping for the small subset our messages can contain.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

void DiagnosticSink::Add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticSink::Report(Severity severity, std::string_view code,
                            SourceSpan span, std::string message,
                            std::string note) {
  Add(Diagnostic{severity, std::string(code), span, std::move(message),
                 std::move(note), /*fixits=*/{}});
}

void DiagnosticSink::Sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.span.begin, a.code, a.message) <
                            std::tie(b.span.begin, b.code, b.message);
                   });
}

std::size_t DiagnosticSink::Count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string RenderText(const std::vector<Diagnostic>& diagnostics,
                       std::string_view filename) {
  if (diagnostics.empty()) return "";
  std::string out;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
    out += StrCat(filename, ":", d.span.begin.line, ":", d.span.begin.column,
                  ": ", SeverityName(d.severity), ": ", d.message, " [",
                  d.code, "]\n");
    if (!d.note.empty()) {
      out += StrCat("    note: ", d.note, "\n");
    }
  }
  out += StrCat(Plural(errors, "error"), ", ", Plural(warnings, "warning"),
                ", ", Plural(diagnostics.size() - errors - warnings, "note"),
                ".\n");
  return out;
}

std::string RenderJson(const std::vector<Diagnostic>& diagnostics,
                       std::string_view filename) {
  std::string out = StrCat("{\"file\": \"", JsonEscape(filename),
                           "\", \"diagnostics\": [");
  bool first = true;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
  for (const Diagnostic& d : diagnostics) {
    switch (d.severity) {
      case Severity::kError: ++errors; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kNote: ++notes; break;
    }
    out += StrCat(first ? "\n" : ",\n", "  {\"severity\": \"",
                  SeverityName(d.severity), "\", \"code\": \"",
                  JsonEscape(d.code), "\", \"line\": ", d.span.begin.line,
                  ", \"column\": ", d.span.begin.column,
                  ", \"endLine\": ", d.span.end.line,
                  ", \"endColumn\": ", d.span.end.column,
                  ", \"message\": \"", JsonEscape(d.message), "\"");
    if (!d.note.empty()) {
      out += StrCat(", \"note\": \"", JsonEscape(d.note), "\"");
    }
    if (!d.fixits.empty()) {
      out += ", \"fixits\": [";
      bool first_edit = true;
      for (const TextEdit& edit : d.fixits) {
        out += StrCat(first_edit ? "" : ", ", "{\"line\": ",
                      edit.span.begin.line,
                      ", \"column\": ", edit.span.begin.column,
                      ", \"endLine\": ", edit.span.end.line,
                      ", \"endColumn\": ", edit.span.end.column,
                      ", \"replacement\": \"",
                      JsonEscape(edit.replacement), "\"}");
        first_edit = false;
      }
      out += "]";
    }
    out += "}";
    first = false;
  }
  out += StrCat(diagnostics.empty() ? "" : "\n", "], \"errors\": ", errors,
                ", \"warnings\": ", warnings, ", \"notes\": ", notes, "}\n");
  return out;
}

}  // namespace viewcap
