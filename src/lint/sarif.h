// SARIF 2.1.0 rendering of lint diagnostics, the interchange format that
// CI systems and code-scanning UIs ingest directly. One run, one driver
// ("viewcap-lint"); the `rules` array carries metadata (from lint/rules.h)
// for exactly the codes that fired, results reference it by ruleIndex, and
// fix-its are exported as SARIF `fixes` with deletedRegion/insertedContent
// replacements. Deterministic (sort the diagnostics first), so the output
// is golden-testable.
#ifndef VIEWCAP_LINT_SARIF_H_
#define VIEWCAP_LINT_SARIF_H_

#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostics.h"

namespace viewcap {

/// Renders `diagnostics` as one SARIF 2.1.0 log with a single run.
std::string RenderSarif(const std::vector<Diagnostic>& diagnostics,
                        std::string_view filename);

}  // namespace viewcap

#endif  // VIEWCAP_LINT_SARIF_H_
