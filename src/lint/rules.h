// The rule registry of viewcap-lint: one metadata record per stable rule
// code. The registry is the single source for tool-facing rule metadata —
// the SARIF renderer's `tool.driver.rules` array, the `--fix` engine's
// "which codes are fixable" decision and the README's rule inventory all
// read it, so a new rule only has to be described once.
#ifndef VIEWCAP_LINT_RULES_H_
#define VIEWCAP_LINT_RULES_H_

#include <string_view>
#include <vector>

namespace viewcap {

/// Metadata for one lint rule.
struct RuleInfo {
  /// Stable code ("VCL001").
  std::string_view code;
  /// Stable kebab-case rule name ("undefined-relation").
  std::string_view name;
  /// One-sentence description, rendered into SARIF shortDescription.
  std::string_view summary;
  /// True when the rule attaches machine-applicable fix-its.
  bool fixable = false;
};

/// All registered rules, ordered by code. Every code a rule can emit is
/// registered here (enforced by a lint test).
const std::vector<RuleInfo>& AllRules();

/// The registry entry for `code`, or nullptr for unknown codes (renderers
/// degrade gracefully on forward-compatible inputs).
const RuleInfo* FindRule(std::string_view code);

}  // namespace viewcap

#endif  // VIEWCAP_LINT_RULES_H_
