// Baseline suppression for incremental adoption: a baseline file records
// the findings a program is known (and for now allowed) to have, and
// `viewcap_cli lint --baseline=<file>` subtracts them from the output, so
// a large generated program can turn the linter on today and burn the
// debt down finding by finding.
//
// Format: plain text, one finding per line as "<code>\t<message>"; blank
// lines and lines starting with '#' are comments. Matching is by
// (code, message) multiset — messages carry the relation/attribute names,
// so entries survive reformatting and line shifts, and each entry
// suppresses at most one occurrence per run (a new second duplicate still
// surfaces).
#ifndef VIEWCAP_LINT_BASELINE_H_
#define VIEWCAP_LINT_BASELINE_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostics.h"

namespace viewcap {

/// A parsed baseline: (code, message) -> allowed occurrence count.
struct Baseline {
  std::map<std::string, std::size_t> entries;

  bool empty() const { return entries.empty(); }
};

/// Parses baseline text. Malformed lines (no tab) are ignored: a baseline
/// can never make lint fail.
Baseline ParseBaseline(std::string_view text);

/// Serializes `diagnostics` as a baseline file (sorted, deterministic).
std::string WriteBaseline(const std::vector<Diagnostic>& diagnostics);

/// Removes from `diagnostics` every finding matched by `baseline` (each
/// entry suppresses up to its recorded count). Returns the survivors in
/// the original order; `*suppressed` (optional) receives the number
/// removed.
std::vector<Diagnostic> FilterBaseline(std::vector<Diagnostic> diagnostics,
                                       const Baseline& baseline,
                                       std::size_t* suppressed = nullptr);

}  // namespace viewcap

#endif  // VIEWCAP_LINT_BASELINE_H_
