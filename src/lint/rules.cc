#include "lint/rules.h"

namespace viewcap {

const std::vector<RuleInfo>& AllRules() {
  static const std::vector<RuleInfo> kRules = {
      {"VCL000", "syntax-error", "The surface syntax is unparseable.",
       false},
      {"VCL001", "undefined-relation",
       "A referenced relation name is never declared.", false},
      {"VCL002", "unknown-attribute",
       "A projection attribute is outside the operand's scheme TRS(E).",
       false},
      {"VCL003", "empty-attr-list",
       "A projection list or relation scheme is empty.", false},
      {"VCL004", "duplicate-attribute",
       "An attribute is repeated in a projection list or declaration.",
       true},
      {"VCL005", "identity-projection",
       "A projection onto the full scheme is the identity map.", true},
      {"VCL006", "duplicate-definition",
       "A view relation name is defined twice.", false},
      {"VCL007", "shadowed-relation",
       "A definition shadows a base relation.", false},
      {"VCL008", "unused-relation",
       "A schema relation is never read by any definition.", false},
      {"VCL009", "conflicting-declaration",
       "A relation is redeclared, with the same or a different scheme.",
       false},
      {"VCL010", "semantic-skipped",
       "The semantic passes were skipped because the program exceeds "
       "max-semantic-definitions.",
       false},
      {"VCL101", "redundant-definition",
       "The defining query is in the closure of the view's other "
       "definitions (Theorem 3.1.4).",
       true},
      {"VCL102", "not-simplified",
       "The definition is not simple, so the view is not in the Section 4 "
       "normal form.",
       false},
      {"VCL103", "equivalent-definitions",
       "Two defining queries are equal up to canonical form of their "
       "tableaux.",
       false},
      {"VCL104", "reconstructible-definition",
       "The query is derivable from the definitions of the other views in "
       "the program.",
       false},
      {"VCL201", "subsumed-view",
       "Every defining query of the view is answerable from the rest of "
       "the program: its capacity is dominated and the view is dead "
       "weight.",
       true},
      {"VCL202", "composition-capacity-loss",
       "A view composed from another view strictly loses capacity: some "
       "definition of the inner view is no longer answerable "
       "(Section 1.3).",
       false},
      {"VCL203", "definition-cycle",
       "View definitions reference each other cyclically; the program has "
       "no stratified expansion (Lemma 1.4.1).",
       false},
      {"VCL204", "determinacy-boundary",
       "A whole-program capacity check exhausted its search budget; the "
       "verdict sits at the determinacy decidability boundary.",
       false},
  };
  return kRules;
}

const RuleInfo* FindRule(std::string_view code) {
  for (const RuleInfo& rule : AllRules()) {
    if (rule.code == code) return &rule;
  }
  return nullptr;
}

}  // namespace viewcap
