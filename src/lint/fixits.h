// The fix engine of viewcap-lint: applies the machine-applicable TextEdits
// that rules attach to their diagnostics (lint/diagnostics.h) back onto the
// program text.
//
// Spans are line/column based (base/source.h); LineMap converts them to
// byte offsets against one fixed text. Edits never overlap within one
// diagnostic; *across* diagnostics they may (a redundant definition inside
// a subsumed view), so ApplyEdits accepts greedily in position order and
// skips edits overlapping an already-accepted one. FixProgram then drives
// lint -> apply to a fixpoint, which is what gives `viewcap_cli lint --fix`
// its idempotence guarantee: the returned text re-lints with zero fixable
// findings (nested findings such as an identity projection wrapping
// another one are resolved by the later rounds).
#ifndef VIEWCAP_LINT_FIXITS_H_
#define VIEWCAP_LINT_FIXITS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostics.h"
#include "lint/linter.h"

namespace viewcap {

/// Line/column -> byte offset conversion against one fixed text.
class LineMap {
 public:
  explicit LineMap(std::string_view text);

  /// Byte offset of a 1-based location, clamped into [0, text.size()].
  /// Columns past the end of a line clamp to the line's end.
  std::size_t Offset(const SourceLocation& loc) const;

  /// The 1-based location of a byte offset (inverse of Offset).
  SourceLocation Location(std::size_t offset) const;

  /// The substring covered by `span`.
  std::string Slice(const SourceSpan& span) const;

  std::size_t size() const { return text_.size(); }

 private:
  std::string_view text_;
  std::vector<std::size_t> line_starts_;  ///< Offset of each line's start.
};

/// Outcome of one ApplyEdits pass.
struct ApplyOutcome {
  std::string text;          ///< The edited program.
  std::size_t applied = 0;   ///< Edits applied.
  std::size_t skipped = 0;   ///< Edits skipped because they overlapped.
};

/// Applies `edits` to `text` in one pass. Edits are sorted by position;
/// overlapping edits are resolved greedily (the earlier-starting — for
/// ties, wider — edit wins; the rest are skipped and counted). Deletions
/// that leave a whitespace-only line delete the whole line.
ApplyOutcome ApplyEdits(std::string_view text,
                        std::vector<TextEdit> edits);

/// The edits of every fixable diagnostic in `diagnostics`, flattened.
std::vector<TextEdit> CollectFixits(
    const std::vector<Diagnostic>& diagnostics);

/// Outcome of the lint -> fix fixpoint.
struct FixOutcome {
  std::string text;               ///< The fixed program.
  std::size_t rounds = 0;         ///< Lint+apply rounds performed.
  std::size_t edits_applied = 0;  ///< Total edits applied across rounds.
  /// True when the final text lints with zero fixable findings (the
  /// normal case; false only if the round cap was hit).
  bool clean = false;
};

/// Repeatedly lints `text` with `options` and applies every fix-it until
/// no fixable finding remains (or `max_rounds` is hit, a backstop that a
/// well-formed rule set never reaches).
FixOutcome FixProgram(std::string_view text, const LintOptions& options,
                      std::size_t max_rounds = 8);

}  // namespace viewcap

#endif  // VIEWCAP_LINT_FIXITS_H_
