#include "lint/fixits.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace viewcap {

LineMap::LineMap(std::string_view text) : text_(text) {
  line_starts_.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') line_starts_.push_back(i + 1);
  }
}

std::size_t LineMap::Offset(const SourceLocation& loc) const {
  if (loc.line < 1) return 0;
  const std::size_t line = static_cast<std::size_t>(loc.line) - 1;
  if (line >= line_starts_.size()) return text_.size();
  const std::size_t start = line_starts_[line];
  std::size_t end = line + 1 < line_starts_.size()
                        ? line_starts_[line + 1]
                        : text_.size();
  // A location may not address past its line's newline.
  if (end > start && text_[end - 1] == '\n') --end;
  const std::size_t column =
      loc.column < 1 ? 0 : static_cast<std::size_t>(loc.column) - 1;
  return std::min(start + column, end);
}

SourceLocation LineMap::Location(std::size_t offset) const {
  offset = std::min(offset, text_.size());
  const auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(),
                                   offset);
  const std::size_t line = static_cast<std::size_t>(it - line_starts_.begin());
  // `it` points past the line containing `offset`; line >= 1 always since
  // line_starts_ front is 0.
  const std::size_t start = line_starts_[line - 1];
  return SourceLocation{static_cast<int>(line),
                        static_cast<int>(offset - start) + 1};
}

std::string LineMap::Slice(const SourceSpan& span) const {
  const std::size_t begin = Offset(span.begin);
  const std::size_t end = std::max(begin, Offset(span.end));
  return std::string(text_.substr(begin, end - begin));
}

namespace {

/// A positioned edit: byte range plus replacement.
struct RawEdit {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string replacement;
};

/// Widens a deletion that leaves a whitespace-only line into deleting the
/// whole line, so dropped statements do not bequeath blank lines.
void WidenDeletion(std::string_view text, RawEdit* edit) {
  std::size_t end = edit->end;
  while (end < text.size() && (text[end] == ' ' || text[end] == '\t')) {
    ++end;
  }
  if (end < text.size() && text[end] != '\n') return;
  std::size_t begin = edit->begin;
  while (begin > 0 && (text[begin - 1] == ' ' || text[begin - 1] == '\t')) {
    --begin;
  }
  if (begin > 0 && text[begin - 1] != '\n') return;
  edit->begin = begin;
  edit->end = end < text.size() ? end + 1 : end;  // Take the newline too.
}

}  // namespace

ApplyOutcome ApplyEdits(std::string_view text, std::vector<TextEdit> edits) {
  const LineMap map(text);
  std::vector<RawEdit> raw;
  raw.reserve(edits.size());
  for (TextEdit& edit : edits) {
    RawEdit r;
    r.begin = map.Offset(edit.span.begin);
    r.end = std::max(r.begin, map.Offset(edit.span.end));
    r.replacement = std::move(edit.replacement);
    if (r.replacement.empty()) WidenDeletion(text, &r);
    raw.push_back(std::move(r));
  }
  std::stable_sort(raw.begin(), raw.end(),
                   [](const RawEdit& a, const RawEdit& b) {
                     return std::tie(a.begin, b.end) <
                            std::tie(b.begin, a.end);
                   });
  ApplyOutcome outcome;
  outcome.text.reserve(text.size());
  std::size_t pos = 0;
  for (const RawEdit& edit : raw) {
    if (edit.begin < pos) {
      ++outcome.skipped;  // Overlaps an already-applied edit.
      continue;
    }
    outcome.text.append(text.substr(pos, edit.begin - pos));
    outcome.text.append(edit.replacement);
    pos = edit.end;
    ++outcome.applied;
  }
  outcome.text.append(text.substr(pos));
  return outcome;
}

std::vector<TextEdit> CollectFixits(
    const std::vector<Diagnostic>& diagnostics) {
  std::vector<TextEdit> edits;
  for (const Diagnostic& d : diagnostics) {
    edits.insert(edits.end(), d.fixits.begin(), d.fixits.end());
  }
  return edits;
}

FixOutcome FixProgram(std::string_view text, const LintOptions& options,
                      std::size_t max_rounds) {
  const Linter linter(options);
  FixOutcome outcome;
  outcome.text = std::string(text);
  for (std::size_t round = 0; round < max_rounds; ++round) {
    LintResult result = linter.Run(outcome.text);
    std::vector<TextEdit> edits = CollectFixits(result.diagnostics);
    if (edits.empty()) {
      outcome.clean = true;
      return outcome;
    }
    ++outcome.rounds;
    ApplyOutcome applied = ApplyEdits(outcome.text, std::move(edits));
    if (applied.applied == 0) return outcome;  // Nothing applicable: stop.
    outcome.edits_applied += applied.applied;
    outcome.text = std::move(applied.text);
  }
  outcome.clean = CollectFixits(linter.Run(outcome.text).diagnostics).empty();
  return outcome;
}

}  // namespace viewcap
