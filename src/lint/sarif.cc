#include "lint/sarif.h"

#include <algorithm>
#include <map>

#include "base/strings.h"
#include "lint/rules.h"

namespace viewcap {

namespace {

/// note -> "note", warning -> "warning", error -> "error" (SARIF levels
/// happen to share our severity names).
std::string_view SarifLevel(Severity severity) {
  return SeverityName(severity);
}

/// The SARIF region object for a span, e.g. {"startLine": 2, ...}.
std::string Region(const SourceSpan& span) {
  return StrCat("{\"startLine\": ", span.begin.line,
                ", \"startColumn\": ", span.begin.column,
                ", \"endLine\": ", span.end.line,
                ", \"endColumn\": ", span.end.column, "}");
}

}  // namespace

std::string RenderSarif(const std::vector<Diagnostic>& diagnostics,
                        std::string_view filename) {
  // The rules array lists exactly the codes that fired, sorted, so the
  // log is self-contained but not bloated by the full registry.
  std::map<std::string, std::size_t> rule_index;
  for (const Diagnostic& d : diagnostics) {
    rule_index.emplace(d.code, 0);
  }
  std::size_t next = 0;
  for (auto& [code, index] : rule_index) index = next++;

  const std::string uri = JsonEscape(filename);
  std::string out =
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"viewcap-lint\",\n"
      "          \"informationUri\": "
      "\"https://github.com/viewcap/viewcap\",\n"
      "          \"rules\": [";
  bool first = true;
  for (const auto& [code, index] : rule_index) {
    const RuleInfo* info = FindRule(code);
    out += StrCat(first ? "\n" : ",\n",
                  "            {\"id\": \"", JsonEscape(code), "\"");
    if (info != nullptr) {
      out += StrCat(", \"name\": \"", JsonEscape(info->name),
                    "\", \"shortDescription\": {\"text\": \"",
                    JsonEscape(info->summary), "\"}");
    }
    out += "}";
    first = false;
  }
  out += StrCat(rule_index.empty() ? "]\n" : "\n          ]\n",
                "        }\n"
                "      },\n"
                "      \"results\": [");
  first = true;
  for (const Diagnostic& d : diagnostics) {
    std::string message = d.message;
    if (!d.note.empty()) {
      message += "\nnote: ";
      message += d.note;
    }
    out += StrCat(first ? "\n" : ",\n",
                  "        {\n"
                  "          \"ruleId\": \"", JsonEscape(d.code), "\",\n",
                  "          \"ruleIndex\": ", rule_index.at(d.code), ",\n",
                  "          \"level\": \"", SarifLevel(d.severity), "\",\n",
                  "          \"message\": {\"text\": \"",
                  JsonEscape(message), "\"},\n",
                  "          \"locations\": [{\"physicalLocation\": "
                  "{\"artifactLocation\": {\"uri\": \"", uri,
                  "\"}, \"region\": ", Region(d.span), "}}]");
    if (!d.fixits.empty()) {
      out +=
          ",\n"
          "          \"fixes\": [{\"artifactChanges\": [{"
          "\"artifactLocation\": {\"uri\": \"" +
          std::string(uri) + "\"}, \"replacements\": [";
      bool first_edit = true;
      for (const TextEdit& edit : d.fixits) {
        out += StrCat(first_edit ? "" : ", ", "{\"deletedRegion\": ",
                      Region(edit.span));
        if (!edit.replacement.empty()) {
          out += StrCat(", \"insertedContent\": {\"text\": \"",
                        JsonEscape(edit.replacement), "\"}");
        }
        out += "}";
        first_edit = false;
      }
      out += "]}]}]";
    }
    out += "\n        }";
    first = false;
  }
  out += StrCat(diagnostics.empty() ? "]\n" : "\n      ]\n",
                "    }\n"
                "  ]\n"
                "}\n");
  return out;
}

}  // namespace viewcap
