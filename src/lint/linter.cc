#include "lint/linter.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "algebra/expand.h"
#include "algebra/parser.h"
#include "algebra/printer.h"
#include "base/strings.h"
#include "engine/engine.h"
#include "lint/fixits.h"
#include "tableau/build.h"
#include "views/capacity.h"
#include "views/redundancy.h"
#include "views/simplify.h"

namespace viewcap {

namespace {

// Stable rule codes (documented in lint/linter.h and lint/rules.h).
constexpr std::string_view kSyntaxError = "VCL000";
constexpr std::string_view kUndefinedRelation = "VCL001";
constexpr std::string_view kUnknownAttribute = "VCL002";
constexpr std::string_view kEmptyAttrList = "VCL003";
constexpr std::string_view kDuplicateAttribute = "VCL004";
constexpr std::string_view kIdentityProjection = "VCL005";
constexpr std::string_view kDuplicateDefinition = "VCL006";
constexpr std::string_view kShadowedRelation = "VCL007";
constexpr std::string_view kUnusedRelation = "VCL008";
constexpr std::string_view kConflictingDeclaration = "VCL009";
constexpr std::string_view kSemanticSkipped = "VCL010";
constexpr std::string_view kRedundantDefinition = "VCL101";
constexpr std::string_view kNotSimplified = "VCL102";
constexpr std::string_view kEquivalentDefinitions = "VCL103";
constexpr std::string_view kReconstructible = "VCL104";
constexpr std::string_view kSubsumedView = "VCL201";
constexpr std::string_view kCompositionLoss = "VCL202";
constexpr std::string_view kDefinitionCycle = "VCL203";
constexpr std::string_view kDeterminacyBoundary = "VCL204";

/// What the linter knows about a name: its scheme, where it was declared
/// and whether the typed layer can work with it.
struct RelInfo {
  AttrSet scheme;
  SourceSpan decl_span;
  bool is_base = false;
  bool used = false;
  /// True when a typed, base-level defining query exists for the name
  /// (always true for base relations). References to non-analyzable names
  /// exclude a definition from the semantic pass but are not themselves
  /// defects — their defects were already reported where they occurred.
  bool analyzable = false;
};

/// A definition that resolved cleanly, ready for the semantic rules.
struct DefInfo {
  std::size_t view_index = 0;
  std::string view_name;
  std::string name;
  SourceSpan name_span;
  SourceSpan stmt_span;  ///< The whole `name := expr;` statement.
  RelId rel = kInvalidRel;
  ExprPtr expanded;  ///< Base-level (Lemma 1.4.1 expansion applied).
  Tableau reduced;   ///< Reduced Algorithm 2.1.1 template of `expanded`.
  /// Relation names the raw query references (pre-expansion), for the
  /// composition rule (VCL202).
  std::vector<std::string> refs;
};

/// Every parsed definition, resolved or not, for the reference graph of
/// the cycle rule (VCL203): a definition in a cycle never resolves (its
/// forward references read as undefined), so the graph must come from the
/// raw AST.
struct RawDef {
  std::string name;
  SourceSpan name_span;
  std::vector<std::string> refs;
};

/// Per-view bookkeeping for the whole-program rules.
struct ViewRec {
  std::string name;
  SourceSpan name_span;
  SourceSpan block_span;          ///< `view` keyword through closing '}'.
  std::size_t total_defs = 0;     ///< AST definitions with a parsed query.
  std::size_t resolved_defs = 0;  ///< Of those, entries in defs_.
};

/// True when the typed expression contains a join node anywhere — the test
/// for the project-select fragment the VCL204 note cites.
bool ContainsJoin(const ExprPtr& expr) {
  if (expr == nullptr) return false;
  if (expr->kind() == Expr::Kind::kJoin) return true;
  for (const ExprPtr& child : expr->children()) {
    if (ContainsJoin(child)) return true;
  }
  return false;
}

/// Inline suppressions: line -> codes ignored on that line. A comment
/// `vcl-ignore(VCL101, VCL102)` (after `#`, `//` or `--`) targets its own
/// line, or the next line when the comment stands alone.
std::map<int, std::set<std::string>> ParseIgnores(std::string_view text) {
  std::map<int, std::set<std::string>> ignores;
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    ++line_number;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;

    std::size_t marker = std::string_view::npos;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '#' ||
          ((line[i] == '/' || line[i] == '-') && i + 1 < line.size() &&
           line[i + 1] == line[i])) {
        marker = i;
        break;
      }
    }
    if (marker == std::string_view::npos) {
      if (eol == text.size()) break;
      continue;
    }
    const std::string_view comment = line.substr(marker);
    const std::size_t at = comment.find("vcl-ignore(");
    if (at == std::string_view::npos) {
      if (eol == text.size()) break;
      continue;
    }
    std::set<std::string> codes;
    std::size_t i = at + std::string_view("vcl-ignore(").size();
    std::string code;
    for (; i < comment.size() && comment[i] != ')'; ++i) {
      const char c = comment[i];
      if (c == ',') {
        if (!code.empty()) codes.insert(std::move(code));
        code.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        code += c;
      }
    }
    if (!code.empty()) codes.insert(std::move(code));
    if (codes.empty()) {
      if (eol == text.size()) break;
      continue;
    }
    const std::string_view before = line.substr(0, marker);
    const bool standalone =
        before.find_first_not_of(" \t") == std::string_view::npos;
    const int target = standalone ? line_number + 1 : line_number;
    ignores[target].insert(codes.begin(), codes.end());
    if (eol == text.size()) break;
  }
  return ignores;
}

class LintRun {
 public:
  LintRun(const LintOptions& options) : options_(options) {}

  LintResult Run(std::string_view text) {
    text_ = text;
    map_.emplace(text);
    std::vector<SyntaxError> syntax_errors;
    AstProgram program = ParseProgramAst(text, syntax_errors);
    for (const SyntaxError& e : syntax_errors) {
      sink_.Report(Severity::kError, kSyntaxError, e.span, e.message);
    }
    StructuralPass(program);
    ReportUnusedRelations();
    FindDefinitionCycles();
    if (options_.semantic && !defs_.empty() && !base_ids_.empty()) {
      if (defs_.size() <= options_.max_semantic_definitions) {
        SemanticPass();
      } else {
        sink_.Report(
            Severity::kNote, kSemanticSkipped, defs_.front().name_span,
            StrCat("semantic analysis (VCL1xx/VCL2xx) skipped: ",
                   defs_.size(),
                   " resolved definitions exceed max_semantic_definitions"
                   " = ",
                   options_.max_semantic_definitions),
            "raise the threshold (or lint the program in parts) to run "
            "the closure-based rules");
      }
    }
    sink_.Sort();
    LintResult result;
    result.diagnostics = sink_.Take();
    ApplyInlineSuppressions(&result);
    return result;
  }

 private:
  // ---------------------------------------------------------------- pass 1

  void StructuralPass(const AstProgram& program) {
    for (const AstItem& item : program.items) {
      if (item.kind == AstItem::Kind::kSchema) {
        for (const AstRelationDecl& decl : item.relations) {
          DeclareRelation(decl);
        }
      } else {
        const std::size_t view_index = views_.size();
        views_.push_back(ViewRec{item.view.name, item.view.name_span,
                                 item.view.span, 0, 0});
        for (const AstDefinition& def : item.view.definitions) {
          LintDefinition(item.view, view_index, def);
        }
      }
    }
  }

  void DeclareRelation(const AstRelationDecl& decl) {
    std::optional<AttrSet> scheme =
        CheckAttrList(decl.attributes, decl.name_span,
                      StrCat("relation '", decl.name, "'"));
    if (!scheme.has_value()) return;
    auto it = env_.find(decl.name);
    if (it != env_.end()) {
      if (it->second.scheme == *scheme) {
        sink_.Report(Severity::kWarning, kConflictingDeclaration,
                     decl.name_span,
                     StrCat("redeclaration of relation '", decl.name, "'"),
                     StrCat("previously declared at ",
                            ToString(it->second.decl_span)));
      } else {
        sink_.Report(
            Severity::kError, kConflictingDeclaration, decl.name_span,
            StrCat("relation '", decl.name,
                   "' redeclared with a different scheme"),
            StrCat("previously declared at ",
                   ToString(it->second.decl_span), " as ",
                   viewcap::ToString(it->second.scheme, catalog_)));
      }
      return;
    }
    Result<RelId> rel = catalog_.AddRelation(decl.name, *scheme);
    if (!rel.ok()) return;  // Unreachable: emptiness/conflicts handled above.
    env_.emplace(decl.name, RelInfo{*scheme, decl.name_span,
                                    /*is_base=*/true, /*used=*/false,
                                    /*analyzable=*/true});
    base_ids_.push_back(*rel);
    base_names_.push_back(decl.name);
  }

  /// Shared checks for projection lists and declaration schemes: emptiness
  /// (VCL003) and duplicates (VCL004, with a drop-the-repeat fix-it).
  /// Returns the interned set, or nullopt when empty.
  std::optional<AttrSet> CheckAttrList(const std::vector<AstAttr>& attrs,
                                       const SourceSpan& anchor,
                                       const std::string& what) {
    if (attrs.empty()) {
      sink_.Report(Severity::kError, kEmptyAttrList, anchor,
                   StrCat(what, " has an empty attribute list"));
      return std::nullopt;
    }
    std::set<std::string_view> seen;
    std::vector<AttrId> ids;
    ids.reserve(attrs.size());
    for (const AstAttr& attr : attrs) {
      if (!seen.insert(attr.name).second) {
        Diagnostic d;
        d.severity = Severity::kWarning;
        d.code = kDuplicateAttribute;
        d.span = attr.span;
        d.message =
            StrCat("duplicate attribute '", attr.name, "' in ", what);
        if (std::optional<TextEdit> edit = DropListItemEdit(attr.span)) {
          d.fixits.push_back(std::move(*edit));
        }
        sink_.Add(std::move(d));
      }
      ids.push_back(catalog_.AddAttribute(attr.name));
    }
    return AttrSet(std::move(ids));
  }

  /// The deletion edit for a comma-separated list item: the item plus its
  /// preceding comma (a duplicate is never the first item). Nullopt when
  /// the text around the span is not shaped as expected.
  std::optional<TextEdit> DropListItemEdit(const SourceSpan& item) {
    std::size_t begin = map_->Offset(item.begin);
    const std::size_t end = map_->Offset(item.end);
    while (begin > 0 &&
           std::isspace(static_cast<unsigned char>(text_[begin - 1]))) {
      --begin;
    }
    if (begin == 0 || text_[begin - 1] != ',') return std::nullopt;
    return TextEdit{SourceSpan{map_->Location(begin - 1),
                               map_->Location(end)},
                    ""};
  }

  /// Result of the structural walk over one raw expression.
  struct ExprScan {
    std::optional<AttrSet> trs;  ///< Unknown when resolution failed below.
    bool clean = true;           ///< No structural defect inside.
    bool analyzable = true;      ///< Every referenced name is analyzable.
  };

  ExprScan ScanExpr(const AstExpr& expr) {
    ExprScan scan;
    switch (expr.kind) {
      case AstExpr::Kind::kRel: {
        current_refs_.push_back(expr.rel);
        auto it = env_.find(expr.rel);
        if (it == env_.end()) {
          sink_.Report(Severity::kError, kUndefinedRelation, expr.span,
                       StrCat("undefined relation '", expr.rel, "'"));
          scan.clean = false;
          scan.analyzable = false;
          return scan;
        }
        it->second.used = true;
        scan.analyzable = it->second.analyzable;
        scan.trs = it->second.scheme;
        return scan;
      }
      case AstExpr::Kind::kProject: {
        const AstExpr& operand = *expr.children.front();
        ExprScan child = ScanExpr(operand);
        scan.clean = child.clean;
        scan.analyzable = child.analyzable;
        std::optional<AttrSet> attrs =
            CheckAttrList(expr.projection, expr.span, "projection");
        if (!attrs.has_value()) {
          scan.clean = false;
          return scan;  // TRS unknown.
        }
        if (child.trs.has_value()) {
          bool typed = true;
          for (const AstAttr& attr : expr.projection) {
            AttrId id = catalog_.AddAttribute(attr.name);
            if (!child.trs->Contains(id)) {
              sink_.Report(
                  Severity::kError, kUnknownAttribute, attr.span,
                  StrCat("attribute '", attr.name,
                         "' is not in the operand's scheme ",
                         viewcap::ToString(*child.trs, catalog_)));
              typed = false;
            }
          }
          if (typed && *attrs == *child.trs) {
            Diagnostic d;
            d.severity = Severity::kNote;
            d.code = kIdentityProjection;
            d.span = expr.span;
            d.message = StrCat("projection onto the full scheme ",
                               viewcap::ToString(*attrs, catalog_),
                               " is the identity");
            // Fix-it: unwrap — replace the projection by its operand.
            d.fixits.push_back(
                TextEdit{expr.span, map_->Slice(operand.span)});
            sink_.Add(std::move(d));
          }
          if (!typed) scan.clean = false;
        }
        scan.trs = std::move(attrs);
        return scan;
      }
      case AstExpr::Kind::kJoin: {
        AttrSet trs;
        bool trs_known = true;
        for (const AstExprPtr& child : expr.children) {
          ExprScan c = ScanExpr(*child);
          scan.clean = scan.clean && c.clean;
          scan.analyzable = scan.analyzable && c.analyzable;
          if (c.trs.has_value()) {
            trs = trs.Union(*c.trs);
          } else {
            trs_known = false;
          }
        }
        if (trs_known) scan.trs = std::move(trs);
        return scan;
      }
    }
    return scan;
  }

  void LintDefinition(const AstView& view, std::size_t view_index,
                      const AstDefinition& def) {
    if (def.query == nullptr) return;  // Dropped during syntax recovery.
    ++views_[view_index].total_defs;
    current_refs_.clear();
    ExprScan scan = ScanExpr(*def.query);
    raw_defs_.push_back(RawDef{def.name, def.name_span, current_refs_});
    auto it = env_.find(def.name);
    if (it != env_.end()) {
      if (it->second.is_base) {
        sink_.Report(Severity::kError, kShadowedRelation, def.name_span,
                     StrCat("definition '", def.name,
                            "' shadows a base relation"),
                     StrCat("relation declared at ",
                            ToString(it->second.decl_span)));
      } else {
        sink_.Report(Severity::kError, kDuplicateDefinition, def.name_span,
                     StrCat("view relation '", def.name,
                            "' is defined twice"),
                     StrCat("first defined at ",
                            ToString(it->second.decl_span)));
      }
      return;
    }
    if (!scan.trs.has_value()) return;  // Defects already reported.
    RelInfo info;
    info.scheme = *scan.trs;
    info.decl_span = def.name_span;
    if (!scan.clean || !scan.analyzable) {
      env_.emplace(def.name, std::move(info));
      return;
    }
    // The definition resolved cleanly: lower it through the typed layer and
    // flatten view-of-view references (Lemma 1.4.1) for the semantic pass.
    Result<ExprPtr> lowered = LowerExpr(catalog_, *def.query);
    if (!lowered.ok()) {
      env_.emplace(def.name, std::move(info));
      return;
    }
    Result<ExprPtr> expanded = Expand(catalog_, *lowered, known_);
    Result<RelId> rel = catalog_.AddRelation(def.name, (*lowered)->trs());
    if (!expanded.ok() || !rel.ok()) {
      env_.emplace(def.name, std::move(info));
      return;
    }
    info.analyzable = true;
    env_.emplace(def.name, std::move(info));
    known_.emplace(*rel, *expanded);
    ++views_[view_index].resolved_defs;
    defs_.push_back(DefInfo{view_index, view.name, def.name, def.name_span,
                            def.span, *rel, std::move(*expanded), Tableau{},
                            current_refs_});
  }

  void ReportUnusedRelations() {
    if (defs_.empty() && known_.empty()) return;  // No definitions at all.
    bool any_definition = false;
    for (const auto& [name, info] : env_) {
      if (!info.is_base) any_definition = true;
    }
    if (!any_definition) return;
    for (const std::string& name : base_names_) {
      const RelInfo& info = env_.at(name);
      if (!info.used) {
        sink_.Report(Severity::kWarning, kUnusedRelation, info.decl_span,
                     StrCat("relation '", name,
                            "' is never read by any view definition"));
      }
    }
  }

  // ------------------------------------------------- the reference graph

  /// VCL203: strongly connected components of the definition reference
  /// graph. Built from the raw AST — cyclic definitions never resolve (the
  /// forward references read as undefined relations), so this is the pass
  /// that tells "cycle" apart from "typo". Always runs; needs no closure.
  void FindDefinitionCycles() {
    // First definition per name; names that are base relations resolve to
    // the base, never to a definition (the shadowing definition itself is
    // a VCL007 error).
    std::map<std::string_view, std::size_t> def_by_name;
    for (std::size_t i = 0; i < raw_defs_.size(); ++i) {
      auto it = env_.find(raw_defs_[i].name);
      if (it != env_.end() && it->second.is_base) continue;
      def_by_name.emplace(raw_defs_[i].name, i);
    }
    const std::size_t n = raw_defs_.size();
    std::vector<std::vector<std::size_t>> adj(n);
    std::vector<bool> self_loop(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      for (const std::string& ref : raw_defs_[i].refs) {
        auto it = def_by_name.find(ref);
        if (it == def_by_name.end()) continue;
        adj[i].push_back(it->second);
        if (it->second == i) self_loop[i] = true;
      }
    }

    // Tarjan's SCC, reporting each cyclic component once.
    std::vector<std::size_t> index(n, 0);
    std::vector<std::size_t> low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<std::size_t> stack;
    std::size_t next_index = 1;
    std::function<void(std::size_t)> strongconnect =
        [&](std::size_t v) {
          index[v] = low[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          for (std::size_t w : adj[v]) {
            if (index[w] == 0) {
              strongconnect(w);
              low[v] = std::min(low[v], low[w]);
            } else if (on_stack[w]) {
              low[v] = std::min(low[v], index[w]);
            }
          }
          if (low[v] != index[v]) return;
          std::vector<std::size_t> component;
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
            if (w == v) break;
          }
          if (component.size() < 2 && !self_loop[v]) return;
          std::sort(component.begin(), component.end());
          std::string chain;
          for (std::size_t w : component) {
            chain += StrCat(raw_defs_[w].name, " -> ");
          }
          chain += raw_defs_[component.front()].name;
          sink_.Report(
              Severity::kError, kDefinitionCycle,
              raw_defs_[component.front()].name_span,
              StrCat("view definitions form a reference cycle: ", chain),
              "a cyclic program has no expansion to base relations "
              "(Lemma 1.4.1); break the cycle to make these definitions "
              "analyzable");
        };
    for (std::size_t v = 0; v < n; ++v) {
      if (index[v] == 0) strongconnect(v);
    }
  }

  // ---------------------------------------------------------------- pass 2

  void SemanticPass() {
    universe_ = catalog_.Universe(base_ids_);
    SymbolPool pool;
    for (DefInfo& def : defs_) {
      Result<Tableau> t = BuildTableau(catalog_, universe_, *def.expanded,
                                       pool);
      if (!t.ok()) return;  // Cannot happen for lowered queries; bail out.
      def.reduced = engine_.Reduced(*t);
    }
    std::vector<bool> flagged(defs_.size(), false);
    FindEquivalentDefinitions(flagged);
    FindRedundantAndNonSimple(flagged);
    // Whole-program (VCL2xx) rules, on the same engine. Subsumption runs
    // before reconstructibility so a dead view is one warning, not a
    // warning plus a note per definition.
    std::vector<bool> subsumed(views_.size(), false);
    std::vector<bool> inconclusive(views_.size(), false);
    FindSubsumedViews(subsumed, inconclusive);
    FindCompositionLoss(inconclusive);
    ReportDeterminacyBoundary(inconclusive);
    FindReconstructible(flagged, subsumed);
  }

  /// Resolved definition indices per view, in program order.
  std::map<std::size_t, std::vector<std::size_t>> GroupByView() const {
    std::map<std::size_t, std::vector<std::size_t>> by_view;
    for (std::size_t i = 0; i < defs_.size(); ++i) {
      by_view[defs_[i].view_index].push_back(i);
    }
    return by_view;
  }

  /// VCL103: pairwise mapping equivalence through the engine's interning
  /// store (canonical-key prefilter plus homomorphism confirmation happen
  /// inside Intern, once per definition rather than once per pair).
  void FindEquivalentDefinitions(std::vector<bool>& flagged) {
    std::vector<TableauId> ids;
    ids.reserve(defs_.size());
    for (const DefInfo& def : defs_) ids.push_back(engine_.Intern(def.reduced));
    for (std::size_t j = 0; j < defs_.size(); ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        if (ids[i] != ids[j]) continue;
        sink_.Report(
            Severity::kWarning, kEquivalentDefinitions, defs_[j].name_span,
            StrCat("defining query of '", defs_[j].name,
                   "' is equivalent to that of '", defs_[i].name, "'"),
            StrCat("'", defs_[i].name, "' is defined at ",
                   ToString(defs_[i].name_span),
                   "; equal up to canonical form of their tableaux"));
        // Exclude both sides from the closure rules: each is trivially
        // redundant via its twin, which would only restate this finding.
        flagged[i] = true;
        flagged[j] = true;
        break;
      }
    }
  }

  /// VCL101 and VCL102: per-view redundancy (Theorem 3.1.4) and simplicity
  /// (Section 4 normal form). Redundancy eliminates greedily — a flagged
  /// definition leaves the working set before the next member is tested —
  /// so applying every VCL101 fix-it at once is exactly the Theorem 3.1.4
  /// fixpoint and can never over-delete.
  void FindRedundantAndNonSimple(std::vector<bool>& flagged) {
    for (const auto& [view_index, members] : GroupByView()) {
      std::vector<std::size_t> active = members;
      for (const std::size_t idx : members) {
        const DefInfo& def = defs_[idx];
        if (flagged[idx]) continue;  // VCL103 twins stay in the set.
        const auto ait = std::find(active.begin(), active.end(), idx);
        if (ait == active.end()) continue;
        const std::size_t apos =
            static_cast<std::size_t>(ait - active.begin());
        std::vector<QuerySet::Member> qs_members;
        qs_members.reserve(active.size());
        for (std::size_t j : active) {
          qs_members.push_back({defs_[j].rel, defs_[j].reduced});
        }
        Result<QuerySet> set =
            QuerySet::Create(&catalog_, universe_, std::move(qs_members));
        if (!set.ok()) continue;
        if (active.size() > 1) {
          Result<RedundancyResult> red =
              IsRedundant(engine_, *set, apos, options_.limits);
          if (red.ok() && red->redundant) {
            Diagnostic d;
            d.severity = Severity::kWarning;
            d.code = kRedundantDefinition;
            d.span = def.name_span;
            d.message =
                StrCat("definition '", def.name,
                       "' is redundant: it is answerable from the view's "
                       "other definitions (Theorem 3.1.4)");
            if (red->membership.witness != nullptr) {
              d.note = StrCat("reconstructible as ",
                              viewcap::ToString(red->membership.witness,
                                                catalog_));
            }
            d.fixits.push_back(TextEdit{def.stmt_span, ""});
            sink_.Add(std::move(d));
            flagged[idx] = true;
            active.erase(ait);
            continue;
          }
        }
        Result<SimplicityResult> simple =
            IsSimple(engine_, &catalog_, *set, apos, options_.limits);
        if (simple.ok() && !simple->simple &&
            !simple->membership.budget_exhausted) {
          sink_.Report(
              Severity::kWarning, kNotSimplified, def.name_span,
              StrCat("definition '", def.name,
                     "' is not simple: view '", def.view_name,
                     "' is not in the Section 4 simplified normal form"),
              "it is answerable from its own proper projections and the "
              "other definitions; run `simplify` to normalize");
          flagged[idx] = true;
        }
      }
    }
  }

  /// VCL201: a view whose every defining query is answerable from the rest
  /// of the program is dead weight — Cap(V) is dominated by the program
  /// without it (Lemma 1.5.4 applied program-wide). Views are tested in
  /// program order and a subsumed view leaves the "rest" for later tests,
  /// so deleting every flagged view at once preserves the program's
  /// capacity (the greedy order never lets two views subsume each other).
  void FindSubsumedViews(std::vector<bool>& subsumed,
                         std::vector<bool>& inconclusive) {
    const auto by_view = GroupByView();
    if (by_view.size() < 2) return;
    for (const auto& [v, members] : by_view) {
      const ViewRec& view = views_[v];
      // Only a fully resolved view may be declared dead: an unresolved
      // definition has unknown capacity.
      if (view.total_defs == 0 || view.resolved_defs != view.total_defs) {
        continue;
      }
      std::vector<QuerySet::Member> others;
      for (const auto& [w, rest] : by_view) {
        if (w == v || subsumed[w]) continue;
        for (std::size_t j : rest) {
          others.push_back({defs_[j].rel, defs_[j].reduced});
        }
      }
      if (others.empty()) continue;
      Result<QuerySet> set =
          QuerySet::Create(&catalog_, universe_, std::move(others));
      if (!set.ok()) continue;
      CapacityOracle oracle(&engine_, *set, options_.limits);
      bool all_answerable = true;
      std::vector<std::string> witnesses;
      for (std::size_t i : members) {
        Result<MembershipResult> member = oracle.Contains(defs_[i].reduced);
        if (!member.ok()) {
          all_answerable = false;
          break;
        }
        if (!member->member) {
          all_answerable = false;
          if (member->budget_exhausted) inconclusive[v] = true;
          break;
        }
        if (member->witness != nullptr) {
          witnesses.push_back(
              StrCat(defs_[i].name, " = ",
                     viewcap::ToString(member->witness, catalog_)));
        }
      }
      if (!all_answerable) continue;
      Diagnostic d;
      d.severity = Severity::kWarning;
      d.code = kSubsumedView;
      d.span = view.name_span;
      d.message = StrCat(
          "view '", view.name,
          "' is subsumed: every definition is answerable from the rest "
          "of the program (its capacity is dominated)");
      d.note = Join(witnesses, "; ");
      d.fixits.push_back(TextEdit{view.block_span, ""});
      sink_.Add(std::move(d));
      subsumed[v] = true;
    }
  }

  /// VCL202: a view composed purely from one other view can only lose
  /// capacity (Section 1.3 / compose.h: Cap(outer) is contained in
  /// Cap(inner)); this reports when the containment is proper, i.e. some
  /// definition of the inner view is no longer answerable through the
  /// outer one. A note, not a warning — losing capacity is often the
  /// point (e.g. a sanitized view).
  void FindCompositionLoss(std::vector<bool>& inconclusive) {
    std::map<std::string_view, std::size_t> def_by_name;
    for (std::size_t i = 0; i < defs_.size(); ++i) {
      def_by_name.emplace(defs_[i].name, i);
    }
    const auto by_view = GroupByView();
    for (const auto& [v, members] : by_view) {
      const ViewRec& outer = views_[v];
      if (outer.total_defs == 0 || outer.resolved_defs != outer.total_defs) {
        continue;
      }
      // Purity: every leaf of every definition must be a definition of one
      // single other view — only then is Cap(outer) comparable to
      // Cap(inner) by construction.
      std::set<std::size_t> inner_views;
      bool pure = true;
      for (std::size_t i : members) {
        for (const std::string& ref : defs_[i].refs) {
          auto it = def_by_name.find(ref);
          if (it == def_by_name.end() ||
              defs_[it->second].view_index == v) {
            pure = false;
            break;
          }
          inner_views.insert(defs_[it->second].view_index);
        }
        if (!pure) break;
      }
      if (!pure || inner_views.size() != 1) continue;
      const std::size_t w = *inner_views.begin();
      const ViewRec& inner = views_[w];
      if (inner.resolved_defs != inner.total_defs) continue;
      std::vector<QuerySet::Member> outer_members;
      outer_members.reserve(members.size());
      for (std::size_t i : members) {
        outer_members.push_back({defs_[i].rel, defs_[i].reduced});
      }
      Result<QuerySet> set =
          QuerySet::Create(&catalog_, universe_, std::move(outer_members));
      if (!set.ok()) continue;
      CapacityOracle oracle(&engine_, *set, options_.limits);
      std::vector<std::string> missing;
      for (std::size_t i : by_view.at(w)) {
        Result<MembershipResult> member = oracle.Contains(defs_[i].reduced);
        if (!member.ok()) continue;
        if (member->member) continue;
        if (member->budget_exhausted) {
          inconclusive[v] = true;
        } else {
          missing.push_back(StrCat("'", defs_[i].name, "'"));
        }
      }
      if (missing.empty()) continue;
      sink_.Report(
          Severity::kNote, kCompositionLoss, outer.name_span,
          StrCat("view '", outer.name,
                 "' strictly loses capacity composing '", inner.name,
                 "': ", Join(missing, ", "),
                 missing.size() == 1 ? " is" : " are",
                 " no longer answerable"),
          "Cap(outer) is always contained in Cap(inner) under composition "
          "(Section 1.3); a proper loss may be intended, e.g. for a "
          "sanitized view");
    }
  }

  /// VCL204: an inconclusive whole-program check is not silence — it is a
  /// note placing the program relative to the determinacy decidability
  /// boundary mapped by the modern literature.
  void ReportDeterminacyBoundary(const std::vector<bool>& inconclusive) {
    bool project_select = true;
    for (const DefInfo& def : defs_) {
      if (ContainsJoin(def.expanded)) {
        project_select = false;
        break;
      }
    }
    for (std::size_t v = 0; v < views_.size(); ++v) {
      if (!inconclusive[v]) continue;
      sink_.Report(
          Severity::kNote, kDeterminacyBoundary, views_[v].name_span,
          StrCat("whole-program capacity analysis of view '",
                 views_[v].name,
                 "' is inconclusive: a closure search exhausted its "
                 "candidate budget"),
          project_select
              ? "the program is in the project-select fragment, where "
                "determinacy is decidable (arXiv:2411.08874): a larger "
                "budget (max_candidates/max_leaves) can settle the verdict"
              : "the program uses joins, and general conjunctive-query "
                "determinacy is undecidable (arXiv:1501.01817): "
                "budget-bounded search is the strongest complete check "
                "available");
    }
  }

  /// VCL104: derivability from the other views' definitions. Skips views
  /// already reported subsumed (VCL201 states the stronger fact).
  void FindReconstructible(const std::vector<bool>& flagged,
                           const std::vector<bool>& subsumed) {
    std::set<std::size_t> views;
    for (const DefInfo& def : defs_) views.insert(def.view_index);
    if (views.size() < 2) return;
    for (std::size_t i = 0; i < defs_.size(); ++i) {
      if (flagged[i] || subsumed[defs_[i].view_index]) continue;
      std::vector<QuerySet::Member> others;
      for (std::size_t j = 0; j < defs_.size(); ++j) {
        if (defs_[j].view_index != defs_[i].view_index) {
          others.push_back({defs_[j].rel, defs_[j].reduced});
        }
      }
      if (others.empty()) continue;
      Result<QuerySet> set =
          QuerySet::Create(&catalog_, universe_, std::move(others));
      if (!set.ok()) continue;
      CapacityOracle oracle(&engine_, *set, options_.limits);
      Result<MembershipResult> member = oracle.Contains(defs_[i].reduced);
      if (member.ok() && member->member) {
        std::string witness =
            member->witness != nullptr
                ? StrCat("derivable as ",
                         viewcap::ToString(member->witness, catalog_))
                : std::string();
        sink_.Report(
            Severity::kNote, kReconstructible, defs_[i].name_span,
            StrCat("definition '", defs_[i].name,
                   "' is derivable from the definitions of the other views"),
            std::move(witness));
      }
    }
  }

  // ------------------------------------------------------------- epilogue

  void ApplyInlineSuppressions(LintResult* result) {
    const std::map<int, std::set<std::string>> ignores =
        ParseIgnores(text_);
    if (ignores.empty()) return;
    std::vector<Diagnostic> kept;
    kept.reserve(result->diagnostics.size());
    for (Diagnostic& d : result->diagnostics) {
      auto it = ignores.find(d.span.begin.line);
      if (it != ignores.end() && it->second.count(d.code) > 0) {
        ++result->suppressed;
        continue;
      }
      kept.push_back(std::move(d));
    }
    result->diagnostics = std::move(kept);
  }

  static std::string Join(const std::vector<std::string>& parts,
                          std::string_view sep) {
    std::string out;
    for (const std::string& part : parts) {
      if (!out.empty()) out += sep;
      out += part;
    }
    return out;
  }

  const LintOptions& options_;
  std::string_view text_;
  std::optional<LineMap> map_;
  DiagnosticSink sink_;
  Catalog catalog_;
  Engine engine_{&catalog_};  // Shared by every semantic rule of the run.
  std::map<std::string, RelInfo> env_;
  std::vector<RelId> base_ids_;
  std::vector<std::string> base_names_;
  Definitions known_;
  std::vector<DefInfo> defs_;
  std::vector<RawDef> raw_defs_;
  std::vector<ViewRec> views_;
  std::vector<std::string> current_refs_;
  AttrSet universe_;
};

}  // namespace

std::size_t LintResult::Count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::size_t LintResult::Fixable() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.fixable()) ++n;
  }
  return n;
}

LintResult Linter::Run(std::string_view program_text) const {
  LintRun run(options_);
  return run.Run(program_text);
}

}  // namespace viewcap
